// Package trajmatch is a from-scratch Go implementation of "Indexing and
// Matching Trajectories under Inconsistent Sampling Rates" (Ranu, Deepak P,
// Telang, Deshpande, Raghavan; ICDE 2015): the EDwP trajectory distance —
// Edit Distance with Projections, a threshold-free measure robust to
// heterogeneous sampling — and the TrajTree index for exact k-NN retrieval
// under it.
//
// The package is a facade over the implementation packages in internal/:
// it re-exports the trajectory model, the EDwP family, six baseline
// distances, the TrajTree index, synthetic dataset generators with the
// paper's four noise models, and CSV/NDJSON I/O. Examples under examples/
// and the figure-reproduction benchmarks in bench_test.go use only this
// surface.
//
// Quick start:
//
//	a := trajmatch.FromXY(1, 0, 0, 5, 0, 5, 5)
//	b := trajmatch.FromXY(2, 0, 0, 5, 5)
//	d := trajmatch.EDwPAvg(a, b)
//
//	engine, err := trajmatch.NewEngine(db, trajmatch.IndexOptions{}, trajmatch.EngineOptions{})
//	ans, err := engine.Search(ctx, query, trajmatch.Query{Kind: trajmatch.QueryKNN, K: 10})
package trajmatch

import (
	"context"
	"io"
	"math/rand"
	"net/http"

	"trajmatch/internal/backend"
	"trajmatch/internal/baseline"
	"trajmatch/internal/cluster"
	"trajmatch/internal/core"
	"trajmatch/internal/dataio"
	"trajmatch/internal/dtwindex"
	"trajmatch/internal/edrindex"
	"trajmatch/internal/metrics"
	"trajmatch/internal/server"
	"trajmatch/internal/sketch"
	"trajmatch/internal/synth"
	"trajmatch/internal/traj"
	"trajmatch/internal/trajtree"
	"trajmatch/internal/wal"
)

// Trajectory is a temporally ordered sequence of spatio-temporal points.
type Trajectory = traj.Trajectory

// STPoint is one spatio-temporal sample: a 2-D location and a timestamp.
type STPoint = traj.Point

// P constructs an STPoint from x, y and timestamp t.
func P(x, y, t float64) STPoint { return traj.P(x, y, t) }

// NewTrajectory builds a trajectory over pts with the given id.
func NewTrajectory(id int, pts []STPoint) *Trajectory { return traj.New(id, pts) }

// FromXY builds a trajectory from alternating x,y pairs with unit-spaced
// timestamps — convenient for tests and examples.
func FromXY(id int, xy ...float64) *Trajectory { return traj.FromXY(id, xy...) }

// EDwP returns the cumulative Edit Distance with Projections between two
// trajectories (Section III-A of the paper).
func EDwP(a, b *Trajectory) float64 { return core.Distance(a, b) }

// EDwPAvg returns the length-normalised EDwP (Eq. 4), the form the paper's
// experiments use throughout.
func EDwPAvg(a, b *Trajectory) float64 { return core.AvgDistance(a, b) }

// EDwPSub returns EDwPsub(q, t) (Eq. 6): the whole of q aligned against the
// best-matching contiguous sub-trajectory of t.
func EDwPSub(q, t *Trajectory) float64 { return core.SubDistance(q, t) }

// EDwPBounded returns EDwP(a, b) exactly whenever it does not exceed limit
// and +Inf otherwise. The bounded kernel abandons the dynamic program the
// moment no alignment can finish within limit, so filtering a candidate
// set against a threshold costs a fraction of full evaluations.
// EDwPBounded(a, b, math.Inf(1)) is identical to EDwP(a, b).
func EDwPBounded(a, b *Trajectory, limit float64) float64 {
	d, _ := core.DistanceBounded(a, b, limit)
	return d
}

// EDwPAvgBounded is the bounded counterpart of EDwPAvg: exact whenever the
// length-normalised distance does not exceed limit, +Inf otherwise.
func EDwPAvgBounded(a, b *Trajectory, limit float64) float64 {
	d, _ := core.AvgDistanceBounded(a, b, limit)
	return d
}

// EDwPSubBounded is the bounded counterpart of EDwPSub.
func EDwPSubBounded(q, t *Trajectory, limit float64) float64 {
	d, _ := core.SubDistanceBounded(q, t, limit)
	return d
}

// Edit is one step of an optimal EDwP alignment.
type Edit = core.Edit

// Edit kinds re-exported from the core package.
const (
	EditRep      = core.Rep
	EditInsLeft  = core.InsLeft
	EditInsRight = core.InsRight
)

// AlignEDwP returns the EDwP distance together with an optimal edit script
// whose step costs sum to the distance.
func AlignEDwP(a, b *Trajectory) (float64, []Edit) { return core.Align(a, b) }

// Metric is a trajectory distance function; all baselines and EDwP itself
// satisfy it.
type Metric = baseline.Metric

// Baseline metrics from the paper's comparison suite (Table I).
type (
	// MetricEDwP adapts EDwP to the Metric interface.
	MetricEDwP = baseline.EDwP
	// MetricDTW is Dynamic Time Warping.
	MetricDTW = baseline.DTW
	// MetricLCSS is Longest Common Sub-Sequence with threshold Eps.
	MetricLCSS = baseline.LCSS
	// MetricERP is Edit distance with Real Penalty.
	MetricERP = baseline.ERP
	// MetricEDR is Edit Distance on Real sequence with threshold Eps.
	MetricEDR = baseline.EDR
	// MetricDISSIM is the time-integral dissimilarity.
	MetricDISSIM = baseline.DISSIM
	// MetricMA is the model-driven assignment.
	MetricMA = baseline.MA
)

// Metrics returns the paper's benchmark suite with the given matching
// threshold ε for the threshold-dependent members.
func Metrics(eps float64) []Metric { return baseline.All(eps) }

// DefaultMA returns the MA baseline with its standard parameterisation.
func DefaultMA(eps float64) MetricMA { return baseline.DefaultMA(eps) }

// IndexOptions configure TrajTree construction; the zero value uses the
// paper's defaults (θ = 0.8, 80 vantage points, leaf size 10).
type IndexOptions = trajtree.Options

// Index is a TrajTree: an exact k-NN index for EDwP (Section IV).
type Index = trajtree.Tree

// Result is one k-NN answer.
type Result = trajtree.Result

// QueryStats carries per-query instrumentation.
type QueryStats = trajtree.Stats

// NewIndex bulk-loads a TrajTree over db.
func NewIndex(db []*Trajectory, opt IndexOptions) (*Index, error) {
	return trajtree.New(db, opt)
}

// LoadIndex reconstructs an index previously written with Index.Save.
func LoadIndex(r io.Reader) (*Index, error) {
	return trajtree.Load(r)
}

// SharedBound is an atomically tightening upper bound shared by
// concurrent searches over disjoint indexes; see Index.KNNShared.
type SharedBound = trajtree.SharedBound

// NewSharedBound returns a shared bound seeded at limit (+Inf for an
// unconstrained search). Concurrent Index.KNNShared calls over disjoint
// partitions of one corpus tighten it cooperatively; the per-partition
// answers merge into the exact global k-NN set.
func NewSharedBound(limit float64) *SharedBound { return trajtree.NewSharedBound(limit) }

// Engine is a thread-safe sharded query engine: trajectories hash to
// independent index shards, each behind its own lock, so updates
// serialise per shard while queries fan out across all shards under a
// shared tightening bound and merge exactly. The query surface is
// Engine.Search(ctx, q, Query) — one context-aware entry point for k-NN,
// range and sub-trajectory search — plus Engine.SearchBatch for many
// query trajectories on a worker pool. Repeated k-NN queries hit an LRU
// result cache, and SaveSnapshot/LoadEngineSnapshot persist the whole
// sharded index. cmd/trajserve serves it over HTTP.
type Engine = server.Engine

// Query is the single request type of Engine.Search: the query kind
// (QueryKNN | QueryRange | QuerySubKNN), the Metric answering it (empty
// means the engine's first loaded metric — MetricNameEDwP in every
// standard boot), plus every knob — K, Radius, an admissible seed
// Limit, a MaxEvals budget, WithStats.
type Query = server.Query

// Registered metric backend names, the values of Query.Metric and of
// NewMultiEngine's metric list. EDwP is the default metric of every
// standard boot; DTW and EDR are the flat comparison indexes lifted to
// the same engine (searchable but static: no mutation, no persistence).
const (
	MetricNameEDwP = trajtree.MetricName
	MetricNameDTW  = dtwindex.MetricName
	MetricNameEDR  = edrindex.MetricName
)

// RegisteredMetrics returns the sorted metric names known to this build;
// Query.Metric values outside it fail with ErrUnknownMetric.
func RegisteredMetrics() []string { return backend.Names() }

// ErrUnknownMetric reports a Query.Metric no backend has registered.
var ErrUnknownMetric = server.ErrUnknownMetric

// ErrMetricNotLoaded reports a registered Query.Metric the engine was
// not booted with.
var ErrMetricNotLoaded = server.ErrMetricNotLoaded

// ErrNotSupported reports an operation the loaded backend lacks the
// capability for (mutation or snapshots on DTW/EDR, sub-trajectory
// search outside EDwP); the HTTP layer answers it with 501.
var ErrNotSupported = server.ErrNotSupported

// QueryKind selects which search a Query runs.
type QueryKind = server.QueryKind

// The query kinds of Engine.Search.
const (
	// QueryKNN is exact k-nearest-neighbour search.
	QueryKNN = server.KindKNN
	// QueryRange returns everything within Query.Radius.
	QueryRange = server.KindRange
	// QuerySubKNN is sub-trajectory search under EDwPsub (Eq. 6),
	// answered by a bounded scan fanned across the shards.
	QuerySubKNN = server.KindSubKNN
)

// Answer is the result of one executed Query: the (distance, ID)-sorted
// results plus stats, cache and truncation dispositions.
type Answer = server.Answer

// ErrInvalidQuery wraps every request-validation failure of
// Engine.Search and Engine.SearchBatch.
var ErrInvalidQuery = server.ErrInvalidQuery

// EngineOptions configure an Engine; the zero value enables a 1024-entry
// cache, GOMAXPROCS batch workers and a single shard. Set Shards for
// per-shard update locking and parallel builds, SnapshotDir to arm
// POST /snapshot, Prefilter (optionally tuning Sketch) to build the
// sketch/LSH candidate prefilter that Query.Prefilter opts into, and
// WALDir (with WALSync choosing the durability point) to log every
// accepted mutation before acknowledgement and replay the log on boot.
type EngineOptions = server.Options

// WALSyncPolicy selects when write-ahead-log appends reach stable
// storage (EngineOptions.WALSync): see the constants below.
type WALSyncPolicy = wal.SyncPolicy

// The write-ahead-log sync policies.
const (
	// WALSyncAlways fsyncs before every acknowledgement — an
	// acknowledged mutation survives power loss. The default.
	WALSyncAlways = wal.SyncAlways
	// WALSyncInterval fsyncs in the background every
	// EngineOptions.WALSyncInterval, bounding the power-loss window to
	// that interval. A plain process crash still loses nothing.
	WALSyncInterval = wal.SyncInterval
	// WALSyncNever leaves flushing to the OS page cache.
	WALSyncNever = wal.SyncNever
)

// ParseWALSyncPolicy parses the -wal-sync flag strings "always",
// "interval" and "never".
func ParseWALSyncPolicy(s string) (WALSyncPolicy, error) { return wal.ParseSyncPolicy(s) }

// WALStats carries the write-ahead log's counters and on-disk shape
// (EngineStats.WAL, the "wal" section of GET /v1/stats); nil when the
// engine runs without a WAL.
type WALStats = wal.Stats

// SketchParams parameterise the candidate prefilter
// (EngineOptions.Sketch): grid cell size, shingle length, MinHash
// signature width, LSH band count, candidate floor and hash seed.
// Zero-value fields take defaults; a zero CellSize is derived from the
// corpus.
type SketchParams = sketch.Params

// EngineStats is a snapshot of an Engine's traffic counters and index
// shape, including the per-metric breakdown.
type EngineStats = server.Stats

// EngineMetricStats is one loaded metric's slice of EngineStats: its
// capability set plus its traffic and kernel counters.
type EngineMetricStats = server.MetricStats

// NewEngine bulk-loads a TrajTree over db and wraps it in a concurrent
// Engine.
func NewEngine(db []*Trajectory, iopt IndexOptions, eopt EngineOptions) (*Engine, error) {
	return server.NewEngineFromDB(db, iopt, eopt)
}

// NewMultiEngine bulk-loads one sharded backend per named metric over
// the same database and wraps them in one engine: every metric answers
// over the same corpus through the same Search API and the same
// /v1/search endpoint, routed by Query.Metric. The first name is the
// default metric; iopt configures the EDwP tree when requested, and
// whole-database parameters of the other metrics (EDR's ε) derive from
// db before sharding.
func NewMultiEngine(db []*Trajectory, metricNames []string, iopt IndexOptions, eopt EngineOptions) (*Engine, error) {
	specs, err := metrics.Specs(metricNames, db, metrics.Config{Tree: iopt})
	if err != nil {
		return nil, err
	}
	return server.NewMultiEngineFromDB(db, specs, eopt)
}

// NewEngineFromIndex wraps an existing index in a concurrent Engine. The
// engine owns the index afterwards; do not query or update it directly.
func NewEngineFromIndex(idx *Index, eopt EngineOptions) *Engine {
	return server.NewEngine(idx, eopt)
}

// HandlerOptions configure the HTTP surface, notably the per-request
// query timeout honoured cooperatively through the whole search stack.
type HandlerOptions = server.HandlerOptions

// NewAPIHandler returns the versioned trajserve HTTP API over e:
// POST /v1/search (one endpoint — the query kind travels in the body,
// and a "queries" array batches), /v1/insert, /v1/delete, /v1/rebuild,
// /v1/snapshot and GET /v1/stats, /v1/healthz, all with JSON bodies and
// a consistent {"error", "code"} envelope on failure. The pre-versioning
// routes remain as aliases answering with a Deprecation header.
func NewAPIHandler(e *Engine, opt HandlerOptions) http.Handler {
	return server.NewAPIHandler(e, opt)
}

// NewHTTPHandler returns the trajserve HTTP API over e with default
// options.
//
// Deprecated: use NewAPIHandler, which takes HandlerOptions (notably
// the per-request query timeout).
func NewHTTPHandler(e *Engine) http.Handler {
	return server.NewAPIHandler(e, server.HandlerOptions{})
}

// LoadEngineSnapshot reconstructs an engine from a sharded snapshot
// directory written by Engine.SaveSnapshot (or POST /snapshot). The
// shard count comes from the snapshot's manifest; the remaining options
// apply as given.
func LoadEngineSnapshot(dir string, eopt EngineOptions) (*Engine, error) {
	return server.LoadSnapshot(dir, eopt)
}

// LoadEngineSnapshotMetrics reconstructs a multi-metric engine from a
// snapshot directory: the persisted EDwP trees load from their shard
// streams, and every other named metric is rebuilt from the loaded
// corpus exactly as a fresh boot would build it (the manifest records
// which metrics were persisted). The first name is the default metric.
func LoadEngineSnapshotMetrics(dir string, metricNames []string, eopt EngineOptions) (*Engine, error) {
	return server.LoadSnapshotSpecs(dir, func(db []*Trajectory) ([]backend.Spec, error) {
		return metrics.Specs(metricNames, db, metrics.Config{})
	}, eopt)
}

// EngineSnapshotExists reports whether dir holds an engine snapshot
// manifest; cmd/trajserve uses it to decide between loading a snapshot
// and bulk-building from a database file.
func EngineSnapshotExists(dir string) bool {
	return server.SnapshotExists(dir)
}

// EnginePartition declares that an engine owns only a subset of a
// wider cluster's hash placement (EngineOptions.Partition): trajectories
// hash into Total global shards exactly as a single-process Total-shard
// engine places them, but this engine builds, serves and persists only
// the Owned global shard indices. A shard node of a trajserve cluster
// is an ordinary Engine with a Partition set.
type EnginePartition = server.Partition

// VersionInfo is the payload of GET /v1/version and trajserve -version:
// build identity plus the process's role and shard map.
type VersionInfo = server.VersionInfo

// The deployment roles VersionInfo reports.
const (
	RoleStandalone = server.RoleStandalone
	RoleShard      = server.RoleShard
	RoleRouter     = server.RoleRouter
)

// NewVersionInfo assembles the standard version payload for a process
// serving the given role over e (nil for a stateless router).
func NewVersionInfo(role string, e *Engine) VersionInfo {
	return server.NewVersionInfo(role, e)
}

// ClusterConfig configures a cluster router: the shard nodes' base
// URLs, the per-request timeout, and the sequential (bound-shipping in
// shard order) versus concurrent fan-out choice.
type ClusterConfig = cluster.Config

// ClusterRouter is the stateless fan-out front of a trajserve cluster:
// it discovers each node's owned shards, routes mutations by hash
// placement, fans searches out to every replica group with its running
// k-th-best bound shipped as the seed limit, and merges the per-group
// answers by (distance, ID) — byte-identical to a single-process engine
// over the union corpus when every group answers, Answer.Degraded
// otherwise.
type ClusterRouter = cluster.Router

// ClusterStats is the router's /v1/stats payload: placement, traffic
// and per-node health.
type ClusterStats = cluster.Stats

// NewClusterRouter probes every node's placement and assembles the
// router, verifying the nodes tile the global shard space.
func NewClusterRouter(ctx context.Context, cfg ClusterConfig) (*ClusterRouter, error) {
	return cluster.New(ctx, cfg)
}

// NewClusterNodeHandler wraps the engine's /v1 API with the cluster
// endpoints a shard node serves: placement discovery and snapshot
// shipping.
func NewClusterNodeHandler(e *Engine, opt HandlerOptions) http.Handler {
	return cluster.NodeHandler(e, opt)
}

// NewClusterRouterHandler serves the public /v1 surface over a router —
// the same wire formats as a standalone trajserve.
func NewClusterRouterHandler(rt *ClusterRouter) http.Handler {
	return cluster.RouterHandler(rt)
}

// EngineSnapshotInfo describes a snapshot directory's placement: the
// global shard count and the global shards it covers.
type EngineSnapshotInfo = server.SnapshotInfo

// FetchEngineSnapshot ships a snapshot from src (a node base URL or a
// filesystem path) into dstDir so a replica can warm-boot instead of
// rebuilding; nil shards fetches everything src covers. Fetched shard
// sections are checksum-verified and the manifest is committed last.
func FetchEngineSnapshot(ctx context.Context, src, dstDir string, shards []int, client *http.Client) (EngineSnapshotInfo, error) {
	return cluster.FetchSnapshot(ctx, src, dstDir, shards, client)
}

// EDRIndex answers exact k-NN queries under EDR; it is the indexed
// competitor of Figs. 5(j) and 6(a).
type EDRIndex = edrindex.Index

// NewEDRIndex builds an EDR index with matching threshold eps.
func NewEDRIndex(db []*Trajectory, eps float64) *EDRIndex {
	return edrindex.New(db, eps)
}

// DTWIndex answers exact k-NN queries under DTW, the indexing lineage the
// paper's Related Work traces TrajTree back to.
type DTWIndex = dtwindex.Index

// NewDTWIndex builds a DTW index over db.
func NewDTWIndex(db []*Trajectory) *DTWIndex {
	return dtwindex.New(db)
}

// FromLatLon converts WGS-84 (lat°, lon°, unix-seconds) samples into the
// planar metre coordinates the library uses, projecting about the samples'
// mean latitude.
func FromLatLon(id int, samples [][3]float64) *Trajectory {
	return traj.FromLatLon(id, samples)
}

// TaxiConfig parameterises GenerateTaxi.
type TaxiConfig = synth.TaxiConfig

// ASLConfig parameterises GenerateASL.
type ASLConfig = synth.ASLConfig

// DefaultTaxiConfig returns the standard city-trip configuration with n
// trajectories.
func DefaultTaxiConfig(n int) TaxiConfig { return synth.DefaultTaxi(n) }

// DefaultASLConfig mirrors the real ASL corpus shape (98 classes).
func DefaultASLConfig() ASLConfig { return synth.DefaultASL() }

// GenerateTaxi produces the synthetic stand-in for the paper's Beijing cab
// dataset (see DESIGN.md §3).
func GenerateTaxi(cfg TaxiConfig) []*Trajectory { return synth.Taxi(cfg) }

// GenerateASL produces the labelled stand-in for the Australian Sign
// Language dataset.
func GenerateASL(cfg ASLConfig) []*Trajectory { return synth.ASL(cfg) }

// InterNoise splits pct of each trajectory's segments (shape preserved),
// modelling inter-trajectory sampling-rate variance (Fig. 5(b,c)).
func InterNoise(db []*Trajectory, pct float64, seed int64) []*Trajectory {
	return synth.Inter(db, pct, seed)
}

// IntraNoise splits segments only in each trajectory's first half,
// modelling intra-trajectory variance (Fig. 5(d,e)).
func IntraNoise(db []*Trajectory, pct float64, seed int64) []*Trajectory {
	return synth.Intra(db, pct, seed)
}

// PhaseNoise splits the same pct of segments in two copies at different
// positions, modelling sampling phase variation (Fig. 5(f,g)).
func PhaseNoise(db []*Trajectory, pct float64, seed int64) (d1, d2 []*Trajectory) {
	return synth.Phase(db, pct, seed)
}

// PerturbNoise relocates pct of points within the given radius,
// modelling measurement noise (Fig. 5(h,i)).
func PerturbNoise(db []*Trajectory, pct, radius float64, seed int64) []*Trajectory {
	return synth.Perturb(db, pct, radius, seed)
}

// PerturbRadius returns the paper's perturbation radius: the distance
// covered in horizon seconds at the database's average speed.
func PerturbRadius(db []*Trajectory, horizon float64) float64 {
	return synth.PerturbRadius(db, horizon)
}

// Resample re-interpolates t to a uniform spatial spacing — the EDR-I
// preprocessing of Section V-C.
func Resample(t *Trajectory, spacing float64) *Trajectory { return traj.Resample(t, spacing) }

// ResampleAll resamples an entire database.
func ResampleAll(db []*Trajectory, spacing float64) []*Trajectory {
	return traj.ResampleAll(db, spacing)
}

// MedianSegmentLength returns the database's median positive segment
// length, the spacing the harness uses for EDR-I.
func MedianSegmentLength(db []*Trajectory) float64 { return traj.MedianSegmentLength(db) }

// SplitTrips partitions a raw point stream into trips on time gaps and
// stationary periods, the paper's Beijing preprocessing.
func SplitTrips(points []STPoint, maxGap, maxStationary float64, firstID int) []*Trajectory {
	return traj.SplitTrips(points, maxGap, maxStationary, firstID)
}

// ReadCSV parses a point-per-row id,x,y,t[,label] trajectory file.
func ReadCSV(r io.Reader) ([]*Trajectory, error) { return dataio.ReadCSV(r) }

// WriteCSV writes db in the format ReadCSV parses.
func WriteCSV(w io.Writer, db []*Trajectory) error { return dataio.WriteCSV(w, db) }

// ReadNDJSON parses one JSON trajectory per line.
func ReadNDJSON(r io.Reader) ([]*Trajectory, error) { return dataio.ReadNDJSON(r) }

// WriteNDJSON writes db with one JSON trajectory per line.
func WriteNDJSON(w io.Writer, db []*Trajectory) error { return dataio.WriteNDJSON(w, db) }

// PickClasses selects c random class labels out of [0, numClasses), for
// building classification subsets as in Fig. 5(a).
func PickClasses(numClasses, c int, rng *rand.Rand) map[int]bool {
	return synth.PickClasses(numClasses, c, rng)
}

// SelectClasses returns the subset of db whose labels are in the set.
func SelectClasses(db []*Trajectory, classes map[int]bool) []*Trajectory {
	return synth.Classes(db, classes)
}
