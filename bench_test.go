// Figure-reproduction benchmarks: one benchmark per table/figure of the
// paper's evaluation (Section V), plus ablations. Accuracy figures report
// their headline numbers through b.ReportMetric (so `go test -bench` prints
// the series the paper plots); timing figures measure the operation the
// paper times. cmd/trajbench prints the full multi-column tables.
//
// Scales are laptop-sized; the shapes (who wins, crossovers, growth rates)
// are the reproduction target, not the authors' absolute numbers — see
// EXPERIMENTS.md.
package trajmatch_test

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"sync"
	"testing"

	"trajmatch"
	"trajmatch/internal/core"
	"trajmatch/internal/eval"
	"trajmatch/internal/raceflag"
)

// benchScale sizes all figure benchmarks.
var benchScale = eval.Scale{TaxiN: 150, ASLInstances: 6, Queries: 3, Folds: 3, Seed: 1}

var (
	taxiOnce sync.Once
	taxiDB   []*trajmatch.Trajectory
)

func benchTaxi() []*trajmatch.Trajectory {
	taxiOnce.Do(func() {
		taxiDB = trajmatch.GenerateTaxi(trajmatch.DefaultTaxiConfig(benchScale.TaxiN))
	})
	return taxiDB
}

func benchQueries(n int) []*trajmatch.Trajectory {
	db := benchTaxi()
	rng := rand.New(rand.NewSource(99))
	out := make([]*trajmatch.Trajectory, n)
	for i := range out {
		q := db[rng.Intn(len(db))].Clone()
		q.ID = 1_000_000 + i
		out[i] = q
	}
	return out
}

// reportSeries publishes the final Y value of each series as a benchmark
// metric, e.g. corr/EDwP.
func reportSeries(b *testing.B, unit string, ss []eval.Series) {
	b.Helper()
	for _, s := range ss {
		if len(s.Y) > 0 {
			b.ReportMetric(s.Y[len(s.Y)-1], unit+"/"+sanitize(s.Name))
		}
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case ' ', '/':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// BenchmarkFig5aClassification reproduces Fig. 5(a): classification
// accuracy on the ASL-style dataset at the largest class count.
func BenchmarkFig5aClassification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ss := eval.Fig5a(benchScale, []int{10})
		reportSeries(b, "acc", ss)
	}
}

// Robustness figures 5(b)–(i): Spearman correlation under each noise model,
// against k (fixed 5% noise) and against noise level (k = 10).

func BenchmarkFig5bInterVsK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSeries(b, "corr", eval.RobustnessVsK(benchScale, eval.NoiseInter, 0.05, []int{10, 50}))
	}
}

func BenchmarkFig5cInterVsN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSeries(b, "corr", eval.RobustnessVsN(benchScale, eval.NoiseInter, []float64{0.25, 1.0}))
	}
}

func BenchmarkFig5dIntraVsK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSeries(b, "corr", eval.RobustnessVsK(benchScale, eval.NoiseIntra, 0.05, []int{10, 50}))
	}
}

func BenchmarkFig5eIntraVsN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSeries(b, "corr", eval.RobustnessVsN(benchScale, eval.NoiseIntra, []float64{0.25, 1.0}))
	}
}

func BenchmarkFig5fPhaseVsK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSeries(b, "corr", eval.RobustnessVsK(benchScale, eval.NoisePhase, 0.05, []int{10, 50}))
	}
}

func BenchmarkFig5gPhaseVsN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSeries(b, "corr", eval.RobustnessVsN(benchScale, eval.NoisePhase, []float64{0.25, 1.0}))
	}
}

func BenchmarkFig5hPerturbVsK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSeries(b, "corr", eval.RobustnessVsK(benchScale, eval.NoisePerturb, 0.10, []int{10, 50}))
	}
}

func BenchmarkFig5iPerturbVsN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSeries(b, "corr", eval.RobustnessVsN(benchScale, eval.NoisePerturb, []float64{0.25, 1.0}))
	}
}

// BenchmarkFig5jQueryVsK reproduces Fig. 5(j): k-NN latency of TrajTree
// against the sequential competitors, per k.
func BenchmarkFig5jQueryVsK(b *testing.B) {
	db := benchTaxi()
	queries := benchQueries(benchScale.Queries)
	for _, k := range []int{10, 50} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ss, err := eval.QueryCompetitors(db, queries, []int{k},
					trajmatch.IndexOptions{NumVPs: 20, PivotCandidates: 32, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				reportSeries(b, "sec", ss)
			}
		})
	}
}

// BenchmarkFig6aQueryVsDBSize reproduces Fig. 6(a): latency growth with
// database size. The tree is rebuilt per size inside QueryCompetitors.
func BenchmarkFig6aQueryVsDBSize(b *testing.B) {
	for _, n := range []int{100, 200, 400} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			db := trajmatch.GenerateTaxi(trajmatch.DefaultTaxiConfig(n))
			rng := rand.New(rand.NewSource(7))
			queries := make([]*trajmatch.Trajectory, benchScale.Queries)
			for i := range queries {
				q := db[rng.Intn(len(db))].Clone()
				q.ID = 1_000_000 + i
				queries[i] = q
			}
			for i := 0; i < b.N; i++ {
				ss, err := eval.QueryCompetitors(db, queries, []int{10},
					trajmatch.IndexOptions{NumVPs: 20, PivotCandidates: 32, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				reportSeries(b, "sec", ss)
			}
		})
	}
}

// BenchmarkFig6bQueryVsTheta reproduces Fig. 6(b): query latency against θ.
func BenchmarkFig6bQueryVsTheta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ss, err := eval.QueryVsTheta(benchScale, []float64{0.4, 0.8, 0.95}, 10)
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, "sec", ss)
	}
}

// BenchmarkFig6cUBFactorVsVPs reproduces Fig. 6(c): UB-Factor tightness as
// vantage points grow, with the random baseline.
func BenchmarkFig6cUBFactorVsVPs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ss, err := eval.UBFactorVsVPs(benchScale, []int{10, 40, 80})
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, "ubf", ss)
	}
}

// BenchmarkFig6dUBFactorVsK reproduces Fig. 6(d).
func BenchmarkFig6dUBFactorVsK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ss, err := eval.UBFactorVsK(benchScale, []int{5, 25, 50}, 40)
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, "ubf", ss)
	}
}

// BenchmarkFig6eBuildVsDBSize reproduces Fig. 6(e): construction time
// growth with database size.
func BenchmarkFig6eBuildVsDBSize(b *testing.B) {
	for _, n := range []int{100, 200, 400} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			db := trajmatch.GenerateTaxi(trajmatch.DefaultTaxiConfig(n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := trajmatch.NewIndex(db, trajmatch.IndexOptions{NumVPs: 20, PivotCandidates: 32, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6fBuildVsTheta reproduces Fig. 6(f): construction time
// against θ.
func BenchmarkFig6fBuildVsTheta(b *testing.B) {
	db := benchTaxi()
	for _, th := range []float64{0.4, 0.8, 0.95} {
		b.Run(fmt.Sprintf("theta=%.2f", th), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := trajmatch.NewIndex(db, trajmatch.IndexOptions{Theta: th, NumVPs: 20, PivotCandidates: 32, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationVantagePoints measures the VP machinery's effect on
// query latency (ablation X1 of DESIGN.md).
func BenchmarkAblationVantagePoints(b *testing.B) {
	db := benchTaxi()
	queries := benchQueries(3)
	for _, disable := range []bool{false, true} {
		name := "with-vps"
		if disable {
			name = "without-vps"
		}
		b.Run(name, func(b *testing.B) {
			tree, err := trajmatch.NewIndex(db, trajmatch.IndexOptions{
				NumVPs: 20, PivotCandidates: 32, Seed: 1, DisableVantage: disable,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			calls := 0
			for i := 0; i < b.N; i++ {
				for _, q := range queries {
					_, st, _, _ := tree.SearchKNN(q, 10, nil, nil)
					calls += st.DistanceCalls
				}
			}
			b.ReportMetric(float64(calls)/float64(b.N*len(queries)), "distcalls/query")
		})
	}
}

// BenchmarkAblationCoverage isolates the Coverage factor of Eq. 3
// (ablation X2): rank robustness under intra-trajectory noise with the full
// EDwP versus the coverage-free variant.
func BenchmarkAblationCoverage(b *testing.B) {
	type metricFn struct {
		name string
		fn   func(a, c *trajmatch.Trajectory) float64
	}
	variants := []metricFn{
		{"with-coverage", core.Distance},
		{"without-coverage", core.UniformDistance},
	}
	db := benchTaxi()
	noisy := trajmatch.IntraNoise(db, 0.5, 5)
	queries := []int{0, 3, 11}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			m := fnMetric{name: v.name, fn: v.fn}
			for i := 0; i < b.N; i++ {
				corr := eval.MeanRankRobustness(db, noisy, m, queries, 10)
				b.ReportMetric(corr, "corr")
			}
		})
	}
}

// fnMetric adapts a bare distance function to the Metric interface.
type fnMetric struct {
	name string
	fn   func(a, b *trajmatch.Trajectory) float64
}

func (m fnMetric) Name() string                            { return m.name }
func (m fnMetric) Dist(a, b *trajmatch.Trajectory) float64 { return m.fn(a, b) }

// BenchmarkAblationExactVsDP compares the production EDwP dynamic program
// against the exact-recursion oracle (ablation X3).
func BenchmarkAblationExactVsDP(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	mk := func(n int) *trajmatch.Trajectory {
		pts := make([]trajmatch.STPoint, n)
		x, y := 0.0, 0.0
		for i := range pts {
			pts[i] = trajmatch.P(x, y, float64(i))
			x += rng.NormFloat64() * 3
			y += rng.NormFloat64() * 3
		}
		return trajmatch.NewTrajectory(0, pts)
	}
	a, c := mk(8), mk(8)
	b.Run("dp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			trajmatch.EDwP(a, c)
		}
	})
}

// BenchmarkDistanceThroughput compares raw pairwise distance costs of all
// metrics on typical trips — the constant factors behind Fig. 5(j)'s
// ordering (MA slowest, EDwP faster than EDR-on-interpolated).
func BenchmarkDistanceThroughput(b *testing.B) {
	db := benchTaxi()
	a, c := db[0], db[1]
	for _, m := range trajmatch.Metrics(40) {
		b.Run(m.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.Dist(a, c)
			}
		})
	}
}

// BenchmarkIndexKNN is the headline end-to-end number: one k-NN query on
// the standing index.
func BenchmarkIndexKNN(b *testing.B) {
	db := benchTaxi()
	tree, err := trajmatch.NewIndex(db, trajmatch.IndexOptions{NumVPs: 20, PivotCandidates: 32, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	q := benchQueries(1)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.SearchKNN(q, 10, nil, nil)
	}
}

// BenchmarkTreeKNN runs a rotating set of k-NN queries on the standing
// index — the benchmark the bounded-kernel speedup target (ISSUE 2) is
// measured on. It reports how many exact evaluations ran per query and
// how many of them the bounded kernel abandoned early, making the
// fast-path benefit visible next to the timing.
func BenchmarkTreeKNN(b *testing.B) {
	db := benchTaxi()
	tree, err := trajmatch.NewIndex(db, trajmatch.IndexOptions{NumVPs: 20, PivotCandidates: 32, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	queries := benchQueries(8)
	b.ResetTimer()
	calls, abandons := 0, 0
	for i := 0; i < b.N; i++ {
		_, st, _, _ := tree.SearchKNN(queries[i%len(queries)], 10, nil, nil)
		calls += st.DistanceCalls
		abandons += st.EarlyAbandons
	}
	b.ReportMetric(float64(calls)/float64(b.N), "distcalls/query")
	b.ReportMetric(float64(abandons)/float64(b.N), "abandons/query")
}

// BenchmarkDistanceBounded isolates the bounded kernel: the same pair
// evaluated unbounded, with a generous limit (full evaluation plus bound
// bookkeeping) and with a tight limit (early abandon after a few rows).
func BenchmarkDistanceBounded(b *testing.B) {
	db := benchTaxi()
	x, y := db[0], db[1]
	full := trajmatch.EDwP(x, y)
	b.Run("unbounded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			trajmatch.EDwP(x, y)
		}
	})
	b.Run("limit-loose", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			trajmatch.EDwPBounded(x, y, full*2)
		}
	})
	b.Run("limit-tight", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			trajmatch.EDwPBounded(x, y, full/100)
		}
	})
}

// BenchmarkEngineKNNBatch measures the concurrent engine's batch path
// against a sequential Tree.KNN loop over the same query set. The batch
// fans across GOMAXPROCS workers, so "batch" should approach
// "sequential" / NumCPU — near-linear speedup is the engine's headline
// claim. The result cache is disabled so every query pays full price.
func BenchmarkEngineKNNBatch(b *testing.B) {
	db := benchTaxi()
	queries := benchQueries(32)
	iopt := trajmatch.IndexOptions{NumVPs: 20, PivotCandidates: 32, Seed: 1}

	b.Run("sequential", func(b *testing.B) {
		tree, err := trajmatch.NewIndex(db, iopt)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				tree.SearchKNN(q, 10, nil, nil)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		engine, err := trajmatch.NewEngine(db, iopt, trajmatch.EngineOptions{CacheSize: -1})
		if err != nil {
			b.Fatal(err)
		}
		req := trajmatch.Query{Kind: trajmatch.QueryKNN, K: 10}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := engine.SearchBatch(context.Background(), queries, req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch-cached", func(b *testing.B) {
		engine, err := trajmatch.NewEngine(db, iopt, trajmatch.EngineOptions{})
		if err != nil {
			b.Fatal(err)
		}
		req := trajmatch.Query{Kind: trajmatch.QueryKNN, K: 10}
		engine.SearchBatch(context.Background(), queries, req) // warm the cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := engine.SearchBatch(context.Background(), queries, req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkShardedKNN profiles the sharded fan-out against the 1-shard
// engine (the pre-sharding architecture). Three views per shard count:
//
//   - engine: the end-to-end sharded engine (hash placement, shared
//     tightening bound, global merge), distcalls/abandons from stats;
//   - fanout-shared: a manual fan-out over round-robin partition trees
//     sharing one SharedBound — isolates the bound-sharing machinery;
//   - fanout-independent: the same partition trees searched with plain
//     KNN and merged — what a naive sharded engine would do.
//
// The number to watch is distcalls/query of shared vs independent: the
// shared bound is what keeps a sharded search from paying the full k-NN
// price once per shard. Wall clock on a single-CPU runner shows the
// fan-out *tax* (per-shard candidate work) without the concurrency win;
// on multi-core it turns into latency overlap. The result cache is
// disabled throughout.
func BenchmarkShardedKNN(b *testing.B) {
	db := benchTaxi()
	queries := benchQueries(32)
	iopt := trajmatch.IndexOptions{NumVPs: 20, PivotCandidates: 32, Seed: 1}

	mergeTopK := func(per [][]trajmatch.Result, k int) []trajmatch.Result {
		var all []trajmatch.Result
		for _, rs := range per {
			all = append(all, rs...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i].Dist < all[j].Dist })
		if len(all) > k {
			all = all[:k]
		}
		return all
	}

	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d/engine", shards), func(b *testing.B) {
			engine, err := trajmatch.NewEngine(db, iopt,
				trajmatch.EngineOptions{CacheSize: -1, Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			before := engine.Stats()
			req := trajmatch.Query{Kind: trajmatch.QueryKNN, K: 10}
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := engine.Search(ctx, queries[i%len(queries)], req); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			after := engine.Stats()
			n := float64(b.N)
			dist := after.DistanceCalls - before.DistanceCalls
			aband := after.EarlyAbandons - before.EarlyAbandons
			b.ReportMetric(float64(dist)/n, "distcalls/query")
			b.ReportMetric(float64(aband)/n, "abandons/query")
			b.ReportMetric(float64(dist-aband)/n, "fullevals/query")
		})
		if shards == 1 {
			continue
		}
		parts := make([][]*trajmatch.Trajectory, shards)
		for i, tr := range db {
			parts[i%shards] = append(parts[i%shards], tr)
		}
		trees := make([]*trajmatch.Index, shards)
		for i := range parts {
			tree, err := trajmatch.NewIndex(parts[i], iopt)
			if err != nil {
				b.Fatal(err)
			}
			trees[i] = tree
		}
		b.Run(fmt.Sprintf("shards=%d/fanout-shared", shards), func(b *testing.B) {
			distcalls, fulls := 0, 0
			per := make([][]trajmatch.Result, shards)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bound := trajmatch.NewSharedBound(math.Inf(1))
				for s, tree := range trees {
					res, st, _, _ := tree.SearchKNN(queries[i%len(queries)], 10, bound, nil)
					per[s] = res
					distcalls += st.DistanceCalls
					fulls += st.DistanceCalls - st.EarlyAbandons
				}
				mergeTopK(per, 10)
			}
			b.StopTimer()
			b.ReportMetric(float64(distcalls)/float64(b.N), "distcalls/query")
			b.ReportMetric(float64(fulls)/float64(b.N), "fullevals/query")
		})
		b.Run(fmt.Sprintf("shards=%d/fanout-independent", shards), func(b *testing.B) {
			distcalls, fulls := 0, 0
			per := make([][]trajmatch.Result, shards)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for s, tree := range trees {
					res, st, _, _ := tree.SearchKNN(queries[i%len(queries)], 10, nil, nil)
					per[s] = res
					distcalls += st.DistanceCalls
					fulls += st.DistanceCalls - st.EarlyAbandons
				}
				mergeTopK(per, 10)
			}
			b.StopTimer()
			b.ReportMetric(float64(distcalls)/float64(b.N), "distcalls/query")
			b.ReportMetric(float64(fulls)/float64(b.N), "fullevals/query")
		})
	}
}

// BenchmarkPrefilterKNN measures the sketch/LSH candidate prefilter
// against the exact engine on corpora large enough for candidate
// generation to matter (ISSUE 6). Same EDwP engine, same resampled
// queries (the paper's inconsistent-sampling premise: each probe is a
// database member re-sampled, so the sketch must recognise the shape,
// not the point sequence); the off/on pair differs only in
// Query.Prefilter. cands/query is the admitted population per query —
// versus the full corpus every non-prefiltered query examines —
// and distcalls/query the exact kernel starts that survive each path's
// lower bounds; the acceptance target is >= 5x fewer with the
// prefilter on at n=10k. The 100k corpus is opt-in
// (TRAJMATCH_BENCH_100K=1): its index build dominates CI smoke time.
func BenchmarkPrefilterKNN(b *testing.B) {
	sizes := []int{10_000}
	if os.Getenv("TRAJMATCH_BENCH_100K") != "" {
		sizes = append(sizes, 100_000)
	}
	iopt := trajmatch.IndexOptions{Seed: 1}
	for _, n := range sizes {
		db := trajmatch.GenerateTaxi(trajmatch.DefaultTaxiConfig(n))
		engine, err := trajmatch.NewEngine(db, iopt,
			trajmatch.EngineOptions{CacheSize: -1, Shards: 4, Prefilter: true})
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(99))
		sel := make([]*trajmatch.Trajectory, 16)
		for i := range sel {
			sel[i] = db[rng.Intn(len(db))]
		}
		queries := trajmatch.InterNoise(sel, 0.5, 100)
		for i, q := range queries {
			q.ID = 1_000_000 + i
		}
		for _, pre := range []bool{false, true} {
			b.Run(fmt.Sprintf("n=%d/prefilter=%v", n, pre), func(b *testing.B) {
				req := trajmatch.Query{Kind: trajmatch.QueryKNN, K: 10, Prefilter: pre, WithStats: true}
				distcalls, lbcalls, cands := 0, 0, 0
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ans, err := engine.Search(context.Background(), queries[i%len(queries)], req)
					if err != nil {
						b.Fatal(err)
					}
					distcalls += ans.Stats.DistanceCalls
					lbcalls += ans.Stats.LowerBoundCalls
					cands += ans.Stats.PrefilterCandidates
				}
				b.StopTimer()
				bn := float64(b.N)
				b.ReportMetric(float64(distcalls)/bn, "distcalls/query")
				b.ReportMetric(float64(lbcalls)/bn, "lbcalls/query")
				if pre {
					b.ReportMetric(float64(cands)/bn, "cands/query")
				}
			})
		}
	}
}

// BenchmarkBackendKNN compares the three pluggable metric backends —
// EDwP over the TrajTree, DTW and EDR over their bound-ordered flat
// scans — answering the same k-NN workload through the same engine
// Search path (ISSUE 5). Per-metric distcalls/query makes the pruning
// structures comparable beyond wall clock: the tree prunes whole
// subtrees by lower bound, the flat indexes prune candidates by theirs
// and abandon the rest mid-DP. The result cache is disabled so every
// query pays full price.
// TestBackendKNNAllocBudget is the allocation fence for the engine k-NN
// path BenchmarkBackendKNN times: the steady state sits around 140
// allocs per query (request/response plumbing, result slices, stats),
// and the kernels themselves run on pooled scratch over arena-backed
// members — zero per-candidate allocations. The cap is ~2x steady state:
// loose enough for scheduler noise, tight enough that any regression to
// per-candidate copies (one alloc per examined member, ~79 exact calls
// plus ~150 screened members per query here) trips it.
func TestBackendKNNAllocBudget(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("alloc counts are not meaningful under -race: sync.Pool deliberately drops Puts")
	}
	db := benchTaxi()
	queries := benchQueries(16)
	engine, err := trajmatch.NewEngine(db,
		trajmatch.IndexOptions{NumVPs: 20, PivotCandidates: 32, Seed: 1},
		trajmatch.EngineOptions{CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	req := trajmatch.Query{Kind: trajmatch.QueryKNN, K: 10, WithStats: true}
	ctx := context.Background()
	it := 0
	run := func() {
		if _, err := engine.Search(ctx, queries[it%len(queries)], req); err != nil {
			t.Fatal(err)
		}
		it++
	}
	for i := 0; i < 4; i++ {
		run() // warm pools and XY caches
	}
	const budget = 300
	if n := testing.AllocsPerRun(50, run); n > budget {
		t.Errorf("engine KNN allocates %v per query, budget %d", n, budget)
	}
}

func BenchmarkBackendKNN(b *testing.B) {
	db := benchTaxi()
	queries := benchQueries(16)
	iopt := trajmatch.IndexOptions{NumVPs: 20, PivotCandidates: 32, Seed: 1}
	engine, err := trajmatch.NewMultiEngine(db,
		[]string{trajmatch.MetricNameEDwP, trajmatch.MetricNameDTW, trajmatch.MetricNameEDR},
		iopt, trajmatch.EngineOptions{CacheSize: -1})
	if err != nil {
		b.Fatal(err)
	}
	for _, metric := range engine.Metrics() {
		b.Run(metric, func(b *testing.B) {
			req := trajmatch.Query{Kind: trajmatch.QueryKNN, K: 10, Metric: metric, WithStats: true}
			distcalls, abandons := 0, 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ans, err := engine.Search(context.Background(), queries[i%len(queries)], req)
				if err != nil {
					b.Fatal(err)
				}
				distcalls += ans.Stats.DistanceCalls
				abandons += ans.Stats.EarlyAbandons
			}
			b.StopTimer()
			b.ReportMetric(float64(distcalls)/float64(b.N), "distcalls/query")
			b.ReportMetric(float64(abandons)/float64(b.N), "abandons/query")
		})
	}
}
