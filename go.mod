module trajmatch

go 1.24
