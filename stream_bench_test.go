// Streaming ingest benchmarks: the append path (single-point vs batched
// deltas, with and without the write-ahead log) and standing-query
// fan-out at a thousand registered watchers, where the sketch token
// gate is counter-asserted to cut exact kernel evaluations.
package trajmatch_test

import (
	"fmt"
	"testing"

	"trajmatch"
)

// appendSource hands out monotonically timestamped points for a fixed
// set of live tracks, cycling geometry from a corpus disjoint from the
// sealed index.
type appendSource struct {
	pool   []*trajmatch.Trajectory
	tracks int
	seq    []int
}

func newAppendSource(tracks int, seed int64) *appendSource {
	cfg := trajmatch.DefaultTaxiConfig(tracks)
	cfg.Seed = seed
	return &appendSource{pool: trajmatch.GenerateTaxi(cfg), tracks: tracks, seq: make([]int, tracks)}
}

// next returns the track ID and its next batch of points.
func (s *appendSource) next(i, batch int) (int, []trajmatch.STPoint) {
	tr := i % s.tracks
	src := s.pool[tr].Points
	pts := make([]trajmatch.STPoint, batch)
	for j := range pts {
		p := src[s.seq[tr]%len(src)]
		pts[j] = trajmatch.P(p.X, p.Y, float64(s.seq[tr]))
		s.seq[tr]++
	}
	return 100_000 + tr, pts
}

// BenchmarkAppendThroughput prices live ingest: one Append call per
// iteration, single-point vs 16-point deltas, without a WAL and with
// the default fsync-per-acknowledgement WAL. The sketch stream extends
// on every point (prefilter enabled), so the numbers include the
// incremental token maintenance the watch gate rides on.
func BenchmarkAppendThroughput(b *testing.B) {
	cfg := trajmatch.DefaultTaxiConfig(400)
	cfg.Seed = 3
	db := trajmatch.GenerateTaxi(cfg)
	for _, walMode := range []string{"none", "always"} {
		for _, batch := range []int{1, 16} {
			b.Run(fmt.Sprintf("wal=%s/batch=%d", walMode, batch), func(b *testing.B) {
				eopt := trajmatch.EngineOptions{CacheSize: -1, Shards: 4, Prefilter: true}
				if walMode == "always" {
					eopt.WALDir = b.TempDir()
				}
				engine, err := trajmatch.NewEngine(db, trajmatch.IndexOptions{Seed: 1}, eopt)
				if err != nil {
					b.Fatal(err)
				}
				defer engine.Close()
				src := newAppendSource(256, 17)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					id, pts := src.next(i, batch)
					if _, err := engine.Append(id, 0, pts); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "points/sec")
			})
		}
	}
}

// BenchmarkWatchFanout prices the continuous-query matcher at 1000
// registered watchers per append. gate=sketch is the production path:
// only watchers whose patterns share grid cells with the appended
// points run the exact prefix kernel, and the benchmark fails unless
// the counters prove the gate skipped work (every evaluation avoided is
// a bounded EDwP sub-distance call saved). gate=exact forces all 1000
// watchers through the kernel on every append — the fan-out cost the
// gate exists to avoid.
func BenchmarkWatchFanout(b *testing.B) {
	const watchers = 1000
	cfg := trajmatch.DefaultTaxiConfig(watchers)
	cfg.Seed = 5
	patterns := trajmatch.GenerateTaxi(cfg)
	cfg2 := trajmatch.DefaultTaxiConfig(300)
	cfg2.Seed = 6
	db := trajmatch.GenerateTaxi(cfg2)
	for _, gate := range []string{"sketch", "exact"} {
		b.Run(fmt.Sprintf("gate=%s/watchers=%d", gate, watchers), func(b *testing.B) {
			engine, err := trajmatch.NewEngine(db, trajmatch.IndexOptions{Seed: 1},
				trajmatch.EngineOptions{CacheSize: -1, Shards: 2, Prefilter: true})
			if err != nil {
				b.Fatal(err)
			}
			defer engine.Close()
			for _, p := range patterns {
				// A 3-point window from the trajectory's middle third,
				// clamped for the short tracks the generator emits.
				lo := 0
				if len(p.Points) >= 6 {
					lo = len(p.Points) / 3
				}
				hi := lo + 3
				if hi > len(p.Points) {
					hi = len(p.Points)
				}
				pattern := trajmatch.NewTrajectory(-1, p.Points[lo:hi])
				if _, err := engine.Watch(pattern, "", 1e-6, 0, gate == "exact"); err != nil {
					b.Fatal(err)
				}
			}
			src := newAppendSource(64, 23)
			// Pre-warm every live track past the 2-point minimum so each
			// measured append is watch-eligible, then zero the counters'
			// baseline by reading them before the timed loop.
			for i := 0; i < src.tracks; i++ {
				id, pts := src.next(i, 2)
				if _, err := engine.Append(id, 0, pts); err != nil {
					b.Fatal(err)
				}
			}
			warm := engine.Stats().Stream
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id, pts := src.next(i, 1)
				if _, err := engine.Append(id, 0, pts); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := engine.Stats().Stream
			st.WatchEvals -= warm.WatchEvals
			st.WatchGateSkips -= warm.WatchGateSkips
			if st == nil {
				b.Fatal("no stream stats")
			}
			b.ReportMetric(float64(st.WatchEvals)/float64(b.N), "evals/append")
			if gate == "sketch" {
				// The counter-assert: the gate must have skipped watchers,
				// and strictly fewer exact evaluations than the all-pairs
				// fan-out may have run.
				if st.WatchGateSkips == 0 {
					b.Fatal("token gate skipped nothing")
				}
				if st.WatchEvals >= uint64(b.N)*watchers {
					b.Fatalf("gate cut nothing: %d evals over %d appends x %d watchers",
						st.WatchEvals, b.N, watchers)
				}
			}
		})
	}
}
