package backend

import (
	"sort"

	"trajmatch/internal/traj"
)

// This file is the shared bound-ordered scan of the flat metric indexes
// (dtwindex, edrindex — and any future metric without a tree): the
// candidate ordering, pruning, budget, shared-bound and tie-break
// discipline live here once, and an index contributes only its lower
// bound and its early-abandoning kernel.

// Cand pairs a database position with its admissible lower bound and the
// candidate's ID. Scans visit candidates in ascending (bound, ID) order
// — SortCands — so the visit order, and with it every tie-broken
// decision and stats counter downstream, is a deterministic function of
// the database alone.
type Cand struct {
	I  int
	ID int
	LB float64
}

// SortCands orders candidates by (lower bound, ID).
func SortCands(cands []Cand) {
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].LB != cands[b].LB {
			return cands[a].LB < cands[b].LB
		}
		return cands[a].ID < cands[b].ID
	})
}

// ScanKNN runs the generic early-abandoning k-NN scan over (bound, ID)-
// ordered candidates: prune strictly above the tightest known limit
// (local k-th best and the shared bound), spend the Ctl's budget, skip
// abandoned evaluations, resolve exact ties by ID, and publish every
// tightening through bound. eval must return the exact distance of
// candidate i, or (lowerBound, true) when no completion can stay within
// limit — the strict-abandon contract that keeps boundary ties eligible
// for the ID tie-break. Counters accumulate into st (DistanceCalls,
// EarlyAbandons, NodesPruned); truncation and error semantics match
// Backend.SearchKNN.
func ScanKNN(cands []Cand, k int, bound *SharedBound, ctl *Ctl, st *Stats,
	lookup func(i int) *traj.Trajectory,
	eval func(i int, limit float64) (float64, bool)) ([]Result, bool, error) {
	ans := NewKBest(k)
	truncated := false
	for ci, c := range cands {
		if ctl.Cancelled() {
			return nil, false, ctl.Err()
		}
		limit := ans.Bound()
		if bound != nil {
			if b := bound.Load(); b < limit {
				limit = b
			}
		}
		if c.LB > limit {
			// Candidates are in ascending bound order and the limit only
			// ever tightens: everything left is pruned too. The prune is
			// strict — a candidate whose bound ties the k-th best exactly
			// may still enter the answer on the ID tie-break.
			st.NodesPruned += len(cands) - ci
			break
		}
		if !ctl.Take() {
			truncated = true
			break
		}
		st.DistanceCalls++
		d, abandoned := eval(c.I, limit)
		if abandoned {
			if ctl.Cancelled() {
				// The kernel aborted on the flag, not the limit; the value
				// is meaningless and the poisoned answer is discarded.
				return nil, false, ctl.Err()
			}
			st.EarlyAbandons++
			continue
		}
		if ans.Offer(lookup(c.I), d) && bound != nil && ans.Full() {
			bound.Tighten(ans.Bound())
		}
	}
	if err := ctl.Err(); err != nil {
		return nil, false, err
	}
	return ans.Results(), truncated, nil
}

// ScanRange is the radius counterpart of ScanKNN: the radius seeds every
// evaluation's abandon limit, members whose exact distance exceeds it
// are dropped, and the answer sorts by (distance, ID).
func ScanRange(cands []Cand, radius float64, ctl *Ctl, st *Stats,
	lookup func(i int) *traj.Trajectory,
	eval func(i int, limit float64) (float64, bool)) ([]Result, bool, error) {
	var out []Result
	truncated := false
	for ci, c := range cands {
		if ctl.Cancelled() {
			return nil, false, ctl.Err()
		}
		if c.LB > radius {
			st.NodesPruned += len(cands) - ci
			break
		}
		if !ctl.Take() {
			truncated = true
			break
		}
		st.DistanceCalls++
		d, abandoned := eval(c.I, radius)
		if abandoned {
			if ctl.Cancelled() {
				return nil, false, ctl.Err()
			}
			st.EarlyAbandons++
			continue
		}
		if d <= radius {
			out = append(out, Result{Traj: lookup(c.I), Dist: d})
		}
	}
	if err := ctl.Err(); err != nil {
		return nil, false, err
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Dist != out[b].Dist {
			return out[a].Dist < out[b].Dist
		}
		return out[a].Traj.ID < out[b].Traj.ID
	})
	return out, truncated, nil
}
