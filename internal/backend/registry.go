package backend

import (
	"sort"
	"sync"
)

// The registry is the set of metric names the build knows about: every
// index package registers its identifier from an init function, so a
// binary that links a backend automatically knows its name. The serving
// stack uses the set to distinguish a mistyped metric ("unknown_metric")
// from a known one that was simply not booted ("metric_not_loaded"), and
// to list the valid spellings in error messages.
var (
	regMu    sync.RWMutex
	registry = map[string]bool{}
)

// Register adds name to the set of known metric identifiers. Index
// packages call it from init; registering the same name twice is a no-op
// so tests may re-register freely.
func Register(name string) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[name] = true
}

// Known reports whether name is a registered metric identifier.
func Known(name string) bool {
	regMu.RLock()
	defer regMu.RUnlock()
	return registry[name]
}

// Names returns the sorted registered metric identifiers.
func Names() []string {
	regMu.RLock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	regMu.RUnlock()
	sort.Strings(out)
	return out
}
