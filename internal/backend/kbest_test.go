package backend

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"trajmatch/internal/traj"
)

// TestKBestMatchesSort: for random candidate streams with deliberate
// ties, KBest holds exactly the k smallest (distance, ID) pairs in
// order, whatever order they were offered in.
func TestKBestMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for it := 0; it < 50; it++ {
		n := 1 + rng.Intn(40)
		k := 1 + rng.Intn(12)
		type pair struct {
			id int
			d  float64
		}
		cands := make([]pair, n)
		for i := range cands {
			// Coarse quantisation forces frequent exact ties.
			cands[i] = pair{id: i, d: float64(rng.Intn(5))}
		}
		rng.Shuffle(n, func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })

		q := NewKBest(k)
		for _, c := range cands {
			q.Offer(&traj.Trajectory{ID: c.id}, c.d)
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].d != cands[j].d {
				return cands[i].d < cands[j].d
			}
			return cands[i].id < cands[j].id
		})
		want := cands
		if len(want) > k {
			want = want[:k]
		}
		got := q.Results()
		if len(got) != len(want) {
			t.Fatalf("it=%d: %d results, want %d", it, len(got), len(want))
		}
		for i := range got {
			if got[i].Traj.ID != want[i].id || got[i].Dist != want[i].d {
				t.Fatalf("it=%d rank %d: (%d, %v), want (%d, %v)",
					it, i, got[i].Traj.ID, got[i].Dist, want[i].id, want[i].d)
			}
		}
		if q.Full() != (n >= k) {
			t.Fatalf("it=%d: Full() = %v with n=%d k=%d", it, q.Full(), n, k)
		}
		wantBound := math.Inf(1)
		if n >= k {
			wantBound = want[len(want)-1].d
		}
		if q.Bound() != wantBound {
			t.Fatalf("it=%d: Bound() = %v, want %v", it, q.Bound(), wantBound)
		}
	}
}

// TestKBestTieAtBound: a candidate tying the k-th distance exactly but
// with a smaller ID must displace the held entry — the strict-abandon
// contract of Bound depends on it.
func TestKBestTieAtBound(t *testing.T) {
	q := NewKBest(2)
	q.Offer(&traj.Trajectory{ID: 10}, 1)
	q.Offer(&traj.Trajectory{ID: 20}, 5)
	if !q.Offer(&traj.Trajectory{ID: 15}, 5) {
		t.Fatal("equal-distance smaller-ID candidate was rejected")
	}
	res := q.Results()
	if res[1].Traj.ID != 15 {
		t.Fatalf("held IDs %d/%d, want the ID tie-break to keep 15", res[0].Traj.ID, res[1].Traj.ID)
	}
	if q.Offer(&traj.Trajectory{ID: 30}, 5) {
		t.Fatal("equal-distance larger-ID candidate was kept")
	}
}

func TestRegistry(t *testing.T) {
	Register("test-metric-x")
	Register("test-metric-x") // idempotent
	if !Known("test-metric-x") {
		t.Fatal("registered name not known")
	}
	if Known("test-metric-y") {
		t.Fatal("unregistered name known")
	}
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
	seen := 0
	for _, n := range names {
		if n == "test-metric-x" {
			seen++
		}
	}
	if seen != 1 {
		t.Fatalf("registered name appears %d times in %v", seen, names)
	}
}
