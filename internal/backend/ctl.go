package backend

import (
	"context"
	"sync/atomic"

	"trajmatch/internal/core"
)

// Ctl carries the cooperative controls of one logical query through the
// search stack: a cancellation flag derived from the caller's
// context.Context, and an optional budget of exact distance evaluations.
// One Ctl is shared by every shard search a query fans out to, so the
// budget is global to the query and a single context firing stops all of
// its searches.
//
// Backends poll Cancelled between candidate evaluations (an atomic
// load), and hand the underlying core.Cancel to their DP kernels, which
// poll it once per DP row — a fired context therefore aborts a query
// within one DP row of work, even mid-evaluation.
//
// A nil *Ctl is valid everywhere and means "no deadline, no budget"; the
// search paths are then bit-identical to the pre-Ctl implementations.
type Ctl struct {
	ctx     context.Context
	flag    core.Cancel
	stop    func() bool // detaches the context watcher; nil if none armed
	budget  atomic.Int64
	limited bool
}

// NewCtl arms a Ctl on ctx with an optional cap on exact distance
// evaluations (maxEvals <= 0 means unlimited). Callers must Release the
// Ctl when the query finishes to detach the context watcher.
func NewCtl(ctx context.Context, maxEvals int) *Ctl {
	if ctx == nil {
		ctx = context.Background()
	}
	c := &Ctl{ctx: ctx}
	if maxEvals > 0 {
		c.limited = true
		c.budget.Store(int64(maxEvals))
	}
	if ctx.Done() != nil {
		c.stop = context.AfterFunc(ctx, c.flag.Set)
	}
	return c
}

// Release detaches the Ctl from its context. Safe on nil and idempotent;
// callers should defer it next to NewCtl.
func (c *Ctl) Release() {
	if c != nil && c.stop != nil {
		c.stop()
	}
}

// Cancelled reports whether the context has fired. One atomic load; safe
// on nil.
func (c *Ctl) Cancelled() bool { return c != nil && c.flag.Cancelled() }

// Err returns the context's error once the Ctl is cancelled, and nil
// while the query may keep running. Safe on nil.
func (c *Ctl) Err() error {
	if c == nil {
		return nil
	}
	if err := c.ctx.Err(); err != nil {
		return err
	}
	if c.flag.Cancelled() {
		// The flag can only be set by the context watcher, so ctx.Err()
		// is non-nil by now in practice; this is a belt-and-braces
		// fallback for a Set racing the ctx bookkeeping.
		return context.Canceled
	}
	return nil
}

// CancelFlag returns the kernel-facing cancellation flag (nil for a nil
// Ctl, which the kernels treat as "never cancelled").
func (c *Ctl) CancelFlag() *core.Cancel {
	if c == nil {
		return nil
	}
	return &c.flag
}

// Take consumes one unit of the evaluation budget, reporting false when
// the budget is exhausted — the search must then stop and mark its
// answer truncated. Unlimited (or nil) Ctls always grant.
func (c *Ctl) Take() bool {
	if c == nil || !c.limited {
		return true
	}
	return c.budget.Add(-1) >= 0
}
