package backend

import (
	"math"
	"sort"

	"trajmatch/internal/traj"
)

// KBest accumulates the k best candidates under the lexicographic
// (distance, ID) order — the same order the engine's cross-shard merge
// sorts by. Using it inside a backend makes the answer a function of the
// candidate set alone: when several candidates tie exactly at the k-th
// distance, membership is decided by ID, not by the order the scan
// happened to visit them. That determinism is what lets a sharded fan-out
// be byte-identical to the standalone index (and a re-run byte-identical
// to the last one) even on databases with duplicated trajectories.
//
// k is small in practice, so the answer set is a sorted slice with
// insertion by binary search rather than a heap; Worst is O(1).
type KBest struct {
	k   int
	res []Result
}

// NewKBest returns an accumulator retaining the k best (smallest
// (distance, ID)) candidates.
func NewKBest(k int) *KBest {
	if k < 0 {
		k = 0
	}
	return &KBest{k: k, res: make([]Result, 0, k)}
}

func less(aDist float64, aID int, bDist float64, bID int) bool {
	if aDist != bDist {
		return aDist < bDist
	}
	return aID < bID
}

// Offer inserts the candidate if it belongs in the current k best,
// evicting the (distance, ID)-largest entry when over capacity. It
// reports whether the candidate was kept.
func (q *KBest) Offer(t *traj.Trajectory, d float64) bool {
	if q.k <= 0 {
		return false
	}
	if len(q.res) >= q.k {
		w := q.res[len(q.res)-1]
		if !less(d, t.ID, w.Dist, w.Traj.ID) {
			return false
		}
	}
	i := sort.Search(len(q.res), func(i int) bool {
		return less(d, t.ID, q.res[i].Dist, q.res[i].Traj.ID)
	})
	if len(q.res) < q.k {
		q.res = append(q.res, Result{})
	}
	copy(q.res[i+1:], q.res[i:])
	q.res[i] = Result{Traj: t, Dist: d}
	return true
}

// Bound returns the tightest abandon limit the answer set justifies: the
// k-th best distance once full, +Inf before. A candidate whose distance
// strictly exceeds it can never enter the answer (a candidate tying it
// exactly still can, on ID — callers must abandon strictly above Bound,
// never at it).
func (q *KBest) Bound() float64 {
	if len(q.res) < q.k {
		return math.Inf(1)
	}
	return q.res[len(q.res)-1].Dist
}

// Full reports whether k candidates are held.
func (q *KBest) Full() bool { return len(q.res) >= q.k }

// Results returns the held candidates sorted by (distance, ID). The
// slice is the accumulator's own backing store; do not Offer afterwards.
func (q *KBest) Results() []Result { return q.res }
