package backend

import "trajmatch/internal/traj"

// CandidateInfo reports how a prefilter candidate set was assembled; the
// engine folds it into the per-query Stats.
type CandidateInfo struct {
	// LSHHits is how many candidates the banded signature probes alone
	// admitted.
	LSHHits int
	// Widened reports that the overlap ranking added members beyond the
	// LSH hits to reach the requested floor.
	Widened bool
	// FullScan reports that the index was smaller than the requested
	// floor, so every member was admitted (the prefilter degrades to
	// the exact scan on tiny shards).
	FullScan bool
}

// CandidateSource produces small candidate ID sets for a query — the
// sketch/LSH prefilter side of the two-stage filter-and-verify search.
// The returned IDs must be sorted ascending and deterministic for a
// fixed (members, parameters, query, want). A CandidateSource trades
// recall for work: it may miss true neighbours, but every ID it returns
// is verified exactly, so answers are always exact over the admitted
// set. The engine owns the source (one per shard, shared across
// metrics, since candidacy depends on geometry alone).
type CandidateSource interface {
	Candidates(q *traj.Trajectory, want int) ([]int, CandidateInfo)
}

// CandidateSearcher is the capability a Backend implements to opt into
// prefiltered search: exact k-NN restricted to an externally supplied
// candidate set. ids must be sorted ascending; IDs not present in the
// backend are skipped silently (the prefilter and the backend may
// observe a mutation at slightly different instants — verification by
// presence makes that harmless). The search contract (bound, ctl,
// determinism, truncation, error returns) is identical to
// Backend.SearchKNN. Backends without the capability are answered with
// ErrNotSupported by the engine.
type CandidateSearcher interface {
	SearchKNNIn(q *traj.Trajectory, ids []int, k int, bound *SharedBound, ctl *Ctl) ([]Result, Stats, bool, error)
}
