package backend

import (
	"math"
	"sync/atomic"
)

// SharedBound is a monotonically tightening upper bound shared by
// concurrent searches. The sharded engine fans one k-NN query out across
// per-shard backends, and every shard search publishes its local
// k-th-best distance here the moment its answer set fills: a tight bound
// found in one shard immediately shrinks the abandon limit of the dynamic
// programs running in all the others, so cross-shard pruning costs one
// atomic load per evaluation.
//
// The bound is admissible for the *global* answer: a shard holding k
// exact distances no worse than w proves the global k-th best is at most
// w, so any candidate anywhere whose distance exceeds w can be discarded.
// Tighten only ever lowers the value, which keeps that argument valid
// regardless of interleaving.
type SharedBound struct {
	bits atomic.Uint64
}

// NewSharedBound returns a bound seeded at limit (use +Inf for an
// unconstrained search).
func NewSharedBound(limit float64) *SharedBound {
	b := &SharedBound{}
	b.bits.Store(math.Float64bits(limit))
	return b
}

// Load returns the current bound.
func (b *SharedBound) Load() float64 {
	return math.Float64frombits(b.bits.Load())
}

// Tighten lowers the bound to v if v is smaller; larger values are
// ignored, so the bound is monotone under any interleaving.
func (b *SharedBound) Tighten(v float64) {
	for {
		cur := b.bits.Load()
		if v >= math.Float64frombits(cur) {
			return
		}
		if b.bits.CompareAndSwap(cur, math.Float64bits(v)) {
			return
		}
	}
}
