// Package backend defines the contract between the serving engine and a
// metric index: one Backend interface capturing what the engine actually
// needs — k-NN and range search under a Ctl (cancellation + evaluation
// budget) and an optional SharedBound — plus the unified Result/Stats
// types every implementation answers with, capability interfaces for the
// operations not every metric can support (sub-trajectory search,
// mutation, persistence), and a registry of known metric names.
//
// The package deliberately depends only on the trajectory model and the
// kernel cancellation flag, so any index implementation can adopt it
// without pulling in the engine: trajtree (the reference implementation,
// fully capable) aliases these types directly, and the flat DTW/EDR
// indexes implement the interface over the shared bound-ordered scan
// (scan.go). The sharded engine in internal/server is generic over
// Backend — sharding, shared-bound fan-out, caching, cancellation and
// stats accounting are written once and serve every metric. (Snapshot
// persistence is the one capability the engine recognises by concrete
// type rather than an interface here, because the stream format is
// tree-specific; see the server's snapshot notes.)
package backend

import (
	"errors"

	"trajmatch/internal/traj"
)

// Result is one search answer: a matched trajectory and its distance
// under the backend's metric. All backends share this type, so the
// engine's merge, cache and wire layers never see a metric-specific
// answer shape.
type Result struct {
	Traj *traj.Trajectory
	Dist float64
}

// Stats is per-query work instrumentation, shared by every backend. The
// counters were named for the tree search but map naturally onto flat
// bound-ordered scans too: DistanceCalls counts exact metric evaluations
// started, EarlyAbandons the ones the bounded kernel cut short,
// LowerBoundCalls the admissible lower bounds computed, NodesPruned the
// candidates (or subtrees) rejected by a bound alone, and NodesVisited
// the index nodes expanded (zero for a flat index).
type Stats struct {
	// DistanceCalls counts exact metric evaluations (possibly abandoned).
	DistanceCalls int
	// LowerBoundCalls counts admissible lower-bound evaluations.
	LowerBoundCalls int
	// NodesVisited counts index nodes expanded during the search.
	NodesVisited int
	// NodesPruned counts nodes or candidates discarded by a bound test
	// without an exact evaluation.
	NodesPruned int
	// EarlyAbandons counts exact evaluations the bounded kernel cut short
	// because no completion could beat the current pruning threshold.
	// DistanceCalls - EarlyAbandons is the number of full evaluations.
	EarlyAbandons int
	// PrefilterCandidates counts the candidates the sketch prefilter
	// admitted for exact verification (zero when the query did not ask
	// for the prefilter).
	PrefilterCandidates int
	// PrefilterSkipped counts indexed trajectories the prefilter
	// excluded without any bound or distance computation — the
	// sub-linear saving the sketch layer buys.
	PrefilterSkipped int
}

// Add accumulates o into s; the engine uses it to fold per-shard and
// per-query stats into cumulative counters.
func (s *Stats) Add(o Stats) {
	s.DistanceCalls += o.DistanceCalls
	s.LowerBoundCalls += o.LowerBoundCalls
	s.NodesVisited += o.NodesVisited
	s.NodesPruned += o.NodesPruned
	s.EarlyAbandons += o.EarlyAbandons
	s.PrefilterCandidates += o.PrefilterCandidates
	s.PrefilterSkipped += o.PrefilterSkipped
}

// Backend is one shard's worth of metric index: the minimal surface the
// engine needs to build, route and answer queries. Implementations must
// support concurrent searches; the engine serialises every mutation
// (capability Mutable) against searches through a per-shard lock.
//
// Search contract, shared by all methods: bound may be nil (a
// self-contained search) or shared across concurrent searches of disjoint
// shards — the search may prune and abandon against it, and should
// publish its local k-th best through Tighten the moment its answer set
// fills, but ignoring the bound is merely slower, never wrong. ctl may be
// nil (uncancellable, unbudgeted); otherwise the search must poll
// Cancelled between candidate evaluations and hand CancelFlag to its DP
// kernel so a fired context aborts within one row of work. Returns are
// the (distance, ID)-deterministic answer list, the per-query Stats, a
// truncation flag (the Ctl's evaluation budget ran out; the answer is
// best-effort), and ctl's context error — when non-nil, the other returns
// are meaningless and must be discarded.
type Backend interface {
	// Size returns the number of indexed trajectories.
	Size() int
	// Lookup returns the indexed trajectory with the given ID, or nil.
	Lookup(id int) *traj.Trajectory
	// SearchKNN answers exact k-nearest-neighbour search under the
	// backend's metric, sorted by (distance, ID).
	SearchKNN(q *traj.Trajectory, k int, bound *SharedBound, ctl *Ctl) ([]Result, Stats, bool, error)
	// SearchRange returns every indexed trajectory within radius of q,
	// sorted by (distance, ID).
	SearchRange(q *traj.Trajectory, radius float64, ctl *Ctl) ([]Result, Stats, bool, error)
}

// SubSearcher is the capability interface for sub-trajectory search
// (EDwPsub, Eq. 6). Backends whose metric has no sub-trajectory form
// simply do not implement it; the engine answers ErrNotSupported.
type SubSearcher interface {
	SearchSub(q *traj.Trajectory, k int, bound *SharedBound, ctl *Ctl) ([]Result, Stats, bool, error)
}

// Distancer is the capability interface for one exact whole-trajectory
// distance evaluation under the backend's metric, outside any index
// walk. The live-track scan and the continuous-query matcher use it to
// evaluate unindexed (still growing) trajectories with the same bounded
// kernel, limit semantics and cancellation the indexed search uses:
// returns the exact distance when it is <= limit, +Inf otherwise, and
// reports whether the evaluation was abandoned (by the limit or by
// ctl's cancellation — when ctl.Err() is non-nil the result is
// meaningless). limit may be +Inf; ctl may be nil.
type Distancer interface {
	DistanceBetween(q, t *traj.Trajectory, limit float64, ctl *Ctl) (float64, bool)
}

// SubDistancer is the sub-trajectory form (EDwPsub, Eq. 6): the
// distance from q to the best contiguous sub-trajectory of t, with the
// same bounded-kernel contract as Distancer. Metrics without a
// sub-trajectory form simply do not implement it.
type SubDistancer interface {
	SubDistanceBetween(q, t *traj.Trajectory, limit float64, ctl *Ctl) (float64, bool)
}

// Mutable is the capability interface for in-place updates. The engine
// only accepts Insert/Delete/Rebuild when every loaded backend is
// Mutable — a partial update would let the metrics' views of the corpus
// diverge — and answers ErrNotSupported otherwise.
type Mutable interface {
	Insert(tr *traj.Trajectory) error
	Delete(id int) bool
	Rebuild() error
}

// ErrNotSupported reports that a backend lacks the capability an
// operation needs (mutation on a static index, sub-trajectory search on
// a metric without one). The HTTP layer maps it to 501 not_implemented.
var ErrNotSupported = errors.New("not supported by backend")

// Spec names a bootable metric backend and knows how to build one
// Backend per shard partition. Build is called once per shard with that
// shard's slice of the database; any whole-database parameters (an ε
// derived from global statistics, tree options) must be fixed inside the
// closure before sharding, so every shard agrees on them.
type Spec struct {
	// Name is the metric identifier ("edwp", "dtw", "edr"); it must be
	// registered via Register.
	Name string
	// Build constructs one shard's backend over db.
	Build func(db []*traj.Trajectory) (Backend, error)
}
