package wal

import (
	"encoding/binary"
	"fmt"
	"math"

	"trajmatch/internal/traj"
)

// Op is the mutation kind a WAL record carries.
type Op uint8

const (
	// OpInsert records an accepted Engine.Insert; the payload carries
	// the full trajectory.
	OpInsert Op = 1
	// OpDelete records an accepted Engine.Delete; the payload carries
	// the trajectory ID.
	OpDelete Op = 2
	// OpAppend records an accepted Engine.Append onto a live (unsealed)
	// track: the payload carries the track's ID and label, the offset
	// (the track's point count before this append), and the appended
	// points. The offset makes replay idempotent — a record whose points
	// the track already holds is skipped, so a re-logged full-state
	// record (the snapshot carry-over) converges instead of doubling the
	// track.
	OpAppend Op = 3
	// OpSeal records an accepted Engine.Seal: the live track with the
	// given ID was folded into the sealed indexes. The points do not
	// travel — replay reconstructs the track from its OpAppend records
	// first, then seals it.
	OpSeal Op = 4
)

func (op Op) String() string {
	switch op {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpAppend:
		return "append"
	case OpSeal:
		return "seal"
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Record is one logged mutation. ID is always set; Traj only for
// OpInsert and OpAppend (where its Points are the appended delta and
// Offset is the track length the delta extends); Offset only for
// OpAppend.
type Record struct {
	Op     Op
	ID     int
	Offset int
	Traj   *traj.Trajectory
}

// Insert returns the record logging an insert of tr.
func Insert(tr *traj.Trajectory) Record { return Record{Op: OpInsert, ID: tr.ID, Traj: tr} }

// Delete returns the record logging a delete of id.
func Delete(id int) Record { return Record{Op: OpDelete, ID: id} }

// AppendPoints returns the record logging an append of pts onto live
// track id at the given offset (the track's point count before the
// append). label rides along so replay can recreate the track from its
// first record.
func AppendPoints(id, label, offset int, pts []traj.Point) Record {
	tr := &traj.Trajectory{ID: id, Label: label, Points: pts}
	return Record{Op: OpAppend, ID: id, Offset: offset, Traj: tr}
}

// Seal returns the record logging a seal of live track id.
func Seal(id int) Record { return Record{Op: OpSeal, ID: id} }

// encodeRecord serialises a record payload (the bytes the frame CRC
// covers): one op byte, then varint fields. An insert carries
// (id, label, #points, 3×float64 per point, little-endian); a delete
// carries just the id.
func encodeRecord(rec Record) ([]byte, error) {
	switch rec.Op {
	case OpInsert:
		if rec.Traj == nil {
			return nil, fmt.Errorf("wal: insert record without trajectory")
		}
		tr := rec.Traj
		buf := make([]byte, 1, 1+2*binary.MaxVarintLen64+binary.MaxVarintLen64+24*len(tr.Points))
		buf[0] = byte(OpInsert)
		buf = binary.AppendVarint(buf, int64(tr.ID))
		buf = binary.AppendVarint(buf, int64(tr.Label))
		buf = binary.AppendUvarint(buf, uint64(len(tr.Points)))
		for _, p := range tr.Points {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.X))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Y))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.T))
		}
		return buf, nil
	case OpDelete:
		buf := make([]byte, 1, 1+binary.MaxVarintLen64)
		buf[0] = byte(OpDelete)
		buf = binary.AppendVarint(buf, int64(rec.ID))
		return buf, nil
	case OpAppend:
		if rec.Traj == nil {
			return nil, fmt.Errorf("wal: append record without points")
		}
		if rec.Offset < 0 {
			return nil, fmt.Errorf("wal: append record with negative offset %d", rec.Offset)
		}
		tr := rec.Traj
		buf := make([]byte, 1, 1+2*binary.MaxVarintLen64+2*binary.MaxVarintLen64+24*len(tr.Points))
		buf[0] = byte(OpAppend)
		buf = binary.AppendVarint(buf, int64(rec.ID))
		buf = binary.AppendVarint(buf, int64(tr.Label))
		buf = binary.AppendUvarint(buf, uint64(rec.Offset))
		buf = binary.AppendUvarint(buf, uint64(len(tr.Points)))
		for _, p := range tr.Points {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.X))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Y))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.T))
		}
		return buf, nil
	case OpSeal:
		buf := make([]byte, 1, 1+binary.MaxVarintLen64)
		buf[0] = byte(OpSeal)
		buf = binary.AppendVarint(buf, int64(rec.ID))
		return buf, nil
	}
	return nil, fmt.Errorf("wal: unknown op %d", rec.Op)
}

// decodeRecord parses a payload previously produced by encodeRecord. It
// rejects trailing or missing bytes: the payload passed its checksum, so
// any structural surprise means a writer bug, not disk corruption, and
// surfaces as a hard error.
func decodeRecord(p []byte) (Record, error) {
	if len(p) == 0 {
		return Record{}, fmt.Errorf("wal: empty record payload")
	}
	op, rest := Op(p[0]), p[1:]
	switch op {
	case OpInsert:
		id, n := binary.Varint(rest)
		if n <= 0 {
			return Record{}, fmt.Errorf("wal: insert record: bad id")
		}
		rest = rest[n:]
		label, n := binary.Varint(rest)
		if n <= 0 {
			return Record{}, fmt.Errorf("wal: insert record: bad label")
		}
		rest = rest[n:]
		npts, n := binary.Uvarint(rest)
		if n <= 0 {
			return Record{}, fmt.Errorf("wal: insert record: bad point count")
		}
		rest = rest[n:]
		if uint64(len(rest)) != 24*npts {
			return Record{}, fmt.Errorf("wal: insert record: %d bytes for %d points", len(rest), npts)
		}
		pts := make([]traj.Point, npts)
		for i := range pts {
			pts[i] = traj.Point{
				X: math.Float64frombits(binary.LittleEndian.Uint64(rest[0:8])),
				Y: math.Float64frombits(binary.LittleEndian.Uint64(rest[8:16])),
				T: math.Float64frombits(binary.LittleEndian.Uint64(rest[16:24])),
			}
			rest = rest[24:]
		}
		tr := traj.New(int(id), pts)
		tr.Label = int(label)
		return Record{Op: OpInsert, ID: int(id), Traj: tr}, nil
	case OpDelete:
		id, n := binary.Varint(rest)
		if n <= 0 {
			return Record{}, fmt.Errorf("wal: delete record: bad id")
		}
		if len(rest) != n {
			return Record{}, fmt.Errorf("wal: delete record: %d trailing bytes", len(rest)-n)
		}
		return Record{Op: OpDelete, ID: int(id)}, nil
	case OpAppend:
		id, n := binary.Varint(rest)
		if n <= 0 {
			return Record{}, fmt.Errorf("wal: append record: bad id")
		}
		rest = rest[n:]
		label, n := binary.Varint(rest)
		if n <= 0 {
			return Record{}, fmt.Errorf("wal: append record: bad label")
		}
		rest = rest[n:]
		offset, n := binary.Uvarint(rest)
		if n <= 0 {
			return Record{}, fmt.Errorf("wal: append record: bad offset")
		}
		rest = rest[n:]
		npts, n := binary.Uvarint(rest)
		if n <= 0 {
			return Record{}, fmt.Errorf("wal: append record: bad point count")
		}
		rest = rest[n:]
		if uint64(len(rest)) != 24*npts {
			return Record{}, fmt.Errorf("wal: append record: %d bytes for %d points", len(rest), npts)
		}
		pts := make([]traj.Point, npts)
		for i := range pts {
			pts[i] = traj.Point{
				X: math.Float64frombits(binary.LittleEndian.Uint64(rest[0:8])),
				Y: math.Float64frombits(binary.LittleEndian.Uint64(rest[8:16])),
				T: math.Float64frombits(binary.LittleEndian.Uint64(rest[16:24])),
			}
			rest = rest[24:]
		}
		return AppendPoints(int(id), int(label), int(offset), pts), nil
	case OpSeal:
		id, n := binary.Varint(rest)
		if n <= 0 {
			return Record{}, fmt.Errorf("wal: seal record: bad id")
		}
		if len(rest) != n {
			return Record{}, fmt.Errorf("wal: seal record: %d trailing bytes", len(rest)-n)
		}
		return Record{Op: OpSeal, ID: int(id)}, nil
	}
	return Record{}, fmt.Errorf("wal: unknown op %d", op)
}
