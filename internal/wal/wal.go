// Package wal implements the engine's write-ahead log: a directory of
// append-only segment files holding length-prefixed, CRC32C-checksummed
// mutation records (insert/delete). Every accepted mutation is appended
// before it is applied, so a reboot replays the log on top of the latest
// snapshot and loses nothing that was acknowledged durable.
//
// Frame layout (little-endian):
//
//	[uint32 payload length][uint32 CRC32C(payload)][payload]
//
// The payload starts with an op byte; see record.go. Segments are named
// wal-NNNNNNNN.seg and rotate at Options.SegmentBytes; rotation fsyncs
// and closes the old segment first, so only the newest segment can ever
// hold unsynced or torn bytes.
//
// Durability is a policy (Options.Policy): SyncAlways fsyncs before a
// mutation is acknowledged — concurrent committers share one group
// fsync — SyncInterval fsyncs on a timer, and SyncNever leaves flushing
// to the OS. Append establishes log order; Commit waits for durability
// per the policy, so callers can serialise (append, apply) under a lock
// and pay the fsync outside it.
//
// Recovery semantics are asymmetric by design: a torn record at the tail
// of the newest segment is the signature of a crash mid-append and is
// dropped (the file is truncated back to the last whole record — that
// mutation was never acknowledged under SyncAlways), while a corrupt
// record with valid data after it, or any damage in an older segment,
// cannot be explained by a crash and fails recovery hard with
// ErrCorrupt rather than silently dropping acknowledged writes.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"trajmatch/internal/faultfs"
)

// ErrCorrupt reports interior log corruption: a damaged record that
// cannot be a torn tail. Recovery refuses to proceed past it because
// records after the damage may be acknowledged mutations.
var ErrCorrupt = errors.New("wal: corrupt log")

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs before Commit returns: an acknowledged mutation
	// survives power loss. Concurrent commits share one fsync (group
	// commit). The zero value, so the safest policy is the default.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background timer (Options.Interval):
	// bounded data loss — at most one interval of acknowledged
	// mutations — at near-SyncNever append cost.
	SyncInterval
	// SyncNever never fsyncs explicitly; the OS flushes when it
	// pleases. Survives process crashes (the page cache persists) but
	// not power loss.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("syncpolicy(%d)", int(p))
}

// ParseSyncPolicy parses the -wal-sync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (one of always, interval, never)", s)
}

// Options configure a Log.
type Options struct {
	// Dir is the log directory, created if needed.
	Dir string
	// FS routes all file operations; nil means the real filesystem.
	// The crash harness injects faultfs.Injector here.
	FS faultfs.FS
	// Policy selects the sync policy; the zero value is SyncAlways.
	Policy SyncPolicy
	// Interval is the SyncInterval fsync period; 0 means 100ms.
	Interval time.Duration
	// SegmentBytes rotates the active segment once it reaches this
	// size; 0 means 64 MiB.
	SegmentBytes int64
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = faultfs.OS{}
	}
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	return o
}

// Stats is a point-in-time snapshot of a Log's counters.
type Stats struct {
	// Policy is the sync policy's flag string.
	Policy string `json:"policy"`
	// Segments is the number of segment files currently on disk.
	Segments int `json:"segments"`
	// SizeBytes is the total size of those segments.
	SizeBytes int64 `json:"size_bytes"`
	// Appends counts records appended since Open (replayed records do
	// not count).
	Appends uint64 `json:"appends"`
	// Syncs counts fsyncs issued; under SyncAlways, Appends/Syncs is
	// the group-commit batching factor.
	Syncs uint64 `json:"syncs"`
	// Rotations counts segment rotations since Open.
	Rotations uint64 `json:"rotations"`
	// Replayed counts records recovered by Replay at boot.
	Replayed uint64 `json:"replayed"`
	// DroppedTailRecords counts torn tail records dropped by recovery
	// (0 or 1 per boot: a tear loses framing, so at most one tail is
	// identified and everything after it is its bytes).
	DroppedTailRecords uint64 `json:"dropped_tail_records"`
	// DroppedTailBytes is the byte length of the dropped tail.
	DroppedTailBytes uint64 `json:"dropped_tail_bytes"`
}

// castagnoli is the CRC32C table; hardware-accelerated on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const frameHeaderLen = 8

// maxRecordLen bounds a frame's claimed payload length; anything larger
// is treated as damage, not data, so corrupt length fields cannot drive
// giant allocations.
const maxRecordLen = 256 << 20

// Log is an open write-ahead log. Open scans the directory, Replay
// hands every recovered record to the caller exactly once (and must be
// called before the first Append), and Append/Commit log new mutations.
// All methods are safe for concurrent use after Replay returns.
type Log struct {
	opt Options
	fs  faultfs.FS

	mu       sync.Mutex // guards the fields below; establishes append order
	f        faultfs.File
	segs     []int // sorted indexes of segments on disk; last is active
	segSize  int64 // size of the active segment
	lsn      uint64
	replayed bool
	closed   bool
	failed   error // sticky: a failed append leaves an undefined tail

	// Group commit: committers wait until syncedLSN covers their record;
	// one of them becomes the leader and fsyncs for the whole cohort.
	syncMu     sync.Mutex
	syncCond   *sync.Cond
	syncedLSN  uint64
	syncLeader bool
	syncErr    error // sticky: after a failed fsync durability is unknown

	stopInterval chan struct{}
	intervalDone chan struct{}

	statMu  sync.Mutex
	appends uint64
	syncs   uint64
	rots    uint64
	nreplay uint64
	dropRec uint64
	dropB   uint64
}

func segmentName(i int) string { return fmt.Sprintf("wal-%08d.seg", i) }

// parseSegmentName returns the index of a segment file name, or false.
func parseSegmentName(name string) (int, bool) {
	var i int
	if n, err := fmt.Sscanf(name, "wal-%d.seg", &i); n != 1 || err != nil {
		return 0, false
	}
	if segmentName(i) != name {
		return 0, false
	}
	return i, true
}

// Open prepares the log in opt.Dir for recovery: it creates the
// directory if needed and scans for existing segments. The caller must
// call Replay exactly once before the first Append, even on a fresh
// directory.
func Open(opt Options) (*Log, error) {
	opt = opt.withDefaults()
	if opt.Dir == "" {
		return nil, fmt.Errorf("wal: no directory configured")
	}
	if err := opt.FS.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	entries, err := opt.FS.ReadDir(opt.Dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []int
	for _, e := range entries {
		if i, ok := parseSegmentName(e.Name()); ok {
			segs = append(segs, i)
		}
	}
	sort.Ints(segs)
	l := &Log{opt: opt, fs: opt.FS, segs: segs}
	l.syncCond = sync.NewCond(&l.syncMu)
	return l, nil
}

// Replay scans every segment in order and hands each intact record to
// fn. A torn record at the tail of the newest segment is dropped and
// the file truncated back to the last whole record; any other damage
// fails with ErrCorrupt. When fn returns an error, replay stops and
// returns it. After a successful Replay the log is positioned to append
// after the last recovered record, and the background interval syncer
// (SyncInterval only) starts.
func (l *Log) Replay(fn func(Record) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.replayed {
		return fmt.Errorf("wal: already replayed")
	}
	for n, seg := range l.segs {
		last := n == len(l.segs)-1
		path := filepath.Join(l.opt.Dir, segmentName(seg))
		data, err := faultfs.ReadFile(l.fs, path)
		if err != nil {
			return fmt.Errorf("wal: replay %s: %w", segmentName(seg), err)
		}
		valid, recs, err := scanSegment(data, last)
		if err != nil {
			return fmt.Errorf("%w: %s: %v", ErrCorrupt, segmentName(seg), err)
		}
		for _, rec := range recs {
			if err := fn(rec); err != nil {
				return err
			}
		}
		l.statMu.Lock()
		l.nreplay += uint64(len(recs))
		l.statMu.Unlock()
		l.lsn += uint64(len(recs))
		if valid < int64(len(data)) {
			// Torn tail: drop it so the next append starts on a clean
			// frame boundary.
			if err := l.fs.Truncate(path, valid); err != nil {
				return fmt.Errorf("wal: truncate torn tail of %s: %w", segmentName(seg), err)
			}
			l.statMu.Lock()
			l.dropRec++
			l.dropB += uint64(int64(len(data)) - valid)
			l.statMu.Unlock()
		}
		if last {
			l.segSize = valid
		}
	}
	// Position for append: reopen the newest segment, or create segment
	// 0 on a fresh directory.
	if len(l.segs) == 0 {
		if err := l.createSegmentLocked(0); err != nil {
			return err
		}
	} else {
		active := l.segs[len(l.segs)-1]
		f, err := l.fs.OpenFile(filepath.Join(l.opt.Dir, segmentName(active)), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("wal: open active segment: %w", err)
		}
		l.f = f
	}
	l.replayed = true
	l.syncMu.Lock()
	l.syncedLSN = l.lsn // everything recovered is on disk already
	l.syncMu.Unlock()
	if l.opt.Policy == SyncInterval {
		l.stopInterval = make(chan struct{})
		l.intervalDone = make(chan struct{})
		go l.intervalLoop()
	}
	return nil
}

// scanSegment walks data frame by frame, returning the offset of the
// first byte past the last intact record plus the decoded records. In
// the newest segment (last=true) an anomaly that extends to end-of-file
// is a torn tail — scanning stops at its start; anywhere else an
// anomaly is an error.
func scanSegment(data []byte, last bool) (valid int64, recs []Record, err error) {
	off := 0
	for off < len(data) {
		rem := len(data) - off
		torn := func(what string) (int64, []Record, error) {
			if last {
				return int64(off), recs, nil
			}
			return 0, nil, fmt.Errorf("%s at offset %d of a non-final segment", what, off)
		}
		if rem < frameHeaderLen {
			return torn("truncated frame header")
		}
		length := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if length == 0 || length > maxRecordLen || int(length) > rem-frameHeaderLen {
			// A zero or oversized length field, or a frame running past
			// end-of-file: a tear mid-header or mid-payload.
			return torn("invalid frame length")
		}
		payload := data[off+frameHeaderLen : off+frameHeaderLen+int(length)]
		if crc32.Checksum(payload, castagnoli) != sum {
			// A checksum failure that reaches exactly to end-of-file is a
			// torn payload; one with readable bytes after it is interior
			// damage — acknowledged records may follow, so fail hard.
			if off+frameHeaderLen+int(length) == len(data) {
				return torn("checksum mismatch")
			}
			return 0, nil, fmt.Errorf("checksum mismatch at offset %d with %d bytes following",
				off, len(data)-(off+frameHeaderLen+int(length)))
		}
		rec, derr := decodeRecord(payload)
		if derr != nil {
			// The payload passed its checksum, so this is a writer bug or
			// a checksum collision — never drop it as a tear.
			return 0, nil, fmt.Errorf("undecodable record at offset %d: %v", off, derr)
		}
		recs = append(recs, rec)
		off += frameHeaderLen + int(length)
	}
	return int64(off), recs, nil
}

// createSegmentLocked opens a fresh segment as the active file. Caller
// holds l.mu.
func (l *Log) createSegmentLocked(i int) error {
	f, err := l.fs.OpenFile(filepath.Join(l.opt.Dir, segmentName(i)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	l.f = f
	l.segs = append(l.segs, i)
	l.segSize = 0
	return nil
}

// Append encodes rec, frames it and writes it to the active segment,
// returning the record's LSN. The write establishes log order but not
// durability — call Commit(lsn) before acknowledging the mutation.
// Callers that must keep log order consistent with apply order hold
// their own lock across Append and the in-memory apply.
func (l *Log) Append(rec Record) (uint64, error) {
	payload, err := encodeRecord(rec)
	if err != nil {
		return 0, err
	}
	frame := make([]byte, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHeaderLen:], payload)

	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case l.closed:
		return 0, fmt.Errorf("wal: append on closed log")
	case !l.replayed:
		return 0, fmt.Errorf("wal: append before replay")
	case l.failed != nil:
		return 0, fmt.Errorf("wal: log failed: %w", l.failed)
	}
	if l.segSize >= l.opt.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			l.failed = err
			return 0, err
		}
	}
	if _, err := l.f.Write(frame); err != nil {
		// The tail is now undefined (possibly torn); refuse further
		// appends rather than write records recovery would drop.
		l.failed = err
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.segSize += int64(len(frame))
	l.lsn++
	l.statMu.Lock()
	l.appends++
	l.statMu.Unlock()
	return l.lsn, nil
}

// Commit waits until the record at lsn is durable per the sync policy:
// under SyncAlways it joins the group fsync (one fsync covers every
// record appended before it); under SyncInterval and SyncNever it
// returns immediately.
func (l *Log) Commit(lsn uint64) error {
	if l.opt.Policy != SyncAlways {
		return nil
	}
	l.syncMu.Lock()
	for {
		if l.syncErr != nil {
			err := l.syncErr
			l.syncMu.Unlock()
			return err
		}
		if l.syncedLSN >= lsn {
			l.syncMu.Unlock()
			return nil
		}
		if !l.syncLeader {
			l.syncLeader = true
			break
		}
		l.syncCond.Wait()
	}
	l.syncMu.Unlock()
	err := l.Sync()
	l.syncMu.Lock()
	l.syncLeader = false
	l.syncCond.Broadcast()
	l.syncMu.Unlock()
	return err
}

// Sync fsyncs the active segment, advancing the durable LSN to cover
// every record appended before the call. A failed fsync is sticky: the
// log refuses further commits, because the kernel may have dropped
// dirty pages and durability of past acknowledgements is unknown.
func (l *Log) Sync() error {
	l.mu.Lock()
	target := l.lsn
	var err error
	if l.closed {
		err = fmt.Errorf("wal: sync on closed log")
	} else if l.f != nil {
		err = l.f.Sync()
	}
	l.mu.Unlock()
	l.syncMu.Lock()
	if err != nil {
		if l.syncErr == nil {
			l.syncErr = fmt.Errorf("wal: sync: %w", err)
		}
		err = l.syncErr
	} else if target > l.syncedLSN {
		l.syncedLSN = target
	}
	l.syncMu.Unlock()
	if err == nil {
		l.statMu.Lock()
		l.syncs++
		l.statMu.Unlock()
	}
	return err
}

// rotateLocked seals the active segment (fsync + close — after this
// only the new segment can hold unsynced bytes) and opens the next one.
// Caller holds l.mu.
func (l *Log) rotateLocked() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: rotate: sync: %w", err)
	}
	l.syncMu.Lock()
	if l.lsn > l.syncedLSN {
		l.syncedLSN = l.lsn
	}
	l.syncMu.Unlock()
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: rotate: close: %w", err)
	}
	next := l.segs[len(l.segs)-1] + 1
	if err := l.createSegmentLocked(next); err != nil {
		return err
	}
	// Make the new segment's directory entry durable so recovery after
	// power loss sees the same segment sequence we are appending to.
	if err := l.fs.SyncDir(l.opt.Dir); err != nil {
		return fmt.Errorf("wal: rotate: %w", err)
	}
	l.statMu.Lock()
	l.rots++
	l.statMu.Unlock()
	return nil
}

// Barrier seals the log at the current position and returns the index
// of the now-active segment: every record appended before the call
// lives in a segment strictly older than the returned index, so a
// snapshot taken after the barrier may TruncateBefore(barrier) once it
// commits. The caller serialises Barrier against its own mutation path
// so "appended before" and "applied before" coincide.
func (l *Log) Barrier() (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || !l.replayed {
		return 0, fmt.Errorf("wal: barrier on closed or unreplayed log")
	}
	if l.failed != nil {
		return 0, fmt.Errorf("wal: log failed: %w", l.failed)
	}
	active := l.segs[len(l.segs)-1]
	if l.segSize == 0 {
		// The active segment is empty: it already is a clean boundary.
		return active, nil
	}
	if err := l.rotateLocked(); err != nil {
		l.failed = err
		return 0, err
	}
	return l.segs[len(l.segs)-1], nil
}

// TruncateBefore removes every segment older than seg, oldest first —
// the order matters: an interrupted removal must leave a suffix of
// still-contiguous segments, never a gap. Called after a snapshot
// containing every record before the Barrier that returned seg has
// committed.
func (l *Log) TruncateBefore(seg int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	keep := l.segs[:0]
	var removeErr error
	for _, s := range l.segs {
		if s >= seg || removeErr != nil {
			keep = append(keep, s)
			continue
		}
		if err := l.fs.Remove(filepath.Join(l.opt.Dir, segmentName(s))); err != nil {
			removeErr = err
			keep = append(keep, s)
		}
	}
	l.segs = keep
	if removeErr != nil {
		return fmt.Errorf("wal: truncate: %w", removeErr)
	}
	if err := l.fs.SyncDir(l.opt.Dir); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	return nil
}

// intervalLoop is the SyncInterval background syncer.
func (l *Log) intervalLoop() {
	defer close(l.intervalDone)
	t := time.NewTicker(l.opt.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.stopInterval:
			return
		case <-t.C:
			// A sticky sync error surfaces on the next explicit Sync or
			// Close; the loop keeps ticking harmlessly.
			_ = l.Sync()
		}
	}
}

// Close flushes and fsyncs the log, stops the interval syncer, and
// closes the active segment. The final fsync runs under every policy —
// including SyncNever — so a graceful shutdown never loses acknowledged
// mutations.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	if l.stopInterval != nil {
		close(l.stopInterval)
	}
	done := l.intervalDone
	l.mu.Unlock()
	if done != nil {
		<-done
	}
	var err error
	if l.replayed {
		err = l.Sync()
	}
	l.mu.Lock()
	l.closed = true
	if l.f != nil {
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
		l.f = nil
	}
	l.mu.Unlock()
	return err
}

// Stats returns a snapshot of the log's counters and on-disk shape.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	segs := make([]int, len(l.segs))
	copy(segs, l.segs)
	l.mu.Unlock()
	var size int64
	for _, s := range segs {
		if fi, err := l.fs.Stat(filepath.Join(l.opt.Dir, segmentName(s))); err == nil {
			size += fi.Size()
		}
	}
	l.statMu.Lock()
	defer l.statMu.Unlock()
	return Stats{
		Policy:             l.opt.Policy.String(),
		Segments:           len(segs),
		SizeBytes:          size,
		Appends:            l.appends,
		Syncs:              l.syncs,
		Rotations:          l.rots,
		Replayed:           l.nreplay,
		DroppedTailRecords: l.dropRec,
		DroppedTailBytes:   l.dropB,
	}
}
