package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"trajmatch/internal/traj"
)

func testTraj(id, npts int) *traj.Trajectory {
	pts := make([]traj.Point, npts)
	for i := range pts {
		pts[i] = traj.Point{X: float64(id) + float64(i)*0.25, Y: float64(id) - float64(i)*0.5, T: float64(i)}
	}
	tr := traj.New(id, pts)
	tr.Label = id % 3
	return tr
}

func openLog(t *testing.T, dir string, opt Options) (*Log, []Record) {
	t.Helper()
	opt.Dir = dir
	l, err := Open(opt)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	var recs []Record
	if err := l.Replay(func(r Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return l, recs
}

func appendCommit(t *testing.T, l *Log, rec Record) uint64 {
	t.Helper()
	lsn, err := l.Append(rec)
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := l.Commit(lsn); err != nil {
		t.Fatalf("commit: %v", err)
	}
	return lsn
}

func sameRecord(a, b Record) bool {
	if a.Op != b.Op || a.ID != b.ID || a.Offset != b.Offset {
		return false
	}
	if (a.Traj == nil) != (b.Traj == nil) {
		return false
	}
	if a.Traj == nil {
		return true
	}
	if a.Traj.ID != b.Traj.ID || a.Traj.Label != b.Traj.Label || len(a.Traj.Points) != len(b.Traj.Points) {
		return false
	}
	for i := range a.Traj.Points {
		if a.Traj.Points[i] != b.Traj.Points[i] {
			return false
		}
	}
	return true
}

// TestRoundTrip: append a mixed batch of inserts and deletes, reopen,
// and expect replay to hand back the identical sequence.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, recs := openLog(t, dir, Options{})
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	want := []Record{
		Insert(testTraj(1, 4)),
		Insert(testTraj(2, 7)),
		Delete(1),
		AppendPoints(7, 2, 0, testTraj(7, 3).Points),
		AppendPoints(7, 2, 3, testTraj(7, 2).Points),
		Seal(7),
		Insert(testTraj(3, 1)),
		AppendPoints(8, 0, 0, nil),
		Delete(99),
	}
	for _, r := range want {
		appendCommit(t, l, r)
	}
	st := l.Stats()
	if st.Appends != uint64(len(want)) {
		t.Fatalf("Appends = %d, want %d", st.Appends, len(want))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	l2, got := openLog(t, dir, Options{})
	defer l2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !sameRecord(got[i], want[i]) {
			t.Fatalf("record %d mismatch: got %+v want %+v", i, got[i], want[i])
		}
	}
	if st := l2.Stats(); st.Replayed != uint64(len(want)) {
		t.Fatalf("Replayed = %d, want %d", st.Replayed, len(want))
	}
}

// TestRotation: a tiny SegmentBytes forces rotation; records span
// several segments and replay stitches them back in order.
func TestRotation(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, dir, Options{SegmentBytes: 256})
	const n = 40
	for i := 0; i < n; i++ {
		appendCommit(t, l, Insert(testTraj(i, 3)))
	}
	st := l.Stats()
	if st.Rotations == 0 {
		t.Fatalf("no rotations with 256-byte segments after %d appends", n)
	}
	if st.Segments < 2 {
		t.Fatalf("Segments = %d, want >= 2", st.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, got := openLog(t, dir, Options{SegmentBytes: 256})
	defer l2.Close()
	if len(got) != n {
		t.Fatalf("replayed %d records, want %d", len(got), n)
	}
	for i, r := range got {
		if r.Op != OpInsert || r.ID != i {
			t.Fatalf("record %d: got op=%v id=%d", i, r.Op, r.ID)
		}
	}
}

// segPath returns the path of the i'th (sorted) segment in dir.
func segPath(t *testing.T, dir string, i int) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if _, ok := parseSegmentName(e.Name()); ok {
			segs = append(segs, e.Name())
		}
	}
	if i < 0 {
		i += len(segs)
	}
	if i < 0 || i >= len(segs) {
		t.Fatalf("segment %d of %d not present", i, len(segs))
	}
	return filepath.Join(dir, segs[i])
}

// TestTornTail: cutting bytes off the newest segment drops the torn
// record, keeps everything before it, and the log accepts new appends
// that a further reopen replays cleanly.
func TestTornTail(t *testing.T) {
	for _, cut := range []int{1, 5, 9, 20} { // mid-payload, mid-header depths
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			l, _ := openLog(t, dir, Options{})
			for i := 0; i < 5; i++ {
				appendCommit(t, l, Insert(testTraj(i, 2)))
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			path := segPath(t, dir, -1)
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, fi.Size()-int64(cut)); err != nil {
				t.Fatal(err)
			}

			l2, got := openLog(t, dir, Options{})
			if len(got) != 4 {
				t.Fatalf("replayed %d records, want 4", len(got))
			}
			st := l2.Stats()
			if st.DroppedTailRecords != 1 || st.DroppedTailBytes == 0 {
				t.Fatalf("dropped %d records / %d bytes, want 1 / >0", st.DroppedTailRecords, st.DroppedTailBytes)
			}
			// The log must keep working on the truncated boundary.
			appendCommit(t, l2, Insert(testTraj(100, 2)))
			if err := l2.Close(); err != nil {
				t.Fatal(err)
			}
			l3, got := openLog(t, dir, Options{})
			defer l3.Close()
			if len(got) != 5 || got[4].ID != 100 {
				t.Fatalf("after re-append: %d records, last ID %d", len(got), got[len(got)-1].ID)
			}
		})
	}
}

// TestInteriorCorruption: flipping a byte in a record that has valid
// data after it must fail replay with ErrCorrupt, not silently drop.
func TestInteriorCorruption(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, dir, Options{})
	for i := 0; i < 5; i++ {
		appendCommit(t, l, Insert(testTraj(i, 2)))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := segPath(t, dir, -1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the first record (offset 8 is its op byte).
	data[10] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	err = l2.Replay(func(Record) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("replay of interior corruption: got %v, want ErrCorrupt", err)
	}
}

// TestNonFinalSegmentCorruption: even damage at the very end of an
// older segment is interior corruption — only the newest segment may
// have a torn tail.
func TestNonFinalSegmentCorruption(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, dir, Options{SegmentBytes: 256})
	for i := 0; i < 40; i++ {
		appendCommit(t, l, Insert(testTraj(i, 3)))
	}
	if l.Stats().Segments < 2 {
		t.Fatal("need at least 2 segments")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := segPath(t, dir, 0)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(Options{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	err = l2.Replay(func(Record) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("replay of non-final truncation: got %v, want ErrCorrupt", err)
	}
}

// TestChecksumCatchesLengthGames: rewriting a frame's length field so
// the frame still ends exactly at EOF must not smuggle garbage through
// as a "torn tail" replayed record — the record before stays intact and
// nothing bogus is returned.
func TestChecksumCatchesLengthGames(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, dir, Options{})
	appendCommit(t, l, Insert(testTraj(1, 2)))
	appendCommit(t, l, Insert(testTraj(2, 2)))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := segPath(t, dir, -1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Grow the first frame's claimed length to swallow the rest of the
	// file. Its checksum no longer matches and the "payload" reaches
	// EOF, so recovery treats it as a torn tail: record 1 is dropped
	// along with record 2's bytes — but nothing corrupt is replayed.
	binary.LittleEndian.PutUint32(data, uint32(len(data)-frameHeaderLen))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, got := openLog(t, dir, Options{})
	defer l2.Close()
	if len(got) != 0 {
		t.Fatalf("replayed %d records from a mangled frame, want 0", len(got))
	}
}

// TestBarrierAndTruncate: Barrier seals the current segment; after a
// TruncateBefore only post-barrier records survive a reopen.
func TestBarrierAndTruncate(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, dir, Options{})
	for i := 0; i < 3; i++ {
		appendCommit(t, l, Insert(testTraj(i, 2)))
	}
	barrier, err := l.Barrier()
	if err != nil {
		t.Fatalf("barrier: %v", err)
	}
	appendCommit(t, l, Insert(testTraj(10, 2)))
	appendCommit(t, l, Delete(10))
	if err := l.TruncateBefore(barrier); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if st := l.Stats(); st.Segments != 1 {
		t.Fatalf("Segments = %d after truncate, want 1", st.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, got := openLog(t, dir, Options{})
	defer l2.Close()
	if len(got) != 2 || got[0].ID != 10 || got[1].Op != OpDelete {
		t.Fatalf("post-truncate replay: %+v", got)
	}
}

// TestBarrierOnEmptySegment: a barrier when the active segment is empty
// must not rotate into a pointless new file.
func TestBarrierOnEmptySegment(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, dir, Options{})
	defer l.Close()
	b1, err := l.Barrier()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := l.Barrier()
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b2 {
		t.Fatalf("two barriers on an empty log rotated: %d then %d", b1, b2)
	}
	if st := l.Stats(); st.Segments != 1 {
		t.Fatalf("Segments = %d, want 1", st.Segments)
	}
}

// TestGroupCommit: concurrent appenders under SyncAlways all get their
// records durable while sharing fsyncs; the fsync count stays below one
// per append (group commit actually groups) — and every record is
// replayed after reopen.
func TestGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, dir, Options{})
	const (
		workers = 8
		perW    = 25
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				lsn, err := l.Append(Delete(w*1000 + i))
				if err != nil {
					errs <- err
					return
				}
				if err := l.Commit(lsn); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Appends != workers*perW {
		t.Fatalf("Appends = %d, want %d", st.Appends, workers*perW)
	}
	if st.Syncs == 0 || st.Syncs > st.Appends {
		t.Fatalf("Syncs = %d with %d appends", st.Syncs, st.Appends)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, got := openLog(t, dir, Options{})
	defer l2.Close()
	if len(got) != workers*perW {
		t.Fatalf("replayed %d records, want %d", len(got), workers*perW)
	}
}

// TestSyncIntervalFlushes: under SyncInterval the background syncer
// advances the durable LSN without any Commit fsync.
func TestSyncIntervalFlushes(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, dir, Options{Policy: SyncInterval, Interval: 5 * time.Millisecond})
	lsn, err := l.Append(Delete(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(lsn); err != nil { // no-op under SyncInterval
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		l.syncMu.Lock()
		synced := l.syncedLSN
		l.syncMu.Unlock()
		if synced >= lsn {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("interval syncer never advanced the durable LSN")
		}
		time.Sleep(time.Millisecond)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAppendBeforeReplay: the API refuses appends until recovery ran.
func TestAppendBeforeReplay(t *testing.T) {
	l, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Delete(1)); err == nil {
		t.Fatal("append before replay succeeded")
	}
}

// TestParseSyncPolicy covers the flag round trip.
func TestParseSyncPolicy(t *testing.T) {
	for _, want := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		got, err := ParseSyncPolicy(want.String())
		if err != nil || got != want {
			t.Fatalf("round trip %v: got %v, %v", want, got, err)
		}
	}
	if _, err := ParseSyncPolicy("fsync-maybe"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

// BenchmarkWALAppend measures the append+commit path per sync policy.
func BenchmarkWALAppend(b *testing.B) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		b.Run(policy.String(), func(b *testing.B) {
			dir := b.TempDir()
			l, err := Open(Options{Dir: dir, Policy: policy})
			if err != nil {
				b.Fatal(err)
			}
			if err := l.Replay(func(Record) error { return nil }); err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			rec := Insert(testTraj(1, 16))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lsn, err := l.Append(rec)
				if err != nil {
					b.Fatal(err)
				}
				if err := l.Commit(lsn); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestRecordCodec exercises the payload codec directly: every op round
// trips, and structurally damaged payloads fail instead of half-parsing
// (the payload passed its frame checksum, so damage means a writer bug
// and must surface loudly).
func TestRecordCodec(t *testing.T) {
	recs := []Record{
		Insert(testTraj(11, 5)),
		Delete(-3),
		AppendPoints(42, -1, 0, testTraj(42, 1).Points),
		AppendPoints(42, 7, 12345, testTraj(42, 4).Points),
		Seal(42),
	}
	for _, want := range recs {
		p, err := encodeRecord(want)
		if err != nil {
			t.Fatalf("encode %v: %v", want.Op, err)
		}
		got, err := decodeRecord(p)
		if err != nil {
			t.Fatalf("decode %v: %v", want.Op, err)
		}
		if !sameRecord(got, want) {
			t.Fatalf("%v round trip: got %+v want %+v", want.Op, got, want)
		}
		// Trailing garbage must be rejected for the fixed-shape ops and
		// the point array length check must hold for the variable ones.
		if _, err := decodeRecord(append(append([]byte(nil), p...), 0xEE)); err == nil {
			t.Fatalf("%v: trailing byte accepted", want.Op)
		}
		if _, err := decodeRecord(p[:len(p)-1]); err == nil {
			t.Fatalf("%v: truncated payload accepted", want.Op)
		}
	}
	if _, err := encodeRecord(Record{Op: OpAppend, ID: 1}); err == nil {
		t.Fatal("append record without points accepted")
	}
	if _, err := encodeRecord(Record{Op: OpAppend, ID: 1, Offset: -1, Traj: testTraj(1, 1)}); err == nil {
		t.Fatal("append record with negative offset accepted")
	}
	if _, err := decodeRecord([]byte{0x7F}); err == nil {
		t.Fatal("unknown op accepted")
	}
}
