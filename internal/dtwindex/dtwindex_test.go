package dtwindex

import (
	"math"
	"math/rand"
	"testing"

	"trajmatch/internal/baseline"
	"trajmatch/internal/synth"
	"trajmatch/internal/traj"
)

func smallDB(n int) []*traj.Trajectory {
	cfg := synth.DefaultTaxi(n)
	cfg.CitySize = 3000
	return synth.Taxi(cfg)
}

func TestKNNMatchesBruteForce(t *testing.T) {
	db := smallDB(80)
	ix := New(db)
	rng := rand.New(rand.NewSource(141))
	for it := 0; it < 10; it++ {
		q := db[rng.Intn(len(db))]
		for _, k := range []int{1, 5, 10} {
			got, _ := ix.KNN(q, k)
			want := ix.KNNBrute(q, k)
			if len(got) != len(want) {
				t.Fatalf("k=%d: %d results, want %d", k, len(got), len(want))
			}
			for i := range got {
				if math.Abs(got[i].Dist-want[i].Dist) > 1e-9*(1+want[i].Dist) {
					t.Fatalf("k=%d rank %d: %v vs %v", k, i, got[i].Dist, want[i].Dist)
				}
			}
		}
	}
}

func TestDTWAgreesWithBaseline(t *testing.T) {
	db := smallDB(20)
	m := baseline.DTW{}
	for i := 1; i < len(db); i++ {
		a, _ := dtwDist(db[0].Points, db[i].Points, math.Inf(1), nil)
		b := m.Dist(db[0], db[i])
		if math.Abs(a-b) > 1e-9*(1+b) {
			t.Fatalf("index DTW %v != baseline DTW %v", a, b)
		}
	}
}

func TestLowerBoundAdmissible(t *testing.T) {
	db := smallDB(40)
	ix := New(db)
	rng := rand.New(rand.NewSource(142))
	for it := 0; it < 20; it++ {
		q := db[rng.Intn(len(db))]
		for i := range db {
			lb := ix.lowerBound(q, i)
			d, _ := dtwDist(q.Points, db[i].Points, math.Inf(1), nil)
			if lb > d+1e-9*(1+d) {
				t.Fatalf("DTW lower bound %v exceeds distance %v", lb, d)
			}
		}
	}
}

func TestEarlyAbandonCertifiesBound(t *testing.T) {
	db := smallDB(30)
	rng := rand.New(rand.NewSource(143))
	for it := 0; it < 50; it++ {
		a := db[rng.Intn(len(db))]
		b := db[rng.Intn(len(db))]
		full, ab := dtwDist(a.Points, b.Points, math.Inf(1), nil)
		if ab {
			t.Fatal("unbounded evaluation abandoned")
		}
		// The abandon test is strict, so a limit equal to the true
		// distance must still produce the exact value.
		got, ab := dtwDist(a.Points, b.Points, full, nil)
		if ab || math.Abs(got-full) > 1e-9*(1+full) {
			t.Fatalf("limit = true distance altered result: %v (abandoned=%v) vs %v", got, ab, full)
		}
		if full > 1 {
			// Either the row-minimum test fires (the returned lower bound
			// certifies the limit) or the program runs to completion and
			// returns the exact distance; both prove d > limit.
			got, ab := dtwDist(a.Points, b.Points, full/2, nil)
			if got <= full/2 {
				t.Fatalf("value %v (abandoned=%v) does not certify limit %v", got, ab, full/2)
			}
			if !ab && math.Abs(got-full) > 1e-9*(1+full) {
				t.Fatalf("unabandoned bounded value %v differs from exact %v", got, full)
			}
		}
	}
}

func TestPruningHappens(t *testing.T) {
	db := smallDB(150)
	ix := New(db)
	_, st := ix.KNN(db[3], 5)
	if st.NodesPruned == 0 {
		t.Error("no candidates pruned")
	}
}

// TestTieOrderingDeterministic is the regression test for the
// nondeterministic tie ordering: with duplicated trajectories under
// fresh IDs, exact distance ties are resolved by ID — the answer is a
// pure function of the database, identical to the brute scan's
// (distance, ID) order, whatever order candidates were visited in.
func TestTieOrderingDeterministic(t *testing.T) {
	base := smallDB(30)
	var db []*traj.Trajectory
	for i, tr := range base {
		db = append(db, tr)
		dup := tr.Clone()
		dup.ID = 1000 + i
		db = append(db, dup)
	}
	ix := New(db)
	for it := 0; it < 10; it++ {
		q := base[it*3%len(base)]
		for _, k := range []int{1, 3, 7} {
			got, _ := ix.KNN(q, k)
			want := ix.KNNBrute(q, k)
			if len(got) != len(want) {
				t.Fatalf("k=%d: %d results, want %d", k, len(got), len(want))
			}
			for i := range got {
				if got[i].Traj.ID != want[i].Traj.ID || got[i].Dist != want[i].Dist {
					t.Fatalf("k=%d rank %d: (%d, %v) vs brute (%d, %v)",
						k, i, got[i].Traj.ID, got[i].Dist, want[i].Traj.ID, want[i].Dist)
				}
			}
			for i := 1; i < len(got); i++ {
				prev, cur := got[i-1], got[i]
				if cur.Dist < prev.Dist || (cur.Dist == prev.Dist && cur.Traj.ID <= prev.Traj.ID) {
					t.Fatalf("k=%d: results not in (distance, ID) order at rank %d", k, i)
				}
			}
		}
	}
}

func TestDegenerateInputs(t *testing.T) {
	ix := New(nil)
	if res, _ := ix.KNN(traj.FromXY(0, 0, 0, 1, 1), 3); len(res) != 0 {
		t.Error("kNN over empty index returned results")
	}
	db := smallDB(4)
	ix = New(db)
	if res, _ := ix.KNN(db[0], 0); len(res) != 0 {
		t.Error("k=0 returned results")
	}
}
