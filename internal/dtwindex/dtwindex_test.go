package dtwindex

import (
	"math"
	"math/rand"
	"testing"

	"trajmatch/internal/baseline"
	"trajmatch/internal/synth"
	"trajmatch/internal/traj"
)

func smallDB(n int) []*traj.Trajectory {
	cfg := synth.DefaultTaxi(n)
	cfg.CitySize = 3000
	return synth.Taxi(cfg)
}

func TestKNNMatchesBruteForce(t *testing.T) {
	db := smallDB(80)
	ix := New(db)
	rng := rand.New(rand.NewSource(141))
	for it := 0; it < 10; it++ {
		q := db[rng.Intn(len(db))]
		for _, k := range []int{1, 5, 10} {
			got, _ := ix.KNN(q, k)
			want := ix.KNNBrute(q, k)
			if len(got) != len(want) {
				t.Fatalf("k=%d: %d results, want %d", k, len(got), len(want))
			}
			for i := range got {
				if math.Abs(got[i].Dist-want[i].Dist) > 1e-9*(1+want[i].Dist) {
					t.Fatalf("k=%d rank %d: %v vs %v", k, i, got[i].Dist, want[i].Dist)
				}
			}
		}
	}
}

func TestDTWAgreesWithBaseline(t *testing.T) {
	db := smallDB(20)
	m := baseline.DTW{}
	for i := 1; i < len(db); i++ {
		a := dtwEarlyAbandon(db[0].Points, db[i].Points, -1)
		b := m.Dist(db[0], db[i])
		if math.Abs(a-b) > 1e-9*(1+b) {
			t.Fatalf("index DTW %v != baseline DTW %v", a, b)
		}
	}
}

func TestLowerBoundAdmissible(t *testing.T) {
	db := smallDB(40)
	ix := New(db)
	rng := rand.New(rand.NewSource(142))
	for it := 0; it < 20; it++ {
		q := db[rng.Intn(len(db))]
		for i := range db {
			lb := ix.lowerBound(q, i)
			d := dtwEarlyAbandon(q.Points, db[i].Points, -1)
			if lb > d+1e-9*(1+d) {
				t.Fatalf("DTW lower bound %v exceeds distance %v", lb, d)
			}
		}
	}
}

func TestEarlyAbandonCertifiesBound(t *testing.T) {
	db := smallDB(30)
	rng := rand.New(rand.NewSource(143))
	for it := 0; it < 50; it++ {
		a := db[rng.Intn(len(db))]
		b := db[rng.Intn(len(db))]
		full := dtwEarlyAbandon(a.Points, b.Points, -1)
		if got := dtwEarlyAbandon(a.Points, b.Points, full); math.Abs(got-full) > 1e-9*(1+full) {
			t.Fatalf("bound = true distance altered result: %v vs %v", got, full)
		}
		if full > 1 {
			got := dtwEarlyAbandon(a.Points, b.Points, full/2)
			if got <= full/2 {
				t.Fatalf("abandoned value %v does not certify bound %v", got, full/2)
			}
		}
	}
}

func TestPruningHappens(t *testing.T) {
	db := smallDB(150)
	ix := New(db)
	_, st := ix.KNN(db[3], 5)
	if st.Pruned == 0 {
		t.Error("no candidates pruned")
	}
}

func TestDegenerateInputs(t *testing.T) {
	ix := New(nil)
	if res, _ := ix.KNN(traj.FromXY(0, 0, 0, 1, 1), 3); len(res) != 0 {
		t.Error("kNN over empty index returned results")
	}
	db := smallDB(4)
	ix = New(db)
	if res, _ := ix.KNN(db[0], 0); len(res) != 0 {
		t.Error("k=0 returned results")
	}
}
