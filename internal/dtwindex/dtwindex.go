// Package dtwindex answers exact k-NN queries under DTW, re-creating the
// lineage the paper's Related Work starts from ("initial efforts on
// indexing trajectory retrieval were primarily directed towards indexing
// DTW" — Yi et al. and Keogh's exact indexing). Envelope bounds do not
// transfer directly to unequal-length 2-D trajectories, so this index uses
// two admissible bounds that do:
//
//   - the corner bound (LB_Kim style): DTW always matches first with first
//     and last with last, so dist(q₁,t₁) + dist(qₙ,tₘ) never exceeds it;
//   - the MBR bound: every query point participates in at least one matched
//     pair, so Σᵢ dist(qᵢ, MBR(T)) never exceeds DTW(Q,T).
//
// Candidates are visited in bound order with an early-abandoning DTW whose
// row minima cut off once the running k-th best is exceeded.
//
// The Index implements backend.Backend (SearchKNN/SearchRange under a
// shared bound and a cancellation Ctl), so the sharded engine of
// internal/server serves DTW through the same /v1 API as EDwP. It is a
// static index: no mutation, no persistence — the engine degrades those
// operations to not_implemented.
package dtwindex

import (
	"math"

	"trajmatch/internal/backend"
	"trajmatch/internal/core"
	"trajmatch/internal/geom"
	"trajmatch/internal/traj"
)

// MetricName is the registered backend identifier of this index.
const MetricName = "dtw"

func init() { backend.Register(MetricName) }

var (
	_ backend.Backend           = (*Index)(nil)
	_ backend.CandidateSearcher = (*Index)(nil)
	_ backend.Distancer         = (*Index)(nil)
)

// DistanceBetween evaluates bounded DTW between two trajectories —
// the live-track scan's entry into the same kernel the indexed search
// uses.
func (ix *Index) DistanceBetween(q, t *traj.Trajectory, limit float64, ctl *backend.Ctl) (float64, bool) {
	return dtwDist(q.Points, t.Points, limit, ctl.CancelFlag())
}

// Index holds the database with one precomputed MBR per trajectory.
type Index struct {
	db   []*traj.Trajectory
	mbrs []geom.Rect
	byID map[int]*traj.Trajectory
	pos  map[int]int // ID → db position, for candidate-restricted search
}

// New builds the index.
func New(db []*traj.Trajectory) *Index {
	ix := &Index{db: db, mbrs: make([]geom.Rect, len(db)),
		byID: make(map[int]*traj.Trajectory, len(db)), pos: make(map[int]int, len(db))}
	for i, t := range db {
		ix.mbrs[i] = t.Bounds()
		ix.byID[t.ID] = t
		ix.pos[t.ID] = i
	}
	return ix
}

// BackendSpec returns the buildable backend spec for DTW.
func BackendSpec() backend.Spec {
	return backend.Spec{
		Name: MetricName,
		Build: func(db []*traj.Trajectory) (backend.Backend, error) {
			return New(db), nil
		},
	}
}

// Size returns the number of indexed trajectories.
func (ix *Index) Size() int { return len(ix.db) }

// Lookup returns the indexed trajectory with the given ID, or nil.
func (ix *Index) Lookup(id int) *traj.Trajectory { return ix.byID[id] }

// lowerBound returns max(corner bound, MBR bound) for db[i].
func (ix *Index) lowerBound(q *traj.Trajectory, i int) float64 {
	t := ix.db[i]
	if q.NumPoints() == 0 || t.NumPoints() == 0 {
		return 0
	}
	corner := q.Points[0].Dist(t.Points[0]) +
		q.Points[len(q.Points)-1].Dist(t.Points[len(t.Points)-1])
	var mbr float64
	r := ix.mbrs[i]
	for _, p := range q.Points {
		mbr += r.DistToPoint(p.XY())
	}
	if mbr > corner {
		return mbr
	}
	return corner
}

// Result is one k-NN answer under DTW, the unified backend.Result type.
type Result = backend.Result

// Stats reports per-query work, the unified backend.Stats type: every
// candidate costs one LowerBoundCall, candidates rejected by bound alone
// count as NodesPruned, evaluated ones as DistanceCalls, and evaluations
// the row-minimum test cut short as EarlyAbandons.
type Stats = backend.Stats

// orderCands computes every lower bound and hands back the candidates
// in backend.SortCands order. The bound pass polls ctl periodically so
// even the pre-scan setup stops promptly under a fired deadline.
func (ix *Index) orderCands(q *traj.Trajectory, st *Stats, ctl *backend.Ctl) ([]backend.Cand, error) {
	cands := make([]backend.Cand, len(ix.db))
	for i := range ix.db {
		if i%64 == 0 && ctl.Cancelled() {
			return nil, ctl.Err()
		}
		st.LowerBoundCalls++
		cands[i] = backend.Cand{I: i, ID: ix.db[i].ID, LB: ix.lowerBound(q, i)}
	}
	backend.SortCands(cands)
	return cands, nil
}

// SearchKNN returns the exact DTW k-nearest neighbours of q sorted by
// (distance, ID) — deterministic membership under exact ties. bound may
// be nil or shared across concurrent searches of disjoint shards; ctl
// (may be nil) injects cancellation — polled between candidates by the
// scan and per DP row inside the kernel — and the query-wide evaluation
// budget.
func (ix *Index) SearchKNN(q *traj.Trajectory, k int, bound *backend.SharedBound, ctl *backend.Ctl) ([]Result, Stats, bool, error) {
	var st Stats
	if k <= 0 || len(ix.db) == 0 {
		return nil, st, false, ctl.Err()
	}
	cands, err := ix.orderCands(q, &st, ctl)
	if err != nil {
		return nil, st, false, err
	}
	res, truncated, err := backend.ScanKNN(cands, k, bound, ctl, &st,
		func(i int) *traj.Trajectory { return ix.db[i] },
		func(i int, limit float64) (float64, bool) {
			return dtwDist(q.Points, ix.db[i].Points, limit, ctl.CancelFlag())
		})
	return res, st, truncated, err
}

// SearchKNNIn is the backend.CandidateSearcher capability: SearchKNN
// restricted to the prefilter's candidate IDs. The same lower bounds
// order the candidate subset, so verification keeps the full pruning and
// early-abandon discipline — only the scan's population shrinks. IDs not
// present in the index are skipped.
func (ix *Index) SearchKNNIn(q *traj.Trajectory, ids []int, k int, bound *backend.SharedBound, ctl *backend.Ctl) ([]Result, Stats, bool, error) {
	var st Stats
	if k <= 0 || len(ids) == 0 || len(ix.db) == 0 {
		return nil, st, false, ctl.Err()
	}
	cands := make([]backend.Cand, 0, len(ids))
	for n, id := range ids {
		if n%64 == 0 && ctl.Cancelled() {
			return nil, st, false, ctl.Err()
		}
		i, ok := ix.pos[id]
		if !ok {
			continue
		}
		st.LowerBoundCalls++
		cands = append(cands, backend.Cand{I: i, ID: id, LB: ix.lowerBound(q, i)})
	}
	backend.SortCands(cands)
	res, truncated, err := backend.ScanKNN(cands, k, bound, ctl, &st,
		func(i int) *traj.Trajectory { return ix.db[i] },
		func(i int, limit float64) (float64, bool) {
			return dtwDist(q.Points, ix.db[i].Points, limit, ctl.CancelFlag())
		})
	return res, st, truncated, err
}

// SearchRange returns every indexed trajectory with DTW(q, t) ≤ radius,
// sorted by (distance, ID). The radius seeds the abandon limit of every
// evaluation, so members far outside it cost a fraction of a full DP.
func (ix *Index) SearchRange(q *traj.Trajectory, radius float64, ctl *backend.Ctl) ([]Result, Stats, bool, error) {
	var st Stats
	if len(ix.db) == 0 {
		return nil, st, false, ctl.Err()
	}
	cands, err := ix.orderCands(q, &st, ctl)
	if err != nil {
		return nil, st, false, err
	}
	res, truncated, err := backend.ScanRange(cands, radius, ctl, &st,
		func(i int) *traj.Trajectory { return ix.db[i] },
		func(i int, limit float64) (float64, bool) {
			return dtwDist(q.Points, ix.db[i].Points, limit, ctl.CancelFlag())
		})
	return res, st, truncated, err
}

// KNN returns the exact DTW k-nearest neighbours of q, sorted by
// (distance, ID). It is SearchKNN with no shared bound and no Ctl — the
// standalone entry point the eval harness scans with.
func (ix *Index) KNN(q *traj.Trajectory, k int) ([]Result, Stats) {
	res, st, _, _ := ix.SearchKNN(q, k, nil, nil)
	return res, st
}

// KNNBrute is the unpruned scan for verification, with the same
// (distance, ID) ordering as KNN.
func (ix *Index) KNNBrute(q *traj.Trajectory, k int) []Result {
	ans := backend.NewKBest(k)
	for _, t := range ix.db {
		d, _ := dtwDist(q.Points, t.Points, math.Inf(1), nil)
		ans.Offer(t, d)
	}
	return ans.Results()
}

// dtwDist computes DTW with Euclidean ground distance, abandoning as soon
// as a whole row exceeds limit (+Inf disables). DTW costs only
// accumulate, so the abandoned value is itself a valid lower bound
// > limit; the abandon test is strict, so a distance tying the limit
// exactly is still computed in full. cancel (may be nil) is polled once
// per DP row; a fired flag abandons immediately — the caller discards the
// poisoned answer through its Ctl's error.
func dtwDist(P, Q []traj.Point, limit float64, cancel *core.Cancel) (float64, bool) {
	n, m := len(P), len(Q)
	if n == 0 || m == 0 {
		if n == m {
			return 0, false
		}
		return 1e308, false // the no-alignment sentinel, exact as before
	}
	inf := 1e308
	prev := make([]float64, m)
	cur := make([]float64, m)
	for i := 0; i < n; i++ {
		if cancel.Cancelled() {
			return 0, true
		}
		rowMin := inf
		for j := 0; j < m; j++ {
			d := P[i].Dist(Q[j])
			switch {
			case i == 0 && j == 0:
				cur[j] = d
			case i == 0:
				cur[j] = cur[j-1] + d
			case j == 0:
				cur[j] = prev[j] + d
			default:
				best := prev[j-1]
				if prev[j] < best {
					best = prev[j]
				}
				if cur[j-1] < best {
					best = cur[j-1]
				}
				cur[j] = best + d
			}
			if cur[j] < rowMin {
				rowMin = cur[j]
			}
		}
		if rowMin > limit {
			return rowMin, true
		}
		prev, cur = cur, prev
	}
	return prev[m-1], false
}
