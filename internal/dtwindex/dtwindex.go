// Package dtwindex answers exact k-NN queries under DTW, re-creating the
// lineage the paper's Related Work starts from ("initial efforts on
// indexing trajectory retrieval were primarily directed towards indexing
// DTW" — Yi et al. and Keogh's exact indexing). Envelope bounds do not
// transfer directly to unequal-length 2-D trajectories, so this index uses
// two admissible bounds that do:
//
//   - the corner bound (LB_Kim style): DTW always matches first with first
//     and last with last, so dist(q₁,t₁) + dist(qₙ,tₘ) never exceeds it;
//   - the MBR bound: every query point participates in at least one matched
//     pair, so Σᵢ dist(qᵢ, MBR(T)) never exceeds DTW(Q,T).
//
// Candidates are visited in bound order with an early-abandoning DTW whose
// row minima cut off once the running k-th best is exceeded.
package dtwindex

import (
	"sort"

	"trajmatch/internal/geom"
	"trajmatch/internal/pqueue"
	"trajmatch/internal/traj"
)

// Index holds the database with one precomputed MBR per trajectory.
type Index struct {
	db   []*traj.Trajectory
	mbrs []geom.Rect
}

// New builds the index.
func New(db []*traj.Trajectory) *Index {
	ix := &Index{db: db, mbrs: make([]geom.Rect, len(db))}
	for i, t := range db {
		ix.mbrs[i] = t.Bounds()
	}
	return ix
}

// lowerBound returns max(corner bound, MBR bound) for db[i].
func (ix *Index) lowerBound(q *traj.Trajectory, i int) float64 {
	t := ix.db[i]
	if q.NumPoints() == 0 || t.NumPoints() == 0 {
		return 0
	}
	corner := q.Points[0].Dist(t.Points[0]) +
		q.Points[len(q.Points)-1].Dist(t.Points[len(t.Points)-1])
	var mbr float64
	r := ix.mbrs[i]
	for _, p := range q.Points {
		mbr += r.DistToPoint(p.XY())
	}
	if mbr > corner {
		return mbr
	}
	return corner
}

// Result is one k-NN answer under DTW.
type Result struct {
	Traj *traj.Trajectory
	Dist float64
}

// Stats reports per-query work.
type Stats struct {
	FullComputations, Pruned int
}

// KNN returns the exact DTW k-nearest neighbours of q, sorted ascending.
func (ix *Index) KNN(q *traj.Trajectory, k int) ([]Result, Stats) {
	var st Stats
	if k <= 0 || len(ix.db) == 0 {
		return nil, st
	}
	type cand struct {
		i  int
		lb float64
	}
	cands := make([]cand, len(ix.db))
	for i := range ix.db {
		cands[i] = cand{i, ix.lowerBound(q, i)}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].lb < cands[b].lb })

	ans := pqueue.NewTopK[*traj.Trajectory](k)
	for _, c := range cands {
		if worst, full := ans.Worst(); full && c.lb >= worst {
			st.Pruned++
			continue
		}
		bound := -1.0
		if worst, full := ans.Worst(); full {
			bound = worst
		}
		st.FullComputations++
		d := dtwEarlyAbandon(q.Points, ix.db[c.i].Points, bound)
		ans.Offer(ix.db[c.i], d)
	}
	items := ans.Items()
	out := make([]Result, len(items))
	for i, it := range items {
		out[i] = Result{Traj: it.Value, Dist: it.Priority}
	}
	return out, st
}

// KNNBrute is the unpruned scan for verification.
func (ix *Index) KNNBrute(q *traj.Trajectory, k int) []Result {
	ans := pqueue.NewTopK[*traj.Trajectory](k)
	for _, t := range ix.db {
		ans.Offer(t, dtwEarlyAbandon(q.Points, t.Points, -1))
	}
	items := ans.Items()
	out := make([]Result, len(items))
	for i, it := range items {
		out[i] = Result{Traj: it.Value, Dist: it.Priority}
	}
	return out
}

// dtwEarlyAbandon computes DTW with Euclidean ground distance, abandoning
// as soon as a whole row exceeds bound (bound < 0 disables). DTW costs only
// accumulate, so the abandoned value is itself a valid lower bound > bound.
func dtwEarlyAbandon(P, Q []traj.Point, bound float64) float64 {
	n, m := len(P), len(Q)
	if n == 0 || m == 0 {
		if n == m {
			return 0
		}
		return 1e308
	}
	inf := 1e308
	prev := make([]float64, m)
	cur := make([]float64, m)
	for i := 0; i < n; i++ {
		rowMin := inf
		for j := 0; j < m; j++ {
			d := P[i].Dist(Q[j])
			switch {
			case i == 0 && j == 0:
				cur[j] = d
			case i == 0:
				cur[j] = cur[j-1] + d
			case j == 0:
				cur[j] = prev[j] + d
			default:
				best := prev[j-1]
				if prev[j] < best {
					best = prev[j]
				}
				if cur[j-1] < best {
					best = cur[j-1]
				}
				cur[j] = best + d
			}
			if cur[j] < rowMin {
				rowMin = cur[j]
			}
		}
		if bound >= 0 && rowMin > bound {
			return rowMin
		}
		prev, cur = cur, prev
	}
	return prev[m-1]
}
