package sketch

import (
	"math"
	"reflect"
	"testing"

	"trajmatch/internal/traj"
)

// fuzzTraj decodes an arbitrary byte-derived point list into a
// trajectory. The fuzz targets exercise tokenization and signature
// generation on whatever geometry the fuzzer invents — including the
// degenerate shapes the seed corpus pins: empty, single-point,
// duplicate-point and antimeridian-scale coordinate jumps.
func fuzzTraj(xs, ys []float64) *traj.Trajectory {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	pts := make([]traj.Point, n)
	for i := 0; i < n; i++ {
		pts[i] = traj.P(xs[i], ys[i], float64(i))
	}
	return traj.New(1, pts)
}

func fuzzIndex(tb testing.TB) *Index {
	tb.Helper()
	ix, err := NewIndex(Params{CellSize: 100, Shingle: 2, Hashes: 32, Bands: 8, MinCands: 4, Seed: 1})
	if err != nil {
		tb.Fatalf("NewIndex: %v", err)
	}
	return ix
}

// seedGeometries is the committed seed corpus shared by both fuzz
// targets: the degenerate and adversarial shapes the satellite task
// names.
var seedGeometries = []struct {
	name   string
	xs, ys []float64
}{
	{"empty", nil, nil},
	{"single-point", []float64{3}, []float64{4}},
	{"duplicate-points", []float64{7, 7, 7, 7}, []float64{9, 9, 9, 9}},
	{"short-hop", []float64{0, 10}, []float64{0, 0}},
	{"antimeridian-jump", []float64{-1.9e7, 1.9e7, -1.9e7}, []float64{0, 5, -5}},
	{"huge-coords", []float64{math.MaxFloat64, -math.MaxFloat64}, []float64{math.MaxFloat64, -math.MaxFloat64}},
	{"nan-inf", []float64{math.NaN(), math.Inf(1), 0}, []float64{math.Inf(-1), math.NaN(), 0}},
	{"long-segment", []float64{0, 1e9}, []float64{0, 1e9}},
}

func seedBytes(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		bits := math.Float64bits(v)
		for b := 0; b < 8; b++ {
			out[8*i+b] = byte(bits >> (8 * b))
		}
	}
	return out
}

func decodeFloats(raw []byte) []float64 {
	out := make([]float64, 0, len(raw)/8)
	for i := 0; i+8 <= len(raw); i += 8 {
		var bits uint64
		for b := 0; b < 8; b++ {
			bits |= uint64(raw[i+b]) << (8 * b)
		}
		out = append(out, math.Float64frombits(bits))
	}
	return out
}

// FuzzTokens asserts tokenization is total (no panics, bounded output)
// and deterministic for equal geometry under any input.
func FuzzTokens(f *testing.F) {
	for _, s := range seedGeometries {
		f.Add(seedBytes(s.xs), seedBytes(s.ys))
	}
	ix := fuzzIndex(f)
	f.Fuzz(func(t *testing.T, xb, yb []byte) {
		tr := fuzzTraj(decodeFloats(xb), decodeFloats(yb))
		toks := ix.tokens(tr)
		if len(toks) > (maxWalkSteps+1)*len(tr.Points) {
			t.Fatalf("tokenization unbounded: %d tokens for %d points", len(toks), len(tr.Points))
		}
		again := ix.tokens(tr.Clone())
		if !reflect.DeepEqual(toks, again) {
			t.Fatal("tokens differ for equal geometry")
		}
	})
}

// FuzzSignature asserts MinHash signature generation never panics, is
// deterministic for equal geometry, and survives Insert/Candidates/
// Delete round-trips on arbitrary input.
func FuzzSignature(f *testing.F) {
	for _, s := range seedGeometries {
		f.Add(seedBytes(s.xs), seedBytes(s.ys))
	}
	f.Fuzz(func(t *testing.T, xb, yb []byte) {
		ix := fuzzIndex(t)
		tr := fuzzTraj(decodeFloats(xb), decodeFloats(yb))
		sig := ix.signature(ix.shingles(ix.tokens(tr)))
		clone := tr.Clone()
		clone.ID = 2
		sig2 := ix.signature(ix.shingles(ix.tokens(clone)))
		if !reflect.DeepEqual(sig, sig2) {
			t.Fatal("signatures differ for equal geometry")
		}
		if len(sig) != 0 && len(sig) != 32 {
			t.Fatalf("signature length %d, want 0 or 32", len(sig))
		}
		ix.Insert(tr)
		ids, _ := ix.Candidates(tr, 4)
		found := false
		for _, id := range ids {
			if id == tr.ID {
				found = true
			}
		}
		if !found {
			t.Fatal("indexed trajectory missing from its own candidates")
		}
		if !ix.Delete(tr.ID) {
			t.Fatal("delete of just-inserted trajectory failed")
		}
		if ids, _ := ix.Candidates(tr, 4); len(ids) != 0 {
			t.Fatalf("deleted trajectory still produces candidates: %v", ids)
		}
	})
}
