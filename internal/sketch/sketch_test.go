package sketch

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"trajmatch/internal/synth"
	"trajmatch/internal/traj"
)

func testParams() Params {
	return Params{CellSize: 200, Shingle: 2, Hashes: 64, Bands: 16, MinCands: 8, Seed: 1}
}

func mustIndex(t *testing.T, p Params) *Index {
	t.Helper()
	ix, err := NewIndex(p)
	if err != nil {
		t.Fatalf("NewIndex: %v", err)
	}
	return ix
}

func TestParamsValidate(t *testing.T) {
	if err := (Params{CellSize: 100}.WithDefaults()).Validate(); err != nil {
		t.Fatalf("defaults should validate: %v", err)
	}
	bad := []Params{
		{CellSize: 0, Shingle: 2, Hashes: 64, Bands: 16, MinCands: 8, Seed: 1},
		{CellSize: -5, Shingle: 2, Hashes: 64, Bands: 16, MinCands: 8, Seed: 1},
		{CellSize: 100, Shingle: 2, Hashes: 65, Bands: 16, MinCands: 8, Seed: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, p)
		}
	}
}

func TestDeriveCellSizeDegenerate(t *testing.T) {
	if c := DeriveCellSize(nil); c != 1 {
		t.Fatalf("empty corpus: got %v, want 1", c)
	}
	stationary := []*traj.Trajectory{traj.New(0, []traj.Point{traj.P(5, 5, 0), traj.P(5, 5, 10)})}
	if c := DeriveCellSize(stationary); c != 1 {
		t.Fatalf("stationary corpus: got %v, want 1", c)
	}
	db := synth.Taxi(synth.DefaultTaxi(50))
	if c := DeriveCellSize(db); !(c > 0) {
		t.Fatalf("taxi corpus: got %v, want > 0", c)
	}
}

// Signatures are a function of geometry and parameters alone: equal
// geometry (even under a different ID) produces equal signatures, and
// two indexes with equal parameters agree.
func TestSignatureDeterministic(t *testing.T) {
	db := synth.Taxi(synth.DefaultTaxi(20))
	a := mustIndex(t, testParams())
	b := mustIndex(t, testParams())
	for _, tr := range db {
		clone := tr.Clone()
		clone.ID = tr.ID + 10_000
		sa := a.signature(a.shingles(a.tokens(tr)))
		sb := b.signature(b.shingles(b.tokens(clone)))
		if !reflect.DeepEqual(sa, sb) {
			t.Fatalf("trajectory %d: signatures differ for equal geometry", tr.ID)
		}
	}
}

// Tokenization walks the interpolated movement, so resampling the same
// path at a very different rate preserves most of the token set — the
// property that makes the prefilter work under inconsistent sampling.
func TestTokensSamplingInvariant(t *testing.T) {
	ix := mustIndex(t, testParams())
	// A 4 km L-shaped path sampled every ~50 m vs every ~800 m.
	dense := pathTraj(1, 50)
	sparse := pathTraj(2, 800)
	dt := dedupe(ix.tokens(dense))
	st := dedupe(ix.tokens(sparse))
	shared := 0
	in := make(map[uint64]bool, len(dt))
	for _, c := range dt {
		in[c] = true
	}
	for _, c := range st {
		if in[c] {
			shared++
		}
	}
	union := len(dt) + len(st) - shared
	if union == 0 {
		t.Fatal("no tokens emitted")
	}
	if j := float64(shared) / float64(union); j < 0.8 {
		t.Fatalf("token Jaccard %.2f between resamplings; want >= 0.8 (dense %d, sparse %d, shared %d)",
			j, len(dt), len(st), shared)
	}
}

// pathTraj samples a fixed L-shaped 4 km path every `step` metres. The
// corner waypoint is always emitted, so both resamplings follow the
// same underlying movement (a cut corner would be a genuinely different
// path, which tokenization must NOT treat as equal).
func pathTraj(id int, step float64) *traj.Trajectory {
	var pts []traj.Point
	tm := 0.0
	emit := func(x, y float64) {
		pts = append(pts, traj.P(x, y, tm))
		tm += step / 10 // constant speed
	}
	for d := 0.0; d < 2000; d += step {
		emit(d, 0)
	}
	emit(2000, 0)
	for d := step; d < 2000; d += step {
		emit(2000, d)
	}
	emit(2000, 2000)
	return traj.New(id, pts)
}

func TestCandidatesDeterministicAndSorted(t *testing.T) {
	db := synth.Taxi(synth.DefaultTaxi(300))
	ix := mustIndex(t, testParams())
	for _, tr := range db {
		ix.Insert(tr)
	}
	q := db[17]
	first, _ := ix.Candidates(q, 40)
	if !sort.IntsAreSorted(first) {
		t.Fatal("candidates not sorted")
	}
	for i := 0; i < 5; i++ {
		again, _ := ix.Candidates(q, 40)
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("candidate set not deterministic across calls: %v vs %v", first, again)
		}
	}
	// The query itself is indexed and must always be its own candidate:
	// it shares every cell with itself, so the overlap ranking admits it
	// first, and its bands collide trivially.
	found := false
	for _, id := range first {
		if id == q.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("query %d missing from its own candidate set", q.ID)
	}
}

func TestCandidatesSmallIndexFullScan(t *testing.T) {
	db := synth.Taxi(synth.DefaultTaxi(10))
	ix := mustIndex(t, testParams())
	for _, tr := range db {
		ix.Insert(tr)
	}
	ids, st := ix.Candidates(db[0], 32)
	if !st.FullScan {
		t.Fatal("expected full-scan degradation on a tiny index")
	}
	if len(ids) != len(db) {
		t.Fatalf("full scan returned %d of %d members", len(ids), len(db))
	}
}

// Mutation-path property: a random Insert/Delete sequence keeps the
// index in sync with a brute-force membership oracle — candidates are
// always a subset of the live members, a deleted ID is never returned,
// and re-inserted members are reachable again.
func TestMutationOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := synth.Taxi(synth.DefaultTaxi(200))
	ix := mustIndex(t, testParams())
	live := make(map[int]*traj.Trajectory)
	for _, tr := range db[:100] {
		ix.Insert(tr)
		live[tr.ID] = tr
	}
	check := func(q *traj.Trajectory) {
		ids, _ := ix.Candidates(q, 25)
		for _, id := range ids {
			if _, ok := live[id]; !ok {
				t.Fatalf("candidate %d is not a live member", id)
			}
		}
	}
	for step := 0; step < 400; step++ {
		tr := db[rng.Intn(len(db))]
		if _, ok := live[tr.ID]; ok && rng.Float64() < 0.5 {
			if !ix.Delete(tr.ID) {
				t.Fatalf("step %d: delete of live member %d reported absent", step, tr.ID)
			}
			delete(live, tr.ID)
		} else if !ok {
			ix.Insert(tr)
			live[tr.ID] = tr
		}
		if ix.Size() != len(live) {
			t.Fatalf("step %d: size %d, oracle %d", step, ix.Size(), len(live))
		}
		check(db[rng.Intn(len(db))])
	}
	if ix.Delete(1 << 30) {
		t.Fatal("delete of never-inserted ID reported present")
	}
}

// Concurrent Candidates against a live mutator must be race-free (run
// under -race in CI) and never surface a non-member.
func TestConcurrentCandidates(t *testing.T) {
	db := synth.Taxi(synth.DefaultTaxi(120))
	ix := mustIndex(t, testParams())
	for _, tr := range db[:60] {
		ix.Insert(tr)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			tr := db[60+i%60]
			ix.Insert(tr)
			ix.Delete(tr.ID)
		}
	}()
	for i := 0; i < 200; i++ {
		ids, _ := ix.Candidates(db[i%60], 20)
		for _, id := range ids {
			if id >= db[60].ID && id <= db[119].ID {
				// Transiently-present churn IDs are fine; the point is
				// no panic and no race. Nothing to assert beyond sanity.
				_ = id
			}
		}
	}
	<-done
}

func TestReinsertReplaces(t *testing.T) {
	ix := mustIndex(t, testParams())
	a := traj.FromXY(1, 0, 0, 100, 0, 200, 0)
	b := traj.FromXY(1, 5000, 5000, 5100, 5000) // same ID, elsewhere
	ix.Insert(a)
	ix.Insert(b)
	if ix.Size() != 1 {
		t.Fatalf("size %d after re-insert, want 1", ix.Size())
	}
	if !ix.Delete(1) {
		t.Fatal("delete after re-insert failed")
	}
	if ix.Size() != 0 {
		t.Fatalf("size %d after delete, want 0", ix.Size())
	}
	// All posting lists must be empty again — no leaked buckets.
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if len(ix.bands) != 0 || len(ix.cells) != 0 {
		t.Fatalf("leaked buckets after delete: %d bands, %d cells", len(ix.bands), len(ix.cells))
	}
}

func TestBuildMatchesIncrementalInsert(t *testing.T) {
	db := synth.Taxi(synth.DefaultTaxi(80))
	bulk, err := Build(db, testParams())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	inc := mustIndex(t, testParams())
	for _, tr := range db {
		inc.Insert(tr)
	}
	for _, q := range db[:20] {
		a, _ := bulk.Candidates(q, 30)
		b, _ := inc.Candidates(q, 30)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("query %d: bulk and incremental candidate sets differ", q.ID)
		}
	}
}
