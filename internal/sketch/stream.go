package sketch

import (
	"math"

	"trajmatch/internal/traj"
)

// Stream maintains a live track's fingerprint incrementally: each
// Extend tokenizes only the newly appended segments (the cellWalk
// cursor carries the duplicate-collapse and predecessor state across
// calls) and folds the new k-gram shingles into a running MinHash
// signature. At every prefix the stream's Signature equals what Index
// would compute from scratch over the same points — the property the
// continuous-query pipeline relies on and stream_test proves — at
// O(new segments) cost per append instead of O(track length).
//
// The incremental fold is possible because the k-gram shingle set only
// grows as tokens arrive, so per-hash minima never need revisiting. The
// one wrinkle is the short-prefix regime: a sequence with fewer than
// Shingle tokens contributes a single whole-sequence gram, which
// *disappears* from the set once the sequence reaches k tokens. The
// running signature therefore covers k-grams only, and while the token
// count is still below k, Signature derives the whole-sequence-gram
// answer on demand from the retained tail.
//
// A Stream is not safe for concurrent use; callers serialise access
// (the stream buffer holds its per-shard lock across Extend).
type Stream struct {
	p     Params
	seeds []uint64

	walk cellWalk
	nTok int                 // tokens emitted so far
	tail []uint64            // last Shingle-1 tokens (all of them while nTok < Shingle)
	seen map[uint64]struct{} // distinct fine-cell tokens
	sig  []uint64            // running min over k-gram hashes; meaningful once nTok >= Shingle
}

// NewStream returns an empty stream; Params must Validate (CellSize
// resolved). Equal params produce streams whose signatures are
// comparable with an equal-params Index.
func NewStream(p Params) (*Stream, error) {
	p = p.WithDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := &Stream{
		p:    p,
		walk: cellWalk{cell: p.CellSize},
		seen: make(map[uint64]struct{}),
		sig:  make([]uint64, p.Hashes),
	}
	for i := range s.sig {
		s.sig[i] = math.MaxUint64
	}
	s.seeds = make([]uint64, p.Hashes)
	seed := uint64(p.Seed)
	for i := range s.seeds {
		seed = splitmix64(seed)
		s.seeds[i] = seed
	}
	return s, nil
}

// Params returns the stream's resolved parameters.
func (s *Stream) Params() Params { return s.p }

// Extend feeds the appended points through the walk and returns the
// distinct cell tokens seen for the first time, in first-visit order —
// the delta the continuous-query gate probes against its inverted
// watch index. Points must be the contiguous continuation of what was
// fed before; the first call takes the track's opening points.
func (s *Stream) Extend(pts []traj.Point) []uint64 {
	var fresh []uint64
	k := s.p.Shingle
	s.walk.feed(pts, func(t uint64) {
		s.nTok++
		if _, ok := s.seen[t]; !ok {
			s.seen[t] = struct{}{}
			fresh = append(fresh, t)
		}
		if len(s.tail) == k-1 {
			// A full k-token window ends at t; fold its gram.
			g := uint64(0x5851f42d4c957f2d)
			for _, w := range s.tail {
				g = mix2(g, w)
			}
			g = mix2(g, t)
			for i, seed := range s.seeds {
				if h := mix2(seed, g); h < s.sig[i] {
					s.sig[i] = h
				}
			}
			if k > 1 {
				copy(s.tail, s.tail[1:])
				s.tail[k-2] = t
			}
		} else {
			s.tail = append(s.tail, t)
		}
	})
	return fresh
}

// TokenCount returns the number of tokens emitted so far (with
// consecutive duplicates collapsed, as always).
func (s *Stream) TokenCount() int { return s.nTok }

// HasToken reports whether the track has ever entered the cell behind
// tok. The token set grows monotonically, which is what makes the
// collision gate sticky: once a watcher collides it stays a candidate.
func (s *Stream) HasToken(tok uint64) bool {
	_, ok := s.seen[tok]
	return ok
}

// Signature returns the MinHash signature of the track's current
// prefix, identical to Index's from-scratch computation over the same
// points: nil while no token has been emitted, the whole-sequence-gram
// signature while the token count is below the shingle length, and the
// incrementally maintained k-gram signature after. The returned slice
// is the caller's.
func (s *Stream) Signature() []uint64 {
	if s.nTok == 0 {
		return nil
	}
	out := make([]uint64, len(s.seeds))
	if s.nTok < s.p.Shingle {
		g := gram(s.tail)
		for i, seed := range s.seeds {
			out[i] = mix2(seed, g)
		}
		return out
	}
	copy(out, s.sig)
	return out
}

// PatternTokens returns the distinct cell tokens of tr under p, in
// first-visit order — how the watch registry fingerprints a standing
// query's pattern so appends can be gated by token collision.
func PatternTokens(p Params, tr *traj.Trajectory) ([]uint64, error) {
	s, err := NewStream(p)
	if err != nil {
		return nil, err
	}
	return s.Extend(tr.Points), nil
}
