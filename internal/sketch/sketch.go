// Package sketch is the sub-linear candidate generator in front of the
// exact metric backends: a Geodabs-style fingerprint index (PAPERS.md,
// "Geodabs: Trajectory Indexing Meets Fingerprinting at Scale") that
// turns each trajectory into a set of grid-cell shingles, compresses the
// set into a MinHash signature, and files the signature into a banded
// LSH inverted index. A query probes its own bands and gets back a small
// candidate set — trajectories whose shingle sets are likely similar —
// which the exact bounded kernels then verify under the engine's shared
// k-th-best bound. The prefilter trades nothing for correctness on the
// verified answers themselves (every returned distance is exact); what
// it trades is recall — a true neighbour absent from the candidate set
// is never examined — so the index stacks two mechanisms whose union
// keeps measured recall@k high (see docs/ARCHITECTURE.md, "Candidate
// prefilter"):
//
//   - banded MinHash-LSH: trajectories colliding with the query in at
//     least one signature band (high-Jaccard matches surface with high
//     probability, the classic b×r amplification);
//   - overlap ranking: the cell posting lists rank trajectories by how
//     many grid cells they share with the query, and the top `want` are
//     always admitted — the robustness backstop for moderate-Jaccard
//     true neighbours that banding alone would miss.
//
// Tokenization walks the *interpolated* movement, emitting every cell a
// segment passes through rather than only the sampled points, so two
// trajectories following the same path at different sampling rates
// produce nearly identical token sets — the inconsistent-sampling
// premise of the source paper carries down into the prefilter layer.
//
// An Index is safe for concurrent use: Candidates takes a read lock,
// Insert/Delete/Clear a write lock. All randomness derives from
// Params.Seed, so equal corpora under equal parameters produce equal
// candidate sets — the property the snapshot warm-boot path relies on to
// rebuild the prefilter deterministically instead of persisting it.
package sketch

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"trajmatch/internal/backend"
	"trajmatch/internal/traj"
)

// Params fix the sketch geometry for a whole corpus. Like EDR's ε they
// must be chosen once, before sharding, so every shard tokenizes
// identically; the snapshot manifest records the resolved values. The
// zero value of every field selects a default (WithDefaults).
type Params struct {
	// CellSize is the tokenization grid pitch in corpus units (metres
	// for the synthetic taxi corpora). 0 derives it from the database at
	// engine build time (DeriveCellSize: half the median spatial segment
	// length, the same whole-corpus-statistic pattern as EDR's ε).
	CellSize float64 `json:"cell_size"`
	// Shingle is the number of consecutive cell tokens per shingle
	// (k-gram). Default 2. Trajectories with fewer tokens contribute one
	// whole-sequence shingle instead, so every valid trajectory has a
	// non-empty shingle set.
	Shingle int `json:"shingle"`
	// Hashes is the MinHash signature length; must be divisible by
	// Bands. Default 64.
	Hashes int `json:"hashes"`
	// Bands is the LSH band count; rows per band = Hashes/Bands.
	// Default 16 (so 4 rows per band).
	Bands int `json:"bands"`
	// MinCands is the per-query floor of the candidate set (before the
	// query's own k scales it up; the engine requests
	// max(MinCands, 4·k)). The overlap ranking widens the LSH matches up
	// to this size, and a shard smaller than the floor degrades to a
	// full scan — exact by construction. Default 32.
	MinCands int `json:"min_cands"`
	// Seed drives every hash function. Default 1.
	Seed int64 `json:"seed"`
}

// WithDefaults returns p with every unset field replaced by its default
// — the normal form the snapshot manifest records. CellSize stays 0
// when unset; it is corpus-derived, not defaulted (resolve it with
// DeriveCellSize before building an Index).
func (p Params) WithDefaults() Params {
	if p.Shingle <= 0 {
		p.Shingle = 2
	}
	if p.Hashes <= 0 {
		p.Hashes = 64
	}
	if p.Bands <= 0 {
		p.Bands = 16
	}
	if p.MinCands <= 0 {
		p.MinCands = 32
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// Validate rejects parameter combinations an Index cannot be built
// with. It expects a resolved CellSize (> 0).
func (p Params) Validate() error {
	if !(p.CellSize > 0) || math.IsInf(p.CellSize, 1) {
		return fmt.Errorf("sketch: cell size must be positive and finite (got %v)", p.CellSize)
	}
	if p.Shingle <= 0 {
		return fmt.Errorf("sketch: shingle length must be positive (got %d)", p.Shingle)
	}
	if p.Hashes <= 0 || p.Bands <= 0 || p.Hashes%p.Bands != 0 {
		return fmt.Errorf("sketch: hashes (%d) must be a positive multiple of bands (%d)", p.Hashes, p.Bands)
	}
	if p.MinCands <= 0 {
		return fmt.Errorf("sketch: min cands must be positive (got %d)", p.MinCands)
	}
	return nil
}

// DeriveCellSize picks a tokenization pitch from whole-corpus
// statistics: half the median spatial segment length, so a typical
// sampling interval crosses a couple of cells and the segment walk in
// between fills the gaps. Falls back to 1 for corpora without a single
// positive-length segment (all-stationary or empty databases), where
// any pitch tokenizes everything into one cell anyway.
func DeriveCellSize(db []*traj.Trajectory) float64 {
	var lens []float64
	for _, t := range db {
		for i := 0; i < t.NumSegments(); i++ {
			if l := t.Segment(i).Length(); l > 0 && !math.IsInf(l, 1) {
				lens = append(lens, l)
			}
		}
	}
	if len(lens) == 0 {
		return 1
	}
	sort.Float64s(lens)
	c := lens[len(lens)/2] / 2
	if !(c > 0) {
		return 1
	}
	return c
}

// idSet is an insertion-agnostic member set; posting lists use it so
// Delete is O(1) per key instead of a slice scan.
type idSet map[int]struct{}

// Index is one shard's fingerprint index: the banded LSH buckets, the
// cell posting lists, and the per-member reverse entries that make
// Delete exact. It implements backend.CandidateSource.
type Index struct {
	p     Params
	rows  int
	seeds []uint64 // one per MinHash function

	mu     sync.RWMutex
	bands  map[uint64]idSet // band bucket key -> members
	cells  map[uint64]idSet // fine cell token -> members
	coarse map[uint64]idSet // coarse cell token -> members
	byID   map[int]*entry   // reverse index for Delete
}

// entry remembers which buckets a member landed in.
type entry struct {
	bandKeys   []uint64
	cellToks   []uint64
	coarseToks []uint64
}

// NewIndex builds an empty index; Params must Validate.
func NewIndex(p Params) (*Index, error) {
	p = p.WithDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ix := &Index{
		p:      p,
		rows:   p.Hashes / p.Bands,
		seeds:  make([]uint64, p.Hashes),
		bands:  make(map[uint64]idSet),
		cells:  make(map[uint64]idSet),
		coarse: make(map[uint64]idSet),
		byID:   make(map[int]*entry),
	}
	s := uint64(p.Seed)
	for i := range ix.seeds {
		s = splitmix64(s)
		ix.seeds[i] = s
	}
	return ix, nil
}

// Build constructs an index over db, used by the engine's per-shard
// bulk load and the snapshot warm boot (rebuilding is deterministic, so
// the prefilter itself is never persisted).
func Build(db []*traj.Trajectory, p Params) (*Index, error) {
	ix, err := NewIndex(p)
	if err != nil {
		return nil, err
	}
	for _, t := range db {
		ix.Insert(t)
	}
	return ix, nil
}

// Params returns the index's resolved parameters.
func (ix *Index) Params() Params { return ix.p }

// Size returns the number of indexed trajectories.
func (ix *Index) Size() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.byID)
}

// Insert files tr into the LSH buckets and posting lists. Re-inserting
// an ID replaces its previous entry (the engine never does; the
// robustness matters for op-sequence tests).
func (ix *Index) Insert(tr *traj.Trajectory) {
	toks := ix.tokens(tr)
	keys := ix.bandKeys(ix.signature(ix.shingles(toks)))
	cellToks := dedupe(toks)
	coarseToks := dedupe(ix.tokensAt(tr, ix.p.CellSize*coarseFactor))
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, ok := ix.byID[tr.ID]; ok {
		ix.removeLocked(tr.ID)
	}
	for _, k := range keys {
		set, ok := ix.bands[k]
		if !ok {
			set = make(idSet)
			ix.bands[k] = set
		}
		set[tr.ID] = struct{}{}
	}
	for _, c := range cellToks {
		set, ok := ix.cells[c]
		if !ok {
			set = make(idSet)
			ix.cells[c] = set
		}
		set[tr.ID] = struct{}{}
	}
	for _, c := range coarseToks {
		set, ok := ix.coarse[c]
		if !ok {
			set = make(idSet)
			ix.coarse[c] = set
		}
		set[tr.ID] = struct{}{}
	}
	ix.byID[tr.ID] = &entry{bandKeys: keys, cellToks: cellToks, coarseToks: coarseToks}
}

// Delete removes the member with the given ID, reporting whether it was
// indexed. A deleted ID can never be returned by Candidates again.
func (ix *Index) Delete(id int) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.removeLocked(id)
}

func (ix *Index) removeLocked(id int) bool {
	e, ok := ix.byID[id]
	if !ok {
		return false
	}
	for _, k := range e.bandKeys {
		if set := ix.bands[k]; set != nil {
			delete(set, id)
			if len(set) == 0 {
				delete(ix.bands, k)
			}
		}
	}
	for _, c := range e.cellToks {
		if set := ix.cells[c]; set != nil {
			delete(set, id)
			if len(set) == 0 {
				delete(ix.cells, c)
			}
		}
	}
	for _, c := range e.coarseToks {
		if set := ix.coarse[c]; set != nil {
			delete(set, id)
			if len(set) == 0 {
				delete(ix.coarse, c)
			}
		}
	}
	delete(ix.byID, id)
	return true
}

// CandStats reports how a candidate set was assembled; the engine folds
// it into the per-query backend.Stats. It is the backend contract's
// CandidateInfo — the alias makes *Index satisfy
// backend.CandidateSource directly.
type CandStats = backend.CandidateInfo

// The Index is the engine's CandidateSource: one per shard, shared
// across metric sets.
var _ backend.CandidateSource = (*Index)(nil)

// jaccard is the exact Jaccard similarity of two sets given their
// intersection and individual sizes.
func jaccard(shared, a, b int) float64 {
	if u := a + b - shared; u > 0 {
		return float64(shared) / float64(u)
	}
	return 0
}

// Candidates returns the IDs the prefilter admits for q, sorted
// ascending — a deterministic function of (indexed members, params, q,
// want). The set is the union of the banded-LSH matches and the top
// `want` members of the overlap ranking: fine-cell Jaccard first (the
// same similarity the MinHash signatures estimate, computed exactly
// over the posting lists — normalized, so a long member crossing the
// query once cannot outrank a short near-duplicate), coarse-cell
// Jaccard as the tie-break (members spatially near the query without a
// single shared fine cell still fill the budget's tail ahead of the
// arbitrary rest). When the index holds at most `want` members
// everything is admitted. want <= 0 means the params' MinCands floor.
func (ix *Index) Candidates(q *traj.Trajectory, want int) ([]int, CandStats) {
	if want <= 0 {
		want = ix.p.MinCands
	} else if want < ix.p.MinCands {
		want = ix.p.MinCands
	}
	toks := ix.tokens(q)
	keys := ix.bandKeys(ix.signature(ix.shingles(toks)))
	fineQ := dedupe(toks)
	coarseQ := dedupe(ix.tokensAt(q, ix.p.CellSize*coarseFactor))

	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var st CandStats
	if len(ix.byID) <= want {
		st.FullScan = true
		out := make([]int, 0, len(ix.byID))
		for id := range ix.byID {
			out = append(out, id)
		}
		sort.Ints(out)
		st.LSHHits = len(out)
		return out, st
	}
	admitted := make(map[int]struct{})
	for _, k := range keys {
		for id := range ix.bands[k] {
			admitted[id] = struct{}{}
		}
	}
	st.LSHHits = len(admitted)

	fine := make(map[int]int)
	for _, c := range fineQ {
		for id := range ix.cells[c] {
			fine[id]++
		}
	}
	coarse := make(map[int]int)
	for _, c := range coarseQ {
		for id := range ix.coarse[c] {
			coarse[id]++
		}
	}
	type oc struct {
		id    int
		score float64
	}
	// The blend keeps the exact fine-cell Jaccard dominant while letting
	// coarse co-location break the low-overlap region apart: a member
	// with one stray shared cell should not outrank a parallel-street
	// near-neighbour that shares most coarse cells but no fine one.
	const coarseWeight = 0.25
	ranked := make([]oc, 0, len(coarse)+len(fine))
	for id, m := range coarse {
		e := ix.byID[id]
		s := coarseWeight * jaccard(m, len(coarseQ), len(e.coarseToks))
		if n := fine[id]; n > 0 {
			s += jaccard(n, len(fineQ), len(e.cellToks))
		}
		ranked = append(ranked, oc{id: id, score: s})
	}
	// A shared fine cell usually implies a shared coarse cell, but the
	// half-cell walk can clip a corner at one pitch and not the other —
	// pick up fine-only sharers too.
	for id, n := range fine {
		if _, ok := coarse[id]; !ok {
			ranked = append(ranked, oc{id: id, score: jaccard(n, len(fineQ), len(ix.byID[id].cellToks))})
		}
	}
	if len(ranked) > 0 {
		sort.Slice(ranked, func(a, b int) bool {
			if ranked[a].score != ranked[b].score {
				return ranked[a].score > ranked[b].score
			}
			return ranked[a].id < ranked[b].id
		})
		if len(ranked) > want {
			ranked = ranked[:want]
		}
		for _, r := range ranked {
			if _, ok := admitted[r.id]; !ok {
				st.Widened = true
				admitted[r.id] = struct{}{}
			}
		}
	}
	out := make([]int, 0, len(admitted))
	for id := range admitted {
		out = append(out, id)
	}
	sort.Ints(out)
	return out, st
}

// dedupe returns the distinct tokens of an ordered token sequence,
// sorted — the posting-list keys.
func dedupe(toks []uint64) []uint64 {
	if len(toks) == 0 {
		return nil
	}
	out := append([]uint64(nil), toks...)
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}
