package sketch

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"trajmatch/internal/traj"
)

// streamWalkTraj builds a meandering track whose segments vary from
// sub-cell jitter to multi-cell hops, so prefixes exercise the
// duplicate collapse, the interior walk, and the short-sequence
// shingle fallback.
func streamWalkTraj(rng *rand.Rand, n int) []traj.Point {
	pts := make([]traj.Point, n)
	x, y := rng.Float64()*1000, rng.Float64()*1000
	for i := range pts {
		step := math.Exp(rng.Float64()*6 - 2) // ~0.14 .. ~55 units
		ang := rng.Float64() * 2 * math.Pi
		x += step * math.Cos(ang)
		y += step * math.Sin(ang)
		pts[i] = traj.Point{X: x, Y: y, T: float64(i)}
	}
	return pts
}

// TestStreamMatchesIndexAtEveryPrefix is the core incremental-sketch
// property: a Stream extended in arbitrary chunks reports, at every
// prefix, exactly the signature and token set Index computes from
// scratch over the same points. Covers shingle lengths spanning the
// whole-sequence-fallback transition and chunk sizes from single
// points to bursts.
func TestStreamMatchesIndexAtEveryPrefix(t *testing.T) {
	for _, k := range []int{1, 2, 4} {
		for _, chunk := range []int{1, 3, 7} {
			rng := rand.New(rand.NewSource(int64(100*k + chunk)))
			p := Params{CellSize: 10, Shingle: k, Hashes: 32, Bands: 8, MinCands: 8, Seed: 42}
			ix := mustIndex(t, p)
			s, err := NewStream(p)
			if err != nil {
				t.Fatal(err)
			}
			pts := streamWalkTraj(rng, 60)
			var seen []uint64
			for off := 0; off < len(pts); off += chunk {
				end := off + chunk
				if end > len(pts) {
					end = len(pts)
				}
				fresh := s.Extend(pts[off:end])
				seen = append(seen, fresh...)

				prefix := &traj.Trajectory{ID: 1, Points: pts[:end]}
				toks := ix.tokens(prefix)
				wantSig := ix.signature(ix.shingles(toks))
				if got := s.Signature(); !reflect.DeepEqual(got, wantSig) {
					t.Fatalf("k=%d chunk=%d prefix=%d: signature diverged", k, chunk, end)
				}
				if s.TokenCount() != len(toks) {
					t.Fatalf("k=%d chunk=%d prefix=%d: token count %d, want %d", k, chunk, end, s.TokenCount(), len(toks))
				}
				wantSet := dedupe(toks)
				gotSet := append([]uint64(nil), seen...)
				sort.Slice(gotSet, func(a, b int) bool { return gotSet[a] < gotSet[b] })
				if !reflect.DeepEqual(gotSet, wantSet) {
					t.Fatalf("k=%d chunk=%d prefix=%d: token set diverged (%d vs %d tokens)", k, chunk, end, len(gotSet), len(wantSet))
				}
				for _, tok := range wantSet {
					if !s.HasToken(tok) {
						t.Fatalf("k=%d chunk=%d prefix=%d: HasToken(%#x) = false", k, chunk, end, tok)
					}
				}
			}
		}
	}
}

// TestStreamNonFinitePoints: non-finite points must neither emit tokens
// nor break chunked/whole equivalence (they suppress the interior walk
// of adjacent segments exactly as Index's tokenizer does).
func TestStreamNonFinitePoints(t *testing.T) {
	p := Params{CellSize: 10, Shingle: 2, Hashes: 32, Bands: 8, MinCands: 8, Seed: 7}
	ix := mustIndex(t, p)
	pts := []traj.Point{
		{X: 0, Y: 0, T: 0},
		{X: 35, Y: 5, T: 1},
		{X: math.NaN(), Y: 10, T: 2},
		{X: 70, Y: 40, T: 3},
		{X: math.Inf(1), Y: math.Inf(1), T: 4},
		{X: 90, Y: 90, T: 5},
	}
	s, err := NewStream(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		s.Extend(pts[i : i+1])
	}
	whole := &traj.Trajectory{ID: 1, Points: pts}
	want := ix.signature(ix.shingles(ix.tokens(whole)))
	if got := s.Signature(); !reflect.DeepEqual(got, want) {
		t.Fatalf("signature diverged on non-finite input")
	}
}

// TestPatternTokens: the registry-side fingerprint equals the distinct
// token set of the index tokenizer.
func TestPatternTokens(t *testing.T) {
	p := Params{CellSize: 10, Shingle: 2, Hashes: 32, Bands: 8, MinCands: 8, Seed: 7}
	ix := mustIndex(t, p)
	rng := rand.New(rand.NewSource(9))
	tr := &traj.Trajectory{ID: 3, Points: streamWalkTraj(rng, 40)}
	got, err := PatternTokens(p, tr)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
	if want := dedupe(ix.tokens(tr)); !reflect.DeepEqual(got, want) {
		t.Fatalf("pattern tokens diverged: %d vs %d", len(got), len(want))
	}
	if _, err := PatternTokens(Params{CellSize: -1}, tr); err == nil {
		t.Fatal("invalid params accepted")
	}
}
