package sketch

import (
	"math"

	"trajmatch/internal/traj"
)

// splitmix64 is the same finalizer the shard router uses: a cheap,
// well-mixed 64-bit permutation. All sketch hashing composes it.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mix2 combines two words through the finalizer; used for token,
// shingle and band-key construction.
func mix2(a, b uint64) uint64 { return splitmix64(a ^ splitmix64(b)) }

// cellCoordLimit clamps quantized cell coordinates. The corpora live
// within a few thousand cells of the origin; the clamp only matters for
// adversarial inputs (fuzzing feeds near-±MaxFloat64 coordinates, whose
// quotient overflows int64), where collapsing everything beyond ±2³¹
// onto the boundary cell keeps tokenization total and deterministic.
const cellCoordLimit = int64(1) << 31

// quantize maps one coordinate onto its cell index, clamped.
func quantize(v, cell float64) int64 {
	f := math.Floor(v / cell)
	switch {
	case math.IsNaN(f):
		return 0
	case f >= float64(cellCoordLimit):
		return cellCoordLimit
	case f <= -float64(cellCoordLimit):
		return -cellCoordLimit
	}
	return int64(f)
}

// cellToken hashes a cell coordinate pair into one 64-bit token.
func cellToken(ix, iy int64) uint64 {
	return mix2(uint64(ix), uint64(iy))
}

// coarseFactor is the pitch multiple of the second, coarser cell level.
// Fine cells drive the shingles, signatures and primary overlap
// ranking; coarse cells (coarseFactor× the pitch) exist so members that
// are spatially near a query without sharing a single fine cell — the
// parallel-street case — still rank above the arbitrary rest when the
// candidate budget has room left.
const coarseFactor = 8

// tokens converts tr into its ordered cell-token sequence at the
// params' (fine) pitch.
func (ix *Index) tokens(tr *traj.Trajectory) []uint64 {
	return ix.tokensAt(tr, ix.p.CellSize)
}

// tokensAt converts tr into its ordered cell-token sequence at the
// given pitch. It walks each segment's interpolated movement at
// half-cell steps — emitting every cell the movement passes through,
// not just the sampled points — and collapses consecutive duplicates.
// Two trajectories along the same path at different sampling rates
// therefore emit nearly identical sequences, which is what makes the
// fingerprint usable under the paper's inconsistent-sampling premise.
// Non-finite points are skipped (indexed trajectories never carry them;
// fuzzing does).
func (ix *Index) tokensAt(tr *traj.Trajectory, cell float64) []uint64 {
	var out []uint64
	w := cellWalk{cell: cell}
	w.feed(tr.Points, func(t uint64) { out = append(out, t) })
	return out
}

// cellWalk is the resumable tokenization cursor: it carries the
// consecutive-duplicate collapse state and the previous raw point across
// feed calls, so feeding a point sequence in arbitrary chunks emits
// exactly the token stream of feeding it whole. Index tokenizes a
// finished trajectory through a throwaway walk; Stream keeps one alive
// per growing track so each append tokenizes only the new segments.
type cellWalk struct {
	cell           float64
	lastCx, lastCy int64
	haveCell       bool
	prev           traj.Point
	havePrev       bool
}

// feed advances the walk over pts, invoking emit for every newly entered
// cell. Segment interiors are walked at half-cell steps so every
// traversed cell is emitted regardless of sampling rate; non-finite
// points are skipped (and suppress the walk of their adjacent segments)
// but still become the predecessor of the next point, mirroring the
// whole-array semantics.
func (w *cellWalk) feed(pts []traj.Point, emit func(uint64)) {
	emitXY := func(x, y float64) {
		cx, cy := quantize(x, w.cell), quantize(y, w.cell)
		if w.haveCell && cx == w.lastCx && cy == w.lastCy {
			return
		}
		w.lastCx, w.lastCy = cx, cy
		w.haveCell = true
		emit(cellToken(cx, cy))
	}
	for _, p := range pts {
		if finite(p.X) && finite(p.Y) {
			if w.havePrev && finite(w.prev.X) && finite(w.prev.Y) {
				// Walk the segment interior at half-cell steps so every
				// traversed cell is emitted regardless of sampling rate.
				px, py := w.prev.X, w.prev.Y
				dx, dy := p.X-px, p.Y-py
				dist := math.Hypot(dx, dy)
				if finite(dist) && dist > w.cell/2 {
					steps := int(dist / (w.cell / 2))
					if steps > maxWalkSteps {
						steps = maxWalkSteps
					}
					for s := 1; s < steps; s++ {
						f := float64(s) / float64(steps)
						emitXY(px+f*dx, py+f*dy)
					}
				}
			}
			emitXY(p.X, p.Y)
		}
		w.prev = p
		w.havePrev = true
	}
}

// maxWalkSteps caps the per-segment walk so one absurdly long segment
// (fuzzing, corrupt input) cannot make tokenization unbounded; beyond
// the cap the walk subsamples the segment uniformly instead.
const maxWalkSteps = 1 << 12

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// shingles hashes the ordered token sequence into its k-gram set
// (sorted, distinct). Sequences shorter than the shingle length
// contribute one whole-sequence shingle, so every tokenizable
// trajectory has a non-empty set; an empty token sequence yields nil.
func (ix *Index) shingles(toks []uint64) []uint64 {
	if len(toks) == 0 {
		return nil
	}
	k := ix.p.Shingle
	var out []uint64
	if len(toks) < k {
		out = append(out, gram(toks))
	} else {
		for i := 0; i+k <= len(toks); i++ {
			out = append(out, gram(toks[i:i+k]))
		}
	}
	return dedupe(out)
}

// gram hashes one ordered token run into a single shingle value; the
// k-gram sets and the short-sequence whole-run fallback both build on
// it, as does Stream's incremental fold.
func gram(ts []uint64) uint64 {
	h := uint64(0x5851f42d4c957f2d)
	for _, t := range ts {
		h = mix2(h, t)
	}
	return h
}

// signature computes the MinHash signature of a shingle set: one
// minimum per seeded hash function. A nil shingle set yields a nil
// signature (the member lands in no band and is reachable only through
// the full-scan floor).
func (ix *Index) signature(shingles []uint64) []uint64 {
	if len(shingles) == 0 {
		return nil
	}
	sig := make([]uint64, len(ix.seeds))
	for i, seed := range ix.seeds {
		min := uint64(math.MaxUint64)
		for _, s := range shingles {
			if h := mix2(seed, s); h < min {
				min = h
			}
		}
		sig[i] = min
	}
	return sig
}

// bandKeys folds the signature into one bucket key per band. Keys mix
// in the band index, so identical row values in different bands cannot
// collide into one bucket.
func (ix *Index) bandKeys(sig []uint64) []uint64 {
	if len(sig) == 0 {
		return nil
	}
	keys := make([]uint64, ix.p.Bands)
	for b := 0; b < ix.p.Bands; b++ {
		h := splitmix64(uint64(b) + 0x9e3779b97f4a7c15)
		for r := 0; r < ix.rows; r++ {
			h = mix2(h, sig[b*ix.rows+r])
		}
		keys[b] = h
	}
	return keys
}
