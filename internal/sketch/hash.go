package sketch

import (
	"math"

	"trajmatch/internal/traj"
)

// splitmix64 is the same finalizer the shard router uses: a cheap,
// well-mixed 64-bit permutation. All sketch hashing composes it.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mix2 combines two words through the finalizer; used for token,
// shingle and band-key construction.
func mix2(a, b uint64) uint64 { return splitmix64(a ^ splitmix64(b)) }

// cellCoordLimit clamps quantized cell coordinates. The corpora live
// within a few thousand cells of the origin; the clamp only matters for
// adversarial inputs (fuzzing feeds near-±MaxFloat64 coordinates, whose
// quotient overflows int64), where collapsing everything beyond ±2³¹
// onto the boundary cell keeps tokenization total and deterministic.
const cellCoordLimit = int64(1) << 31

// quantize maps one coordinate onto its cell index, clamped.
func quantize(v, cell float64) int64 {
	f := math.Floor(v / cell)
	switch {
	case math.IsNaN(f):
		return 0
	case f >= float64(cellCoordLimit):
		return cellCoordLimit
	case f <= -float64(cellCoordLimit):
		return -cellCoordLimit
	}
	return int64(f)
}

// cellToken hashes a cell coordinate pair into one 64-bit token.
func cellToken(ix, iy int64) uint64 {
	return mix2(uint64(ix), uint64(iy))
}

// coarseFactor is the pitch multiple of the second, coarser cell level.
// Fine cells drive the shingles, signatures and primary overlap
// ranking; coarse cells (coarseFactor× the pitch) exist so members that
// are spatially near a query without sharing a single fine cell — the
// parallel-street case — still rank above the arbitrary rest when the
// candidate budget has room left.
const coarseFactor = 8

// tokens converts tr into its ordered cell-token sequence at the
// params' (fine) pitch.
func (ix *Index) tokens(tr *traj.Trajectory) []uint64 {
	return ix.tokensAt(tr, ix.p.CellSize)
}

// tokensAt converts tr into its ordered cell-token sequence at the
// given pitch. It walks each segment's interpolated movement at
// half-cell steps — emitting every cell the movement passes through,
// not just the sampled points — and collapses consecutive duplicates.
// Two trajectories along the same path at different sampling rates
// therefore emit nearly identical sequences, which is what makes the
// fingerprint usable under the paper's inconsistent-sampling premise.
// Non-finite points are skipped (indexed trajectories never carry them;
// fuzzing does).
func (ix *Index) tokensAt(tr *traj.Trajectory, cell float64) []uint64 {
	var out []uint64
	var lastX, lastY int64
	have := false
	emit := func(x, y float64) {
		cx, cy := quantize(x, cell), quantize(y, cell)
		if have && cx == lastX && cy == lastY {
			return
		}
		lastX, lastY = cx, cy
		have = true
		out = append(out, cellToken(cx, cy))
	}
	pts := tr.Points
	for i, p := range pts {
		if !finite(p.X) || !finite(p.Y) {
			continue
		}
		if i > 0 && finite(pts[i-1].X) && finite(pts[i-1].Y) {
			// Walk the segment interior at half-cell steps so every
			// traversed cell is emitted regardless of sampling rate.
			px, py := pts[i-1].X, pts[i-1].Y
			dx, dy := p.X-px, p.Y-py
			dist := math.Hypot(dx, dy)
			if finite(dist) && dist > cell/2 {
				steps := int(dist / (cell / 2))
				if steps > maxWalkSteps {
					steps = maxWalkSteps
				}
				for s := 1; s < steps; s++ {
					f := float64(s) / float64(steps)
					emit(px+f*dx, py+f*dy)
				}
			}
		}
		emit(p.X, p.Y)
	}
	return out
}

// maxWalkSteps caps the per-segment walk so one absurdly long segment
// (fuzzing, corrupt input) cannot make tokenization unbounded; beyond
// the cap the walk subsamples the segment uniformly instead.
const maxWalkSteps = 1 << 12

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// shingles hashes the ordered token sequence into its k-gram set
// (sorted, distinct). Sequences shorter than the shingle length
// contribute one whole-sequence shingle, so every tokenizable
// trajectory has a non-empty set; an empty token sequence yields nil.
func (ix *Index) shingles(toks []uint64) []uint64 {
	if len(toks) == 0 {
		return nil
	}
	k := ix.p.Shingle
	var out []uint64
	gram := func(ts []uint64) uint64 {
		h := uint64(0x5851f42d4c957f2d)
		for _, t := range ts {
			h = mix2(h, t)
		}
		return h
	}
	if len(toks) < k {
		out = append(out, gram(toks))
	} else {
		for i := 0; i+k <= len(toks); i++ {
			out = append(out, gram(toks[i:i+k]))
		}
	}
	return dedupe(out)
}

// signature computes the MinHash signature of a shingle set: one
// minimum per seeded hash function. A nil shingle set yields a nil
// signature (the member lands in no band and is reachable only through
// the full-scan floor).
func (ix *Index) signature(shingles []uint64) []uint64 {
	if len(shingles) == 0 {
		return nil
	}
	sig := make([]uint64, len(ix.seeds))
	for i, seed := range ix.seeds {
		min := uint64(math.MaxUint64)
		for _, s := range shingles {
			if h := mix2(seed, s); h < min {
				min = h
			}
		}
		sig[i] = min
	}
	return sig
}

// bandKeys folds the signature into one bucket key per band. Keys mix
// in the band index, so identical row values in different bands cannot
// collide into one bucket.
func (ix *Index) bandKeys(sig []uint64) []uint64 {
	if len(sig) == 0 {
		return nil
	}
	keys := make([]uint64, ix.p.Bands)
	for b := 0; b < ix.p.Bands; b++ {
		h := splitmix64(uint64(b) + 0x9e3779b97f4a7c15)
		for r := 0; r < ix.rows; r++ {
			h = mix2(h, sig[b*ix.rows+r])
		}
		keys[b] = h
	}
	return keys
}
