// Package metrics is the single entry point for turning metric names
// into buildable backend specs — shared by the serving stack (trajserve
// -metrics edwp,dtw,edr) and the offline eval harness, so the index a
// figure benchmarks is byte-for-byte the index the server answers with.
//
// Adding a metric is a three-step plug-in, no engine changes: implement
// backend.Backend over your index, backend.Register its name from init,
// and add a case to Spec here (fixing any whole-database parameters in
// the spec's closure before sharding). The optional capabilities —
// backend.SubSearcher, backend.Mutable, backend.CandidateSearcher (the
// sketch-prefilter verification hook) — are interface opt-ins on the
// index type; the engine discovers them by assertion, so a new metric
// gains sub-trajectory search, mutation or prefiltered k-NN the moment
// it implements the interface.
package metrics

import (
	"fmt"
	"strings"

	"trajmatch/internal/backend"
	"trajmatch/internal/dtwindex"
	"trajmatch/internal/edrindex"
	"trajmatch/internal/traj"
	"trajmatch/internal/trajtree"
)

// Config carries the per-metric build parameters a deployment fixes
// once for the whole corpus.
type Config struct {
	// Tree configures the EDwP TrajTree build.
	Tree trajtree.Options
	// EDREps is the EDR matching threshold ε; 0 derives it from the
	// database (edrindex.DefaultEps — half the median segment length).
	EDREps float64
}

// Spec resolves one registered metric name to its buildable spec. The
// db is the full corpus the engine will shard: whole-database parameters
// (EDR's ε) are derived from it here, before any partitioning, so every
// shard agrees on them.
func Spec(name string, db []*traj.Trajectory, cfg Config) (backend.Spec, error) {
	switch name {
	case trajtree.MetricName:
		return trajtree.BackendSpec(cfg.Tree), nil
	case dtwindex.MetricName:
		return dtwindex.BackendSpec(), nil
	case edrindex.MetricName:
		eps := cfg.EDREps
		if eps <= 0 {
			eps = edrindex.DefaultEps(db)
		}
		return edrindex.BackendSpec(eps), nil
	default:
		return backend.Spec{}, fmt.Errorf("unknown metric %q (registered: %s)",
			name, strings.Join(backend.Names(), ", "))
	}
}

// Specs resolves a list of metric names in order (the first becomes the
// engine's default metric).
func Specs(names []string, db []*traj.Trajectory, cfg Config) ([]backend.Spec, error) {
	specs := make([]backend.Spec, 0, len(names))
	for _, n := range names {
		s, err := Spec(n, db, cfg)
		if err != nil {
			return nil, err
		}
		specs = append(specs, s)
	}
	return specs, nil
}
