package edrindex

import (
	"math"
	"math/rand"
	"testing"

	"trajmatch/internal/synth"
	"trajmatch/internal/traj"
)

func smallDB(n int) []*traj.Trajectory {
	cfg := synth.DefaultTaxi(n)
	cfg.CitySize = 3000
	return synth.Taxi(cfg)
}

func TestKNNMatchesBruteForce(t *testing.T) {
	db := smallDB(80)
	ix := New(db, 60)
	rng := rand.New(rand.NewSource(101))
	for it := 0; it < 10; it++ {
		q := db[rng.Intn(len(db))]
		for _, k := range []int{1, 5, 10} {
			got, _ := ix.KNN(q, k)
			want := ix.KNNBrute(q, k)
			if len(got) != len(want) {
				t.Fatalf("k=%d: %d results, want %d", k, len(got), len(want))
			}
			for i := range got {
				if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
					t.Fatalf("k=%d rank %d: %v vs %v", k, i, got[i].Dist, want[i].Dist)
				}
			}
		}
	}
}

func TestLowerBoundAdmissible(t *testing.T) {
	db := smallDB(40)
	ix := New(db, 60)
	rng := rand.New(rand.NewSource(102))
	for it := 0; it < 20; it++ {
		q := db[rng.Intn(len(db))]
		qGrid := gridOf(q, ix.eps)
		for i := range db {
			lb := ix.lowerBound(q, qGrid, i)
			d := ix.edr.Dist(q, db[i])
			if lb > d+1e-9 {
				t.Fatalf("EDR lower bound %v exceeds distance %v", lb, d)
			}
		}
	}
}

func TestPruningHappens(t *testing.T) {
	db := smallDB(150)
	ix := New(db, 60)
	q := db[3]
	_, st := ix.KNN(q, 5)
	if st.NodesPruned == 0 {
		t.Error("no candidates pruned; bounds ineffective")
	}
	if st.DistanceCalls >= len(db) {
		t.Errorf("all %d candidates fully computed", st.DistanceCalls)
	}
}

// TestTieOrderingDeterministic is the regression test for the
// nondeterministic tie ordering: EDR's integer distances tie constantly,
// and with duplicated trajectories the ties are exact — membership and
// order must follow (distance, ID), matching the brute scan IDs exactly.
func TestTieOrderingDeterministic(t *testing.T) {
	base := smallDB(30)
	var db []*traj.Trajectory
	for i, tr := range base {
		db = append(db, tr)
		dup := tr.Clone()
		dup.ID = 1000 + i
		db = append(db, dup)
	}
	ix := New(db, 60)
	for it := 0; it < 10; it++ {
		q := base[it*3%len(base)]
		for _, k := range []int{1, 3, 7} {
			got, _ := ix.KNN(q, k)
			want := ix.KNNBrute(q, k)
			if len(got) != len(want) {
				t.Fatalf("k=%d: %d results, want %d", k, len(got), len(want))
			}
			for i := range got {
				if got[i].Traj.ID != want[i].Traj.ID || got[i].Dist != want[i].Dist {
					t.Fatalf("k=%d rank %d: (%d, %v) vs brute (%d, %v)",
						k, i, got[i].Traj.ID, got[i].Dist, want[i].Traj.ID, want[i].Dist)
				}
			}
			for i := 1; i < len(got); i++ {
				prev, cur := got[i-1], got[i]
				if cur.Dist < prev.Dist || (cur.Dist == prev.Dist && cur.Traj.ID <= prev.Traj.ID) {
					t.Fatalf("k=%d: results not in (distance, ID) order at rank %d", k, i)
				}
			}
		}
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	ix := New(nil, 10)
	if res, _ := ix.KNN(traj.FromXY(0, 0, 0, 1, 1), 5); len(res) != 0 {
		t.Error("kNN over empty index returned results")
	}
	db := smallDB(5)
	ix = New(db, 10)
	if res, _ := ix.KNN(db[0], 0); len(res) != 0 {
		t.Error("k=0 returned results")
	}
	res, _ := ix.KNN(db[0], 100)
	if len(res) != 5 {
		t.Errorf("k>n returned %d results", len(res))
	}
}
