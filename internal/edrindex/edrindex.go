// Package edrindex implements an indexed k-NN evaluator for the EDR
// distance, the competitor labelled "EDR" in Figs. 5(j) and 6(a). It
// follows the pruning framework of the original EDR paper (Chen, Özsu,
// Oria; SIGMOD 2005) with two admissible lower bounds — the sequence-length
// difference and a grid-histogram mismatch count — and an early-abandoning
// dynamic program ordered by those bounds (see DESIGN.md §3 for the
// substitution note).
package edrindex

import (
	"math"
	"sort"

	"trajmatch/internal/baseline"
	"trajmatch/internal/pqueue"
	"trajmatch/internal/traj"
)

// cellKey addresses an ε-grid cell.
type cellKey struct{ cx, cy int }

// Index answers EDR k-NN queries over a fixed database.
type Index struct {
	eps   float64
	db    []*traj.Trajectory
	grids []map[cellKey]int // per-trajectory ε-grid histograms
	edr   baseline.EDR
}

// New builds the index: one ε-grid histogram per trajectory.
func New(db []*traj.Trajectory, eps float64) *Index {
	ix := &Index{eps: eps, db: db, edr: baseline.EDR{Eps: eps}}
	ix.grids = make([]map[cellKey]int, len(db))
	for i, t := range db {
		ix.grids[i] = gridOf(t, eps)
	}
	return ix
}

func gridOf(t *traj.Trajectory, eps float64) map[cellKey]int {
	g := make(map[cellKey]int, t.NumPoints())
	for _, p := range t.Points {
		g[cellKey{int(math.Floor(p.X / eps)), int(math.Floor(p.Y / eps))}]++
	}
	return g
}

// lowerBound returns an admissible lower bound on EDR(q, db[i]).
func (ix *Index) lowerBound(q *traj.Trajectory, qGrid map[cellKey]int, i int) float64 {
	n, m := q.NumPoints(), ix.db[i].NumPoints()
	lenDiff := n - m
	if lenDiff < 0 {
		lenDiff = -lenDiff
	}
	// Histogram bound: a query point can only match a database point lying
	// in its 3×3 cell neighbourhood; every query point without any such
	// candidate forces at least one edit, and those edits are distinct.
	unmatched := 0
	tg := ix.grids[i]
	for c, cnt := range qGrid {
		found := false
		for dx := -1; dx <= 1 && !found; dx++ {
			for dy := -1; dy <= 1; dy++ {
				if tg[cellKey{c.cx + dx, c.cy + dy}] > 0 {
					found = true
					break
				}
			}
		}
		if !found {
			unmatched += cnt
		}
	}
	if unmatched > lenDiff {
		return float64(unmatched)
	}
	return float64(lenDiff)
}

// Result is one k-NN answer under EDR.
type Result struct {
	Traj *traj.Trajectory
	Dist float64
}

// Stats reports how much work a query did.
type Stats struct {
	// FullComputations counts candidates whose EDR was evaluated (possibly
	// abandoned early); Pruned counts candidates rejected by bounds alone.
	FullComputations, Pruned int
}

// KNN returns the exact EDR k-nearest neighbours of q, sorted ascending.
func (ix *Index) KNN(q *traj.Trajectory, k int) ([]Result, Stats) {
	var st Stats
	if k <= 0 || len(ix.db) == 0 {
		return nil, st
	}
	qGrid := gridOf(q, ix.eps)
	type cand struct {
		i  int
		lb float64
	}
	cands := make([]cand, len(ix.db))
	for i := range ix.db {
		cands[i] = cand{i, ix.lowerBound(q, qGrid, i)}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].lb < cands[b].lb })

	ans := pqueue.NewTopK[*traj.Trajectory](k)
	for _, c := range cands {
		if worst, full := ans.Worst(); full && c.lb >= worst {
			st.Pruned++
			continue
		}
		bound := -1
		if worst, full := ans.Worst(); full {
			bound = int(worst)
		}
		st.FullComputations++
		d := ix.edr.DistEarlyAbandon(q, ix.db[c.i], bound)
		ans.Offer(ix.db[c.i], d)
	}
	items := ans.Items()
	out := make([]Result, len(items))
	for i, it := range items {
		out[i] = Result{Traj: it.Value, Dist: it.Priority}
	}
	return out, st
}

// KNNBrute is the unpruned scan, used to verify exactness.
func (ix *Index) KNNBrute(q *traj.Trajectory, k int) []Result {
	ans := pqueue.NewTopK[*traj.Trajectory](k)
	for _, t := range ix.db {
		ans.Offer(t, ix.edr.Dist(q, t))
	}
	items := ans.Items()
	out := make([]Result, len(items))
	for i, it := range items {
		out[i] = Result{Traj: it.Value, Dist: it.Priority}
	}
	return out
}
