// Package edrindex implements an indexed k-NN evaluator for the EDR
// distance, the competitor labelled "EDR" in Figs. 5(j) and 6(a). It
// follows the pruning framework of the original EDR paper (Chen, Özsu,
// Oria; SIGMOD 2005) with two admissible lower bounds — the sequence-length
// difference and a grid-histogram mismatch count — and an early-abandoning
// dynamic program ordered by those bounds (see DESIGN.md §3 for the
// substitution note).
//
// The Index implements backend.Backend (SearchKNN/SearchRange under a
// shared bound and a cancellation Ctl), so the sharded engine of
// internal/server serves EDR through the same /v1 API as EDwP. It is a
// static index: no mutation, no persistence — the engine degrades those
// operations to not_implemented.
package edrindex

import (
	"math"

	"trajmatch/internal/backend"
	"trajmatch/internal/baseline"
	"trajmatch/internal/traj"
)

// MetricName is the registered backend identifier of this index.
const MetricName = "edr"

func init() { backend.Register(MetricName) }

var (
	_ backend.Backend           = (*Index)(nil)
	_ backend.CandidateSearcher = (*Index)(nil)
	_ backend.Distancer         = (*Index)(nil)
)

// DistanceBetween evaluates bounded EDR between two trajectories at the
// index's ε — the live-track scan's entry into the same early-abandon
// kernel the indexed search uses.
func (ix *Index) DistanceBetween(q, t *traj.Trajectory, limit float64, ctl *backend.Ctl) (float64, bool) {
	return ix.edr.DistEarlyAbandonCancel(q, t, intLimit(limit), ctl.CancelFlag())
}

// cellKey addresses an ε-grid cell.
type cellKey struct{ cx, cy int }

// Index answers EDR k-NN queries over a fixed database.
type Index struct {
	eps   float64
	db    []*traj.Trajectory
	grids []map[cellKey]int // per-trajectory ε-grid histograms
	byID  map[int]*traj.Trajectory
	pos   map[int]int // ID → db position, for candidate-restricted search
	edr   baseline.EDR
}

// New builds the index: one ε-grid histogram per trajectory.
func New(db []*traj.Trajectory, eps float64) *Index {
	ix := &Index{eps: eps, db: db, edr: baseline.EDR{Eps: eps},
		byID: make(map[int]*traj.Trajectory, len(db)), pos: make(map[int]int, len(db))}
	ix.grids = make([]map[cellKey]int, len(db))
	for i, t := range db {
		ix.grids[i] = gridOf(t, eps)
		ix.byID[t.ID] = t
		ix.pos[t.ID] = i
	}
	return ix
}

// DefaultEps derives the matching threshold ε from the database, half
// the median segment length — the scaling the eval harness uses for
// every threshold-based metric. Returns 1 for a degenerate database.
func DefaultEps(db []*traj.Trajectory) float64 {
	if m := traj.MedianSegmentLength(db); m > 0 {
		return m * 0.5
	}
	return 1
}

// BackendSpec returns the buildable backend spec for EDR at the given ε.
// The ε must be fixed from whole-database statistics (DefaultEps) before
// sharding, so every shard prices edits identically.
func BackendSpec(eps float64) backend.Spec {
	return backend.Spec{
		Name: MetricName,
		Build: func(db []*traj.Trajectory) (backend.Backend, error) {
			return New(db, eps), nil
		},
	}
}

// Size returns the number of indexed trajectories.
func (ix *Index) Size() int { return len(ix.db) }

// Lookup returns the indexed trajectory with the given ID, or nil.
func (ix *Index) Lookup(id int) *traj.Trajectory { return ix.byID[id] }

func gridOf(t *traj.Trajectory, eps float64) map[cellKey]int {
	g := make(map[cellKey]int, t.NumPoints())
	for _, p := range t.Points {
		g[cellKey{int(math.Floor(p.X / eps)), int(math.Floor(p.Y / eps))}]++
	}
	return g
}

// lowerBound returns an admissible lower bound on EDR(q, db[i]).
func (ix *Index) lowerBound(q *traj.Trajectory, qGrid map[cellKey]int, i int) float64 {
	n, m := q.NumPoints(), ix.db[i].NumPoints()
	lenDiff := n - m
	if lenDiff < 0 {
		lenDiff = -lenDiff
	}
	// Histogram bound: a query point can only match a database point lying
	// in its 3×3 cell neighbourhood; every query point without any such
	// candidate forces at least one edit, and those edits are distinct.
	unmatched := 0
	tg := ix.grids[i]
	for c, cnt := range qGrid {
		found := false
		for dx := -1; dx <= 1 && !found; dx++ {
			for dy := -1; dy <= 1; dy++ {
				if tg[cellKey{c.cx + dx, c.cy + dy}] > 0 {
					found = true
					break
				}
			}
		}
		if !found {
			unmatched += cnt
		}
	}
	if unmatched > lenDiff {
		return float64(unmatched)
	}
	return float64(lenDiff)
}

// Result is one k-NN answer under EDR, the unified backend.Result type.
type Result = backend.Result

// Stats reports how much work a query did, the unified backend.Stats
// type: every candidate costs one LowerBoundCall, candidates rejected by
// bound alone count as NodesPruned, evaluated ones as DistanceCalls, and
// evaluations cut short by the row-minimum test as EarlyAbandons.
type Stats = backend.Stats

// orderCands computes every lower bound and hands back the candidates
// in backend.SortCands order. The bound pass polls ctl periodically so
// even the pre-scan setup stops promptly under a fired deadline.
func (ix *Index) orderCands(q *traj.Trajectory, st *Stats, ctl *backend.Ctl) ([]backend.Cand, error) {
	qGrid := gridOf(q, ix.eps)
	cands := make([]backend.Cand, len(ix.db))
	for i := range ix.db {
		if i%64 == 0 && ctl.Cancelled() {
			return nil, ctl.Err()
		}
		st.LowerBoundCalls++
		cands[i] = backend.Cand{I: i, ID: ix.db[i].ID, LB: ix.lowerBound(q, qGrid, i)}
	}
	backend.SortCands(cands)
	return cands, nil
}

// intLimit converts a float abandon limit into the integer bound the EDR
// dynamic program tests strictly: rowMin > limit ⟺ rowMin > ⌊limit⌋ for
// the integer-valued rowMin. -1 (disabled) for an infinite limit.
func intLimit(limit float64) int {
	if math.IsInf(limit, 1) {
		return -1
	}
	return int(math.Floor(limit))
}

// SearchKNN returns the exact EDR k-nearest neighbours of q sorted by
// (distance, ID) — deterministic membership under exact ties. bound may
// be nil or shared across concurrent searches of disjoint shards; ctl
// (may be nil) injects cancellation — polled between candidates by the
// scan and per DP row inside the kernel — and the query-wide evaluation
// budget.
func (ix *Index) SearchKNN(q *traj.Trajectory, k int, bound *backend.SharedBound, ctl *backend.Ctl) ([]Result, Stats, bool, error) {
	var st Stats
	if k <= 0 || len(ix.db) == 0 {
		return nil, st, false, ctl.Err()
	}
	cands, err := ix.orderCands(q, &st, ctl)
	if err != nil {
		return nil, st, false, err
	}
	res, truncated, err := backend.ScanKNN(cands, k, bound, ctl, &st,
		func(i int) *traj.Trajectory { return ix.db[i] },
		func(i int, limit float64) (float64, bool) {
			return ix.edr.DistEarlyAbandonCancel(q, ix.db[i], intLimit(limit), ctl.CancelFlag())
		})
	return res, st, truncated, err
}

// SearchKNNIn is the backend.CandidateSearcher capability: SearchKNN
// restricted to the prefilter's candidate IDs. The candidate subset is
// ordered by the same admissible bounds as the full scan, so pruning and
// early abandonment carry over unchanged. IDs not present in the index
// are skipped.
func (ix *Index) SearchKNNIn(q *traj.Trajectory, ids []int, k int, bound *backend.SharedBound, ctl *backend.Ctl) ([]Result, Stats, bool, error) {
	var st Stats
	if k <= 0 || len(ids) == 0 || len(ix.db) == 0 {
		return nil, st, false, ctl.Err()
	}
	qGrid := gridOf(q, ix.eps)
	cands := make([]backend.Cand, 0, len(ids))
	for n, id := range ids {
		if n%64 == 0 && ctl.Cancelled() {
			return nil, st, false, ctl.Err()
		}
		i, ok := ix.pos[id]
		if !ok {
			continue
		}
		st.LowerBoundCalls++
		cands = append(cands, backend.Cand{I: i, ID: id, LB: ix.lowerBound(q, qGrid, i)})
	}
	backend.SortCands(cands)
	res, truncated, err := backend.ScanKNN(cands, k, bound, ctl, &st,
		func(i int) *traj.Trajectory { return ix.db[i] },
		func(i int, limit float64) (float64, bool) {
			return ix.edr.DistEarlyAbandonCancel(q, ix.db[i], intLimit(limit), ctl.CancelFlag())
		})
	return res, st, truncated, err
}

// SearchRange returns every indexed trajectory with EDR(q, t) ≤ radius,
// sorted by (distance, ID).
func (ix *Index) SearchRange(q *traj.Trajectory, radius float64, ctl *backend.Ctl) ([]Result, Stats, bool, error) {
	var st Stats
	if len(ix.db) == 0 {
		return nil, st, false, ctl.Err()
	}
	cands, err := ix.orderCands(q, &st, ctl)
	if err != nil {
		return nil, st, false, err
	}
	res, truncated, err := backend.ScanRange(cands, radius, ctl, &st,
		func(i int) *traj.Trajectory { return ix.db[i] },
		func(i int, limit float64) (float64, bool) {
			return ix.edr.DistEarlyAbandonCancel(q, ix.db[i], intLimit(limit), ctl.CancelFlag())
		})
	return res, st, truncated, err
}

// KNN returns the exact EDR k-nearest neighbours of q, sorted by
// (distance, ID). It is SearchKNN with no shared bound and no Ctl — the
// standalone entry point the eval harness scans with.
func (ix *Index) KNN(q *traj.Trajectory, k int) ([]Result, Stats) {
	res, st, _, _ := ix.SearchKNN(q, k, nil, nil)
	return res, st
}

// KNNBrute is the unpruned scan, used to verify exactness, with the same
// (distance, ID) ordering as KNN.
func (ix *Index) KNNBrute(q *traj.Trajectory, k int) []Result {
	ans := backend.NewKBest(k)
	for _, t := range ix.db {
		ans.Offer(t, ix.edr.Dist(q, t))
	}
	return ans.Results()
}
