// Package par provides the bounded worker-pool fan-out shared by the
// evaluation harness and the server engine. It exists so the pattern has
// one implementation instead of a per-package copy.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// For runs f(i) for every i in [0, n) across up to workers goroutines and
// returns when all calls have finished. workers <= 0 means
// runtime.GOMAXPROCS(0); a single worker (or n <= 1) runs inline with no
// goroutines. Indices are handed out dynamically, so uneven per-item costs
// balance across the pool. f must be safe for concurrent invocation.
func For(workers, n int, f func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// ForErr is For with error collection: every f(i) still runs (no
// cancellation — items are independent), and the error for the smallest
// failing index is returned so the outcome is deterministic regardless
// of scheduling. The sharded engine uses it to build and load index
// shards in parallel.
func ForErr(workers, n int, f func(i int) error) error {
	errs := make([]error, n)
	For(workers, n, func(i int) {
		errs[i] = f(i)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
