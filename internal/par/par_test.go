package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 7, 100} {
		for _, n := range []int{0, 1, 5, 64} {
			counts := make([]atomic.Int32, n)
			For(workers, n, func(i int) { counts[i].Add(1) })
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Errorf("workers=%d n=%d: index %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}
