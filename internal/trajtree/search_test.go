// Deprecated-API regression coverage:
//
//lint:file-ignore SA1019 compares the new Search API against the deprecated wrappers on purpose.
package trajtree

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"

	"trajmatch/internal/core"
	"trajmatch/internal/traj"
)

// A nil Ctl must leave the new Search* entry points byte-identical to
// the legacy methods they replace.
func TestSearchNilCtlMatchesLegacy(t *testing.T) {
	db := testDB(rand.New(rand.NewSource(3)), 150)
	tree, err := New(db, Options{Seed: 1, LeafSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	for it := 0; it < 12; it++ {
		q := db[(it*13)%len(db)].Clone()
		q.ID = 700_000 + it
		k := 1 + it%9

		res, st, trunc, serr := tree.SearchKNN(q, k, nil, nil)
		want, wst := tree.KNN(q, k)
		if serr != nil || trunc {
			t.Fatalf("it=%d: SearchKNN(nil ctl) reported trunc=%v err=%v", it, trunc, serr)
		}
		sameResults(t, "SearchKNN", res, want)
		if st != wst {
			t.Fatalf("it=%d: stats diverge: %+v != %+v", it, st, wst)
		}

		radius := []float64{5, 25, 90}[it%3]
		rres, rst, rtrunc, rerr := tree.SearchRange(q, radius, nil)
		rwant, rwst := tree.RangeSearch(q, radius)
		if rerr != nil || rtrunc {
			t.Fatalf("it=%d: SearchRange(nil ctl) reported trunc=%v err=%v", it, rtrunc, rerr)
		}
		sameResults(t, "SearchRange", rres, rwant)
		if rst != rwst {
			t.Fatalf("it=%d: range stats diverge: %+v != %+v", it, rst, rwst)
		}
	}
}

// SearchSub must agree with a brute-force EDwPsub scan.
func TestSearchSubMatchesBruteScan(t *testing.T) {
	db := testDB(rand.New(rand.NewSource(5)), 90)
	tree, err := New(db, Options{Seed: 1, LeafSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	for it := 0; it < 8; it++ {
		full := db[(it*7)%len(db)]
		// Query with a fragment of a database trajectory so sub-matching
		// has something real to find.
		n := len(full.Points)
		lo, hi := n/4, n/4+max(2, n/3)
		if hi > n {
			hi = n
		}
		q := traj.New(800_000+it, append([]traj.Point(nil), full.Points[lo:hi]...))
		k := 1 + it%5

		type pair struct {
			id int
			d  float64
		}
		ref := make([]pair, 0, len(db))
		for _, tr := range db {
			ref = append(ref, pair{tr.ID, core.SubDistance(q, tr)})
		}
		sort.Slice(ref, func(i, j int) bool {
			if ref[i].d != ref[j].d {
				return ref[i].d < ref[j].d
			}
			return ref[i].id < ref[j].id
		})

		got, st, trunc, err := tree.SearchSub(q, k, nil, nil)
		if err != nil || trunc {
			t.Fatalf("it=%d: SearchSub trunc=%v err=%v", it, trunc, err)
		}
		if len(got) != k {
			t.Fatalf("it=%d: %d results, want %d", it, len(got), k)
		}
		if st.DistanceCalls != len(db) {
			t.Fatalf("it=%d: %d distance calls, want %d (scan)", it, st.DistanceCalls, len(db))
		}
		for i, r := range got {
			if diff := math.Abs(r.Dist - ref[i].d); diff > 1e-9 {
				t.Fatalf("it=%d rank %d: dist %v, brute %v (T%d vs T%d)",
					it, i, r.Dist, ref[i].d, r.Traj.ID, ref[i].id)
			}
		}
	}
}

// A cancelled context surfaces as the context's error from every search
// path, pre-fired or fired mid-search.
func TestSearchCancelledContext(t *testing.T) {
	db := testDB(rand.New(rand.NewSource(9)), 120)
	tree, err := New(db, Options{Seed: 1, LeafSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	q := db[11].Clone()
	q.ID = 900_001

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ctl := NewCtl(ctx, 0)
	defer ctl.Release()

	if _, _, _, err := tree.SearchKNN(q, 5, nil, ctl); !errors.Is(err, context.Canceled) {
		t.Fatalf("SearchKNN on cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, _, _, err := tree.SearchRange(q, 50, ctl); !errors.Is(err, context.Canceled) {
		t.Fatalf("SearchRange on cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, _, _, err := tree.SearchSub(q, 5, nil, ctl); !errors.Is(err, context.Canceled) {
		t.Fatalf("SearchSub on cancelled ctx: err = %v, want context.Canceled", err)
	}
}

// An exhausted evaluation budget truncates the search instead of
// erroring, and the budget is respected exactly.
func TestSearchBudgetTruncates(t *testing.T) {
	db := testDB(rand.New(rand.NewSource(13)), 140)
	tree, err := New(db, Options{Seed: 1, LeafSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	q := db[17].Clone()
	q.ID = 900_002

	_, full, _, _ := tree.SearchKNN(q, 10, nil, nil)
	budget := full.DistanceCalls / 2
	if budget == 0 {
		t.Fatalf("full search made no distance calls")
	}

	ctl := NewCtl(context.Background(), budget)
	defer ctl.Release()
	res, st, trunc, err := tree.SearchKNN(q, 10, nil, ctl)
	if err != nil {
		t.Fatalf("budgeted search errored: %v", err)
	}
	if !trunc {
		t.Fatalf("budget %d of %d evals did not truncate", budget, full.DistanceCalls)
	}
	if st.DistanceCalls > budget {
		t.Fatalf("made %d distance calls, budget %d", st.DistanceCalls, budget)
	}
	if len(res) == 0 {
		t.Fatalf("truncated search returned no best-effort results")
	}

	// A budget covering the full search changes nothing and reports no
	// truncation.
	ctl2 := NewCtl(context.Background(), full.DistanceCalls)
	defer ctl2.Release()
	res2, st2, trunc2, err := tree.SearchKNN(q, 10, nil, ctl2)
	if err != nil || trunc2 {
		t.Fatalf("exact-budget search trunc=%v err=%v", trunc2, err)
	}
	want, _ := tree.KNN(q, 10)
	sameResults(t, "exact-budget", res2, want)
	if st2.DistanceCalls != full.DistanceCalls {
		t.Fatalf("exact-budget made %d calls, want %d", st2.DistanceCalls, full.DistanceCalls)
	}
}
