package trajtree

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"trajmatch/internal/arena"
	"trajmatch/internal/geom"
	"trajmatch/internal/tbox"
	"trajmatch/internal/traj"
)

// Arena snapshot: the tree flattened next to its shard's slabs in the
// arena package's mmap-able format (arena/file.go). Where the gob
// stream (persist.go) decodes every sample on load, this path aliases
// the point slabs straight out of a verified mapping and rebuilds only
// the node structures — an O(members + nodes) warm boot.
//
// Per-node metadata record (arena.NMetaStride int64s, in nmeta order):
//
//	 0 boxOff     offset into nboxes, in 5-float box units
//	 1 boxCount
//	 2 seqCount   tbox.Seq insert count
//	 3 childOff   offset into children
//	 4 childCount
//	 5 memberOff  offset into members
//	 6 memberCount
//	 7 vpOff      offset into vps, in 2-float point units
//	 8 vpCount
//	 9 descOff    offset into dvals, in float units
//	10 descRows   row count; -1 encodes a nil descriptor table
//	11 maxLenBits math.Float64bits of the node's maxLen
//
// Descriptor rows have uniform stride vpCount (vantage.Descriptor
// always returns one value per vantage point), so the rows need no
// per-row offset table. Members are arena indices; trajectories
// inserted since the last rebuild (the overlay) have no arena entry and
// are stored in the overlay sections, referenced as -(overlay index)-1.

// arenaExtra is the tree-level metadata stored in the snapshot's meta
// header.
type arenaExtra struct {
	Version int     `json:"version"`
	Options Options `json:"options"`
	Size    int     `json:"size"`
	Root    int64   `json:"root"` // node index; -1 when empty
}

// SaveArena writes the tree in the arena snapshot format. It is an
// alternative encoding of exactly the state Save writes: a tree loaded
// from either stream answers every query identically.
func (t *Tree) SaveArena(w io.Writer) error {
	extra := arenaExtra{Version: 1, Options: t.opt, Size: t.size, Root: -1}
	var ts arena.TreeSection
	if t.root != nil {
		// Members without an arena entry (pure-Insert trees and the
		// overlay) get their samples serialised inline.
		overlayIdx := make(map[int]int)
		ts.OOffs = append(ts.OOffs, 0)
		for _, m := range t.root.members {
			if t.ar != nil {
				if _, ok := t.ar.Lookup(m.ID); ok {
					continue
				}
			}
			overlayIdx[m.ID] = len(ts.OIDs)
			ts.OIDs = append(ts.OIDs, int64(m.ID))
			ts.OLabels = append(ts.OLabels, int64(m.Label))
			for _, p := range m.Points {
				ts.OPts = append(ts.OPts, p.X, p.Y, p.T)
			}
			ts.OOffs = append(ts.OOffs, int64(len(ts.OPts)/3))
		}
		memberRef := func(m *traj.Trajectory) (int64, error) {
			if t.ar != nil {
				if ai, ok := t.ar.Lookup(m.ID); ok {
					return int64(ai), nil
				}
			}
			oi, ok := overlayIdx[m.ID]
			if !ok {
				return 0, fmt.Errorf("trajtree: save arena: member %d in a node but not under the root", m.ID)
			}
			return -int64(oi) - 1, nil
		}
		var flatten func(n *node) (int64, error)
		flatten = func(n *node) (int64, error) {
			rec := make([]int64, arena.NMetaStride)
			rec[0] = int64(len(ts.NBoxes) / 5)
			rec[1] = int64(n.seq.Len())
			rec[2] = int64(n.seq.Count())
			for i := 0; i < n.seq.Len(); i++ {
				r := n.seq.Rect(i)
				ts.NBoxes = append(ts.NBoxes, r.Min.X, r.Min.Y, r.Max.X, r.Max.Y, n.seq.MinLen(i))
			}
			rec[5] = int64(len(ts.Members))
			rec[6] = int64(len(n.members))
			for _, m := range n.members {
				ref, err := memberRef(m)
				if err != nil {
					return 0, err
				}
				ts.Members = append(ts.Members, ref)
			}
			rec[7] = int64(len(ts.VPs) / 2)
			rec[8] = int64(len(n.vps))
			for _, vp := range n.vps {
				ts.VPs = append(ts.VPs, vp.X, vp.Y)
			}
			rec[9] = int64(len(ts.DVals))
			rec[10] = -1
			if n.descs != nil {
				rec[10] = int64(len(n.descs))
				for _, row := range n.descs {
					if len(row) != len(n.vps) {
						return 0, fmt.Errorf("trajtree: save arena: descriptor row length %d != %d vantage points",
							len(row), len(n.vps))
					}
					ts.DVals = append(ts.DVals, row...)
				}
			}
			rec[11] = int64(math.Float64bits(n.maxLen))
			idx := int64(len(ts.NMeta) / arena.NMetaStride)
			ts.NMeta = append(ts.NMeta, rec...)
			rec = ts.NMeta[idx*arena.NMetaStride:]
			rec[3] = int64(len(ts.Children))
			rec[4] = int64(len(n.children))
			// Reserve the child window before recursing so each node's
			// children stay contiguous.
			base := len(ts.Children)
			ts.Children = append(ts.Children, make([]int64, len(n.children))...)
			for i, c := range n.children {
				ci, err := flatten(c)
				if err != nil {
					return 0, err
				}
				ts.Children[base+i] = ci
			}
			return idx, nil
		}
		root, err := flatten(t.root)
		if err != nil {
			return err
		}
		extra.Root = root
	}
	raw, err := json.Marshal(extra)
	if err != nil {
		return err
	}
	return arena.Encode(w, t.ar, &ts, raw)
}

// LoadArena reconstructs a tree from an arena snapshot file, mmap-ing
// the slabs when the platform allows (falling back to a heap read
// otherwise — identical result, higher boot cost). Verification failures
// of any kind wrap arena.ErrCorrupt; callers are expected to fall back
// to the gob stream. The mapping is never unmapped: member trajectories
// alias it for the life of the process.
func LoadArena(path string) (*Tree, error) {
	snap, err := arena.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trajtree: load arena: %w", err)
	}
	var extra arenaExtra
	if err := json.Unmarshal(snap.Extra, &extra); err != nil {
		return nil, fmt.Errorf("trajtree: load arena: meta: %v: %w", err, arena.ErrCorrupt)
	}
	if extra.Version != 1 {
		return nil, fmt.Errorf("trajtree: load arena: unsupported version %d: %w", extra.Version, arena.ErrCorrupt)
	}
	a, ts := snap.Arena, snap.Tree
	members := a.Members()
	// Overlay members are few (a rebuild folds them into the slabs), so
	// they are copied onto the heap rather than aliased.
	overlay := make([]*traj.Trajectory, len(ts.OIDs))
	for i := range overlay {
		pts := make([]traj.Point, ts.OOffs[i+1]-ts.OOffs[i])
		for j := range pts {
			k := (ts.OOffs[i] + int64(j)) * 3
			pts[j] = traj.Point{X: ts.OPts[k], Y: ts.OPts[k+1], T: ts.OPts[k+2]}
		}
		tr := traj.New(int(ts.OIDs[i]), pts)
		tr.Label = int(ts.OLabels[i])
		overlay[i] = tr
	}
	resolve := func(ref int64) *traj.Trajectory {
		if ref >= 0 {
			return members[ref]
		}
		return overlay[-ref-1]
	}
	t := newTreeShell(extra.Options, extra.Size)
	if extra.Root >= 0 {
		nNodes := len(ts.NMeta) / arena.NMetaStride
		if extra.Root >= int64(nNodes) {
			return nil, fmt.Errorf("trajtree: load arena: root %d of %d nodes: %w", extra.Root, nNodes, arena.ErrCorrupt)
		}
		nodes := make([]node, nNodes)
		built := make([]bool, nNodes)
		var build func(i int64) (*node, error)
		build = func(i int64) (*node, error) {
			if built[i] {
				// A node reachable twice means the child table encodes a
				// DAG or a cycle; refuse rather than recurse forever.
				return nil, fmt.Errorf("trajtree: load arena: node %d reached twice: %w", i, arena.ErrCorrupt)
			}
			built[i] = true
			rec := ts.NMeta[i*arena.NMetaStride : (i+1)*arena.NMetaStride]
			n := &nodes[i]
			boxes := make([]tbox.Box, rec[1])
			for bi := range boxes {
				v := ts.NBoxes[(rec[0]+int64(bi))*5:]
				boxes[bi] = tbox.Box{
					Rect: geom.Rect{Min: geom.Point{X: v[0], Y: v[1]}, Max: geom.Point{X: v[2], Y: v[3]}},
					MinL: v[4],
				}
			}
			n.seq = tbox.FromBoxes(boxes, int(rec[2]))
			n.maxLen = math.Float64frombits(uint64(rec[11]))
			if rec[6] > 0 {
				n.members = make([]*traj.Trajectory, rec[6])
				for mi := range n.members {
					n.members[mi] = resolve(ts.Members[rec[5]+int64(mi)])
				}
			}
			if rec[8] > 0 {
				n.vps = make([]geom.Point, rec[8])
				for vi := range n.vps {
					v := ts.VPs[(rec[7]+int64(vi))*2:]
					n.vps[vi] = geom.Point{X: v[0], Y: v[1]}
				}
			}
			if rows := rec[10]; rows >= 0 {
				// Rows alias the descriptor slab; stride is the VP count.
				n.descs = make([][]float64, rows)
				stride := rec[8]
				for ri := int64(0); ri < rows; ri++ {
					off := rec[9] + ri*stride
					n.descs[ri] = ts.DVals[off : off+stride : off+stride]
				}
			}
			for ci := int64(0); ci < rec[4]; ci++ {
				c, err := build(ts.Children[rec[3]+ci])
				if err != nil {
					return nil, err
				}
				n.children = append(n.children, c)
			}
			return n, nil
		}
		root, err := build(extra.Root)
		if err != nil {
			return nil, err
		}
		t.root = root
	}
	if err := t.checkInvariants(); err != nil {
		return nil, fmt.Errorf("trajtree: load arena: %v: %w", err, arena.ErrCorrupt)
	}
	t.ar = a
	t.overlay = len(overlay)
	return t, nil
}
