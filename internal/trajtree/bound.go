package trajtree

import (
	"trajmatch/internal/backend"
)

// SharedBound is the shared backend.SharedBound: a monotonically
// tightening upper bound shared by concurrent searches. The sharded
// engine fans one k-NN query out across per-shard trees, and every shard
// search publishes its local k-th-best distance here the moment its
// answer set fills; see backend.SharedBound for the admissibility
// argument.
type SharedBound = backend.SharedBound

// NewSharedBound returns a bound seeded at limit (use +Inf for an
// unconstrained search).
func NewSharedBound(limit float64) *SharedBound { return backend.NewSharedBound(limit) }
