// Deprecated-API regression coverage:
//
//lint:file-ignore SA1019 pins the deprecated wrappers across save/load on purpose.
package trajtree

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// TestPersistRoundTripAnswersIdentically is the Save/Load acceptance
// test: a reloaded tree must answer KNN and RangeSearch byte-identically
// to the original — same IDs, same distances, same order — and with
// identical per-query statistics, which proves the reloaded structure
// (tBoxSeq summaries, vantage points, VP descriptors, member placement)
// is the same tree, not merely an equivalent one.
func TestPersistRoundTripAnswersIdentically(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	db := testDB(rng, 130)
	tree, err := New(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := tree.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if loaded.Size() != tree.Size() || loaded.Height() != tree.Height() {
		t.Fatalf("loaded shape %d/%d, want %d/%d", loaded.Size(), loaded.Height(), tree.Size(), tree.Height())
	}

	for it := 0; it < 15; it++ {
		q := db[rng.Intn(len(db))].Clone()
		q.ID = 8_000_000 + it
		if it%2 == 0 {
			for i := range q.Points {
				q.Points[i].X += rng.NormFloat64() * 8
				q.Points[i].Y += rng.NormFloat64() * 8
			}
		}
		k := 1 + rng.Intn(9)
		got, gst := loaded.KNN(q, k)
		want, wst := tree.KNN(q, k)
		sameResults(t, "KNN", got, want)
		if gst != wst {
			// Equal stats mean the traversal — including the VP top-k
			// passes driven by the persisted descriptors — was identical.
			t.Fatalf("KNN stats diverge after reload: %+v != %+v", gst, wst)
		}

		radius := []float64{0.05, 0.3, 1.5}[it%3]
		gotR, grst := loaded.RangeSearch(q, radius)
		wantR, wrst := tree.RangeSearch(q, radius)
		sameResults(t, "RangeSearch", gotR, wantR)
		if grst != wrst {
			t.Fatalf("RangeSearch stats diverge after reload: %+v != %+v", grst, wrst)
		}
	}
}

// TestPersistPreservesVPDescriptors reloads a tree and asserts the
// root's vantage machinery survived: VPUpperBound — which runs entirely
// on the persisted VPs and descriptor table — returns the same bound and
// the same candidate distance profile.
func TestPersistPreservesVPDescriptors(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	db := testDB(rng, 100)
	tree, err := New(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tree.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	q := db[9].Clone()
	q.ID = 9_000_000
	ub, ds := tree.VPUpperBound(q, 6)
	lub, lds := loaded.VPUpperBound(q, 6)
	if ub == 0 || math.IsInf(ub, 1) {
		t.Fatalf("degenerate reference upper bound %v", ub)
	}
	if ub != lub {
		t.Fatalf("VP upper bound %v != %v after reload", lub, ub)
	}
	if len(ds) != len(lds) {
		t.Fatalf("VP candidate profile length %d != %d", len(lds), len(ds))
	}
	for i := range ds {
		if ds[i] != lds[i] {
			t.Fatalf("VP candidate %d distance %v != %v after reload", i, lds[i], ds[i])
		}
	}
}

// TestPersistRoundTripSurvivesUpdates reloads a tree and keeps using it:
// inserts and deletes on the reloaded tree must behave exactly as on a
// never-persisted one.
func TestPersistRoundTripSurvivesUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	db := testDB(rng, 60)
	tree, err := New(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tree.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	extra := testDB(rng, 20)
	for i, tr := range extra {
		tr.ID = 40_000 + i
		if err := loaded.Insert(tr); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if err := loaded.Insert(extra[0]); err == nil {
		t.Fatal("duplicate insert into reloaded tree succeeded")
	}
	if !loaded.Delete(40_003) {
		t.Fatal("delete on reloaded tree missed")
	}
	if loaded.Size() != 60+20-1 {
		t.Fatalf("size %d after churn, want %d", loaded.Size(), 79)
	}
	if err := loaded.checkInvariants(); err != nil {
		t.Fatalf("invariants after churn on reloaded tree: %v", err)
	}
	q := db[3].Clone()
	q.ID = 9_500_000
	got, _ := loaded.KNN(q, 8)
	sameResults(t, "post-churn", got, loaded.KNNBrute(q, 8))
}
