// Deprecated-API regression coverage:
//
//lint:file-ignore SA1019 pins the deprecated RangeSearch wrapper on purpose.
package trajtree

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestRangeSearchExact(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	db := testDB(rng, 120)
	tree, err := New(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for it := 0; it < 10; it++ {
		q := testDB(rng, 1)[0]
		q.ID = 9000 + it
		// Radius chosen around the 10th-NN distance so results are
		// non-trivial.
		knn := tree.KNNBrute(q, 10)
		radius := knn[len(knn)-1].Dist
		got, st := tree.RangeSearch(q, radius)
		// Brute-force reference.
		var want int
		for _, tr := range tree.All() {
			if tree.dist(q, tr) <= radius {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("range returned %d, want %d", len(got), want)
		}
		for i, r := range got {
			if r.Dist > radius {
				t.Fatalf("result %d outside radius: %v > %v", i, r.Dist, radius)
			}
			if i > 0 && got[i-1].Dist > r.Dist {
				t.Fatal("range results not sorted")
			}
		}
		if st.NodesPruned == 0 && tree.Height() > 2 {
			t.Error("range search pruned nothing")
		}
	}
}

func TestRangeSearchEmptyAndZeroRadius(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	db := testDB(rng, 30)
	tree, err := New(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	empty, _ := New(nil, testOptions())
	if got, _ := empty.RangeSearch(db[0], 100); len(got) != 0 {
		t.Error("range on empty tree returned results")
	}
	// Zero radius returns at least the query itself when indexed.
	got, _ := tree.RangeSearch(db[3], 0)
	found := false
	for _, r := range got {
		if r.Traj.ID == db[3].ID {
			found = true
		}
		if r.Dist != 0 {
			t.Errorf("zero-radius result with dist %v", r.Dist)
		}
	}
	if !found {
		t.Error("zero-radius search missed the query itself")
	}
}

func TestNearestDissimilar(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	db := testDB(rng, 60)
	tree, err := New(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	q := db[0]
	far := tree.NearestDissimilar(q, 5)
	if len(far) != 5 {
		t.Fatalf("got %d results", len(far))
	}
	// The farthest result must match the brute-force maximum.
	var maxD float64
	for _, tr := range db {
		if d := tree.dist(q, tr); d > maxD {
			maxD = d
		}
	}
	if math.Abs(far[0].Dist-maxD) > 1e-9 {
		t.Errorf("farthest = %v, want %v", far[0].Dist, maxD)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(124))
	db := testDB(rng, 90)
	tree, err := New(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tree.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Size() != tree.Size() || loaded.Height() != tree.Height() {
		t.Fatalf("loaded tree differs: size %d/%d height %d/%d",
			loaded.Size(), tree.Size(), loaded.Height(), tree.Height())
	}
	// Queries over the loaded index return identical answers.
	for it := 0; it < 5; it++ {
		q := testDB(rng, 1)[0]
		q.ID = 8000 + it
		a, _ := tree.KNN(q, 7)
		b, _ := loaded.KNN(q, 7)
		if len(a) != len(b) {
			t.Fatalf("result counts differ: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if math.Abs(a[i].Dist-b[i].Dist) > 1e-12 {
				t.Fatalf("rank %d: %v vs %v", i, a[i].Dist, b[i].Dist)
			}
		}
	}
	// The loaded index remains updatable.
	nt := testDB(rand.New(rand.NewSource(125)), 1)[0]
	nt.ID = 7777
	if err := loaded.Insert(nt); err != nil {
		t.Fatal(err)
	}
	if loaded.Lookup(7777) == nil {
		t.Error("insert after load failed")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Error("garbage stream accepted")
	}
}

func TestSaveLoadEmpty(t *testing.T) {
	empty, err := New(nil, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := empty.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Size() != 0 {
		t.Errorf("loaded empty tree has size %d", loaded.Size())
	}
}
