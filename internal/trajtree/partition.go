package trajtree

import (
	"math"

	"trajmatch/internal/core"
	"trajmatch/internal/tbox"
	"trajmatch/internal/traj"
)

// partition implements Algorithm 1: select diverse pivots until the
// marginal diversity drop exceeds θ, then distribute the remaining
// trajectories to the pivot whose tBoxSeq grows the least. It returns the
// groups and their (already populated) tBoxSeqs.
func (t *Tree) partition(D []*traj.Trajectory) ([][]*traj.Trajectory, []*tbox.Seq) {
	pivots := t.selectPivots(D)
	if len(pivots) < 2 {
		return nil, nil
	}
	isPivot := make(map[int]bool, len(pivots))
	groups := make([][]*traj.Trajectory, len(pivots))
	seqs := make([]*tbox.Seq, len(pivots))
	for i, p := range pivots {
		isPivot[p.ID] = true
		groups[i] = []*traj.Trajectory{p}
		seqs[i] = tbox.FromTrajectory(p, t.opt.MaxBoxes)
	}
	for _, tr := range D {
		if isPivot[tr.ID] {
			continue
		}
		best, bestCost := 0, math.Inf(1)
		for i, s := range seqs {
			if c := s.ExpansionCost(tr); c < bestCost {
				bestCost, best = c, i
			}
		}
		groups[best] = append(groups[best], tr)
		seqs[best].Insert(tr)
	}
	// Drop empty groups (cannot happen — every group holds its pivot — but
	// keep the guard for safety).
	out := groups[:0]
	outSeqs := seqs[:0]
	for i := range groups {
		if len(groups[i]) > 0 {
			out = append(out, groups[i])
			outSeqs = append(outSeqs, seqs[i])
		}
	}
	return out, outSeqs
}

// selectPivots runs lines 3–8 of Algorithm 1. The argmax scan samples at
// most PivotCandidates trajectories per round (see Options); diversity is
// measured by cumulative EDwPsub as in the paper.
func (t *Tree) selectPivots(D []*traj.Trajectory) []*traj.Trajectory {
	if len(D) == 0 {
		return nil
	}
	cands := D
	if len(D) > t.opt.PivotCandidates {
		cands = make([]*traj.Trajectory, t.opt.PivotCandidates)
		perm := t.rng.Perm(len(D))
		for i := range cands {
			cands[i] = D[perm[i]]
		}
	}

	pivots := []*traj.Trajectory{cands[t.rng.Intn(len(cands))]}
	// minToP[i] = min over pivots p of EDwPsub(cands[i], p).
	minToP := make([]float64, len(cands))
	for i, c := range cands {
		minToP[i] = subDiv(c, pivots[0])
	}
	pairMin := math.Inf(1) // min pairwise diversity within pivots

	for len(pivots) < t.opt.MaxFanout {
		bestI, bestD := -1, -1.0
		for i, d := range minToP {
			if d > bestD {
				bestD, bestI = d, i
			}
		}
		if bestI < 0 || bestD <= 0 {
			break // every candidate coincides with a pivot
		}
		if len(pivots) >= 2 {
			drop := 1 - bestD/pairMin
			if drop > t.opt.Theta {
				break
			}
		}
		p := cands[bestI]
		// Update pairwise diversity with the new pivot.
		for _, q := range pivots {
			if d := math.Min(subDiv(p, q), subDiv(q, p)); d < pairMin {
				pairMin = d
			}
		}
		pivots = append(pivots, p)
		for i, c := range cands {
			if d := subDiv(c, p); d < minToP[i] {
				minToP[i] = d
			}
		}
	}
	return pivots
}

// subDiv is the diversity measure of Algorithm 1: EDwPsub between two
// trajectories.
func subDiv(a, b *traj.Trajectory) float64 {
	d := core.SubDistance(a, b)
	if math.IsInf(d, 1) {
		return math.MaxFloat64 / 4
	}
	return d
}
