package trajtree

import (
	"trajmatch/internal/pqueue"
	"trajmatch/internal/traj"
)

// RangeSearch returns every indexed trajectory within the given EDwP (or
// EDwPavg) distance of q, sorted ascending. It reuses the k-NN machinery's
// admissible lower bounds: a subtree is visited only when its bound does
// not exceed the radius, so the result is exact. This is the similarity
// counterpart of the interval queries TB-tree and SETI answer (Section VI);
// the paper's index supports it for free and so does this one.
//
// Every exact evaluation passes the radius to the bounded kernel: members
// outside the radius are abandoned part-way through the dynamic program
// (Stats.EarlyAbandons), while members inside it get their exact distance.
//
// The radius is the seed bound of the whole search: unlike k-NN — whose
// pruning threshold only tightens as answers accumulate — a range query
// starts maximally tight, so fanning one query out over the shards of a
// partitioned corpus needs no shared state at all. Each shard search is
// seeded with the same radius and the per-shard result lists merge by
// concatenation; the sharded engine in internal/server does exactly that.
func (t *Tree) RangeSearch(q *traj.Trajectory, radius float64) ([]Result, Stats) {
	return t.rangeSeeded(q, radius)
}

// rangeSeeded walks the tree pruning subtrees whose lower bound exceeds
// the seed limit and abandoning member evaluations at it.
func (t *Tree) rangeSeeded(q *traj.Trajectory, radius float64) ([]Result, Stats) {
	var st Stats
	if t.root == nil {
		return nil, st
	}
	qLen := q.Length()
	var out []Result
	var walk func(n *node)
	walk = func(n *node) {
		st.NodesVisited++
		if n.leaf() {
			for _, tr := range n.members {
				st.DistanceCalls++
				d, abandoned := t.distBounded(q, tr, radius)
				if d <= radius {
					out = append(out, Result{Traj: tr, Dist: d})
				} else if abandoned {
					st.EarlyAbandons++
				}
			}
			return
		}
		for _, child := range n.children {
			st.LowerBoundCalls++
			if lb := t.lower(q, qLen, child); lb > radius {
				st.NodesPruned++
				continue
			}
			walk(child)
		}
	}
	walk(t.root)
	sortResults(out)
	return out, st
}

// NearestDissimilar returns the k indexed trajectories *farthest* from q —
// useful for diversity sampling, implemented as a guarded scan (upper
// bounds for farthest-point search are not derivable from the paper's
// lower-bound machinery, so this is exact-by-scan and documented as such).
func (t *Tree) NearestDissimilar(q *traj.Trajectory, k int) []Result {
	if t.root == nil || k <= 0 {
		return nil
	}
	ans := pqueue.NewTopK[*traj.Trajectory](k)
	for _, tr := range t.root.members {
		// TopK keeps smallest priorities; negate to keep farthest.
		ans.Offer(tr, -t.dist(q, tr))
	}
	items := ans.Items()
	out := make([]Result, len(items))
	for i, it := range items {
		out[i] = Result{Traj: it.Value, Dist: -it.Priority}
	}
	return out
}

// sortResults orders by ascending distance with trajectory ID breaking
// exact-distance ties, so a range result is a deterministic function of
// the answer *set* alone — the sharded fan-out concatenates per-shard
// lists and re-sorts with the same key, making range answers identical
// across shard counts even when distances tie exactly.
func sortResults(rs []Result) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && (rs[j].Dist < rs[j-1].Dist ||
			(rs[j].Dist == rs[j-1].Dist && rs[j].Traj.ID < rs[j-1].Traj.ID)); j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}
