package trajtree

import (
	"trajmatch/internal/core"
	"trajmatch/internal/pqueue"
	"trajmatch/internal/traj"
)

// RangeSearch returns every indexed trajectory within the given EDwP (or
// EDwPavg) distance of q, sorted ascending. It reuses the k-NN machinery's
// admissible lower bounds: a subtree is visited only when its bound does
// not exceed the radius, so the result is exact. This is the similarity
// counterpart of the interval queries TB-tree and SETI answer (Section VI);
// the paper's index supports it for free and so does this one.
//
// Every exact evaluation passes the radius to the bounded kernel: members
// outside the radius are abandoned part-way through the dynamic program
// (Stats.EarlyAbandons), while members inside it get their exact distance.
//
// The radius is the seed bound of the whole search: unlike k-NN — whose
// pruning threshold only tightens as answers accumulate — a range query
// starts maximally tight, so fanning one query out over the shards of a
// partitioned corpus needs no shared state at all. Each shard search is
// seeded with the same radius and the per-shard result lists merge by
// concatenation; the sharded engine in internal/server does exactly that.
//
// Deprecated: use SearchRange, which additionally supports cancellation
// and evaluation budgets. RangeSearch(q, r) is SearchRange(q, r, nil)
// with the truncation flag and error dropped (both are always zero
// without a Ctl).
func (t *Tree) RangeSearch(q *traj.Trajectory, radius float64) ([]Result, Stats) {
	res, st, _, _ := t.rangeSeeded(q, radius, nil)
	return res, st
}

// rangeSeeded walks the tree pruning subtrees whose lower bound exceeds
// the seed limit and abandoning member evaluations at it. ctl (may be
// nil) injects cancellation — polled once per visited node and per DP
// row inside the kernel — and the query-wide evaluation budget.
func (t *Tree) rangeSeeded(q *traj.Trajectory, radius float64, ctl *Ctl) ([]Result, Stats, bool, error) {
	var st Stats
	if t.root == nil {
		return nil, st, false, ctl.Err()
	}
	qLen := q.Length()
	var scr *core.SegScreen
	if t.ar != nil {
		scr = screenPool.Get().(*core.SegScreen)
		scr.Reset(q)
		defer screenPool.Put(scr)
	}
	var out []Result
	truncated := false
	var walk func(n *node)
	walk = func(n *node) {
		if truncated || ctl.Cancelled() {
			return
		}
		st.NodesVisited++
		if n.leaf() {
			for _, tr := range n.members {
				if !ctl.Take() {
					truncated = true
					return
				}
				st.DistanceCalls++
				// Leaf-level screen: members the arena summaries prove
				// outside the radius skip the kernel, counted as the
				// abandoned evaluations they would have been.
				if scr != nil && t.screenMember(scr, qLen, tr, radius) {
					st.EarlyAbandons++
					continue
				}
				d, abandoned := t.distBounded(q, tr, radius, ctl.CancelFlag())
				if d <= radius {
					out = append(out, Result{Traj: tr, Dist: d})
				} else if abandoned {
					st.EarlyAbandons++
				}
			}
			return
		}
		for _, child := range n.children {
			if truncated || ctl.Cancelled() {
				return
			}
			st.LowerBoundCalls++
			if lb := t.lowerBounded(q, qLen, child, radius); lb > radius {
				st.NodesPruned++
				continue
			}
			walk(child)
		}
	}
	walk(t.root)
	if err := ctl.Err(); err != nil {
		// A fired context may have poisoned in-flight evaluations;
		// discard the whole answer.
		return nil, st, false, err
	}
	sortResults(out)
	return out, st, truncated, nil
}

// NearestDissimilar returns the k indexed trajectories *farthest* from q —
// useful for diversity sampling, implemented as a guarded scan (upper
// bounds for farthest-point search are not derivable from the paper's
// lower-bound machinery, so this is exact-by-scan and documented as such).
func (t *Tree) NearestDissimilar(q *traj.Trajectory, k int) []Result {
	if t.root == nil || k <= 0 {
		return nil
	}
	ans := pqueue.NewTopK[*traj.Trajectory](k)
	for _, tr := range t.root.members {
		// TopK keeps smallest priorities; negate to keep farthest.
		ans.Offer(tr, -t.dist(q, tr))
	}
	items := ans.Items()
	out := make([]Result, len(items))
	for i, it := range items {
		out[i] = Result{Traj: it.Value, Dist: -it.Priority}
	}
	return out
}

// sortResults orders by ascending distance with trajectory ID breaking
// exact-distance ties, so a range result is a deterministic function of
// the answer *set* alone — the sharded fan-out concatenates per-shard
// lists and re-sorts with the same key, making range answers identical
// across shard counts even when distances tie exactly.
func sortResults(rs []Result) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && (rs[j].Dist < rs[j-1].Dist ||
			(rs[j].Dist == rs[j-1].Dist && rs[j].Traj.ID < rs[j-1].Traj.ID)); j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}
