package trajtree

import (
	"context"
	"math"

	"trajmatch/internal/backend"
	"trajmatch/internal/core"
	"trajmatch/internal/pqueue"
	"trajmatch/internal/traj"
)

// Ctl carries the cooperative controls of one logical query through the
// search stack — the shared backend.Ctl (cancellation flag + evaluation
// budget). The search loops here poll Cancelled between candidate pops
// and hand the underlying core.Cancel to the EDwP kernel, which polls it
// once per DP row — a fired context therefore aborts a query within one
// DP row of work, even mid-evaluation. A nil *Ctl is valid everywhere
// and means "no deadline, no budget".
type Ctl = backend.Ctl

// NewCtl arms a Ctl on ctx with an optional cap on exact distance
// evaluations (maxEvals <= 0 means unlimited). Callers must Release the
// Ctl when the query finishes to detach the context watcher.
func NewCtl(ctx context.Context, maxEvals int) *Ctl { return backend.NewCtl(ctx, maxEvals) }

// SearchKNN is the context-aware k-nearest-neighbour entry point, the
// search every legacy KNN variant is now a wrapper over. bound may be nil
// (self-contained search), seeded with a finite admissible limit
// (KNNWithBound semantics), or shared across concurrent searches of
// disjoint trees (KNNShared semantics — each search publishes its local
// k-th best through it). ctl may be nil for an uncancellable, unbudgeted
// search.
//
// The third return reports truncation: the Ctl's evaluation budget ran
// out and the answer holds only the neighbours confirmed so far — a
// best-effort, no longer exact, result. A non-nil error is ctl's context
// error; the other returns are then meaningless and must be discarded
// (a cancelled kernel call deliberately poisons in-flight candidate
// evaluations).
func (t *Tree) SearchKNN(q *traj.Trajectory, k int, bound *SharedBound, ctl *Ctl) ([]Result, Stats, bool, error) {
	return t.knnSearch(q, k, bound, ctl)
}

// SearchRange is the context-aware range query: every indexed trajectory
// within radius of q, sorted by (distance, ID). Truncation and error
// semantics match SearchKNN.
func (t *Tree) SearchRange(q *traj.Trajectory, radius float64, ctl *Ctl) ([]Result, Stats, bool, error) {
	return t.rangeSeeded(q, radius, ctl)
}

// SearchSub answers sub-trajectory k-NN under EDwPsub (Eq. 6): the k
// indexed trajectories containing the contiguous sub-trajectory that
// best matches the whole of q. The tree's lower bounds target
// whole-trajectory EDwP, so this is a bounded sequential scan over the
// members — each evaluation abandons against the running k-th best (and
// the shared bound, when searches over disjoint trees fan out together),
// exactly like KNNBrute does for the global distance. EDwPsub is
// inherently cumulative; the Cumulative option does not apply.
//
// Truncation and error semantics match SearchKNN.
func (t *Tree) SearchSub(q *traj.Trajectory, k int, bound *SharedBound, ctl *Ctl) ([]Result, Stats, bool, error) {
	var st Stats
	if t.root == nil || k <= 0 {
		return nil, st, false, ctl.Err()
	}
	ans := pqueue.NewTopK[*traj.Trajectory](k)
	truncated := false
	for _, tr := range t.root.members {
		if ctl.Cancelled() {
			return nil, st, false, ctl.Err()
		}
		if !ctl.Take() {
			truncated = true
			break
		}
		limit := math.Inf(1)
		if worst, full := ans.Worst(); full {
			limit = worst
		}
		if bound != nil {
			if b := bound.Load(); b < limit {
				limit = b
			}
		}
		st.DistanceCalls++
		d, abandoned := core.SubDistanceBoundedCancel(q, tr, limit, ctl.CancelFlag())
		if abandoned {
			st.EarlyAbandons++
			continue
		}
		if ans.Offer(tr, d) && bound != nil {
			if worst, full := ans.Worst(); full {
				bound.Tighten(worst)
			}
		}
	}
	if err := ctl.Err(); err != nil {
		return nil, st, false, err
	}
	items := ans.Items()
	out := make([]Result, len(items))
	for i, it := range items {
		out[i] = Result{Traj: it.Value, Dist: it.Priority}
	}
	return out, st, truncated, nil
}
