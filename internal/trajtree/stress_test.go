// Deprecated-API regression coverage:
//
//lint:file-ignore SA1019 pins the deprecated KNN wrapper under churn on purpose.
package trajtree

import (
	"math"
	"math/rand"
	"testing"
)

// Interleaved inserts and deletes with invariant checks and exact-kNN
// verification after every batch: the failure-injection test for the
// update path of Section IV-F.
func TestInterleavedUpdatesStayExact(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	pool := testDB(rng, 200)
	opt := testOptions()
	opt.RebuildRatio = 0.5

	tree, err := New(pool[:80], opt)
	if err != nil {
		t.Fatal(err)
	}
	inTree := make(map[int]bool, 200)
	for _, tr := range pool[:80] {
		inTree[tr.ID] = true
	}
	nextInsert := 80

	for batch := 0; batch < 8; batch++ {
		// Insert a handful.
		for i := 0; i < 10 && nextInsert < len(pool); i++ {
			if err := tree.Insert(pool[nextInsert]); err != nil {
				t.Fatalf("batch %d insert: %v", batch, err)
			}
			inTree[pool[nextInsert].ID] = true
			nextInsert++
		}
		// Delete a few random present members.
		var present []int
		for id, ok := range inTree {
			if ok {
				present = append(present, id)
			}
		}
		for i := 0; i < 4 && len(present) > 10; i++ {
			victim := present[rng.Intn(len(present))]
			if !inTree[victim] {
				continue
			}
			if !tree.Delete(victim) {
				t.Fatalf("batch %d: delete of present ID %d failed", batch, victim)
			}
			inTree[victim] = false
		}
		// Invariants and exactness.
		if err := tree.checkInvariants(); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		want := 0
		for _, ok := range inTree {
			if ok {
				want++
			}
		}
		if tree.Size() != want {
			t.Fatalf("batch %d: size %d, want %d", batch, tree.Size(), want)
		}
		q := testDB(rng, 1)[0]
		q.ID = 100_000 + batch
		got, _ := tree.KNN(q, 5)
		ref := tree.KNNBrute(q, 5)
		for i := range got {
			if math.Abs(got[i].Dist-ref[i].Dist) > 1e-9*(1+ref[i].Dist) {
				t.Fatalf("batch %d rank %d: %v vs %v", batch, i, got[i].Dist, ref[i].Dist)
			}
		}
	}
}

// Queries must remain exact across a spectrum of option extremes.
func TestKNNExactUnderOptionExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(132))
	db := testDB(rng, 90)
	q := testDB(rng, 1)[0]
	q.ID = 99999
	opts := []Options{
		{Theta: 0.1, NumVPs: 2, LeafSize: 2, PivotCandidates: 8, Seed: 1},
		{Theta: 0.95, NumVPs: 100, LeafSize: 40, PivotCandidates: 90, Seed: 2},
		{MaxBoxes: 2, NumVPs: 4, LeafSize: 5, PivotCandidates: 16, Seed: 3},
		{MaxFanout: 2, NumVPs: 4, LeafSize: 5, PivotCandidates: 16, Seed: 4},
		{VPMinMembers: 1, NumVPs: 8, LeafSize: 5, PivotCandidates: 16, Seed: 5},
	}
	for oi, opt := range opts {
		tree, err := New(db, opt)
		if err != nil {
			t.Fatalf("opts %d: %v", oi, err)
		}
		if err := tree.checkInvariants(); err != nil {
			t.Fatalf("opts %d: %v", oi, err)
		}
		got, _ := tree.KNN(q, 9)
		want := tree.KNNBrute(q, 9)
		for i := range got {
			if math.Abs(got[i].Dist-want[i].Dist) > 1e-9*(1+want[i].Dist) {
				t.Fatalf("opts %d rank %d: %v vs %v", oi, i, got[i].Dist, want[i].Dist)
			}
		}
	}
}

// Identical trajectories (duplicates under different IDs) must all be
// retrievable — a classic index edge case.
func TestDuplicateGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(133))
	base := testDB(rng, 20)
	dupes := base
	for i := 0; i < 10; i++ {
		c := base[0].Clone()
		c.ID = 500 + i
		dupes = append(dupes, c)
	}
	tree, err := New(dupes, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	got, _ := tree.KNN(base[0], 11)
	if len(got) != 11 {
		t.Fatalf("got %d results", len(got))
	}
	for i := 0; i < 11; i++ {
		if got[i].Dist > 1e-9 {
			t.Fatalf("rank %d: duplicate at distance %v", i, got[i].Dist)
		}
	}
}
