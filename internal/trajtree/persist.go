package trajtree

import (
	"encoding/gob"
	"fmt"
	"io"

	"trajmatch/internal/arena"
	"trajmatch/internal/geom"
	"trajmatch/internal/tbox"
	"trajmatch/internal/traj"
)

// The wire representation flattens the tree into per-node records with
// child indices, so the format is stable against struct layout changes and
// cheap to decode. Trajectories are stored once, referenced by ID.

type wireTree struct {
	Version int
	Options Options
	Size    int
	Trajs   []wireTraj
	Nodes   []wireNode
	Root    int // -1 when empty
}

type wireTraj struct {
	ID     int
	Label  int
	Points []traj.Point
}

type wireNode struct {
	Boxes    []wireBox
	SeqCount int
	Children []int
	Members  []int // trajectory IDs
	VPs      []geom.Point
	Descs    [][]float64
	MaxLen   float64
}

type wireBox struct {
	Rect geom.Rect
	MinL float64
}

// Save serialises the index with encoding/gob. The written stream contains
// the trajectories, so Load reconstructs a fully self-contained index.
func (t *Tree) Save(w io.Writer) error {
	wt := wireTree{Version: 1, Options: t.opt, Size: t.size, Root: -1}
	if t.root != nil {
		for _, m := range t.root.members {
			wt.Trajs = append(wt.Trajs, wireTraj{ID: m.ID, Label: m.Label, Points: m.Points})
		}
		var flatten func(n *node) int
		flatten = func(n *node) int {
			wn := wireNode{
				SeqCount: n.seq.Count(),
				MaxLen:   n.maxLen,
				VPs:      n.vps,
				Descs:    n.descs,
			}
			for i := 0; i < n.seq.Len(); i++ {
				wn.Boxes = append(wn.Boxes, wireBox{Rect: n.seq.Rect(i), MinL: n.seq.MinLen(i)})
			}
			for _, m := range n.members {
				wn.Members = append(wn.Members, m.ID)
			}
			idx := len(wt.Nodes)
			wt.Nodes = append(wt.Nodes, wn)
			for _, c := range n.children {
				ci := flatten(c)
				wt.Nodes[idx].Children = append(wt.Nodes[idx].Children, ci)
			}
			return idx
		}
		wt.Root = flatten(t.root)
	}
	return gob.NewEncoder(w).Encode(&wt)
}

// Load reconstructs an index written by Save.
func Load(r io.Reader) (*Tree, error) {
	var wt wireTree
	if err := gob.NewDecoder(r).Decode(&wt); err != nil {
		return nil, fmt.Errorf("trajtree: load: %w", err)
	}
	if wt.Version != 1 {
		return nil, fmt.Errorf("trajtree: load: unsupported version %d", wt.Version)
	}
	byID := make(map[int]*traj.Trajectory, len(wt.Trajs))
	for _, w := range wt.Trajs {
		tr := traj.New(w.ID, w.Points)
		tr.Label = w.Label
		byID[w.ID] = tr
	}
	t := newTreeShell(wt.Options, wt.Size)
	if wt.Root >= 0 {
		var build func(i int) (*node, error)
		build = func(i int) (*node, error) {
			if i < 0 || i >= len(wt.Nodes) {
				return nil, fmt.Errorf("trajtree: load: node index %d out of range", i)
			}
			wn := wt.Nodes[i]
			n := &node{
				seq:    tbox.FromBoxes(toBoxes(wn.Boxes), wn.SeqCount),
				maxLen: wn.MaxLen,
				vps:    wn.VPs,
				descs:  wn.Descs,
			}
			for _, id := range wn.Members {
				tr := byID[id]
				if tr == nil {
					return nil, fmt.Errorf("trajtree: load: unknown trajectory %d", id)
				}
				n.members = append(n.members, tr)
			}
			for _, ci := range wn.Children {
				c, err := build(ci)
				if err != nil {
					return nil, err
				}
				n.children = append(n.children, c)
			}
			return n, nil
		}
		root, err := build(wt.Root)
		if err != nil {
			return nil, err
		}
		t.root = root
	}
	if err := t.checkInvariants(); err != nil {
		return nil, fmt.Errorf("trajtree: load: %w", err)
	}
	// Rebuild the arena over the loaded members: the decoded
	// trajectories are re-pointed at fresh slabs and the per-member
	// summaries behind the leaf screen are recomputed (they are a
	// deterministic function of the geometry, so queries behave exactly
	// as on the saved tree).
	if t.root != nil {
		t.ar = arena.Build(t.root.members)
	}
	return t, nil
}

func toBoxes(ws []wireBox) []tbox.Box {
	out := make([]tbox.Box, len(ws))
	for i, w := range ws {
		out[i] = tbox.Box{Rect: w.Rect, MinL: w.MinL}
	}
	return out
}
