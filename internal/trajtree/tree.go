// Package trajtree implements TrajTree (Section IV), the paper's index for
// exact k-nearest-neighbour queries under EDwP. Internal nodes summarise
// their subtree with a trajectory box sequence (package tbox) whose
// EDwPsub-style lower bound (core.LowerBound, Theorem 2) prunes the search,
// and with vantage-point descriptors (package vantage) that produce tight
// upper bounds early (Section IV-E). Leaves hold the trajectories.
//
// Queries return the exact k-NN set: candidates are visited best-first by
// lower bound and the search stops when the smallest outstanding lower
// bound cannot beat the current k-th best distance.
//
// A Tree is immutable under queries and safe for concurrent KNN calls;
// Insert, Delete and Rebuild require external serialisation. Package
// server wraps a Tree in an RWMutex-guarded engine that provides exactly
// that serialisation for concurrent workloads.
package trajtree

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"trajmatch/internal/arena"
	"trajmatch/internal/backend"
	"trajmatch/internal/core"
	"trajmatch/internal/geom"
	"trajmatch/internal/tbox"
	"trajmatch/internal/traj"
	"trajmatch/internal/vantage"
)

// Options configure construction. The zero value is usable: every field
// falls back to the paper's defaults (Section V-A).
type Options struct {
	// Theta is the diversity-drop threshold θ of Algorithm 1 controlling
	// the branching factor. Default 0.8.
	Theta float64
	// NumVPs is the number of vantage points distributed per node.
	// Default 80.
	NumVPs int
	// LeafSize is the minimum node size n: nodes with at most this many
	// trajectories become leaves. Default 10.
	LeafSize int
	// MaxBoxes caps the number of st-boxes per tBoxSeq (long pivots are
	// coarsened); 0 means the default of 32.
	MaxBoxes int
	// MaxFanout caps the number of pivots per node regardless of θ.
	// Default 16.
	MaxFanout int
	// PivotCandidates caps how many trajectories the max-min pivot scan of
	// Algorithm 1 examines per round (a uniform sample); 0 means the
	// default of 64. The full scan is O(|D|·p) EDwPsub calls per node, the
	// dominant construction cost the paper reports in Fig. 6(e).
	PivotCandidates int
	// Cumulative switches query distances from EDwPavg (Eq. 4, the paper's
	// experimental default) to cumulative EDwP.
	Cumulative bool
	// DisableVantage turns the VP upper-bound machinery off (ablation X1).
	DisableVantage bool
	// VPMinMembers skips the per-node VP top-k evaluation at nodes whose
	// subtree holds fewer trajectories: small subtrees are cheaper to
	// resolve through bounds alone, while the root-level evaluation — the
	// one the paper credits with early pruning — always runs. 0 means the
	// default of 64; set to 1 to evaluate at every internal node.
	VPMinMembers int
	// RebuildRatio triggers an automatic rebuild when
	// inserts+deletes > ratio × size. 0 means the default of 0.25;
	// negative disables auto-rebuild.
	RebuildRatio float64
	// Seed drives all randomised choices, making builds reproducible.
	Seed int64
	// Parallel enables concurrent subtree construction.
	Parallel bool
}

// WithDefaults returns o with every unset field replaced by the paper's
// default, the normal form a built Tree reports through Tree.Options.
// The server's snapshot loader uses it to compare a manifest's recorded
// options (which may have been hand-edited) against the loaded shards'.
func (o Options) WithDefaults() Options { return o.withDefaults() }

func (o Options) withDefaults() Options {
	if o.Theta == 0 {
		o.Theta = 0.8
	}
	if o.NumVPs == 0 {
		o.NumVPs = 80
	}
	if o.LeafSize == 0 {
		o.LeafSize = 10
	}
	if o.MaxBoxes == 0 {
		o.MaxBoxes = 32
	}
	if o.MaxFanout == 0 {
		o.MaxFanout = 16
	}
	if o.PivotCandidates == 0 {
		o.PivotCandidates = 64
	}
	if o.VPMinMembers == 0 {
		o.VPMinMembers = 64
	}
	if o.RebuildRatio == 0 {
		o.RebuildRatio = 0.25
	}
	return o
}

// node is a TrajTree node. Internal nodes carry the tBoxSeq summary,
// vantage points and the descriptors of every subtree member; leaves carry
// only their trajectories (plus the seq used by the parent for bounding).
type node struct {
	seq      *tbox.Seq
	children []*node
	members  []*traj.Trajectory
	vps      []geom.Point
	descs    [][]float64
	maxLen   float64
}

func (n *node) leaf() bool { return len(n.children) == 0 }

// Tree is the TrajTree index.
type Tree struct {
	root *node
	opt  Options
	size int
	mods int    // inserts + deletes since the last (re)build
	gen  uint64 // bumped by every Insert/Delete/Rebuild
	rng  *rand.Rand

	// ar is the shard's arena: slab-resident samples plus the
	// per-member summaries behind the leaf-level lower-bound screen.
	// It is rebuilt by Rebuild and nil only for trees grown purely by
	// Insert from empty. Members inserted after the last (re)build form
	// the overlay: they live on the heap with no arena entry and are
	// folded into fresh slabs by the next Rebuild.
	ar      *arena.Arena
	overlay int    // live members without an arena entry
	foldIns uint64 // rebuilds that folded an overlay into new slabs
}

// New bulk-loads a TrajTree over db. Every trajectory must have at least
// two points and a unique ID; New returns an error otherwise.
func New(db []*traj.Trajectory, opt Options) (*Tree, error) {
	opt = opt.withDefaults()
	seen := make(map[int]bool, len(db))
	for _, t := range db {
		if err := t.Validate(); err != nil {
			return nil, fmt.Errorf("trajtree: trajectory %d: %w", t.ID, err)
		}
		if seen[t.ID] {
			return nil, fmt.Errorf("trajtree: duplicate trajectory ID %d", t.ID)
		}
		seen[t.ID] = true
	}
	tr := &Tree{opt: opt, size: len(db), rng: rand.New(rand.NewSource(opt.Seed))}
	if len(db) > 0 {
		owned := make([]*traj.Trajectory, len(db))
		copy(owned, db)
		// The arena is built first so construction-time distance calls
		// already stream over the primed slab views; priming installs
		// bit-identical values, so the built tree is unchanged.
		tr.ar = arena.Build(owned)
		tr.root = tr.build(owned, tbox.Build(owned, opt.MaxBoxes), opt.Parallel)
	}
	return tr, nil
}

// newTreeShell builds an empty Tree with normalised options, used by Load.
func newTreeShell(opt Options, size int) *Tree {
	opt = opt.withDefaults()
	return &Tree{opt: opt, size: size, rng: rand.New(rand.NewSource(opt.Seed))}
}

// Size returns the number of indexed trajectories.
func (t *Tree) Size() int { return t.size }

// Generation returns a counter that increases on every structural update
// (Insert, Delete, Rebuild). Readers that cache query answers can compare
// generations to detect staleness instead of subscribing to updates; the
// server engine keys its LRU invalidation on it. Like every Tree accessor
// it requires the caller to serialise updates against reads.
func (t *Tree) Generation() uint64 { return t.gen }

// Options returns the tree's construction options with defaults filled
// in. The sharded snapshot manifest records them, and the snapshot
// loader verifies every reloaded shard carries the same parameters, so
// a snapshot directory cannot silently mix shards from differently
// configured engines.
func (t *Tree) Options() Options { return t.opt }

// Height returns the height of the tree (leaves have height 1).
func (t *Tree) Height() int { return height(t.root) }

func height(n *node) int {
	if n == nil {
		return 0
	}
	max := 0
	for _, c := range n.children {
		if h := height(c); h > max {
			max = h
		}
	}
	return max + 1
}

// dist is the query distance: EDwPavg by default (Section V-A).
func (t *Tree) dist(a, b *traj.Trajectory) float64 {
	d, _ := t.distBounded(a, b, math.Inf(1), nil)
	return d
}

// distBounded is the bound-aware query distance: it returns the exact
// distance whenever it does not exceed limit and +Inf otherwise, letting
// the kernel abandon the dynamic program early; the second return reports
// whether a +Inf came from the limit (counted as Stats.EarlyAbandons)
// rather than from a genuinely infinite distance. Every query path passes
// its current pruning threshold (the k-th best distance for KNN, the
// radius for RangeSearch) so candidates that cannot enter the answer are
// rejected at a fraction of a full evaluation's cost. cancel (may be
// nil) is the query's cooperative cancellation flag, polled by the
// kernel once per DP row.
func (t *Tree) distBounded(a, b *traj.Trajectory, limit float64, cancel *core.Cancel) (float64, bool) {
	if t.opt.Cumulative {
		return core.DistanceBoundedCancel(a, b, limit, cancel)
	}
	return core.AvgDistanceBoundedCancel(a, b, limit, cancel)
}

// lower bounds EDwP-or-EDwPavg distance from q to every member below n.
func (t *Tree) lower(q *traj.Trajectory, qLen float64, n *node) float64 {
	lb := core.LowerBound(q, n.seq)
	if t.opt.Cumulative {
		return lb
	}
	den := qLen + n.maxLen
	if den == 0 {
		return 0
	}
	return lb / den
}

// lowerBounded is lower with early abandoning: exact whenever the bound
// does not exceed limit, and some value strictly above limit (possibly
// +Inf) otherwise, so every `>= limit`/`> limit` pruning decision matches
// lower's while the Theorem-2 DP abandons rows that can no longer matter.
// The normalised path translates limit into the raw cumulative domain the
// DP works in, inflated by the same relative epsilon the bounded kernel
// uses so boundary values survive the multiplication-versus-division
// rounding difference.
func (t *Tree) lowerBounded(q *traj.Trajectory, qLen float64, n *node, limit float64) float64 {
	if t.opt.Cumulative {
		raw := limit
		if !math.IsInf(limit, 1) {
			raw += raw * 1e-12
		}
		return core.LowerBoundBounded(q, n.seq, raw)
	}
	den := qLen + n.maxLen
	if den == 0 {
		return 0
	}
	raw := limit
	if !math.IsInf(limit, 1) {
		raw = limit * den
		raw += raw * 1e-12
	}
	return core.LowerBoundBounded(q, n.seq, raw) / den
}

// screenMember is the leaf-level lower-bound screen: it reports whether
// the arena's per-member summaries prove that evaluating tr cannot beat
// limit — i.e. that the bounded kernel would abandon the evaluation. A
// true return is therefore behaviour-preserving: the caller skips work
// whose outcome is already known, never a candidate that could enter
// the answer. Members without an arena entry (the post-build overlay)
// are never screened. The raw limit is inflated by a relative 1e-9 so
// the screen's float rounding (~1e-13 relative) can never flip a
// decision the kernel — whose own epsilon is 1e-12 — would have taken
// the other way.
func (t *Tree) screenMember(scr *core.SegScreen, qLen float64, tr *traj.Trajectory, limit float64) bool {
	if math.IsInf(limit, 1) {
		return false
	}
	ai, ok := t.ar.Lookup(tr.ID)
	if !ok {
		return false
	}
	raw := limit
	if !t.opt.Cumulative {
		den := qLen + t.ar.Length(ai)
		if den <= 0 {
			return false
		}
		raw = limit * den
	}
	raw += raw * 1e-9
	// Two tiers, both over flat slab windows: the single bounding box
	// (O(len q)) rejects far-away members, the coarsened box sequence
	// (O(len q · MemberBoxes), early-exiting) rejects most of the rest.
	if core.ScreenLowerBound(scr, t.ar.BBox(ai), raw) > raw {
		return true
	}
	return core.ScreenLowerBound(scr, t.ar.Boxes(ai), raw) > raw
}

// MemStats describes the tree's memory layout for the stats endpoint:
// the arena's slab residency plus the overlay and fold-in counters.
type MemStats struct {
	Arena arena.MemStats `json:"arena"`
	// Overlay counts live members not resident in the arena —
	// trajectories inserted since the last (re)build.
	Overlay int `json:"overlay"`
	// FoldIns counts rebuilds that folded an overlay into fresh slabs.
	FoldIns uint64 `json:"fold_ins"`
}

// MemStats returns the tree's memory-layout counters. Like every Tree
// accessor it requires the caller to serialise updates against reads.
func (t *Tree) MemStats() MemStats {
	return MemStats{Arena: t.ar.Stats(), Overlay: t.overlay, FoldIns: t.foldIns}
}

// build constructs the subtree over ts, whose summary seq (already
// containing all of ts) becomes the node's tBoxSeq.
func (t *Tree) build(ts []*traj.Trajectory, seq *tbox.Seq, parallel bool) *node {
	n := &node{seq: seq, members: ts, maxLen: maxLength(ts)}
	if len(ts) <= t.opt.LeafSize {
		return n
	}
	groups, seqs := t.partition(ts)
	if len(groups) < 2 {
		return n // cannot split further; oversized leaf
	}
	if !t.opt.DisableVantage {
		n.vps = vantage.Select(ts, t.opt.NumVPs, t.rng)
		n.descs = make([][]float64, len(ts))
		for i, m := range ts {
			n.descs[i] = vantage.Descriptor(m, n.vps)
		}
	}
	n.children = make([]*node, len(groups))
	if parallel {
		var wg sync.WaitGroup
		sem := make(chan struct{}, runtime.NumCPU())
		// Children need their own RNG streams to stay deterministic-ish;
		// derive from the parent seed.
		for i := range groups {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				sub := &Tree{opt: t.opt, rng: rand.New(rand.NewSource(t.opt.Seed + int64(i) + 1))}
				n.children[i] = sub.build(groups[i], seqs[i], false)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range groups {
			n.children[i] = t.build(groups[i], seqs[i], false)
		}
	}
	return n
}

func maxLength(ts []*traj.Trajectory) float64 {
	var max float64
	for _, t := range ts {
		if l := t.Length(); l > max {
			max = l
		}
	}
	return max
}

// Stats carries per-query instrumentation used by the experiments. It is
// the unified backend.Stats type every metric backend answers with;
// DistanceCalls counts exact EDwP evaluations here.
type Stats = backend.Stats

// Result is one k-NN answer, the unified backend.Result type.
type Result = backend.Result

// String renders a brief tree summary.
func (t *Tree) String() string {
	return fmt.Sprintf("TrajTree[%d trajectories, height %d]", t.size, t.Height())
}

// checkInvariants walks the tree verifying structural invariants; tests use
// it after builds and updates.
func (t *Tree) checkInvariants() error {
	if t.root == nil {
		if t.size != 0 {
			return fmt.Errorf("nil root with size %d", t.size)
		}
		return nil
	}
	count := 0
	var walk func(n *node) error
	walk = func(n *node) error {
		if n.leaf() {
			count += len(n.members)
			for _, m := range n.members {
				if m.Length() > n.maxLen+1e-9 {
					return fmt.Errorf("leaf maxLen %v below member %d length %v", n.maxLen, m.ID, m.Length())
				}
			}
			return nil
		}
		sub := 0
		for _, c := range n.children {
			sub += len(c.members)
			if c.maxLen > n.maxLen+1e-9 {
				return fmt.Errorf("child maxLen %v exceeds parent %v", c.maxLen, n.maxLen)
			}
			if err := walk(c); err != nil {
				return err
			}
		}
		if sub != len(n.members) {
			return fmt.Errorf("internal node members %d != children total %d", len(n.members), sub)
		}
		if n.descs != nil && len(n.descs) != len(n.members) {
			return fmt.Errorf("descriptor count %d != member count %d", len(n.descs), len(n.members))
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("leaf total %d != size %d", count, t.size)
	}
	return nil
}
