// Deprecated-API regression coverage:
//
//lint:file-ignore SA1019 pins the deprecated wrappers against the bounded kernel on purpose.
package trajtree

import (
	"math"
	"math/rand"
	"testing"

	"trajmatch/internal/core"
	"trajmatch/internal/pqueue"
	"trajmatch/internal/traj"
)

// referenceKNN is the seed implementation's sequential scan: unbounded
// exact distances offered in database order. The bounded index search must
// reproduce its answers byte-for-byte.
func referenceKNN(db []*traj.Trajectory, q *traj.Trajectory, k int, cumulative bool) []Result {
	ans := pqueue.NewTopK[*traj.Trajectory](k)
	for _, tr := range db {
		d := core.AvgDistance(q, tr)
		if cumulative {
			d = core.Distance(q, tr)
		}
		ans.Offer(tr, d)
	}
	items := ans.Items()
	out := make([]Result, len(items))
	for i, it := range items {
		out[i] = Result{Traj: it.Value, Dist: it.Priority}
	}
	return out
}

// referenceRange is the seed RangeSearch semantics by unbounded scan.
func referenceRange(db []*traj.Trajectory, q *traj.Trajectory, radius float64) []Result {
	var out []Result
	for _, tr := range db {
		if d := core.AvgDistance(q, tr); d <= radius {
			out = append(out, Result{Traj: tr, Dist: d})
		}
	}
	sortResults(out)
	return out
}

func sameResults(t *testing.T, label string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].Traj.ID != want[i].Traj.ID {
			t.Fatalf("%s: result %d is T%d, want T%d", label, i, got[i].Traj.ID, want[i].Traj.ID)
		}
		if got[i].Dist != want[i].Dist {
			// Byte-identical, not approximately equal: the bounded kernel
			// must return the exact unbounded value whenever it returns at
			// all.
			t.Fatalf("%s: result %d dist %v != %v (T%d)", label, i, got[i].Dist, want[i].Dist, got[i].Traj.ID)
		}
	}
}

// TestBoundedKNNMatchesSeedScan drives randomized k-NN workloads through
// the bounded index search and checks byte-identical agreement with the
// unbounded sequential scan, while also proving the early-abandon fast
// path actually fires (Stats.EarlyAbandons > 0 across the workload).
func TestBoundedKNNMatchesSeedScan(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	db := testDB(rng, 140)
	tree, err := New(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	totalAbandons := 0
	for it := 0; it < 25; it++ {
		q := db[rng.Intn(len(db))].Clone()
		q.ID = 5_000_000 + it
		if it%3 == 0 { // also query off-database shapes
			for i := range q.Points {
				q.Points[i].X += rng.NormFloat64() * 10
				q.Points[i].Y += rng.NormFloat64() * 10
			}
		}
		k := 1 + rng.Intn(12)
		got, st := tree.KNN(q, k)
		sameResults(t, "KNN", got, referenceKNN(db, q, k, false))
		brute := tree.KNNBrute(q, k)
		sameResults(t, "KNNBrute", brute, referenceKNN(db, q, k, false))
		totalAbandons += st.EarlyAbandons
		if st.EarlyAbandons > st.DistanceCalls {
			t.Fatalf("EarlyAbandons %d exceeds DistanceCalls %d", st.EarlyAbandons, st.DistanceCalls)
		}
	}
	if totalAbandons == 0 {
		t.Error("early-abandon fast path never fired across the workload")
	}
}

func TestBoundedKNNMatchesSeedScanCumulative(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	db := testDB(rng, 100)
	opt := testOptions()
	opt.Cumulative = true
	tree, err := New(db, opt)
	if err != nil {
		t.Fatal(err)
	}
	for it := 0; it < 10; it++ {
		q := db[rng.Intn(len(db))].Clone()
		q.ID = 5_000_000 + it
		got, _ := tree.KNN(q, 8)
		sameResults(t, "KNN(cumulative)", got, referenceKNN(db, q, 8, true))
	}
}

// TestBoundedRangeMatchesSeedScan checks RangeSearch under the radius
// bound: identical membership, distances and order versus the unbounded
// linear scan, with abandons observed for out-of-range members.
func TestBoundedRangeMatchesSeedScan(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	db := testDB(rng, 140)
	tree, err := New(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	totalAbandons := 0
	for it := 0; it < 20; it++ {
		q := db[rng.Intn(len(db))].Clone()
		q.ID = 6_000_000 + it
		// Radii spanning tiny (abandon-heavy) to generous (most kept).
		for _, radius := range []float64{0.01, 0.05, 0.2, 1.0} {
			got, st := tree.RangeSearch(q, radius)
			sameResults(t, "RangeSearch", got, referenceRange(db, q, radius))
			totalAbandons += st.EarlyAbandons
		}
	}
	if totalAbandons == 0 {
		t.Error("range search never abandoned an out-of-radius member")
	}
}

// Repeated queries must not leak state through the pooled visit sets.
func TestVisitSetReuseAcrossQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	db := testDB(rng, 80)
	tree, err := New(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	q := db[7].Clone()
	q.ID = 7_000_000
	first, _ := tree.KNN(q, 9)
	for it := 0; it < 30; it++ {
		again, _ := tree.KNN(q, 9)
		sameResults(t, "repeat", again, first)
	}
	if first[0].Dist != 0 {
		t.Fatalf("self-query should find its source at distance 0, got %v", first[0].Dist)
	}
	if math.IsInf(first[len(first)-1].Dist, 1) {
		t.Fatal("answer set contains +Inf distance")
	}
}
