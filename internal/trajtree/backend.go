package trajtree

import (
	"trajmatch/internal/backend"
	"trajmatch/internal/traj"
)

// MetricName is the registered backend identifier of the EDwP TrajTree:
// the default metric of the serving stack.
const MetricName = "edwp"

func init() { backend.Register(MetricName) }

// The Tree is the reference backend.Backend implementation and the only
// fully capable one: searchable (whole-trajectory and sub-trajectory),
// mutable in place, and persistent through Save/Load.
var (
	_ backend.Backend     = (*Tree)(nil)
	_ backend.SubSearcher = (*Tree)(nil)
	_ backend.Mutable     = (*Tree)(nil)
)

// BackendSpec returns the buildable backend spec for EDwP over a
// TrajTree with the given options.
func BackendSpec(opt Options) backend.Spec {
	return backend.Spec{
		Name: MetricName,
		Build: func(db []*traj.Trajectory) (backend.Backend, error) {
			return New(db, opt)
		},
	}
}
