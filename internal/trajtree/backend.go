package trajtree

import (
	"trajmatch/internal/backend"
	"trajmatch/internal/core"
	"trajmatch/internal/traj"
)

// MetricName is the registered backend identifier of the EDwP TrajTree:
// the default metric of the serving stack.
const MetricName = "edwp"

func init() { backend.Register(MetricName) }

// The Tree is the reference backend.Backend implementation and the only
// fully capable one: searchable (whole-trajectory and sub-trajectory),
// mutable in place, and persistent through Save/Load.
var (
	_ backend.Backend      = (*Tree)(nil)
	_ backend.SubSearcher  = (*Tree)(nil)
	_ backend.Mutable      = (*Tree)(nil)
	_ backend.Distancer    = (*Tree)(nil)
	_ backend.SubDistancer = (*Tree)(nil)
)

// DistanceBetween evaluates the tree's query distance (cumulative or
// segment-averaged EDwP, per Options.Cumulative) between two
// trajectories under the bounded-kernel contract — the live-track scan
// evaluates unindexed tracks through it with the same semantics as an
// indexed search.
func (t *Tree) DistanceBetween(q, tr *traj.Trajectory, limit float64, ctl *backend.Ctl) (float64, bool) {
	return t.distBounded(q, tr, limit, ctl.CancelFlag())
}

// SubDistanceBetween evaluates EDwPsub (Eq. 6): q against the best
// contiguous sub-trajectory of tr, bounded.
func (t *Tree) SubDistanceBetween(q, tr *traj.Trajectory, limit float64, ctl *backend.Ctl) (float64, bool) {
	return core.SubDistanceBoundedCancel(q, tr, limit, ctl.CancelFlag())
}

// BackendSpec returns the buildable backend spec for EDwP over a
// TrajTree with the given options.
func BackendSpec(opt Options) backend.Spec {
	return backend.Spec{
		Name: MetricName,
		Build: func(db []*traj.Trajectory) (backend.Backend, error) {
			return New(db, opt)
		},
	}
}
