// Deprecated-API regression coverage:
//
//lint:file-ignore SA1019 pins the deprecated KNN wrapper on purpose.
package trajtree

import (
	"math"
	"math/rand"
	"testing"

	"trajmatch/internal/core"
	"trajmatch/internal/traj"
)

// testDB builds a database of random-walk trajectories clustered around a
// few hubs, loosely shaped like city trips.
func testDB(rng *rand.Rand, n int) []*traj.Trajectory {
	hubs := [][2]float64{{0, 0}, {100, 0}, {50, 90}, {120, 120}}
	db := make([]*traj.Trajectory, n)
	for i := range db {
		h := hubs[rng.Intn(len(hubs))]
		pts := make([]traj.Point, 4+rng.Intn(16))
		x, y := h[0]+rng.NormFloat64()*5, h[1]+rng.NormFloat64()*5
		for j := range pts {
			pts[j] = traj.P(x, y, float64(j)*30)
			x += rng.NormFloat64() * 3
			y += rng.NormFloat64() * 3
		}
		db[i] = traj.New(i, pts)
	}
	return db
}

func testOptions() Options {
	return Options{NumVPs: 12, LeafSize: 5, PivotCandidates: 24, Seed: 1}
}

func TestBuildInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	db := testDB(rng, 120)
	tree, err := New(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if tree.Size() != len(db) {
		t.Errorf("Size = %d, want %d", tree.Size(), len(db))
	}
	if tree.Height() < 2 {
		t.Errorf("tree did not branch: height %d", tree.Height())
	}
	if err := tree.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	single := traj.New(0, []traj.Point{traj.P(0, 0, 0)})
	if _, err := New([]*traj.Trajectory{single}, testOptions()); err == nil {
		t.Error("1-point trajectory accepted")
	}
	a := traj.FromXY(7, 0, 0, 1, 1)
	b := traj.FromXY(7, 2, 2, 3, 3)
	if _, err := New([]*traj.Trajectory{a, b}, testOptions()); err == nil {
		t.Error("duplicate IDs accepted")
	}
}

func TestEmptyTree(t *testing.T) {
	tree, err := New(nil, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res, _ := tree.KNN(traj.FromXY(0, 0, 0, 1, 1), 5); len(res) != 0 {
		t.Errorf("kNN on empty tree returned %d results", len(res))
	}
}

// The central correctness property (Section IV-G: "The k-NN answer set is
// exact and optimal"): TrajTree's answers match a brute-force scan.
func TestKNNExactlyMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	db := testDB(rng, 150)
	tree, err := New(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for it := 0; it < 25; it++ {
		q := testDB(rng, 1)[0]
		q.ID = 10_000 + it
		for _, k := range []int{1, 5, 10} {
			got, _ := tree.KNN(q, k)
			want := tree.KNNBrute(q, k)
			if len(got) != len(want) {
				t.Fatalf("k=%d: %d results, want %d", k, len(got), len(want))
			}
			for i := range got {
				// Compare by distance (ties may reorder IDs).
				if math.Abs(got[i].Dist-want[i].Dist) > 1e-9*(1+want[i].Dist) {
					t.Fatalf("k=%d rank %d: dist %v, want %v (IDs %d vs %d)",
						k, i, got[i].Dist, want[i].Dist, got[i].Traj.ID, want[i].Traj.ID)
				}
			}
		}
	}
}

func TestKNNExactWithVantageDisabled(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	db := testDB(rng, 100)
	opt := testOptions()
	opt.DisableVantage = true
	tree, err := New(db, opt)
	if err != nil {
		t.Fatal(err)
	}
	q := testDB(rng, 1)[0]
	q.ID = 9999
	got, _ := tree.KNN(q, 10)
	want := tree.KNNBrute(q, 10)
	for i := range got {
		if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
			t.Fatalf("rank %d: %v vs %v", i, got[i].Dist, want[i].Dist)
		}
	}
}

func TestKNNCumulativeMode(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	db := testDB(rng, 80)
	opt := testOptions()
	opt.Cumulative = true
	tree, err := New(db, opt)
	if err != nil {
		t.Fatal(err)
	}
	q := testDB(rng, 1)[0]
	q.ID = 9999
	got, _ := tree.KNN(q, 5)
	want := tree.KNNBrute(q, 5)
	for i := range got {
		if math.Abs(got[i].Dist-want[i].Dist) > 1e-6*(1+want[i].Dist) {
			t.Fatalf("rank %d: %v vs %v", i, got[i].Dist, want[i].Dist)
		}
	}
	// Cumulative distances must agree with core.Distance.
	if d := core.Distance(q, got[0].Traj); math.Abs(d-got[0].Dist) > 1e-9 {
		t.Errorf("result dist %v != core.Distance %v", got[0].Dist, d)
	}
}

func TestKNNPrunes(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	db := testDB(rng, 200)
	tree, err := New(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	q := testDB(rng, 1)[0]
	q.ID = 9999
	_, st := tree.KNN(q, 5)
	if st.DistanceCalls >= len(db) {
		t.Errorf("no pruning: %d distance calls for %d trajectories", st.DistanceCalls, len(db))
	}
	if st.NodesPruned == 0 {
		t.Error("no nodes pruned")
	}
}

func TestKNNParallelBuildSameAnswers(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	db := testDB(rng, 120)
	opt := testOptions()
	opt.Parallel = true
	par, err := New(db, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := par.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	q := testDB(rng, 1)[0]
	q.ID = 9999
	got, _ := par.KNN(q, 8)
	want := par.KNNBrute(q, 8)
	for i := range got {
		if math.Abs(got[i].Dist-want[i].Dist) > 1e-9*(1+want[i].Dist) {
			t.Fatalf("rank %d: %v vs %v", i, got[i].Dist, want[i].Dist)
		}
	}
}

func TestKNNKLargerThanDB(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	db := testDB(rng, 12)
	tree, err := New(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	q := testDB(rng, 1)[0]
	q.ID = 9999
	got, _ := tree.KNN(q, 50)
	if len(got) != len(db) {
		t.Errorf("k>n returned %d results, want %d", len(got), len(db))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Dist < got[i-1].Dist {
			t.Error("results not sorted")
		}
	}
}

func TestInsertThenQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	db := testDB(rng, 60)
	opt := testOptions()
	opt.RebuildRatio = -1 // exercise the incremental path, not rebuilds
	tree, err := New(db[:40], opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range db[40:] {
		if err := tree.Insert(tr); err != nil {
			t.Fatal(err)
		}
	}
	if tree.Size() != 60 {
		t.Fatalf("Size = %d, want 60", tree.Size())
	}
	if err := tree.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	q := testDB(rng, 1)[0]
	q.ID = 9999
	got, _ := tree.KNN(q, 10)
	want := tree.KNNBrute(q, 10)
	for i := range got {
		if math.Abs(got[i].Dist-want[i].Dist) > 1e-9*(1+want[i].Dist) {
			t.Fatalf("after inserts, rank %d: %v vs %v", i, got[i].Dist, want[i].Dist)
		}
	}
}

func TestInsertDuplicateRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	db := testDB(rng, 20)
	tree, err := New(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert(db[0]); err == nil {
		t.Error("duplicate insert accepted")
	}
}

func TestInsertIntoEmpty(t *testing.T) {
	tree, err := New(nil, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr := traj.FromXY(1, 0, 0, 5, 5)
	if err := tree.Insert(tr); err != nil {
		t.Fatal(err)
	}
	if tree.Size() != 1 {
		t.Errorf("Size = %d", tree.Size())
	}
	got, _ := tree.KNN(traj.FromXY(2, 0, 0, 5, 6), 1)
	if len(got) != 1 || got[0].Traj.ID != 1 {
		t.Errorf("kNN after insert = %v", got)
	}
}

func TestDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	db := testDB(rng, 50)
	opt := testOptions()
	opt.RebuildRatio = -1
	tree, err := New(db, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Delete(db[7].ID) {
		t.Fatal("delete reported missing")
	}
	if tree.Delete(db[7].ID) {
		t.Error("double delete succeeded")
	}
	if tree.Size() != 49 {
		t.Errorf("Size = %d, want 49", tree.Size())
	}
	if tree.Lookup(db[7].ID) != nil {
		t.Error("deleted trajectory still found")
	}
	// Deleted trajectory never appears in results.
	q := testDB(rng, 1)[0]
	q.ID = 9999
	got, _ := tree.KNN(q, 50)
	for _, r := range got {
		if r.Traj.ID == db[7].ID {
			t.Error("deleted trajectory returned by kNN")
		}
	}
	if len(got) != 49 {
		t.Errorf("kNN returned %d results, want 49", len(got))
	}
}

func TestAutoRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	db := testDB(rng, 40)
	opt := testOptions()
	opt.RebuildRatio = 0.1
	tree, err := New(db[:30], opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range db[30:] {
		if err := tree.Insert(tr); err != nil {
			t.Fatal(err)
		}
	}
	// A rebuild resets the modification counter, so after 10 inserts the
	// counter must show fewer than 10 if any rebuild fired.
	if tree.mods >= 10 {
		t.Errorf("auto-rebuild did not trigger: mods = %d", tree.mods)
	}
	if tree.Size() != 40 {
		t.Errorf("Size = %d, want 40", tree.Size())
	}
	if err := tree.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestVPUpperBoundIsUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	db := testDB(rng, 120)
	tree, err := New(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for it := 0; it < 10; it++ {
		q := testDB(rng, 1)[0]
		q.ID = 9999
		k := 5
		ub, _ := tree.VPUpperBound(q, k)
		exact := tree.KNNBrute(q, k)
		kth := exact[len(exact)-1].Dist
		if ub < kth-1e-9 {
			t.Fatalf("VP upper bound %v below true k-th distance %v", ub, kth)
		}
	}
}

func TestConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	db := testDB(rng, 100)
	tree, err := New(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	queries := testDB(rand.New(rand.NewSource(84)), 16)
	done := make(chan []Result, len(queries))
	for _, q := range queries {
		q := q
		q.ID += 50_000
		go func() {
			res, _ := tree.KNN(q, 5)
			done <- res
		}()
	}
	for range queries {
		res := <-done
		if len(res) != 5 {
			t.Errorf("concurrent query returned %d results", len(res))
		}
	}
}
