package trajtree

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"trajmatch/internal/arena"
)

func saveArenaFile(t *testing.T, tree *Tree) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "shard.arena")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.SaveArena(f); err != nil {
		t.Fatalf("save arena: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestArenaRoundTripAnswersIdentically is the arena-snapshot twin of
// the gob round-trip acceptance test: a tree reloaded through the
// mmap-able format must answer KNN and RangeSearch byte-identically —
// same IDs, distances, order, and per-query statistics — which proves
// the reconstructed nodes, summaries, vantage descriptors, and member
// placement are the same tree served from slab-aliased memory.
func TestArenaRoundTripAnswersIdentically(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	db := testDB(rng, 130)
	tree, err := New(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadArena(saveArenaFile(t, tree))
	if err != nil {
		t.Fatalf("load arena: %v", err)
	}
	if loaded.Size() != tree.Size() || loaded.Height() != tree.Height() {
		t.Fatalf("loaded shape %d/%d, want %d/%d", loaded.Size(), loaded.Height(), tree.Size(), tree.Height())
	}
	if ms := loaded.MemStats(); ms.Arena.Members != tree.Size() || ms.Overlay != 0 {
		t.Fatalf("mem stats %+v after clean load", ms)
	}
	for it := 0; it < 15; it++ {
		q := db[rng.Intn(len(db))].Clone()
		q.ID = 8_000_000 + it
		if it%2 == 0 {
			for i := range q.Points {
				q.Points[i].X += rng.NormFloat64() * 8
				q.Points[i].Y += rng.NormFloat64() * 8
			}
		}
		k := 1 + rng.Intn(9)
		got, gst, _, err := loaded.SearchKNN(q, k, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, wst, _, err := tree.SearchKNN(q, k, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, "SearchKNN", got, want)
		if gst != wst {
			t.Fatalf("SearchKNN stats diverge after arena reload: %+v != %+v", gst, wst)
		}
		radius := []float64{0.05, 0.3, 1.5}[it%3]
		gotR, _, _, err := loaded.SearchRange(q, radius, nil)
		if err != nil {
			t.Fatal(err)
		}
		wantR, _, _, err := tree.SearchRange(q, radius, nil)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, "SearchRange", gotR, wantR)
	}
}

// TestArenaRoundTripWithOverlay pins the overlay path: members inserted
// after the last rebuild have no arena entry, ride in the snapshot's
// overlay sections, and come back answering identically; a rebuild on
// the loaded tree then folds them into fresh heap slabs.
func TestArenaRoundTripWithOverlay(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	db := testDB(rng, 90)
	tree, err := New(db[:70], testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range db[70:] {
		if err := tree.Insert(tr); err != nil {
			t.Fatal(err)
		}
	}
	if tree.MemStats().Overlay == 0 {
		t.Fatal("test needs a live overlay; inserts were folded unexpectedly")
	}
	loaded, err := LoadArena(saveArenaFile(t, tree))
	if err != nil {
		t.Fatalf("load arena: %v", err)
	}
	if got, want := loaded.MemStats().Overlay, tree.MemStats().Overlay; got != want {
		t.Fatalf("overlay %d after load, want %d", got, want)
	}
	q := db[80].Clone()
	q.ID = 9_000_000
	got, _, _, err := loaded.SearchKNN(q, 5, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _, _, err := tree.SearchKNN(q, 5, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "SearchKNN overlay", got, want)

	// The loaded tree must remain fully mutable: a rebuild folds the
	// overlay into fresh heap slabs and leaves the old mapping behind.
	if err := loaded.Rebuild(); err != nil {
		t.Fatalf("rebuild after arena load: %v", err)
	}
	ms := loaded.MemStats()
	if ms.Overlay != 0 || ms.Arena.Members != loaded.Size() || ms.Arena.Mapped {
		t.Fatalf("after rebuild: %+v", ms)
	}
	got2, _, _, err := loaded.SearchKNN(q, 5, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "SearchKNN after rebuild", got2, want)
}

// TestArenaPureInsertTree pins the nil-arena save path: a tree grown
// purely by Insert from empty has no arena, so the snapshot stores every
// member in the overlay sections.
func TestArenaPureInsertTree(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	db := testDB(rng, 40)
	tree, err := New(nil, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range db {
		if err := tree.Insert(tr); err != nil {
			t.Fatal(err)
		}
	}
	loaded, err := LoadArena(saveArenaFile(t, tree))
	if err != nil {
		t.Fatalf("load arena: %v", err)
	}
	q := db[7].Clone()
	q.ID = 9_100_000
	got, _, _, err := loaded.SearchKNN(q, 3, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _, _, err := tree.SearchKNN(q, 3, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "SearchKNN pure-insert", got, want)
}

// TestArenaEmptyTree round-trips a tree with no members.
func TestArenaEmptyTree(t *testing.T) {
	tree, err := New(nil, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadArena(saveArenaFile(t, tree))
	if err != nil {
		t.Fatalf("load arena: %v", err)
	}
	if loaded.Size() != 0 {
		t.Fatalf("size %d", loaded.Size())
	}
}

// TestArenaLoadCorrupt pins the failure contract at this layer: damage
// anywhere in the file — including the flattened tree payload — yields
// an error wrapping arena.ErrCorrupt, never a panic or a wrong tree.
func TestArenaLoadCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	tree, err := New(testDB(rng, 60), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	path := saveArenaFile(t, tree)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	step := len(good)/61 + 1
	for off := 0; off < len(good); off += step {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x40
		p := filepath.Join(dir, "bad.arena")
		if err := os.WriteFile(p, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("offset %d: panic: %v", off, r)
				}
			}()
			if _, err := LoadArena(p); !errors.Is(err, arena.ErrCorrupt) {
				t.Errorf("offset %d: err = %v, want ErrCorrupt", off, err)
			}
		}()
	}
	for _, n := range []int{0, 10, len(good) / 2, len(good) - 2} {
		p := filepath.Join(dir, "trunc.arena")
		if err := os.WriteFile(p, good[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadArena(p); !errors.Is(err, arena.ErrCorrupt) {
			t.Errorf("truncate %d: err = %v, want ErrCorrupt", n, err)
		}
	}
}
