// Deprecated-API regression coverage:
//
//lint:file-ignore SA1019 exercises the deprecated KNN/KNNWithBound/KNNShared wrappers on purpose.
package trajtree

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"trajmatch/internal/pqueue"
	"trajmatch/internal/traj"
)

func TestSharedBoundTightensMonotonically(t *testing.T) {
	b := NewSharedBound(math.Inf(1))
	if !math.IsInf(b.Load(), 1) {
		t.Fatalf("fresh bound %v, want +Inf", b.Load())
	}
	b.Tighten(5)
	b.Tighten(9) // looser: ignored
	if b.Load() != 5 {
		t.Fatalf("bound %v after Tighten(5), Tighten(9); want 5", b.Load())
	}
	b.Tighten(2)
	if b.Load() != 2 {
		t.Fatalf("bound %v after Tighten(2); want 2", b.Load())
	}

	// Concurrent tightening converges to the minimum offered value.
	b = NewSharedBound(math.Inf(1))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 100; i > 0; i-- {
				b.Tighten(float64(g*100 + i))
			}
		}(g)
	}
	wg.Wait()
	if b.Load() != 1 {
		t.Fatalf("concurrent tighten converged to %v, want 1", b.Load())
	}
}

// TestKNNWithBoundInfMatchesKNN pins the compatibility contract: an
// infinite seed bound is exactly the plain search.
func TestKNNWithBoundInfMatchesKNN(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	db := testDB(rng, 100)
	tree, err := New(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for it := 0; it < 10; it++ {
		q := db[rng.Intn(len(db))].Clone()
		q.ID = 10_000_000 + it
		got, gst := tree.KNNWithBound(q, 6, math.Inf(1))
		want, wst := tree.KNN(q, 6)
		sameResults(t, "KNNWithBound(+Inf)", got, want)
		if gst != wst {
			t.Fatalf("stats diverge: %+v != %+v", gst, wst)
		}
	}
}

// TestKNNWithBoundPrunesAboveLimit seeds the search with a finite
// admissible bound and checks two things: every returned distance is
// within the bound, and the results agree with the plain search's
// results filtered to the bound — the seed prunes work, never answers.
func TestKNNWithBoundPrunesAboveLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	db := testDB(rng, 120)
	tree, err := New(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	prunedSomething := false
	for it := 0; it < 15; it++ {
		q := db[rng.Intn(len(db))].Clone()
		q.ID = 11_000_000 + it
		k := 4 + rng.Intn(6)
		full, _ := tree.KNN(q, k)
		// Seed with the median answer distance: a valid upper bound on
		// the k/2-th best, so querying for k/2 neighbours must return
		// exactly the first k/2 of the full answer.
		half := len(full) / 2
		if half == 0 {
			continue
		}
		limit := full[half-1].Dist
		got, st := tree.KNNWithBound(q, half, limit)
		sameResults(t, "KNNWithBound(seeded)", got, full[:half])
		for _, r := range got {
			if r.Dist > limit {
				t.Fatalf("result %v exceeds seed bound %v", r.Dist, limit)
			}
		}
		if st.EarlyAbandons > 0 || st.NodesPruned > 0 {
			prunedSomething = true
		}
	}
	if !prunedSomething {
		t.Error("a finite seed bound never pruned anything across the workload")
	}
}

// TestKNNSharedPartitionsMatchSingleTree is the trajtree-level fan-out
// property behind the sharded engine: partition one corpus into disjoint
// trees, run KNNShared over all partitions with one shared bound, merge
// with a k-bounded heap, and compare with the single tree over the whole
// corpus. Run both sequentially and with goroutines (the latter matters
// under -race).
func TestKNNSharedPartitionsMatchSingleTree(t *testing.T) {
	rng := rand.New(rand.NewSource(117))
	db := testDB(rng, 150)
	whole, err := New(db, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, parts := range []int{2, 4, 7} {
		groups := make([][]*traj.Trajectory, parts)
		for i, tr := range db {
			groups[i%parts] = append(groups[i%parts], tr)
		}
		trees := make([]*Tree, parts)
		for i := range groups {
			if trees[i], err = New(groups[i], testOptions()); err != nil {
				t.Fatal(err)
			}
		}
		for it := 0; it < 12; it++ {
			q := db[rng.Intn(len(db))].Clone()
			q.ID = 12_000_000 + it
			k := 1 + rng.Intn(9)
			want, _ := whole.KNN(q, k)

			for _, concurrent := range []bool{false, true} {
				bound := NewSharedBound(math.Inf(1))
				per := make([][]Result, parts)
				if concurrent {
					var wg sync.WaitGroup
					for i := range trees {
						wg.Add(1)
						go func(i int) {
							defer wg.Done()
							per[i], _ = trees[i].KNNShared(q, k, bound)
						}(i)
					}
					wg.Wait()
				} else {
					for i := range trees {
						per[i], _ = trees[i].KNNShared(q, k, bound)
					}
				}
				merged := pqueue.NewTopK[*traj.Trajectory](k)
				for _, rs := range per {
					for _, r := range rs {
						merged.Offer(r.Traj, r.Dist)
					}
				}
				items := merged.Items()
				got := make([]Result, len(items))
				for i, it := range items {
					got[i] = Result{Traj: it.Value, Dist: it.Priority}
				}
				sameResults(t, "merged partitions", got, want)
			}
		}
	}
}
