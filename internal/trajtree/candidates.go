package trajtree

import (
	"trajmatch/internal/arena"
	"trajmatch/internal/backend"
	"trajmatch/internal/core"
	"trajmatch/internal/tbox"
	"trajmatch/internal/traj"
)

var _ backend.CandidateSearcher = (*Tree)(nil)

// candLBBoxes is the box budget of the per-candidate summaries used
// during prefilter verification. The tree's node bounds cover whole
// subtrees, not arbitrary member subsets, so verification bounds each
// candidate individually — a coarse budget keeps the bound DP at
// O(len(q)·candLBBoxes) per candidate, a fraction of one exact
// evaluation, while still rejecting most of the admitted set before any
// kernel runs. It equals the arena's per-member budget so the summaries
// are precomputed at build time and only overlay members (inserted
// since the last rebuild) are summarised on the fly.
const candLBBoxes = arena.MemberBoxes

// SearchKNNIn is the backend.CandidateSearcher capability: exact EDwP
// k-NN restricted to the prefilter's candidate IDs. Each candidate gets
// an admissible per-member lower bound (core.LowerBound over its own
// tbox summary — the same Theorem 2 bound the tree applies to subtrees,
// normalized for the averaged variant exactly as Tree.lower does), so
// the scan evaluates in tightest-first order and prunes against the
// running k-th best and the shared bound before starting a kernel. IDs
// not present in the tree are skipped silently; truncation and error
// semantics match SearchKNN.
func (t *Tree) SearchKNNIn(q *traj.Trajectory, ids []int, k int, bound *SharedBound, ctl *Ctl) ([]Result, Stats, bool, error) {
	var st Stats
	if t.root == nil || k <= 0 || len(ids) == 0 {
		return nil, st, false, ctl.Err()
	}
	want := make(map[int]struct{}, len(ids))
	for _, id := range ids {
		want[id] = struct{}{}
	}
	// One pass over the member list resolves every candidate ID — the
	// tree's Lookup walks that list per call, which would be quadratic
	// here.
	sel := make([]*traj.Trajectory, 0, len(ids))
	for _, m := range t.root.members {
		if _, ok := want[m.ID]; ok {
			sel = append(sel, m)
		}
	}
	qLen := q.Length()
	qSeq := tbox.FromTrajectory(q, candLBBoxes)
	cands := make([]backend.Cand, len(sel))
	for i, m := range sel {
		if i%64 == 0 && ctl.Cancelled() {
			return nil, st, false, ctl.Err()
		}
		st.LowerBoundCalls++
		// EDwP is symmetric, so the box bound holds in both directions;
		// the max is admissible and noticeably tighter than either side.
		// Arena-resident members use their precomputed summary (built by
		// the identical FromTrajectory call, so the bound — and with it
		// the scan order — is bit-identical to summarising on the fly).
		var mseq core.Boxes
		if t.ar != nil {
			if ai, ok := t.ar.Lookup(m.ID); ok {
				mseq = t.ar.BoxSeq(ai)
			}
		}
		if mseq == nil {
			mseq = tbox.FromTrajectory(m, candLBBoxes)
		}
		lb := core.LowerBound(q, mseq)
		if rev := core.LowerBound(m, qSeq); rev > lb {
			lb = rev
		}
		if !t.opt.Cumulative {
			if den := qLen + m.Length(); den > 0 {
				lb /= den
			} else {
				lb = 0
			}
		}
		cands[i] = backend.Cand{I: i, ID: m.ID, LB: lb}
	}
	backend.SortCands(cands)
	res, truncated, err := backend.ScanKNN(cands, k, bound, ctl, &st,
		func(i int) *traj.Trajectory { return sel[i] },
		func(i int, limit float64) (float64, bool) {
			return t.distBounded(q, sel[i], limit, ctl.CancelFlag())
		})
	return res, st, truncated, err
}
