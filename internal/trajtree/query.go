package trajtree

import (
	"math"
	"sync"

	"trajmatch/internal/core"
	"trajmatch/internal/pqueue"
	"trajmatch/internal/traj"
	"trajmatch/internal/vantage"
)

// visitSet is a reusable generation-stamped membership set keyed by
// trajectory ID. Marking stamps the current generation; begin() starts a
// fresh query by bumping the generation, so no per-query clearing or
// allocation happens — stale entries simply stop matching. Instances are
// pooled: steady-state queries reuse a map that has already grown to the
// working-set size instead of allocating a map per call.
type visitSet struct {
	gen   uint64
	marks map[int]uint64
}

var visitPool = sync.Pool{
	New: func() any { return &visitSet{marks: make(map[int]uint64, 64)} },
}

// screenPool recycles the per-query segment screens of the leaf-level
// lower-bound pass; steady-state queries reset a warm screen instead of
// allocating one.
var screenPool = sync.Pool{
	New: func() any { return new(core.SegScreen) },
}

// begin invalidates all previous marks in O(1).
func (v *visitSet) begin() { v.gen++ }

func (v *visitSet) has(id int) bool { return v.marks[id] == v.gen }

func (v *visitSet) mark(id int) { v.marks[id] = v.gen }

// KNN returns the exact k nearest trajectories to q under EDwPavg (or
// cumulative EDwP when Options.Cumulative is set), together with query
// statistics. Results are sorted by ascending distance. It implements
// Algorithm 2: best-first traversal ordered by tBoxSeq lower bounds, with
// vantage-point top-k evaluations tightening the upper bound at every
// internal node.
//
// Every exact evaluation passes the current k-th best distance to the
// bounded kernel, which abandons the dynamic program as soon as the
// candidate provably cannot enter the answer set (Stats.EarlyAbandons
// counts those). The answer is identical to the unbounded search: a
// candidate is only ever rejected when its exact distance could not have
// displaced an answer.
//
// KNN is safe for concurrent use provided no Insert/Delete/Rebuild runs.
//
// Deprecated: use SearchKNN, which additionally supports cancellation
// and evaluation budgets. KNN(q, k) is SearchKNN(q, k, nil, nil) with
// the truncation flag and error dropped (both are always zero without a
// Ctl).
func (t *Tree) KNN(q *traj.Trajectory, k int) ([]Result, Stats) {
	res, st, _, _ := t.knnSearch(q, k, nil, nil)
	return res, st
}

// KNNWithBound is KNN seeded with an external upper bound: candidates
// whose distance exceeds limit are pruned from the very first evaluation,
// and subtrees whose lower bound is not below limit are never opened —
// even before the local answer set holds k members. The returned results
// therefore contain only distances ≤ limit (possibly fewer than k).
// KNNWithBound(q, k, +Inf) is identical to KNN(q, k).
//
// The caller's limit must be admissible: it must be a known upper bound
// on the global k-th-best distance (for example a k-th best already found
// in another shard of a partitioned corpus), otherwise true neighbours
// can be cut off.
//
// Deprecated: use SearchKNN with a bound seeded at limit
// (NewSharedBound(limit), or nil for an infinite limit).
func (t *Tree) KNNWithBound(q *traj.Trajectory, k int, limit float64) ([]Result, Stats) {
	var bound *SharedBound
	if !math.IsInf(limit, 1) {
		bound = NewSharedBound(limit)
	}
	res, st, _, _ := t.knnSearch(q, k, bound, nil)
	return res, st
}

// KNNShared is the fan-out entry point: the search prunes against
// bound in addition to its local k-th best, and publishes its own local
// k-th best back through bound.Tighten the moment its answer set fills.
// Concurrent KNNShared calls on disjoint trees therefore tighten each
// other: a close neighbour found in one shard abandons DP work in every
// other shard's search. The union of the per-shard results is a superset
// of the global k-NN set (see SharedBound for the admissibility
// argument); callers merge it with a k-bounded heap.
//
// Deprecated: use SearchKNN, which takes the same shared bound plus a
// cancellation/budget Ctl.
func (t *Tree) KNNShared(q *traj.Trajectory, k int, bound *SharedBound) ([]Result, Stats) {
	res, st, _, _ := t.knnSearch(q, k, bound, nil)
	return res, st
}

// knnSearch is the common best-first search. With a nil bound it is the
// plain Algorithm 2; with a bound it additionally prunes against — and
// tightens — the shared limit. ctl (may be nil) injects cancellation —
// polled between candidate pops here and per DP row inside the kernel —
// and the query-wide evaluation budget; an exhausted budget stops the
// search and marks the answer truncated.
func (t *Tree) knnSearch(q *traj.Trajectory, k int, bound *SharedBound, ctl *Ctl) ([]Result, Stats, bool, error) {
	var st Stats
	if t.root == nil || k <= 0 {
		return nil, st, false, ctl.Err()
	}
	qLen := q.Length()

	var cands pqueue.Min[*node]
	cands.Push(t.root, 0)
	ans := pqueue.NewTopK[*traj.Trajectory](k)
	processed := visitPool.Get().(*visitSet)
	processed.begin()
	defer visitPool.Put(processed)

	// The member screen shares one per-query segment table across every
	// candidate it rejects (see Tree.screenMember).
	var scr *core.SegScreen
	if t.ar != nil {
		scr = screenPool.Get().(*core.SegScreen)
		scr.Reset(q)
		defer screenPool.Put(scr)
	}

	// effLimit is the tightest admissible abandon limit currently known:
	// the local k-th best once the answer set is full, lowered further by
	// the shared bound when one is attached.
	effLimit := func() float64 {
		limit := math.Inf(1)
		if worst, full := ans.Worst(); full {
			limit = worst
		}
		if bound != nil {
			if b := bound.Load(); b < limit {
				limit = b
			}
		}
		return limit
	}

	// truncated flips when ctl's evaluation budget runs out; the search
	// then stops expanding and returns the best-effort answer so far.
	truncated := false

	// evaluate computes the (bounded) exact distance of tr and offers it
	// to the answer set, reporting whether it was kept. Abandoned
	// candidates are never offered: under a shared bound the local answer
	// set may not be full yet, and a +Inf entry would poison it.
	evaluate := func(tr *traj.Trajectory) bool {
		if !ctl.Take() {
			truncated = true
			return false
		}
		st.DistanceCalls++
		limit := effLimit()
		if scr != nil && t.screenMember(scr, qLen, tr, limit) {
			// The screen proves the bounded kernel would abandon this
			// candidate, so the evaluation is cut before the DP starts;
			// it is counted exactly as the abandoned evaluation it
			// replaces, keeping the stats — and every downstream
			// decision — identical to the unscreened search.
			st.EarlyAbandons++
			return false
		}
		d, abandoned := t.distBounded(q, tr, limit, ctl.CancelFlag())
		if abandoned {
			st.EarlyAbandons++
			return false
		}
		kept := ans.Offer(tr, d)
		if kept && bound != nil {
			if worst, full := ans.Worst(); full {
				bound.Tighten(worst)
			}
		}
		return kept
	}

	for cands.Len() > 0 && !truncated {
		if ctl.Cancelled() {
			// Cancellation poll between candidate pops. Any in-flight
			// kernel call the flag interrupted mis-reported its candidate
			// as abandoned, so the whole answer is discarded here.
			return nil, st, false, ctl.Err()
		}
		it := cands.Pop()
		if it.Priority >= effLimit() {
			// The queue is ordered by lower bound: nothing left can beat
			// the current k-th best (local or shared).
			st.NodesPruned += 1 + cands.Len()
			break
		}
		c := it.Value
		st.NodesVisited++
		if c.leaf() {
			for _, tr := range c.members {
				if truncated {
					break
				}
				if processed.has(tr.ID) {
					continue
				}
				processed.mark(tr.ID)
				evaluate(tr)
			}
			continue
		}
		// Step 1 (Alg. 2 lines 8–10): tighten the upper bound through the
		// node's vantage points. Candidates are evaluated in VD order and
		// the pass stops once consecutive candidates stop improving the
		// answer set — the bound is already as tight as this node can make
		// it. Small subtrees skip the pass: their members are reached
		// through bounds more cheaply (Options.VPMinMembers).
		if c.vps != nil && (len(c.members) >= t.opt.VPMinMembers || !ans.Full()) {
			qd := vantage.Descriptor(q, c.vps)
			top := vantage.TopK(qd, c.descs, k, func(i int) bool {
				return processed.has(c.members[i].ID)
			})
			misses := 0
			for _, idx := range top {
				if truncated {
					break
				}
				tr := c.members[idx]
				if processed.has(tr.ID) {
					continue
				}
				processed.mark(tr.ID)
				if evaluate(tr) {
					misses = 0
				} else if misses++; misses >= 2 && ans.Full() {
					break
				}
			}
		}
		// Step 2 (lines 11–13): push surviving children ordered by their
		// lower bounds. The bounded DP abandons against the current limit;
		// surviving bounds are exact, so the queue order — and with it the
		// result stream — is identical to the unbounded search.
		for _, child := range c.children {
			st.LowerBoundCalls++
			lb := t.lowerBounded(q, qLen, child, effLimit())
			if lb >= effLimit() {
				st.NodesPruned++
				continue
			}
			cands.Push(child, lb)
		}
	}

	if err := ctl.Err(); err != nil {
		// The context fired after the last pop (possibly poisoning the
		// final kernel calls); the answer cannot be trusted.
		return nil, st, false, err
	}
	items := ans.Items()
	out := make([]Result, len(items))
	for i, it := range items {
		out[i] = Result{Traj: it.Value, Dist: it.Priority}
	}
	return out, st, truncated, nil
}

// KNNBrute computes the exact k-NN by sequential scan with the same
// distance, for verification and as the "EDwP Sequential Scan" competitor
// of Figs. 5(j) and 6(a). The scan, too, bounds each evaluation by the
// running k-th best distance.
func (t *Tree) KNNBrute(q *traj.Trajectory, k int) []Result {
	ans := pqueue.NewTopK[*traj.Trajectory](k)
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		if n.leaf() {
			for _, tr := range n.members {
				limit := math.Inf(1)
				if worst, full := ans.Worst(); full {
					limit = worst
				}
				d, _ := t.distBounded(q, tr, limit, nil)
				ans.Offer(tr, d)
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	items := ans.Items()
	out := make([]Result, len(items))
	for i, it := range items {
		out[i] = Result{Traj: it.Value, Dist: it.Priority}
	}
	return out
}

// VPUpperBound returns the VP-based upper bound of Eq. 14 at the root: the
// largest exact distance among the root's VP-chosen k candidates. It
// underlies the UB-Factor experiments of Figs. 6(c)–(d). The second return
// is the candidate set's exact distances, sorted ascending.
func (t *Tree) VPUpperBound(q *traj.Trajectory, k int) (float64, []float64) {
	if t.root == nil || t.root.vps == nil {
		return 0, nil
	}
	qd := vantage.Descriptor(q, t.root.vps)
	top := vantage.TopK(qd, t.root.descs, k, nil)
	ds := make([]float64, 0, len(top))
	for _, idx := range top {
		ds = append(ds, t.dist(q, t.root.members[idx]))
	}
	ub := 0.0
	for _, d := range ds {
		if d > ub {
			ub = d
		}
	}
	// sort ascending for callers that want the full candidate profile
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
	return ub, ds
}
