package trajtree

import (
	"trajmatch/internal/pqueue"
	"trajmatch/internal/traj"
	"trajmatch/internal/vantage"
)

// KNN returns the exact k nearest trajectories to q under EDwPavg (or
// cumulative EDwP when Options.Cumulative is set), together with query
// statistics. Results are sorted by ascending distance. It implements
// Algorithm 2: best-first traversal ordered by tBoxSeq lower bounds, with
// vantage-point top-k evaluations tightening the upper bound at every
// internal node.
//
// KNN is safe for concurrent use provided no Insert/Delete/Rebuild runs.
func (t *Tree) KNN(q *traj.Trajectory, k int) ([]Result, Stats) {
	var st Stats
	if t.root == nil || k <= 0 {
		return nil, st
	}
	qLen := q.Length()

	var cands pqueue.Min[*node]
	cands.Push(t.root, 0)
	ans := pqueue.NewTopK[*traj.Trajectory](k)
	processed := make(map[int]bool)

	evaluate := func(tr *traj.Trajectory) {
		if processed[tr.ID] {
			return
		}
		processed[tr.ID] = true
		st.DistanceCalls++
		ans.Offer(tr, t.dist(q, tr))
	}

	for cands.Len() > 0 {
		it := cands.Pop()
		if worst, full := ans.Worst(); full && it.Priority >= worst {
			// The queue is ordered by lower bound: nothing left can beat
			// the current k-th best.
			st.NodesPruned += 1 + cands.Len()
			break
		}
		c := it.Value
		st.NodesVisited++
		if c.leaf() {
			for _, tr := range c.members {
				evaluate(tr)
			}
			continue
		}
		// Step 1 (Alg. 2 lines 8–10): tighten the upper bound through the
		// node's vantage points. Candidates are evaluated in VD order and
		// the pass stops once consecutive candidates stop improving the
		// answer set — the bound is already as tight as this node can make
		// it. Small subtrees skip the pass: their members are reached
		// through bounds more cheaply (Options.VPMinMembers).
		if c.vps != nil && (len(c.members) >= t.opt.VPMinMembers || !ans.Full()) {
			qd := vantage.Descriptor(q, c.vps)
			top := vantage.TopK(qd, c.descs, k, func(i int) bool {
				return processed[c.members[i].ID]
			})
			misses := 0
			for _, idx := range top {
				tr := c.members[idx]
				if processed[tr.ID] {
					continue
				}
				processed[tr.ID] = true
				st.DistanceCalls++
				if ans.Offer(tr, t.dist(q, tr)) {
					misses = 0
				} else if misses++; misses >= 2 && ans.Full() {
					break
				}
			}
		}
		// Step 2 (lines 11–13): push surviving children ordered by their
		// lower bounds.
		for _, child := range c.children {
			st.LowerBoundCalls++
			lb := t.lower(q, qLen, child)
			if worst, full := ans.Worst(); full && lb >= worst {
				st.NodesPruned++
				continue
			}
			cands.Push(child, lb)
		}
	}

	items := ans.Items()
	out := make([]Result, len(items))
	for i, it := range items {
		out[i] = Result{Traj: it.Value, Dist: it.Priority}
	}
	return out, st
}

// KNNBrute computes the exact k-NN by sequential scan with the same
// distance, for verification and as the "EDwP Sequential Scan" competitor
// of Figs. 5(j) and 6(a).
func (t *Tree) KNNBrute(q *traj.Trajectory, k int) []Result {
	ans := pqueue.NewTopK[*traj.Trajectory](k)
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		if n.leaf() {
			for _, tr := range n.members {
				ans.Offer(tr, t.dist(q, tr))
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	items := ans.Items()
	out := make([]Result, len(items))
	for i, it := range items {
		out[i] = Result{Traj: it.Value, Dist: it.Priority}
	}
	return out
}

// VPUpperBound returns the VP-based upper bound of Eq. 14 at the root: the
// largest exact distance among the root's VP-chosen k candidates. It
// underlies the UB-Factor experiments of Figs. 6(c)–(d). The second return
// is the candidate set's exact distances, sorted ascending.
func (t *Tree) VPUpperBound(q *traj.Trajectory, k int) (float64, []float64) {
	if t.root == nil || t.root.vps == nil {
		return 0, nil
	}
	qd := vantage.Descriptor(q, t.root.vps)
	top := vantage.TopK(qd, t.root.descs, k, nil)
	ds := make([]float64, 0, len(top))
	for _, idx := range top {
		ds = append(ds, t.dist(q, t.root.members[idx]))
	}
	ub := 0.0
	for _, d := range ds {
		if d > ub {
			ub = d
		}
	}
	// sort ascending for callers that want the full candidate profile
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
	return ub, ds
}
