package trajtree

import (
	"fmt"
	"math"

	"trajmatch/internal/tbox"
	"trajmatch/internal/traj"
	"trajmatch/internal/vantage"
)

// Insert adds a trajectory to the index following Section IV-F: the new
// trajectory descends to the child whose tBoxSeq expands the least, every
// node on the path absorbs it into its summary and descriptor table
// (existing pivots and vantage points are reused), and overflowing leaves
// are re-partitioned. When accumulated modifications exceed
// RebuildRatio × size the whole index is rebuilt, approximating the
// paper's "poor node" policy.
func (t *Tree) Insert(tr *traj.Trajectory) error {
	if err := tr.Validate(); err != nil {
		return fmt.Errorf("trajtree: %w", err)
	}
	if t.Lookup(tr.ID) != nil {
		return fmt.Errorf("trajtree: duplicate trajectory ID %d", tr.ID)
	}
	t.gen++
	if t.root == nil {
		t.root = &node{
			seq:     tbox.FromTrajectory(tr, t.opt.MaxBoxes),
			members: []*traj.Trajectory{tr},
			maxLen:  tr.Length(),
		}
		t.size = 1
		t.overlay++
		return nil
	}
	t.insertAt(t.root, tr)
	t.size++
	t.mods++
	// The new member lives on the heap until a rebuild folds it into
	// fresh arena slabs; until then the leaf screen skips it.
	t.overlay++
	t.maybeRebuild()
	return nil
}

func (t *Tree) insertAt(n *node, tr *traj.Trajectory) {
	n.seq.Insert(tr)
	n.members = append(n.members, tr)
	if l := tr.Length(); l > n.maxLen {
		n.maxLen = l
	}
	if n.vps != nil {
		n.descs = append(n.descs, vantage.Descriptor(tr, n.vps))
	}
	if n.leaf() {
		if len(n.members) > t.opt.LeafSize {
			t.splitLeaf(n)
		}
		return
	}
	best, bestCost := 0, math.Inf(1)
	for i, c := range n.children {
		if cost := c.seq.ExpansionCost(tr); cost < bestCost {
			bestCost, best = cost, i
		}
	}
	t.insertAt(n.children[best], tr)
}

// splitLeaf re-partitions an overflowing leaf in place, turning it into an
// internal node when Algorithm 1 finds at least two pivots.
func (t *Tree) splitLeaf(n *node) {
	groups, seqs := t.partition(n.members)
	if len(groups) < 2 {
		return // stays an oversized leaf
	}
	if !t.opt.DisableVantage {
		n.vps = vantage.Select(n.members, t.opt.NumVPs, t.rng)
		n.descs = make([][]float64, len(n.members))
		for i, m := range n.members {
			n.descs[i] = vantage.Descriptor(m, n.vps)
		}
	}
	n.children = make([]*node, len(groups))
	for i := range groups {
		n.children[i] = t.build(groups[i], seqs[i], false)
	}
}

// Delete removes the trajectory with the given ID, deleting its descriptor
// at every node from root to leaf while leaving the tBoxSeqs unchanged
// (Section IV-F). It reports whether the ID was present.
func (t *Tree) Delete(id int) bool {
	if t.root == nil {
		return false
	}
	if !t.deleteFrom(t.root, id) {
		return false
	}
	t.gen++
	t.size--
	t.mods++
	if t.ar == nil {
		t.overlay--
	} else if _, ok := t.ar.Lookup(id); !ok {
		t.overlay--
	}
	t.maybeRebuild()
	return true
}

func (t *Tree) deleteFrom(n *node, id int) bool {
	idx := -1
	for i, m := range n.members {
		if m.ID == id {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	if !n.leaf() {
		found := false
		for _, c := range n.children {
			if t.deleteFrom(c, id) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	n.members = append(n.members[:idx], n.members[idx+1:]...)
	if n.descs != nil {
		n.descs = append(n.descs[:idx], n.descs[idx+1:]...)
	}
	return true
}

// Lookup returns the indexed trajectory with the given ID, or nil.
func (t *Tree) Lookup(id int) *traj.Trajectory {
	n := t.root
	if n == nil {
		return nil
	}
	for _, m := range n.members {
		if m.ID == id {
			return m
		}
	}
	return nil
}

// All returns all indexed trajectories (the root's member list).
func (t *Tree) All() []*traj.Trajectory {
	if t.root == nil {
		return nil
	}
	out := make([]*traj.Trajectory, len(t.root.members))
	copy(out, t.root.members)
	return out
}

// Rebuild reconstructs the index from its current members, restoring tight
// summaries after many updates.
func (t *Tree) Rebuild() error {
	members := t.All()
	// Current members have escaped to readers through query results, and
	// arena.Build re-points each trajectory's Points at its new slab —
	// a write no lock covers once a result is out. Rebuild therefore
	// hands Build fresh headers over the same (read-only) point slices:
	// the escaped headers are never touched, they just keep aliasing the
	// previous slabs until their holders drop them.
	for i, m := range members {
		h := traj.New(m.ID, m.Points)
		h.Label = m.Label
		members[i] = h
	}
	fresh, err := New(members, t.opt)
	if err != nil {
		return err
	}
	t.root = fresh.root
	t.size = fresh.size
	t.mods = 0
	t.gen++
	// The rebuild folded every live member — overlay included — into
	// the fresh tree's arena slabs.
	t.ar = fresh.ar
	t.overlay = 0
	t.foldIns++
	return nil
}

func (t *Tree) maybeRebuild() {
	if t.opt.RebuildRatio < 0 || t.size == 0 {
		return
	}
	if float64(t.mods) > t.opt.RebuildRatio*float64(t.size) {
		// Rebuild over current members cannot fail validation: they were
		// validated on entry.
		_ = t.Rebuild()
	}
}
