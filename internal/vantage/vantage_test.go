package vantage

import (
	"math"
	"math/rand"
	"testing"

	"trajmatch/internal/geom"
	"trajmatch/internal/traj"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDistUsesSegments(t *testing.T) {
	// VP above the middle of a segment: the closest point is non-sampled.
	tr := traj.FromXY(0, 0, 0, 10, 0)
	if got := Dist(tr, geom.Pt(5, 3)); !almost(got, 3) {
		t.Errorf("Dist = %v, want 3 (projection onto interior)", got)
	}
	if got := Dist(tr, geom.Pt(-4, 0)); !almost(got, 4) {
		t.Errorf("Dist = %v, want 4 (clamped to endpoint)", got)
	}
	if got := Dist(tr, geom.Pt(5, 0)); !almost(got, 0) {
		t.Errorf("Dist on the line = %v, want 0", got)
	}
}

func TestDescriptor(t *testing.T) {
	tr := traj.FromXY(0, 0, 0, 10, 0)
	vps := []geom.Point{geom.Pt(5, 3), geom.Pt(0, 0), geom.Pt(20, 0)}
	d := Descriptor(tr, vps)
	want := []float64{3, 0, 10}
	for i := range want {
		if !almost(d[i], want[i]) {
			t.Errorf("descriptor[%d] = %v, want %v", i, d[i], want[i])
		}
	}
}

func TestVDProperties(t *testing.T) {
	a := []float64{1, 2, 3}
	if got := VD(a, a); got != 0 {
		t.Errorf("VD(a,a) = %v, want 0", got)
	}
	b := []float64{2, 4, 6}
	if got, want := VD(a, b), 0.5; !almost(got, want) {
		t.Errorf("VD = %v, want %v", got, want)
	}
	if VD(a, b) != VD(b, a) {
		t.Error("VD asymmetric")
	}
	// Zero handling: both zero contributes 0; zero vs non-zero contributes 1.
	if got := VD([]float64{0}, []float64{0}); got != 0 {
		t.Errorf("VD(0,0) = %v, want 0", got)
	}
	if got := VD([]float64{0}, []float64{5}); got != 1 {
		t.Errorf("VD(0,5) = %v, want 1", got)
	}
	// Range is [0, 1].
	rng := rand.New(rand.NewSource(51))
	for it := 0; it < 200; it++ {
		x := make([]float64, 4)
		y := make([]float64, 4)
		for i := range x {
			x[i] = rng.Float64() * 100
			y[i] = rng.Float64() * 100
		}
		v := VD(x, y)
		if v < 0 || v > 1 {
			t.Fatalf("VD out of range: %v", v)
		}
	}
	if got := VD(a, []float64{1}); !math.IsInf(got, 1) {
		t.Errorf("VD with mismatched dims = %v, want +Inf", got)
	}
}

func TestSelectDiversity(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	// Two clusters far apart: selecting 2 VPs must pick one from each.
	t1 := traj.FromXY(0, 0, 0, 1, 0, 2, 0)
	t2 := traj.FromXY(1, 1000, 1000, 1001, 1000, 1002, 1000)
	vps := Select([]*traj.Trajectory{t1, t2}, 2, rng)
	if len(vps) != 2 {
		t.Fatalf("got %d VPs, want 2", len(vps))
	}
	if vps[0].Dist(vps[1]) < 500 {
		t.Errorf("VPs %v not diverse", vps)
	}
}

func TestSelectBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	tr := traj.FromXY(0, 0, 0, 1, 0)
	vps := Select([]*traj.Trajectory{tr}, 10, rng)
	if len(vps) > 2 {
		t.Errorf("more VPs than candidate points: %d", len(vps))
	}
	if got := Select(nil, 5, rng); got != nil {
		t.Errorf("Select(nil) = %v", got)
	}
	if got := Select([]*traj.Trajectory{tr}, 0, rng); got != nil {
		t.Errorf("Select with n=0 = %v", got)
	}
}

func TestTopK(t *testing.T) {
	q := []float64{1, 1}
	descs := [][]float64{
		{1, 1},   // VD 0
		{2, 2},   // VD 0.5
		{10, 10}, // VD 0.9
		{1, 2},   // VD 0.25
	}
	got := TopK(q, descs, 2, nil)
	if len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Errorf("TopK = %v, want [0 3]", got)
	}
	// Skip filter removes the best.
	got = TopK(q, descs, 2, func(i int) bool { return i == 0 })
	if len(got) != 2 || got[0] != 3 || got[1] != 1 {
		t.Errorf("TopK with skip = %v, want [3 1]", got)
	}
	// k larger than available.
	got = TopK(q, descs, 10, nil)
	if len(got) != 4 {
		t.Errorf("TopK overflow = %v", got)
	}
}

// VD correlates with spatial separation: trajectories translated farther
// from a base must receive larger VD against it (a sanity check on the
// Lipschitz embedding intuition of Section IV-E).
func TestVDCorrelatesWithSeparation(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	base := traj.FromXY(0, 0, 0, 10, 0, 20, 5)
	vps := Select([]*traj.Trajectory{base}, 8, rng)
	// Add far-away context VPs so ratios are informative.
	vps = append(vps, geom.Pt(200, 200), geom.Pt(-200, 100))
	bd := Descriptor(base, vps)
	prev := -1.0
	for _, off := range []float64{1, 5, 25, 125} {
		shifted := base.Clone()
		for i := range shifted.Points {
			shifted.Points[i].Y += off
		}
		v := VD(bd, Descriptor(shifted, vps))
		if v < prev {
			t.Fatalf("VD not monotone in separation: %v after %v (offset %v)", v, prev, off)
		}
		prev = v
	}
}
