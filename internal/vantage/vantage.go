// Package vantage implements the vantage-point machinery of Section IV-E:
// Lipschitz-style feature descriptors that give TrajTree its tight upper
// bounds. A vantage point (VP) is a spatial point; a trajectory's vantage
// descriptor collects its minimum distance to every VP (Definitions 6–7),
// and the vantage distance VD (Definition 8, Eq. 13) compares descriptors
// in linear time, orders of magnitude faster than EDwP.
package vantage

import (
	"math"
	"math/rand"
	"sort"

	"trajmatch/internal/geom"
	"trajmatch/internal/traj"
)

// Dist returns VP-dist(T, v) of Definition 6: the distance from v to the
// closest point of T's polyline — not necessarily a sampled point.
func Dist(t *traj.Trajectory, v geom.Point) float64 {
	if t.NumSegments() == 0 {
		if t.NumPoints() == 1 {
			return t.Points[0].XY().Dist(v)
		}
		return math.Inf(1)
	}
	best := math.Inf(1)
	for i := 0; i < t.NumSegments(); i++ {
		if d := t.Segment(i).Spatial().DistTo(v); d < best {
			best = d
		}
	}
	return best
}

// Descriptor returns the vantage descriptor T_V of Definition 7: one
// VP-dist per vantage point.
func Descriptor(t *traj.Trajectory, vps []geom.Point) []float64 {
	d := make([]float64, len(vps))
	for i, v := range vps {
		d[i] = Dist(t, v)
	}
	return d
}

// VD returns the vantage distance of Eq. 13 between two descriptors:
// the mean over dimensions of 1 − min/max of the two VP-dists. Dimensions
// where both distances are zero contribute 0 (the trajectories touch the VP
// alike); a zero against a non-zero contributes the maximal 1.
func VD(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return math.Inf(1)
	}
	var sum float64
	for i := range a {
		lo, hi := a[i], b[i]
		if lo > hi {
			lo, hi = hi, lo
		}
		switch {
		case hi == 0:
			// both zero: identical view from this VP
		case math.IsInf(hi, 1):
			sum++
		default:
			sum += 1 - lo/hi
		}
	}
	return sum / float64(len(a))
}

// Select picks n vantage points for a set of trajectories using the same
// greedy max-min diversification the paper uses for pivots: candidates are
// the trajectories' sampled points; the first is random and each subsequent
// VP maximises its distance to the already chosen ones.
func Select(ts []*traj.Trajectory, n int, rng *rand.Rand) []geom.Point {
	if n <= 0 || len(ts) == 0 {
		return nil
	}
	// Candidate pool: cap for cost, sampled evenly across trajectories.
	const maxCandidates = 2048
	var cands []geom.Point
	total := 0
	for _, t := range ts {
		total += t.NumPoints()
	}
	if total == 0 {
		return nil
	}
	stride := total/maxCandidates + 1
	k := 0
	for _, t := range ts {
		for _, p := range t.Points {
			if k%stride == 0 {
				cands = append(cands, p.XY())
			}
			k++
		}
	}
	if n >= len(cands) {
		out := make([]geom.Point, len(cands))
		copy(out, cands)
		return out
	}

	out := make([]geom.Point, 0, n)
	out = append(out, cands[rng.Intn(len(cands))])
	// minDist[i] = distance from candidate i to the nearest chosen VP.
	minDist := make([]float64, len(cands))
	for i, c := range cands {
		minDist[i] = c.Dist(out[0])
	}
	for len(out) < n {
		bestI, bestD := -1, -1.0
		for i, d := range minDist {
			if d > bestD {
				bestD, bestI = d, i
			}
		}
		if bestD <= 0 {
			break // all remaining candidates coincide with chosen VPs
		}
		v := cands[bestI]
		out = append(out, v)
		for i, c := range cands {
			if d := c.Dist(v); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	return out
}

// TopK returns the indices of the k descriptors closest to q under VD,
// skipping indices for which skip returns true. Ties break by index for
// determinism.
func TopK(q []float64, descs [][]float64, k int, skip func(i int) bool) []int {
	type scored struct {
		i int
		d float64
	}
	var all []scored
	for i, d := range descs {
		if skip != nil && skip(i) {
			continue
		}
		all = append(all, scored{i, VD(q, d)})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].d != all[b].d {
			return all[a].d < all[b].d
		}
		return all[a].i < all[b].i
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].i
	}
	return out
}
