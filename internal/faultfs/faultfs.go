// Package faultfs abstracts the filesystem operations the durability
// layer performs — file creation, writes, fsyncs, renames, removals —
// behind a small FS interface with two implementations: OS, a direct
// passthrough to package os, and Injector, a wrapper that fails a chosen
// operation and then behaves like a crashed machine. The write-ahead log
// (internal/wal) and the snapshot writer (internal/server) take an FS so
// the crash-recovery test harness can kill them at every failpoint and
// assert that a reboot from the surviving files recovers a consistent
// state.
//
// The interface is deliberately the shape of the os package rather than
// io/fs: durability code needs writes, fsyncs and renames, none of which
// io/fs models.
package faultfs

import (
	"io"
	"io/fs"
	"os"
)

// File is the open-file surface the durability layer needs: sequential
// reads and writes, fsync, and close. (Truncation happens by path via
// FS.Truncate, and positioning by reopening — the WAL and snapshot
// formats are append-only streams.)
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Name returns the path the file was opened with.
	Name() string
	// Sync flushes the file's written data to stable storage (fsync).
	Sync() error
}

// FS is the filesystem surface the durability layer performs its writes
// through. Every operation that can lose or corrupt data on a crash —
// writes, syncs, renames, removals, truncations — goes through here, so
// an injected implementation can fail any of them.
type FS interface {
	// OpenFile opens name with the given os flags (os.O_RDONLY,
	// os.O_CREATE|os.O_WRONLY, ...).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes the named file.
	Remove(name string) error
	// MkdirAll creates the named directory and any missing parents.
	MkdirAll(path string, perm os.FileMode) error
	// ReadDir lists the named directory, sorted by filename.
	ReadDir(name string) ([]fs.DirEntry, error)
	// Stat describes the named file.
	Stat(name string) (fs.FileInfo, error)
	// Truncate cuts the named file to size bytes.
	Truncate(name string, size int64) error
	// SyncDir fsyncs the named directory, making completed renames and
	// removals inside it durable.
	SyncDir(name string) error
}

// OS is the production FS: a direct passthrough to package os.
type OS struct{}

var _ FS = OS{}

func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (OS) Remove(name string) error                     { return os.Remove(name) }
func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (OS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }
func (OS) Stat(name string) (fs.FileInfo, error)        { return os.Stat(name) }
func (OS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }

// SyncDir fsyncs the directory itself so that renames and removals
// inside it survive power loss; on filesystems where directories cannot
// be fsynced the error is returned for the caller to decide.
func (OS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// ReadFile reads the whole named file through fsys.
func ReadFile(fsys FS, name string) ([]byte, error) {
	f, err := fsys.OpenFile(name, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// WriteFile writes data to the named file through fsys, creating or
// truncating it. It does not fsync; callers that need durability sync
// explicitly.
func WriteFile(fsys FS, name string, data []byte, perm os.FileMode) error {
	f, err := fsys.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
