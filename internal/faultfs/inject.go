package faultfs

import (
	"errors"
	"io/fs"
	"os"
	"sync"
)

// OpKind classifies the fault-eligible operations an Injector can fail.
type OpKind int

const (
	// OpWrite is a File.Write on a write-opened file. A faulted write is
	// torn: a prefix of the buffer reaches the file before the crash.
	OpWrite OpKind = iota
	// OpSync is a File.Sync. A faulted sync leaves everything written
	// since the last successful sync vulnerable to power loss.
	OpSync
	// OpCreate is an OpenFile that creates or truncates a file.
	OpCreate
	// OpRename is an FS.Rename.
	OpRename
	// OpRemove is an FS.Remove.
	OpRemove
	// OpTruncate is an FS.Truncate.
	OpTruncate
	// OpSyncDir is an FS.SyncDir.
	OpSyncDir
)

func (k OpKind) String() string {
	switch k {
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpCreate:
		return "create"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpTruncate:
		return "truncate"
	case OpSyncDir:
		return "syncdir"
	}
	return "unknown"
}

// AllOps lists every fault-eligible operation kind, the default
// failpoint set of the crash harness.
func AllOps() []OpKind {
	return []OpKind{OpWrite, OpSync, OpCreate, OpRename, OpRemove, OpTruncate, OpSyncDir}
}

// CrashMode selects what the simulated machine loses at the crash.
type CrashMode int

const (
	// CrashKill models kill -9: the process dies but the kernel page
	// cache survives, so every byte already written to a file — synced
	// or not — is still present after reboot. The faulted write itself
	// may be torn (only a prefix landed).
	CrashKill CrashMode = iota
	// CrashPower models power loss: only data covered by a successful
	// Sync is guaranteed. Wreckage truncates every file written through
	// the injector back to its size at the last successful sync.
	CrashPower
)

// ErrInjected is the error the armed failpoint returns; every operation
// after it fails with ErrCrashed.
var ErrInjected = errors.New("faultfs: injected fault")

// ErrCrashed reports an operation attempted after the injected crash;
// the simulated process is dead and nothing more reaches the disk.
var ErrCrashed = errors.New("faultfs: filesystem crashed")

// Injector wraps an FS and fails the Nth fault-eligible operation,
// then simulates a dead machine: the faulted operation applies partially
// (a torn write) or not at all, and every subsequent operation returns
// ErrCrashed. After the workload has crashed, Wreckage applies the crash
// mode's data loss to the underlying files; the test then reboots the
// system under test from the directory with a plain OS filesystem.
//
// Failpoints are deterministic: operations are counted in the order the
// workload issues them, so running the same workload with FailAt = 1..N
// visits every failpoint exactly once. An Injector with FailAt 0 never
// fires and serves as the op counter for discovering N.
type Injector struct {
	base FS
	mode CrashMode

	mu      sync.Mutex
	kinds   map[OpKind]bool
	failAt  int // 1-based index of the eligible op to fail; 0 disables
	ops     int // eligible ops seen
	crashed bool
	files   map[string]*fileState // write-opened paths → size accounting
}

// fileState tracks how much of a write-opened file is on "disk" and how
// much of that a successful sync has made durable.
type fileState struct {
	size   int64
	synced int64
}

// NewInjector wraps base. kinds selects the fault-eligible operations
// (nil means AllOps) and failAt the 1-based eligible operation to fail
// (0 never fires).
func NewInjector(base FS, mode CrashMode, kinds []OpKind, failAt int) *Injector {
	if kinds == nil {
		kinds = AllOps()
	}
	km := make(map[OpKind]bool, len(kinds))
	for _, k := range kinds {
		km[k] = true
	}
	return &Injector{
		base:   base,
		mode:   mode,
		kinds:  km,
		failAt: failAt,
		files:  make(map[string]*fileState),
	}
}

// Ops returns the number of fault-eligible operations the workload has
// issued so far; a discovery run with failAt 0 uses it to size the
// failpoint sweep.
func (inj *Injector) Ops() int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.ops
}

// Crashed reports whether the failpoint has fired.
func (inj *Injector) Crashed() bool {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.crashed
}

// gate counts an eligible operation and decides its fate: ErrCrashed
// when the crash already happened, trip=true when this operation is the
// armed failpoint (the crash flag is set; the caller applies the
// kind-specific partial effect and returns ErrInjected).
func (inj *Injector) gate(kind OpKind) (trip bool, err error) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.crashed {
		return false, ErrCrashed
	}
	if !inj.kinds[kind] {
		return false, nil
	}
	inj.ops++
	if inj.failAt != 0 && inj.ops == inj.failAt {
		inj.crashed = true
		return true, nil
	}
	return false, nil
}

// checkAlive fails non-eligible operations too once the machine is down.
func (inj *Injector) checkAlive() error {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.crashed {
		return ErrCrashed
	}
	return nil
}

// Wreckage applies the crash mode's data loss to the underlying files
// and leaves the injector permanently crashed. Under CrashKill nothing
// is lost beyond the faulted operation itself; under CrashPower every
// tracked file is truncated back to its last successfully synced size.
// The caller then inspects or reboots from the directory with a plain
// OS filesystem.
func (inj *Injector) Wreckage() error {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.crashed = true
	if inj.mode != CrashPower {
		return nil
	}
	for path, st := range inj.files {
		if st.synced < st.size {
			if err := inj.base.Truncate(path, st.synced); err != nil {
				if os.IsNotExist(err) {
					continue
				}
				return err
			}
			st.size = st.synced
		}
	}
	return nil
}

const writeFlags = os.O_WRONLY | os.O_RDWR | os.O_APPEND | os.O_CREATE | os.O_TRUNC

func (inj *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	writable := flag&writeFlags != 0
	if writable {
		if trip, err := inj.gate(OpCreate); err != nil {
			return nil, err
		} else if trip {
			// The file is never created (the crash beat the open).
			return nil, ErrInjected
		}
	} else if err := inj.checkAlive(); err != nil {
		return nil, err
	}
	f, err := inj.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	if !writable {
		return &injFile{File: f, inj: inj}, nil
	}
	inj.mu.Lock()
	st := inj.files[name]
	if st == nil {
		st = &fileState{}
		inj.files[name] = st
	}
	size := int64(0)
	if flag&os.O_TRUNC == 0 {
		if fi, serr := inj.base.Stat(name); serr == nil {
			size = fi.Size()
		}
	}
	// Bytes already in the file predate this incarnation and are treated
	// as durable: the flows under test sync before closing.
	st.size, st.synced = size, size
	inj.mu.Unlock()
	return &injFile{File: f, inj: inj, st: st}, nil
}

func (inj *Injector) Rename(oldpath, newpath string) error {
	if trip, err := inj.gate(OpRename); err != nil {
		return err
	} else if trip {
		return ErrInjected
	}
	if err := inj.base.Rename(oldpath, newpath); err != nil {
		return err
	}
	inj.mu.Lock()
	if st, ok := inj.files[oldpath]; ok {
		delete(inj.files, oldpath)
		inj.files[newpath] = st
	}
	inj.mu.Unlock()
	return nil
}

func (inj *Injector) Remove(name string) error {
	if trip, err := inj.gate(OpRemove); err != nil {
		return err
	} else if trip {
		return ErrInjected
	}
	if err := inj.base.Remove(name); err != nil {
		return err
	}
	inj.mu.Lock()
	delete(inj.files, name)
	inj.mu.Unlock()
	return nil
}

func (inj *Injector) MkdirAll(path string, perm os.FileMode) error {
	if err := inj.checkAlive(); err != nil {
		return err
	}
	return inj.base.MkdirAll(path, perm)
}

func (inj *Injector) ReadDir(name string) ([]fs.DirEntry, error) {
	if err := inj.checkAlive(); err != nil {
		return nil, err
	}
	return inj.base.ReadDir(name)
}

func (inj *Injector) Stat(name string) (fs.FileInfo, error) {
	if err := inj.checkAlive(); err != nil {
		return nil, err
	}
	return inj.base.Stat(name)
}

func (inj *Injector) Truncate(name string, size int64) error {
	if trip, err := inj.gate(OpTruncate); err != nil {
		return err
	} else if trip {
		return ErrInjected
	}
	if err := inj.base.Truncate(name, size); err != nil {
		return err
	}
	inj.mu.Lock()
	if st, ok := inj.files[name]; ok {
		st.size = size
		if st.synced > size {
			st.synced = size
		}
	}
	inj.mu.Unlock()
	return nil
}

func (inj *Injector) SyncDir(name string) error {
	if trip, err := inj.gate(OpSyncDir); err != nil {
		return err
	} else if trip {
		return ErrInjected
	}
	return inj.base.SyncDir(name)
}

var _ FS = (*Injector)(nil)

// injFile wraps an open file with the injector's write/sync failpoints.
// st is nil for read-only files.
type injFile struct {
	File
	inj *Injector
	st  *fileState
}

func (f *injFile) Read(p []byte) (int, error) {
	if err := f.inj.checkAlive(); err != nil {
		return 0, err
	}
	return f.File.Read(p)
}

func (f *injFile) Write(p []byte) (int, error) {
	if f.st == nil {
		// Writes on a read-opened file fail naturally downstream.
		return f.File.Write(p)
	}
	trip, err := f.inj.gate(OpWrite)
	if err != nil {
		return 0, err
	}
	if trip {
		// Torn write: a prefix of the buffer lands before the crash.
		n := len(p) / 2
		if n > 0 {
			n, _ = f.File.Write(p[:n])
			f.inj.mu.Lock()
			f.st.size += int64(n)
			f.inj.mu.Unlock()
		}
		return n, ErrInjected
	}
	n, err := f.File.Write(p)
	f.inj.mu.Lock()
	f.st.size += int64(n)
	f.inj.mu.Unlock()
	return n, err
}

func (f *injFile) Sync() error {
	if f.st == nil {
		if err := f.inj.checkAlive(); err != nil {
			return err
		}
		return f.File.Sync()
	}
	trip, err := f.inj.gate(OpSync)
	if err != nil {
		return err
	}
	if trip {
		// The data never reached stable storage; under CrashPower the
		// unsynced suffix disappears in Wreckage.
		return ErrInjected
	}
	if err := f.File.Sync(); err != nil {
		return err
	}
	f.inj.mu.Lock()
	f.st.synced = f.st.size
	f.inj.mu.Unlock()
	return nil
}

func (f *injFile) Close() error {
	// Close is always allowed: a dead process's descriptors close too,
	// and tests must be able to release files after the crash.
	return f.File.Close()
}
