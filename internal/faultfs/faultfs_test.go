package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func readAll(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return b
}

// TestOSRoundTrip exercises the passthrough implementation end to end:
// write, sync, rename, dir sync, read back.
func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fsys := OS{}
	tmp := filepath.Join(dir, "a.tmp")
	final := filepath.Join(dir, "a")
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Rename(tmp, final); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(fsys, final)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("ReadDir: %v, %d entries", err, len(entries))
	}
}

// TestInjectorTornWrite asserts the armed write failpoint lands a prefix
// of the buffer (the torn tail the WAL recovery path must drop) and that
// every subsequent operation reports the machine dead.
func TestInjectorTornWrite(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS{}, CrashKill, []OpKind{OpWrite}, 2)
	path := filepath.Join(dir, "log")
	f, err := inj.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("aaaa")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	n, err := f.Write([]byte("bbbb"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("write 2: got %v, want ErrInjected", err)
	}
	if n != 2 {
		t.Fatalf("torn write landed %d bytes, want 2", n)
	}
	if _, err := f.Write([]byte("cccc")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write after crash: got %v, want ErrCrashed", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("sync after crash: got %v, want ErrCrashed", err)
	}
	if _, err := inj.OpenFile(path, os.O_RDONLY, 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("open after crash: got %v, want ErrCrashed", err)
	}
	f.Close()
	if err := inj.Wreckage(); err != nil {
		t.Fatal(err)
	}
	// CrashKill: the torn bytes survive.
	if got := readAll(t, path); string(got) != "aaaabb" {
		t.Fatalf("wreckage holds %q, want %q", got, "aaaabb")
	}
}

// TestInjectorPowerLoss asserts CrashPower wreckage truncates files back
// to their last synced size: synced data survives, unsynced data — torn
// or whole — does not.
func TestInjectorPowerLoss(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS{}, CrashPower, []OpKind{OpSync}, 2)
	path := filepath.Join(dir, "log")
	f, err := inj.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 1: %v", err)
	}
	if _, err := f.Write([]byte("-volatile")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync 2: got %v, want ErrInjected", err)
	}
	f.Close()
	if err := inj.Wreckage(); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, path); string(got) != "durable" {
		t.Fatalf("wreckage holds %q, want %q", got, "durable")
	}
}

// TestInjectorRenameFault asserts a faulted rename leaves the old name
// in place, and that rename tracking follows files across successful
// renames so power loss accounting stays attached.
func TestInjectorRenameFault(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS{}, CrashKill, []OpKind{OpRename}, 1)
	path := filepath.Join(dir, "a.tmp")
	f, err := inj.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("x"))
	f.Sync()
	f.Close()
	if err := inj.Rename(path, filepath.Join(dir, "a")); !errors.Is(err, ErrInjected) {
		t.Fatalf("rename: got %v, want ErrInjected", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("old name gone after faulted rename: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "a")); !os.IsNotExist(err) {
		t.Fatalf("new name exists after faulted rename")
	}
}

// TestInjectorRenameTracking: after a successful rename, power-loss
// truncation applies to the file's new name.
func TestInjectorRenameTracking(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS{}, CrashPower, []OpKind{OpWrite}, 3)
	path := filepath.Join(dir, "a.tmp")
	f, err := inj.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("keep"))
	f.Sync()
	f.Close()
	final := filepath.Join(dir, "a")
	if err := inj.Rename(path, final); err != nil {
		t.Fatal(err)
	}
	f2, err := inj.OpenFile(final, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f2.Write([]byte("-lost")) // op 2: succeeds, unsynced
	_, err = f2.Write([]byte("-fault"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", err)
	}
	f2.Close()
	if err := inj.Wreckage(); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, final); string(got) != "keep" {
		t.Fatalf("wreckage holds %q, want %q", got, "keep")
	}
}

// TestInjectorOpCount: a discovery pass with failAt 0 counts eligible
// operations without ever firing, and the same workload re-run with
// failAt = count fails exactly at the last operation.
func TestInjectorOpCount(t *testing.T) {
	workload := func(inj *Injector, dir string) error {
		f, err := inj.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.Write([]byte("1")); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		f.Close()
		return inj.Rename(filepath.Join(dir, "f"), filepath.Join(dir, "g"))
	}
	probe := NewInjector(OS{}, CrashKill, nil, 0)
	if err := workload(probe, t.TempDir()); err != nil {
		t.Fatalf("probe run failed: %v", err)
	}
	total := probe.Ops()
	if total != 4 { // create, write, sync, rename
		t.Fatalf("probe counted %d ops, want 4", total)
	}
	for failAt := 1; failAt <= total; failAt++ {
		inj := NewInjector(OS{}, CrashKill, nil, failAt)
		err := workload(inj, t.TempDir())
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("failAt=%d: got %v, want ErrInjected", failAt, err)
		}
		if !inj.Crashed() {
			t.Fatalf("failAt=%d: injector not crashed", failAt)
		}
	}
}
