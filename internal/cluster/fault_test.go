package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"trajmatch/internal/server"
)

// restartable is a shard node whose process can die and rejoin on the
// same address — the recovery scenario the router's lazy health model
// must survive without operator action.
type restartable struct {
	t       *testing.T
	addr    string
	handler http.Handler
	mu      sync.Mutex
	srv     *http.Server
	done    chan struct{}
}

func startRestartable(t *testing.T, handler http.Handler) *restartable {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	n := &restartable{t: t, addr: l.Addr().String(), handler: handler}
	n.serve(l)
	t.Cleanup(n.kill)
	return n
}

func (n *restartable) serve(l net.Listener) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.srv = &http.Server{Handler: n.handler}
	n.done = make(chan struct{})
	srv, done := n.srv, n.done
	go func() {
		defer close(done)
		srv.Serve(l)
	}()
}

// kill closes the node's listener and every established connection —
// in-flight requests fail like a crashed process.
func (n *restartable) kill() {
	n.mu.Lock()
	srv, done := n.srv, n.done
	n.srv = nil
	n.mu.Unlock()
	if srv == nil {
		return
	}
	srv.Close()
	<-done
}

// restart rebinds the node's original address. The listen can race the
// dying server's port release, so it retries briefly.
func (n *restartable) restart() {
	n.t.Helper()
	var l net.Listener
	var err error
	for i := 0; i < 50; i++ {
		l, err = net.Listen("tcp", n.addr)
		if err == nil {
			n.serve(l)
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	n.t.Fatalf("rebind %s: %v", n.addr, err)
}

// TestClusterNodeFailureAndRejoin kills a shard node under the router,
// expecting degraded (never wrong, never hanging) answers while it is
// down and full answers again after it rebinds — with no router
// restart in between.
func TestClusterNodeFailureAndRejoin(t *testing.T) {
	db := testDB(120, 7)
	const total = 4
	single := newSingleEngine(t, db, total)

	nodeA := startRestartable(t, NodeHandler(newNodeEngine(t, db, total, []int{0, 1}), server.HandlerOptions{}))
	nodeB := startRestartable(t, NodeHandler(newNodeEngine(t, db, total, []int{2, 3}), server.HandlerOptions{}))
	rt, err := New(context.Background(), Config{
		Nodes:   []string{"http://" + nodeA.addr, "http://" + nodeB.addr},
		Timeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatalf("router: %v", err)
	}

	q := testDB(1, 99)[0]
	req := server.Query{Kind: server.KindKNN, K: 5}
	full, err := single.Search(context.Background(), q, req)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}

	check := func(label string, wantDegraded bool) {
		t.Helper()
		ans, err := rt.Search(context.Background(), q, req)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if ans.Degraded != wantDegraded {
			t.Fatalf("%s: degraded=%v, want %v", label, ans.Degraded, wantDegraded)
		}
		if !wantDegraded {
			sameResults(t, label, ans.Results, full.Results)
			return
		}
		// A degraded answer is the surviving shards' exact merge: every
		// entry must still be a true member of the full answer's order.
		for _, r := range ans.Results {
			owner := server.ShardOf(r.Traj.ID, total)
			if owner == 2 || owner == 3 {
				t.Fatalf("%s: result id=%d from dead shards", label, r.Traj.ID)
			}
		}
	}

	check("both nodes up", false)

	nodeB.kill()
	check("node B down", true)
	check("node B still down", true)

	nodeB.restart()
	check("node B rejoined", false)

	st := rt.Stats()
	if st.Degraded < 2 {
		t.Fatalf("router stats recorded %d degraded answers, want >= 2", st.Degraded)
	}
	healthy := 0
	failures := uint64(0)
	for _, n := range st.Nodes {
		if n.Healthy {
			healthy++
		}
		failures += n.Failures
	}
	if healthy != 2 {
		t.Fatalf("after rejoin: %d/2 nodes healthy: %+v", healthy, st.Nodes)
	}
	if failures == 0 {
		t.Fatalf("no failures recorded across the kill")
	}
}

// TestClusterReplicaFailover kills one of two replicas of the same
// shards: the router must retry the survivor and keep answering
// full-fidelity, recording the retry.
func TestClusterReplicaFailover(t *testing.T) {
	db := testDB(120, 7)
	const total = 2
	single := newSingleEngine(t, db, total)

	mk := func() *restartable {
		return startRestartable(t, NodeHandler(newNodeEngine(t, db, total, []int{0, 1}), server.HandlerOptions{}))
	}
	r1, r2 := mk(), mk()
	rt, err := New(context.Background(), Config{
		Nodes:   []string{"http://" + r1.addr, "http://" + r2.addr},
		Timeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatalf("router: %v", err)
	}

	q := testDB(1, 99)[0]
	req := server.Query{Kind: server.KindKNN, K: 5}
	full, err := single.Search(context.Background(), q, req)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}

	r1.kill()
	for i := 0; i < 4; i++ {
		ans, err := rt.Search(context.Background(), q, req)
		if err != nil {
			t.Fatalf("query %d with a replica down: %v", i, err)
		}
		if ans.Degraded {
			t.Fatalf("query %d degraded with a live replica", i)
		}
		sameResults(t, fmt.Sprintf("query %d", i), ans.Results, full.Results)
	}
	st := rt.Stats()
	if st.Degraded != 0 {
		t.Fatalf("replica failover degraded %d answers", st.Degraded)
	}
	if st.Retries == 0 {
		t.Fatalf("no retries recorded with a dead replica in rotation")
	}
}

// TestClusterSlowNodeDeadline pins the timeout path: a node that stops
// answering (accepts connections, never responds) costs at most the
// configured per-request timeout and produces a degraded answer — not a
// hang, not an error.
func TestClusterSlowNodeDeadline(t *testing.T) {
	db := testDB(60, 7)
	const total = 2

	fast := startRestartable(t, NodeHandler(newNodeEngine(t, db, total, []int{0}), server.HandlerOptions{}))
	bHandler := NodeHandler(newNodeEngine(t, db, total, []int{1}), server.HandlerOptions{})
	var wedged atomic.Bool
	slow := startRestartable(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if wedged.Load() {
			<-r.Context().Done() // wedge until the client gives up
			return
		}
		bHandler.ServeHTTP(w, r)
	}))

	const timeout = 500 * time.Millisecond
	rt, err := New(context.Background(), Config{
		Nodes:   []string{"http://" + fast.addr, "http://" + slow.addr},
		Timeout: timeout,
	})
	if err != nil {
		t.Fatalf("router: %v", err)
	}

	q := testDB(1, 99)[0]
	req := server.Query{Kind: server.KindKNN, K: 5}
	if ans, err := rt.Search(context.Background(), q, req); err != nil || ans.Degraded {
		t.Fatalf("healthy query: degraded=%v err=%v", ans.Degraded, err)
	}

	wedged.Store(true)
	t0 := time.Now()
	ans, err := rt.Search(context.Background(), q, req)
	took := time.Since(t0)
	if err != nil {
		t.Fatalf("query against a wedged node: %v", err)
	}
	if !ans.Degraded {
		t.Fatalf("wedged node did not degrade the answer")
	}
	if took > 4*timeout {
		t.Fatalf("wedged node cost %v, budget %v per request", took, timeout)
	}

	wedged.Store(false)
	if ans, err := rt.Search(context.Background(), q, req); err != nil || ans.Degraded {
		t.Fatalf("recovered query: degraded=%v err=%v", ans.Degraded, err)
	}
}

// TestClusterKillDuringQueryStream hammers the router from several
// goroutines while a shard node dies and rejoins mid-stream: every
// answer must be either full or degraded-but-correct, with no error
// other than degradation, no panic and no hang. Run with -race in CI.
func TestClusterKillDuringQueryStream(t *testing.T) {
	db := testDB(120, 7)
	const total = 4
	single := newSingleEngine(t, db, total)

	nodeA := startRestartable(t, NodeHandler(newNodeEngine(t, db, total, []int{0, 1}), server.HandlerOptions{}))
	nodeB := startRestartable(t, NodeHandler(newNodeEngine(t, db, total, []int{2, 3}), server.HandlerOptions{}))
	rt, err := New(context.Background(), Config{
		Nodes:   []string{"http://" + nodeA.addr, "http://" + nodeB.addr},
		Timeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatalf("router: %v", err)
	}

	queries := testDB(4, 99)
	req := server.Query{Kind: server.KindKNN, K: 5}
	want := make([][]int, len(queries))
	for i, q := range queries {
		ans, err := single.Search(context.Background(), q, req)
		if err != nil {
			t.Fatalf("reference: %v", err)
		}
		for _, r := range ans.Results {
			want[i] = append(want[i], r.Traj.ID)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, 16)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				qi := (w + i) % len(queries)
				ans, err := rt.Search(context.Background(), queries[qi], req)
				if err != nil {
					select {
					case errc <- fmt.Errorf("worker %d: %v", w, err):
					default:
					}
					return
				}
				if ans.Degraded {
					continue // partial answers are the contract while a node is down
				}
				if len(ans.Results) != len(want[qi]) {
					select {
					case errc <- fmt.Errorf("worker %d: full answer with %d results, want %d", w, len(ans.Results), len(want[qi])):
					default:
					}
					return
				}
				for j, r := range ans.Results {
					if r.Traj.ID != want[qi][j] {
						select {
						case errc <- fmt.Errorf("worker %d: full answer rank %d id=%d, want %d", w, j, r.Traj.ID, want[qi][j]):
						default:
						}
						return
					}
				}
			}
		}(w)
	}

	// Two kill/rejoin cycles under load.
	for cycle := 0; cycle < 2; cycle++ {
		time.Sleep(150 * time.Millisecond)
		nodeB.kill()
		time.Sleep(150 * time.Millisecond)
		nodeB.restart()
	}
	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	// The stream must end fully recovered.
	ans, err := rt.Search(context.Background(), queries[0], req)
	if err != nil {
		t.Fatalf("post-stream query: %v", err)
	}
	if ans.Degraded {
		t.Fatalf("still degraded after rejoin")
	}
}
