package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"trajmatch/internal/server"
)

// writeJSON / writeErr mirror the server package's response helpers so
// the router speaks the same envelope the shard nodes (and the
// standalone server) do.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, server.ErrorResponse{Error: msg, Code: code})
}

// maxBodyBytes matches the server package's request-body cap.
const maxBodyBytes = 64 << 20

func decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeErr(w, http.StatusBadRequest, server.CodeBadRequest, fmt.Sprintf("bad request body: %v", err))
		return false
	}
	return true
}

func msSince(t0 time.Time) float64 {
	return float64(time.Since(t0)) / float64(time.Millisecond)
}

// writeRouterError maps a Router call's failure onto the envelope. A
// node's own refusal (nodeError) is forwarded verbatim — status, code
// and message — so a cluster client sees exactly what a standalone
// client would; transport-level cluster failures become 503.
func writeRouterError(w http.ResponseWriter, err error) {
	var ne *nodeError
	switch {
	case errors.As(err, &ne):
		code := ne.Code()
		if code == "" {
			code = server.CodeInternal
		}
		writeErr(w, ne.Status(), code, ne.Error())
	case errors.Is(err, context.DeadlineExceeded):
		writeErr(w, http.StatusGatewayTimeout, server.CodeDeadlineExceeded, "query deadline exceeded")
	case errors.Is(err, context.Canceled):
		writeErr(w, http.StatusServiceUnavailable, server.CodeCanceled, "query canceled")
	default:
		writeErr(w, http.StatusServiceUnavailable, server.CodeUnavailable, err.Error())
	}
}

// RouterHandler serves the public /v1 surface over a Router: the same
// wire formats as a standalone trajserve, so clients cannot tell a
// cluster from a single process (except via /v1/version's role and the
// degraded flag on partial answers).
//
//	POST /v1/search   single or batch, knn/range/subknn
//	POST /v1/insert   routed to the owning shard's group
//	POST /v1/delete   routed to the owning shard's group
//	GET  /v1/stats    routing stats + per-node health (cluster.Stats)
//	GET  /v1/version  role "router", configured nodes
//	GET  /v1/healthz
//
// The streaming and maintenance endpoints (/v1/append, /v1/watch,
// /v1/rebuild, /v1/snapshot, ...) are not fanned out this PR and answer
// 404 from a router.
func RouterHandler(rt *Router) http.Handler {
	h := &routerAPI{rt: rt}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/search", h.search)
	mux.HandleFunc("POST /v1/insert", h.insert)
	mux.HandleFunc("POST /v1/delete", h.delete)
	mux.HandleFunc("GET /v1/stats", h.stats)
	mux.HandleFunc("GET /v1/version", h.version)
	mux.HandleFunc("GET /v1/healthz", h.healthz)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeErr(w, http.StatusNotFound, server.CodeNotFound,
			fmt.Sprintf("no such router endpoint: %s %s", r.Method, r.URL.Path))
	})
	return mux
}

type routerAPI struct {
	rt *Router
}

func (h *routerAPI) search(w http.ResponseWriter, r *http.Request) {
	var req server.SearchRequest
	if !decode(w, r, &req) {
		return
	}
	if (req.QueryTraj == nil) == (len(req.Queries) == 0) {
		writeErr(w, http.StatusBadRequest, server.CodeBadRequest,
			"exactly one of \"query\" and \"queries\" must be set")
		return
	}
	t0 := time.Now()
	if req.QueryTraj != nil {
		q, err := req.QueryTraj.ToTrajectory()
		if err != nil {
			writeErr(w, http.StatusBadRequest, server.CodeBadRequest, fmt.Sprintf("query: %v", err))
			return
		}
		ans, err := h.rt.Search(r.Context(), q, req.Query)
		if err != nil {
			writeRouterError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, server.SearchResponse{
			WireAnswer: server.ToWireAnswer(ans, req.WithStats),
			TookMS:     msSince(t0),
		})
		return
	}
	answers := make([]server.WireAnswer, len(req.Queries))
	for i, wq := range req.Queries {
		q, err := wq.ToTrajectory()
		if err != nil {
			writeErr(w, http.StatusBadRequest, server.CodeBadRequest, fmt.Sprintf("query %d: %v", i, err))
			return
		}
		ans, err := h.rt.Search(r.Context(), q, req.Query)
		if err != nil {
			writeRouterError(w, err)
			return
		}
		answers[i] = server.ToWireAnswer(ans, req.WithStats)
	}
	writeJSON(w, http.StatusOK, server.SearchBatchResponse{Answers: answers, TookMS: msSince(t0)})
}

func (h *routerAPI) insert(w http.ResponseWriter, r *http.Request) {
	var req server.InsertRequest
	if !decode(w, r, &req) {
		return
	}
	inserted := 0
	for i, wt := range req.Trajectories {
		tr, err := wt.ToTrajectory()
		if err != nil {
			writeErr(w, http.StatusBadRequest, server.CodeBadRequest,
				fmt.Sprintf("trajectory %d: %v (inserted %d before failure)", i, err, inserted))
			return
		}
		if err := h.rt.Insert(r.Context(), tr); err != nil {
			writeRouterError(w, err)
			return
		}
		inserted++
	}
	// A router holds no corpus, so unlike the engine's response the size
	// here is not a cheap local read; report the insert count only.
	writeJSON(w, http.StatusOK, server.InsertResponse{Inserted: inserted})
}

func (h *routerAPI) delete(w http.ResponseWriter, r *http.Request) {
	var req server.DeleteRequest
	if !decode(w, r, &req) {
		return
	}
	if len(req.IDs) == 0 {
		writeErr(w, http.StatusBadRequest, server.CodeBadRequest, "ids must be non-empty")
		return
	}
	resp := server.DeleteResponse{}
	for _, id := range req.IDs {
		ok, err := h.rt.Delete(r.Context(), id)
		if err != nil {
			writeRouterError(w, err)
			return
		}
		if ok {
			resp.Deleted++
		} else {
			resp.Missing = append(resp.Missing, id)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *routerAPI) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.rt.Stats())
}

func (h *routerAPI) version(w http.ResponseWriter, r *http.Request) {
	v := server.NewVersionInfo(server.RoleRouter, nil)
	v.ClusterShards = h.rt.ClusterShards()
	v.Nodes = h.rt.Nodes()
	writeJSON(w, http.StatusOK, v)
}

func (h *routerAPI) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
