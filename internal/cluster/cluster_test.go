package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"trajmatch/internal/backend"
	"trajmatch/internal/server"
	"trajmatch/internal/traj"
	"trajmatch/internal/trajtree"
)

// testDB builds n short trajectories scattered over a grid,
// deterministic in seed (the same generator the server tests use).
func testDB(n int, seed int64) []*traj.Trajectory {
	rng := rand.New(rand.NewSource(seed))
	db := make([]*traj.Trajectory, n)
	for i := range db {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		pts := make([]traj.Point, 5)
		for j := range pts {
			x += rng.Float64()*20 - 10
			y += rng.Float64()*20 - 10
			pts[j] = traj.P(x, y, float64(j)*10)
		}
		db[i] = traj.New(i, pts)
	}
	return db
}

// withTies appends exact geometric duplicates of the first dup corpus
// members under fresh IDs: every duplicate ties its original at
// distance zero from the original's own geometry, and the pairs hash to
// unrelated shards — the cross-node boundary-tie case the (distance,
// ID) merge order must resolve identically in every deployment shape.
func withTies(db []*traj.Trajectory, dup int) []*traj.Trajectory {
	out := append([]*traj.Trajectory(nil), db...)
	for i := 0; i < dup; i++ {
		c := db[i].Clone()
		c.ID = len(db) + i
		out = append(out, c)
	}
	return out
}

var testTreeOpt = trajtree.Options{Seed: 1, LeafSize: 5}

// newNodeEngine builds one shard node's engine: the given slice of a
// total-shard placement over db, single worker, no cache (work counters
// must reflect every query).
func newNodeEngine(t testing.TB, db []*traj.Trajectory, total int, owned []int) *server.Engine {
	t.Helper()
	e, err := server.NewEngineFromDB(db, testTreeOpt, server.Options{
		CacheSize: -1,
		Workers:   1,
		Partition: &server.Partition{Total: total, Owned: owned},
	})
	if err != nil {
		t.Fatalf("node engine (shards %v of %d): %v", owned, total, err)
	}
	return e
}

// newSingleEngine builds the single-process reference: the same corpus
// in the same total-shard placement, one process.
func newSingleEngine(t testing.TB, db []*traj.Trajectory, total int) *server.Engine {
	t.Helper()
	e, err := server.NewEngineFromDB(db, testTreeOpt, server.Options{
		CacheSize: -1,
		Workers:   1,
		Shards:    total,
	})
	if err != nil {
		t.Fatalf("single engine: %v", err)
	}
	return e
}

// bootCluster serves one NodeHandler per owned-set over httptest and
// assembles a router over them.
func bootCluster(t testing.TB, db []*traj.Trajectory, total int, owns [][]int, sequential bool) (*Router, func()) {
	t.Helper()
	var urls []string
	var srvs []*httptest.Server
	for _, owned := range owns {
		e := newNodeEngine(t, db, total, owned)
		srv := httptest.NewServer(NodeHandler(e, server.HandlerOptions{}))
		srvs = append(srvs, srv)
		urls = append(urls, srv.URL)
	}
	rt, err := New(context.Background(), Config{Nodes: urls, Timeout: 5 * time.Second, Sequential: sequential})
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	return rt, func() {
		for _, s := range srvs {
			s.Close()
		}
	}
}

// layout distributes total global shards over n nodes: round-robin when
// nodes <= total, full replica groups otherwise.
func layout(total, nodes int) [][]int {
	owns := make([][]int, nodes)
	if nodes <= total {
		for g := 0; g < total; g++ {
			owns[g%nodes] = append(owns[g%nodes], g)
		}
		return owns
	}
	for j := range owns {
		owns[j] = []int{j % total}
	}
	return owns
}

func sameResults(t *testing.T, label string, got, want []backend.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].Traj.ID != want[i].Traj.ID || got[i].Dist != want[i].Dist || got[i].Traj.Label != want[i].Traj.Label {
			t.Fatalf("%s: rank %d: got (id=%d label=%d dist=%v), want (id=%d label=%d dist=%v)",
				label, i,
				got[i].Traj.ID, got[i].Traj.Label, got[i].Dist,
				want[i].Traj.ID, want[i].Traj.Label, want[i].Dist)
		}
	}
}

// TestClusterByteIdenticalToSingleProcess is the tentpole property: a
// 2- or 4-node cluster over {2,4,8} global shards answers every query
// kind byte-identically to one engine over the union corpus — including
// exact cross-node distance ties (duplicated geometry under different
// IDs) and the bound-shipping sequential fan-out.
func TestClusterByteIdenticalToSingleProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster property corpus in -short mode")
	}
	db := withTies(testDB(120, 7), 10)
	queries := testDB(6, 99)
	// Queries that coincide exactly with duplicated corpus members force
	// zero-distance ties straddling the k cut.
	for i := 0; i < 4; i++ {
		q := db[i].Clone()
		q.ID = 2_000_000 + i
		queries = append(queries, q)
	}
	kinds := []server.Query{
		{Kind: server.KindKNN, K: 5},
		{Kind: server.KindKNN, K: 1},
		{Kind: server.KindKNN, K: 25},
		{Kind: server.KindRange, Radius: 120},
		{Kind: server.KindSubKNN, K: 3},
	}
	for _, total := range []int{2, 4, 8} {
		single := newSingleEngine(t, db, total)
		for _, nodes := range []int{2, 4} {
			for _, sequential := range []bool{false, true} {
				t.Run(fmt.Sprintf("shards=%d/nodes=%d/sequential=%v", total, nodes, sequential), func(t *testing.T) {
					rt, cleanup := bootCluster(t, db, total, layout(total, nodes), sequential)
					defer cleanup()
					for qi, q := range queries {
						for ki, req := range kinds {
							want, err := single.Search(context.Background(), q, req)
							if err != nil {
								t.Fatalf("single search: %v", err)
							}
							got, err := rt.Search(context.Background(), q, req)
							if err != nil {
								t.Fatalf("cluster search: %v", err)
							}
							if got.Degraded {
								t.Fatalf("query %d kind %d: degraded answer with every node up", qi, ki)
							}
							if got.Truncated != want.Truncated {
								t.Fatalf("query %d kind %d: truncated %v != %v", qi, ki, got.Truncated, want.Truncated)
							}
							sameResults(t, fmt.Sprintf("query %d kind %s", qi, req.Kind), got.Results, want.Results)
						}
					}
				})
			}
		}
	}
}

// TestSequentialShippedBoundNoExtraEvals pins the acceptance bound: the
// sequential bound-shipping fan-out spends no more exact distance
// evaluations across the cluster than the single-process inline
// shared-bound loop over the same shards — the shipped merged k-th best
// is at least as tight as the single process's bound at the same point,
// so the cluster can only skip more.
func TestSequentialShippedBoundNoExtraEvals(t *testing.T) {
	db := testDB(300, 7)
	const total = 4
	single := newSingleEngine(t, db, total)
	rt, cleanup := bootCluster(t, db, total, [][]int{{0, 1}, {2, 3}}, true)
	defer cleanup()

	// A full evaluation is a distance computation the abandon bound did
	// not cut short — the expensive unit the acceptance criterion counts.
	// (Raw DistanceCalls can tick up under a shipped bound: a tighter
	// bound converts full DP evaluations into near-immediate abandons,
	// and those cheap starts still increment the call counter.)
	fullEvals := func(st backend.Stats) int { return st.DistanceCalls - st.EarlyAbandons }

	queries := testDB(8, 99)
	req := server.Query{Kind: server.KindKNN, K: 10, WithStats: true}
	totalSingle, totalCluster := 0, 0
	for qi, q := range queries {
		// SearchBatch with one worker runs the inline shard loop — the
		// PR 3 shared-bound baseline the acceptance criterion names.
		base, err := single.SearchBatch(context.Background(), []*traj.Trajectory{q}, req)
		if err != nil {
			t.Fatalf("baseline: %v", err)
		}
		got, err := rt.Search(context.Background(), q, req)
		if err != nil {
			t.Fatalf("cluster: %v", err)
		}
		sameResults(t, fmt.Sprintf("query %d", qi), got.Results, base[0].Results)
		if fullEvals(got.Stats) > fullEvals(base[0].Stats) {
			t.Errorf("query %d: cluster spent %d full evaluations, single-process baseline %d",
				qi, fullEvals(got.Stats), fullEvals(base[0].Stats))
		}
		totalSingle += fullEvals(base[0].Stats)
		totalCluster += fullEvals(got.Stats)
	}
	if totalCluster > totalSingle {
		t.Fatalf("cluster total %d full evaluations > baseline %d", totalCluster, totalSingle)
	}
	t.Logf("full evaluations: cluster %d, single-process baseline %d", totalCluster, totalSingle)
}

// TestRouterMutationsRouting drives inserts and deletes through the
// router: hash placement must land each mutation on its owning node,
// visible to the next search, and a misrouted direct mutation must
// bounce with 421 not_owned.
func TestRouterMutationsRouting(t *testing.T) {
	db := testDB(60, 7)
	const total = 4
	rt, cleanup := bootCluster(t, db, total, [][]int{{0, 1}, {2, 3}}, false)
	defer cleanup()

	// Insert a fresh trajectory through the router, then find it.
	nt := testDB(1, 555)[0]
	nt.ID = 9_001
	if err := rt.Insert(context.Background(), nt); err != nil {
		t.Fatalf("insert: %v", err)
	}
	q := nt.Clone()
	q.ID = 9_002
	ans, err := rt.Search(context.Background(), q, server.Query{Kind: server.KindKNN, K: 1})
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	if len(ans.Results) != 1 || ans.Results[0].Traj.ID != nt.ID {
		t.Fatalf("inserted trajectory not the nearest neighbour of its own geometry: %+v", ans.Results)
	}

	// Delete it again; presence must be reported, then gone.
	ok, err := rt.Delete(context.Background(), nt.ID)
	if err != nil {
		t.Fatalf("delete: %v", err)
	}
	if !ok {
		t.Fatalf("delete reported the trajectory missing")
	}
	ok, err = rt.Delete(context.Background(), nt.ID)
	if err != nil {
		t.Fatalf("second delete: %v", err)
	}
	if ok {
		t.Fatalf("second delete reported the trajectory still present")
	}

	// A mutation sent directly to the wrong node answers 421 not_owned.
	wrong := rt.groupFor(server.ShardOf(nt.ID, total))
	var other *group
	for _, g := range rt.groups {
		if g != wrong {
			other = g
			break
		}
	}
	body, _ := json.Marshal(server.InsertRequest{Trajectories: []server.WireTrajectory{*wireTraj(nt)}})
	resp, err := http.Post(other.endpoints[0].base+"/v1/insert", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("direct insert: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("misrouted insert: status %d, want 421", resp.StatusCode)
	}
	var envelope server.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil || envelope.Code != server.CodeNotOwned {
		t.Fatalf("misrouted insert envelope: %+v (err %v), want code %q", envelope, err, server.CodeNotOwned)
	}
}

// TestRouterHTTPSurface exercises the router's public HTTP layer: the
// /v1 wire formats must match a standalone server's, /v1/version must
// report the router role and nodes, /v1/stats the per-node health.
func TestRouterHTTPSurface(t *testing.T) {
	db := testDB(60, 7)
	const total = 2
	rt, cleanup := bootCluster(t, db, total, [][]int{{0}, {1}}, false)
	defer cleanup()
	front := httptest.NewServer(RouterHandler(rt))
	defer front.Close()

	// Search over HTTP matches the in-process router answer.
	q := testDB(1, 99)[0]
	req := server.SearchRequest{
		Query:     server.Query{Kind: server.KindKNN, K: 5, WithStats: true},
		QueryTraj: wireTraj(q),
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(front.URL+"/v1/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	var sr server.SearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search status %d", resp.StatusCode)
	}
	want, err := rt.Search(context.Background(), q, req.Query)
	if err != nil {
		t.Fatalf("router search: %v", err)
	}
	if len(sr.Results) != len(want.Results) {
		t.Fatalf("HTTP answer has %d results, router %d", len(sr.Results), len(want.Results))
	}
	for i := range sr.Results {
		if sr.Results[i].ID != want.Results[i].Traj.ID || sr.Results[i].Dist != want.Results[i].Dist {
			t.Fatalf("HTTP rank %d: %+v != router (id=%d dist=%v)", i, sr.Results[i], want.Results[i].Traj.ID, want.Results[i].Dist)
		}
	}
	if sr.Stats == nil {
		t.Fatalf("with_stats answer carries no stats")
	}

	// Version: role router, the configured nodes, the global modulus.
	resp, err = http.Get(front.URL + "/v1/version")
	if err != nil {
		t.Fatalf("version: %v", err)
	}
	var vi server.VersionInfo
	if err := json.NewDecoder(resp.Body).Decode(&vi); err != nil {
		t.Fatalf("decode version: %v", err)
	}
	resp.Body.Close()
	if vi.Role != server.RoleRouter {
		t.Fatalf("role %q, want %q", vi.Role, server.RoleRouter)
	}
	if vi.ClusterShards != total || len(vi.Nodes) != 2 {
		t.Fatalf("version payload: %+v", vi)
	}

	// Stats: every node listed healthy, zero degraded answers.
	resp, err = http.Get(front.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	resp.Body.Close()
	if st.ClusterShards != total || st.ShardGroups != 2 || len(st.Nodes) != 2 {
		t.Fatalf("router stats shape: %+v", st)
	}
	for _, n := range st.Nodes {
		if !n.Healthy {
			t.Fatalf("node %s unhealthy with no failures injected: %+v", n.Endpoint, n)
		}
	}
	if st.Degraded != 0 {
		t.Fatalf("degraded answers with every node up: %d", st.Degraded)
	}

	// A shard node's version reports its owned slice.
	resp, err = http.Get(rt.groups[0].endpoints[0].base + "/v1/version")
	if err != nil {
		t.Fatalf("node version: %v", err)
	}
	var nvi server.VersionInfo
	if err := json.NewDecoder(resp.Body).Decode(&nvi); err != nil {
		t.Fatalf("decode node version: %v", err)
	}
	resp.Body.Close()
	if nvi.Role != server.RoleShard || nvi.ClusterShards != total || len(nvi.OwnedShards) != 1 {
		t.Fatalf("node version payload: %+v", nvi)
	}
}

// TestRouterBootValidation pins the placement sanity checks: gaps and
// conflicting ownership must fail at boot, not degrade at query time.
func TestRouterBootValidation(t *testing.T) {
	db := testDB(40, 7)
	const total = 4
	serve := func(owned []int) *httptest.Server {
		e := newNodeEngine(t, db, total, owned)
		return httptest.NewServer(NodeHandler(e, server.HandlerOptions{}))
	}

	// Gap: shard 3 unserved.
	a, b := serve([]int{0, 1}), serve([]int{2})
	defer a.Close()
	defer b.Close()
	if _, err := New(context.Background(), Config{Nodes: []string{a.URL, b.URL}, Timeout: time.Second}); err == nil {
		t.Fatalf("router admitted a placement with shard 3 unserved")
	}

	// Overlap between distinct owned sets: shard 1 claimed twice.
	c, d := serve([]int{0, 1}), serve([]int{1, 2, 3})
	defer c.Close()
	defer d.Close()
	if _, err := New(context.Background(), Config{Nodes: []string{c.URL, d.URL}, Timeout: time.Second}); err == nil {
		t.Fatalf("router admitted overlapping distinct owned sets")
	}

	// A dead node at boot is an error, not a silent degraded start.
	e := serve([]int{2, 3})
	e.Close()
	f := serve([]int{0, 1})
	defer f.Close()
	if _, err := New(context.Background(), Config{Nodes: []string{f.URL, e.URL}, Timeout: time.Second}); err == nil {
		t.Fatalf("router admitted a dead node at boot")
	}
}
