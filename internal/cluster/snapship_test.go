package cluster

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"trajmatch/internal/server"
	"trajmatch/internal/traj"
	"trajmatch/internal/trajtree"
)

// snapshotSource builds a full 4-shard engine with a saved snapshot and
// serves it through the cluster node handler.
func snapshotSource(t *testing.T, db []*traj.Trajectory, total int) (*server.Engine, string, *httptest.Server) {
	t.Helper()
	dir := t.TempDir()
	e, err := server.NewEngineFromDB(db, testTreeOpt, server.Options{
		CacheSize:   -1,
		Workers:     1,
		Shards:      total,
		SnapshotDir: dir,
	})
	if err != nil {
		t.Fatalf("source engine: %v", err)
	}
	if err := e.SaveSnapshot(dir); err != nil {
		t.Fatalf("save snapshot: %v", err)
	}
	srv := httptest.NewServer(NodeHandler(e, server.HandlerOptions{}))
	t.Cleanup(srv.Close)
	return e, dir, srv
}

// TestFetchSnapshotWarmBoot is the snapshot-shipping tentpole piece: a
// replica owning shards {1,3} warm-boots by fetching just its sections
// from a peer over HTTP and answers identically to a fresh partitioned
// build from the same corpus.
func TestFetchSnapshotWarmBoot(t *testing.T) {
	db := testDB(200, 7)
	const total = 4
	_, srcDir, srv := snapshotSource(t, db, total)

	owned := []int{1, 3}
	dst := t.TempDir()
	info, err := FetchSnapshot(context.Background(), srv.URL, dst, owned, nil)
	if err != nil {
		t.Fatalf("fetch: %v", err)
	}
	if info.Shards != total {
		t.Fatalf("fetched manifest records %d shards, want %d", info.Shards, total)
	}

	// The shipped shard files are byte-identical to the source's.
	for _, name := range server.SnapshotFiles(owned) {
		got, err := os.ReadFile(filepath.Join(dst, name))
		if err != nil {
			t.Fatalf("fetched %s: %v", name, err)
		}
		want, err := os.ReadFile(filepath.Join(srcDir, name))
		if err != nil {
			t.Fatalf("source %s: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s differs from the source after shipping", name)
		}
	}

	replica, err := server.LoadSnapshot(dst, server.Options{
		CacheSize: -1,
		Workers:   1,
		Partition: &server.Partition{Total: total, Owned: owned},
	})
	if err != nil {
		t.Fatalf("replica warm boot: %v", err)
	}
	defer replica.Close()

	// Reference: the same partition built cold from the corpus.
	cold := newNodeEngine(t, db, total, owned)
	if replica.Size() != cold.Size() {
		t.Fatalf("replica owns %d trajectories, cold build %d", replica.Size(), cold.Size())
	}
	for _, tr := range db {
		if g := server.ShardOf(tr.ID, total); g != 1 && g != 3 {
			if replica.Lookup(tr.ID) != nil {
				t.Fatalf("replica holds foreign trajectory %d (shard %d)", tr.ID, g)
			}
			continue
		}
		if replica.Lookup(tr.ID) == nil {
			t.Fatalf("replica lost owned trajectory %d", tr.ID)
		}
	}
	for _, q := range testDB(4, 99) {
		req := server.Query{Kind: server.KindKNN, K: 5}
		want, err := cold.Search(context.Background(), q, req)
		if err != nil {
			t.Fatalf("cold search: %v", err)
		}
		got, err := replica.Search(context.Background(), q, req)
		if err != nil {
			t.Fatalf("replica search: %v", err)
		}
		sameResults(t, "warm vs cold", got.Results, want.Results)
	}
}

// TestFetchSnapshotFromDirectory covers the object-path source: the
// same shipping flow reading files from a local directory instead of a
// peer, fetching everything (nil shards) for a full standby.
func TestFetchSnapshotFromDirectory(t *testing.T) {
	db := testDB(150, 7)
	const total = 4
	src, srcDir, _ := snapshotSource(t, db, total)

	dst := t.TempDir()
	if _, err := FetchSnapshot(context.Background(), srcDir, dst, nil, nil); err != nil {
		t.Fatalf("fetch from directory: %v", err)
	}
	standby, err := server.LoadSnapshot(dst, server.Options{CacheSize: -1, Workers: 1})
	if err != nil {
		t.Fatalf("standby boot: %v", err)
	}
	defer standby.Close()
	if standby.Size() != src.Size() {
		t.Fatalf("standby holds %d trajectories, source %d", standby.Size(), src.Size())
	}
	if standby.Shards() != src.Shards() {
		t.Fatalf("standby has %d shards, source %d", standby.Shards(), src.Shards())
	}
}

// TestFetchSnapshotFromPartitionedPeer ships between partitioned nodes:
// a node that owns {0,1} saves its partial snapshot, and a fresh
// replica of the same slice boots from it over HTTP.
func TestFetchSnapshotFromPartitionedPeer(t *testing.T) {
	db := testDB(150, 7)
	const total = 4
	owned := []int{0, 1}
	dir := t.TempDir()
	peer, err := server.NewEngineFromDB(db, testTreeOpt, server.Options{
		CacheSize:   -1,
		Workers:     1,
		Partition:   &server.Partition{Total: total, Owned: owned},
		SnapshotDir: dir,
	})
	if err != nil {
		t.Fatalf("peer: %v", err)
	}
	if err := peer.SaveSnapshot(dir); err != nil {
		t.Fatalf("peer save: %v", err)
	}
	srv := httptest.NewServer(NodeHandler(peer, server.HandlerOptions{}))
	defer srv.Close()

	dst := t.TempDir()
	if _, err := FetchSnapshot(context.Background(), srv.URL, dst, owned, nil); err != nil {
		t.Fatalf("fetch: %v", err)
	}
	replica, err := server.LoadSnapshot(dst, server.Options{
		CacheSize: -1,
		Workers:   1,
		Partition: &server.Partition{Total: total, Owned: owned},
	})
	if err != nil {
		t.Fatalf("replica boot: %v", err)
	}
	defer replica.Close()
	if replica.Size() != peer.Size() {
		t.Fatalf("replica holds %d trajectories, peer %d", replica.Size(), peer.Size())
	}
}

// TestFetchSnapshotRejects pins the failure modes: uncovered shards,
// corrupt sections, and a source with no snapshot must all fail the
// fetch — never silently produce a bootable-but-wrong directory.
func TestFetchSnapshotRejects(t *testing.T) {
	db := testDB(100, 7)
	const total = 4

	// Peer owning {0,1} cannot ship shard 2.
	dir := t.TempDir()
	owned := []int{0, 1}
	peer, err := server.NewEngineFromDB(db, testTreeOpt, server.Options{
		CacheSize: -1, Workers: 1,
		Partition:   &server.Partition{Total: total, Owned: owned},
		SnapshotDir: dir,
	})
	if err != nil {
		t.Fatalf("peer: %v", err)
	}
	if err := peer.SaveSnapshot(dir); err != nil {
		t.Fatalf("peer save: %v", err)
	}
	srv := httptest.NewServer(NodeHandler(peer, server.HandlerOptions{}))
	defer srv.Close()
	if _, err := FetchSnapshot(context.Background(), srv.URL, t.TempDir(), []int{2}, nil); err == nil {
		t.Fatalf("fetch of an uncovered shard succeeded")
	}

	// A corrupted shard stream fails its CRC during shipping.
	_, srcDir, _ := snapshotSource(t, db, total)
	treeFile := filepath.Join(srcDir, server.SnapshotFiles([]int{1})[1])
	data, err := os.ReadFile(treeFile)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(treeFile, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := FetchSnapshot(context.Background(), srcDir, t.TempDir(), []int{1}, nil); err == nil {
		t.Fatalf("fetch of a corrupted shard stream succeeded")
	}

	// A node with no snapshot directory refuses to ship.
	bare, err := server.NewEngineFromDB(db, trajtree.Options{Seed: 1, LeafSize: 5}, server.Options{CacheSize: -1, Workers: 1, Shards: total})
	if err != nil {
		t.Fatalf("bare engine: %v", err)
	}
	bsrv := httptest.NewServer(NodeHandler(bare, server.HandlerOptions{}))
	defer bsrv.Close()
	if _, err := FetchSnapshot(context.Background(), bsrv.URL, t.TempDir(), nil, nil); err == nil {
		t.Fatalf("fetch from a snapshotless node succeeded")
	}
}
