package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"trajmatch/internal/server"
)

// FetchSnapshot ships a snapshot from src into dstDir so a replica can
// warm-boot instead of rebuilding: it fetches the peer's manifest,
// checks the manifest covers every requested global shard (nil shards
// means everything the peer has), fetches each shard's tree stream and
// arena twin, CRC-verifies the tree streams, and only then commits by
// writing the manifest — the same "manifest last" transaction
// SaveSnapshot uses, so a fetch killed midway leaves no loadable
// half-snapshot. Existing files in dstDir are overwritten; stale shard
// files from a previous fetch are left alone (the manifest's coverage,
// not directory listing, drives the load).
//
// src is either a node base URL (http://host:port — files come from
// GET /cluster/v1/snapshot/{file}) or a filesystem path (an object
// store mount or a peer's exported directory — files are copied).
//
// Arena files are fetched best-effort: a peer that never saved arenas
// (or a damaged transfer) downgrades the replica to the gob boot path
// per shard, exactly the mmap fallback a local boot has. The returned
// SnapshotInfo describes what was shipped.
func FetchSnapshot(ctx context.Context, src, dstDir string, shards []int, client *http.Client) (server.SnapshotInfo, error) {
	if client == nil {
		client = &http.Client{}
	}
	fetch := fetcherFor(src, client)
	if err := os.MkdirAll(dstDir, 0o755); err != nil {
		return server.SnapshotInfo{}, fmt.Errorf("cluster: fetch snapshot: %w", err)
	}

	// The manifest lands under a temp name first: it must be readable to
	// plan the fetch, but its presence under the real name is the commit
	// point and nothing is committed yet.
	tmpDir, err := os.MkdirTemp(dstDir, "fetch-*")
	if err != nil {
		return server.SnapshotInfo{}, fmt.Errorf("cluster: fetch snapshot: %w", err)
	}
	defer os.RemoveAll(tmpDir)
	if err := fetch(ctx, server.SnapshotManifestName, filepath.Join(tmpDir, server.SnapshotManifestName)); err != nil {
		return server.SnapshotInfo{}, fmt.Errorf("cluster: fetch manifest: %w", err)
	}
	info, err := server.ReadSnapshotInfo(tmpDir)
	if err != nil {
		return server.SnapshotInfo{}, fmt.Errorf("cluster: fetched manifest: %w", err)
	}
	covered := map[int]bool{}
	for _, g := range info.Covered {
		covered[g] = true
	}
	if shards == nil {
		shards = info.Covered
	}
	for _, g := range shards {
		if !covered[g] {
			return server.SnapshotInfo{}, fmt.Errorf(
				"cluster: snapshot at %s covers shards %v of %d, not requested shard %d",
				src, info.Covered, info.Shards, g)
		}
	}

	// Shard sections land under .tmp names, are verified, then renamed
	// into place — the manifest still names nothing until the end.
	for _, g := range shards {
		name := server.SnapshotFiles([]int{g})[1] // tree stream
		tmp := filepath.Join(dstDir, name+".tmp")
		if err := fetch(ctx, name, tmp); err != nil {
			return server.SnapshotInfo{}, fmt.Errorf("cluster: fetch %s: %w", name, err)
		}
		if err := server.VerifySnapshotShardFile(tmp, g); err != nil {
			os.Remove(tmp)
			return server.SnapshotInfo{}, fmt.Errorf("cluster: fetched %s: %w", name, err)
		}
		if err := os.Rename(tmp, filepath.Join(dstDir, name)); err != nil {
			return server.SnapshotInfo{}, fmt.Errorf("cluster: fetch snapshot: %w", err)
		}

		arena := server.SnapshotFiles([]int{g})[2] // arena twin, best-effort
		tmp = filepath.Join(dstDir, arena+".tmp")
		if err := fetch(ctx, arena, tmp); err != nil {
			os.Remove(tmp)
			continue // gob boot path per shard; the load re-verifies
		}
		if err := os.Rename(tmp, filepath.Join(dstDir, arena)); err != nil {
			return server.SnapshotInfo{}, fmt.Errorf("cluster: fetch snapshot: %w", err)
		}
	}

	// Commit: the manifest's arrival under its real name makes the
	// directory a loadable snapshot.
	if err := os.Rename(filepath.Join(tmpDir, server.SnapshotManifestName),
		filepath.Join(dstDir, server.SnapshotManifestName)); err != nil {
		return server.SnapshotInfo{}, fmt.Errorf("cluster: commit manifest: %w", err)
	}
	return info, nil
}

// fetcherFor returns the transfer function for src: HTTP against a
// node's snapshot endpoint for URLs, a file copy for paths.
func fetcherFor(src string, client *http.Client) func(ctx context.Context, name, dst string) error {
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		base := strings.TrimRight(src, "/")
		return func(ctx context.Context, name, dst string) error {
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+snapshotPath+name, nil)
			if err != nil {
				return err
			}
			resp, err := client.Do(req)
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("%s: %s", name, resp.Status)
			}
			return writeAll(dst, resp.Body)
		}
	}
	return func(ctx context.Context, name, dst string) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		f, err := os.Open(filepath.Join(src, name))
		if err != nil {
			return err
		}
		defer f.Close()
		return writeAll(dst, f)
	}
}

// writeAll streams r into a freshly created dst, fsyncing before close
// so a verified file cannot lose its tail to a crash after the rename.
func writeAll(dst string, r io.Reader) error {
	f, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(f, r); err != nil {
		f.Close()
		os.Remove(dst)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(dst)
		return err
	}
	return f.Close()
}
