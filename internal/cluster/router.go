package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"trajmatch/internal/backend"
	"trajmatch/internal/server"
	"trajmatch/internal/traj"
)

// Config configures a Router.
type Config struct {
	// Nodes are the shard nodes' base URLs (e.g. http://10.0.0.7:8080).
	// Nodes announcing identical owned-shard sets form a replica group;
	// together the groups must cover every global shard exactly once.
	Nodes []string
	// Timeout bounds each shard request (and each boot-time info probe);
	// 0 means 10s. A request that times out counts as a node failure and
	// triggers the bounded retry to a replica.
	Timeout time.Duration
	// Sequential makes the fan-out visit shard groups one at a time in
	// shard order, shipping the freshest merged k-th-best bound to each —
	// the minimum-work, maximum-latency shape, and the deterministic one
	// the work-counter tests compare against the single-process
	// shared-bound baseline. Default (false) dispatches all groups
	// concurrently, each seeded with the bound known at dispatch time.
	Sequential bool
	// Client is the HTTP client to use; nil means a fresh default
	// client (connection pooling per router).
	Client *http.Client
}

// endpoint is one shard node as the router sees it: its base URL plus
// lazily tracked health. There is no background prober — an endpoint is
// marked unhealthy when a request to it fails and healthy when one
// succeeds, and a group with no healthy endpoint retries the unhealthy
// ones on the next request, which is how a rejoined node is discovered
// without chatter.
type endpoint struct {
	base    string
	healthy atomic.Bool

	requests atomic.Uint64
	failures atomic.Uint64

	mu      sync.Mutex
	lastErr string
}

func (ep *endpoint) fail(err error) {
	ep.healthy.Store(false)
	ep.failures.Add(1)
	ep.mu.Lock()
	ep.lastErr = err.Error()
	ep.mu.Unlock()
}

func (ep *endpoint) ok() {
	ep.healthy.Store(true)
	ep.mu.Lock()
	ep.lastErr = ""
	ep.mu.Unlock()
}

// group is a replica set: the endpoints announcing one identical owned
// shard set. Any member can answer the group's slice of a query.
type group struct {
	shards    []int // owned global indices, ascending
	endpoints []*endpoint
	next      atomic.Uint64 // rotation origin, spreads load across replicas
}

// Router is the stateless fan-out front of a cluster: it owns query
// parsing (its HTTP surface), hash placement, per-group dispatch with
// timeout/retry/health, and the (distance, ID) merge. It keeps no
// corpus state — any number of routers can front the same nodes.
type Router struct {
	total  int // global shard count, agreed by every node
	groups []*group
	client *http.Client
	cfg    Config

	queries  atomic.Uint64
	degraded atomic.Uint64
	retries  atomic.Uint64
}

// New probes every configured node's /cluster/v1/info, groups replicas
// by identical owned-shard sets, and verifies the groups tile the
// global placement: every shard covered, no shard claimed by two
// different sets (replicas of the same set are fine). A node that is
// down at boot is an error — the first fan-out would be degraded
// anyway, and a typo'd address should not boot quietly.
func New(ctx context.Context, cfg Config) (*Router, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes configured")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	rt := &Router{client: client, cfg: cfg}
	byKey := map[string]*group{}
	claimed := map[int]string{} // shard -> owning set key
	for _, base := range cfg.Nodes {
		base = strings.TrimRight(base, "/")
		var info NodeInfo
		if err := rt.getJSON(ctx, base+infoPath, &info); err != nil {
			return nil, fmt.Errorf("cluster: node %s: %w", base, err)
		}
		if info.Shards < 1 || len(info.Owned) == 0 {
			return nil, fmt.Errorf("cluster: node %s: malformed info (shards=%d owned=%v)", base, info.Shards, info.Owned)
		}
		if rt.total == 0 {
			rt.total = info.Shards
		} else if info.Shards != rt.total {
			return nil, fmt.Errorf("cluster: node %s places over %d shards, cluster uses %d", base, info.Shards, rt.total)
		}
		owned := append([]int(nil), info.Owned...)
		sort.Ints(owned)
		key := fmt.Sprint(owned)
		g := byKey[key]
		if g == nil {
			g = &group{shards: owned}
			byKey[key] = g
			for _, s := range owned {
				if other, ok := claimed[s]; ok && other != key {
					return nil, fmt.Errorf("cluster: shard %d claimed by both node sets %s and %s", s, other, key)
				}
				claimed[s] = key
			}
		}
		ep := &endpoint{base: base}
		ep.healthy.Store(true)
		g.endpoints = append(g.endpoints, ep)
	}
	for s := 0; s < rt.total; s++ {
		if _, ok := claimed[s]; !ok {
			return nil, fmt.Errorf("cluster: no node serves shard %d of %d", s, rt.total)
		}
	}
	// Deterministic group order by first shard: the sequential fan-out's
	// visit order, and the stats listing order.
	for _, g := range byKey {
		rt.groups = append(rt.groups, g)
	}
	sort.Slice(rt.groups, func(i, j int) bool { return rt.groups[i].shards[0] < rt.groups[j].shards[0] })
	return rt, nil
}

// ClusterShards returns the global shard count.
func (rt *Router) ClusterShards() int { return rt.total }

// groupFor returns the replica group serving global shard s.
func (rt *Router) groupFor(s int) *group {
	for _, g := range rt.groups {
		for _, o := range g.shards {
			if o == s {
				return g
			}
		}
	}
	return nil // unreachable: New verified coverage
}

// getJSON issues one GET under the router timeout and decodes the body.
func (rt *Router) getJSON(ctx context.Context, url string, dst any) error {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(dst)
}

// postNode issues one POST to a specific endpoint under the router
// timeout, decoding a 2xx body into dst and a non-2xx body into the
// engine's error envelope. An envelope error is returned as *nodeError
// — the node answered, it just refused — which is NOT a health failure.
func (rt *Router) postNode(ctx context.Context, ep *endpoint, path string, body, dst any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ep.base+path, bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	ep.requests.Add(1)
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 500 {
		// Server-side failure: treat like a dead node (retry a replica).
		return fmt.Errorf("%s%s: %s: %s", ep.base, path, resp.Status, strings.TrimSpace(string(data)))
	}
	if resp.StatusCode != http.StatusOK {
		var envelope server.ErrorResponse
		if json.Unmarshal(data, &envelope) == nil && envelope.Error != "" {
			return &nodeError{status: resp.StatusCode, code: envelope.Code, msg: envelope.Error}
		}
		return &nodeError{status: resp.StatusCode, msg: strings.TrimSpace(string(data))}
	}
	return json.Unmarshal(data, dst)
}

// nodeError is a node's own JSON error envelope: the node is up and
// answered deliberately, so the router reports the refusal to the
// client instead of failing over to a replica (which would answer the
// same way).
type nodeError struct {
	status int
	code   string
	msg    string
}

func (e *nodeError) Error() string { return e.msg }

// Status and Code surface the node's HTTP status and envelope code so
// the router's HTTP layer can forward them verbatim.
func (e *nodeError) Status() int  { return e.status }
func (e *nodeError) Code() string { return e.code }

// askGroup runs one request against a replica group with bounded
// retry: endpoints are tried at most once each, healthy ones first
// (starting at the rotation cursor), then — when none are healthy or
// all healthy ones just failed — the unhealthy ones, which is how a
// rejoined node is rediscovered. A *nodeError stops the retry loop
// (the node answered; replicas would answer identically).
func (rt *Router) askGroup(ctx context.Context, g *group, path string, body, dst any) error {
	n := len(g.endpoints)
	start := int(g.next.Add(1)-1) % n
	order := make([]*endpoint, 0, n)
	for i := 0; i < n; i++ {
		if ep := g.endpoints[(start+i)%n]; ep.healthy.Load() {
			order = append(order, ep)
		}
	}
	for i := 0; i < n; i++ {
		if ep := g.endpoints[(start+i)%n]; !ep.healthy.Load() {
			order = append(order, ep)
		}
	}
	var lastErr error
	for i, ep := range order {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := rt.postNode(ctx, ep, path, body, dst)
		if err == nil {
			ep.ok()
			return nil
		}
		var ne *nodeError
		if errors.As(err, &ne) {
			ep.ok() // the node is alive; its refusal is the answer
			return err
		}
		ep.fail(err)
		lastErr = err
		if i+1 < len(order) {
			rt.retries.Add(1)
		}
	}
	return fmt.Errorf("cluster: shards %v unavailable: %w", g.shards, lastErr)
}

// wireTraj converts the internal trajectory to its JSON form.
func wireTraj(t *traj.Trajectory) *server.WireTrajectory {
	pts := make([][3]float64, len(t.Points))
	for i, p := range t.Points {
		pts[i] = [3]float64{p.X, p.Y, p.T}
	}
	return &server.WireTrajectory{ID: t.ID, Label: t.Label, Points: pts}
}

// stubResults converts a node's wire neighbours into merge candidates.
// Only identity and distance travel over the wire, so the Traj carries
// ID and label alone — exactly what the router's own wire answers need.
func stubResults(ns []server.Neighbor) []backend.Result {
	out := make([]backend.Result, len(ns))
	for i, n := range ns {
		out[i] = backend.Result{Traj: &traj.Trajectory{ID: n.ID, Label: n.Label}, Dist: n.Dist}
	}
	return out
}

// addStats folds a node's wire stats into the running total.
func addStats(dst *backend.Stats, st *server.WireStats) {
	if st == nil {
		return
	}
	dst.DistanceCalls += st.DistanceCalls
	dst.EarlyAbandons += st.EarlyAbandons
	dst.LowerBoundCalls += st.LowerBoundCalls
	dst.NodesVisited += st.NodesVisited
	dst.NodesPruned += st.NodesPruned
	dst.PrefilterCandidates += st.PrefilterCandidates
	dst.PrefilterSkipped += st.PrefilterSkipped
}

// shipBound tightens the per-node request's Limit to the router's
// current merged k-th best: both the caller's Limit and the merged k-th
// best are admissible upper bounds on the global k-th best, so the
// smaller of the two seeds the node's SharedBound without changing any
// answer — only the work.
func shipBound(req server.Query, kb *backend.KBest) server.Query {
	if req.Kind == server.KindRange {
		return req
	}
	if b := kb.Bound(); !math.IsInf(b, 1) {
		if req.Limit == 0 || b < req.Limit {
			req.Limit = b
		}
	}
	return req
}

// Search executes one query across the cluster and merges the per-group
// answers by (distance, ID) — byte-identical to a single-process engine
// over the union corpus when every group answers. When a whole group is
// unreachable the answer covers the reachable shards and Degraded is
// set; an error is returned only for request-level failures (bad query,
// canceled context, a node's deliberate refusal).
func (rt *Router) Search(ctx context.Context, q *traj.Trajectory, req server.Query) (server.Answer, error) {
	rt.queries.Add(1)
	// The node request always asks for stats: the router's own WithStats
	// answer and its cumulative counters need them. The client-visible
	// with_stats still gates the answer copy.
	wq := wireTraj(q)
	if rt.cfg.Sequential && req.Kind != server.KindRange {
		return rt.searchSequential(ctx, wq, req)
	}
	type groupAnswer struct {
		resp server.SearchResponse
		err  error
	}
	answers := make([]groupAnswer, len(rt.groups))
	var wg sync.WaitGroup
	for i, g := range rt.groups {
		wg.Add(1)
		go func(i int, g *group) {
			defer wg.Done()
			nreq := server.SearchRequest{Query: req, QueryTraj: wq}
			nreq.WithStats = true
			answers[i].err = rt.askGroup(ctx, g, "/v1/search", nreq, &answers[i].resp)
		}(i, g)
	}
	wg.Wait()
	return rt.mergeAnswers(req, func(i int) (server.SearchResponse, error) {
		return answers[i].resp, answers[i].err
	})
}

// searchSequential is the bound-shipping fan-out in its tightest form:
// groups are visited in shard order and each request carries the merged
// k-th best of all earlier groups. With single-worker nodes this makes
// the cluster's total full evaluations deterministic and no worse than
// the single-process engine's inline shared-bound loop over the same
// shards (the shipped bound is the merged k-th best of every earlier
// shard, at least as tight as the single process's bound at the same
// point).
func (rt *Router) searchSequential(ctx context.Context, wq *server.WireTrajectory, req server.Query) (server.Answer, error) {
	kb := backend.NewKBest(req.K)
	var stats backend.Stats
	truncated, degraded := false, false
	for _, g := range rt.groups {
		nreq := server.SearchRequest{Query: shipBound(req, kb), QueryTraj: wq}
		nreq.WithStats = true
		var resp server.SearchResponse
		if err := rt.askGroup(ctx, g, "/v1/search", nreq, &resp); err != nil {
			var ne *nodeError
			if errors.As(err, &ne) {
				return server.Answer{}, err
			}
			if err := ctx.Err(); err != nil {
				return server.Answer{}, err
			}
			degraded = true
			continue
		}
		for _, r := range stubResults(resp.Results) {
			kb.Offer(r.Traj, r.Dist)
		}
		addStats(&stats, resp.Stats)
		truncated = truncated || resp.Truncated
	}
	if degraded {
		rt.degraded.Add(1)
	}
	ans := server.Answer{Results: kb.Results(), Truncated: truncated, Degraded: degraded}
	if req.WithStats {
		ans.Stats = stats
	}
	return ans, nil
}

// mergeAnswers folds per-group responses into one Answer: KBest for the
// k-NN kinds, a full (distance, ID) sort for range. A group that failed
// at transport level degrades the answer; a group that refused
// (nodeError) fails the whole query — the refusal is about the request,
// not the node.
func (rt *Router) mergeAnswers(req server.Query, get func(int) (server.SearchResponse, error)) (server.Answer, error) {
	var stats backend.Stats
	truncated, degraded := false, false
	var all []backend.Result
	for i := range rt.groups {
		resp, err := get(i)
		if err != nil {
			var ne *nodeError
			if errors.As(err, &ne) {
				return server.Answer{}, err
			}
			degraded = true
			continue
		}
		all = append(all, stubResults(resp.Results)...)
		addStats(&stats, resp.Stats)
		truncated = truncated || resp.Truncated
	}
	if degraded {
		rt.degraded.Add(1)
	}
	var res []backend.Result
	if req.Kind == server.KindRange {
		sort.Slice(all, func(i, j int) bool {
			if all[i].Dist != all[j].Dist {
				return all[i].Dist < all[j].Dist
			}
			return all[i].Traj.ID < all[j].Traj.ID
		})
		res = all
	} else {
		kb := backend.NewKBest(req.K)
		for _, r := range all {
			kb.Offer(r.Traj, r.Dist)
		}
		res = kb.Results()
	}
	ans := server.Answer{Results: res, Truncated: truncated, Degraded: degraded}
	if req.WithStats {
		ans.Stats = stats
	}
	return ans, nil
}

// Insert routes one trajectory to the node group owning its shard. A
// transport-level group failure is an error — unlike a search, a
// mutation cannot be partially right.
func (rt *Router) Insert(ctx context.Context, t *traj.Trajectory) error {
	g := rt.groupFor(server.ShardOf(t.ID, rt.total))
	body := server.InsertRequest{Trajectories: []server.WireTrajectory{*wireTraj(t)}}
	var resp server.InsertResponse
	return rt.askGroup(ctx, g, "/v1/insert", body, &resp)
}

// Delete routes one delete to the owning group, reporting presence.
func (rt *Router) Delete(ctx context.Context, id int) (bool, error) {
	g := rt.groupFor(server.ShardOf(id, rt.total))
	var resp server.DeleteResponse
	if err := rt.askGroup(ctx, g, "/v1/delete", server.DeleteRequest{IDs: []int{id}}, &resp); err != nil {
		return false, err
	}
	return resp.Deleted > 0, nil
}

// NodeStatus is one endpoint's slice of the router's /v1/stats: the
// per-node health the partial-answer disposition points operators at.
type NodeStatus struct {
	Endpoint  string `json:"endpoint"`
	Shards    []int  `json:"shards"`
	Healthy   bool   `json:"healthy"`
	Requests  uint64 `json:"requests"`
	Failures  uint64 `json:"failures"`
	LastError string `json:"last_error,omitempty"`
}

// Stats is the router's /v1/stats payload. The router holds no corpus,
// so its stats are routing facts: placement, traffic, degradation, and
// per-node health.
type Stats struct {
	ClusterShards int          `json:"cluster_shards"`
	ShardGroups   int          `json:"shard_groups"`
	Queries       uint64       `json:"queries"`
	Degraded      uint64       `json:"degraded_answers"`
	Retries       uint64       `json:"retries"`
	Nodes         []NodeStatus `json:"nodes"`
}

// Stats snapshots the router counters and per-node health.
func (rt *Router) Stats() Stats {
	st := Stats{
		ClusterShards: rt.total,
		ShardGroups:   len(rt.groups),
		Queries:       rt.queries.Load(),
		Degraded:      rt.degraded.Load(),
		Retries:       rt.retries.Load(),
	}
	for _, g := range rt.groups {
		for _, ep := range g.endpoints {
			ep.mu.Lock()
			lastErr := ep.lastErr
			ep.mu.Unlock()
			st.Nodes = append(st.Nodes, NodeStatus{
				Endpoint:  ep.base,
				Shards:    g.shards,
				Healthy:   ep.healthy.Load(),
				Requests:  ep.requests.Load(),
				Failures:  ep.failures.Load(),
				LastError: lastErr,
			})
		}
	}
	return st
}

// Nodes returns the configured node base URLs (for /v1/version).
func (rt *Router) Nodes() []string {
	var out []string
	for _, g := range rt.groups {
		for _, ep := range g.endpoints {
			out = append(out, ep.base)
		}
	}
	sort.Strings(out)
	return out
}
