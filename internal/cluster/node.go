// Package cluster promotes the engine's shards from goroutines to
// processes: a shard node serves a partitioned engine (a subset of the
// global hash placement) over HTTP, and a stateless router owns query
// parsing, placement, fan-out and the (distance, ID) merge, stitching
// the nodes' owned subsets back into one logical index.
//
// The internal shard protocol deliberately IS the public versioned JSON
// API (internal/server's /v1 surface): a shard node's engine already
// answers exactly its shards' slice of any query, Query.Limit already
// carries an external admissible bound (the router ships its running
// k-th best there — one-shot seeding, no mid-search chatter), and the
// per-query WireStats already expose the work counters the cluster
// tests assert on. On top of /v1 a node adds two cluster-only
// endpoints: GET /cluster/v1/info (placement discovery — global shard
// count, owned shards) and GET /cluster/v1/snapshot/{file} (snapshot
// shipping — a replica warm-boots by fetching the peer's shard-NNNN
// sections instead of rebuilding; see FetchSnapshot).
//
// Correctness of bound shipping: the router's merged k-th-best-so-far
// is the k-th smallest of a subset of the corpus, hence an admissible
// upper bound on the global k-th best. Backends abandon strictly above
// a bound and never at it, with (distance, ID) tie-breaks, so a seeded
// node returns every global-answer member it owns and the router's
// KBest merge is byte-identical to the single-process answer — the
// bound only removes work, never results. The router fans out
// concurrently by default (each node gets the bound known at dispatch
// time, degrading gracefully toward per-shard bounds); Config.Sequential
// visits groups in shard order shipping the freshest bound, which the
// work-counter test compares against the single-process shared-bound
// baseline.
package cluster

import (
	"fmt"
	"net/http"
	"path/filepath"

	"trajmatch/internal/server"
)

// Cluster-protocol paths a shard node serves beside the public /v1
// surface.
const (
	infoPath     = "/cluster/v1/info"
	snapshotPath = "/cluster/v1/snapshot/"
)

// NodeInfo is the payload of GET /cluster/v1/info: the placement facts
// a router needs to admit the node into a cluster, plus enough shape
// for an operator probing the port.
type NodeInfo struct {
	// Shards is the global hash modulus; every node and the router must
	// agree on it or IDs would route differently per process.
	Shards int `json:"shards"`
	// Owned lists the global shard indices this node serves, ascending.
	Owned []int `json:"owned"`
	// Metrics are the loaded backends, boot order (first is default).
	Metrics []string `json:"metrics"`
	// Size is the node's indexed trajectory count (its shards only).
	Size int `json:"size"`
	// Snapshot reports whether the node can serve snapshot sections
	// (it has a snapshot directory configured).
	Snapshot bool `json:"snapshot"`
}

// NodeHandler wraps the engine's public API handler with the cluster
// endpoints. Mutations on foreign IDs already answer 421 not_owned at
// the engine layer, so a node is safe to expose even to a confused
// router; the snapshot endpoint serves only manifest/shard/arena file
// names (allowlisted), never arbitrary paths.
func NodeHandler(e *server.Engine, opt server.HandlerOptions) http.Handler {
	// A node behind this handler is a shard server whatever the caller
	// passed, so /v1/version defaults to the shard role (with the node's
	// placement) rather than standalone.
	if opt.Version == nil {
		vi := server.NewVersionInfo(server.RoleShard, e)
		opt.Version = &vi
	}
	api := server.NewAPIHandler(e, opt)
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+infoPath, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, NodeInfo{
			Shards:   e.ClusterShards(),
			Owned:    e.OwnedShards(),
			Metrics:  e.Metrics(),
			Size:     e.Size(),
			Snapshot: e.SnapshotDir() != "",
		})
	})
	mux.HandleFunc("GET "+snapshotPath+"{file}", func(w http.ResponseWriter, r *http.Request) {
		dir := e.SnapshotDir()
		if dir == "" {
			writeErr(w, http.StatusPreconditionFailed, server.CodePreconditionFailed,
				"no snapshot directory configured on this node")
			return
		}
		name := r.PathValue("file")
		if !server.IsSnapshotFileName(name) {
			writeErr(w, http.StatusNotFound, server.CodeNotFound,
				fmt.Sprintf("not a snapshot file: %q", name))
			return
		}
		// The allowlist admits only the fixed manifest name and
		// shard-NNNN.{tree,arena} shapes, so the join cannot escape dir.
		http.ServeFile(w, r, filepath.Join(dir, name))
	})
	mux.Handle("/", api)
	return mux
}
