package baseline

import (
	"trajmatch/internal/core"
	"trajmatch/internal/traj"
)

// EDR is Edit Distance on Real sequence (Chen, Özsu, Oria; SIGMOD 2005).
// The subsequence cost is 0 when two points match within the spatial
// threshold Eps and 1 otherwise; insertions and deletions cost 1. The
// distance is the integer edit count, exactly the quantity used in the
// paper's Fig. 1 walk-throughs.
type EDR struct {
	// Eps is the spatial matching threshold ε.
	Eps float64
}

// Name implements Metric.
func (EDR) Name() string { return "EDR" }

// Dist implements Metric.
func (e EDR) Dist(a, b *traj.Trajectory) float64 {
	d, _ := e.edits(a.Points, b.Points, -1, nil)
	return float64(d)
}

// DistEarlyAbandon computes EDR but returns early with a value > bound as
// soon as the distance probably exceeds bound (bound < 0 disables). The EDR
// index uses this to cut off hopeless candidates.
func (e EDR) DistEarlyAbandon(a, b *traj.Trajectory, bound int) float64 {
	d, _ := e.edits(a.Points, b.Points, bound, nil)
	return float64(d)
}

// DistEarlyAbandonCancel is DistEarlyAbandon with a cooperative
// cancellation flag polled once per DP row, plus an explicit abandon
// report: abandoned is true when the row-minimum test cut the program
// short (the value is then a lower bound > bound, not the distance) or
// the flag fired mid-evaluation (the value is then meaningless and the
// caller must discard the whole answer via its Ctl's error).
func (e EDR) DistEarlyAbandonCancel(a, b *traj.Trajectory, bound int, cancel *core.Cancel) (float64, bool) {
	d, abandoned := e.edits(a.Points, b.Points, bound, cancel)
	return float64(d), abandoned
}

func (e EDR) edits(P, Q []traj.Point, bound int, cancel *core.Cancel) (int, bool) {
	n, m := len(P), len(Q)
	if n == 0 {
		return m, false
	}
	if m == 0 {
		return n, false
	}
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for j := 0; j <= m; j++ {
		prev[j] = j
	}
	for i := 1; i <= n; i++ {
		if cancel.Cancelled() {
			return 0, true
		}
		cur[0] = i
		rowMin := cur[0]
		for j := 1; j <= m; j++ {
			sub := 1
			if P[i-1].Dist(Q[j-1]) <= e.Eps {
				sub = 0
			}
			v := prev[j-1] + sub
			if prev[j]+1 < v {
				v = prev[j] + 1
			}
			if cur[j-1]+1 < v {
				v = cur[j-1] + 1
			}
			cur[j] = v
			if v < rowMin {
				rowMin = v
			}
		}
		if bound >= 0 && rowMin > bound {
			return rowMin, true // every completion is at least this expensive
		}
		prev, cur = cur, prev
	}
	return prev[m], false
}
