package baseline

import (
	"math"
	"math/rand"
	"testing"

	"trajmatch/internal/core"
	"trajmatch/internal/traj"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func randomTraj(rng *rand.Rand, n int) *traj.Trajectory {
	pts := make([]traj.Point, n)
	x, y := rng.Float64()*50, rng.Float64()*50
	for i := range pts {
		pts[i] = traj.P(x, y, float64(i)*10)
		x += rng.NormFloat64() * 4
		y += rng.NormFloat64() * 4
	}
	return traj.New(0, pts)
}

// Every metric must score a trajectory at distance 0 (or near-0) from
// itself and be symmetric.
func TestIdentityAndSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	metrics := append(All(2.0), Lockstep{}, Frechet{}, Hausdorff{})
	for _, m := range metrics {
		t.Run(m.Name(), func(t *testing.T) {
			for it := 0; it < 30; it++ {
				a := randomTraj(rng, 2+rng.Intn(10))
				b := randomTraj(rng, 2+rng.Intn(10))
				if d := m.Dist(a, a); d > 1e-9 {
					t.Fatalf("%s(T,T) = %v, want 0", m.Name(), d)
				}
				d1, d2 := m.Dist(a, b), m.Dist(b, a)
				if math.Abs(d1-d2) > 1e-6*(1+math.Abs(d1)) {
					t.Fatalf("%s asymmetric: %v vs %v", m.Name(), d1, d2)
				}
				if d1 < 0 || math.IsNaN(d1) {
					t.Fatalf("%s invalid distance %v", m.Name(), d1)
				}
			}
		})
	}
}

// Fig. 1(b): with ε = 2, four of five points identical and the fifth far
// apart gives EDR = 1, even though the trajectories diverge over most of
// their length — the intra-trajectory weakness EDwP fixes.
func TestEDRFig1bScenario(t *testing.T) {
	// Densely sampled shared region, then one far diverging sample.
	t1 := traj.New(0, []traj.Point{
		traj.P(0, 0, 0), traj.P(1, 0, 1), traj.P(2, 0, 2), traj.P(3, 0, 3),
		traj.P(3, 100, 103),
	})
	t2 := traj.New(1, []traj.Point{
		traj.P(0, 0, 0), traj.P(1, 0, 1), traj.P(2, 0, 2), traj.P(3, 0, 3),
		traj.P(103, 0, 103),
	})
	edr := EDR{Eps: 2}
	if got := edr.Dist(t1, t2); !almost(got, 1) {
		t.Errorf("EDR Fig1b = %v, want 1", got)
	}
}

// Fig. 1(c): phase-shifted uniform sampling of an overlapping contour. At
// ε = 2 no points match (EDR = 3, the maximum); at ε = 3 all match
// (EDR = 0) — the threshold cliff of Section II.4.
func TestEDRFig1cThresholdCliff(t *testing.T) {
	t1 := traj.New(0, []traj.Point{traj.P(0, 0, 0), traj.P(0, 50, 50), traj.P(0, 100, 100)})
	t2 := traj.New(1, []traj.Point{traj.P(0, 2.5, 0), traj.P(0, 52.5, 50), traj.P(0, 97.5, 100)})
	if got := (EDR{Eps: 2}).Dist(t1, t2); !almost(got, 3) {
		t.Errorf("EDR ε=2 = %v, want 3 (maximum)", got)
	}
	if got := (EDR{Eps: 3}).Dist(t1, t2); !almost(got, 0) {
		t.Errorf("EDR ε=3 = %v, want 0", got)
	}
}

// Example 3's ordering claim: EDwP must rank the Fig. 1(c) pair (same
// contour, shifted phase) as far more similar than the Fig. 1(b) pair
// (mostly diverging), the opposite of what EDR concludes at ε = 2.
func TestEDwPOrdersFig1bAgainstFig1c(t *testing.T) {
	b1 := traj.New(0, []traj.Point{
		traj.P(0, 0, 0), traj.P(1, 0, 1), traj.P(2, 0, 2), traj.P(3, 0, 3),
		traj.P(3, 100, 103),
	})
	b2 := traj.New(1, []traj.Point{
		traj.P(0, 0, 0), traj.P(1, 0, 1), traj.P(2, 0, 2), traj.P(3, 0, 3),
		traj.P(103, 0, 103),
	})
	c1 := traj.New(2, []traj.Point{traj.P(0, 0, 0), traj.P(0, 50, 50), traj.P(0, 100, 100)})
	c2 := traj.New(3, []traj.Point{traj.P(0, 2.5, 0), traj.P(0, 52.5, 50), traj.P(0, 97.5, 100)})

	divergent := core.Distance(b1, b2)
	phased := core.Distance(c1, c2)
	if phased >= divergent {
		t.Errorf("EDwP: phase pair %v not less than divergent pair %v", phased, divergent)
	}
	// EDR at ε=2 claims the opposite ordering.
	edr := EDR{Eps: 2}
	if edr.Dist(b1, b2) >= edr.Dist(c1, c2) {
		t.Error("test scenario broken: EDR should misorder these pairs")
	}
}

func TestEDRIntegerAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	edr := EDR{Eps: 3}
	for it := 0; it < 50; it++ {
		a := randomTraj(rng, 2+rng.Intn(10))
		b := randomTraj(rng, 2+rng.Intn(10))
		d := edr.Dist(a, b)
		if d != math.Trunc(d) {
			t.Fatalf("EDR not integral: %v", d)
		}
		n, m := float64(a.NumPoints()), float64(b.NumPoints())
		if d > math.Max(n, m)+1e-9 || d < math.Abs(n-m)-1e-9 {
			t.Fatalf("EDR %v outside [%v, %v]", d, math.Abs(n-m), math.Max(n, m))
		}
	}
}

func TestEDREarlyAbandonConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	edr := EDR{Eps: 3}
	for it := 0; it < 50; it++ {
		a := randomTraj(rng, 2+rng.Intn(12))
		b := randomTraj(rng, 2+rng.Intn(12))
		full := edr.Dist(a, b)
		// With a bound at least the true distance, the exact value returns.
		if got := edr.DistEarlyAbandon(a, b, int(full)); got != full {
			t.Fatalf("early abandon altered result: %v vs %v", got, full)
		}
		// With a tighter bound, the result must still exceed the bound.
		if full > 0 {
			if got := edr.DistEarlyAbandon(a, b, int(full)-1); got < full-float64(int(full)-1) && got <= float64(int(full)-1) {
				t.Fatalf("early abandon returned %v, which does not certify bound %v", got, int(full)-1)
			}
		}
	}
}

func TestLCSSRange(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	l := LCSS{Eps: 3}
	for it := 0; it < 50; it++ {
		a := randomTraj(rng, 2+rng.Intn(10))
		b := randomTraj(rng, 2+rng.Intn(10))
		d := l.Dist(a, b)
		if d < -1e-9 || d > 1+1e-9 {
			t.Fatalf("LCSS distance %v outside [0,1]", d)
		}
	}
	// Identical sequences: distance 0. Disjoint: 1.
	a := traj.FromXY(0, 0, 0, 1, 0, 2, 0)
	far := traj.FromXY(1, 100, 100, 101, 100, 102, 100)
	if got := l.Dist(a, a); got != 0 {
		t.Errorf("LCSS self = %v", got)
	}
	if got := l.Dist(a, far); got != 1 {
		t.Errorf("LCSS disjoint = %v, want 1", got)
	}
}

// ERP is a metric: verify the triangle inequality on random triples (the
// property the paper cites as ERP's distinguishing feature).
func TestERPTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	e := ERP{}
	for it := 0; it < 100; it++ {
		a := randomTraj(rng, 2+rng.Intn(6))
		b := randomTraj(rng, 2+rng.Intn(6))
		c := randomTraj(rng, 2+rng.Intn(6))
		ab, bc, ac := e.Dist(a, b), e.Dist(b, c), e.Dist(a, c)
		if ac > ab+bc+1e-6 {
			t.Fatalf("ERP triangle violated: %v > %v + %v", ac, ab, bc)
		}
	}
}

// EDwP is non-metric (Theorem 1) — the Appendix-A counterexample.
func TestEDwPNotAMetricButERPIs(t *testing.T) {
	t1 := traj.FromXY(0, 0, 0, 0, 1)
	t2 := traj.FromXY(1, 0, 0, 0, 1, 0, 2)
	t3 := traj.FromXY(2, 0, 0, 0, 1, 0, 2, 0, 3)
	edwp := EDwP{Cumulative: true}
	if edwp.Dist(t1, t2)+edwp.Dist(t2, t3) >= edwp.Dist(t1, t3) {
		t.Error("EDwP triangle unexpectedly holds on Appendix A example")
	}
	e := ERP{}
	if e.Dist(t1, t3) > e.Dist(t1, t2)+e.Dist(t2, t3)+1e-9 {
		t.Error("ERP triangle violated on Appendix A example")
	}
}

func TestDTWHandlesLocalTimeShift(t *testing.T) {
	// Same contour, speed differs between halves: DTW absorbs it via
	// many-to-one mapping, lock-step L2 cannot.
	t1 := traj.New(0, []traj.Point{
		traj.P(0, 0, 0), traj.P(1, 0, 1), traj.P(2, 0, 2), traj.P(3, 0, 3),
		traj.P(6, 0, 4), traj.P(9, 0, 5),
	})
	t2 := traj.New(1, []traj.Point{
		traj.P(0, 0, 0), traj.P(3, 0, 1), traj.P(6, 0, 2), traj.P(7, 0, 3),
		traj.P(8, 0, 4), traj.P(9, 0, 5),
	})
	dtw := DTW{}.Dist(t1, t2)
	l2 := Lockstep{}.Dist(t1, t2)
	if dtw >= l2 {
		t.Errorf("DTW %v not better than lock-step %v under time shift", dtw, l2)
	}
}

func TestLockstepInfiniteOnLengthMismatch(t *testing.T) {
	a := traj.FromXY(0, 0, 0, 1, 0)
	b := traj.FromXY(1, 0, 0, 1, 0, 2, 0)
	if got := (Lockstep{}).Dist(a, b); !math.IsInf(got, 1) {
		t.Errorf("lock-step over different lengths = %v, want +Inf", got)
	}
}

// DISSIM is tied to absolute time: an identical path traversed at a
// different speed scores poorly (Table I's local-time-shift column).
func TestDISSIMSpeedSensitivity(t *testing.T) {
	path := traj.New(0, []traj.Point{traj.P(0, 0, 0), traj.P(100, 0, 100)})
	slowFirst := traj.New(1, []traj.Point{traj.P(0, 0, 0), traj.P(20, 0, 80), traj.P(100, 0, 100)})
	same := path.Clone()
	d := DISSIM{}
	if got := d.Dist(path, same); got != 0 {
		t.Errorf("DISSIM self = %v", got)
	}
	if got := d.Dist(path, slowFirst); got <= 0 {
		t.Errorf("DISSIM ignored a speed change: %v", got)
	}
	// EDwP is speed-insensitive on the same contour.
	if got := core.Distance(path, slowFirst); !almost(got, 0) {
		t.Errorf("EDwP penalised a pure speed change: %v", got)
	}
}

func TestDISSIMTrapezoidValue(t *testing.T) {
	// Parallel lines distance 3 apart over [0,10]: integral = 30.
	a := traj.New(0, []traj.Point{traj.P(0, 0, 0), traj.P(10, 0, 10)})
	b := traj.New(1, []traj.Point{traj.P(0, 3, 0), traj.P(10, 3, 10)})
	if got := (DISSIM{}).Dist(a, b); !almost(got, 30) {
		t.Errorf("DISSIM = %v, want 30", got)
	}
}

// Fig. 1(d): MA cannot distinguish order-scrambled points that project onto
// the same places, while EDwP can.
func TestMAOrderBlindnessVsEDwP(t *testing.T) {
	host := traj.New(0, []traj.Point{traj.P(0, 0, 0), traj.P(10, 0, 10)})
	ordered := traj.New(1, []traj.Point{traj.P(2, 1, 0), traj.P(5, 1, 5), traj.P(8, 1, 10)})
	scrambled := traj.New(2, []traj.Point{traj.P(2, 1, 0), traj.P(8, 1, 5), traj.P(5, 1, 10)})

	ma := DefaultMA(2)
	dOrd, dScr := ma.Dist(ordered, host), ma.Dist(scrambled, host)
	if math.Abs(dOrd-dScr) > 1e-9 {
		t.Errorf("MA distinguishes order: %v vs %v (expected blindness per Fig. 1(d))", dOrd, dScr)
	}
	eOrd, eScr := core.Distance(ordered, host), core.Distance(scrambled, host)
	if eOrd >= eScr {
		t.Errorf("EDwP failed to prefer the ordered variant: %v vs %v", eOrd, eScr)
	}
}

// Discrete Fréchet ≤ DTW (a max is at most a sum over any coupling) and
// Hausdorff ≤ discrete Fréchet.
func TestFrechetDTWHausdorffOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	for it := 0; it < 60; it++ {
		a := randomTraj(rng, 2+rng.Intn(8))
		b := randomTraj(rng, 2+rng.Intn(8))
		fr := Frechet{}.Dist(a, b)
		dtw := DTW{}.Dist(a, b)
		hd := Hausdorff{}.Dist(a, b)
		if fr > dtw+1e-9 {
			t.Fatalf("Fréchet %v > DTW %v", fr, dtw)
		}
		if hd > fr+1e-9 {
			t.Fatalf("Hausdorff %v > Fréchet %v", hd, fr)
		}
	}
}

func TestAllSuite(t *testing.T) {
	ms := All(2.5)
	if len(ms) != 7 {
		t.Fatalf("All returned %d metrics", len(ms))
	}
	names := map[string]bool{}
	for _, m := range ms {
		if names[m.Name()] {
			t.Errorf("duplicate metric %s", m.Name())
		}
		names[m.Name()] = true
	}
	for _, want := range []string{"EDwP", "DTW", "LCSS", "ERP", "EDR", "DISSIM", "MA"} {
		if !names[want] {
			t.Errorf("suite missing %s", want)
		}
	}
}
