// Package baseline implements the trajectory distance functions the paper
// compares EDwP against (Table I): DTW, LCSS, ERP, EDR, DISSIM and the
// model-driven assignment MA, plus three classical extras (lock-step L2,
// discrete Fréchet, Hausdorff) used in ablations. Each metric is a small
// value type satisfying Metric, so the evaluation harness can sweep over
// them uniformly.
package baseline

import (
	"trajmatch/internal/core"
	"trajmatch/internal/traj"
)

// Metric is a trajectory distance function. Implementations must be
// stateless (safe for concurrent use) value types.
type Metric interface {
	// Name returns the short display name used in experiment tables.
	Name() string
	// Dist returns the distance between two trajectories. Smaller is more
	// similar. The scale is metric-specific; only the induced ranking is
	// comparable across metrics.
	Dist(a, b *traj.Trajectory) float64
}

// EDwP adapts the core package's distance to the Metric interface. The
// paper's experiments use the length-normalised form (Eq. 4), which is the
// default here.
type EDwP struct {
	// Cumulative switches to the unnormalised distance when true.
	Cumulative bool
}

// Name implements Metric.
func (e EDwP) Name() string { return "EDwP" }

// Dist implements Metric.
func (e EDwP) Dist(a, b *traj.Trajectory) float64 {
	if e.Cumulative {
		return core.Distance(a, b)
	}
	return core.AvgDistance(a, b)
}

// All returns the full benchmark suite with the given matching threshold
// for the threshold-dependent metrics (ε for LCSS/EDR, derived gap for
// ERP/MA), in the order the paper lists them.
func All(eps float64) []Metric {
	return []Metric{
		EDwP{},
		DTW{},
		LCSS{Eps: eps},
		ERP{},
		EDR{Eps: eps},
		DISSIM{},
		DefaultMA(eps),
	}
}
