package baseline

import (
	"math"

	"trajmatch/internal/traj"
)

// DTW is Dynamic Time Warping (Yi, Jagadish, Faloutsos; ICDE 1998) over the
// sampled points with Euclidean ground distance and unconstrained warping
// window. It handles local time shifts through many-to-one point mappings
// but, as Section II argues, remains tied to the sampled points.
type DTW struct{}

// Name implements Metric.
func (DTW) Name() string { return "DTW" }

// Dist implements Metric. Cost is O(n·m) time, O(m) space.
func (DTW) Dist(a, b *traj.Trajectory) float64 {
	P, Q := a.Points, b.Points
	n, m := len(P), len(Q)
	if n == 0 && m == 0 {
		return 0
	}
	if n == 0 || m == 0 {
		return math.Inf(1)
	}
	inf := math.Inf(1)
	prev := make([]float64, m)
	cur := make([]float64, m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			d := P[i].Dist(Q[j])
			switch {
			case i == 0 && j == 0:
				cur[j] = d
			case i == 0:
				cur[j] = cur[j-1] + d
			case j == 0:
				cur[j] = prev[j] + d
			default:
				best := prev[j-1]
				if prev[j] < best {
					best = prev[j]
				}
				if cur[j-1] < best {
					best = cur[j-1]
				}
				cur[j] = best + d
			}
		}
		prev, cur = cur, prev
		for k := range cur {
			cur[k] = inf
		}
	}
	return prev[m-1]
}
