package baseline

import (
	"math"

	"trajmatch/internal/traj"
)

// LCSS is the Longest Common Sub-Sequence similarity of Vlachos, Gunopoulos
// and Kollios (ICDE 2002): two points "match" when they are within the
// spatial threshold Eps (Euclidean, following the host paper's usage), and
// the distance is 1 − LCSS/min(n,m) so that 0 means every point of the
// shorter trajectory matches.
type LCSS struct {
	// Eps is the spatial matching threshold ε.
	Eps float64
}

// Name implements Metric.
func (LCSS) Name() string { return "LCSS" }

// Dist implements Metric.
func (l LCSS) Dist(a, b *traj.Trajectory) float64 {
	P, Q := a.Points, b.Points
	n, m := len(P), len(Q)
	if n == 0 || m == 0 {
		if n == m {
			return 0
		}
		return 1
	}
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			if P[i-1].Dist(Q[j-1]) <= l.Eps {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
		for k := range cur {
			cur[k] = 0
		}
	}
	lcs := prev[m]
	den := math.Min(float64(n), float64(m))
	return 1 - float64(lcs)/den
}
