package baseline

import (
	"math"
	"sort"

	"trajmatch/internal/traj"
)

// DISSIM is the dissimilarity of Frentzos, Gratsias and Theodoridis (ICDE
// 2007): the integral over time of the Euclidean distance between the two
// (linearly interpolated) moving objects,
//
//	DISSIM(T1,T2) = ∫ dist(T1(t), T2(t)) dt
//
// evaluated over the common lifespan and approximated — as in the original
// paper — by the trapezoidal rule over the union of both trajectories'
// sample timestamps. Because the mapping is one-to-one in time, DISSIM
// cannot absorb local time shifts (Table I).
type DISSIM struct{}

// Name implements Metric.
func (DISSIM) Name() string { return "DISSIM" }

// Dist implements Metric.
func (DISSIM) Dist(a, b *traj.Trajectory) float64 {
	if a.NumPoints() == 0 || b.NumPoints() == 0 {
		return math.Inf(1)
	}
	start := math.Max(a.Points[0].T, b.Points[0].T)
	end := math.Min(a.Points[len(a.Points)-1].T, b.Points[len(b.Points)-1].T)
	if end < start {
		// Disjoint lifespans: fall back to the distance at the nearest
		// instants, scaled by zero duration — the original definition is
		// undefined here; we return the gap distance so that ordering
		// remains sensible.
		return a.At(start).Dist(b.At(start))
	}
	ts := timestampUnion(a, b, start, end)
	var sum float64
	for i := 1; i < len(ts); i++ {
		d0 := a.At(ts[i-1]).Dist(b.At(ts[i-1]))
		d1 := a.At(ts[i]).Dist(b.At(ts[i]))
		sum += (d0 + d1) / 2 * (ts[i] - ts[i-1])
	}
	if len(ts) == 1 {
		return a.At(ts[0]).Dist(b.At(ts[0]))
	}
	return sum
}

// timestampUnion merges both trajectories' timestamps clipped to
// [start, end], deduplicated and sorted, always including the boundaries.
func timestampUnion(a, b *traj.Trajectory, start, end float64) []float64 {
	ts := make([]float64, 0, a.NumPoints()+b.NumPoints()+2)
	ts = append(ts, start, end)
	for _, p := range a.Points {
		if p.T > start && p.T < end {
			ts = append(ts, p.T)
		}
	}
	for _, p := range b.Points {
		if p.T > start && p.T < end {
			ts = append(ts, p.T)
		}
	}
	sort.Float64s(ts)
	out := ts[:1]
	for _, t := range ts[1:] {
		if t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return out
}
