package baseline

import (
	"math"

	"trajmatch/internal/traj"
)

// ERP is Edit distance with Real Penalty (Chen, Ng; VLDB 2004): an edit
// distance whose gap cost is the distance to a fixed reference point g,
// which makes it a true metric. GX/GY default to the origin, the reference
// the original paper recommends after centring the data.
type ERP struct {
	// GX, GY locate the gap reference point g.
	GX, GY float64
}

// Name implements Metric.
func (ERP) Name() string { return "ERP" }

// Dist implements Metric.
func (e ERP) Dist(a, b *traj.Trajectory) float64 {
	P, Q := a.Points, b.Points
	n, m := len(P), len(Q)
	g := traj.P(e.GX, e.GY, 0)
	if n == 0 && m == 0 {
		return 0
	}
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	prev[0] = 0
	for j := 1; j <= m; j++ {
		prev[j] = prev[j-1] + Q[j-1].Dist(g)
	}
	for i := 1; i <= n; i++ {
		cur[0] = prev[0] + P[i-1].Dist(g)
		for j := 1; j <= m; j++ {
			match := prev[j-1] + P[i-1].Dist(Q[j-1])
			gapP := prev[j] + P[i-1].Dist(g)
			gapQ := cur[j-1] + Q[j-1].Dist(g)
			cur[j] = math.Min(match, math.Min(gapP, gapQ))
		}
		prev, cur = cur, prev
	}
	return prev[m]
}
