package baseline

import (
	"math"

	"trajmatch/internal/traj"
)

// Lockstep is the basic Lp-norm model Section I opens with: a one-to-one
// alignment of the i-th samples, summed with Euclidean ground distance.
// Trajectories of different sample counts are at infinite distance, the
// behaviour that motivates everything else in the paper.
type Lockstep struct{}

// Name implements Metric.
func (Lockstep) Name() string { return "L2" }

// Dist implements Metric.
func (Lockstep) Dist(a, b *traj.Trajectory) float64 {
	if len(a.Points) != len(b.Points) {
		return math.Inf(1)
	}
	var sum float64
	for i := range a.Points {
		sum += a.Points[i].Dist(b.Points[i])
	}
	return sum
}

// Frechet is the discrete Fréchet distance (the classical "dog leash"
// measure over sampled points), included as an ablation comparator.
type Frechet struct{}

// Name implements Metric.
func (Frechet) Name() string { return "Frechet" }

// Dist implements Metric.
func (Frechet) Dist(a, b *traj.Trajectory) float64 {
	P, Q := a.Points, b.Points
	n, m := len(P), len(Q)
	if n == 0 || m == 0 {
		if n == m {
			return 0
		}
		return math.Inf(1)
	}
	prev := make([]float64, m)
	cur := make([]float64, m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			d := P[i].Dist(Q[j])
			switch {
			case i == 0 && j == 0:
				cur[j] = d
			case i == 0:
				cur[j] = math.Max(cur[j-1], d)
			case j == 0:
				cur[j] = math.Max(prev[j], d)
			default:
				best := prev[j-1]
				if prev[j] < best {
					best = prev[j]
				}
				if cur[j-1] < best {
					best = cur[j-1]
				}
				cur[j] = math.Max(best, d)
			}
		}
		prev, cur = cur, prev
	}
	return prev[m-1]
}

// Hausdorff is the symmetric Hausdorff distance between the two sampled
// point sets against the opposite polyline (segments, not just samples),
// an order-free comparator used in ablations.
type Hausdorff struct{}

// Name implements Metric.
func (Hausdorff) Name() string { return "Hausdorff" }

// Dist implements Metric.
func (Hausdorff) Dist(a, b *traj.Trajectory) float64 {
	return math.Max(directed(a, b), directed(b, a))
}

func directed(a, b *traj.Trajectory) float64 {
	var worst float64
	for _, p := range a.Points {
		best := math.Inf(1)
		if b.NumSegments() == 0 {
			for _, q := range b.Points {
				if d := p.Dist(q); d < best {
					best = d
				}
			}
		}
		for i := 0; i < b.NumSegments(); i++ {
			if d := b.Segment(i).Spatial().DistTo(p.XY()); d < best {
				best = d
			}
		}
		if best > worst {
			worst = best
		}
	}
	return worst
}
