package baseline

import (
	"math"

	"trajmatch/internal/traj"
)

// MA is the semi-continuous model-driven assignment of Sankararaman,
// Agarwal, Mølhave, Pan and Boedihardjo (SIGSPATIAL 2013), as characterised
// in Section II of the host paper: each sampled point of one trajectory is
// either assigned to a point on the other trajectory's polyline — possibly
// a non-sampled point on the line between the previous assignment's segment
// endpoints — or declared a gap point at a fixed penalty. The four
// parameters of the model are the two gap penalties, the match-distance
// weight and the match-distance cap.
//
// Because assignments project onto whole segments, two consecutive points
// can legally map backwards in time on the other trajectory — the
// semantic inconsistency Fig. 1(d) illustrates; this implementation
// reproduces that behaviour on the figure's scenario.
type MA struct {
	// GapA is the penalty for leaving a point of the first trajectory
	// unassigned; GapB likewise for the second trajectory's segments that
	// receive no assignment.
	GapA, GapB float64
	// Weight scales the distance of matched pairs.
	Weight float64
	// MaxDist caps the matched-pair distance; pairs farther apart than this
	// are effectively forced into gaps.
	MaxDist float64
}

// DefaultMA returns MA with the parameterisation used throughout the
// experiments: penalties proportional to the matching threshold the
// threshold-based metrics use, as the original paper's guidance suggests.
func DefaultMA(eps float64) MA {
	if eps <= 0 {
		eps = 1
	}
	return MA{GapA: 2 * eps, GapB: eps, Weight: 1, MaxDist: 8 * eps}
}

// Name implements Metric.
func (MA) Name() string { return "MA" }

// Dist implements Metric. The assignment is computed by a dynamic program
// over (point of A, segment of B) states; each of the auxiliary cost
// functions is evaluated per cell, mirroring the original's five quadratic
// passes (which is why MA is the slowest baseline in Fig. 5(j)).
func (ma MA) Dist(a, b *traj.Trajectory) float64 {
	d1 := ma.oneSided(a, b)
	d2 := ma.oneSided(b, a)
	return d1 + d2
}

// oneSided assigns each sampled point of src onto dst's polyline.
func (ma MA) oneSided(src, dst *traj.Trajectory) float64 {
	P := src.Points
	n := len(P)
	mSeg := dst.NumSegments()
	if n == 0 {
		return 0
	}
	if mSeg == 0 {
		return float64(n) * ma.GapA
	}
	inf := math.Inf(1)
	// dp[j] = min cost having assigned points < i with the last assignment
	// on segment j (or no assignment yet at the sentinel column 0 handled
	// via dp0).
	dp := make([]float64, mSeg)
	nxt := make([]float64, mSeg)
	dp0 := 0.0 // no point assigned yet
	for j := range dp {
		dp[j] = inf
	}
	for i := 0; i < n; i++ {
		for j := range nxt {
			nxt[j] = inf
		}
		// Option 1: point i is a gap point.
		nxt0 := dp0 + ma.GapA
		// Option 2: assign point i to some segment j ≥ previous segment.
		// prefix[j] = min(dp0, dp[0..j]) gives the cheapest admissible
		// predecessor for an assignment on segment j.
		best := dp0
		for j := 0; j < mSeg; j++ {
			if dp[j] < best {
				best = dp[j]
			}
			if math.IsInf(best, 1) {
				continue
			}
			seg := dst.Segment(j)
			d := seg.Spatial().DistTo(P[i].XY())
			if d > ma.MaxDist {
				continue
			}
			c := best + ma.Weight*d
			if c < nxt[j] {
				nxt[j] = c
			}
		}
		// Gap option from assigned states: skip point i, stay on segment j.
		for j := 0; j < mSeg; j++ {
			if v := dp[j] + ma.GapA; v < nxt[j] {
				nxt[j] = v
			}
		}
		dp, nxt = nxt, dp
		dp0 = nxt0
	}
	// Unvisited trailing segments of dst are charged GapB each; segments
	// skipped between assignments are charged implicitly by their points'
	// one-sided pass in the opposite direction.
	ans := dp0 + float64(mSeg)*ma.GapB
	for j := 0; j < mSeg; j++ {
		if dp[j] < inf {
			if c := dp[j] + float64(mSeg-1-j)*ma.GapB; c < ans {
				ans = c
			}
		}
	}
	return ans
}
