package core

import (
	"math"
	"math/rand"
	"testing"

	"trajmatch/internal/traj"
)

func TestUniformDistanceBasics(t *testing.T) {
	tr := traj.FromXY(0, 0, 0, 5, 0, 5, 5)
	if d := UniformDistance(tr, tr); d != 0 {
		t.Errorf("UniformDistance(T,T) = %v", d)
	}
	rng := rand.New(rand.NewSource(25))
	for it := 0; it < 60; it++ {
		a := randomSmoothTraj(rng, 2+rng.Intn(8))
		b := randomSmoothTraj(rng, 2+rng.Intn(8))
		d1, d2 := UniformDistance(a, b), UniformDistance(b, a)
		if d1 < 0 || math.IsNaN(d1) {
			t.Fatalf("invalid distance %v", d1)
		}
		if math.Abs(d1-d2) > 1e-6*(1+d1) {
			t.Fatalf("asymmetric: %v vs %v", d1, d2)
		}
	}
}

// The ablation's point (Section II.2 / Fig. 1(b)): without Coverage, a pair
// that agrees over a long sparse stretch but disagrees at a few dense
// samples can be misordered against a pair that agrees at the dense samples
// and diverges over the long stretch. Coverage weighting fixes the
// ordering.
func TestCoverageFixesIntraTrajectoryOrdering(t *testing.T) {
	// Dense shared prefix, long diverging tail...
	divergent := [2]*traj.Trajectory{
		traj.New(0, []traj.Point{
			traj.P(0, 0, 0), traj.P(1, 0, 1), traj.P(2, 0, 2), traj.P(3, 0, 3),
			traj.P(3, 300, 303),
		}),
		traj.New(1, []traj.Point{
			traj.P(0, 0, 0), traj.P(1, 0, 1), traj.P(2, 0, 2), traj.P(3, 0, 3),
			traj.P(303, 0, 303),
		}),
	}
	// ...versus: noisy dense prefix (each dense sample off by 2), identical
	// long tail.
	noisyPrefix := [2]*traj.Trajectory{
		traj.New(2, []traj.Point{
			traj.P(0, 0, 0), traj.P(1, 0, 1), traj.P(2, 0, 2), traj.P(3, 0, 3),
			traj.P(3, 300, 303),
		}),
		traj.New(3, []traj.Point{
			traj.P(0, 2, 0), traj.P(1, 2, 1), traj.P(2, 2, 2), traj.P(3, 2, 3),
			traj.P(3, 300, 303),
		}),
	}
	// Ground truth: the noisy-prefix pair travels together for 300 of ~303
	// units; the divergent pair separates for 300 units. With Coverage,
	// EDwP orders them correctly.
	covNoisy := Distance(noisyPrefix[0], noisyPrefix[1])
	covDiv := Distance(divergent[0], divergent[1])
	if covNoisy >= covDiv {
		t.Errorf("Coverage-weighted EDwP misordered: noisy-prefix %v vs divergent %v", covNoisy, covDiv)
	}
	// The divergent pair must dominate by a large factor under coverage.
	if covDiv < 10*covNoisy {
		t.Errorf("coverage did not amplify the divergent pair: %v vs %v", covDiv, covNoisy)
	}
	// Without Coverage the two pairs are much closer together — the dense
	// disagreements weigh as much as the long divergence.
	uniNoisy := UniformDistance(noisyPrefix[0], noisyPrefix[1])
	uniDiv := UniformDistance(divergent[0], divergent[1])
	covRatio := covDiv / covNoisy
	uniRatio := uniDiv / uniNoisy
	if covRatio <= uniRatio {
		t.Errorf("coverage should sharpen the separation: cov ratio %v, uniform ratio %v", covRatio, uniRatio)
	}
}

func TestUniformVsCoverageSamplingInvariance(t *testing.T) {
	// Both variants keep the re-sampling invariance (that comes from
	// projections, not coverage).
	orig := traj.New(0, []traj.Point{traj.P(0, 0, 0), traj.P(10, 0, 10), traj.P(10, 10, 20)})
	dense := traj.Resample(orig, 1.0)
	if d := UniformDistance(orig, dense); d > 1e-9 {
		t.Errorf("UniformDistance not sampling-invariant: %v", d)
	}
}
