package core

import (
	"math"
	"math/rand"
	"testing"

	"trajmatch/internal/traj"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// line builds a trajectory along the y-axis through the given y values,
// matching the Appendix-A construction T = [(0,0),(0,1),...].
func line(ys ...float64) *traj.Trajectory {
	pts := make([]traj.Point, len(ys))
	for i, y := range ys {
		pts[i] = traj.P(0, y, float64(i))
	}
	return traj.New(0, pts)
}

// Appendix A (Theorem 1): EDwP(T1,T2)=1, EDwP(T2,T3)=1, EDwP(T1,T3)=4,
// hence triangle inequality is violated.
func TestTheorem1PaperValues(t *testing.T) {
	t1 := line(0, 1)
	t2 := line(0, 1, 2)
	t3 := line(0, 1, 2, 3)

	if got := Distance(t1, t2); !almost(got, 1) {
		t.Errorf("EDwP(T1,T2) = %v, want 1", got)
	}
	if got := Distance(t2, t3); !almost(got, 1) {
		t.Errorf("EDwP(T2,T3) = %v, want 1", got)
	}
	if got := Distance(t1, t3); !almost(got, 4) {
		t.Errorf("EDwP(T1,T3) = %v, want 4", got)
	}
	if Distance(t1, t2)+Distance(t2, t3) >= Distance(t1, t3) {
		t.Error("triangle inequality unexpectedly holds on the paper's counterexample")
	}
}

// Example 1: matching [(0,0,0),(0,7,21)] with [(2,0,0),(2,7,14)] after the
// insert costs dist((0,0),(2,0)) + dist((0,7),(2,7)) = 4 before coverage.
// Here we verify the underlying rep cost via a direct two-segment distance:
// two parallel vertical segments at distance 2 with equal extent 7.
func TestParallelSegmentsRepCost(t *testing.T) {
	t1 := traj.New(0, []traj.Point{traj.P(0, 0, 0), traj.P(0, 7, 21)})
	t2 := traj.New(1, []traj.Point{traj.P(2, 0, 0), traj.P(2, 7, 14)})
	// Single REP: cost (2+2) × (7+7) = 56.
	if got := Distance(t1, t2); !almost(got, 56) {
		t.Errorf("Distance = %v, want 56", got)
	}
}

func TestIdentityZero(t *testing.T) {
	tr := traj.FromXY(0, 0, 0, 3, 4, 10, 4, 10, 9)
	if got := Distance(tr, tr); got != 0 {
		t.Errorf("EDwP(T,T) = %v, want 0", got)
	}
	if got := AvgDistance(tr, tr); got != 0 {
		t.Errorf("EDwPavg(T,T) = %v, want 0", got)
	}
}

// A denser re-sampling of the same polyline must be at distance zero: this
// is the inter-trajectory sampling-rate robustness the paper is built for
// (Fig. 1(a)) and the property EDR/LCSS fail.
func TestResampledShapeIsZero(t *testing.T) {
	orig := traj.New(0, []traj.Point{
		traj.P(0, 0, 0), traj.P(10, 0, 10), traj.P(10, 10, 20),
	})
	dense := traj.Resample(orig, 1.0)
	if dense.NumPoints() <= orig.NumPoints() {
		t.Fatal("resample did not densify")
	}
	if got := Distance(orig, dense); !almost(got, 0) {
		t.Errorf("EDwP(orig, dense) = %v, want 0", got)
	}
	if got := Distance(dense, orig); !almost(got, 0) {
		t.Errorf("EDwP(dense, orig) = %v, want 0", got)
	}
}

// Phase variation (Fig. 1(c)): same shape sampled at shifted positions must
// be at distance zero under EDwP.
func TestPhaseShiftIsZero(t *testing.T) {
	t1 := traj.New(0, []traj.Point{traj.P(0, 0, 0), traj.P(3, 0, 3), traj.P(10, 0, 10)})
	t2 := traj.New(1, []traj.Point{traj.P(0, 0, 0), traj.P(6, 0, 6), traj.P(10, 0, 10)})
	if got := Distance(t1, t2); !almost(got, 0) {
		t.Errorf("EDwP phase-shifted = %v, want 0", got)
	}
}

// Intra-trajectory variance (Fig. 1(b)): a pair that EDR scores as nearly
// identical because of four coincident dense samples must be scored as far
// apart by EDwP, because the diverging region carries most of the length.
func TestIntraVarianceDivergencePenalised(t *testing.T) {
	// Shared dense prefix, then long divergence.
	t1 := traj.New(0, []traj.Point{
		traj.P(0, 0, 0), traj.P(1, 0, 1), traj.P(2, 0, 2), traj.P(3, 0, 3),
		traj.P(3, 100, 103),
	})
	t2 := traj.New(1, []traj.Point{
		traj.P(0, 0, 0), traj.P(1, 0, 1), traj.P(2, 0, 2), traj.P(3, 0, 3),
		traj.P(103, 0, 103),
	})
	same := t1.Clone()
	if d, s := Distance(t1, t2), Distance(t1, same); d <= s {
		t.Errorf("diverging pair %v not greater than identical pair %v", d, s)
	}
	if got := Distance(t1, t2); got < 1000 {
		t.Errorf("diverging tails under-penalised: %v", got)
	}
}

func TestSymmetryRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for it := 0; it < 100; it++ {
		a := randomTraj(rng, 2+rng.Intn(8))
		b := randomTraj(rng, 2+rng.Intn(8))
		d1, d2 := Distance(a, b), Distance(b, a)
		if math.Abs(d1-d2) > 1e-6*(1+math.Max(d1, d2)) {
			t.Fatalf("asymmetric: %v vs %v\na=%v\nb=%v", d1, d2, a.Points, b.Points)
		}
	}
}

func TestNonNegativeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for it := 0; it < 200; it++ {
		a := randomTraj(rng, 2+rng.Intn(10))
		b := randomTraj(rng, 2+rng.Intn(10))
		if d := Distance(a, b); d < 0 || math.IsNaN(d) {
			t.Fatalf("invalid distance %v", d)
		}
	}
}

func TestEmptyCases(t *testing.T) {
	empty := traj.New(0, nil)
	single := traj.New(1, []traj.Point{traj.P(1, 1, 0)})
	full := traj.FromXY(2, 0, 0, 1, 1)
	if got := Distance(empty, empty); got != 0 {
		t.Errorf("EDwP(∅,∅) = %v, want 0", got)
	}
	if got := Distance(single, single); got != 0 {
		t.Errorf("EDwP(point,point) = %v, want 0 (both have no segments)", got)
	}
	if got := Distance(empty, full); !math.IsInf(got, 1) {
		t.Errorf("EDwP(∅,T) = %v, want +Inf", got)
	}
	if got := Distance(full, single); !math.IsInf(got, 1) {
		t.Errorf("EDwP(T,point) = %v, want +Inf", got)
	}
}

func TestAvgDistanceNormalisation(t *testing.T) {
	t1 := line(0, 1)
	t3 := line(0, 1, 2, 3)
	want := Distance(t1, t3) / (t1.Length() + t3.Length())
	if got := AvgDistance(t1, t3); !almost(got, want) {
		t.Errorf("AvgDistance = %v, want %v", got, want)
	}
}

// Scaling both trajectories by a factor scales cumulative EDwP by its
// square (distance × coverage are both lengths) and EDwPavg linearly.
func TestScaleHomogeneity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomTraj(rng, 6)
	b := randomTraj(rng, 5)
	const f = 3.5
	as, bs := scaleTraj(a, f), scaleTraj(b, f)
	d, ds := Distance(a, b), Distance(as, bs)
	if math.Abs(ds-f*f*d) > 1e-6*(1+ds) {
		t.Errorf("scaled distance %v, want %v", ds, f*f*d)
	}
	av, avs := AvgDistance(a, b), AvgDistance(as, bs)
	if math.Abs(avs-f*av) > 1e-9*(1+avs) {
		t.Errorf("scaled avg %v, want %v", avs, f*av)
	}
}

// Translation invariance: shifting both trajectories leaves EDwP unchanged.
func TestTranslationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randomTraj(rng, 7)
	b := randomTraj(rng, 4)
	shift := func(tr *traj.Trajectory) *traj.Trajectory {
		c := tr.Clone()
		for i := range c.Points {
			c.Points[i].X += 123
			c.Points[i].Y -= 456
		}
		return c
	}
	d1 := Distance(a, b)
	d2 := Distance(shift(a), shift(b))
	if math.Abs(d1-d2) > 1e-6*(1+d1) {
		t.Errorf("translation changed distance: %v vs %v", d1, d2)
	}
}

func TestSubDistanceFindsEmbeddedCopy(t *testing.T) {
	// t contains q's exact shape in its middle: EDwPsub(q, t) must be ~0.
	q := traj.FromXY(0, 5, 5, 8, 5, 8, 8)
	host := traj.FromXY(1, 0, 0, 5, 5, 8, 5, 8, 8, 20, 8)
	if got := SubDistance(q, host); !almost(got, 0) {
		t.Errorf("EDwPsub(q, host) = %v, want 0", got)
	}
	// Global distance is strictly positive (the affixes must be consumed).
	if got := Distance(q, host); got <= 0 {
		t.Errorf("EDwP(q, host) = %v, want > 0", got)
	}
}

func TestSubDistanceLEGlobal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for it := 0; it < 100; it++ {
		q := randomTraj(rng, 2+rng.Intn(6))
		h := randomTraj(rng, 2+rng.Intn(8))
		sub, glob := SubDistance(q, h), Distance(q, h)
		if sub > glob+1e-9 {
			t.Fatalf("EDwPsub %v > EDwP %v", sub, glob)
		}
	}
}

// Lemma 2 / Corollary 1 operational check: EDwPsub(q, t) lower-bounds the
// global EDwP of q against every sub-trajectory of t.
func TestSubDistanceLowerBoundsAllSubTrajectories(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for it := 0; it < 40; it++ {
		q := randomTraj(rng, 2+rng.Intn(4))
		h := randomTraj(rng, 4+rng.Intn(4))
		sub := SubDistance(q, h)
		n := h.NumPoints()
		for a := 0; a < n-1; a++ {
			for b := a + 1; b < n; b++ {
				d := Distance(q, h.Sub(a, b))
				if sub > d+1e-6*(1+d) {
					t.Fatalf("EDwPsub %v exceeds EDwP(q, T[%d..%d]) = %v", sub, a, b, d)
				}
			}
		}
	}
}

func TestPrefixDistance(t *testing.T) {
	q := traj.FromXY(0, 0, 0, 1, 0)
	h := traj.FromXY(1, 0, 0, 1, 0, 50, 0)
	// q matches h's first segment exactly; suffix skipped free.
	if got := PrefixDistance(q, h); !almost(got, 0) {
		t.Errorf("PrefixDist = %v, want 0", got)
	}
	// Lemma 1: PrefixDist(q, h) ≤ EDwP(q, prefix) for every prefix of h.
	rng := rand.New(rand.NewSource(13))
	for it := 0; it < 60; it++ {
		q := randomTraj(rng, 2+rng.Intn(4))
		h := randomTraj(rng, 3+rng.Intn(5))
		pd := PrefixDistance(q, h)
		for b := 1; b < h.NumPoints(); b++ {
			d := Distance(q, h.Sub(0, b))
			if pd > d+1e-6*(1+d) {
				t.Fatalf("PrefixDist %v > EDwP(q, prefix[0..%d]) = %v", pd, b, d)
			}
		}
	}
}

// The DP agrees with the exact-recursion oracle on the paper's examples and
// closely tracks it on random smooth inputs (the only divergence source is
// the full-segment canonical projection; see DESIGN.md §2).
func TestDPMatchesExactOracle(t *testing.T) {
	cases := [][2]*traj.Trajectory{
		{line(0, 1), line(0, 1, 2)},
		{line(0, 1), line(0, 1, 2, 3)},
		{line(0, 1, 2), line(0, 1, 2, 3)},
	}
	for _, c := range cases {
		dp, ex := Distance(c[0], c[1]), ExactDistance(c[0], c[1])
		if !almost(dp, ex) {
			t.Errorf("DP %v != exact %v on paper case", dp, ex)
		}
	}
	rng := rand.New(rand.NewSource(14))
	var worst float64
	for it := 0; it < 60; it++ {
		a := randomSmoothTraj(rng, 3+rng.Intn(3))
		b := randomSmoothTraj(rng, 3+rng.Intn(3))
		dp, ex := Distance(a, b), ExactDistance(a, b)
		if ex == 0 {
			if dp > 1e-9 {
				t.Fatalf("oracle 0 but DP %v", dp)
			}
			continue
		}
		rel := math.Abs(dp-ex) / ex
		if rel > worst {
			worst = rel
		}
		if rel > 0.05 {
			t.Fatalf("DP %v vs exact %v (rel %.3f)\na=%v\nb=%v", dp, ex, rel, a.Points, b.Points)
		}
	}
	t.Logf("worst DP-vs-exact relative deviation: %.4f", worst)
}

func TestAlignScriptSumsToDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for it := 0; it < 80; it++ {
		a := randomTraj(rng, 2+rng.Intn(7))
		b := randomTraj(rng, 2+rng.Intn(7))
		d, edits := Align(a, b)
		if math.IsInf(d, 1) {
			t.Fatal("align infinite on valid inputs")
		}
		dd := Distance(a, b)
		if math.Abs(d-dd) > 1e-6*(1+dd) {
			t.Fatalf("Align distance %v != Distance %v", d, dd)
		}
		var sum float64
		for _, e := range edits {
			sum += e.Cost
		}
		if math.Abs(sum-d) > 1e-6*(1+d) {
			t.Fatalf("edit costs sum %v != distance %v (%d edits)", sum, d, len(edits))
		}
		if len(edits) == 0 && d != 0 {
			t.Fatal("non-zero distance with empty edit script")
		}
	}
}

func TestAlignPiecesAreContiguous(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	a := randomTraj(rng, 6)
	b := randomTraj(rng, 5)
	_, edits := Align(a, b)
	for k := 1; k < len(edits); k++ {
		prev, cur := edits[k-1], edits[k]
		if prev.APiece[1] != cur.APiece[0] && prev.APiece[1].Dist(cur.APiece[0]) > 1e-9 {
			t.Errorf("edit %d: A pieces not contiguous: %v -> %v", k, prev.APiece[1], cur.APiece[0])
		}
		if prev.BPiece[1] != cur.BPiece[0] && prev.BPiece[1].Dist(cur.BPiece[0]) > 1e-9 {
			t.Errorf("edit %d: B pieces not contiguous: %v -> %v", k, prev.BPiece[1], cur.BPiece[0])
		}
	}
	if len(edits) > 0 {
		first := edits[0]
		if first.APiece[0].XY() != a.Points[0].XY() {
			t.Errorf("first edit does not start at T1's origin: %v", first.APiece[0])
		}
		last := edits[len(edits)-1]
		if last.APiece[1].XY() != a.Points[len(a.Points)-1].XY() {
			t.Errorf("last edit does not end at T1's terminus: %v", last.APiece[1])
		}
	}
}

// EDwP is continuous in its inputs: perturbing one sample by δ changes the
// distance by an amount that vanishes with δ. Guards against accidental
// threshold cliffs sneaking into the DP.
func TestContinuityUnderPerturbation(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for it := 0; it < 40; it++ {
		a := randomSmoothTraj(rng, 4+rng.Intn(5))
		b := randomSmoothTraj(rng, 4+rng.Intn(5))
		d0 := Distance(a, b)
		i := rng.Intn(len(b.Points))
		prev := math.Inf(1)
		for _, delta := range []float64{1, 0.1, 0.01} {
			c := b.Clone()
			c.Points[i].X += delta
			diff := math.Abs(Distance(a, c) - d0)
			// Shrinking the same perturbation must not grow the change.
			if diff > prev+1e-9 {
				t.Fatalf("distance change %v grew as δ fell to %v", diff, delta)
			}
			prev = diff + 1e-9
		}
	}
}

// Concatenating a shared suffix onto both trajectories must not increase
// the (cumulative) distance contribution of the differing prefix by more
// than the suffix's own alignment cost — sanity for monotone accumulation.
func TestSharedSuffixDoesNotExplode(t *testing.T) {
	a := traj.FromXY(0, 0, 0, 10, 0)
	b := traj.FromXY(1, 0, 2, 10, 2)
	base := Distance(a, b)
	aExt := traj.FromXY(0, 0, 0, 10, 0, 20, 0, 30, 0)
	bExt := traj.FromXY(1, 0, 2, 10, 2, 20, 0, 30, 0)
	ext := Distance(aExt, bExt)
	if ext < base {
		t.Logf("extension lowered distance (%v -> %v): allowed when it improves alignment", base, ext)
	}
	if ext > base+base+200 { // generous: suffix is shared, cost bounded
		t.Errorf("shared suffix exploded the distance: %v vs %v", ext, base)
	}
}

// SubDistance of a noisy embedded copy degrades gracefully with the noise.
func TestSubDistanceNoisyEmbedding(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	host := randomSmoothTraj(rng, 12)
	q := host.Sub(3, 8).Clone()
	clean := SubDistance(q, host)
	if clean > 1e-9 {
		t.Fatalf("embedded copy not found: %v", clean)
	}
	prev := 0.0
	for _, noise := range []float64{0.1, 1, 5} {
		nq := q.Clone()
		for i := range nq.Points {
			nq.Points[i].X += rng.NormFloat64() * noise
			nq.Points[i].Y += rng.NormFloat64() * noise
		}
		d := SubDistance(nq, host)
		if d < prev-1e-9 && noise > 1 {
			t.Logf("noise %v gave %v < previous %v (possible but rare)", noise, d, prev)
		}
		prev = d
	}
	if prev <= 0 {
		t.Error("heavy noise left sub-distance at zero")
	}
}

// randomTraj builds a jagged random trajectory with n points in [0,100)².
func randomTraj(rng *rand.Rand, n int) *traj.Trajectory {
	pts := make([]traj.Point, n)
	for i := range pts {
		pts[i] = traj.P(rng.Float64()*100, rng.Float64()*100, float64(i)*10)
	}
	return traj.New(0, pts)
}

// randomSmoothTraj builds a random-walk trajectory with bounded step, which
// resembles real movement better than uniform jumps.
func randomSmoothTraj(rng *rand.Rand, n int) *traj.Trajectory {
	pts := make([]traj.Point, n)
	x, y := rng.Float64()*20, rng.Float64()*20
	for i := range pts {
		pts[i] = traj.P(x, y, float64(i)*10)
		x += rng.NormFloat64() * 3
		y += rng.NormFloat64() * 3
	}
	return traj.New(0, pts)
}

func scaleTraj(t *traj.Trajectory, f float64) *traj.Trajectory {
	c := t.Clone()
	for i := range c.Points {
		c.Points[i].X *= f
		c.Points[i].Y *= f
	}
	return c
}
