package core

import (
	"math"
	"math/rand"
	"testing"

	"trajmatch/internal/raceflag"
	"trajmatch/internal/traj"
)

// skipIfRace skips alloc-count assertions under the race detector, where
// sync.Pool drops a quarter of Puts by design and every pooled code path
// therefore allocates on a random fraction of calls. CI runs these tests
// in a separate non-race step so the fences still gate merges.
func skipIfRace(t *testing.T) {
	t.Helper()
	if raceflag.Enabled {
		t.Skip("alloc counts are not meaningful under -race: sync.Pool deliberately drops Puts")
	}
}

// The bounded kernel's contract, verified property-style on random
// workloads:
//
//  1. limit = +Inf is bit-identical to the unbounded kernel,
//  2. a finite return value always equals the unbounded value exactly,
//  3. +Inf is returned only when the true value exceeds the limit.

func TestDistanceBoundedInfEqualsDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for it := 0; it < 200; it++ {
		a := randomTraj(rng, 2+rng.Intn(10))
		b := randomTraj(rng, 2+rng.Intn(10))
		want := Distance(a, b)
		if got, abandoned := DistanceBounded(a, b, math.Inf(1)); got != want || abandoned {
			t.Fatalf("DistanceBounded(+Inf) = %v (abandoned %v), Distance = %v", got, abandoned, want)
		}
		wantAvg := AvgDistance(a, b)
		if got, abandoned := AvgDistanceBounded(a, b, math.Inf(1)); got != wantAvg || abandoned {
			t.Fatalf("AvgDistanceBounded(+Inf) = %v (abandoned %v), AvgDistance = %v", got, abandoned, wantAvg)
		}
		wantSub := SubDistance(a, b)
		if got, abandoned := SubDistanceBounded(a, b, math.Inf(1)); got != wantSub || abandoned {
			t.Fatalf("SubDistanceBounded(+Inf) = %v (abandoned %v), SubDistance = %v", got, abandoned, wantSub)
		}
		wantPre := PrefixDistance(a, b)
		if got, abandoned := PrefixDistanceBounded(a, b, math.Inf(1)); got != wantPre || abandoned {
			t.Fatalf("PrefixDistanceBounded(+Inf) = %v (abandoned %v), PrefixDistance = %v", got, abandoned, wantPre)
		}
	}
}

// checkBoundedContract asserts properties 2 and 3 for one bounded/unbounded
// function pair over randomized limits around the true value, plus the
// abandoned-flag semantics: +Inf under a finite limit carries the flag,
// finite results never do.
func checkBoundedContract(t *testing.T, name string,
	exact func(a, b *traj.Trajectory) float64,
	bounded func(a, b *traj.Trajectory, limit float64) (float64, bool),
	a, b *traj.Trajectory) {
	t.Helper()
	want := exact(a, b)
	for _, f := range []float64{0, 0.25, 0.5, 0.9, 1.0, 1.1, 2.0, 10.0} {
		limit := want * f
		if want == 0 {
			limit = f
		}
		got, abandoned := bounded(a, b, limit)
		if math.IsInf(got, 1) {
			if want <= limit {
				t.Fatalf("%s: abandoned at limit %v although exact value %v is within it", name, limit, want)
			}
			if !abandoned {
				t.Fatalf("%s: +Inf under finite limit %v not flagged as abandoned", name, limit)
			}
			continue
		}
		if abandoned {
			t.Fatalf("%s: finite result %v flagged as abandoned (limit %v)", name, got, limit)
		}
		if got != want {
			t.Fatalf("%s: bounded returned finite %v != exact %v (limit %v)", name, got, want, limit)
		}
	}
}

func TestBoundedFiniteValuesAreExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for it := 0; it < 120; it++ {
		a := randomTraj(rng, 2+rng.Intn(8))
		b := randomTraj(rng, 2+rng.Intn(8))
		checkBoundedContract(t, "Distance", Distance, DistanceBounded, a, b)
		checkBoundedContract(t, "AvgDistance", AvgDistance, AvgDistanceBounded, a, b)
		checkBoundedContract(t, "SubDistance", SubDistance, SubDistanceBounded, a, b)
	}
}

func TestDistanceBoundedAbandonsFarPairs(t *testing.T) {
	a := traj.FromXY(0, 0, 0, 10, 0, 20, 0)
	b := traj.FromXY(1, 0, 1000, 10, 1000, 20, 1000)
	if got, abandoned := DistanceBounded(a, b, 1); !math.IsInf(got, 1) || !abandoned {
		t.Fatalf("far pair under tiny limit = %v (abandoned %v), want +Inf, true", got, abandoned)
	}
	// Degenerate inputs behave exactly like the unbounded kernel, and a
	// genuinely infinite distance is NOT flagged as an abandon — the
	// EarlyAbandons counters must not be polluted by degenerate data.
	empty := traj.New(2, nil)
	if got, abandoned := DistanceBounded(empty, a, 1); !math.IsInf(got, 1) || abandoned {
		t.Fatalf("DistanceBounded(∅, T) = %v (abandoned %v), want +Inf, false", got, abandoned)
	}
	if got, abandoned := DistanceBounded(empty, empty, 0); got != 0 || abandoned {
		t.Fatalf("DistanceBounded(∅, ∅) = %v (abandoned %v), want 0, false", got, abandoned)
	}
	// Zero-spatial-length trajectories: every edit's Coverage factor is 0,
	// so EDwP is 0 and the sum == 0 normaliser path returns 0 — never an
	// abandon, regardless of limit.
	still := traj.New(3, []traj.Point{traj.P(5, 5, 0), traj.P(5, 5, 10)})
	still2 := traj.New(4, []traj.Point{traj.P(9, 9, 0), traj.P(9, 9, 10)})
	if got, abandoned := AvgDistanceBounded(still, still2, 1); got != 0 || abandoned {
		t.Fatalf("AvgDistanceBounded(zero-length pair) = %v (abandoned %v), want 0, false", got, abandoned)
	}
}

// The steady-state kernel must not allocate: XY projections are cached on
// the trajectories and all DP scratch is pooled. This is the regression
// fence for the zero-alloc guarantee (the ISSUE-2 tentpole).
func TestDistanceZeroAllocs(t *testing.T) {
	skipIfRace(t)
	rng := rand.New(rand.NewSource(43))
	a := randomSmoothTraj(rng, 40)
	b := randomSmoothTraj(rng, 35)
	// Warm caches and pool outside the measured region.
	Distance(a, b)

	if n := testing.AllocsPerRun(100, func() { Distance(a, b) }); n != 0 {
		t.Errorf("Distance allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { _, _ = DistanceBounded(a, b, 1) }); n != 0 {
		t.Errorf("DistanceBounded allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { AvgDistance(a, b) }); n != 0 {
		t.Errorf("AvgDistance allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { SubDistance(a, b) }); n != 0 {
		t.Errorf("SubDistance allocates %v per run, want 0", n)
	}
}

func TestLowerBoundZeroAllocs(t *testing.T) {
	skipIfRace(t)
	rng := rand.New(rand.NewSource(44))
	member := randomSmoothTraj(rng, 30)
	q := randomSmoothTraj(rng, 20)
	// Box the slice-typed test helper into the interface once: production
	// callers pass *tbox.Seq, which boxes without allocating.
	var b Boxes = boxesFor([]*traj.Trajectory{member})
	LowerBound(q, b)
	if n := testing.AllocsPerRun(100, func() { LowerBound(q, b) }); n != 0 {
		t.Errorf("LowerBound allocates %v per run, want 0", n)
	}
}

// Concurrent bounded calls share the scratch pool and the per-trajectory
// XY caches; the race detector run of CI exercises this path.
func TestDistanceBoundedConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	trajs := make([]*traj.Trajectory, 8)
	for i := range trajs {
		trajs[i] = randomSmoothTraj(rng, 10+i)
	}
	want := make([][]float64, len(trajs))
	for i := range trajs {
		want[i] = make([]float64, len(trajs))
		for j := range trajs {
			want[i][j] = Distance(trajs[i], trajs[j])
		}
	}
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func() {
			for it := 0; it < 50; it++ {
				i, j := it%len(trajs), (it*3+1)%len(trajs)
				if got, _ := DistanceBounded(trajs[i], trajs[j], math.Inf(1)); got != want[i][j] {
					done <- errMismatch(got, want[i][j])
					return
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < 4; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

type errMismatchT struct{ got, want float64 }

func errMismatch(got, want float64) error { return errMismatchT{got, want} }
func (e errMismatchT) Error() string      { return "concurrent distance mismatch" }
