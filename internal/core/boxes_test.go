package core

import (
	"math"
	"math/rand"
	"testing"

	"trajmatch/internal/geom"
	"trajmatch/internal/traj"
)

// rectSeq is a minimal Boxes implementation for tests.
type rectSeq []geom.Rect

func (r rectSeq) Len() int             { return len(r) }
func (r rectSeq) Rect(i int) geom.Rect { return r[i] }

// boxesFor builds one box per segment for each trajectory and merges the
// rest by extension — a miniature of what package tbox does, sufficient to
// validate LowerBound's admissibility contract here without an import cycle.
func boxesFor(ts []*traj.Trajectory) rectSeq {
	base := ts[0]
	seq := make(rectSeq, base.NumSegments())
	for i := range seq {
		e := base.Segment(i)
		seq[i] = geom.RectOf(e.S1.XY(), e.S2.XY())
	}
	for _, t := range ts[1:] {
		assign := AssignSegments(t, seq)
		for i, j := range assign {
			e := t.Segment(i)
			seq[j] = seq[j].ExtendPoint(e.S1.XY()).ExtendPoint(e.S2.XY())
		}
	}
	return seq
}

func TestLowerBoundZeroForMembers(t *testing.T) {
	tr := traj.FromXY(0, 0, 0, 5, 0, 5, 5, 9, 9)
	b := boxesFor([]*traj.Trajectory{tr})
	if got := LowerBound(tr, b); got != 0 {
		t.Errorf("LowerBound(member, own boxes) = %v, want 0", got)
	}
}

// The contract the index depends on (Theorem 2): for every member of the
// box sequence, LowerBound(q, B) ≤ EDwP(q, member).
func TestLowerBoundAdmissible(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for it := 0; it < 60; it++ {
		group := make([]*traj.Trajectory, 1+rng.Intn(4))
		for i := range group {
			group[i] = randomSmoothTraj(rng, 3+rng.Intn(8))
		}
		b := boxesFor(group)
		q := randomSmoothTraj(rng, 3+rng.Intn(8))
		lb := LowerBound(q, b)
		for _, m := range group {
			d := Distance(q, m)
			if lb > d+1e-6*(1+d) {
				t.Fatalf("LowerBound %v exceeds EDwP %v\nq=%v\nm=%v", lb, d, q.Points, m.Points)
			}
		}
	}
}

// ...and against AvgDistance when normalised by the largest member length.
func TestLowerBoundAdmissibleNormalised(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for it := 0; it < 40; it++ {
		group := make([]*traj.Trajectory, 1+rng.Intn(4))
		maxLen := 0.0
		for i := range group {
			group[i] = randomSmoothTraj(rng, 3+rng.Intn(8))
			if l := group[i].Length(); l > maxLen {
				maxLen = l
			}
		}
		b := boxesFor(group)
		q := randomSmoothTraj(rng, 3+rng.Intn(8))
		lbAvg := LowerBound(q, b) / (q.Length() + maxLen)
		for _, m := range group {
			d := AvgDistance(q, m)
			if lbAvg > d+1e-6*(1+d) {
				t.Fatalf("normalised LowerBound %v exceeds EDwPavg %v", lbAvg, d)
			}
		}
	}
}

func TestLowerBoundEmpty(t *testing.T) {
	q := traj.FromXY(0, 0, 0, 1, 1)
	if got := LowerBound(q, rectSeq(nil)); got != 0 {
		t.Errorf("LowerBound vs no boxes = %v, want 0", got)
	}
	pointTraj := traj.New(0, []traj.Point{traj.P(0, 0, 0)})
	b := rectSeq{geom.RectOf(geom.Pt(0, 0), geom.Pt(1, 1))}
	if got := LowerBound(pointTraj, b); got != 0 {
		t.Errorf("LowerBound of segmentless query = %v, want 0", got)
	}
}

func TestLowerBoundPositiveWhenFar(t *testing.T) {
	member := traj.FromXY(0, 0, 0, 1, 0, 2, 0)
	b := boxesFor([]*traj.Trajectory{member})
	far := traj.FromXY(1, 100, 100, 101, 100)
	lb := LowerBound(far, b)
	if lb <= 0 {
		t.Errorf("LowerBound for distant query = %v, want > 0", lb)
	}
	// Still admissible.
	if d := Distance(far, member); lb > d {
		t.Errorf("LowerBound %v > distance %v", lb, d)
	}
}

func TestLowerBoundMonotoneInBoxGrowth(t *testing.T) {
	// Extending boxes can only lower (or keep) the bound.
	member := traj.FromXY(0, 0, 0, 4, 0, 8, 0)
	small := boxesFor([]*traj.Trajectory{member})
	big := make(rectSeq, len(small))
	for i, r := range small {
		big[i] = r.ExtendPoint(geom.Pt(50, 50))
	}
	q := traj.FromXY(1, 20, 20, 24, 20)
	if LowerBound(q, big) > LowerBound(q, small)+1e-12 {
		t.Error("growing boxes increased the lower bound")
	}
}

func TestAssignSegmentsMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for it := 0; it < 50; it++ {
		base := randomSmoothTraj(rng, 4+rng.Intn(6))
		b := boxesFor([]*traj.Trajectory{base})
		tr := randomSmoothTraj(rng, 3+rng.Intn(8))
		assign := AssignSegments(tr, b)
		if len(assign) != tr.NumSegments() {
			t.Fatalf("assignment size %d, want %d", len(assign), tr.NumSegments())
		}
		for i := 1; i < len(assign); i++ {
			if assign[i] < assign[i-1] {
				t.Fatalf("assignment not monotone: %v", assign)
			}
		}
		for _, j := range assign {
			if j < 0 || j >= b.Len() {
				t.Fatalf("assignment out of range: %v", assign)
			}
		}
	}
}

func TestAssignSegmentsPrefersCoveringBox(t *testing.T) {
	// Two far-apart boxes; a segment inside the second must map there.
	b := rectSeq{
		geom.RectOf(geom.Pt(0, 0), geom.Pt(1, 1)),
		geom.RectOf(geom.Pt(100, 100), geom.Pt(110, 110)),
	}
	tr := traj.FromXY(0, 102, 102, 105, 105)
	assign := AssignSegments(tr, b)
	if len(assign) != 1 || assign[0] != 1 {
		t.Errorf("assignment = %v, want [1]", assign)
	}
}

func TestLowerBoundIsFiniteAndFast(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	group := []*traj.Trajectory{randomSmoothTraj(rng, 60)}
	b := boxesFor(group)
	q := randomSmoothTraj(rng, 60)
	lb := LowerBound(q, b)
	if math.IsInf(lb, 0) || math.IsNaN(lb) || lb < 0 {
		t.Errorf("invalid bound %v", lb)
	}
}

// flatRects builds an ordered covering rect chain for m — consecutive
// segment groups, each collapsed to its bounding box — flattened to the
// MinX, MinY, MaxX, MaxY quadruples the screen tier consumes (the same
// layout the arena stores).
func flatRects(m *traj.Trajectory, group int) []float64 {
	var out []float64
	n := m.NumSegments()
	for i := 0; i < n; i += group {
		e := m.Segment(i)
		r := geom.RectOf(e.S1.XY(), e.S2.XY())
		for j := i + 1; j < n && j < i+group; j++ {
			e := m.Segment(j)
			r = r.ExtendPoint(e.S1.XY()).ExtendPoint(e.S2.XY())
		}
		out = append(out, r.Min.X, r.Min.Y, r.Max.X, r.Max.Y)
	}
	return out
}

// TestScreenLowerBoundMonotone pins the monotone screen tier's contract:
// it sits between the unordered screen and the true cumulative EDwP
// (admissibility), returns 0 for a member screened against its own
// chain, and honours exact-or-above-limit semantics for every limit.
func TestScreenLowerBoundMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	scr := new(SegScreen)
	inf := math.Inf(1)
	for it := 0; it < 80; it++ {
		m := randomSmoothTraj(rng, 3+rng.Intn(10))
		q := randomSmoothTraj(rng, 3+rng.Intn(10))
		rects := flatRects(m, 1+rng.Intn(3))

		// A member against its own chain: every segment's box gap is 0.
		own := flatRects(m, 1)
		scr.Reset(m)
		dp, nxt := scr.Rows(len(own) / 4)
		if got := ScreenLowerBoundMonotone(scr, own, inf, dp, nxt); got != 0 {
			t.Fatalf("it %d: member vs own rects = %v, want 0", it, got)
		}

		scr.Reset(q)
		dp, nxt = scr.Rows(len(rects) / 4)
		mono := ScreenLowerBoundMonotone(scr, rects, inf, dp, nxt)
		free := ScreenLowerBound(scr, rects, inf)
		d := Distance(q, m)
		if mono > d+1e-6*(1+d) {
			t.Fatalf("it %d: monotone screen %v exceeds EDwP %v", it, mono, d)
		}
		if free > mono+1e-6*(1+mono) {
			t.Fatalf("it %d: unordered screen %v exceeds monotone %v", it, free, mono)
		}
		// Exact-or-above-limit, sampled across the value's range.
		for _, frac := range []float64{0, 0.3, 0.9, 1.1} {
			limit := mono * frac
			got := ScreenLowerBoundMonotone(scr, rects, limit, dp, nxt)
			if got <= limit && math.Abs(got-mono) > 1e-9*(1+mono) {
				t.Fatalf("it %d: limit %v: got %v claims exact, want %v", it, limit, got, mono)
			}
			if mono > limit && got <= limit {
				t.Fatalf("it %d: limit %v: got %v under limit but true value %v above", it, limit, got, mono)
			}
		}
	}
}
