package core

import (
	"math"

	"trajmatch/internal/traj"
)

// EditKind identifies one of the paper's edit operations as realised by the
// dynamic program.
type EditKind int

const (
	// Rep is a replacement: the remainder of T1's current segment is
	// matched with the remainder of T2's current segment.
	Rep EditKind = iota
	// InsLeft is an insert into T1 (the paper's ins(T1, T2)): T2's segment
	// is matched against a piece of T1's current segment, ending at the
	// projection of T2's next sample onto it.
	InsLeft
	// InsRight is an insert into T2 (ins(T2, T1)).
	InsRight
)

// String returns a human-readable name for the edit kind.
func (k EditKind) String() string {
	switch k {
	case Rep:
		return "rep"
	case InsLeft:
		return "ins←"
	case InsRight:
		return "ins→"
	}
	return "?"
}

// Edit is one step of an optimal EDwP alignment. APiece and BPiece are the
// spatio-temporal pieces of the two trajectories consumed by the step;
// projected (non-sampled) endpoints carry interpolated timestamps. I and J
// are the segment indices the pieces belong to. Cost is the step's
// rep × Coverage contribution.
type Edit struct {
	Kind   EditKind
	I, J   int
	APiece [2]traj.Point
	BPiece [2]traj.Point
	Cost   float64
}

// Align computes the global EDwP distance together with an optimal edit
// script. The script's costs sum to the returned distance. Align uses full
// O(n·m) matrices; use Distance when only the value is needed.
func Align(t1, t2 *traj.Trajectory) (float64, []Edit) {
	P, Q := t1.Points, t2.Points
	n, m := len(P), len(Q)
	if n <= 1 && m <= 1 {
		return 0, nil
	}
	if n <= 1 || m <= 1 {
		return math.Inf(1), nil
	}

	inf := math.Inf(1)
	// cost[(i*m+j)*nL+layer]
	cost := make([]float64, n*m*nL)
	for k := range cost {
		cost[k] = inf
	}
	at := func(i, j, l int) int { return (i*m+j)*nL + l }
	cost[at(0, 0, lS)] = 0

	relax := func(idx int, c float64) {
		if c < cost[idx] {
			cost[idx] = c
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			for layer := 0; layer < nL; layer++ {
				c := cost[at(i, j, layer)]
				if math.IsInf(c, 1) {
					continue
				}
				h1, h2 := heads(P, Q, i, j, layer)
				if i < n-1 && j < m-1 {
					relax(at(i+1, j+1, lS), c+repCost(h1, P[i+1].XY(), h2, Q[j+1].XY()))
				}
				if j < m-1 {
					p := h1
					if i < n-1 {
						p = seg(P[i], P[i+1]).Closest(Q[j+1].XY())
					}
					relax(at(i, j+1, lI1), c+repCost(h1, p, h2, Q[j+1].XY()))
				}
				if i < n-1 {
					qq := h2
					if j < m-1 {
						qq = seg(Q[j], Q[j+1]).Closest(P[i+1].XY())
					}
					relax(at(i+1, j, lI2), c+repCost(h1, P[i+1].XY(), h2, qq))
				}
			}
		}
	}

	// Terminal: best layer at (n-1, m-1).
	bestL, bestC := lS, cost[at(n-1, m-1, lS)]
	for l := lI1; l <= lI2; l++ {
		if c := cost[at(n-1, m-1, l)]; c < bestC {
			bestC, bestL = c, l
		}
	}
	if math.IsInf(bestC, 1) {
		return bestC, nil
	}

	edits := traceback(P, Q, cost, n, m, bestL, bestC)
	return bestC, edits
}

// stPoint reconstructs the spatio-temporal point for a head position of
// state (i, j, layer) on trajectory side 1 or 2.
func stHeads(P, Q []traj.Point, i, j, layer int) (traj.Point, traj.Point) {
	n, m := len(P), len(Q)
	a, b := P[i], Q[j]
	switch layer {
	case lI1:
		if i < n-1 {
			e := traj.Segment{S1: P[i], S2: P[i+1]}
			a = e.Project(Q[j].XY())
		}
	case lI2:
		if j < m-1 {
			e := traj.Segment{S1: Q[j], S2: Q[j+1]}
			b = e.Project(P[i].XY())
		}
	}
	return a, b
}

// traceback walks the cost matrix backwards from (n-1, m-1, layer),
// emitting the edit script in forward order.
func traceback(P, Q []traj.Point, cost []float64, n, m, layer int, _ float64) []Edit {
	at := func(i, j, l int) int { return (i*m+j)*nL + l }
	var rev []Edit
	i, j := n-1, m-1
	const eps = 1e-7
	for i > 0 || j > 0 {
		c := cost[at(i, j, layer)]
		found := false
		// Predecessors by entry layer.
		switch layer {
		case lS:
			// Entered by REP from (i-1, j-1, σ).
			if i > 0 && j > 0 {
				for _, pl := range [...]int{lS, lI1, lI2} {
					pc := cost[at(i-1, j-1, pl)]
					if math.IsInf(pc, 1) {
						continue
					}
					h1, h2 := heads(P, Q, i-1, j-1, pl)
					step := repCost(h1, P[i].XY(), h2, Q[j].XY())
					if approxEq(pc+step, c, eps) {
						a, b := stHeads(P, Q, i-1, j-1, pl)
						rev = append(rev, Edit{
							Kind: Rep, I: i - 1, J: j - 1,
							APiece: [2]traj.Point{a, P[i]},
							BPiece: [2]traj.Point{b, Q[j]},
							Cost:   step,
						})
						i, j, layer = i-1, j-1, pl
						found = true
						break
					}
				}
			}
		case lI1:
			// Entered by INS1 from (i, j-1, σ).
			if j > 0 {
				for _, pl := range [...]int{lS, lI1, lI2} {
					pc := cost[at(i, j-1, pl)]
					if math.IsInf(pc, 1) {
						continue
					}
					h1, h2 := heads(P, Q, i, j-1, pl)
					p := h1
					var pst traj.Point
					if i < n-1 {
						e := traj.Segment{S1: P[i], S2: P[i+1]}
						pst = e.Project(Q[j].XY())
						p = pst.XY()
					} else {
						pst = P[n-1]
					}
					step := repCost(h1, p, h2, Q[j].XY())
					if approxEq(pc+step, c, eps) {
						a, b := stHeads(P, Q, i, j-1, pl)
						rev = append(rev, Edit{
							Kind: InsLeft, I: i, J: j - 1,
							APiece: [2]traj.Point{a, pst},
							BPiece: [2]traj.Point{b, Q[j]},
							Cost:   step,
						})
						j, layer = j-1, pl
						found = true
						break
					}
				}
			}
		case lI2:
			// Entered by INS2 from (i-1, j, σ).
			if i > 0 {
				for _, pl := range [...]int{lS, lI1, lI2} {
					pc := cost[at(i-1, j, pl)]
					if math.IsInf(pc, 1) {
						continue
					}
					h1, h2 := heads(P, Q, i-1, j, pl)
					qq := h2
					var qst traj.Point
					if j < m-1 {
						e := traj.Segment{S1: Q[j], S2: Q[j+1]}
						qst = e.Project(P[i].XY())
						qq = qst.XY()
					} else {
						qst = Q[m-1]
					}
					step := repCost(h1, P[i].XY(), h2, qq)
					if approxEq(pc+step, c, eps) {
						a, b := stHeads(P, Q, i-1, j, pl)
						rev = append(rev, Edit{
							Kind: InsRight, I: i - 1, J: j,
							APiece: [2]traj.Point{a, P[i]},
							BPiece: [2]traj.Point{b, qst},
							Cost:   step,
						})
						i, layer = i-1, pl
						found = true
						break
					}
				}
			}
		}
		if !found {
			// Numerical mismatch; abort rather than loop forever.
			break
		}
	}
	// Reverse into forward order.
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev
}

func approxEq(a, b, eps float64) bool {
	d := math.Abs(a - b)
	if d <= eps {
		return true
	}
	return d <= eps*math.Max(math.Abs(a), math.Abs(b))
}
