package core

import "sync/atomic"

// Cancel is a cooperative cancellation flag for the dynamic-program
// kernels. The query layers above (trajtree, server) arm one per logical
// query — typically from a context.Context via context.AfterFunc — and the
// kernels poll it once per DP row, so a fired context stops an in-flight
// EDwP evaluation after at most one more row of work instead of running
// the quadratic program to completion.
//
// The flag is deliberately not a context.Context: the kernel's poll sits
// on the hottest loop in the repository, and an atomic load is the most
// it can afford. Ctx→flag translation happens once per query, not once
// per row.
//
// A nil *Cancel never reports cancellation, so kernels take it
// unconditionally and callers without a deadline simply pass nil.
type Cancel struct {
	v atomic.Bool
}

// Set marks the flag cancelled. Safe to call from any goroutine and
// idempotent.
func (c *Cancel) Set() { c.v.Store(true) }

// Cancelled reports whether Set has been called. Safe on a nil receiver.
func (c *Cancel) Cancelled() bool { return c != nil && c.v.Load() }
