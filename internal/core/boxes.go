package core

import (
	"math"

	"trajmatch/internal/geom"
	"trajmatch/internal/traj"
)

// Boxes abstracts a trajectory box sequence (package tbox implements it).
// Using an interface here keeps the dependency arrow pointing from the
// index structures to the distance function, never back.
type Boxes interface {
	// Len returns the number of st-boxes in the sequence.
	Len() int
	// Rect returns the spatial extent of the i-th box.
	Rect(i int) geom.Rect
}

// LowerBound returns an admissible lower bound on EDwP(q, T) for every
// trajectory T summarised by the box sequence b — the operational form of
// the paper's EDwPsub(Q, tBoxSeq) (Theorem 2).
//
// The bound assigns each segment of q to one box, monotonically in box
// order, and charges 2·dist(segment, box) × length(segment); boxes may be
// skipped freely (the paper's free prefix/suffix skipping, extended to
// interior boxes, which is what makes the bound provably admissible under
// arbitrary re-partitioning of members — see DESIGN.md §2). Cost is
// O(len(q) · b.Len()).
//
// Admissibility sketch: fix a member T and an optimal EDwP(q, T) alignment.
// Every edit matches a piece of q's segment i against geometry of T lying
// inside some box k (construction invariant), so its rep cost is at least
// 2·dist(e_i, box_k) and its coverage at least the q-side piece length.
// Summing over the pieces of segment i and taking the best single box of
// the (monotone) run it spans yields exactly one path of this DP.
func LowerBound(q *traj.Trajectory, b Boxes) float64 {
	return LowerBoundBounded(q, b, math.Inf(1))
}

// LowerBoundBounded is LowerBound with early abandoning against limit:
// the result is exact whenever it does not exceed limit, and otherwise
// some value strictly above limit (possibly +Inf). Callers that only
// compare the bound against a pruning threshold — the k-NN search and the
// batched leaf pass — therefore make identical decisions while the DP
// skips states that can no longer finish within the limit and abandons
// outright once a whole row exceeds it.
//
// Admissibility of the two cuts: transition costs are non-negative, so
// state costs are monotone non-decreasing along DP paths. A state whose
// prefix-min already exceeds limit cannot start a completion within limit
// (cell skip), and since every alignment passes through each row, a row
// whose minimum exceeds limit proves the final value does too (row
// abandon). The optimal path of any result <= limit only visits states
// <= limit, so no such state is ever skipped and the result is exact.
// With limit = +Inf neither cut fires and the DP is bit-identical to the
// pre-arena LowerBound.
func LowerBoundBounded(q *traj.Trajectory, b Boxes, limit float64) float64 {
	n := q.NumSegments()
	nb := b.Len()
	if n == 0 || nb == 0 {
		return 0
	}
	inf := math.Inf(1)
	// dp[j] = min cost having consumed segments < i, currently at box j.
	// Rows come from the shared kernel scratch pool, so steady-state bound
	// evaluations allocate nothing.
	scratch := scratchPool.Get().(*dpScratch)
	dp, nxt := scratch.lbRows(nb)
	rects := scratch.lbRects(nb)
	// Pin the slice lengths to the loop bound so the row and rect accesses
	// below compile without bounds checks.
	dp, nxt, rects = dp[:nb], nxt[:nb], rects[:nb]
	for j := range dp {
		dp[j] = 0 // free skip of any box prefix
		rects[j] = b.Rect(j)
	}
	hasLimit := !math.IsInf(limit, 1)
	for i := 0; i < n; i++ {
		e := q.Segment(i).Spatial()
		l := e.Length()
		// Bounding box of the segment, for the cheap prescreen below.
		ex0, ex1 := e.A.X, e.B.X
		if ex1 < ex0 {
			ex0, ex1 = ex1, ex0
		}
		ey0, ey1 := e.A.Y, e.B.Y
		if ey1 < ey0 {
			ey0, ey1 = ey1, ey0
		}
		rowMin := inf
		for j := range nxt {
			nxt[j] = inf
		}
		bestSoFar := inf
		for j := 0; j < nb; j++ {
			// Pass boxes freely: entering box j can come from any j' <= j.
			if dp[j] < bestSoFar {
				bestSoFar = dp[j]
			}
			if math.IsInf(bestSoFar, 1) || bestSoFar > limit {
				continue
			}
			r := rects[j]
			if hasLimit && l > 0 {
				// Prescreen: the rect-to-rect distance between box j and
				// the segment's bounding box underestimates the exact
				// rect-to-segment distance, so a cell provably above the
				// limit skips the piecewise-quadratic DistToSegment
				// entirely. The 1e-9 deflation keeps the estimate below
				// any float rounding of the exact call, so no cell the
				// reference DP would have kept is ever skipped.
				dx, dy := 0.0, 0.0
				if d := r.Min.X - ex1; d > 0 {
					dx = d
				} else if d := ex0 - r.Max.X; d > 0 {
					dx = d
				}
				if d := r.Min.Y - ey1; d > 0 {
					dy = d
				} else if d := ey0 - r.Max.Y; d > 0 {
					dy = d
				}
				if dx > 0 || dy > 0 {
					est := bestSoFar + 2*math.Sqrt(dx*dx+dy*dy)*l*(1-1e-9)
					if est > limit {
						continue
					}
				}
			}
			c := bestSoFar + 2*r.DistToSegment(e)*l
			if c < nxt[j] {
				nxt[j] = c
			}
			if c < rowMin {
				rowMin = c
			}
		}
		if rowMin > limit {
			// Row abandon: every assignment consumes segment i somewhere
			// in this row, and no state here is within limit.
			scratchPool.Put(scratch)
			return inf
		}
		dp, nxt = nxt, dp
	}
	best := inf
	for j := 0; j < nb; j++ {
		if dp[j] < best {
			best = dp[j] // free skip of any box suffix
		}
	}
	scratchPool.Put(scratch)
	return best
}

// SegScreen is the pooled per-query state of ScreenLowerBound: each
// query segment's spatial bounding box and length, laid out as parallel
// arrays so the screen's inner loop is pure float arithmetic over
// contiguous memory. Reset once per query, then shared across every
// member screened.
type SegScreen struct {
	x0, y0, x1, y1, l []float64

	// dp, nxt back ScreenLowerBoundMonotone's rolling rows; they live
	// here so the monotone tier shares the screen's pooling.
	dp, nxt []float64
}

// Rows returns the monotone tier's rolling rows, nb entries each.
func (s *SegScreen) Rows(nb int) (dp, nxt []float64) {
	if cap(s.dp) < nb {
		s.dp = make([]float64, nb)
		s.nxt = make([]float64, nb)
	}
	return s.dp[:nb], s.nxt[:nb]
}

// Reset fills the screen's arrays from q's segments.
func (s *SegScreen) Reset(q *traj.Trajectory) {
	n := q.NumSegments()
	if cap(s.l) < n {
		s.x0 = make([]float64, n)
		s.y0 = make([]float64, n)
		s.x1 = make([]float64, n)
		s.y1 = make([]float64, n)
		s.l = make([]float64, n)
	}
	s.x0, s.y0, s.x1, s.y1, s.l = s.x0[:n], s.y0[:n], s.x1[:n], s.y1[:n], s.l[:n]
	v := q.View()
	for i := 0; i < n; i++ {
		ax, bx := v.X[i], v.X[i+1]
		if bx < ax {
			ax, bx = bx, ax
		}
		ay, by := v.Y[i], v.Y[i+1]
		if by < ay {
			ay, by = by, ay
		}
		s.x0[i], s.x1[i] = ax, bx
		s.y0[i], s.y1[i] = ay, by
		dx := v.X[i+1] - v.X[i]
		dy := v.Y[i+1] - v.Y[i]
		s.l[i] = math.Sqrt(dx*dx + dy*dy)
	}
}

// ScreenLowerBound returns a cheap admissible lower bound on the raw
// (cumulative) EDwP(q, T) for any trajectory T whose geometry lies
// inside the given rects — a flat slab of MinX, MinY, MaxX, MaxY
// quadruples, typically a member's arena-resident box sequence or its
// single bounding box. It relaxes Theorem 2 twice: each query segment
// picks its best rect independently (the monotone-assignment constraint
// is dropped, which can only lower the value), and the rect-to-segment
// distance is relaxed to the rect-to-segment-bounding-box distance
// (again a lower bound). Both relaxations keep it below LowerBound,
// hence below EDwP, so comparing it against an inflated raw limit is a
// sound skip test. The running sum only grows, so the scan early-exits
// as soon as it passes limit; the returned value is then merely "some
// value above limit".
func ScreenLowerBound(s *SegScreen, rects []float64, limit float64) float64 {
	sum := 0.0
	for i, l := range s.l {
		if l == 0 {
			continue
		}
		x0, y0, x1, y1 := s.x0[i], s.y0[i], s.x1[i], s.y1[i]
		best := math.Inf(1)
		for r := 0; r+3 < len(rects); r += 4 {
			dx := 0.0
			if d := rects[r] - x1; d > 0 {
				dx = d
			} else if d := x0 - rects[r+2]; d > 0 {
				dx = d
			}
			dy := 0.0
			if d := rects[r+1] - y1; d > 0 {
				dy = d
			} else if d := y0 - rects[r+3]; d > 0 {
				dy = d
			}
			if d2 := dx*dx + dy*dy; d2 < best {
				best = d2
				if best == 0 {
					break
				}
			}
		}
		if best > 0 {
			sum += 2 * math.Sqrt(best) * l
			if sum > limit {
				return sum
			}
		}
	}
	return sum
}

// ScreenLowerBoundMonotone tightens ScreenLowerBound by restoring the
// monotone-assignment constraint of Theorem 2: segments must consume
// rects in order (with free skips), exactly like LowerBoundBounded's DP,
// but the per-cell cost stays the rect-to-segment-bounding-box gap — no
// piecewise-quadratic DistToSegment, so a cell costs a few comparisons
// and multiplies. The result sits between ScreenLowerBound and
// LowerBound: still admissible against the raw cumulative EDwP, tighter
// on members whose box chain runs a different route than the query.
// Like LowerBoundBounded it is exact-or-above-limit: whenever the
// returned value does not exceed limit it equals the true relaxed bound,
// otherwise it is some value above limit (possibly +Inf).
//
// dp and nxt are caller-provided scratch of at least len(rects)/4
// entries (the screen's pooled rows); they are overwritten.
func ScreenLowerBoundMonotone(s *SegScreen, rects []float64, limit float64, dp, nxt []float64) float64 {
	nb := len(rects) / 4
	n := len(s.l)
	if n == 0 || nb == 0 {
		return 0
	}
	inf := math.Inf(1)
	dp, nxt = dp[:nb], nxt[:nb]
	for j := range dp {
		dp[j] = 0 // free skip of any rect prefix
	}
	for i := 0; i < n; i++ {
		l := s.l[i]
		x0, y0, x1, y1 := s.x0[i], s.y0[i], s.x1[i], s.y1[i]
		rowMin := inf
		bestSoFar := inf
		for j := 0; j < nb; j++ {
			if dp[j] < bestSoFar {
				bestSoFar = dp[j]
			}
			c := inf
			if bestSoFar <= limit {
				r := j * 4
				dx := 0.0
				if d := rects[r] - x1; d > 0 {
					dx = d
				} else if d := x0 - rects[r+2]; d > 0 {
					dx = d
				}
				dy := 0.0
				if d := rects[r+1] - y1; d > 0 {
					dy = d
				} else if d := y0 - rects[r+3]; d > 0 {
					dy = d
				}
				if d2 := dx*dx + dy*dy; d2 > 0 {
					c = bestSoFar + 2*math.Sqrt(d2)*l
				} else {
					c = bestSoFar
				}
				if c < rowMin {
					rowMin = c
				}
			}
			nxt[j] = c
		}
		if rowMin > limit {
			return inf // row abandon: no assignment is within limit
		}
		dp, nxt = nxt, dp
	}
	best := inf
	for j := 0; j < nb; j++ {
		if dp[j] < best {
			best = dp[j] // free skip of any rect suffix
		}
	}
	return best
}

// AssignSegments maps each segment of t to one box of b, monotonically in
// box order, minimising the total enlargement this trajectory would cause:
// the cost of assigning segment i to box j is the area growth of box j when
// extended to cover the segment. It returns one box index per segment.
//
// This realises the paper's createTBoxSeq(T, B) merge step: the alignment
// determines which boxes absorb which pieces of the new trajectory while
// keeping every point of the trajectory inside its assigned box — the
// containment invariant that LowerBound's admissibility rests on.
func AssignSegments(t *traj.Trajectory, b Boxes) []int {
	n := t.NumSegments()
	nb := b.Len()
	if n == 0 || nb == 0 {
		return nil
	}
	inf := math.Inf(1)
	cost := make([][]float64, n)
	from := make([][]int, n)
	growCache := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, nb)
		from[i] = make([]int, nb)
		growCache[i] = make([]float64, nb)
		e := t.Segment(i).Spatial()
		for j := 0; j < nb; j++ {
			r := b.Rect(j)
			u := r.ExtendPoint(e.A).ExtendPoint(e.B)
			growCache[i][j] = u.Area() - r.Area()
			cost[i][j] = inf
			from[i][j] = -1
		}
	}
	for j := 0; j < nb; j++ {
		cost[0][j] = growCache[0][j]
	}
	for i := 1; i < n; i++ {
		// prefix min over cost[i-1][0..j]
		best := inf
		bestJ := -1
		for j := 0; j < nb; j++ {
			if cost[i-1][j] < best {
				best = cost[i-1][j]
				bestJ = j
			}
			if best < inf {
				cost[i][j] = best + growCache[i][j]
				from[i][j] = bestJ
			}
		}
	}
	// Terminal: best column in last row.
	bestJ := 0
	for j := 1; j < nb; j++ {
		if cost[n-1][j] < cost[n-1][bestJ] {
			bestJ = j
		}
	}
	out := make([]int, n)
	j := bestJ
	for i := n - 1; i >= 0; i-- {
		out[i] = j
		if i > 0 {
			j = from[i][j]
		}
	}
	return out
}
