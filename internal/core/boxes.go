package core

import (
	"math"

	"trajmatch/internal/geom"
	"trajmatch/internal/traj"
)

// Boxes abstracts a trajectory box sequence (package tbox implements it).
// Using an interface here keeps the dependency arrow pointing from the
// index structures to the distance function, never back.
type Boxes interface {
	// Len returns the number of st-boxes in the sequence.
	Len() int
	// Rect returns the spatial extent of the i-th box.
	Rect(i int) geom.Rect
}

// LowerBound returns an admissible lower bound on EDwP(q, T) for every
// trajectory T summarised by the box sequence b — the operational form of
// the paper's EDwPsub(Q, tBoxSeq) (Theorem 2).
//
// The bound assigns each segment of q to one box, monotonically in box
// order, and charges 2·dist(segment, box) × length(segment); boxes may be
// skipped freely (the paper's free prefix/suffix skipping, extended to
// interior boxes, which is what makes the bound provably admissible under
// arbitrary re-partitioning of members — see DESIGN.md §2). Cost is
// O(len(q) · b.Len()).
//
// Admissibility sketch: fix a member T and an optimal EDwP(q, T) alignment.
// Every edit matches a piece of q's segment i against geometry of T lying
// inside some box k (construction invariant), so its rep cost is at least
// 2·dist(e_i, box_k) and its coverage at least the q-side piece length.
// Summing over the pieces of segment i and taking the best single box of
// the (monotone) run it spans yields exactly one path of this DP.
func LowerBound(q *traj.Trajectory, b Boxes) float64 {
	n := q.NumSegments()
	nb := b.Len()
	if n == 0 || nb == 0 {
		return 0
	}
	inf := math.Inf(1)
	// dp[j] = min cost having consumed segments < i, currently at box j.
	// Rows come from the shared kernel scratch pool, so steady-state bound
	// evaluations allocate nothing.
	scratch := scratchPool.Get().(*dpScratch)
	dp, nxt := scratch.lbRows(nb)
	for j := range dp {
		dp[j] = 0 // free skip of any box prefix
	}
	for i := 0; i < n; i++ {
		e := q.Segment(i).Spatial()
		l := e.Length()
		for j := range nxt {
			nxt[j] = inf
		}
		bestSoFar := inf
		for j := 0; j < nb; j++ {
			// Pass boxes freely: entering box j can come from any j' <= j.
			if dp[j] < bestSoFar {
				bestSoFar = dp[j]
			}
			if math.IsInf(bestSoFar, 1) {
				continue
			}
			c := bestSoFar + 2*b.Rect(j).DistToSegment(e)*l
			if c < nxt[j] {
				nxt[j] = c
			}
		}
		dp, nxt = nxt, dp
	}
	best := inf
	for j := 0; j < nb; j++ {
		if dp[j] < best {
			best = dp[j] // free skip of any box suffix
		}
	}
	scratchPool.Put(scratch)
	return best
}

// AssignSegments maps each segment of t to one box of b, monotonically in
// box order, minimising the total enlargement this trajectory would cause:
// the cost of assigning segment i to box j is the area growth of box j when
// extended to cover the segment. It returns one box index per segment.
//
// This realises the paper's createTBoxSeq(T, B) merge step: the alignment
// determines which boxes absorb which pieces of the new trajectory while
// keeping every point of the trajectory inside its assigned box — the
// containment invariant that LowerBound's admissibility rests on.
func AssignSegments(t *traj.Trajectory, b Boxes) []int {
	n := t.NumSegments()
	nb := b.Len()
	if n == 0 || nb == 0 {
		return nil
	}
	inf := math.Inf(1)
	cost := make([][]float64, n)
	from := make([][]int, n)
	growCache := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, nb)
		from[i] = make([]int, nb)
		growCache[i] = make([]float64, nb)
		e := t.Segment(i).Spatial()
		for j := 0; j < nb; j++ {
			r := b.Rect(j)
			u := r.ExtendPoint(e.A).ExtendPoint(e.B)
			growCache[i][j] = u.Area() - r.Area()
			cost[i][j] = inf
			from[i][j] = -1
		}
	}
	for j := 0; j < nb; j++ {
		cost[0][j] = growCache[0][j]
	}
	for i := 1; i < n; i++ {
		// prefix min over cost[i-1][0..j]
		best := inf
		bestJ := -1
		for j := 0; j < nb; j++ {
			if cost[i-1][j] < best {
				best = cost[i-1][j]
				bestJ = j
			}
			if best < inf {
				cost[i][j] = best + growCache[i][j]
				from[i][j] = bestJ
			}
		}
	}
	// Terminal: best column in last row.
	bestJ := 0
	for j := 1; j < nb; j++ {
		if cost[n-1][j] < cost[n-1][bestJ] {
			bestJ = j
		}
	}
	out := make([]int, n)
	j := bestJ
	for i := n - 1; i >= 0; i-- {
		out[i] = j
		if i > 0 {
			j = from[i][j]
		}
	}
	return out
}
