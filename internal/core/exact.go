package core

import (
	"math"

	"trajmatch/internal/geom"
	"trajmatch/internal/traj"
)

// ExactDistance evaluates the paper's EDwP recursion directly, with
// memoisation over continuous alignment heads: unlike Distance's array DP,
// inserts here project onto the *remaining* part of the current segment,
// exactly as the mutating ins(·,·) operation prescribes. The state space
// grows with the number of distinct projection chains, so this evaluator is
// intended as a test oracle for short trajectories; Distance is the
// production implementation.
func ExactDistance(t1, t2 *traj.Trajectory) float64 {
	P, Q := t1.Points, t2.Points
	n, m := len(P), len(Q)
	if n <= 1 && m <= 1 {
		return 0
	}
	if n <= 1 || m <= 1 {
		return math.Inf(1)
	}
	e := &exactEval{P: P, Q: Q, memo: make(map[exactKey]float64)}
	return e.eval(0, P[0].XY(), 0, Q[0].XY())
}

type exactKey struct {
	i, j     int
	h1x, h1y float64
	h2x, h2y float64
}

type exactEval struct {
	P, Q []traj.Point
	memo map[exactKey]float64
}

// eval returns the cheapest cost to finish the alignment from heads
// (h1 within segment i of P, h2 within segment j of Q). i == len(P)-1 means
// P is down to its zero-length tail at h1 (and likewise for Q).
func (e *exactEval) eval(i int, h1 geom.Point, j int, h2 geom.Point) float64 {
	n, m := len(e.P), len(e.Q)
	if i == n-1 && j == m-1 {
		return 0
	}
	k := exactKey{i, j, h1.X, h1.Y, h2.X, h2.Y}
	if v, ok := e.memo[k]; ok {
		return v
	}
	// Mark in-progress to cut cycles (zero-progress transitions are skipped
	// below, so any cycle would be zero-progress and can be priced +Inf).
	e.memo[k] = math.Inf(1)

	best := math.Inf(1)
	relax := func(c float64) {
		if c < best {
			best = c
		}
	}

	// REP: consume both remainders.
	switch {
	case i < n-1 && j < m-1:
		a1, a2 := e.P[i+1].XY(), e.Q[j+1].XY()
		relax(repCost(h1, a1, h2, a2) + e.eval(i+1, a1, j+1, a2))
	case i == n-1 && j < m-1:
		// P exhausted: its zero-length tail replaces against Q's remainder.
		a2 := e.Q[j+1].XY()
		relax(repCost(h1, h1, h2, a2) + e.eval(i, h1, j+1, a2))
	case i < n-1 && j == m-1:
		a1 := e.P[i+1].XY()
		relax(repCost(h1, a1, h2, h2) + e.eval(i+1, a1, j, h2))
	}

	// INS1: split P's remainder at the projection of Q's next sample, match
	// the first part with Q's remainder.
	if j < m-1 && i < n-1 {
		rem := geom.Seg(h1, e.P[i+1].XY())
		p := rem.Closest(e.Q[j+1].XY())
		a2 := e.Q[j+1].XY()
		if p != h1 || a2 != h2 { // skip zero-progress
			relax(repCost(h1, p, h2, a2) + e.eval(i, p, j+1, a2))
		}
	}
	// INS2: symmetric.
	if i < n-1 && j < m-1 {
		rem := geom.Seg(h2, e.Q[j+1].XY())
		q := rem.Closest(e.P[i+1].XY())
		a1 := e.P[i+1].XY()
		if q != h2 || a1 != h1 {
			relax(repCost(h1, a1, h2, q) + e.eval(i+1, a1, j, q))
		}
	}

	e.memo[k] = best
	return best
}
