package core

import (
	"math"
	"math/rand"
	"testing"

	"trajmatch/internal/geom"
	"trajmatch/internal/traj"
)

// runRef is the pre-arena kernel, kept verbatim as the bit-identity oracle
// for the restructured run: the SoA rewrite shares and hoists repeated
// distance/projection computations but must never reassociate an addition
// or change an operand, so every result — including abandon decisions —
// has to match runRef bit for bit.
func runRef(t1, t2 *traj.Trajectory, mode alignMode, limit float64, cancel *Cancel) (float64, bool) {
	n, m := len(t1.Points), len(t2.Points)
	if n <= 1 {
		if m <= 1 || mode != modeGlobal {
			return 0, false
		}
		return math.Inf(1), false
	}
	if m <= 1 {
		return math.Inf(1), false
	}

	px := t1.XYs()
	qx := t2.XYs()

	scratch := scratchPool.Get().(*dpScratch)
	cur, next := scratch.dpRows(m)

	inf := math.Inf(1)
	for k := range cur {
		cur[k] = inf
		next[k] = inf
	}
	cur[0*nL+lS] = 0
	if mode == modeSub {
		for j := 0; j < m; j++ {
			cur[j*nL+lS] = 0
		}
	}

	best := inf
	for i := 0; i < n; i++ {
		if cancel.Cancelled() {
			scratchPool.Put(scratch)
			return inf, true
		}
		nextMin := inf
		last1 := i == n-1
		var e1 geom.Segment
		var pNext geom.Point
		if !last1 {
			e1 = geom.Segment{A: px[i], B: px[i+1]}
			pNext = px[i+1]
		}
		for j := 0; j < m; j++ {
			base := j * nL
			c0, c1, c2, c3 := cur[base+lS], cur[base+lI1], cur[base+lI2], cur[base+lStop]
			if c0 == inf && c1 == inf && c2 == inf && c3 == inf {
				continue
			}
			last2 := j == m-1
			var e2 geom.Segment
			var qNext geom.Point
			if !last2 {
				e2 = geom.Segment{A: qx[j], B: qx[j+1]}
				qNext = qx[j+1]
			}
			h1I1 := px[i]
			if !last1 {
				h1I1 = e1.Closest(qx[j])
			}
			h2I2 := qx[j]
			if !last2 {
				h2I2 = e2.Closest(px[i])
			}
			proj1 := px[i]
			if !last2 {
				if !last1 {
					proj1 = e1.Closest(qNext)
				} else {
					proj1 = px[n-1]
				}
			}
			proj2 := qx[j]
			if !last1 {
				if !last2 {
					proj2 = e2.Closest(pNext)
				} else {
					proj2 = qx[m-1]
				}
			}

			var dRep, dIns1, dIns2 float64
			if !last1 && !last2 {
				dRep = pNext.Dist(qNext)
			}
			if !last2 {
				dIns1 = proj1.Dist(qNext)
			}
			if !last1 {
				dIns2 = pNext.Dist(proj2)
			}

			for layer := 0; layer < nL; layer++ {
				c := cur[base+layer]
				if c == inf {
					continue
				}
				h1, h2 := px[i], qx[j]
				switch layer {
				case lI1:
					h1 = h1I1
				case lI2:
					h2 = h2I2
				}
				if last1 {
					if mode != modeGlobal || last2 {
						if c < best {
							best = c
						}
					}
				}
				if layer == lStop {
					if !last1 {
						cost := c + (h1.Dist(h2)+pNext.Dist(h2))*h1.Dist(pNext)
						if cost <= limit {
							if idx := base + lStop; cost < next[idx] {
								next[idx] = cost
							}
							if cost < nextMin {
								nextMin = cost
							}
						}
					}
					continue
				}
				dh := h1.Dist(h2)
				var cov1 float64
				if !last1 {
					cov1 = h1.Dist(pNext)
				}
				var cov2 float64
				if !last2 {
					cov2 = h2.Dist(qNext)
				}
				if !last1 && !last2 {
					cost := c + (dh+dRep)*(cov1+cov2)
					if cost <= limit {
						if idx := base + nL + lS; cost < next[idx] {
							next[idx] = cost
						}
						if cost < nextMin {
							nextMin = cost
						}
					}
				}
				if !last2 {
					cost := c + (dh+dIns1)*(h1.Dist(proj1)+cov2)
					if cost <= limit {
						if idx := base + nL + lI1; cost < cur[idx] {
							cur[idx] = cost
						}
					}
				}
				if !last1 {
					cost := c + (dh+dIns2)*(cov1+h2.Dist(proj2))
					if cost <= limit {
						if idx := base + lI2; cost < next[idx] {
							next[idx] = cost
						}
						if cost < nextMin {
							nextMin = cost
						}
					}
				}
				if mode != modeGlobal && (layer == lS || layer == lI1) && !last1 && !last2 {
					qj := qx[j]
					cost := c + (h1.Dist(qj)+pNext.Dist(qj))*cov1
					if cost <= limit {
						if idx := base + lStop; cost < next[idx] {
							next[idx] = cost
						}
						if cost < nextMin {
							nextMin = cost
						}
					}
				}
			}
		}
		if !last1 && nextMin > limit {
			scratchPool.Put(scratch)
			return inf, true
		}
		cur, next = next, cur
		for k := range next {
			next[k] = inf
		}
	}
	scratchPool.Put(scratch)
	if best > limit {
		return inf, true
	}
	return best, false
}

// lowerBoundRef is the pre-arena Theorem-2 DP, kept verbatim as the oracle
// for LowerBoundBounded's exact-within-limit contract.
func lowerBoundRef(q *traj.Trajectory, b Boxes) float64 {
	n := q.NumSegments()
	nb := b.Len()
	if n == 0 || nb == 0 {
		return 0
	}
	inf := math.Inf(1)
	scratch := scratchPool.Get().(*dpScratch)
	dp, nxt := scratch.lbRows(nb)
	for j := range dp {
		dp[j] = 0
	}
	for i := 0; i < n; i++ {
		e := q.Segment(i).Spatial()
		l := e.Length()
		for j := range nxt {
			nxt[j] = inf
		}
		bestSoFar := inf
		for j := 0; j < nb; j++ {
			if dp[j] < bestSoFar {
				bestSoFar = dp[j]
			}
			if math.IsInf(bestSoFar, 1) {
				continue
			}
			c := bestSoFar + 2*b.Rect(j).DistToSegment(e)*l
			if c < nxt[j] {
				nxt[j] = c
			}
		}
		dp, nxt = nxt, dp
	}
	best := inf
	for j := 0; j < nb; j++ {
		if dp[j] < best {
			best = dp[j]
		}
	}
	scratchPool.Put(scratch)
	return best
}

func refRandTraj(rng *rand.Rand, id int) *traj.Trajectory {
	n := 2 + rng.Intn(18)
	pts := make([]traj.Point, n)
	x, y := rng.Float64()*100, rng.Float64()*100
	for i := range pts {
		x += rng.NormFloat64() * 3
		y += rng.NormFloat64() * 3
		pts[i] = traj.P(x, y, float64(i))
	}
	return traj.New(id, pts)
}

// TestRunMatchesReferenceBitExact drives the restructured kernel against
// the verbatim pre-arena kernel over random trajectory pairs, all three
// alignment modes and a ladder of limits (including ones tight enough to
// trigger row abandons), requiring bit-identical results.
func TestRunMatchesReferenceBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	modes := []alignMode{modeGlobal, modePrefix, modeSub}
	for iter := 0; iter < 400; iter++ {
		a := refRandTraj(rng, 1)
		b := refRandTraj(rng, 2)
		for _, mode := range modes {
			full, _ := runRef(a, b, mode, math.Inf(1), nil)
			limits := []float64{math.Inf(1), full * 2, full, full * 0.75, full * 0.25, 0}
			for _, limit := range limits {
				got, gotAb := run(a, b, mode, limit, nil)
				want, wantAb := runRef(a, b, mode, limit, nil)
				if math.Float64bits(got) != math.Float64bits(want) || gotAb != wantAb {
					t.Fatalf("iter %d mode %d limit %v: run=(%v,%v) ref=(%v,%v)",
						iter, mode, limit, got, gotAb, want, wantAb)
				}
			}
		}
	}
}

// TestRunMatchesReferenceDegenerate covers the short-circuit paths and
// duplicate-point trajectories (zero-length segments).
func TestRunMatchesReferenceDegenerate(t *testing.T) {
	one := traj.New(1, []traj.Point{traj.P(3, 4, 0)})
	two := traj.FromXY(2, 0, 0, 1, 1)
	dup := traj.New(3, []traj.Point{traj.P(5, 5, 0), traj.P(5, 5, 1), traj.P(6, 5, 2)})
	cases := [][2]*traj.Trajectory{{one, one}, {one, two}, {two, one}, {two, dup}, {dup, dup}}
	for _, mode := range []alignMode{modeGlobal, modePrefix, modeSub} {
		for _, c := range cases {
			for _, limit := range []float64{math.Inf(1), 10, 0} {
				got, gotAb := run(c[0], c[1], mode, limit, nil)
				want, wantAb := runRef(c[0], c[1], mode, limit, nil)
				if math.Float64bits(got) != math.Float64bits(want) || gotAb != wantAb {
					t.Fatalf("mode %d T%d/T%d limit %v: run=(%v,%v) ref=(%v,%v)",
						mode, c[0].ID, c[1].ID, limit, got, gotAb, want, wantAb)
				}
			}
		}
	}
}

// TestLowerBoundBoundedMatchesReference checks LowerBoundBounded against
// the verbatim unbounded DP: exact whenever the reference value is within
// the limit, and strictly above the limit (or +Inf) whenever not.
func TestLowerBoundBoundedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 300; iter++ {
		q := refRandTraj(rng, 1)
		m := refRandTraj(rng, 2)
		b := boxesFor([]*traj.Trajectory{m, refRandTraj(rng, 3)})
		want := lowerBoundRef(q, b)
		if got := LowerBound(q, b); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("iter %d: LowerBound=%v ref=%v", iter, got, want)
		}
		for _, limit := range []float64{math.Inf(1), want * 2, want, want * 0.5, 0} {
			got := LowerBoundBounded(q, b, limit)
			if want <= limit {
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("iter %d limit %v: bounded=%v want exact %v", iter, limit, got, want)
				}
			} else if got <= limit {
				t.Fatalf("iter %d limit %v: bounded=%v not above limit (ref %v)", iter, limit, got, want)
			}
		}
	}
}
