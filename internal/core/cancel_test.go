package core

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"trajmatch/internal/traj"
)

func bigTrajectory(id, n int, seed int64) *traj.Trajectory {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]traj.Point, n)
	x, y := 0.0, 0.0
	for i := range pts {
		x += rng.Float64()*10 - 5
		y += rng.Float64()*10 - 5
		pts[i] = traj.P(x, y, float64(i))
	}
	return traj.New(id, pts)
}

// A nil cancel flag must leave every result bit-identical to the
// cancel-free entry points.
func TestCancelNilIsIdentity(t *testing.T) {
	a := bigTrajectory(1, 60, 7)
	b := bigTrajectory(2, 45, 8)
	for _, limit := range []float64{math.Inf(1), 1e6, 10} {
		d1, ab1 := DistanceBounded(a, b, limit)
		d2, ab2 := DistanceBoundedCancel(a, b, limit, nil)
		if d1 != d2 || ab1 != ab2 {
			t.Fatalf("limit %v: nil-cancel diverges: (%v,%v) != (%v,%v)", limit, d2, ab2, d1, ab1)
		}
		s1, sb1 := SubDistanceBounded(a, b, limit)
		s2, sb2 := SubDistanceBoundedCancel(a, b, limit, nil)
		if s1 != s2 || sb1 != sb2 {
			t.Fatalf("limit %v: sub nil-cancel diverges", limit)
		}
	}
}

// A pre-fired flag abandons before any row is relaxed.
func TestCancelPreFiredAbandonsImmediately(t *testing.T) {
	a := bigTrajectory(1, 40, 1)
	b := bigTrajectory(2, 40, 2)
	var c Cancel
	c.Set()
	for name, call := range map[string]func() (float64, bool){
		"distance": func() (float64, bool) { return DistanceBoundedCancel(a, b, math.Inf(1), &c) },
		"avg":      func() (float64, bool) { return AvgDistanceBoundedCancel(a, b, math.Inf(1), &c) },
		"sub":      func() (float64, bool) { return SubDistanceBoundedCancel(a, b, math.Inf(1), &c) },
		"prefix":   func() (float64, bool) { return PrefixDistanceBoundedCancel(a, b, math.Inf(1), &c) },
	} {
		d, abandoned := call()
		if !math.IsInf(d, 1) || !abandoned {
			t.Fatalf("%s: pre-cancelled call returned (%v, %v), want (+Inf, true)", name, d, abandoned)
		}
	}
}

// A flag fired mid-evaluation stops the DP long before it would finish:
// the whole batch of evaluations below runs in a small fraction of the
// uncancelled wall clock.
func TestCancelStopsInFlightEvaluation(t *testing.T) {
	a := bigTrajectory(1, 2000, 3)
	b := bigTrajectory(2, 2000, 4)

	t0 := time.Now()
	DistanceBoundedCancel(a, b, math.Inf(1), nil)
	full := time.Since(t0)

	var c Cancel
	done := make(chan struct{})
	go func() {
		time.Sleep(full / 100)
		c.Set()
		close(done)
	}()
	t0 = time.Now()
	d, abandoned := DistanceBoundedCancel(a, b, math.Inf(1), &c)
	cancelled := time.Since(t0)
	<-done
	if !math.IsInf(d, 1) || !abandoned {
		t.Fatalf("cancelled call returned (%v, %v), want (+Inf, true)", d, abandoned)
	}
	// Generous bound: the cancelled call fired at ~1% of the full wall
	// clock and may finish at most one row later.
	if cancelled > full/2+50*time.Millisecond {
		t.Fatalf("cancelled evaluation took %v, full evaluation %v — cancellation did not cut the DP short", cancelled, full)
	}
}
