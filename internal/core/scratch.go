package core

import "sync"

// dpScratch holds the reusable buffers of the hot kernels: the two rolling
// DP rows of run (cur/next, m·nL states each) and the two rolling rows of
// LowerBound (dp/nxt, one state per box). A single pooled struct backs both
// so a query thread that alternates between bound evaluations and exact
// distances keeps hitting the same warm allocation.
//
// Buffers only ever grow; steady-state distance calls on trajectories no
// longer than any seen before perform zero allocations.
type dpScratch struct {
	rows []float64 // backing for run's cur and next (2·m·nL)
	lb   []float64 // backing for LowerBound's dp and nxt (2·nb)
}

var scratchPool = sync.Pool{New: func() any { return new(dpScratch) }}

// dpRows returns cur and next row slices with m·nL states each.
func (s *dpScratch) dpRows(m int) (cur, next []float64) {
	need := 2 * m * nL
	if cap(s.rows) < need {
		s.rows = make([]float64, need)
	}
	r := s.rows[:need]
	return r[: m*nL : m*nL], r[m*nL:]
}

// lbRows returns dp and nxt row slices with nb states each.
func (s *dpScratch) lbRows(nb int) (dp, nxt []float64) {
	need := 2 * nb
	if cap(s.lb) < need {
		s.lb = make([]float64, need)
	}
	r := s.lb[:need]
	return r[:nb:nb], r[nb:]
}
