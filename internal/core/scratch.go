package core

import (
	"sync"

	"trajmatch/internal/geom"
)

// dpScratch holds the reusable buffers of the hot kernels: the two rolling
// DP rows of run (cur/next, m·nL states each) and the two rolling rows of
// LowerBound (dp/nxt, one state per box). A single pooled struct backs both
// so a query thread that alternates between bound evaluations and exact
// distances keeps hitting the same warm allocation.
//
// Buffers only ever grow; steady-state distance calls on trajectories no
// longer than any seen before perform zero allocations.
type dpScratch struct {
	rows []float64 // backing for run's cur and next (2·m·nL)
	lb   []float64 // backing for LowerBound's dp and nxt (2·nb)

	// Auxiliary per-column state of run: seg caches t2's segment lengths
	// (hoisted out of the cell loop — every sample-anchored layer reuses
	// them), projX/projY hold the INS2 projection computed at row i for
	// column j, which is exactly the layer-I2 head of cell (i+1, j), and
	// stamp records which row each cached projection belongs to.
	seg   []float64
	projX []float64
	projY []float64
	stamp []int32

	// rects is LowerBound's devirtualised copy of the box sequence: the
	// Boxes interface is consulted once per box per call instead of once
	// per DP cell, and the bound's inner loop streams over a contiguous
	// rect array.
	rects []geom.Rect
}

var scratchPool = sync.Pool{New: func() any { return new(dpScratch) }}

// dpRows returns cur and next row slices with m·nL states each.
func (s *dpScratch) dpRows(m int) (cur, next []float64) {
	need := 2 * m * nL
	if cap(s.rows) < need {
		s.rows = make([]float64, need)
	}
	r := s.rows[:need]
	return r[: m*nL : m*nL], r[m*nL:]
}

// auxRows returns the per-column auxiliary buffers of run, m entries each.
func (s *dpScratch) auxRows(m int) (seg, projX, projY []float64, stamp []int32) {
	if cap(s.seg) < m {
		s.seg = make([]float64, m)
		s.projX = make([]float64, m)
		s.projY = make([]float64, m)
		s.stamp = make([]int32, m)
	}
	return s.seg[:m], s.projX[:m], s.projY[:m], s.stamp[:m]
}

// lbRows returns dp and nxt row slices with nb states each.
func (s *dpScratch) lbRows(nb int) (dp, nxt []float64) {
	need := 2 * nb
	if cap(s.lb) < need {
		s.lb = make([]float64, need)
	}
	r := s.lb[:need]
	return r[:nb:nb], r[nb:]
}

// lbRects returns the devirtualised rect buffer, nb entries.
func (s *dpScratch) lbRects(nb int) []geom.Rect {
	if cap(s.rects) < nb {
		s.rects = make([]geom.Rect, nb)
	}
	return s.rects[:nb]
}
