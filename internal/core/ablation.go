package core

import (
	"math"

	"trajmatch/internal/geom"
	"trajmatch/internal/traj"
)

// UniformDistance is the ablation counterpart of Distance (DESIGN.md, X2):
// the same dynamic program with the Coverage factor of Eq. 3 removed, so
// every edit contributes its raw rep(·,·) cost regardless of how much of
// the trajectories it explains. Section V-C credits Coverage with the
// intra-trajectory robustness (densely sampled regions must not dominate);
// comparing rank robustness between Distance and UniformDistance isolates
// that design choice.
func UniformDistance(t1, t2 *traj.Trajectory) float64 {
	P, Q := t1.Points, t2.Points
	n, m := len(P), len(Q)
	if n <= 1 && m <= 1 {
		return 0
	}
	if n <= 1 || m <= 1 {
		return math.Inf(1)
	}
	px := make([]geom.Point, n)
	for i, p := range P {
		px[i] = p.XY()
	}
	qx := make([]geom.Point, m)
	for j, p := range Q {
		qx[j] = p.XY()
	}
	inf := math.Inf(1)
	cur := make([]float64, m*nL)
	next := make([]float64, m*nL)
	for k := range cur {
		cur[k] = inf
		next[k] = inf
	}
	cur[0*nL+lS] = 0
	best := inf
	for i := 0; i < n; i++ {
		last1 := i == n-1
		var e1 geom.Segment
		if !last1 {
			e1 = geom.Segment{A: px[i], B: px[i+1]}
		}
		for j := 0; j < m; j++ {
			base := j * nL
			last2 := j == m-1
			var e2 geom.Segment
			if !last2 {
				e2 = geom.Segment{A: qx[j], B: qx[j+1]}
			}
			for layer := 0; layer < lStop; layer++ {
				c := cur[base+layer]
				if c == inf {
					continue
				}
				h1, h2 := px[i], qx[j]
				switch layer {
				case lI1:
					if !last1 {
						h1 = e1.Closest(qx[j])
					}
				case lI2:
					if !last2 {
						h2 = e2.Closest(px[i])
					}
				}
				if last1 && last2 && c < best {
					best = c
				}
				if !last1 && !last2 {
					cost := c + h1.Dist(h2) + px[i+1].Dist(qx[j+1])
					if idx := base + nL + lS; cost < next[idx] {
						next[idx] = cost
					}
				}
				if !last2 {
					p := px[i]
					if !last1 {
						p = e1.Closest(qx[j+1])
					}
					cost := c + h1.Dist(h2) + p.Dist(qx[j+1])
					if idx := base + nL + lI1; cost < cur[idx] {
						cur[idx] = cost
					}
				}
				if !last1 {
					q := qx[j]
					if !last2 {
						q = e2.Closest(px[i+1])
					}
					cost := c + h1.Dist(h2) + px[i+1].Dist(q)
					if idx := base + lI2; cost < next[idx] {
						next[idx] = cost
					}
				}
			}
		}
		cur, next = next, cur
		for k := range next {
			next[k] = inf
		}
	}
	return best
}
