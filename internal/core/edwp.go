// Package core implements Edit Distance with Projections (EDwP), the
// paper's primary contribution: a threshold-free trajectory distance that
// adapts to inconsistent sampling rates through dynamic interpolation.
//
// The distance is realised as a layered dynamic program over the sample
// points of the two trajectories. Layer S holds states where both aligned
// heads sit on sampled points; layers I1 and I2 hold states entered through
// an insert edit, where one head is the projection of the other
// trajectory's last consumed sample onto the current segment — the
// non-sampled interpolated points the paper's ins(·,·) operation creates.
// Every transition charges the paper's rep(·,·) cost weighted by Coverage
// (Eqs. 2–3), so larger segments dominate the distance.
//
// The same machinery, with free skipping of the second argument's prefix
// and suffix plus a "stopped" layer that lets the second trajectory end at
// any sample, yields PrefixDist and EDwPsub (Eqs. 5–6). Their box
// generalisation (the Theorem-2 lower bound that powers the TrajTree index)
// lives in boxes.go.
package core

import (
	"math"

	"trajmatch/internal/geom"
	"trajmatch/internal/traj"
)

// layer indices of the dynamic program.
const (
	lS    = 0 // both heads at sample points
	lI1   = 1 // T1's head is a projected (inserted) point
	lI2   = 2 // T2's head is a projected (inserted) point
	lStop = 3 // T2 has ended at sample j (sub/prefix modes only)
	nL    = 4
)

// alignMode selects which affixes of the second trajectory are free.
type alignMode int

const (
	modeGlobal alignMode = iota // EDwP: both trajectories consumed in full
	modePrefix                  // PrefixDist: t may end early (Eq. 5)
	modeSub                     // EDwPsub: t may start late and end early (Eq. 6)
)

// Distance returns the cumulative EDwP distance between two trajectories.
//
// Following the paper's definition, it returns 0 when both trajectories
// have no segments and +Inf when exactly one of them has none.
func Distance(t1, t2 *traj.Trajectory) float64 {
	d, _ := run(t1, t2, modeGlobal, math.Inf(1), nil)
	return d
}

// DistanceBounded returns EDwP(t1, t2) exactly whenever it does not exceed
// limit, and +Inf otherwise. The second return reports whether the +Inf
// came from the limit (the kernel abandoned the dynamic program, or the
// full result was rejected at the boundary) as opposed to the distance
// being genuinely infinite on degenerate inputs — index instrumentation
// counts the former as early abandons. Calls whose true distance is far
// above the bound cost a fraction of a full evaluation.
// DistanceBounded(t1, t2, +Inf) is identical to Distance.
func DistanceBounded(t1, t2 *traj.Trajectory, limit float64) (float64, bool) {
	return run(t1, t2, modeGlobal, limit, nil)
}

// DistanceBoundedCancel is DistanceBounded with a cooperative
// cancellation flag: once cancel fires the dynamic program stops within
// one more DP row and the call returns (+Inf, true), exactly as if it had
// been abandoned by the limit. The result of a cancelled call is
// therefore meaningless on its own — callers must check their
// cancellation source and discard the whole query, which is what the
// trajtree search loop does. A nil cancel is identical to
// DistanceBounded.
func DistanceBoundedCancel(t1, t2 *traj.Trajectory, limit float64, cancel *Cancel) (float64, bool) {
	return run(t1, t2, modeGlobal, limit, cancel)
}

// AvgDistance returns the length-normalised EDwP of Eq. 4:
// EDwP(T1,T2) / (length(T1)+length(T2)). When both trajectories have zero
// spatial length the result is 0 if EDwP is 0 and +Inf otherwise.
func AvgDistance(t1, t2 *traj.Trajectory) float64 {
	d, _ := AvgDistanceBounded(t1, t2, math.Inf(1))
	return d
}

// AvgDistanceBounded returns AvgDistance(t1, t2) exactly whenever it does
// not exceed limit, and +Inf otherwise; the second return reports whether
// the +Inf was caused by the limit (see DistanceBounded). The bound is
// translated into a cumulative-EDwP bound by the normaliser of Eq. 4,
// inflated by a relative epsilon so boundary values survive
// floating-point rounding inside the DP, and the quotient is re-checked
// against limit afterwards so a finite result never exceeds it.
func AvgDistanceBounded(t1, t2 *traj.Trajectory, limit float64) (float64, bool) {
	return AvgDistanceBoundedCancel(t1, t2, limit, nil)
}

// AvgDistanceBoundedCancel is AvgDistanceBounded with a cooperative
// cancellation flag polled at DP-row granularity; see
// DistanceBoundedCancel for the contract. A nil cancel is identical to
// AvgDistanceBounded.
func AvgDistanceBoundedCancel(t1, t2 *traj.Trajectory, limit float64, cancel *Cancel) (float64, bool) {
	sum := t1.Length() + t2.Length()
	if sum == 0 {
		d, abandoned := run(t1, t2, modeGlobal, math.Inf(1), cancel)
		if abandoned {
			// With an infinite limit the only abandon source is the cancel
			// flag; preserve the (+Inf, true) cancellation contract.
			return math.Inf(1), true
		}
		if d == 0 {
			return 0, false
		}
		return math.Inf(1), false
	}
	raw := limit
	if !math.IsInf(limit, 1) {
		raw = limit * sum
		raw += raw * 1e-12 // keep d/sum == limit reachable despite rounding
	}
	d, abandoned := run(t1, t2, modeGlobal, raw, cancel)
	if math.IsInf(d, 1) {
		return d, abandoned
	}
	if res := d / sum; res <= limit {
		return res, false
	}
	return math.Inf(1), true // rejected at the boundary by the limit
}

// SubDistance returns EDwPsub(q, t): the cost of the best alignment of the
// whole of q against any contiguous sub-trajectory of t (Eq. 6). It is
// asymmetric; prefixes and suffixes of t are skipped free of charge.
func SubDistance(q, t *traj.Trajectory) float64 {
	d, _ := run(q, t, modeSub, math.Inf(1), nil)
	return d
}

// SubDistanceBounded returns EDwPsub(q, t) exactly whenever it does not
// exceed limit, and +Inf otherwise; the second return reports whether the
// +Inf was caused by the limit (see DistanceBounded).
func SubDistanceBounded(q, t *traj.Trajectory, limit float64) (float64, bool) {
	return run(q, t, modeSub, limit, nil)
}

// SubDistanceBoundedCancel is SubDistanceBounded with a cooperative
// cancellation flag polled at DP-row granularity; see
// DistanceBoundedCancel for the contract. A nil cancel is identical to
// SubDistanceBounded.
func SubDistanceBoundedCancel(q, t *traj.Trajectory, limit float64, cancel *Cancel) (float64, bool) {
	return run(q, t, modeSub, limit, cancel)
}

// PrefixDistance returns PrefixDist(q, t) of Eq. 5: all of q aligned
// against any prefix of t (only t's suffix may be skipped).
func PrefixDistance(q, t *traj.Trajectory) float64 {
	d, _ := run(q, t, modePrefix, math.Inf(1), nil)
	return d
}

// PrefixDistanceBounded returns PrefixDistance(q, t) exactly whenever it
// does not exceed limit, and +Inf otherwise; the second return reports
// whether the +Inf was caused by the limit (see DistanceBounded).
func PrefixDistanceBounded(q, t *traj.Trajectory, limit float64) (float64, bool) {
	return run(q, t, modePrefix, limit, nil)
}

// PrefixDistanceBoundedCancel is PrefixDistanceBounded with a cooperative
// cancellation flag polled at DP-row granularity; see
// DistanceBoundedCancel for the contract. A nil cancel is identical to
// PrefixDistanceBounded.
func PrefixDistanceBoundedCancel(q, t *traj.Trajectory, limit float64, cancel *Cancel) (float64, bool) {
	return run(q, t, modePrefix, limit, cancel)
}

// seg returns the spatial segment between two st-points.
func seg(a, b traj.Point) geom.Segment { return geom.Seg(a.XY(), b.XY()) }

// heads returns the aligned head positions of state (i, j, layer).
// P and Q are the sample points of the two trajectories.
func heads(P, Q []traj.Point, i, j, layer int) (h1, h2 geom.Point) {
	n, m := len(P), len(Q)
	h1 = P[i].XY()
	h2 = Q[j].XY()
	switch layer {
	case lI1:
		if i < n-1 {
			h1 = seg(P[i], P[i+1]).Closest(Q[j].XY())
		}
	case lI2:
		if j < m-1 {
			h2 = seg(Q[j], Q[j+1]).Closest(P[i].XY())
		}
	}
	return h1, h2
}

// repCost is rep(e1, e2) × Coverage(e1, e2) for the pieces
// [h1, a1] on T1 and [h2, a2] on T2 (Eqs. 2–3).
func repCost(h1, a1, h2, a2 geom.Point) float64 {
	return (h1.Dist(h2) + a1.Dist(a2)) * (h1.Dist(a1) + h2.Dist(a2))
}

// run executes the forward DP with rolling rows. The inner loop is the
// hottest code in the repository: per cell it computes the projection
// points shared by every layer's transitions once, then relaxes the three
// (or four, in sub/prefix modes) outgoing edges of each layer.
//
// The loop body is restructured for the arena's SoA layout — coordinates
// stream from the trajectories' View slices — and every repeated
// computation is shared rather than recomputed: segment lengths are hoisted
// to per-row/per-column caches (cov1 of every sample-anchored layer is the
// same |p_i p_{i+1}|; cov2 likewise), the INS1 projection of cell (i, j) is
// the layer-I1 head of cell (i, j+1) (within-row reuse), and the INS2
// projection of cell (i, j) is the layer-I2 head of cell (i+1, j)
// (cross-row reuse via stamped scratch columns). Sharing is
// value-preserving by construction — identical operands through identical
// operations — so results are bit-identical to the pre-arena kernel, which
// edwp_ref_test.go keeps verbatim as the oracle. Additions are never
// reassociated.
//
// limit makes the kernel bound-aware. Every transition cost is
// non-negative, so state costs are monotone non-decreasing along DP paths:
// a state whose cost already exceeds limit cannot be the prefix of an
// alignment finishing within limit and is never materialised, and once a
// whole row of successor states is empty no alignment can finish at all —
// the kernel abandons and returns +Inf (the row-min test; see
// docs/ARCHITECTURE.md for the admissibility argument). With limit = +Inf
// neither test ever fires and run is bit-identical to the unbounded seed
// kernel.
//
// All scratch (the two rolling rows) comes from a sync.Pool and the XY
// projections come from the trajectories' caches, so steady-state calls
// allocate nothing.
//
// cancel, when non-nil, is polled once per DP row (the same cadence as
// the row-min test): a fired flag abandons the program within one more
// row of work and the call returns (+Inf, true). Cancelled results carry
// no information — the caller's query layer is responsible for noticing
// the cancellation and discarding the whole query.
//
// The second return reports whether a +Inf result was caused by the limit
// (abandoned early, or the completed value exceeded it) rather than by
// degenerate inputs whose distance is genuinely infinite.
func run(t1, t2 *traj.Trajectory, mode alignMode, limit float64, cancel *Cancel) (float64, bool) {
	n, m := len(t1.Points), len(t2.Points)
	if n <= 1 {
		if m <= 1 || mode != modeGlobal {
			return 0, false // PrefixDist(∅,·)=0, EDwPsub(∅,·)=0, EDwP(∅,∅)=0
		}
		return math.Inf(1), false
	}
	if m <= 1 {
		return math.Inf(1), false
	}

	v1 := t1.View()
	v2 := t2.View()
	p1x, p1y := v1.X, v1.Y
	p2x, p2y := v2.X, v2.Y
	// Pin the slice lengths to the loop bounds so the coordinate loads in
	// the cell loop compile without bounds checks.
	p1x, p1y = p1x[:n], p1y[:n]
	p2x, p2y = p2x[:m], p2y[:m]

	scratch := scratchPool.Get().(*dpScratch)
	// Rows are padded by one state group beyond column m-1: together with
	// the sentinel loads at the top of the cell loop this lets the compiler
	// prove every cur/next access in range and drop its bounds check. The
	// padding cells are initialised to +Inf and never written or read.
	cur, next := scratch.dpRows(m + 1)
	seg2, projX, projY, stamp := scratch.auxRows(m)
	seg2 = seg2[:m]
	projX, projY, stamp = projX[:m], projY[:m], stamp[:m]
	// seg2[j] = |q_j q_{j+1}|: the cov2 of every sample-anchored layer at
	// column j, identical across rows, computed once per call. The operand
	// order differs from Dist's but the squared differences do not, so the
	// value is bit-identical.
	for j := 0; j < m-1; j++ {
		dx := p2x[j+1] - p2x[j]
		dy := p2y[j+1] - p2y[j]
		seg2[j] = math.Sqrt(dx*dx + dy*dy)
	}
	for j := range stamp {
		stamp[j] = -1 // no cached projection belongs to this call yet
	}

	inf := math.Inf(1)
	for k := range cur {
		cur[k] = inf
		next[k] = inf
	}
	cur[0*nL+lS] = 0
	if mode == modeSub {
		for j := 0; j < m; j++ {
			cur[j*nL+lS] = 0 // free skip of t's prefix
		}
	}

	best := inf
	for i := 0; i < n; i++ {
		if cancel.Cancelled() {
			// Row-granularity cancellation poll: one atomic load per row,
			// so a fired context stops the quadratic program after at most
			// one more row of cells.
			scratchPool.Put(scratch)
			return inf, true
		}
		nextMin := inf
		i1 := i + 1
		last1 := i1 == n
		pi := geom.Point{X: p1x[i], Y: p1y[i]}
		var e1 geom.Segment
		var pNext geom.Point
		var len1 float64 // |p_i p_{i+1}|: cov1 of the sample-anchored layers
		if i1 < n {
			pNext = geom.Point{X: p1x[i1], Y: p1y[i1]}
			e1 = geom.Segment{A: pi, B: pNext}
			len1 = pi.Dist(pNext)
		}
		// prevProj1 holds the INS1 projection of the previous column:
		// e1.Closest(q_{j'+1}) computed at column j' is exactly this
		// column's layer-I1 head when j = j'+1.
		var prevProj1 geom.Point
		prevProj1Col := -2
		for j := 0; j < m; j++ {
			base := j * nL
			// Two-group windows over the rolling rows: the padding group
			// keeps base+8 in range at j = m-1, and the constant indices
			// below (max nL+lI1 = 5) compile without bounds checks.
			cRow := cur[base : base+8]
			nRow := next[base : base+8]
			c0, c1, c2, c3 := cRow[lS], cRow[lI1], cRow[lI2], cRow[lStop]
			if c0 == inf && c1 == inf && c2 == inf && c3 == inf {
				continue
			}
			j1 := j + 1
			last2 := j1 == m
			qj := geom.Point{X: p2x[j], Y: p2y[j]}
			var e2 geom.Segment
			var qNext geom.Point
			var len2 float64
			if j1 < m {
				qNext = geom.Point{X: p2x[j1], Y: p2y[j1]}
				e2 = geom.Segment{A: qj, B: qNext}
				len2 = seg2[j]
			}
			// Layer heads, computed only for live layers and reused from
			// the neighbouring cell that already projected the same point
			// onto the same segment whenever possible.
			h1I1 := pi
			if !last1 && c1 < inf {
				if prevProj1Col == j-1 {
					h1I1 = prevProj1
				} else {
					h1I1 = e1.Closest(qj)
				}
			}
			h2I2 := qj
			if !last2 && c2 < inf {
				if stamp[j] == int32(i) {
					h2I2 = geom.Point{X: projX[j], Y: projY[j]}
				} else {
					h2I2 = e2.Closest(pi)
				}
			}
			proj1 := pi // INS1 split point on q's segment
			if !last2 {
				if !last1 {
					proj1 = e1.Closest(qNext)
					prevProj1 = proj1
					prevProj1Col = j
				} else {
					proj1 = geom.Point{X: p1x[n-1], Y: p1y[n-1]}
				}
			}
			proj2 := qj // INS2 split point on t's segment
			if !last1 {
				if !last2 {
					proj2 = e2.Closest(pNext)
					projX[j], projY[j] = proj2.X, proj2.Y
					stamp[j] = int32(i + 1) // = h2I2 of cell (i+1, j)
				} else {
					proj2 = geom.Point{X: p2x[m-1], Y: p2y[m-1]}
				}
			}

			// Endpoint-pair distances shared by every layer's transitions.
			var dRep, dIns1, dIns2 float64
			if !last1 && !last2 {
				dRep = pNext.Dist(qNext)
			}
			if !last2 {
				dIns1 = proj1.Dist(qNext)
			}
			if !last1 {
				dIns2 = pNext.Dist(proj2)
			}
			// Distances shared across layers: sample-to-sample head gap
			// (dh of layer S, and half of every stop cost), the stop
			// target pNext→q_j, and the INS split-point coverages.
			var dSS float64
			if c0 < inf || c3 < inf {
				dSS = pi.Dist(qj)
			}
			var dPNq float64
			if !last1 && (c3 < inf || mode != modeGlobal) {
				dPNq = pNext.Dist(qj)
			}
			var dPp1 float64 // |p_i proj1|: INS1 coverage of layers S and I2
			if !last2 && (c0 < inf || c2 < inf) {
				dPp1 = pi.Dist(proj1)
			}
			var dQp2 float64 // |q_j proj2|: INS2 coverage of layers S and I1
			if !last1 && (c0 < inf || c1 < inf) {
				dQp2 = qj.Dist(proj2)
			}

			if last1 {
				// q consumed. Global mode also requires t consumed.
				if mode != modeGlobal || last2 {
					if c0 < best {
						best = c0
					}
					if c1 < best {
						best = c1
					}
					if c2 < best {
						best = c2
					}
					if c3 < best {
						best = c3
					}
				}
			}

			// Layer S: both heads at samples (h1 = p_i, h2 = q_j).
			if c0 < inf {
				if !last1 && !last2 {
					cost := c0 + (dSS+dRep)*(len1+len2)
					if cost <= limit {
						if cost < nRow[nL+lS] {
							nRow[nL+lS] = cost
						}
						if cost < nextMin {
							nextMin = cost
						}
					}
				}
				if !last2 {
					cost := c0 + (dSS+dIns1)*(dPp1+len2)
					if cost <= limit {
						if cost < cRow[nL+lI1] {
							cRow[nL+lI1] = cost
						}
					}
				}
				if !last1 {
					cost := c0 + (dSS+dIns2)*(len1+dQp2)
					if cost <= limit {
						if cost < nRow[lI2] {
							nRow[lI2] = cost
						}
						if cost < nextMin {
							nextMin = cost
						}
					}
				}
				if mode != modeGlobal && !last1 && !last2 {
					cost := c0 + (dSS+dPNq)*len1
					if cost <= limit {
						if cost < nRow[lStop] {
							nRow[lStop] = cost
						}
						if cost < nextMin {
							nextMin = cost
						}
					}
				}
			}

			// Layer I1: T1's head is the projected point h1I1.
			if c1 < inf {
				dh := h1I1.Dist(qj)
				var cov1 float64
				if !last1 {
					cov1 = h1I1.Dist(pNext)
				}
				if !last1 && !last2 {
					cost := c1 + (dh+dRep)*(cov1+len2)
					if cost <= limit {
						if cost < nRow[nL+lS] {
							nRow[nL+lS] = cost
						}
						if cost < nextMin {
							nextMin = cost
						}
					}
				}
				if !last2 {
					cost := c1 + (dh+dIns1)*(h1I1.Dist(proj1)+len2)
					if cost <= limit {
						if cost < cRow[nL+lI1] {
							cRow[nL+lI1] = cost
						}
					}
				}
				if !last1 {
					cost := c1 + (dh+dIns2)*(cov1+dQp2)
					if cost <= limit {
						if cost < nRow[lI2] {
							nRow[lI2] = cost
						}
						if cost < nextMin {
							nextMin = cost
						}
					}
				}
				if mode != modeGlobal && !last1 && !last2 {
					cost := c1 + (dh+dPNq)*cov1
					if cost <= limit {
						if cost < nRow[lStop] {
							nRow[lStop] = cost
						}
						if cost < nextMin {
							nextMin = cost
						}
					}
				}
			}

			// Layer I2: T2's head is the projected point h2I2. No stop
			// transition — stops only enter from sample-aligned layers.
			if c2 < inf {
				dh := pi.Dist(h2I2)
				var cov2 float64
				if !last2 {
					cov2 = h2I2.Dist(qNext)
				}
				if !last1 && !last2 {
					cost := c2 + (dh+dRep)*(len1+cov2)
					if cost <= limit {
						if cost < nRow[nL+lS] {
							nRow[nL+lS] = cost
						}
						if cost < nextMin {
							nextMin = cost
						}
					}
				}
				if !last2 {
					cost := c2 + (dh+dIns1)*(dPp1+cov2)
					if cost <= limit {
						if cost < cRow[nL+lI1] {
							cRow[nL+lI1] = cost
						}
					}
				}
				if !last1 {
					cost := c2 + (dh+dIns2)*(len1+h2I2.Dist(proj2))
					if cost <= limit {
						if cost < nRow[lI2] {
							nRow[lI2] = cost
						}
						if cost < nextMin {
							nextMin = cost
						}
					}
				}
			}

			// Layer Stop: t has ended at sample j (h1 = p_i, h2 = q_j);
			// q's remaining segments replace against the zero-length tail.
			if c3 < inf && !last1 {
				cost := c3 + (dSS+dPNq)*len1
				if cost <= limit {
					if cost < nRow[lStop] {
						nRow[lStop] = cost
					}
					if cost < nextMin {
						nextMin = cost
					}
				}
			}
		}
		if !last1 && nextMin > limit {
			// Row-min abandon: every alignment still alive must pass
			// through row i+1, and no state there is within limit.
			scratchPool.Put(scratch)
			return inf, true
		}
		cur, next = next, cur
		for k := range next {
			next[k] = inf
		}
	}
	scratchPool.Put(scratch)
	if best > limit {
		// Only reachable with a finite limit: with limit = +Inf a global
		// alignment always exists for n, m >= 2, and best <= +Inf.
		return inf, true
	}
	return best, false
}
