package arena

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"trajmatch/internal/core"
	"trajmatch/internal/raceflag"
	"trajmatch/internal/traj"
)

func allocTraj(rng *rand.Rand, id, n int) *traj.Trajectory {
	pts := make([]traj.Point, n)
	x, y := rng.Float64()*100, rng.Float64()*100
	for j := range pts {
		x += rng.NormFloat64() * 2
		y += rng.NormFloat64() * 2
		pts[j] = traj.P(x, y, float64(j))
	}
	return traj.New(id, pts)
}

// TestArenaViewZeroAllocs extends the kernel zero-alloc fence (core's
// TestDistanceZeroAllocs) to arena-backed trajectories: after Build
// re-points members at the slabs — and after a snapshot round trip
// re-points them at the decoded file image — the distance kernels and
// the leaf-level segment screen must still run without allocating. The
// two fences together pin that the SoA re-layout never forces the hot
// path back onto per-call copies.
func TestArenaViewZeroAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("alloc counts are not meaningful under -race: sync.Pool deliberately drops Puts")
	}
	rng := rand.New(rand.NewSource(46))
	members := []*traj.Trajectory{allocTraj(rng, 1, 40), allocTraj(rng, 2, 35)}
	a := Build(members)
	q := allocTraj(rng, 99, 25) // plain heap query, as in production

	check := func(label string, x, y *traj.Trajectory) {
		t.Helper()
		// Warm the XY caches and the scratch pool outside the fence.
		core.Distance(x, y)
		core.Distance(q, x)
		if n := testing.AllocsPerRun(100, func() { core.Distance(x, y) }); n != 0 {
			t.Errorf("%s: Distance allocates %v per run, want 0", label, n)
		}
		if n := testing.AllocsPerRun(100, func() { _, _ = core.DistanceBounded(q, x, 1) }); n != 0 {
			t.Errorf("%s: DistanceBounded allocates %v per run, want 0", label, n)
		}
		if n := testing.AllocsPerRun(100, func() { core.AvgDistance(q, y) }); n != 0 {
			t.Errorf("%s: AvgDistance allocates %v per run, want 0", label, n)
		}
	}
	check("built", members[0], members[1])

	// The segment screen over the arena's flattened box sequences — the
	// batched leaf path of SearchKNN.
	scr := new(core.SegScreen)
	scr.Reset(q)
	core.ScreenLowerBound(scr, a.Boxes(0), math.Inf(1))
	if n := testing.AllocsPerRun(100, func() {
		for i := 0; i < a.Len(); i++ {
			core.ScreenLowerBound(scr, a.Boxes(i), math.Inf(1))
		}
	}); n != 0 {
		t.Errorf("ScreenLowerBound over arena boxes allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { scr.Reset(q) }); n != 0 {
		t.Errorf("SegScreen.Reset allocates %v per run, want 0", n)
	}

	// Same fences on members materialised from an encoded snapshot.
	var buf bytes.Buffer
	if err := Encode(&buf, a, testTreeSection(), nil); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "z.arena")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	snap, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	loaded := snap.Arena.Members()
	check("loaded", loaded[0], loaded[1])
}
