package arena

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"trajmatch/internal/traj"
)

func testMembers(n int) []*traj.Trajectory {
	rng := rand.New(rand.NewSource(7))
	out := make([]*traj.Trajectory, n)
	for i := range out {
		pts := make([]traj.Point, 2+rng.Intn(6))
		x, y := rng.Float64()*100, rng.Float64()*100
		for j := range pts {
			x += rng.NormFloat64()
			y += rng.NormFloat64()
			pts[j] = traj.P(x, y, float64(j))
		}
		out[i] = traj.New(i+1, pts)
		out[i].Label = i % 3
	}
	return out
}

func testTreeSection() *TreeSection {
	return &TreeSection{
		NBoxes:   []float64{0, 0, 1, 1, 0.5},
		NMeta:    []int64{0, 1, 3, 0, 0, 0, 2, 0, 1, 0, 2, 0},
		Members:  []int64{0, -1},
		VPs:      []float64{0.5, 0.5},
		DVals:    []float64{1.5, 2.5},
		OPts:     []float64{1, 2, 0, 3, 4, 1},
		OOffs:    []int64{0, 2},
		OIDs:     []int64{99},
		OLabels:  []int64{7},
		Children: nil,
	}
}

func encodeTestFile(t *testing.T) (string, *Arena, *TreeSection) {
	t.Helper()
	a := Build(testMembers(20))
	ts := testTreeSection()
	var buf bytes.Buffer
	if err := Encode(&buf, a, ts, []byte(`{"k":1}`)); err != nil {
		t.Fatalf("encode: %v", err)
	}
	path := filepath.Join(t.TempDir(), "x.arena")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, a, ts
}

// TestFileRoundTrip pins that Open returns bit-identical slabs and tree
// payload, whether mapped or heap-decoded.
func TestFileRoundTrip(t *testing.T) {
	path, a, ts := encodeTestFile(t)
	snap, err := Open(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	b := snap.Arena
	if b.Len() != a.Len() {
		t.Fatalf("len %d != %d", b.Len(), a.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.ids[i] != b.ids[i] || a.labels[i] != b.labels[i] || a.lens[i] != b.lens[i] {
			t.Fatalf("member %d identity mismatch", i)
		}
		if a.offs[i+1] != b.offs[i+1] {
			t.Fatalf("member %d offsets mismatch", i)
		}
	}
	for i, p := range a.pts {
		if p != b.pts[i] || a.xs[i] != b.xs[i] || a.ys[i] != b.ys[i] {
			t.Fatalf("point %d mismatch", i)
		}
	}
	for i, v := range a.boxes {
		if b.boxes[i] != v {
			t.Fatalf("box value %d mismatch", i)
		}
	}
	if string(snap.Extra) != `{"k":1}` {
		t.Fatalf("extra %q", snap.Extra)
	}
	got := snap.Tree
	for name, pair := range map[string][2][]int64{
		"nmeta":    {ts.NMeta, got.NMeta},
		"members":  {ts.Members, got.Members},
		"ooffs":    {ts.OOffs, got.OOffs},
		"oids":     {ts.OIDs, got.OIDs},
		"olabels":  {ts.OLabels, got.OLabels},
		"children": {ts.Children, got.Children},
	} {
		if len(pair[0]) != len(pair[1]) {
			t.Fatalf("%s length mismatch", name)
		}
		for i := range pair[0] {
			if pair[0][i] != pair[1][i] {
				t.Fatalf("%s[%d] mismatch", name, i)
			}
		}
	}
	for name, pair := range map[string][2][]float64{
		"nboxes": {ts.NBoxes, got.NBoxes},
		"vps":    {ts.VPs, got.VPs},
		"dvals":  {ts.DVals, got.DVals},
		"opts":   {ts.OPts, got.OPts},
	} {
		for i := range pair[0] {
			if pair[0][i] != pair[1][i] {
				t.Fatalf("%s[%d] mismatch", name, i)
			}
		}
	}
}

// TestFileMembersMaterialise pins that Members reconstructs trajectories
// bit-identical to the originals, with primed views and lengths.
func TestFileMembersMaterialise(t *testing.T) {
	orig := testMembers(20)
	path, _, _ := encodeTestFile(t)
	snap, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	ms := snap.Arena.Members()
	if len(ms) != len(orig) {
		t.Fatalf("got %d members, want %d", len(ms), len(orig))
	}
	for i, m := range ms {
		o := orig[i]
		if m.ID != o.ID || m.Label != o.Label || len(m.Points) != len(o.Points) {
			t.Fatalf("member %d header mismatch", i)
		}
		for j, p := range m.Points {
			if p != o.Points[j] {
				t.Fatalf("member %d point %d mismatch", i, j)
			}
		}
		if m.Length() != o.Length() {
			t.Fatalf("member %d length %v != %v", i, m.Length(), o.Length())
		}
		v := m.View()
		for j := range v.X {
			if v.X[j] != o.Points[j].X || v.Y[j] != o.Points[j].Y {
				t.Fatalf("member %d view mismatch at %d", i, j)
			}
		}
	}
}

// TestFileCorruptionMatrix flips bits and truncates at positions across
// the whole file and asserts every damaged variant fails with a clean
// ErrCorrupt — never a panic (the deferred recover would catch one) and
// never a silently successful load of wrong data. Both the mmap path
// (Open) and the heap path (Decode) are exercised.
func TestFileCorruptionMatrix(t *testing.T) {
	path, _, _ := encodeTestFile(t)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	check := func(name string, data []byte) {
		t.Helper()
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("%s: panic: %v", name, r)
			}
		}()
		p := filepath.Join(dir, "c.arena")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(p); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: Open err = %v, want ErrCorrupt", name, err)
		}
		if _, err := Decode(append([]byte(nil), data...)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: Decode err = %v, want ErrCorrupt", name, err)
		}
	}
	// Truncations: empty, header-only, mid-meta, mid-section, missing
	// trailer byte.
	for _, n := range []int{0, 8, 15, 40, len(good) / 3, len(good) / 2, len(good) - 1} {
		check("truncate", good[:n])
	}
	// Bit flips spread across the file: header, meta, every section
	// region, trailer.
	step := len(good)/97 + 1
	for off := 0; off < len(good); off += step {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x10
		check("bitflip", bad)
	}
	// A zero-filled file of plausible size.
	check("zeros", make([]byte, len(good)))
}

// TestFileEncodeNilArena pins that a nil arena (a shard grown purely by
// Insert) still round-trips: everything rides in the overlay sections.
func TestFileEncodeNilArena(t *testing.T) {
	ts := &TreeSection{
		OPts:    []float64{1, 2, 0, 3, 4, 1},
		OOffs:   []int64{0, 2},
		OIDs:    []int64{5},
		OLabels: []int64{0},
	}
	var buf bytes.Buffer
	if err := Encode(&buf, nil, ts, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	snap, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if snap.Arena.Len() != 0 || len(snap.Tree.OIDs) != 1 {
		t.Fatalf("nil-arena round trip: %d members, %d overlay", snap.Arena.Len(), len(snap.Tree.OIDs))
	}
}
