// Package arena implements the shard-level memory layout of the index:
// every member trajectory's samples live in shared structure-of-arrays
// slabs (parallel X/Y coordinate arrays plus an array-of-structs point
// slab that preserves timestamps), addressed through a per-trajectory
// (offset, length) table. The hot DP kernels stream over the contiguous
// coordinate slabs instead of chasing per-trajectory allocations, the
// per-member summaries (total spatial length, bounding box, and a
// coarsened box sequence) back the batched leaf-level lower-bound pass,
// and the whole layout serialises to a flat, checksummed, mmap-able
// snapshot section (see file.go) so a warm boot can serve straight from
// the page cache without deserialising.
//
// An Arena is immutable once built: inserts after a build live on the
// ordinary heap as an overlay (they simply have no arena entry) until
// the next Rebuild folds them into fresh slabs.
package arena

import (
	"trajmatch/internal/geom"
	"trajmatch/internal/tbox"
	"trajmatch/internal/traj"
)

// MemberBoxes is the box budget of the per-member summaries: the same
// coarsening budget the candidate verification path used to spend per
// query, paid once at build time instead.
const MemberBoxes = 16

// Arena is one shard's slab storage plus the per-member summary tables.
type Arena struct {
	// Point storage: member i's samples are pts[offs[i]:offs[i+1]], with
	// the spatial projection split into xs/ys over the same index range.
	pts  []traj.Point
	xs   []float64
	ys   []float64
	offs []int64

	// Per-member identity and summaries.
	ids    []int64
	labels []int64
	lens   []float64 // total spatial length (traj.Length)
	bbox   []float64 // 4 per member: MinX, MinY, MaxX, MaxY

	// Coarsened per-member box sequences (tbox.FromTrajectory with the
	// MemberBoxes budget), flattened: member i's rects are
	// boxes[4*boxOffs[i] : 4*boxOffs[i+1]] as MinX, MinY, MaxX, MaxY
	// quadruples.
	boxes   []float64
	boxOffs []int64

	byID map[int]int32

	// mapped is non-nil when the slabs alias an mmap'd snapshot file
	// (the mapping itself, kept alive for the arena's lifetime).
	mapped []byte
}

// Build constructs an arena over members: samples are copied into fresh
// contiguous slabs, each trajectory's Points is re-pointed at its slab
// window (bit-identical values, shared backing), and its SoA view and
// cached length are primed so the kernels never materialise per-call
// copies. Build is called under the same serialisation as any index
// (re)build; the trajectories must already be validated.
func Build(members []*traj.Trajectory) *Arena {
	a := &Arena{
		offs:    make([]int64, 1, len(members)+1),
		boxOffs: make([]int64, 1, len(members)+1),
		ids:     make([]int64, 0, len(members)),
		labels:  make([]int64, 0, len(members)),
		lens:    make([]float64, 0, len(members)),
		bbox:    make([]float64, 0, 4*len(members)),
		byID:    make(map[int]int32, len(members)),
	}
	total := 0
	for _, m := range members {
		total += len(m.Points)
	}
	a.pts = make([]traj.Point, 0, total)
	a.xs = make([]float64, 0, total)
	a.ys = make([]float64, 0, total)
	for i, m := range members {
		start := len(a.pts)
		a.pts = append(a.pts, m.Points...)
		for _, p := range m.Points {
			a.xs = append(a.xs, p.X)
			a.ys = append(a.ys, p.Y)
		}
		end := len(a.pts)
		a.offs = append(a.offs, int64(end))
		a.ids = append(a.ids, int64(m.ID))
		a.labels = append(a.labels, int64(m.Label))
		a.lens = append(a.lens, m.Length())
		seq := tbox.FromTrajectory(m, MemberBoxes)
		bb := geom.Empty()
		for j := 0; j < seq.Len(); j++ {
			r := seq.Rect(j)
			a.boxes = append(a.boxes, r.Min.X, r.Min.Y, r.Max.X, r.Max.Y)
			bb = bb.Union(r)
		}
		a.boxOffs = append(a.boxOffs, int64(len(a.boxes)/4))
		a.bbox = append(a.bbox, bb.Min.X, bb.Min.Y, bb.Max.X, bb.Max.Y)
		a.byID[m.ID] = int32(i)

		// Re-point the trajectory at its slab window and prime the SoA
		// view; the capped slice keeps appends elsewhere from spilling
		// into the next member's window.
		m.Points = a.pts[start:end:end]
		m.Prime(traj.View{X: a.xs[start:end:end], Y: a.ys[start:end:end]}, a.lens[i])
	}
	return a
}

// Len returns the number of member trajectories in the arena.
func (a *Arena) Len() int { return len(a.ids) }

// Lookup returns the arena index of the member with the given ID.
func (a *Arena) Lookup(id int) (int, bool) {
	i, ok := a.byID[id]
	return int(i), ok
}

// Length returns member i's total spatial length (identical to the
// trajectory's cached Length).
func (a *Arena) Length(i int) float64 { return a.lens[i] }

// BBox returns member i's spatial bounding box as a 4-float window
// (MinX, MinY, MaxX, MaxY) into the shared slab.
func (a *Arena) BBox(i int) []float64 { return a.bbox[4*i : 4*i+4] }

// Boxes returns member i's coarsened box-sequence rects as a flat
// window of MinX, MinY, MaxX, MaxY quadruples.
func (a *Arena) Boxes(i int) []float64 {
	return a.boxes[4*a.boxOffs[i] : 4*a.boxOffs[i+1]]
}

// BoxSeq returns member i's box sequence as a core.Boxes view, for the
// exact Theorem-2 bound DP. The view is a value type aliasing the slab;
// no per-call allocation.
func (a *Arena) BoxSeq(i int) BoxView {
	return BoxView{rects: a.Boxes(i)}
}

// BoxView adapts a flat rect window to the core.Boxes interface.
type BoxView struct{ rects []float64 }

// Len returns the number of rects in the view.
func (v BoxView) Len() int { return len(v.rects) / 4 }

// Rect returns the i-th rect.
func (v BoxView) Rect(i int) geom.Rect {
	r := v.rects[4*i : 4*i+4]
	return geom.Rect{
		Min: geom.Point{X: r[0], Y: r[1]},
		Max: geom.Point{X: r[2], Y: r[3]},
	}
}

// MemStats describes an arena's residency for observability endpoints.
type MemStats struct {
	// Members and Points count the slab-resident trajectories and their
	// samples; trajectories inserted after the build (the overlay) are
	// not included.
	Members int `json:"members"`
	Points  int `json:"points"`
	// Bytes is the total slab footprint (point, coordinate, and summary
	// slabs). For an mmap-backed arena this is file-backed page-cache
	// residency, not heap.
	Bytes int `json:"bytes"`
	// Mapped reports whether the slabs alias an mmap'd snapshot file
	// rather than heap allocations.
	Mapped bool `json:"mapped"`
}

// Stats returns the arena's residency counters.
func (a *Arena) Stats() MemStats {
	if a == nil {
		return MemStats{}
	}
	return MemStats{
		Members: len(a.ids),
		Points:  len(a.pts),
		Bytes: 24*len(a.pts) + 8*(len(a.xs)+len(a.ys)+len(a.lens)+len(a.bbox)+len(a.boxes)) +
			8*(len(a.offs)+len(a.ids)+len(a.labels)+len(a.boxOffs)),
		Mapped: a.mapped != nil,
	}
}
