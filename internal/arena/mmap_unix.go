//go:build unix

package arena

import (
	"os"
	"syscall"
)

// mapFile memory-maps path read-only, returning (nil, false) on any
// failure so the caller falls back to a heap read. An empty file maps
// to an empty slice without touching mmap (zero-length mappings are an
// EINVAL on Linux).
func mapFile(path string) ([]byte, bool) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil || fi.Size() < 0 || fi.Size() > int64(int(^uint(0)>>1)) {
		return nil, false
	}
	if fi.Size() == 0 {
		return []byte{}, true
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(fi.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false
	}
	return b, true
}

// unmapFile releases a mapping that failed verification before any
// slice aliased it; verified mappings are kept for the process
// lifetime (see Open).
func unmapFile(b []byte) {
	if len(b) > 0 {
		_ = syscall.Munmap(b)
	}
}
