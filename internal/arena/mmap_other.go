//go:build !unix

package arena

// Non-unix platforms read snapshots onto the heap; the format and every
// verification step are identical, only Mapped stays false.
func mapFile(string) ([]byte, bool) { return nil, false }

func unmapFile([]byte) {}
