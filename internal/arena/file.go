// The arena snapshot section: a flat, checksummed, mmap-able encoding
// of one shard's slabs plus a flattened tree payload supplied by the
// index layer. The design goal is an O(members + nodes) warm boot: the
// point slabs — the bulk of the bytes — are aliased straight out of the
// mapping instead of being decoded, so boot cost no longer scales with
// the number of samples.
//
// Layout (all integers little-endian):
//
//	[8]  magic "TRARENA1"
//	[8]  uint64 meta length
//	[..] meta JSON: {"version":1,"sections":[{name,off,len}...],"extra":...}
//	     (zero-padded to the next 8-byte boundary)
//	[..] sections, each starting on an 8-byte boundary
//	[4]  uint32 CRC32C (Castagnoli) over every preceding byte
//
// Sections are raw arrays: float64 and int64 values, and traj.Point
// records as three float64s. Every section offset is 8-aligned, so on a
// little-endian machine a verified mapping can be reinterpreted in place
// with unsafe.Slice; other machines (and mmap failures) fall back to a
// decode-copy that reads the same bytes through encoding/binary.
//
// The trailer checksum is verified over the whole file before a single
// value is interpreted, and every structural invariant (section bounds,
// alignment, monotone offset tables, index ranges) is checked before the
// arena is returned — a truncated or bit-flipped file surfaces as a
// clean ErrCorrupt, never a panic or a SIGBUS.
package arena

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"unsafe"

	"trajmatch/internal/traj"
)

// ErrCorrupt reports that an arena snapshot file failed verification —
// bad magic, damaged checksum, or an internal inconsistency. Callers
// treat it as "this file cannot be served from" and fall back to the
// gob snapshot stream.
var ErrCorrupt = errors.New("arena: snapshot corrupt")

const (
	fileMagic   = "TRARENA1"
	fileVersion = 1
	// NMetaStride is the number of int64s in one node's metadata record
	// inside the nmeta section (see package trajtree for field order).
	NMetaStride = 12
)

var fileCRC = crc32.MakeTable(crc32.Castagnoli)

// TreeSection is the index layer's flattened tree payload, stored as
// named sections next to the slabs. The arena package treats it as
// opaque arrays; package trajtree defines the per-node record layout.
type TreeSection struct {
	NBoxes   []float64 // node summary boxes, 5 per box: MinX, MinY, MaxX, MaxY, MinL
	NMeta    []int64   // NMetaStride int64s per node
	Children []int64   // child node indices, flat
	Members  []int64   // member refs, flat: arena index, or -(overlay index)-1
	VPs      []float64 // vantage points, 2 per point
	DVals    []float64 // descriptor values, flat (stride = node's VP count)

	// Overlay members: trajectories inserted since the last rebuild have
	// no arena entry, so their samples are stored here and materialised
	// onto the heap at load (the overlay is small by construction — a
	// rebuild folds it into fresh slabs).
	OPts    []float64 // 3 per point: X, Y, T
	OOffs   []int64   // len(overlay)+1 prefix offsets into OPts (point units)
	OIDs    []int64
	OLabels []int64
}

// Snapshot is a decoded arena file: the slab arena, the index layer's
// tree payload, and the opaque extra metadata it stored.
type Snapshot struct {
	Arena *Arena
	Tree  TreeSection
	Extra json.RawMessage
	// Mapped reports whether the slices alias an mmap'd file (true) or
	// heap copies (false).
	Mapped bool
}

type fileSection struct {
	Name string `json:"name"`
	Off  int64  `json:"off"`
	Len  int64  `json:"len"` // bytes
}

type fileMeta struct {
	Version  int             `json:"version"`
	Sections []fileSection   `json:"sections"`
	Extra    json.RawMessage `json:"extra,omitempty"`
}

// sectionOrder fixes the on-disk section order; Encode and the loaders
// walk the same list so offsets agree by construction.
var sectionOrder = []string{
	"pts", "xs", "ys", "offs", "ids", "labels", "lens", "bbox",
	"boxes", "boxoffs",
	"nboxes", "nmeta", "children", "members", "vps", "dvals",
	"opts", "ooffs", "oids", "olabels",
}

func (a *Arena) sectionBytes(name string, ts *TreeSection) int64 {
	switch name {
	case "pts":
		return int64(len(a.pts)) * 24
	case "xs":
		return int64(len(a.xs)) * 8
	case "ys":
		return int64(len(a.ys)) * 8
	case "offs":
		return int64(len(a.offs)) * 8
	case "ids":
		return int64(len(a.ids)) * 8
	case "labels":
		return int64(len(a.labels)) * 8
	case "lens":
		return int64(len(a.lens)) * 8
	case "bbox":
		return int64(len(a.bbox)) * 8
	case "boxes":
		return int64(len(a.boxes)) * 8
	case "boxoffs":
		return int64(len(a.boxOffs)) * 8
	case "nboxes":
		return int64(len(ts.NBoxes)) * 8
	case "nmeta":
		return int64(len(ts.NMeta)) * 8
	case "children":
		return int64(len(ts.Children)) * 8
	case "members":
		return int64(len(ts.Members)) * 8
	case "vps":
		return int64(len(ts.VPs)) * 8
	case "dvals":
		return int64(len(ts.DVals)) * 8
	case "opts":
		return int64(len(ts.OPts)) * 8
	case "ooffs":
		return int64(len(ts.OOffs)) * 8
	case "oids":
		return int64(len(ts.OIDs)) * 8
	case "olabels":
		return int64(len(ts.OLabels)) * 8
	}
	panic("arena: unknown section " + name)
}

// Encode writes the snapshot encoding of a and ts to w; extra is opaque
// metadata (the index layer's options and root) stored in the meta
// header. A nil arena encodes as empty slabs, so a shard that has only
// ever seen Inserts still snapshots (every member rides in the overlay).
func Encode(w io.Writer, a *Arena, ts *TreeSection, extra json.RawMessage) error {
	if a == nil {
		a = &Arena{offs: make([]int64, 1), boxOffs: make([]int64, 1)}
	}
	meta := fileMeta{Version: fileVersion, Extra: extra}
	// Lay out the sections: the meta block's own length shifts them, and
	// the offsets live inside the meta JSON, so sizing must iterate. The
	// digit width of the offsets converges after at most a few rounds.
	headerLen := int64(0)
	for range [8]int{} {
		meta.Sections = meta.Sections[:0]
		off := align8(headerLen)
		for _, name := range sectionOrder {
			n := a.sectionBytes(name, ts)
			meta.Sections = append(meta.Sections, fileSection{Name: name, Off: off, Len: n})
			off = align8(off + n)
		}
		raw, err := json.Marshal(meta)
		if err != nil {
			return err
		}
		want := int64(16 + len(raw))
		if want == headerLen {
			break
		}
		headerLen = want
	}
	rawMeta, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	h := crc32.New(fileCRC)
	cw := io.MultiWriter(w, h)
	if _, err := cw.Write([]byte(fileMagic)); err != nil {
		return err
	}
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], uint64(len(rawMeta)))
	if _, err := cw.Write(b8[:]); err != nil {
		return err
	}
	if _, err := cw.Write(rawMeta); err != nil {
		return err
	}
	pos := int64(16 + len(rawMeta))
	if err := pad8(cw, &pos); err != nil {
		return err
	}
	for si, name := range sectionOrder {
		if pos != meta.Sections[si].Off {
			return fmt.Errorf("arena: encode: section %s at %d, planned %d", name, pos, meta.Sections[si].Off)
		}
		n, err := a.writeSection(cw, name, &sectionTS{ts})
		if err != nil {
			return err
		}
		pos += n
		if err := pad8(cw, &pos); err != nil {
			return err
		}
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], h.Sum32())
	_, err = w.Write(trailer[:])
	return err
}

// sectionTS exists to keep writeSection's signature small.
type sectionTS struct{ t *TreeSection }

func (a *Arena) writeSection(w io.Writer, name string, s *sectionTS) (int64, error) {
	ts := s.t
	switch name {
	case "pts":
		return writePoints(w, a.pts)
	case "xs":
		return writeF64s(w, a.xs)
	case "ys":
		return writeF64s(w, a.ys)
	case "offs":
		return writeI64s(w, a.offs)
	case "ids":
		return writeI64s(w, a.ids)
	case "labels":
		return writeI64s(w, a.labels)
	case "lens":
		return writeF64s(w, a.lens)
	case "bbox":
		return writeF64s(w, a.bbox)
	case "boxes":
		return writeF64s(w, a.boxes)
	case "boxoffs":
		return writeI64s(w, a.boxOffs)
	case "nboxes":
		return writeF64s(w, ts.NBoxes)
	case "nmeta":
		return writeI64s(w, ts.NMeta)
	case "children":
		return writeI64s(w, ts.Children)
	case "members":
		return writeI64s(w, ts.Members)
	case "vps":
		return writeF64s(w, ts.VPs)
	case "dvals":
		return writeF64s(w, ts.DVals)
	case "opts":
		return writeF64s(w, ts.OPts)
	case "ooffs":
		return writeI64s(w, ts.OOffs)
	case "oids":
		return writeI64s(w, ts.OIDs)
	case "olabels":
		return writeI64s(w, ts.OLabels)
	}
	panic("arena: unknown section " + name)
}

func align8(n int64) int64 { return (n + 7) &^ 7 }

var zero8 [8]byte

func pad8(w io.Writer, pos *int64) error {
	if rem := *pos & 7; rem != 0 {
		if _, err := w.Write(zero8[:8-rem]); err != nil {
			return err
		}
		*pos += 8 - rem
	}
	return nil
}

func writeF64s(w io.Writer, v []float64) (int64, error) {
	buf := make([]byte, 0, 1<<16)
	var n int64
	for _, f := range v {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
		if len(buf) == cap(buf) {
			if _, err := w.Write(buf); err != nil {
				return n, err
			}
			n += int64(len(buf))
			buf = buf[:0]
		}
	}
	if _, err := w.Write(buf); err != nil {
		return n, err
	}
	return n + int64(len(buf)), nil
}

func writeI64s(w io.Writer, v []int64) (int64, error) {
	buf := make([]byte, 0, 1<<16)
	var n int64
	for _, x := range v {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(x))
		if len(buf) == cap(buf) {
			if _, err := w.Write(buf); err != nil {
				return n, err
			}
			n += int64(len(buf))
			buf = buf[:0]
		}
	}
	if _, err := w.Write(buf); err != nil {
		return n, err
	}
	return n + int64(len(buf)), nil
}

func writePoints(w io.Writer, v []traj.Point) (int64, error) {
	buf := make([]byte, 0, 3*(1<<15))
	var n int64
	for _, p := range v {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.X))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Y))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.T))
		if len(buf) == cap(buf) {
			if _, err := w.Write(buf); err != nil {
				return n, err
			}
			n += int64(len(buf))
			buf = buf[:0]
		}
	}
	if _, err := w.Write(buf); err != nil {
		return n, err
	}
	return n + int64(len(buf)), nil
}

// Open maps the arena snapshot at path and returns a Snapshot whose
// slices alias the mapping (after the whole file's checksum and every
// structural invariant have been verified). When mapping is unavailable
// — unsupported platform, big-endian host, or an mmap error — it falls
// back to reading the file onto the heap; the result is identical
// except for Mapped. The mapping is intentionally never unmapped:
// trajectories alias it for the life of the process, and a stale
// mapping kept past a rebuild costs address space, not correctness.
func Open(path string) (*Snapshot, error) {
	if b, ok := mapFile(path); ok && hostLittleEndian() {
		s, err := decode(b, true)
		if err != nil {
			unmapFile(b)
			return nil, err
		}
		return s, nil
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return decode(b, false)
}

// Decode parses an arena snapshot from bytes already in memory. The
// returned snapshot aliases b on little-endian hosts; b must not be
// modified afterwards.
func Decode(b []byte) (*Snapshot, error) { return decode(b, false) }

func decode(b []byte, mapped bool) (*Snapshot, error) {
	if len(b) < 16+4 {
		return nil, fmt.Errorf("%w: %d-byte file cannot hold a header", ErrCorrupt, len(b))
	}
	if string(b[:8]) != fileMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, b[:8])
	}
	body, trailer := b[:len(b)-4], b[len(b)-4:]
	if got, want := crc32.Checksum(body, fileCRC), binary.LittleEndian.Uint32(trailer); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (trailer %08x, content %08x)", ErrCorrupt, want, got)
	}
	metaLen := binary.LittleEndian.Uint64(b[8:16])
	if metaLen > uint64(len(body)-16) {
		return nil, fmt.Errorf("%w: meta length %d exceeds file", ErrCorrupt, metaLen)
	}
	var meta fileMeta
	if err := json.Unmarshal(b[16:16+metaLen], &meta); err != nil {
		return nil, fmt.Errorf("%w: meta: %v", ErrCorrupt, err)
	}
	if meta.Version != fileVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, meta.Version)
	}
	secs := make(map[string]fileSection, len(meta.Sections))
	for _, s := range meta.Sections {
		if s.Off < 0 || s.Len < 0 || s.Off&7 != 0 || s.Len&7 != 0 ||
			s.Off+s.Len < s.Off || s.Off+s.Len > int64(len(body)) {
			return nil, fmt.Errorf("%w: section %q [%d,+%d) out of bounds", ErrCorrupt, s.Name, s.Off, s.Len)
		}
		secs[s.Name] = s
	}
	for _, name := range sectionOrder {
		if _, ok := secs[name]; !ok {
			return nil, fmt.Errorf("%w: missing section %q", ErrCorrupt, name)
		}
	}
	get := func(name string) []byte {
		s := secs[name]
		return b[s.Off : s.Off+s.Len]
	}
	a := &Arena{}
	var ts TreeSection
	if mapped {
		a.mapped = b
	}
	a.pts = alias[traj.Point](get("pts"), 24)
	a.xs = alias[float64](get("xs"), 8)
	a.ys = alias[float64](get("ys"), 8)
	a.offs = alias[int64](get("offs"), 8)
	a.ids = alias[int64](get("ids"), 8)
	a.labels = alias[int64](get("labels"), 8)
	a.lens = alias[float64](get("lens"), 8)
	a.bbox = alias[float64](get("bbox"), 8)
	a.boxes = alias[float64](get("boxes"), 8)
	a.boxOffs = alias[int64](get("boxoffs"), 8)
	ts.NBoxes = alias[float64](get("nboxes"), 8)
	ts.NMeta = alias[int64](get("nmeta"), 8)
	ts.Children = alias[int64](get("children"), 8)
	ts.Members = alias[int64](get("members"), 8)
	ts.VPs = alias[float64](get("vps"), 8)
	ts.DVals = alias[float64](get("dvals"), 8)
	ts.OPts = alias[float64](get("opts"), 8)
	ts.OOffs = alias[int64](get("ooffs"), 8)
	ts.OIDs = alias[int64](get("oids"), 8)
	ts.OLabels = alias[int64](get("olabels"), 8)
	if err := a.check(); err != nil {
		return nil, err
	}
	if err := ts.check(a); err != nil {
		return nil, err
	}
	a.byID = make(map[int]int32, len(a.ids))
	for i, id := range a.ids {
		a.byID[int(id)] = int32(i)
	}
	return &Snapshot{Arena: a, Tree: ts, Extra: meta.Extra, Mapped: mapped}, nil
}

// alias reinterprets raw little-endian bytes as a []T in place on
// little-endian hosts, and decode-copies through encoding/binary
// elsewhere. elem is T's encoded size (24 for traj.Point, 8 for the
// scalar types); the caller guarantees len(b) is a multiple of 8 and
// 8-alignment of &b[0] (section invariants, checked before use).
func alias[T float64 | int64 | traj.Point](b []byte, elem int) []T {
	if len(b)%elem != 0 {
		// Length mismatch is caught by the structural checks; return the
		// truncated view rather than panicking here.
		b = b[:len(b)-len(b)%elem]
	}
	n := len(b) / elem
	if n == 0 {
		return nil
	}
	if hostLittleEndian() {
		return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]T, n)
	switch any(out).(type) {
	case []float64:
		dst := any(out).([]float64)
		for i := range dst {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
		}
	case []int64:
		dst := any(out).([]int64)
		for i := range dst {
			dst[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
		}
	case []traj.Point:
		dst := any(out).([]traj.Point)
		for i := range dst {
			dst[i] = traj.Point{
				X: math.Float64frombits(binary.LittleEndian.Uint64(b[24*i:])),
				Y: math.Float64frombits(binary.LittleEndian.Uint64(b[24*i+8:])),
				T: math.Float64frombits(binary.LittleEndian.Uint64(b[24*i+16:])),
			}
		}
	}
	return out
}

func hostLittleEndian() bool {
	var one uint16 = 1
	return *(*byte)(unsafe.Pointer(&one)) == 1
}

// check verifies the arena's internal invariants after decode: the
// offset tables must be monotone prefix sums that stay inside their
// slabs, and the per-member tables must agree on the member count. A
// violation means the file is damaged in a way the checksum alone could
// not localise (it never happens for files Encode wrote).
func (a *Arena) check() error {
	n := len(a.ids)
	if len(a.offs) != n+1 || len(a.boxOffs) != n+1 ||
		len(a.labels) != n || len(a.lens) != n || len(a.bbox) != 4*n {
		return fmt.Errorf("%w: member tables disagree (%d ids, %d offs, %d boxoffs, %d labels, %d lens, %d bbox)",
			ErrCorrupt, n, len(a.offs), len(a.boxOffs), len(a.labels), len(a.lens), len(a.bbox))
	}
	if a.offs[0] != 0 || a.boxOffs[0] != 0 {
		return fmt.Errorf("%w: offset tables must start at 0", ErrCorrupt)
	}
	for i := 0; i < n; i++ {
		if a.offs[i+1] < a.offs[i] || a.boxOffs[i+1] < a.boxOffs[i] {
			return fmt.Errorf("%w: non-monotone offset table at member %d", ErrCorrupt, i)
		}
	}
	if int(a.offs[n]) != len(a.pts) || len(a.xs) != len(a.pts) || len(a.ys) != len(a.pts) {
		return fmt.Errorf("%w: point slabs disagree (%d offs end, %d pts, %d xs, %d ys)",
			ErrCorrupt, a.offs[n], len(a.pts), len(a.xs), len(a.ys))
	}
	if int(a.boxOffs[n])*4 != len(a.boxes) {
		return fmt.Errorf("%w: box slab disagrees (%d boxoffs end, %d boxes)", ErrCorrupt, a.boxOffs[n], len(a.boxes))
	}
	return nil
}

// check verifies the tree payload's index ranges against the arena: a
// damaged node record must fail here, not as an out-of-range slice
// panic while reconstructing the tree.
func (ts *TreeSection) check(a *Arena) error {
	if len(ts.NMeta)%NMetaStride != 0 {
		return fmt.Errorf("%w: nmeta length %d not a multiple of %d", ErrCorrupt, len(ts.NMeta), NMetaStride)
	}
	nOverlay := len(ts.OIDs)
	if len(ts.OOffs) != 0 || nOverlay != 0 {
		if len(ts.OOffs) != nOverlay+1 || len(ts.OLabels) != nOverlay {
			return fmt.Errorf("%w: overlay tables disagree (%d ids, %d offs, %d labels)",
				ErrCorrupt, nOverlay, len(ts.OOffs), len(ts.OLabels))
		}
		if ts.OOffs[0] != 0 || int(ts.OOffs[nOverlay])*3 != len(ts.OPts) {
			return fmt.Errorf("%w: overlay offsets do not span the point slab", ErrCorrupt)
		}
		for i := 0; i < nOverlay; i++ {
			if ts.OOffs[i+1] < ts.OOffs[i] {
				return fmt.Errorf("%w: non-monotone overlay offsets at %d", ErrCorrupt, i)
			}
		}
	}
	nodes := len(ts.NMeta) / NMetaStride
	for ni := 0; ni < nodes; ni++ {
		m := ts.NMeta[ni*NMetaStride : (ni+1)*NMetaStride]
		boxOff, boxCount := m[0], m[1]
		childOff, childCount := m[3], m[4]
		memberOff, memberCount := m[5], m[6]
		vpOff, vpCount := m[7], m[8]
		descOff, descRows := m[9], m[10]
		if boxOff < 0 || boxCount < 0 || (boxOff+boxCount)*5 > int64(len(ts.NBoxes)) {
			return fmt.Errorf("%w: node %d box range out of bounds", ErrCorrupt, ni)
		}
		if childOff < 0 || childCount < 0 || childOff+childCount > int64(len(ts.Children)) {
			return fmt.Errorf("%w: node %d child range out of bounds", ErrCorrupt, ni)
		}
		for _, c := range ts.Children[childOff : childOff+childCount] {
			if c < 0 || c >= int64(nodes) {
				return fmt.Errorf("%w: node %d child index %d out of range", ErrCorrupt, ni, c)
			}
		}
		if memberOff < 0 || memberCount < 0 || memberOff+memberCount > int64(len(ts.Members)) {
			return fmt.Errorf("%w: node %d member range out of bounds", ErrCorrupt, ni)
		}
		for _, r := range ts.Members[memberOff : memberOff+memberCount] {
			if r >= int64(len(a.ids)) || (r < 0 && int(-r-1) >= nOverlay) {
				return fmt.Errorf("%w: node %d member ref %d out of range", ErrCorrupt, ni, r)
			}
		}
		if vpOff < 0 || vpCount < 0 || (vpOff+vpCount)*2 > int64(len(ts.VPs)) {
			return fmt.Errorf("%w: node %d vp range out of bounds", ErrCorrupt, ni)
		}
		if descRows >= 0 {
			if descOff < 0 || descOff+descRows*vpCount > int64(len(ts.DVals)) {
				return fmt.Errorf("%w: node %d descriptor range out of bounds", ErrCorrupt, ni)
			}
		}
	}
	return nil
}

// Members materialises trajectory headers over the arena's slabs: one
// backing array of structs, each aliasing its slab window and primed
// with its stored view and length. This is the warm-boot path — cost
// O(members), independent of the number of samples.
func (a *Arena) Members() []*traj.Trajectory {
	backing := make([]traj.Trajectory, len(a.ids))
	out := make([]*traj.Trajectory, len(a.ids))
	for i := range backing {
		start, end := a.offs[i], a.offs[i+1]
		tr := &backing[i]
		tr.ID = int(a.ids[i])
		tr.Label = int(a.labels[i])
		tr.Points = a.pts[start:end:end]
		tr.Prime(traj.View{X: a.xs[start:end:end], Y: a.ys[start:end:end]}, a.lens[i])
		out[i] = tr
	}
	return out
}
