// Package eval implements the paper's evaluation protocols (Section V):
// multi-class 1-NN classification with k-fold cross-validation (Fig. 5(a)),
// the Spearman rank-robustness procedure that scores every noise model
// (Figs. 5(b)–(i)) and the UB-Factor measurements for vantage points
// (Figs. 6(c)–(d)). Distance computations fan out over a bounded worker
// pool sized to the machine.
package eval

import (
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"trajmatch/internal/baseline"
	"trajmatch/internal/par"
	"trajmatch/internal/stats"
	"trajmatch/internal/traj"
)

// parallelFor runs f(i) for i in [0, n) on up to NumCPU workers.
func parallelFor(n int, f func(i int)) {
	par.For(runtime.NumCPU(), n, f)
}

// Classification runs the Fig. 5(a) protocol: k-fold cross-validation with
// nearest-neighbour classification over a labelled dataset, returning mean
// accuracy. Folds are stratified-free random splits as in the paper.
func Classification(db []*traj.Trajectory, m baseline.Metric, folds int, rng *rand.Rand) float64 {
	n := len(db)
	if n < 2 || folds < 2 {
		return 0
	}
	perm := rng.Perm(n)
	correct := 0
	total := 0
	var mu sync.Mutex
	for f := 0; f < folds; f++ {
		lo := f * n / folds
		hi := (f + 1) * n / folds
		test := perm[lo:hi]
		isTest := make(map[int]bool, len(test))
		for _, i := range test {
			isTest[i] = true
		}
		var train []*traj.Trajectory
		for i, t := range db {
			if !isTest[i] {
				train = append(train, t)
			}
		}
		if len(train) == 0 {
			continue
		}
		parallelFor(len(test), func(ti int) {
			q := db[test[ti]]
			best := -1
			bestD := 0.0
			for j, t := range train {
				d := m.Dist(q, t)
				if best < 0 || d < bestD {
					best, bestD = j, d
				}
			}
			mu.Lock()
			total++
			if train[best].Label == q.Label {
				correct++
			}
			mu.Unlock()
		})
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// KNNIndices returns the indices of the k nearest trajectories to db[qi]
// in db under m, excluding qi itself. Distances are computed in parallel.
func KNNIndices(db []*traj.Trajectory, m baseline.Metric, qi, k int) []int {
	ds := make([]float64, len(db))
	parallelFor(len(db), func(i int) {
		if i == qi {
			return
		}
		ds[i] = m.Dist(db[qi], db[i])
	})
	idx := make([]int, 0, len(db)-1)
	for i := range db {
		if i != qi {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		if ds[idx[a]] != ds[idx[b]] {
			return ds[idx[a]] < ds[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// RankRobustness scores a metric's resilience to injected noise following
// Section V-C exactly: the k-NN list for query qi is computed on the clean
// database d1 and on the noisy database d2 (same trajectories, index-
// aligned), the two lists are unioned, every union element is ranked by its
// distance in each world, and Spearman's ρ between the two rank vectors is
// returned. 1 means the noise did not disturb the answer at all.
func RankRobustness(d1, d2 []*traj.Trajectory, m baseline.Metric, qi, k int) float64 {
	knn1 := KNNIndices(d1, m, qi, k)
	knn2 := KNNIndices(d2, m, qi, k)
	union := make([]int, 0, 2*k)
	seen := make(map[int]bool, 2*k)
	for _, lists := range [2][]int{knn1, knn2} {
		for _, i := range lists {
			if !seen[i] {
				seen[i] = true
				union = append(union, i)
			}
		}
	}
	if len(union) < 2 {
		return 1
	}
	x := make([]float64, len(union))
	y := make([]float64, len(union))
	parallelFor(len(union), func(j int) {
		x[j] = m.Dist(d1[qi], d1[union[j]])
		y[j] = m.Dist(d2[qi], d2[union[j]])
	})
	return stats.Spearman(x, y)
}

// MeanRankRobustness averages RankRobustness over the given query indices.
func MeanRankRobustness(d1, d2 []*traj.Trajectory, m baseline.Metric, queries []int, k int) float64 {
	vals := make([]float64, len(queries))
	for i, qi := range queries {
		vals[i] = RankRobustness(d1, d2, m, qi, k)
	}
	return stats.Mean(vals)
}

// RandomUBFactor computes the denominator-matched baseline of Fig. 6(c):
// the upper bound obtained from k random database trajectories divided by
// the true k-th NN distance of query q under metric m.
func RandomUBFactor(db []*traj.Trajectory, m baseline.Metric, q *traj.Trajectory, k int, rng *rand.Rand) float64 {
	if len(db) == 0 || k <= 0 {
		return 0
	}
	perm := rng.Perm(len(db))
	if k > len(perm) {
		k = len(perm)
	}
	ub := 0.0
	for _, i := range perm[:k] {
		if d := m.Dist(q, db[i]); d > ub {
			ub = d
		}
	}
	kth := KthNNDistance(db, m, q, k)
	if kth == 0 {
		return 1
	}
	return ub / kth
}

// KthNNDistance returns the exact k-th smallest distance from q to db.
func KthNNDistance(db []*traj.Trajectory, m baseline.Metric, q *traj.Trajectory, k int) float64 {
	ds := make([]float64, len(db))
	parallelFor(len(db), func(i int) { ds[i] = m.Dist(q, db[i]) })
	sort.Float64s(ds)
	if k > len(ds) {
		k = len(ds)
	}
	if k == 0 {
		return 0
	}
	return ds[k-1]
}
