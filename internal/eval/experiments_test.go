package eval

import (
	"math/rand"
	"strings"
	"testing"

	"trajmatch/internal/synth"
	"trajmatch/internal/trajtree"
)

// tinyScale keeps experiment tests fast while exercising the full paths.
func tinyScale() Scale {
	return Scale{TaxiN: 40, ASLInstances: 4, Queries: 2, Folds: 3, Seed: 1}
}

func seriesComplete(t *testing.T, ss []Series, wantLen int) {
	t.Helper()
	if len(ss) == 0 {
		t.Fatal("no series")
	}
	for _, s := range ss {
		if len(s.X) != wantLen || len(s.Y) != wantLen {
			t.Fatalf("series %q has %d/%d points, want %d", s.Name, len(s.X), len(s.Y), wantLen)
		}
		for i, y := range s.Y {
			if y != y { // NaN
				t.Fatalf("series %q has NaN at %d", s.Name, i)
			}
		}
	}
}

func TestFig5aSeries(t *testing.T) {
	ss := Fig5a(tinyScale(), []int{3, 5})
	seriesComplete(t, ss, 2)
	names := map[string]bool{}
	for _, s := range ss {
		names[s.Name] = true
		for _, acc := range s.Y {
			if acc < 0 || acc > 1 {
				t.Fatalf("accuracy out of range: %v", acc)
			}
		}
	}
	for _, want := range []string{"EDwP", "EDR", "LCSS", "DISSIM", "MA"} {
		if !names[want] {
			t.Errorf("missing series %s", want)
		}
	}
}

func TestRobustnessSweeps(t *testing.T) {
	for _, kind := range []NoiseKind{NoiseInter, NoiseIntra, NoisePhase, NoisePerturb} {
		ss := RobustnessVsK(tinyScale(), kind, 0.4, []int{5, 10})
		seriesComplete(t, ss, 2)
		// EDwP and EDR-I must both be present.
		var hasEDwP, hasEDRI bool
		for _, s := range ss {
			switch s.Name {
			case "EDwP":
				hasEDwP = true
			case "EDR-I":
				hasEDRI = true
			}
			for _, y := range s.Y {
				if y < -1-1e-9 || y > 1+1e-9 {
					t.Fatalf("correlation out of range: %v", y)
				}
			}
		}
		if !hasEDwP || !hasEDRI {
			t.Fatal("missing EDwP or EDR-I series")
		}
	}
}

func TestRobustnessVsN(t *testing.T) {
	ss := RobustnessVsN(tinyScale(), NoiseInter, []float64{0.2, 0.8})
	seriesComplete(t, ss, 2)
}

func TestQueryCompetitors(t *testing.T) {
	sc := tinyScale()
	db := synth.Taxi(synth.DefaultTaxi(sc.TaxiN))
	queries := sampleQueries(db, 2, randFor(sc))
	ss, err := QueryCompetitors(db, queries, []int{5}, trajtree.Options{NumVPs: 8, PivotCandidates: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	seriesComplete(t, ss, 1)
	if len(ss) != 4 {
		t.Fatalf("want 4 competitors, got %d", len(ss))
	}
	for _, s := range ss {
		if s.Y[0] <= 0 {
			t.Errorf("%s latency %v not positive", s.Name, s.Y[0])
		}
	}
}

func TestUBFactorExperiments(t *testing.T) {
	sc := tinyScale()
	ss, err := UBFactorVsVPs(sc, []int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	seriesComplete(t, ss, 2)
	for _, s := range ss {
		for _, y := range s.Y {
			if y < 1-1e-9 {
				t.Fatalf("%s UB-factor %v below 1 (not an upper bound)", s.Name, y)
			}
		}
	}
	ss, err = UBFactorVsK(sc, []int{3, 6}, 8)
	if err != nil {
		t.Fatal(err)
	}
	seriesComplete(t, ss, 2)
}

func TestBuildAndThetaExperiments(t *testing.T) {
	sc := tinyScale()
	ss, err := BuildTimes(sc, []int{20, 40}, nil)
	if err != nil {
		t.Fatal(err)
	}
	seriesComplete(t, ss, 2)
	ss, err = BuildTimes(sc, nil, []float64{0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	seriesComplete(t, ss, 2)
	ss, err = QueryVsTheta(sc, []float64{0.5, 0.9}, 3)
	if err != nil {
		t.Fatal(err)
	}
	seriesComplete(t, ss, 2)
}

func TestFormatSeries(t *testing.T) {
	ss := []Series{{Name: "A", X: []float64{1, 2}, Y: []float64{0.5, 0.25}}}
	got := FormatSeries("Fig X", "k", ss)
	if !strings.Contains(got, "Fig X") || !strings.Contains(got, "A") || !strings.Contains(got, "0.25") {
		t.Errorf("table missing content:\n%s", got)
	}
	if got := FormatSeries("empty", "k", nil); !strings.Contains(got, "no data") {
		t.Errorf("empty table = %q", got)
	}
}

func randFor(sc Scale) *rand.Rand { return rand.New(rand.NewSource(sc.Seed)) }
