package eval

import (
	"math/rand"
	"testing"

	"trajmatch/internal/baseline"
	"trajmatch/internal/synth"
	"trajmatch/internal/traj"
)

func TestClassificationSeparatesEasyClasses(t *testing.T) {
	// Well-separated classes: 1-NN with EDwP should be near-perfect.
	cfg := synth.ASLConfig{NumClasses: 4, Instances: 8, Points: 20, Jitter: 0.01, Seed: 6}
	db := synth.ASL(cfg)
	rng := rand.New(rand.NewSource(111))
	acc := Classification(db, baseline.EDwP{}, 4, rng)
	if acc < 0.8 {
		t.Errorf("accuracy %v on easy classes, want ≥ 0.8", acc)
	}
}

func TestClassificationDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	if got := Classification(nil, baseline.DTW{}, 10, rng); got != 0 {
		t.Errorf("empty dataset accuracy = %v", got)
	}
	one := synth.ASL(synth.ASLConfig{NumClasses: 1, Instances: 1, Points: 5, Jitter: 0, Seed: 1})
	if got := Classification(one, baseline.DTW{}, 10, rng); got != 0 {
		t.Errorf("singleton dataset accuracy = %v", got)
	}
}

func TestKNNIndicesExcludesSelfAndSorts(t *testing.T) {
	cfg := synth.DefaultTaxi(30)
	db := synth.Taxi(cfg)
	m := baseline.EDwP{}
	got := KNNIndices(db, m, 3, 5)
	if len(got) != 5 {
		t.Fatalf("got %d indices", len(got))
	}
	prev := -1.0
	for _, i := range got {
		if i == 3 {
			t.Fatal("query included in its own kNN")
		}
		d := m.Dist(db[3], db[i])
		if d < prev {
			t.Fatal("kNN not sorted by distance")
		}
		prev = d
	}
}

// No noise ⇒ perfect rank correlation, for every metric.
func TestRankRobustnessIdentity(t *testing.T) {
	db := synth.Taxi(synth.DefaultTaxi(25))
	for _, m := range []baseline.Metric{baseline.EDwP{}, baseline.EDR{Eps: 60}, baseline.DTW{}} {
		if got := RankRobustness(db, db, m, 0, 5); got < 0.999 {
			t.Errorf("%s: identity robustness = %v, want 1", m.Name(), got)
		}
	}
}

// Under inter-trajectory sampling noise EDwP must stay near-perfect while
// EDR degrades — the Fig. 5(b) headline, at miniature scale. The noise is
// heterogeneous across trajectories (half the database densified heavily,
// half untouched), the regime the paper's per-trajectory random selection
// produces at scale and the one that breaks point-matching metrics.
func TestRankRobustnessInterNoiseOrdersEDwPAboveEDR(t *testing.T) {
	db := synth.Taxi(synth.DefaultTaxi(40))
	dense := synth.Inter(db, 0.9, 13)
	noisy := make([]*traj.Trajectory, len(db))
	for i := range db {
		if i%2 == 0 {
			noisy[i] = dense[i]
		} else {
			noisy[i] = db[i]
		}
	}
	queries := []int{0, 7, 19}
	edwp := MeanRankRobustness(db, noisy, baseline.EDwP{}, queries, 10)
	edr := MeanRankRobustness(db, noisy, baseline.EDR{Eps: 60}, queries, 10)
	if edwp < 0.99 {
		t.Errorf("EDwP robustness to pure densification = %v, want ≈1", edwp)
	}
	if edwp <= edr {
		t.Errorf("EDwP %v not above EDR %v under inter noise", edwp, edr)
	}
}

func TestKthNNDistanceAndRandomUB(t *testing.T) {
	db := synth.Taxi(synth.DefaultTaxi(30))
	m := baseline.EDwP{}
	q := db[0]
	k5 := KthNNDistance(db, m, q, 5)
	k10 := KthNNDistance(db, m, q, 10)
	if k10 < k5 {
		t.Errorf("k-th distance not monotone in k: %v < %v", k10, k5)
	}
	rng := rand.New(rand.NewSource(113))
	ub := RandomUBFactor(db, m, q, 5, rng)
	if ub < 1-1e-9 {
		t.Errorf("random UB-factor %v below 1", ub)
	}
}

func TestParallelForCoversAll(t *testing.T) {
	n := 500
	seen := make([]bool, n)
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	parallelFor(n, func(i int) {
		<-mu
		seen[i] = true
		mu <- struct{}{}
	})
	for i, s := range seen {
		if !s {
			t.Fatalf("index %d not visited", i)
		}
	}
}

func TestMeanRankRobustnessAggregates(t *testing.T) {
	db := synth.Taxi(synth.DefaultTaxi(20))
	var _ []*traj.Trajectory = db
	got := MeanRankRobustness(db, db, baseline.EDwP{}, []int{0, 1}, 3)
	if got < 0.999 {
		t.Errorf("mean identity robustness = %v", got)
	}
}
