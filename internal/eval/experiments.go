package eval

import (
	"fmt"
	"math/rand"
	"time"

	"trajmatch/internal/baseline"
	"trajmatch/internal/edrindex"
	"trajmatch/internal/metrics"
	"trajmatch/internal/stats"
	"trajmatch/internal/synth"
	"trajmatch/internal/traj"
	"trajmatch/internal/trajtree"
)

// Series is one labelled curve of an experiment figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Scale sizes an experiment run. The paper's full scale (42k trips, 100
// repetitions) is reachable by raising these knobs; the defaults keep every
// figure reproducible in seconds on a laptop while preserving the reported
// shapes.
type Scale struct {
	// TaxiN is the trip count for the Beijing-style experiments.
	TaxiN int
	// ASLInstances is the per-class recording count for Fig. 5(a).
	ASLInstances int
	// Queries is the number of query trajectories averaged per point.
	Queries int
	// Folds is the cross-validation fold count for classification.
	Folds int
	// Seed drives all randomness.
	Seed int64
}

// DefaultScale returns the laptop-scale configuration.
func DefaultScale() Scale {
	return Scale{TaxiN: 300, ASLInstances: 10, Queries: 5, Folds: 5, Seed: 1}
}

// epsFor returns the matching threshold the threshold-based metrics use on
// a database: following common practice (and the EDR paper), a quarter of
// the median segment length... scaled to the data rather than hand-tuned.
func epsFor(db []*traj.Trajectory) float64 {
	if m := traj.MedianSegmentLength(db); m > 0 {
		return m * 0.5
	}
	return 1
}

// robustnessMetrics is the comparison set of Figs. 5(b)–(i): EDwP, EDR,
// EDR-I (EDR over interpolated data, handled by the caller via resampling),
// LCSS and MA.
func robustnessMetrics(eps float64) []baseline.Metric {
	return []baseline.Metric{
		baseline.EDwP{},
		baseline.EDR{Eps: eps},
		baseline.LCSS{Eps: eps},
		baseline.DefaultMA(eps),
	}
}

// Fig5a runs the classification experiment: accuracy of each metric as the
// number of ASL classes grows. classCounts defaults to the paper's
// 5..25 sweep when nil.
func Fig5a(sc Scale, classCounts []int) []Series {
	if classCounts == nil {
		classCounts = []int{5, 10, 15, 20, 25}
	}
	cfg := synth.DefaultASL()
	cfg.Instances = sc.ASLInstances
	cfg.Seed = sc.Seed
	full := synth.ASL(cfg)
	eps := epsFor(full)
	metrics := []baseline.Metric{
		baseline.EDwP{},
		baseline.EDR{Eps: eps},
		baseline.LCSS{Eps: eps},
		baseline.DISSIM{},
		baseline.DefaultMA(eps),
	}
	rng := rand.New(rand.NewSource(sc.Seed))
	out := make([]Series, len(metrics))
	for mi, m := range metrics {
		out[mi].Name = m.Name()
		for _, c := range classCounts {
			set := synth.PickClasses(cfg.NumClasses, c, rand.New(rand.NewSource(sc.Seed+int64(c))))
			db := synth.Classes(full, set)
			acc := Classification(db, m, sc.Folds, rng)
			out[mi].X = append(out[mi].X, float64(c))
			out[mi].Y = append(out[mi].Y, acc)
		}
	}
	return out
}

// NoiseKind selects which Section V-C injection a robustness sweep uses.
type NoiseKind int

// Noise kinds for RobustnessVsK / RobustnessVsN.
const (
	NoiseInter NoiseKind = iota
	NoiseIntra
	NoisePhase
	NoisePerturb
)

// makeNoisy returns the (d1, d2) pair for a noise kind at level pct.
func makeNoisy(db []*traj.Trajectory, kind NoiseKind, pct float64, seed int64) (d1, d2 []*traj.Trajectory) {
	switch kind {
	case NoiseInter:
		return db, synth.Inter(db, pct, seed)
	case NoiseIntra:
		return db, synth.Intra(db, pct, seed)
	case NoisePhase:
		return synth.Phase(db, pct, seed)
	case NoisePerturb:
		r := synth.PerturbRadius(db, 30)
		return db, synth.Perturb(db, pct, r, seed)
	}
	return db, db
}

// RobustnessVsK reproduces the left plot of each Fig. 5 robustness pair:
// Spearman correlation against k at a fixed noise level, for EDwP, EDR,
// EDR-I, LCSS and MA.
func RobustnessVsK(sc Scale, kind NoiseKind, pct float64, ks []int) []Series {
	if ks == nil {
		ks = []int{5, 10, 20, 30, 40, 50}
	}
	db := synth.Taxi(synth.DefaultTaxi(sc.TaxiN))
	d1, d2 := makeNoisy(db, kind, pct, sc.Seed)
	return robustnessSweep(sc, d1, d2, ks, nil)
}

// RobustnessVsN reproduces the right plot of each pair: correlation against
// the noise percentage at k = 10.
func RobustnessVsN(sc Scale, kind NoiseKind, pcts []float64) []Series {
	if pcts == nil {
		pcts = []float64{0.1, 0.25, 0.5, 0.75, 1.0}
	}
	db := synth.Taxi(synth.DefaultTaxi(sc.TaxiN))
	var out []Series
	for pi, pct := range pcts {
		d1, d2 := makeNoisy(db, kind, pct, sc.Seed)
		point := robustnessSweep(sc, d1, d2, []int{10}, nil)
		if pi == 0 {
			out = make([]Series, len(point))
			for i := range point {
				out[i].Name = point[i].Name
			}
		}
		for i := range point {
			out[i].X = append(out[i].X, pct*100)
			out[i].Y = append(out[i].Y, point[i].Y[0])
		}
	}
	return out
}

// robustnessSweep computes mean rank robustness per metric per k. EDR-I is
// realised by uniformly re-interpolating both databases before running EDR.
func robustnessSweep(sc Scale, d1, d2 []*traj.Trajectory, ks []int, queries []int) []Series {
	if queries == nil {
		rng := rand.New(rand.NewSource(sc.Seed + 17))
		queries = make([]int, sc.Queries)
		for i := range queries {
			queries[i] = rng.Intn(len(d1))
		}
	}
	eps := epsFor(d1)
	metrics := robustnessMetrics(eps)
	// EDR-I: global uniform re-interpolation (Section V-C), so that two
	// samplings of the same shape produce near-identical point sequences.
	spacing := traj.MedianSegmentLength(d1)
	i1 := traj.ResampleUniformAll(d1, spacing)
	i2 := traj.ResampleUniformAll(d2, spacing)

	out := make([]Series, 0, len(metrics)+1)
	for _, m := range metrics {
		s := Series{Name: m.Name()}
		for _, k := range ks {
			s.X = append(s.X, float64(k))
			s.Y = append(s.Y, MeanRankRobustness(d1, d2, m, queries, k))
		}
		out = append(out, s)
	}
	edrI := Series{Name: "EDR-I"}
	m := baseline.EDR{Eps: eps}
	for _, k := range ks {
		edrI.X = append(edrI.X, float64(k))
		edrI.Y = append(edrI.Y, MeanRankRobustness(i1, i2, m, queries, k))
	}
	out = append(out, edrI)
	return out
}

// QueryCompetitors reproduces Fig. 5(j)/6(a): mean k-NN latency (seconds)
// of TrajTree, EDwP sequential scan, the EDR index and an MA sequential
// scan, against k (with xs = ks) or against database size. Following
// Section V-D, the EDR competitor runs over the uniformly interpolated
// database (EDR-I), since that is the configuration whose robustness is
// closest to EDwP's.
//
// The indexed competitors are built through the metric registry
// (metrics.Spec) — the same entry point trajserve boots from — so the
// index a figure benchmarks is byte-for-byte the index the serving
// stack answers with.
func QueryCompetitors(db []*traj.Trajectory, queries []*traj.Trajectory, ks []int, opt trajtree.Options) ([]Series, error) {
	treeSpec, err := metrics.Spec(trajtree.MetricName, db, metrics.Config{Tree: opt})
	if err != nil {
		return nil, err
	}
	treeBe, err := treeSpec.Build(db)
	if err != nil {
		return nil, err
	}
	tree := treeBe.(*trajtree.Tree) // the EDwP scan competitor needs KNNBrute
	eps := epsFor(db)
	// The paper interpolates the EDR competitor's data to (near) the
	// maximum observed sampling density — the costly preprocessing
	// Section II warns about, and the reason indexed EDR loses to TrajTree
	// in Fig. 5(j) despite EDR's cheaper per-pair DP.
	spacing := traj.PercentileSegmentLength(db, 0.01)
	interp := traj.ResampleUniformAll(db, spacing)
	edrSpec, err := metrics.Spec(edrindex.MetricName, interp, metrics.Config{EDREps: eps})
	if err != nil {
		return nil, err
	}
	edrIx, err := edrSpec.Build(interp)
	if err != nil {
		return nil, err
	}
	iq := make(map[*traj.Trajectory]*traj.Trajectory, len(queries))
	for _, q := range queries {
		iq[q] = traj.ResampleUniform(q, spacing)
	}
	ma := baseline.DefaultMA(eps)

	series := []Series{
		{Name: "TrajTree"},
		{Name: "EDwP Sequential Scan"},
		{Name: "EDR"},
		{Name: "MA"},
	}
	for _, k := range ks {
		var tTree, tScan, tEDR, tMA time.Duration
		for _, q := range queries {
			t0 := time.Now()
			tree.SearchKNN(q, k, nil, nil)
			tTree += time.Since(t0)

			t0 = time.Now()
			tree.KNNBrute(q, k)
			tScan += time.Since(t0)

			t0 = time.Now()
			edrIx.SearchKNN(iq[q], k, nil, nil)
			tEDR += time.Since(t0)

			t0 = time.Now()
			maScan(db, ma, q, k)
			tMA += time.Since(t0)
		}
		n := float64(len(queries))
		for i, d := range []time.Duration{tTree, tScan, tEDR, tMA} {
			series[i].X = append(series[i].X, float64(k))
			series[i].Y = append(series[i].Y, d.Seconds()/n)
		}
	}
	return series, nil
}

// maScan is a serial sequential scan, matching the single-threaded
// execution of the other competitors in this comparison. Note that this
// re-implementation of MA runs one assignment DP per direction, where the
// authors' implementation evaluates five auxiliary quadratic functions —
// their Fig. 5(j) MA curve therefore sits higher relative to the rest (see
// EXPERIMENTS.md).
func maScan(db []*traj.Trajectory, m baseline.MA, q *traj.Trajectory, k int) {
	ds := make([]float64, len(db))
	for i := range db {
		ds[i] = m.Dist(q, db[i])
	}
	_ = ds
}

// UBFactorVsVPs reproduces Fig. 6(c): the root-level UB-Factor (Eq. 15) as
// the number of vantage points grows, against the random-selection
// baseline.
func UBFactorVsVPs(sc Scale, vpCounts []int) ([]Series, error) {
	if vpCounts == nil {
		vpCounts = []int{10, 20, 40, 80, 160}
	}
	db := synth.Taxi(synth.DefaultTaxi(sc.TaxiN))
	rng := rand.New(rand.NewSource(sc.Seed + 23))
	queries := sampleQueries(db, sc.Queries, rng)
	m := baseline.EDwP{}
	const k = 10

	vpSeries := Series{Name: "TrajTree VPs"}
	rndSeries := Series{Name: "Random"}
	for _, nv := range vpCounts {
		opt := trajtree.Options{NumVPs: nv, Seed: sc.Seed, PivotCandidates: 32}
		tree, err := trajtree.New(db, opt)
		if err != nil {
			return nil, err
		}
		var ubf, rnd []float64
		for _, q := range queries {
			ub, _ := tree.VPUpperBound(q, k)
			kth := KthNNDistance(db, m, q, k)
			if kth > 0 {
				ubf = append(ubf, ub/kth)
			}
			rnd = append(rnd, RandomUBFactor(db, m, q, k, rng))
		}
		vpSeries.X = append(vpSeries.X, float64(nv))
		vpSeries.Y = append(vpSeries.Y, stats.Mean(ubf))
		rndSeries.X = append(rndSeries.X, float64(nv))
		rndSeries.Y = append(rndSeries.Y, stats.Mean(rnd))
	}
	return []Series{vpSeries, rndSeries}, nil
}

// UBFactorVsK reproduces Fig. 6(d): UB-Factor against k at a fixed VP
// count, with the random baseline.
func UBFactorVsK(sc Scale, ks []int, numVPs int) ([]Series, error) {
	if ks == nil {
		ks = []int{5, 10, 25, 50, 100}
	}
	db := synth.Taxi(synth.DefaultTaxi(sc.TaxiN))
	rng := rand.New(rand.NewSource(sc.Seed + 29))
	queries := sampleQueries(db, sc.Queries, rng)
	m := baseline.EDwP{}
	opt := trajtree.Options{NumVPs: numVPs, Seed: sc.Seed, PivotCandidates: 32}
	tree, err := trajtree.New(db, opt)
	if err != nil {
		return nil, err
	}
	vpSeries := Series{Name: "TrajTree VPs"}
	rndSeries := Series{Name: "Random"}
	for _, k := range ks {
		var ubf, rnd []float64
		for _, q := range queries {
			ub, _ := tree.VPUpperBound(q, k)
			kth := KthNNDistance(db, m, q, k)
			if kth > 0 {
				ubf = append(ubf, ub/kth)
			}
			rnd = append(rnd, RandomUBFactor(db, m, q, k, rng))
		}
		vpSeries.X = append(vpSeries.X, float64(k))
		vpSeries.Y = append(vpSeries.Y, stats.Mean(ubf))
		rndSeries.X = append(rndSeries.X, float64(k))
		rndSeries.Y = append(rndSeries.Y, stats.Mean(rnd))
	}
	return []Series{vpSeries, rndSeries}, nil
}

// BuildTimes reproduces Figs. 6(e)–(f): index construction seconds against
// database size (thetas nil) or against θ (sizes nil).
func BuildTimes(sc Scale, sizes []int, thetas []float64) ([]Series, error) {
	switch {
	case thetas == nil:
		if sizes == nil {
			sizes = []int{100, 200, 400, 800}
		}
		s := Series{Name: "TrajTree build"}
		for _, n := range sizes {
			db := synth.Taxi(synth.DefaultTaxi(n))
			t0 := time.Now()
			if _, err := trajtree.New(db, trajtree.Options{Seed: sc.Seed, NumVPs: 20, PivotCandidates: 32}); err != nil {
				return nil, err
			}
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, time.Since(t0).Seconds())
		}
		return []Series{s}, nil
	default:
		db := synth.Taxi(synth.DefaultTaxi(sc.TaxiN))
		s := Series{Name: "TrajTree build"}
		for _, th := range thetas {
			t0 := time.Now()
			if _, err := trajtree.New(db, trajtree.Options{Theta: th, Seed: sc.Seed, NumVPs: 20, PivotCandidates: 32}); err != nil {
				return nil, err
			}
			s.X = append(s.X, th)
			s.Y = append(s.Y, time.Since(t0).Seconds())
		}
		return []Series{s}, nil
	}
}

// QueryVsTheta reproduces Fig. 6(b): mean query latency against θ.
func QueryVsTheta(sc Scale, thetas []float64, k int) ([]Series, error) {
	if thetas == nil {
		thetas = []float64{0.2, 0.4, 0.6, 0.8, 0.95}
	}
	db := synth.Taxi(synth.DefaultTaxi(sc.TaxiN))
	rng := rand.New(rand.NewSource(sc.Seed + 31))
	queries := sampleQueries(db, sc.Queries, rng)
	s := Series{Name: "TrajTree query"}
	for _, th := range thetas {
		tree, err := trajtree.New(db, trajtree.Options{Theta: th, Seed: sc.Seed, NumVPs: 20, PivotCandidates: 32})
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		for _, q := range queries {
			tree.SearchKNN(q, k, nil, nil)
		}
		s.X = append(s.X, th)
		s.Y = append(s.Y, time.Since(t0).Seconds()/float64(len(queries)))
	}
	return []Series{s}, nil
}

// sampleQueries clones n random database trajectories with fresh IDs so
// they do not self-match in processed sets.
func sampleQueries(db []*traj.Trajectory, n int, rng *rand.Rand) []*traj.Trajectory {
	out := make([]*traj.Trajectory, n)
	for i := range out {
		q := db[rng.Intn(len(db))].Clone()
		q.ID = 1_000_000 + i
		out[i] = q
	}
	return out
}

// FormatSeries renders series as an aligned text table, one row per X.
func FormatSeries(title, xlabel string, series []Series) string {
	if len(series) == 0 {
		return title + ": (no data)\n"
	}
	out := title + "\n"
	out += fmt.Sprintf("%-10s", xlabel)
	for _, s := range series {
		out += fmt.Sprintf("%14s", s.Name)
	}
	out += "\n"
	for i := range series[0].X {
		out += fmt.Sprintf("%-10.4g", series[0].X[i])
		for _, s := range series {
			if i < len(s.Y) {
				out += fmt.Sprintf("%14.6g", s.Y[i])
			} else {
				out += fmt.Sprintf("%14s", "-")
			}
		}
		out += "\n"
	}
	return out
}
