package pqueue

import (
	"math/rand"
	"sort"
	"testing"
)

func TestMinOrdering(t *testing.T) {
	var q Min[string]
	q.Push("c", 3)
	q.Push("a", 1)
	q.Push("b", 2)
	want := []string{"a", "b", "c"}
	for _, w := range want {
		it := q.Pop()
		if it.Value != w {
			t.Errorf("popped %q, want %q", it.Value, w)
		}
	}
	if q.Len() != 0 {
		t.Errorf("Len = %d after draining", q.Len())
	}
}

func TestMinRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	var q Min[int]
	var ps []float64
	for i := 0; i < 500; i++ {
		p := rng.Float64()
		ps = append(ps, p)
		q.Push(i, p)
	}
	sort.Float64s(ps)
	for i := 0; i < 500; i++ {
		if got := q.Pop().Priority; got != ps[i] {
			t.Fatalf("pop %d: priority %v, want %v", i, got, ps[i])
		}
	}
}

func TestTopKKeepsSmallest(t *testing.T) {
	q := NewTopK[int](3)
	for i, p := range []float64{9, 1, 8, 2, 7, 3} {
		q.Offer(i, p)
	}
	items := q.Items()
	if len(items) != 3 {
		t.Fatalf("kept %d items", len(items))
	}
	wantP := []float64{1, 2, 3}
	for i, it := range items {
		if it.Priority != wantP[i] {
			t.Errorf("item %d priority %v, want %v", i, it.Priority, wantP[i])
		}
	}
	if w, full := q.Worst(); !full || w != 3 {
		t.Errorf("Worst = %v full=%v, want 3 true", w, full)
	}
}

func TestTopKNotFull(t *testing.T) {
	q := NewTopK[int](5)
	q.Offer(1, 10)
	if _, full := q.Worst(); full {
		t.Error("reported full with 1/5 items")
	}
	if q.Full() {
		t.Error("Full() true with 1/5 items")
	}
}

func TestTopKRejectsWorse(t *testing.T) {
	q := NewTopK[int](2)
	if !q.Offer(0, 1) || !q.Offer(1, 2) {
		t.Fatal("initial offers rejected")
	}
	if q.Offer(2, 5) {
		t.Error("worse item accepted when full")
	}
	if !q.Offer(3, 0.5) {
		t.Error("better item rejected")
	}
	items := q.Items()
	if items[0].Priority != 0.5 || items[1].Priority != 1 {
		t.Errorf("items = %v", items)
	}
}

func TestTopKZero(t *testing.T) {
	q := NewTopK[int](0)
	if q.Offer(1, 1) {
		t.Error("k=0 accepted an item")
	}
}
