// Package pqueue provides the small priority queues Algorithm 2 needs: a
// generic min-queue for ordering index nodes by lower bound and a bounded
// max-queue that maintains the running k-NN answer set.
package pqueue

import "container/heap"

// Item pairs a payload with its priority.
type Item[T any] struct {
	Value    T
	Priority float64
}

// Min is a minimum priority queue: Pop returns the item with the smallest
// priority. The zero value is ready to use.
type Min[T any] struct{ h minHeap[T] }

// Push adds an item.
func (q *Min[T]) Push(v T, priority float64) {
	heap.Push(&q.h, Item[T]{Value: v, Priority: priority})
}

// Pop removes and returns the smallest-priority item. It panics when empty.
func (q *Min[T]) Pop() Item[T] { return heap.Pop(&q.h).(Item[T]) }

// Len returns the number of queued items.
func (q *Min[T]) Len() int { return q.h.Len() }

type minHeap[T any] []Item[T]

func (h minHeap[T]) Len() int            { return len(h) }
func (h minHeap[T]) Less(i, j int) bool  { return h[i].Priority < h[j].Priority }
func (h minHeap[T]) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *minHeap[T]) Push(x interface{}) { *h = append(*h, x.(Item[T])) }
func (h *minHeap[T]) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// TopK maintains the k smallest-priority items seen so far (a bounded
// max-heap). It is the ans queue of Algorithm 2.
type TopK[T any] struct {
	k int
	h maxHeap[T]
}

// NewTopK returns a TopK that retains the k best (smallest priority) items.
func NewTopK[T any](k int) *TopK[T] { return &TopK[T]{k: k} }

// Offer inserts the item if it belongs in the current top k, evicting the
// worst item when over capacity. It reports whether the item was kept.
func (q *TopK[T]) Offer(v T, priority float64) bool {
	if q.k <= 0 {
		return false
	}
	if q.h.Len() < q.k {
		heap.Push(&q.h, Item[T]{Value: v, Priority: priority})
		return true
	}
	if priority >= q.h[0].Priority {
		return false
	}
	q.h[0] = Item[T]{Value: v, Priority: priority}
	heap.Fix(&q.h, 0)
	return true
}

// Full reports whether k items are held.
func (q *TopK[T]) Full() bool { return q.h.Len() >= q.k }

// Worst returns the largest priority currently held, or +Inf semantics via
// ok=false when fewer than k items are held.
func (q *TopK[T]) Worst() (float64, bool) {
	if q.h.Len() == 0 {
		return 0, false
	}
	return q.h[0].Priority, q.h.Len() >= q.k
}

// Len returns the number of held items.
func (q *TopK[T]) Len() int { return q.h.Len() }

// Items returns the held items sorted by ascending priority.
func (q *TopK[T]) Items() []Item[T] {
	out := make([]Item[T], q.h.Len())
	copy(out, q.h)
	// Simple insertion sort suffices for k-sized slices.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Priority < out[j-1].Priority; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

type maxHeap[T any] []Item[T]

func (h maxHeap[T]) Len() int            { return len(h) }
func (h maxHeap[T]) Less(i, j int) bool  { return h[i].Priority > h[j].Priority }
func (h maxHeap[T]) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap[T]) Push(x interface{}) { *h = append(*h, x.(Item[T])) }
func (h *maxHeap[T]) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
