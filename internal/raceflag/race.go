//go:build race

// Package raceflag reports whether the binary was built with the race
// detector. Allocation-count tests consult it: under -race, sync.Pool
// deliberately drops a quarter of Puts to shake out use-after-Put bugs,
// so every pooled-scratch code path allocates on a random fraction of
// calls and exact alloc-count assertions are meaningless. Those tests
// skip themselves when Enabled and run in a dedicated non-race CI step.
package raceflag

// Enabled is true when the build includes the race detector.
const Enabled = true
