//go:build !race

package raceflag

// Enabled is true when the build includes the race detector.
const Enabled = false
