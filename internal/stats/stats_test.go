package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestRanks(t *testing.T) {
	got := Ranks([]float64{10, 30, 20})
	want := []float64{1, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Ranks[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestRanksTies(t *testing.T) {
	got := Ranks([]float64{5, 1, 5, 2})
	// sorted: 1(r1), 2(r2), 5(r3), 5(r4) → ties share (3+4)/2 = 3.5
	want := []float64{3.5, 1, 3.5, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Ranks[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSpearmanPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{10, 20, 30, 40, 50}
	if got := Spearman(x, y); !almost(got, 1) {
		t.Errorf("Spearman monotone = %v, want 1", got)
	}
	rev := []float64{50, 40, 30, 20, 10}
	if got := Spearman(x, rev); !almost(got, -1) {
		t.Errorf("Spearman reversed = %v, want -1", got)
	}
}

// Spearman is invariant under strictly monotone transformations of either
// argument — the property that makes it the right robustness measure.
func TestSpearmanMonotoneInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(20)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.Float64() * 100
			y[i] = r.Float64() * 100
		}
		s1 := Spearman(x, y)
		// exp is strictly monotone.
		ex := make([]float64, n)
		for i := range x {
			ex[i] = math.Exp(x[i] / 50)
		}
		s2 := Spearman(ex, y)
		return almost(s1, s2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestSpearmanRange(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for it := 0; it < 200; it++ {
		n := 3 + rng.Intn(30)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()
			y[i] = rng.Float64()
		}
		s := Spearman(x, y)
		if s < -1-1e-9 || s > 1+1e-9 {
			t.Fatalf("Spearman out of range: %v", s)
		}
	}
}

func TestPearsonConstantSeries(t *testing.T) {
	if got := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("Pearson with constant x = %v, want 0", got)
	}
	if got := Pearson([]float64{1, 2}, []float64{1}); got != 0 {
		t.Errorf("Pearson with length mismatch = %v, want 0", got)
	}
}

func TestSummaryStats(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almost(got, 5) {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := StdDev(xs); math.Abs(got-2.138) > 0.01 {
		t.Errorf("StdDev = %v, want ≈2.138", got)
	}
	if got := Median(xs); !almost(got, 4.5) {
		t.Errorf("Median = %v, want 4.5", got)
	}
	if got := Median([]float64{3, 1, 2}); !almost(got, 2) {
		t.Errorf("odd Median = %v, want 2", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || Median(nil) != 0 {
		t.Error("empty-input stats not zero")
	}
}
