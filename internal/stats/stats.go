// Package stats provides the statistics the evaluation harness reports:
// Spearman's rank correlation (the robustness measure of Section V-C),
// Pearson correlation and small summary helpers.
package stats

import (
	"math"
	"sort"
)

// Ranks converts values to fractional ranks (1-based); tied values receive
// the average of the ranks they span, the standard treatment for
// Spearman's ρ.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Pearson returns the Pearson correlation of x and y; 0 when either series
// is constant or the lengths differ.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return 0
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns Spearman's rank correlation coefficient between x and y:
// the Pearson correlation of their rank vectors (tie-aware). Identical rank
// vectors — including the all-ties case, which coarse integer-valued
// distances like EDR produce routinely — score 1, since the orderings agree
// perfectly.
func Spearman(x, y []float64) float64 {
	rx, ry := Ranks(x), Ranks(y)
	if len(rx) == len(ry) {
		same := true
		for i := range rx {
			if rx[i] != ry[i] {
				same = false
				break
			}
		}
		if same && len(rx) > 0 {
			return 1
		}
	}
	return Pearson(rx, ry)
}

// Mean returns the arithmetic mean, 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation, 0 for fewer than two values.
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(n-1))
}

// Median returns the median, 0 for empty input.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	c := make([]float64, n)
	copy(c, xs)
	sort.Float64s(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}
