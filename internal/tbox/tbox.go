// Package tbox implements the paper's trajectory bounding boxes
// (Definitions 4–5): st-boxes and trajectory box sequences (tBoxSeqs), the
// summaries TrajTree stores at its internal nodes.
//
// A Seq is created from a pivot trajectory (one box per segment, the
// paper's createTBoxSeq(T)) and grows by absorbing further trajectories:
// each new trajectory's segments are assigned to boxes monotonically in box
// order, minimising volume growth — the merge step of Section IV-B — and
// the boxes are extended to contain them. The package maintains the
// containment invariant core.LowerBound's admissibility (Theorem 2) relies
// on: every absorbed trajectory's geometry lies inside its assigned boxes,
// in box order.
package tbox

import (
	"fmt"
	"math"

	"trajmatch/internal/core"
	"trajmatch/internal/geom"
	"trajmatch/internal/traj"
)

// Box is an st-box (Definition 4): a spatial bounding rectangle together
// with the minimum length of the segments it encloses.
type Box struct {
	Rect geom.Rect
	// MinL is the minimum length over enclosed segment pieces.
	MinL float64
}

// Seq is a trajectory box sequence (Definition 5).
type Seq struct {
	boxes []Box
	count int // trajectories absorbed
}

var _ core.Boxes = (*Seq)(nil)

// FromTrajectory creates the initial tBoxSeq of a pivot trajectory: one
// st-box per st-segment. MaxBoxes (if > 0) coarsens the sequence by
// repeatedly merging the adjacent pair whose union grows the least, keeping
// lower-bound evaluation cheap on long pivots.
func FromTrajectory(t *traj.Trajectory, maxBoxes int) *Seq {
	n := t.NumSegments()
	if n == 0 {
		return &Seq{}
	}
	s := &Seq{boxes: make([]Box, n), count: 1}
	for i := 0; i < n; i++ {
		e := t.Segment(i)
		s.boxes[i] = Box{
			Rect: geom.RectOf(e.S1.XY(), e.S2.XY()),
			MinL: e.Length(),
		}
	}
	if maxBoxes > 0 {
		s.coarsen(maxBoxes)
	}
	return s
}

// FromBoxes reassembles a Seq from raw boxes, for deserialisation. count
// records how many trajectories the original sequence had absorbed.
func FromBoxes(boxes []Box, count int) *Seq {
	return &Seq{boxes: boxes, count: count}
}

// Len implements core.Boxes.
func (s *Seq) Len() int { return len(s.boxes) }

// Rect implements core.Boxes.
func (s *Seq) Rect(i int) geom.Rect { return s.boxes[i].Rect }

// MinLen returns the i-th box's minimum enclosed segment length.
func (s *Seq) MinLen(i int) float64 { return s.boxes[i].MinL }

// Count returns how many trajectories the sequence has absorbed.
func (s *Seq) Count() int { return s.count }

// Volume returns ΣVol(b_i); in 2-D the volume of a box is its area
// (Definition 5).
func (s *Seq) Volume() float64 {
	var v float64
	for _, b := range s.boxes {
		v += b.Rect.Area()
	}
	return v
}

// Bounds returns the union rectangle over all boxes.
func (s *Seq) Bounds() geom.Rect {
	r := geom.Empty()
	for _, b := range s.boxes {
		r = r.Union(b.Rect)
	}
	return r
}

// ExpansionCost returns the total volume growth that absorbing t would
// cause — the argmin criterion of Algorithm 1, line 11 — without modifying
// the sequence.
func (s *Seq) ExpansionCost(t *traj.Trajectory) float64 {
	if len(s.boxes) == 0 {
		return t.Bounds().Area()
	}
	assign := core.AssignSegments(t, s)
	// Accumulate growth per box over all segments assigned to it.
	grown := make(map[int]geom.Rect, 8)
	for i, j := range assign {
		e := t.Segment(i)
		r, ok := grown[j]
		if !ok {
			r = s.boxes[j].Rect
		}
		grown[j] = r.ExtendPoint(e.S1.XY()).ExtendPoint(e.S2.XY())
	}
	var growth float64
	for j, r := range grown {
		growth += r.Area() - s.boxes[j].Rect.Area()
	}
	return growth
}

// Insert absorbs t into the sequence, extending the assigned boxes to
// contain its segments and updating their MinL.
func (s *Seq) Insert(t *traj.Trajectory) {
	if t.NumSegments() == 0 {
		return
	}
	if len(s.boxes) == 0 {
		*s = *FromTrajectory(t, 0)
		return
	}
	assign := core.AssignSegments(t, s)
	for i, j := range assign {
		e := t.Segment(i)
		b := &s.boxes[j]
		b.Rect = b.Rect.ExtendPoint(e.S1.XY()).ExtendPoint(e.S2.XY())
		if l := e.Length(); l < b.MinL {
			b.MinL = l
		}
	}
	s.count++
}

// Contains reports whether every segment of t lies inside a monotone
// assignment of boxes — the containment invariant. It is used by tests and
// failure-injection checks, not on the query path.
func (s *Seq) Contains(t *traj.Trajectory) bool {
	if t.NumSegments() == 0 || len(s.boxes) == 0 {
		return len(s.boxes) > 0 || t.NumSegments() == 0
	}
	// Greedy monotone check: each segment must fit in some box at or after
	// the previous segment's box.
	j := 0
	for i := 0; i < t.NumSegments(); i++ {
		e := t.Segment(i)
		for j < len(s.boxes) {
			r := s.boxes[j].Rect
			if r.Contains(e.S1.XY()) && r.Contains(e.S2.XY()) {
				break
			}
			j++
		}
		if j == len(s.boxes) {
			return false
		}
	}
	return true
}

// coarsen merges adjacent boxes until at most max remain, each merge
// picking the pair whose union adds the least area.
func (s *Seq) coarsen(max int) {
	for len(s.boxes) > max {
		bestI := -1
		bestGrow := math.Inf(1)
		for i := 0; i+1 < len(s.boxes); i++ {
			u := s.boxes[i].Rect.Union(s.boxes[i+1].Rect)
			grow := u.Area() - s.boxes[i].Rect.Area() - s.boxes[i+1].Rect.Area()
			if grow < bestGrow {
				bestGrow = grow
				bestI = i
			}
		}
		i := bestI
		s.boxes[i] = Box{
			Rect: s.boxes[i].Rect.Union(s.boxes[i+1].Rect),
			MinL: math.Min(s.boxes[i].MinL, s.boxes[i+1].MinL),
		}
		s.boxes = append(s.boxes[:i+1], s.boxes[i+2:]...)
	}
}

// Build constructs a tBoxSeq over a set of trajectories following the
// iterative procedure of Section IV-B: initialise from the first, then
// absorb the rest in order.
func Build(ts []*traj.Trajectory, maxBoxes int) *Seq {
	if len(ts) == 0 {
		return &Seq{}
	}
	s := FromTrajectory(ts[0], maxBoxes)
	for _, t := range ts[1:] {
		s.Insert(t)
	}
	return s
}

// String summarises the sequence for debugging.
func (s *Seq) String() string {
	return fmt.Sprintf("tBoxSeq[%d boxes, %d trajs, vol %.2f]", len(s.boxes), s.count, s.Volume())
}
