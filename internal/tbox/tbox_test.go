package tbox

import (
	"math"
	"math/rand"
	"testing"

	"trajmatch/internal/core"
	"trajmatch/internal/geom"
	"trajmatch/internal/traj"
)

func randomTraj(rng *rand.Rand, id, n int) *traj.Trajectory {
	pts := make([]traj.Point, n)
	x, y := rng.Float64()*50, rng.Float64()*50
	for i := range pts {
		pts[i] = traj.P(x, y, float64(i)*10)
		x += rng.NormFloat64() * 4
		y += rng.NormFloat64() * 4
	}
	return traj.New(id, pts)
}

func TestFromTrajectoryBoxes(t *testing.T) {
	tr := traj.FromXY(0, 0, 0, 3, 0, 3, 4)
	s := FromTrajectory(tr, 0)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if got := s.Rect(0); got != geom.RectOf(geom.Pt(0, 0), geom.Pt(3, 0)) {
		t.Errorf("box 0 = %v", got)
	}
	if got := s.MinLen(0); got != 3 {
		t.Errorf("MinL(0) = %v, want 3", got)
	}
	if got := s.MinLen(1); got != 4 {
		t.Errorf("MinL(1) = %v, want 4", got)
	}
	if !s.Contains(tr) {
		t.Error("own trajectory not contained")
	}
}

func TestCoarsenRespectsCapAndContainment(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	tr := randomTraj(rng, 0, 60)
	s := FromTrajectory(tr, 8)
	if s.Len() > 8 {
		t.Fatalf("coarsen left %d boxes", s.Len())
	}
	if !s.Contains(tr) {
		t.Error("coarsened seq lost containment")
	}
}

func TestInsertMaintainsContainment(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for it := 0; it < 30; it++ {
		group := make([]*traj.Trajectory, 2+rng.Intn(6))
		for i := range group {
			group[i] = randomTraj(rng, i, 3+rng.Intn(15))
		}
		s := Build(group, 16)
		for _, m := range group {
			if !s.Contains(m) {
				t.Fatalf("member %d escaped its tBoxSeq", m.ID)
			}
		}
		if s.Count() != len(group) {
			t.Errorf("Count = %d, want %d", s.Count(), len(group))
		}
	}
}

func TestVolumeGrowsWithInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a := randomTraj(rng, 0, 10)
	b := randomTraj(rng, 1, 10)
	s := FromTrajectory(a, 0)
	v0 := s.Volume()
	cost := s.ExpansionCost(b)
	s.Insert(b)
	v1 := s.Volume()
	if v1 < v0-1e-9 {
		t.Errorf("volume shrank: %v -> %v", v0, v1)
	}
	if math.Abs((v1-v0)-cost) > 1e-6*(1+v1) {
		t.Errorf("ExpansionCost %v != actual growth %v", cost, v1-v0)
	}
}

func TestExpansionCostZeroForCovered(t *testing.T) {
	a := traj.FromXY(0, 0, 0, 10, 0, 10, 10)
	s := FromTrajectory(a, 0)
	inside := traj.FromXY(1, 1, 0, 9, 0)
	if got := s.ExpansionCost(inside); got != 0 {
		t.Errorf("ExpansionCost for covered trajectory = %v, want 0", got)
	}
}

// The Theorem-2 contract, end to end through this package: the core lower
// bound computed on a Seq never exceeds the true distance to any member.
func TestLowerBoundAdmissibleViaSeq(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for it := 0; it < 40; it++ {
		group := make([]*traj.Trajectory, 1+rng.Intn(6))
		for i := range group {
			group[i] = randomTraj(rng, i, 3+rng.Intn(12))
		}
		s := Build(group, 12)
		q := randomTraj(rng, 99, 3+rng.Intn(12))
		lb := core.LowerBound(q, s)
		for _, m := range group {
			d := core.Distance(q, m)
			if lb > d+1e-6*(1+d) {
				t.Fatalf("LowerBound %v > EDwP %v (member %d)", lb, d, m.ID)
			}
		}
	}
}

func TestEmptySeq(t *testing.T) {
	var s Seq
	if s.Len() != 0 || s.Volume() != 0 {
		t.Error("zero Seq not empty")
	}
	tr := traj.FromXY(0, 0, 0, 1, 1)
	s.Insert(tr)
	if s.Len() == 0 || !s.Contains(tr) {
		t.Error("insert into empty seq failed")
	}
}

func TestBuildEmpty(t *testing.T) {
	s := Build(nil, 8)
	if s.Len() != 0 {
		t.Errorf("Build(nil) has %d boxes", s.Len())
	}
}

func TestDegenerateTrajectorySeq(t *testing.T) {
	point := traj.New(0, []traj.Point{traj.P(1, 1, 0)})
	s := FromTrajectory(point, 8)
	if s.Len() != 0 {
		t.Errorf("segmentless trajectory created %d boxes", s.Len())
	}
}
