package synth

import (
	"math"
	"math/rand"

	"trajmatch/internal/traj"
)

// splitSegment inserts a point on segment i of t at the given fraction,
// preserving the shape exactly (location and timestamp are interpolated).
func splitSegment(t *traj.Trajectory, i int, frac float64) {
	p := t.Segment(i).At(frac)
	t.Points = append(t.Points, traj.Point{})
	copy(t.Points[i+2:], t.Points[i+1:])
	t.Points[i+1] = p
}

// pickSegments selects ⌈pct·n⌉ distinct segment indices among [lo, hi).
func pickSegments(rng *rand.Rand, lo, hi int, pct float64) []int {
	n := hi - lo
	if n <= 0 {
		return nil
	}
	k := int(math.Ceil(pct * float64(n)))
	if k > n {
		k = n
	}
	perm := rng.Perm(n)
	idx := make([]int, k)
	for i := 0; i < k; i++ {
		idx[i] = lo + perm[i]
	}
	// Sort descending so successive splits don't shift later indices.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && idx[j] > idx[j-1]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx
}

// Inter models inter-trajectory sampling-rate variance (Fig. 5(b,c)):
// without altering the shape, it splits pct (0..1) of each trajectory's
// segments by inserting an interpolated point, producing a database with a
// higher sampling rate than the original.
func Inter(db []*traj.Trajectory, pct float64, seed int64) []*traj.Trajectory {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*traj.Trajectory, len(db))
	for i, t := range db {
		c := t.Clone()
		for _, s := range pickSegments(rng, 0, c.NumSegments(), pct) {
			splitSegment(c, s, 0.25+rng.Float64()*0.5)
		}
		out[i] = c
	}
	return out
}

// Intra models intra-trajectory variance (Fig. 5(d,e)): only segments in
// the first half of each trajectory are split, so the sampling rate varies
// within each trajectory.
func Intra(db []*traj.Trajectory, pct float64, seed int64) []*traj.Trajectory {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*traj.Trajectory, len(db))
	for i, t := range db {
		c := t.Clone()
		half := c.NumSegments() / 2
		for _, s := range pickSegments(rng, 0, half, pct) {
			splitSegment(c, s, 0.25+rng.Float64()*0.5)
		}
		out[i] = c
	}
	return out
}

// Phase models sampling phase variation (Fig. 5(f,g)): the same pct of
// segments is split in both output datasets, at different positions, so D1
// and D2 have identical sampling rates and shapes but different recorded
// samples.
func Phase(db []*traj.Trajectory, pct float64, seed int64) (d1, d2 []*traj.Trajectory) {
	rng := rand.New(rand.NewSource(seed))
	d1 = make([]*traj.Trajectory, len(db))
	d2 = make([]*traj.Trajectory, len(db))
	for i, t := range db {
		segs := pickSegments(rng, 0, t.NumSegments(), pct)
		a, b := t.Clone(), t.Clone()
		for _, s := range segs {
			splitSegment(a, s, 0.2+rng.Float64()*0.3)
			splitSegment(b, s, 0.5+rng.Float64()*0.3)
		}
		d1[i], d2[i] = a, b
	}
	return d1, d2
}

// Perturb models measurement noise for the threshold-dependency experiment
// (Fig. 5(h,i)): pct of each trajectory's points move to a uniformly random
// location within a circle of the given radius. The paper sets the radius
// to the distance covered in 30 s at the dataset's average speed; use
// PerturbRadius for that value.
func Perturb(db []*traj.Trajectory, pct, radius float64, seed int64) []*traj.Trajectory {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*traj.Trajectory, len(db))
	for i, t := range db {
		c := t.Clone()
		for j := range c.Points {
			if rng.Float64() >= pct {
				continue
			}
			// Uniform in the disc.
			r := radius * math.Sqrt(rng.Float64())
			th := rng.Float64() * 2 * math.Pi
			c.Points[j].X += r * math.Cos(th)
			c.Points[j].Y += r * math.Sin(th)
		}
		out[i] = c
	}
	return out
}

// PerturbRadius returns the paper's perturbation radius: the distance
// travelled in horizon seconds at the database's average speed.
func PerturbRadius(db []*traj.Trajectory, horizon float64) float64 {
	var sum float64
	var n int
	for _, t := range db {
		if s := t.AverageSpeed(); s > 0 {
			sum += s
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n) * horizon
}
