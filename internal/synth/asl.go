package synth

import (
	"math"
	"math/rand"

	"trajmatch/internal/traj"
)

// ASLConfig parameterises the sign-language stand-in: NumClasses smooth
// template curves ("signs"), each instantiated Instances times with jitter.
type ASLConfig struct {
	// NumClasses is the number of distinct signs (the real dataset has 98).
	NumClasses int
	// Instances is the number of recordings per sign.
	Instances int
	// Points is the number of samples per recording.
	Points int
	// Jitter is the instance noise standard deviation relative to the
	// template extent (hand tremor + sensor noise).
	Jitter float64
	// Seed drives the generator.
	Seed int64
}

// DefaultASL mirrors the real corpus shape: 98 classes, 27 instances each.
func DefaultASL() ASLConfig {
	return ASLConfig{NumClasses: 98, Instances: 27, Points: 40, Jitter: 0.04, Seed: 2}
}

// ASL generates labelled gesture trajectories. Classes are smooth Bézier
// templates in a 100×100 workspace; to make the task realistically hard —
// real signs resemble one another — classes are derived from a small pool
// of base shapes, so several classes share overall structure and differ in
// detail. Each instance re-samples its class template with spatial jitter,
// a random monotone time warp, a slight rigid motion and its own sampling
// rate, the regime of the Fig. 5(a) classification experiment.
func ASL(cfg ASLConfig) []*traj.Trajectory {
	rng := rand.New(rand.NewSource(cfg.Seed))
	numBases := cfg.NumClasses / 6
	if numBases < 2 {
		numBases = 2
	}
	bases := make([][]gpt, numBases)
	for i := range bases {
		bases[i] = basePolygon(rng)
	}
	out := make([]*traj.Trajectory, 0, cfg.NumClasses*cfg.Instances)
	id := 0
	for class := 0; class < cfg.NumClasses; class++ {
		ctrl := perturbPolygon(bases[class%numBases], 7, rng)
		tpl := bezier(ctrl)
		for inst := 0; inst < cfg.Instances; inst++ {
			t := instantiate(tpl, cfg, rng, id, class)
			out = append(out, t)
			id++
		}
	}
	return out
}

// gpt is a control point of a gesture template.
type gpt struct{ x, y float64 }

// basePolygon draws 4–7 control points in the workspace.
func basePolygon(rng *rand.Rand) []gpt {
	n := 4 + rng.Intn(4)
	ps := make([]gpt, n)
	for i := range ps {
		ps[i] = gpt{rng.Float64() * 100, rng.Float64() * 100}
	}
	return ps
}

// perturbPolygon returns a copy with Gaussian noise of the given magnitude
// on every control point — a class-level variation of a base shape.
func perturbPolygon(ps []gpt, mag float64, rng *rand.Rand) []gpt {
	out := make([]gpt, len(ps))
	for i, p := range ps {
		out[i] = gpt{p.x + rng.NormFloat64()*mag, p.y + rng.NormFloat64()*mag}
	}
	return out
}

// bezier returns the degree-(n−1) Bézier evaluator over the control points
// (De Casteljau: smooth and cheap at these sizes).
func bezier(ps []gpt) func(u float64) (x, y float64) {
	n := len(ps)
	return func(u float64) (float64, float64) {
		bx := make([]float64, n)
		by := make([]float64, n)
		for i, p := range ps {
			bx[i], by[i] = p.x, p.y
		}
		for m := n - 1; m > 0; m-- {
			for i := 0; i < m; i++ {
				bx[i] = bx[i]*(1-u) + bx[i+1]*u
				by[i] = by[i]*(1-u) + by[i+1]*u
			}
		}
		return bx[0], by[0]
	}
}

func instantiate(tpl func(float64) (float64, float64), cfg ASLConfig, rng *rand.Rand, id, class int) *traj.Trajectory {
	// Every recording differs from its template by a monotone time warp,
	// a slight rigid motion (signers hold their hands differently), jitter
	// and — on theme for the paper — its own sampling rate.
	n := cfg.Points
	if n > 6 {
		n = n*6/10 + rng.Intn(n*8/10) // 0.6×..1.4× of the nominal rate
	}
	gamma := 0.6 + rng.Float64()*0.9
	phase := rng.Float64() * 0.05
	duration := 2 + rng.Float64()*2 // seconds, like a hand sign
	angle := (rng.Float64() - 0.5) * 0.25
	scale := 0.9 + rng.Float64()*0.2
	sin, cos := math.Sin(angle), math.Cos(angle)
	const cx, cy = 50, 50 // rotate about the workspace centre

	pts := make([]traj.Point, n)
	for i := range pts {
		u := math.Pow(float64(i)/float64(n-1), gamma)
		u = math.Min(1, u*(1-phase)+phase)
		x, y := tpl(u)
		x, y = x-cx, y-cy
		x, y = scale*(x*cos-y*sin)+cx, scale*(x*sin+y*cos)+cy
		x += rng.NormFloat64() * cfg.Jitter * 100
		y += rng.NormFloat64() * cfg.Jitter * 100
		pts[i] = traj.P(x, y, u*duration)
	}
	t := traj.New(id, pts)
	t.Label = class
	return t
}

// Classes returns the subset of db whose labels fall in the given class
// set, the selection step of the Fig. 5(a) protocol.
func Classes(db []*traj.Trajectory, classes map[int]bool) []*traj.Trajectory {
	var out []*traj.Trajectory
	for _, t := range db {
		if classes[t.Label] {
			out = append(out, t)
		}
	}
	return out
}

// PickClasses selects c random class labels out of [0, numClasses).
func PickClasses(numClasses, c int, rng *rand.Rand) map[int]bool {
	perm := rng.Perm(numClasses)
	if c > numClasses {
		c = numClasses
	}
	set := make(map[int]bool, c)
	for _, cl := range perm[:c] {
		set[cl] = true
	}
	return set
}
