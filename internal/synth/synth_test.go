package synth

import (
	"math"
	"math/rand"
	"testing"

	"trajmatch/internal/core"
	"trajmatch/internal/traj"
)

func TestTaxiGeneratesValidTrips(t *testing.T) {
	cfg := DefaultTaxi(50)
	db := Taxi(cfg)
	if len(db) != 50 {
		t.Fatalf("generated %d trips, want 50", len(db))
	}
	ids := map[int]bool{}
	for _, tr := range db {
		if err := tr.Validate(); err != nil {
			t.Fatalf("trip %d invalid: %v", tr.ID, err)
		}
		if ids[tr.ID] {
			t.Fatalf("duplicate trip ID %d", tr.ID)
		}
		ids[tr.ID] = true
		if tr.Length() <= 0 {
			t.Errorf("trip %d has zero length", tr.ID)
		}
		// Stays within the city (plus jitter slack).
		b := tr.Bounds()
		if b.Min.X < -100 || b.Max.X > cfg.CitySize+100 {
			t.Errorf("trip %d escapes the city: %v", tr.ID, b)
		}
	}
}

func TestTaxiDeterministicPerSeed(t *testing.T) {
	a := Taxi(DefaultTaxi(10))
	b := Taxi(DefaultTaxi(10))
	for i := range a {
		if !traj.Equal(a[i], b[i]) {
			t.Fatal("same seed produced different datasets")
		}
	}
	cfg := DefaultTaxi(10)
	cfg.Seed = 99
	c := Taxi(cfg)
	same := true
	for i := range a {
		if !traj.Equal(a[i], c[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical datasets")
	}
}

func TestTaxiSamplingIsIrregular(t *testing.T) {
	db := Taxi(DefaultTaxi(20))
	varied := false
	for _, tr := range db {
		var prev float64
		for i := 0; i < tr.NumSegments(); i++ {
			dt := tr.Segment(i).Duration()
			if i > 0 && math.Abs(dt-prev) > 1 {
				varied = true
			}
			prev = dt
		}
	}
	if !varied {
		t.Error("all sampling intervals identical; generator should vary them")
	}
}

func TestASLLabelsAndSimilarity(t *testing.T) {
	cfg := ASLConfig{NumClasses: 5, Instances: 6, Points: 24, Jitter: 0.02, Seed: 3}
	db := ASL(cfg)
	if len(db) != 30 {
		t.Fatalf("generated %d, want 30", len(db))
	}
	for _, tr := range db {
		if err := tr.Validate(); err != nil {
			t.Fatalf("instance %d invalid: %v", tr.ID, err)
		}
		if tr.Label < 0 || tr.Label >= 5 {
			t.Fatalf("label %d out of range", tr.Label)
		}
	}
	// Same-class instances should usually be closer (EDwPavg) than
	// cross-class ones: compare mean within vs across for class 0.
	var within, across []float64
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 12; j++ {
			d := core.AvgDistance(db[i], db[j])
			if db[j].Label == 0 {
				within = append(within, d)
			} else {
				across = append(across, d)
			}
		}
	}
	mw, ma := mean(within), mean(across)
	if mw >= ma {
		t.Errorf("within-class mean %v not below cross-class mean %v", mw, ma)
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestPickClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	set := PickClasses(98, 10, rng)
	if len(set) != 10 {
		t.Fatalf("picked %d classes", len(set))
	}
	db := ASL(ASLConfig{NumClasses: 4, Instances: 3, Points: 10, Jitter: 0.01, Seed: 5})
	sel := Classes(db, map[int]bool{1: true, 3: true})
	if len(sel) != 6 {
		t.Fatalf("selected %d instances, want 6", len(sel))
	}
	for _, tr := range sel {
		if tr.Label != 1 && tr.Label != 3 {
			t.Errorf("selection includes label %d", tr.Label)
		}
	}
}

// Inter must preserve shape exactly (EDwP distance 0 to the original) while
// increasing the point count.
func TestInterPreservesShape(t *testing.T) {
	db := Taxi(DefaultTaxi(10))
	noisy := Inter(db, 0.5, 7)
	for i := range db {
		if noisy[i].NumPoints() <= db[i].NumPoints() {
			t.Errorf("trip %d not densified", i)
		}
		if err := noisy[i].Validate(); err != nil {
			t.Fatalf("noisy trip invalid: %v", err)
		}
		if d := core.Distance(db[i], noisy[i]); d > 1e-6 {
			t.Errorf("Inter altered shape of trip %d: EDwP = %v", i, d)
		}
		if math.Abs(db[i].Length()-noisy[i].Length()) > 1e-6 {
			t.Errorf("Inter altered length of trip %d", i)
		}
	}
}

func TestIntraSplitsOnlyFirstHalf(t *testing.T) {
	db := Taxi(DefaultTaxi(10))
	noisy := Intra(db, 1.0, 8) // split every first-half segment
	for i := range db {
		orig, got := db[i], noisy[i]
		halfSegs := orig.NumSegments() / 2
		wantPts := orig.NumPoints() + halfSegs
		if got.NumPoints() != wantPts {
			t.Errorf("trip %d: %d points, want %d", i, got.NumPoints(), wantPts)
		}
		// Second-half sample points must be untouched (suffix identical).
		suffix := orig.Points[halfSegs:]
		gotSuffix := got.Points[got.NumPoints()-len(suffix):]
		for j := range suffix {
			if suffix[j] != gotSuffix[j] {
				t.Fatalf("trip %d: second half altered", i)
			}
		}
	}
}

func TestPhasePairsSameRateDifferentSamples(t *testing.T) {
	db := Taxi(DefaultTaxi(10))
	d1, d2 := Phase(db, 0.4, 9)
	for i := range db {
		if d1[i].NumPoints() != d2[i].NumPoints() {
			t.Errorf("trip %d: phase pair sizes differ: %d vs %d",
				i, d1[i].NumPoints(), d2[i].NumPoints())
		}
		if traj.Equal(d1[i], d2[i]) {
			t.Errorf("trip %d: phase pair identical", i)
		}
		// Both preserve the underlying shape.
		if d := core.Distance(d1[i], d2[i]); d > 1e-6 {
			t.Errorf("trip %d: phase variants differ in shape: %v", i, d)
		}
	}
}

func TestPerturbMovesWithinRadius(t *testing.T) {
	db := Taxi(DefaultTaxi(10))
	radius := PerturbRadius(db, 30)
	if radius <= 0 {
		t.Fatal("non-positive perturbation radius")
	}
	noisy := Perturb(db, 1.0, radius, 10)
	moved := 0
	for i := range db {
		if noisy[i].NumPoints() != db[i].NumPoints() {
			t.Fatalf("perturb changed point count")
		}
		for j := range db[i].Points {
			d := db[i].Points[j].Dist(noisy[i].Points[j])
			if d > radius+1e-9 {
				t.Fatalf("point moved %v > radius %v", d, radius)
			}
			if d > 0 {
				moved++
			}
		}
	}
	if moved == 0 {
		t.Error("pct=1 perturbation moved nothing")
	}
}

func TestPerturbZeroPct(t *testing.T) {
	db := Taxi(DefaultTaxi(5))
	noisy := Perturb(db, 0, 100, 11)
	for i := range db {
		if !traj.Equal(db[i], noisy[i]) {
			t.Error("pct=0 perturbation altered data")
		}
	}
}
