// Package synth generates the synthetic datasets that stand in for the
// paper's Beijing-cab and ASL corpora (see DESIGN.md §3 for the
// substitution rationale) and implements the four noise-injection
// procedures of Section V-C verbatim: inter-trajectory sampling variance,
// intra-trajectory variance, phase variation and spatial perturbation.
package synth

import (
	"math"
	"math/rand"

	"trajmatch/internal/traj"
)

// TaxiConfig parameterises the city-trip generator. Units are metres and
// seconds; the defaults roughly match urban GPS trips: 30–60 s sampling,
// 5–15 m/s speeds, kilometre-scale trips on a jittered grid road network.
type TaxiConfig struct {
	// N is the number of trajectories.
	N int
	// GridSpacing is the distance between parallel streets.
	GridSpacing float64
	// CitySize is the edge length of the square city.
	CitySize float64
	// MinHops and MaxHops bound the number of grid moves per trip.
	MinHops, MaxHops int
	// SampleEvery is the central sampling interval in seconds. Each trip
	// draws its own base interval log-uniformly from
	// [SampleEvery/SampleSpread, SampleEvery×SampleSpread] — the
	// heterogeneous-device premise of the paper — and individual samples
	// jitter ±50% around it.
	SampleEvery float64
	// SampleSpread is the cross-trip rate heterogeneity factor; 1 gives
	// every trip the same base rate.
	SampleSpread float64
	// Seed drives the generator.
	Seed int64
}

// DefaultTaxi returns the configuration used across the experiments.
func DefaultTaxi(n int) TaxiConfig {
	return TaxiConfig{
		N:            n,
		GridSpacing:  200,
		CitySize:     8000,
		MinHops:      6,
		MaxHops:      30,
		SampleEvery:  45,
		SampleSpread: 3,
		Seed:         1,
	}
}

// Taxi generates city-trip trajectories: each trip walks the jittered grid
// with turn momentum (cabs mostly go straight), traverses every street at a
// per-trip speed with per-segment variation, and is then sampled at
// irregular intervals — so both the shapes and the sampling are
// heterogeneous, like the paper's cab data after trip splitting.
func Taxi(cfg TaxiConfig) []*traj.Trajectory {
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]*traj.Trajectory, 0, cfg.N)
	for id := 0; len(out) < cfg.N; id++ {
		t := taxiTrip(cfg, rng, id)
		if t.NumPoints() >= 2 {
			out = append(out, t)
		}
	}
	return out
}

func taxiTrip(cfg TaxiConfig, rng *rand.Rand, id int) *traj.Trajectory {
	cells := int(cfg.CitySize / cfg.GridSpacing)
	cx := rng.Intn(cells)
	cy := rng.Intn(cells)
	hops := cfg.MinHops + rng.Intn(cfg.MaxHops-cfg.MinHops+1)

	// Walk the grid with momentum.
	dirs := [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
	dir := rng.Intn(4)
	type cell struct{ x, y int }
	path := []cell{{cx, cy}}
	for h := 0; h < hops; h++ {
		if rng.Float64() < 0.35 { // turn
			if rng.Float64() < 0.5 {
				dir = (dir + 1) % 4
			} else {
				dir = (dir + 3) % 4
			}
		}
		nx, ny := path[len(path)-1].x+dirs[dir][0], path[len(path)-1].y+dirs[dir][1]
		if nx < 0 || ny < 0 || nx >= cells || ny >= cells {
			dir = (dir + 2) % 4
			nx, ny = path[len(path)-1].x+dirs[dir][0], path[len(path)-1].y+dirs[dir][1]
			if nx < 0 || ny < 0 || nx >= cells || ny >= cells {
				break
			}
		}
		path = append(path, cell{nx, ny})
	}
	if len(path) < 2 {
		return traj.New(id, nil)
	}

	// Continuous waypoints with street jitter.
	jitter := cfg.GridSpacing * 0.06
	way := make([]traj.Point, len(path))
	speed := 5 + rng.Float64()*10 // m/s per trip
	tNow := rng.Float64() * 86400
	for i, c := range path {
		x := float64(c.x)*cfg.GridSpacing + rng.NormFloat64()*jitter
		y := float64(c.y)*cfg.GridSpacing + rng.NormFloat64()*jitter
		if i > 0 {
			segSpeed := speed * (0.7 + rng.Float64()*0.6) // ±30% per street
			d := math.Hypot(x-way[i-1].X, y-way[i-1].Y)
			tNow += d / segSpeed
		}
		way[i] = traj.P(x, y, tNow)
	}

	// Sample the continuous movement at irregular intervals around the
	// trip's own base rate.
	base := cfg.SampleEvery
	if cfg.SampleSpread > 1 {
		base *= math.Exp((rng.Float64()*2 - 1) * math.Log(cfg.SampleSpread))
	}
	wayTraj := traj.New(id, way)
	pts := []traj.Point{way[0]}
	tCur := way[0].T
	end := way[len(way)-1].T
	for tCur < end {
		dt := base * (0.5 + rng.Float64())
		tCur += dt
		if tCur >= end {
			break
		}
		xy := wayTraj.At(tCur)
		pts = append(pts, traj.P(xy.X, xy.Y, tCur))
	}
	pts = append(pts, way[len(way)-1])
	return traj.New(id, pts)
}
