package traj

import (
	"math"
	"sort"
)

// FromLatLon converts WGS-84 latitude/longitude samples into the planar
// metre coordinates the rest of the library expects, using the
// equirectangular projection about the dataset's mean latitude — accurate
// to well under a metre at city extents, which is all trajectory matching
// needs. Each input is (lat°, lon°, unix-seconds).
func FromLatLon(id int, samples [][3]float64) *Trajectory {
	if len(samples) == 0 {
		return New(id, nil)
	}
	const earthRadius = 6371000.0 // metres
	var meanLat float64
	for _, s := range samples {
		meanLat += s[0]
	}
	meanLat /= float64(len(samples))
	cos := math.Cos(meanLat * math.Pi / 180)
	pts := make([]Point, len(samples))
	for i, s := range samples {
		pts[i] = Point{
			X: s[1] * math.Pi / 180 * earthRadius * cos,
			Y: s[0] * math.Pi / 180 * earthRadius,
			T: s[2],
		}
	}
	return New(id, pts)
}

// SplitTrips partitions a raw point stream into trips following the paper's
// Beijing preprocessing (Section V-A): a new trip starts whenever the object
// is stationary for more than maxStationary seconds or the gap between
// consecutive samples exceeds maxGap seconds. Points must be time-ordered.
// Trips shorter than two points are dropped. IDs are assigned sequentially
// starting at firstID.
func SplitTrips(points []Point, maxGap, maxStationary float64, firstID int) []*Trajectory {
	var trips []*Trajectory
	var cur []Point
	flush := func() {
		if len(cur) >= 2 {
			pts := make([]Point, len(cur))
			copy(pts, cur)
			trips = append(trips, New(firstID+len(trips), pts))
		}
		cur = cur[:0]
	}
	var stationarySince = math.NaN()
	for i, p := range points {
		if i > 0 {
			prev := points[i-1]
			gap := p.T - prev.T
			if gap > maxGap {
				flush()
				stationarySince = math.NaN()
			} else if prev.Dist(p) == 0 {
				if math.IsNaN(stationarySince) {
					stationarySince = prev.T
				}
				if p.T-stationarySince > maxStationary {
					flush()
					stationarySince = math.NaN()
				}
			} else {
				stationarySince = math.NaN()
			}
		}
		cur = append(cur, p)
	}
	flush()
	return trips
}

// Resample returns a copy of t re-interpolated to a uniform spatial spacing:
// consecutive points are at most `spacing` apart along the original
// polyline, with original sample points preserved. This is the
// interpolation preprocessing the paper applies to produce EDR-I.
func Resample(t *Trajectory, spacing float64) *Trajectory {
	if spacing <= 0 || t.NumSegments() == 0 {
		return t.Clone()
	}
	pts := make([]Point, 0, t.NumPoints())
	pts = append(pts, t.Points[0])
	for i := 0; i < t.NumSegments(); i++ {
		seg := t.Segment(i)
		l := seg.Length()
		if l > spacing {
			n := int(math.Ceil(l / spacing))
			for k := 1; k < n; k++ {
				pts = append(pts, seg.At(float64(k)/float64(n)))
			}
		}
		pts = append(pts, seg.S2)
	}
	out := &Trajectory{ID: t.ID, Label: t.Label, Points: pts}
	return out
}

// ResampleUniform returns a copy of t re-sampled at uniform arc-length
// intervals measured from the trajectory's start: points sit at arc lengths
// 0, spacing, 2·spacing, …, plus the final endpoint. Unlike Resample, the
// output is independent of where the original samples fell, which is what
// the EDR-I preprocessing needs: two differently-sampled recordings of the
// same shape re-interpolate to (near-)identical point sequences.
func ResampleUniform(t *Trajectory, spacing float64) *Trajectory {
	if spacing <= 0 || t.NumSegments() == 0 {
		return t.Clone()
	}
	pts := []Point{t.Points[0]}
	target := spacing
	walked := 0.0
	for i := 0; i < t.NumSegments(); i++ {
		seg := t.Segment(i)
		l := seg.Length()
		for l > 0 && target <= walked+l {
			frac := (target - walked) / l
			pts = append(pts, seg.At(frac))
			target += spacing
		}
		walked += l
	}
	last := t.Points[t.NumPoints()-1]
	// Snap an interpolated point that lands (within float noise) on the
	// endpoint to the exact endpoint rather than duplicating it.
	if n := len(pts); pts[n-1].Dist(last) < 1e-9*(1+spacing) {
		pts[n-1] = last
	} else {
		pts = append(pts, last)
	}
	out := &Trajectory{ID: t.ID, Label: t.Label, Points: pts}
	return out
}

// ResampleUniformAll applies ResampleUniform to every trajectory.
func ResampleUniformAll(db []*Trajectory, spacing float64) []*Trajectory {
	out := make([]*Trajectory, len(db))
	for i, t := range db {
		out[i] = ResampleUniform(t, spacing)
	}
	return out
}

// MaxDensity returns the maximum sampling density (points per unit length)
// observed across db, i.e. the reciprocal of the minimum positive segment
// length. The paper's interpolation argument requires processing every
// trajectory to this density. Returns 0 for databases with no positive
// segments.
func MaxDensity(db []*Trajectory) float64 {
	min := math.Inf(1)
	for _, t := range db {
		for i := 0; i < t.NumSegments(); i++ {
			if l := t.Segment(i).Length(); l > 0 && l < min {
				min = l
			}
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return 1 / min
}

// ResampleAll resamples every trajectory in db to the given spacing,
// returning a new slice of new trajectories.
func ResampleAll(db []*Trajectory, spacing float64) []*Trajectory {
	out := make([]*Trajectory, len(db))
	for i, t := range db {
		out[i] = Resample(t, spacing)
	}
	return out
}

// PercentileSegmentLength returns the p-th percentile (p in [0,1]) of
// positive segment lengths across the database. The paper's EDR-I
// preprocessing targets the maximum observed density, i.e. a spacing near
// the minimum segment length; a low percentile approximates that without
// letting one degenerate segment explode the dataset.
func PercentileSegmentLength(db []*Trajectory, p float64) float64 {
	var ls []float64
	for _, t := range db {
		for i := 0; i < t.NumSegments(); i++ {
			if l := t.Segment(i).Length(); l > 0 {
				ls = append(ls, l)
			}
		}
	}
	if len(ls) == 0 {
		return 0
	}
	sort.Float64s(ls)
	idx := int(p * float64(len(ls)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(ls) {
		idx = len(ls) - 1
	}
	return ls[idx]
}

// MedianSegmentLength returns the median positive segment length across the
// database. The EDR-I harness uses it as the uniform re-interpolation
// spacing (using MaxDensity verbatim explodes the dataset, which is exactly
// the pre-processing cost the paper warns about; the median preserves the
// experiment at tractable cost).
func MedianSegmentLength(db []*Trajectory) float64 {
	var ls []float64
	for _, t := range db {
		for i := 0; i < t.NumSegments(); i++ {
			if l := t.Segment(i).Length(); l > 0 {
				ls = append(ls, l)
			}
		}
	}
	if len(ls) == 0 {
		return 0
	}
	sort.Float64s(ls)
	return ls[len(ls)/2]
}
