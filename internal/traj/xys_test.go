package traj

import (
	"testing"
)

func TestXYsMatchesPoints(t *testing.T) {
	tr := FromXY(1, 0, 0, 3, 4, 10, 4)
	xy := tr.XYs()
	if len(xy) != len(tr.Points) {
		t.Fatalf("XYs len %d, want %d", len(xy), len(tr.Points))
	}
	for i, p := range tr.Points {
		if xy[i] != p.XY() {
			t.Fatalf("XYs[%d] = %v, want %v", i, xy[i], p.XY())
		}
	}
	// The cache is computed once: repeated calls return the same slice.
	again := tr.XYs()
	if &again[0] != &xy[0] {
		t.Error("XYs recomputed instead of returning the cached slice")
	}
}

func TestXYsEmptyTrajectory(t *testing.T) {
	tr := New(0, nil)
	if got := tr.XYs(); len(got) != 0 {
		t.Fatalf("XYs of empty trajectory has %d entries", len(got))
	}
}

func TestXYsConcurrentFirstUse(t *testing.T) {
	tr := FromXY(2, 0, 0, 1, 1, 2, 0, 3, 1)
	done := make(chan bool, 8)
	for w := 0; w < 8; w++ {
		go func() {
			xy := tr.XYs()
			ok := len(xy) == len(tr.Points)
			for i, p := range tr.Points {
				ok = ok && xy[i] == p.XY()
			}
			done <- ok
		}()
	}
	for w := 0; w < 8; w++ {
		if !<-done {
			t.Fatal("concurrent XYs returned wrong projection")
		}
	}
}
