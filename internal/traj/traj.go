// Package traj implements the paper's trajectory model (Definitions 1–3):
// a trajectory is a temporally ordered sequence of spatio-temporal points,
// viewed as a chain of spatio-temporal segments whose interpolating function
// is the straight line between consecutive samples.
//
// The package also provides the dataset-preparation operations used in the
// paper's experimental setup: trip splitting on time gaps, uniform
// re-interpolation (the EDR-I preprocessing) and basic validation.
package traj

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"trajmatch/internal/geom"
)

// Point is a spatio-temporal point: a 2-D location and the timestamp (in
// seconds, arbitrary epoch) at which it was recorded.
type Point struct {
	X, Y float64
	T    float64
}

// P is shorthand for Point{x, y, t}.
func P(x, y, t float64) Point { return Point{X: x, Y: y, T: t} }

// XY returns the spatial component of p.
func (p Point) XY() geom.Point { return geom.Point{X: p.X, Y: p.Y} }

// Dist returns the spatial Euclidean distance between p and q; timestamps
// do not participate (Section III of the paper).
func (p Point) Dist(q Point) float64 { return p.XY().Dist(q.XY()) }

// Segment is a spatio-temporal segment (Definition 3): the straight-line
// movement between two temporally consecutive samples.
type Segment struct {
	S1, S2 Point
}

// Length returns the spatial length of e.
func (e Segment) Length() float64 { return e.S1.Dist(e.S2) }

// Duration returns the time spent traversing e.
func (e Segment) Duration() float64 { return e.S2.T - e.S1.T }

// Speed returns length/duration; +Inf for an instantaneous move of nonzero
// length and 0 for a degenerate segment.
func (e Segment) Speed() float64 {
	d := e.Duration()
	l := e.Length()
	if d == 0 {
		if l == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return l / d
}

// Spatial returns the purely spatial segment of e.
func (e Segment) Spatial() geom.Segment { return geom.Seg(e.S1.XY(), e.S2.XY()) }

// At returns the interpolated spatio-temporal point a fraction frac ∈ [0,1]
// along e's spatial extent; the timestamp follows the paper's proportional
// rule t = s1.t + dist(s1,p)/speed(e).
func (e Segment) At(frac float64) Point {
	xy := geom.Lerp(e.S1.XY(), e.S2.XY(), frac)
	return Point{X: xy.X, Y: xy.Y, T: e.S1.T + frac*e.Duration()}
}

// Project returns the spatio-temporal point on e closest (spatially) to q,
// i.e. the paper's p^{ins(e, q)} with its interpolated timestamp.
func (e Segment) Project(q geom.Point) Point {
	frac := e.Spatial().ClosestFrac(q)
	return e.At(frac)
}

// Trajectory is a temporally ordered sequence of spatio-temporal points
// (Definition 1). Exported fields identify the trajectory within datasets;
// ID is unique within a database, Label carries a class for labelled data
// (the ASL-style experiments).
type Trajectory struct {
	ID     int
	Label  int
	Points []Point

	// xy caches the spatial projection of Points, computed on first use by
	// XYs and never invalidated: a trajectory is immutable once distances
	// have been computed against it. Callers that edit Points in place must
	// do so before the first XYs call (in practice: mutate fresh Clones).
	// The atomic makes concurrent first calls race-free — both goroutines
	// compute the same slice and either store wins.
	xy atomic.Pointer[[]geom.Point]

	// view and length cache the SoA coordinate view and the total spatial
	// length under the same immutability contract as xy. Both may be
	// installed eagerly by Prime (the arena storage layer backs views with
	// its shared slabs) or filled lazily on first use.
	view   atomic.Pointer[View]
	length atomic.Pointer[float64]
}

// View is the structure-of-arrays spatial projection of a trajectory: the
// sample coordinates split into parallel X and Y slices of equal length.
// The hot DP kernels consume Views so their inner loops stream over
// contiguous float64 memory instead of striding through []Point records;
// arena-backed trajectories alias shard-wide slabs here. The slices are
// shared and must be treated as read-only.
type View struct {
	X, Y []float64
}

// New returns a trajectory over pts with the given id and no label.
func New(id int, pts []Point) *Trajectory {
	return &Trajectory{ID: id, Points: pts}
}

// FromXY builds a trajectory from alternating x,y pairs with unit-spaced
// timestamps. It is a convenience for tests and examples.
func FromXY(id int, xy ...float64) *Trajectory {
	if len(xy)%2 != 0 {
		panic("traj.FromXY: odd number of coordinates")
	}
	pts := make([]Point, len(xy)/2)
	for i := range pts {
		pts[i] = Point{X: xy[2*i], Y: xy[2*i+1], T: float64(i)}
	}
	return New(id, pts)
}

// NumPoints returns the number of sampled points.
func (t *Trajectory) NumPoints() int { return len(t.Points) }

// NumSegments returns the number of st-segments, max(0, len(points)-1).
func (t *Trajectory) NumSegments() int {
	if len(t.Points) < 2 {
		return 0
	}
	return len(t.Points) - 1
}

// Segment returns the i-th st-segment.
func (t *Trajectory) Segment(i int) Segment {
	return Segment{S1: t.Points[i], S2: t.Points[i+1]}
}

// XYs returns the spatial projection of the sample points, one geom.Point
// per sample. The slice is computed once and cached on the trajectory
// (trajectories are immutable after load), so the per-distance-call
// conversion loops of the EDwP kernel disappear. The returned slice is
// shared: callers must treat it as read-only.
func (t *Trajectory) XYs() []geom.Point {
	if p := t.xy.Load(); p != nil {
		return *p
	}
	pts := make([]geom.Point, len(t.Points))
	for i, p := range t.Points {
		pts[i] = p.XY()
	}
	t.xy.Store(&pts)
	return pts
}

// View returns the SoA spatial projection of the sample points, cached on
// the trajectory like XYs. Arena-backed trajectories have it pre-installed
// (pointing into the shard slab) via Prime; standalone trajectories — query
// arguments, test fixtures — compute it once on first use.
func (t *Trajectory) View() View {
	if v := t.view.Load(); v != nil {
		return *v
	}
	n := len(t.Points)
	buf := make([]float64, 2*n)
	x, y := buf[:n:n], buf[n:]
	for i, p := range t.Points {
		x[i] = p.X
		y[i] = p.Y
	}
	v := &View{X: x, Y: y}
	t.view.Store(v)
	return *v
}

// Prime installs precomputed caches: a coordinate view (typically aliasing
// an arena slab) and the total spatial length. The values must equal what
// View and Length would compute — Prime only changes where the memory
// lives, never a result.
func (t *Trajectory) Prime(v View, length float64) {
	t.view.Store(&v)
	t.length.Store(&length)
}

// Length returns the total spatial length (Eq. 1), computed once and
// cached: the normalised distance of Eq. 4 divides by it on every kernel
// call, so the repeated O(n) sqrt walk showed up in query profiles.
func (t *Trajectory) Length() float64 {
	if l := t.length.Load(); l != nil {
		return *l
	}
	var sum float64
	for i := 0; i < t.NumSegments(); i++ {
		sum += t.Segment(i).Length()
	}
	t.length.Store(&sum)
	return sum
}

// Duration returns the elapsed time from first to last sample.
func (t *Trajectory) Duration() float64 {
	if len(t.Points) == 0 {
		return 0
	}
	return t.Points[len(t.Points)-1].T - t.Points[0].T
}

// AverageSpeed returns Length/Duration, or 0 for degenerate trajectories.
func (t *Trajectory) AverageSpeed() float64 {
	d := t.Duration()
	if d <= 0 {
		return 0
	}
	return t.Length() / d
}

// Bounds returns the spatial bounding rectangle of all sampled points.
func (t *Trajectory) Bounds() geom.Rect {
	r := geom.Empty()
	for _, p := range t.Points {
		r = r.ExtendPoint(p.XY())
	}
	return r
}

// Sub returns the sub-trajectory T[a..b] (Definition 2; point indices,
// inclusive). The points slice is shared, not copied.
func (t *Trajectory) Sub(a, b int) *Trajectory {
	return &Trajectory{ID: t.ID, Label: t.Label, Points: t.Points[a : b+1]}
}

// Clone returns a deep copy of t.
func (t *Trajectory) Clone() *Trajectory {
	pts := make([]Point, len(t.Points))
	copy(pts, t.Points)
	return &Trajectory{ID: t.ID, Label: t.Label, Points: pts}
}

// String renders a compact description for debugging.
func (t *Trajectory) String() string {
	return fmt.Sprintf("T%d[%d pts, len %.2f]", t.ID, len(t.Points), t.Length())
}

// At returns the interpolated position at absolute time ts, clamped to the
// trajectory's time span. It binary-searches the sample timestamps, so the
// cost is O(log n). Used by the DISSIM baseline.
func (t *Trajectory) At(ts float64) geom.Point {
	pts := t.Points
	if len(pts) == 0 {
		return geom.Point{}
	}
	if ts <= pts[0].T {
		return pts[0].XY()
	}
	last := pts[len(pts)-1]
	if ts >= last.T {
		return last.XY()
	}
	i := sort.Search(len(pts), func(i int) bool { return pts[i].T > ts }) - 1
	seg := Segment{S1: pts[i], S2: pts[i+1]}
	d := seg.Duration()
	if d <= 0 {
		return pts[i].XY()
	}
	frac := (ts - pts[i].T) / d
	xy := geom.Lerp(seg.S1.XY(), seg.S2.XY(), frac)
	return xy
}

// Validation errors returned by Validate.
var (
	ErrTooFewPoints  = errors.New("traj: trajectory needs at least 2 points")
	ErrTimeNotSorted = errors.New("traj: timestamps not non-decreasing")
	ErrNonFinite     = errors.New("traj: non-finite coordinate or timestamp")
)

// Validate checks the structural invariants every indexed trajectory must
// satisfy: at least two points, finite coordinates and non-decreasing
// timestamps.
func (t *Trajectory) Validate() error {
	if len(t.Points) < 2 {
		return fmt.Errorf("%w (got %d)", ErrTooFewPoints, len(t.Points))
	}
	for i, p := range t.Points {
		if !finite(p.X) || !finite(p.Y) || !finite(p.T) {
			return fmt.Errorf("%w at index %d", ErrNonFinite, i)
		}
		if i > 0 && p.T < t.Points[i-1].T {
			return fmt.Errorf("%w at index %d", ErrTimeNotSorted, i)
		}
	}
	return nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Equal reports whether two trajectories have identical point sequences.
func Equal(a, b *Trajectory) bool {
	if len(a.Points) != len(b.Points) {
		return false
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			return false
		}
	}
	return true
}
