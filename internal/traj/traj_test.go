package traj

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"trajmatch/internal/geom"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSegmentBasics(t *testing.T) {
	e := Segment{S1: P(0, 0, 0), S2: P(3, 4, 10)}
	if got := e.Length(); !almost(got, 5) {
		t.Errorf("Length = %v, want 5", got)
	}
	if got := e.Duration(); !almost(got, 10) {
		t.Errorf("Duration = %v, want 10", got)
	}
	if got := e.Speed(); !almost(got, 0.5) {
		t.Errorf("Speed = %v, want 0.5", got)
	}
}

func TestSegmentSpeedEdgeCases(t *testing.T) {
	zeroDur := Segment{S1: P(0, 0, 5), S2: P(1, 0, 5)}
	if got := zeroDur.Speed(); !math.IsInf(got, 1) {
		t.Errorf("instantaneous move Speed = %v, want +Inf", got)
	}
	degenerate := Segment{S1: P(1, 1, 5), S2: P(1, 1, 5)}
	if got := degenerate.Speed(); got != 0 {
		t.Errorf("degenerate Speed = %v, want 0", got)
	}
}

// Example 1 of the paper: T1.e1 = [(0,0,0),(0,10,30)]; the projection of
// T2.e1.s2 = (2,7,14) onto it must be (0,7) with interpolated timestamp 21.
func TestProjectPaperExample1(t *testing.T) {
	e := Segment{S1: P(0, 0, 0), S2: P(0, 10, 30)}
	got := e.Project(geom.Pt(2, 7))
	if !almost(got.X, 0) || !almost(got.Y, 7) {
		t.Errorf("projected location = (%v,%v), want (0,7)", got.X, got.Y)
	}
	if !almost(got.T, 21) {
		t.Errorf("projected timestamp = %v, want 21", got.T)
	}
}

func TestTrajectoryLengthAndSpeed(t *testing.T) {
	tr := New(1, []Point{P(0, 0, 0), P(3, 4, 5), P(3, 10, 10)})
	if got := tr.Length(); !almost(got, 11) {
		t.Errorf("Length = %v, want 11", got)
	}
	if got := tr.Duration(); !almost(got, 10) {
		t.Errorf("Duration = %v, want 10", got)
	}
	if got := tr.AverageSpeed(); !almost(got, 1.1) {
		t.Errorf("AverageSpeed = %v, want 1.1", got)
	}
	if got := tr.NumSegments(); got != 2 {
		t.Errorf("NumSegments = %v, want 2", got)
	}
}

func TestFromXY(t *testing.T) {
	tr := FromXY(7, 0, 0, 1, 1, 2, 0)
	if tr.NumPoints() != 3 || tr.ID != 7 {
		t.Fatalf("FromXY built %v", tr)
	}
	if tr.Points[2] != P(2, 0, 2) {
		t.Errorf("third point = %v, want (2,0,2)", tr.Points[2])
	}
	defer func() {
		if recover() == nil {
			t.Error("FromXY with odd coords did not panic")
		}
	}()
	FromXY(0, 1, 2, 3)
}

func TestSub(t *testing.T) {
	tr := FromXY(1, 0, 0, 1, 0, 2, 0, 3, 0)
	sub := tr.Sub(1, 2)
	if sub.NumPoints() != 2 {
		t.Fatalf("Sub has %d points, want 2", sub.NumPoints())
	}
	if sub.Points[0] != tr.Points[1] || sub.Points[1] != tr.Points[2] {
		t.Error("Sub points mismatch")
	}
}

func TestAtInterpolation(t *testing.T) {
	tr := New(1, []Point{P(0, 0, 0), P(10, 0, 10), P(10, 10, 20)})
	tests := []struct {
		ts   float64
		want geom.Point
	}{
		{-5, geom.Pt(0, 0)},  // clamp before start
		{0, geom.Pt(0, 0)},   // exact start
		{5, geom.Pt(5, 0)},   // mid first segment
		{10, geom.Pt(10, 0)}, // sample point
		{15, geom.Pt(10, 5)}, // mid second segment
		{20, geom.Pt(10, 10)},
		{99, geom.Pt(10, 10)}, // clamp after end
	}
	for _, tt := range tests {
		if got := tr.At(tt.ts); !almost(got.Dist(tt.want), 0) {
			t.Errorf("At(%v) = %v, want %v", tt.ts, got, tt.want)
		}
	}
}

func TestValidate(t *testing.T) {
	ok := FromXY(1, 0, 0, 1, 1)
	if err := ok.Validate(); err != nil {
		t.Errorf("valid trajectory rejected: %v", err)
	}
	short := New(1, []Point{P(0, 0, 0)})
	if err := short.Validate(); err == nil {
		t.Error("1-point trajectory accepted")
	}
	unsorted := New(1, []Point{P(0, 0, 5), P(1, 1, 3)})
	if err := unsorted.Validate(); err == nil {
		t.Error("time-unsorted trajectory accepted")
	}
	nan := New(1, []Point{P(0, 0, 0), P(math.NaN(), 1, 1)})
	if err := nan.Validate(); err == nil {
		t.Error("NaN trajectory accepted")
	}
}

func TestSplitTripsGap(t *testing.T) {
	pts := []Point{
		P(0, 0, 0), P(1, 0, 60), P(2, 0, 120),
		// 20-minute gap: new trip.
		P(10, 0, 120+1200), P(11, 0, 120+1260),
	}
	trips := SplitTrips(pts, 15*60, 15*60, 100)
	if len(trips) != 2 {
		t.Fatalf("got %d trips, want 2", len(trips))
	}
	if trips[0].NumPoints() != 3 || trips[1].NumPoints() != 2 {
		t.Errorf("trip sizes = %d,%d want 3,2", trips[0].NumPoints(), trips[1].NumPoints())
	}
	if trips[0].ID != 100 || trips[1].ID != 101 {
		t.Errorf("trip IDs = %d,%d want 100,101", trips[0].ID, trips[1].ID)
	}
}

func TestSplitTripsStationary(t *testing.T) {
	// Cab parked at (5,5) from t=100 to t=1200 (>15 min): split.
	pts := []Point{
		P(0, 0, 0), P(5, 5, 100), P(5, 5, 400), P(5, 5, 800), P(5, 5, 1200),
		P(6, 5, 1260), P(7, 5, 1320),
	}
	trips := SplitTrips(pts, 15*60, 15*60, 0)
	if len(trips) != 2 {
		t.Fatalf("got %d trips, want 2", len(trips))
	}
}

func TestSplitTripsDropsSingletons(t *testing.T) {
	pts := []Point{P(0, 0, 0), P(0, 0, 1e6), P(1, 0, 2e6)}
	trips := SplitTrips(pts, 900, 900, 0)
	for _, tr := range trips {
		if tr.NumPoints() < 2 {
			t.Errorf("trip with %d points survived", tr.NumPoints())
		}
	}
}

func TestResamplePreservesShapeAndLength(t *testing.T) {
	tr := New(1, []Point{P(0, 0, 0), P(10, 0, 10), P(10, 10, 20)})
	rs := Resample(tr, 1.5)
	if !almost(rs.Length(), tr.Length()) {
		t.Errorf("resampled length %v != original %v", rs.Length(), tr.Length())
	}
	for i := 0; i < rs.NumSegments(); i++ {
		if l := rs.Segment(i).Length(); l > 1.5+1e-9 {
			t.Errorf("segment %d length %v exceeds spacing", i, l)
		}
	}
	// Original corner point must survive.
	found := false
	for _, p := range rs.Points {
		if p == P(10, 0, 10) {
			found = true
		}
	}
	if !found {
		t.Error("corner sample lost by resampling")
	}
	// Timestamps stay sorted.
	if err := rs.Validate(); err != nil {
		t.Errorf("resampled trajectory invalid: %v", err)
	}
}

func TestResampleNoOp(t *testing.T) {
	tr := FromXY(1, 0, 0, 1, 0)
	if got := Resample(tr, 0); !Equal(got, tr) {
		t.Error("spacing 0 should clone unchanged")
	}
	if got := Resample(tr, 100); got.NumPoints() != 2 {
		t.Errorf("coarse spacing added points: %d", got.NumPoints())
	}
}

// Resampling never changes trajectory length, regardless of spacing.
func TestResampleLengthInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64, spacingRaw float64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = P(r.Float64()*100, r.Float64()*100, float64(i)*10)
		}
		tr := New(0, pts)
		spacing := math.Abs(math.Mod(spacingRaw, 50)) + 0.1
		rs := Resample(tr, spacing)
		return almost(rs.Length(), tr.Length()) && rs.Validate() == nil
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestResampleUniformIgnoresOriginalBoundaries(t *testing.T) {
	// The same shape sampled two different ways must re-interpolate to
	// near-identical sequences — the property EDR-I depends on.
	shape := New(0, []Point{P(0, 0, 0), P(10, 0, 10), P(10, 10, 20)})
	other := Resample(shape, 1.7) // different sampling of the same polyline
	u1 := ResampleUniform(shape, 2)
	u2 := ResampleUniform(other, 2)
	if u1.NumPoints() != u2.NumPoints() {
		t.Fatalf("uniform resampling differs: %d vs %d points", u1.NumPoints(), u2.NumPoints())
	}
	for i := range u1.Points {
		if d := u1.Points[i].Dist(u2.Points[i]); d > 1e-9 {
			t.Fatalf("point %d differs by %v", i, d)
		}
	}
	// Spacing is uniform except possibly the final step.
	for i := 0; i < u1.NumSegments()-1; i++ {
		if l := u1.Segment(i).Length(); math.Abs(l-2) > 1e-9 {
			t.Errorf("segment %d length %v, want 2", i, l)
		}
	}
	if err := u1.Validate(); err != nil {
		t.Errorf("uniform resample invalid: %v", err)
	}
}

func TestResampleUniformDegenerate(t *testing.T) {
	tr := FromXY(1, 0, 0, 1, 0)
	if got := ResampleUniform(tr, 0); !Equal(got, tr) {
		t.Error("spacing 0 should clone")
	}
	if got := ResampleUniform(tr, 10); got.NumPoints() != 2 {
		t.Errorf("coarse uniform resample has %d points", got.NumPoints())
	}
}

func TestMaxDensityAndMedian(t *testing.T) {
	db := []*Trajectory{
		FromXY(0, 0, 0, 2, 0, 2, 2),     // segment lengths 2, 2
		FromXY(1, 0, 0, 0, 0.5, 0, 4.5), // lengths 0.5, 4
	}
	if got := MaxDensity(db); !almost(got, 2) {
		t.Errorf("MaxDensity = %v, want 2 (1/0.5)", got)
	}
	if got := MedianSegmentLength(db); !almost(got, 2) {
		t.Errorf("MedianSegmentLength = %v, want 2", got)
	}
	if got := MaxDensity(nil); got != 0 {
		t.Errorf("MaxDensity(nil) = %v, want 0", got)
	}
}

func TestFromLatLon(t *testing.T) {
	// Two points ~111m apart in latitude (0.001°) at the equator.
	tr := FromLatLon(1, [][3]float64{
		{0.0000, 10.0000, 0},
		{0.0010, 10.0000, 60},
	})
	if tr.NumPoints() != 2 {
		t.Fatalf("got %d points", tr.NumPoints())
	}
	d := tr.Points[0].Dist(tr.Points[1])
	if math.Abs(d-111.19) > 1 {
		t.Errorf("0.001° latitude = %vm, want ≈111.19m", d)
	}
	// Longitude distances shrink with latitude: the same 0.001° longitude
	// at 60°N is about half the equatorial value.
	north := FromLatLon(2, [][3]float64{
		{60, 10.000, 0},
		{60, 10.001, 60},
	})
	dn := north.Points[0].Dist(north.Points[1])
	if math.Abs(dn-111.19/2) > 1.5 {
		t.Errorf("0.001° longitude at 60°N = %vm, want ≈55.6m", dn)
	}
	if got := FromLatLon(3, nil); got.NumPoints() != 0 {
		t.Errorf("empty input produced %d points", got.NumPoints())
	}
}

func TestBounds(t *testing.T) {
	tr := FromXY(0, -1, 2, 3, -4, 0, 0)
	b := tr.Bounds()
	want := geom.RectOf(geom.Pt(-1, 2), geom.Pt(3, -4))
	if b != want {
		t.Errorf("Bounds = %v, want %v", b, want)
	}
}

func TestCloneIndependence(t *testing.T) {
	tr := FromXY(0, 0, 0, 1, 1)
	cl := tr.Clone()
	cl.Points[0].X = 99
	if tr.Points[0].X == 99 {
		t.Error("Clone shares backing array")
	}
}
