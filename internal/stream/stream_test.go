package stream

import (
	"math"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"trajmatch/internal/sketch"
	"trajmatch/internal/traj"
)

func hashMod(id, n int) int {
	if id < 0 {
		id = -id
	}
	return id % n
}

func pt(x, y, t float64) traj.Point { return traj.Point{X: x, Y: y, T: t} }

func testBuffer(n int, onChange func()) *Buffer {
	p := sketch.Params{CellSize: 10, Seed: 1}.WithDefaults()
	return NewBuffer(n, hashMod, onChange, &p)
}

func TestBufferAppendSnapshotRemove(t *testing.T) {
	var bumps int
	b := testBuffer(4, func() { bumps++ })
	now := time.Unix(0, 0)

	if off := b.Append(7, 3, []traj.Point{pt(0, 0, 0), pt(5, 5, 1)}, now, nil); off != 0 {
		t.Fatalf("first append offset = %d", off)
	}
	if off := b.Append(7, 0, []traj.Point{pt(25, 5, 2)}, now, nil); off != 2 {
		t.Fatalf("second append offset = %d", off)
	}
	if b.Len(7) != 3 || b.Len(8) != 0 || !b.Has(7) || b.Has(8) {
		t.Fatalf("Len/Has wrong: %d %d", b.Len(7), b.Len(8))
	}
	s, ok := b.Get(7)
	if !ok || s.ID != 7 || s.Label != 3 || len(s.Points) != 3 {
		t.Fatalf("Get: %+v ok=%v", s, ok)
	}
	// The first-append snapshot must stay stable across later appends.
	early := s.Points
	b.Append(7, 0, []traj.Point{pt(30, 30, 3)}, now, nil)
	if len(early) != 3 || early[2] != pt(25, 5, 2) {
		t.Fatalf("snapshot mutated by later append")
	}
	if b.Count() != 1 || b.Points() != 4 {
		t.Fatalf("Count=%d Points=%d", b.Count(), b.Points())
	}
	if bumps != 3 {
		t.Fatalf("onChange fired %d times, want 3", bumps)
	}
	snap, ok := b.Remove(7)
	if !ok || len(snap.Points) != 4 || snap.Label != 3 {
		t.Fatalf("Remove: %+v ok=%v", snap, ok)
	}
	if _, ok := b.Remove(7); ok {
		t.Fatal("double remove succeeded")
	}
	if bumps != 4 {
		t.Fatalf("onChange after remove fired %d times, want 4", bumps)
	}
}

func TestBufferIdleBefore(t *testing.T) {
	b := testBuffer(2, nil)
	t0 := time.Unix(100, 0)
	b.Append(1, 0, []traj.Point{pt(0, 0, 0)}, t0, nil)
	b.Append(2, 0, []traj.Point{pt(0, 0, 0)}, t0.Add(10*time.Second), nil)
	got := b.IdleBefore(t0.Add(5 * time.Second))
	if !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("IdleBefore = %v, want [1]", got)
	}
	// A fresh append revives the track.
	b.Append(1, 0, []traj.Point{pt(1, 1, 1)}, t0.Add(20*time.Second), nil)
	if got := b.IdleBefore(t0.Add(5 * time.Second)); len(got) != 0 {
		t.Fatalf("IdleBefore after revive = %v", got)
	}
}

func TestTrackGatingState(t *testing.T) {
	b := testBuffer(1, nil)
	now := time.Unix(0, 0)
	b.Append(1, 0, []traj.Point{pt(0, 0, 0)}, now, func(tr *Track, fresh []uint64) {
		if len(fresh) != 1 {
			t.Fatalf("fresh tokens = %d, want 1", len(fresh))
		}
		if tr.Gated(5) || tr.Matched(5) {
			t.Fatal("fresh track pre-gated")
		}
		tr.SetGated(5)
		tr.SetMatched(5)
		tr.SetLastWatchID(5)
	})
	b.Append(1, 0, []traj.Point{pt(100, 100, 1)}, now, func(tr *Track, fresh []uint64) {
		if !tr.Gated(5) || !tr.Matched(5) || tr.LastWatchID() != 5 {
			t.Fatal("gating state not retained")
		}
		tr.ForgetWatch(5)
		if tr.Gated(5) || tr.Matched(5) {
			t.Fatal("ForgetWatch left state")
		}
	})
}

func TestRegistryCollide(t *testing.T) {
	r := NewRegistry()
	pat := &traj.Trajectory{ID: -1, Points: []traj.Point{pt(0, 0, 0), pt(1, 1, 1)}}
	idA := r.Add(&Watch{Pattern: pat, Metric: "edwp", Threshold: 1}, []uint64{10, 20})
	idB := r.Add(&Watch{Pattern: pat, Metric: "edwp", Threshold: 1}, []uint64{20, 30})
	idC := r.Add(&Watch{Pattern: pat, Metric: "edwp", K: 2, Exact: true}, []uint64{10})
	if idA != 1 || idB != 2 || idC != 3 {
		t.Fatalf("ids = %d %d %d", idA, idB, idC)
	}
	if got := r.Collide([]uint64{20}); !reflect.DeepEqual(got, []int{idA, idB}) {
		t.Fatalf("Collide(20) = %v", got)
	}
	if got := r.Collide([]uint64{10}); !reflect.DeepEqual(got, []int{idA}) {
		t.Fatalf("Collide(10) = %v (exact watch must not be gated)", got)
	}
	if got := r.Collide([]uint64{99}); got != nil {
		t.Fatalf("Collide(99) = %v", got)
	}
	after := r.After(idA)
	if len(after) != 2 || after[0].ID != idB || after[1].ID != idC {
		t.Fatalf("After(%d) = %v", idA, after)
	}
	if r.MaxID() != 3 || r.Count() != 3 {
		t.Fatalf("MaxID=%d Count=%d", r.MaxID(), r.Count())
	}
	if !r.Remove(idB) || r.Remove(idB) {
		t.Fatal("Remove")
	}
	if got := r.Collide([]uint64{20, 30}); !reflect.DeepEqual(got, []int{idA}) {
		t.Fatalf("Collide after remove = %v", got)
	}
	if r.Get(idB) != nil || r.Get(idA) == nil {
		t.Fatal("Get after remove")
	}
}

func TestWatchTopK(t *testing.T) {
	w := &Watch{K: 2}
	if !math.IsInf(w.KthBound(), 1) {
		t.Fatal("empty top-k bound not +Inf")
	}
	if ch, rank := w.Offer(10, 5.0); !ch || rank != 0 {
		t.Fatalf("first offer: %v %d", ch, rank)
	}
	if ch, rank := w.Offer(11, 7.0); !ch || rank != 1 {
		t.Fatalf("second offer: %v %d", ch, rank)
	}
	if w.KthBound() != 7.0 {
		t.Fatalf("KthBound = %v", w.KthBound())
	}
	// Worse than the current kth: rejected.
	if ch, _ := w.Offer(12, 9.0); ch {
		t.Fatal("worse offer accepted")
	}
	// A track improving its own distance keeps one entry.
	if ch, rank := w.Offer(11, 3.0); !ch || rank != 0 {
		t.Fatalf("improvement: %v %d", ch, rank)
	}
	if ch, _ := w.Offer(11, 4.0); ch {
		t.Fatal("regression accepted")
	}
	bests := w.Bests()
	if len(bests) != 2 || bests[0] != (Best{Track: 11, Dist: 3}) || bests[1] != (Best{Track: 10, Dist: 5}) {
		t.Fatalf("Bests = %v", bests)
	}
	// Equal distance ties break by track ID: 9 < 10 at dist 5 evicts 10.
	if ch, rank := w.Offer(9, 5.0); !ch || rank != 1 {
		t.Fatalf("tie offer: %v %d", ch, rank)
	}
	w.Drop(9)
	if got := w.Bests(); len(got) != 1 || got[0].Track != 11 {
		t.Fatalf("after Drop: %v", got)
	}
}

func TestEventLogRingAndGap(t *testing.T) {
	l := NewEventLog(4)
	if l.LastSeq() != 0 {
		t.Fatal("fresh log has events")
	}
	if evs, gap := l.After(0, 0); evs != nil || gap {
		t.Fatalf("fresh After: %v %v", evs, gap)
	}
	for i := 1; i <= 6; i++ {
		seq := l.Publish(Event{Watch: i})
		if seq != uint64(i) {
			t.Fatalf("Publish seq = %d, want %d", seq, i)
		}
	}
	// Ring holds 3..6; cursor 0 missed 1..2.
	evs, gap := l.After(0, 0)
	if !gap || len(evs) != 4 || evs[0].Seq != 3 || evs[3].Seq != 6 {
		t.Fatalf("After(0): gap=%v evs=%v", gap, evs)
	}
	evs, gap = l.After(2, 0)
	if gap || len(evs) != 4 || evs[0].Seq != 3 {
		t.Fatalf("After(2): gap=%v n=%d", gap, len(evs))
	}
	evs, gap = l.After(4, 1)
	if gap || len(evs) != 1 || evs[0].Seq != 5 || evs[0].Watch != 5 {
		t.Fatalf("After(4, max 1): gap=%v evs=%v", gap, evs)
	}
	if evs, gap := l.After(6, 0); evs != nil || gap {
		t.Fatalf("caught-up After: %v %v", evs, gap)
	}
}

func TestEventLogWait(t *testing.T) {
	l := NewEventLog(8)
	ch := l.WaitCh()
	select {
	case <-ch:
		t.Fatal("wait channel closed before publish")
	default:
	}
	done := make(chan Event, 1)
	go func() {
		<-ch
		evs, _ := l.After(0, 0)
		done <- evs[len(evs)-1]
	}()
	l.Publish(Event{Watch: 42})
	select {
	case ev := <-done:
		if ev.Watch != 42 || ev.Seq != 1 {
			t.Fatalf("woke with %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long-poller never woke")
	}
}

// TestConcurrentBufferAndLog drives appenders, snapshotters and event
// publishers in parallel; meaningful mainly under -race.
func TestConcurrentBufferAndLog(t *testing.T) {
	b := testBuffer(4, func() {})
	l := NewEventLog(64)
	r := NewRegistry()
	r.Add(&Watch{Metric: "edwp", Threshold: 1}, []uint64{1, 2, 3})
	var wg sync.WaitGroup
	now := time.Unix(0, 0)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				b.Append(g, 0, []traj.Point{pt(float64(i), float64(g), float64(i))}, now, func(tr *Track, fresh []uint64) {
					for _, id := range r.Collide(fresh) {
						tr.SetGated(id)
					}
				})
				l.Publish(Event{Watch: g, Track: i})
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			snaps := b.Snapshot()
			sort.Slice(snaps, func(a, b int) bool { return snaps[a].ID < snaps[b].ID })
			b.Count()
			l.After(0, 16)
			select {
			case <-l.WaitCh():
			default:
			}
		}
	}()
	wg.Wait()
	if l.LastSeq() != 200 {
		t.Fatalf("LastSeq = %d, want 200", l.LastSeq())
	}
}
