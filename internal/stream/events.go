package stream

import "sync"

// Event is one continuous-query match notification. Seq numbers are
// assigned contiguously from 1 in publish order; a consumer that
// resumes with the last seq it processed receives every later event
// still retained (at-least-once: a consumer that crashes after
// processing but before persisting its cursor sees those events
// again).
type Event struct {
	// Seq is the log-wide monotonic sequence number.
	Seq uint64 `json:"seq"`
	// Watch and Track identify the matched (standing query, live
	// trajectory) pair.
	Watch int `json:"watch"`
	Track int `json:"track"`
	// Metric is the watch's metric name.
	Metric string `json:"metric"`
	// Dist is the exact prefix distance that triggered the match.
	Dist float64 `json:"dist"`
	// PrefixLen is the track's point count when the match fired.
	PrefixLen int `json:"prefix_len"`
	// Rank is the track's position in a top-k watch's answer set
	// (0-based), -1 for threshold watches.
	Rank int `json:"rank"`
}

// EventLog is a bounded ring of match events with monotonic sequence
// numbers and a broadcast channel for long-polling. Publishing never
// blocks: when the ring is full the oldest event is dropped, and a
// consumer resuming from before the retained window is told so (the
// gap flag) rather than silently fed a truncated history. Safe for
// concurrent use.
type EventLog struct {
	mu     sync.Mutex
	buf    []Event // ring storage, len == capacity
	next   uint64  // next seq to assign; seq starts at 1
	count  int     // events currently retained (<= len(buf))
	notify chan struct{}
}

// DefaultEventBuffer is the ring capacity when the caller does not
// choose one.
const DefaultEventBuffer = 4096

// NewEventLog returns an empty log retaining up to capacity events
// (DefaultEventBuffer when <= 0).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = DefaultEventBuffer
	}
	return &EventLog{buf: make([]Event, capacity), next: 1, notify: make(chan struct{})}
}

// Publish assigns ev its sequence number, retains it, wakes every
// long-poller, and returns the assigned seq.
func (l *EventLog) Publish(ev Event) uint64 {
	l.mu.Lock()
	ev.Seq = l.next
	l.next++
	l.buf[int(ev.Seq-1)%len(l.buf)] = ev
	if l.count < len(l.buf) {
		l.count++
	}
	ch := l.notify
	l.notify = make(chan struct{})
	l.mu.Unlock()
	close(ch)
	return ev.Seq
}

// LastSeq returns the newest assigned sequence number, 0 when no event
// was ever published.
func (l *EventLog) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next - 1
}

// After returns up to max events with Seq > since, in sequence order,
// and whether a gap precedes them: gap is true when events after since
// have already been evicted from the ring, i.e. the consumer's cursor
// is older than the retained window and it missed events it can never
// replay. max <= 0 means no limit.
func (l *EventLog) After(since uint64, max int) ([]Event, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	oldest := l.next - uint64(l.count) // seq of the oldest retained event
	gap := since+1 < oldest
	from := since + 1
	if gap {
		from = oldest
	}
	if from >= l.next {
		return nil, gap
	}
	n := int(l.next - from)
	if max > 0 && n > max {
		n = max
	}
	out := make([]Event, n)
	for i := range out {
		out[i] = l.buf[int(from+uint64(i)-1)%len(l.buf)]
	}
	return out, gap
}

// WaitCh returns a channel closed at the next Publish — the long-poll
// primitive. Callers re-check After and re-arm in a loop, so the
// races between check and wait only cost a spurious wakeup.
func (l *EventLog) WaitCh() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.notify
}
