package stream

import (
	"math"
	"sort"
	"sync"

	"trajmatch/internal/traj"
)

// Watch is one standing query: a pattern trajectory to match growing
// tracks against, the metric to match under, and either a distance
// threshold (Threshold > 0: a track matches when its prefix distance
// reaches the threshold) or a top-k budget (K > 0: a track matches when
// it enters the watch's current k best). Exactly one of the two is set.
//
// The immutable fields are fixed at registration. The top-k state
// (best) is guarded by mu — the engine's matcher updates it append by
// append.
type Watch struct {
	ID        int
	Pattern   *traj.Trajectory
	Metric    string
	Threshold float64
	K         int
	// Exact opts the watch out of the token gate: every append to every
	// track runs the exact kernel. The escape hatch for callers that
	// want guaranteed-no-prefilter semantics at full cost.
	Exact bool

	tokens []uint64

	mu   sync.Mutex
	best []Best // sorted by (Dist, Track), len <= K
}

// Best is one entry of a top-k watch's current answer set.
type Best struct {
	Track int
	Dist  float64
}

// KthBound returns the pruning limit a top-k watch's next evaluation
// may use: the current k-th best distance once the set is full, +Inf
// before. Threshold watches bound by their threshold instead.
func (w *Watch) KthBound() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.K > 0 && len(w.best) == w.K {
		return w.best[len(w.best)-1].Dist
	}
	return math.Inf(1)
}

// Offer folds an evaluated (track, dist) into a top-k watch's answer
// set, replacing the track's previous entry if the new distance is
// better (a growing track's sub-trajectory distance only improves).
// It reports whether the set changed — the "emit an event" signal —
// and the track's resulting rank.
func (w *Watch) Offer(track int, dist float64) (changed bool, rank int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i, b := range w.best {
		if b.Track == track {
			if dist >= b.Dist {
				return false, i
			}
			w.best = append(w.best[:i], w.best[i+1:]...)
			break
		}
	}
	i := sort.Search(len(w.best), func(i int) bool {
		if w.best[i].Dist != dist {
			return w.best[i].Dist > dist
		}
		return w.best[i].Track > track
	})
	if i >= w.K {
		return false, -1
	}
	w.best = append(w.best, Best{})
	copy(w.best[i+1:], w.best[i:])
	w.best[i] = Best{Track: track, Dist: dist}
	if len(w.best) > w.K {
		w.best = w.best[:w.K]
	}
	return true, i
}

// Bests returns a copy of a top-k watch's current answer set.
func (w *Watch) Bests() []Best {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]Best(nil), w.best...)
}

// Drop removes a track from a top-k watch's answer set (the track was
// deleted).
func (w *Watch) Drop(track int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i, b := range w.best {
		if b.Track == track {
			w.best = append(w.best[:i], w.best[i+1:]...)
			return
		}
	}
}

// Registry holds the registered watches and the inverted token index
// that gates them: a watch becomes a candidate for a track only once
// the track visits a grid cell the pattern visits. Watch IDs are
// assigned monotonically, which is what lets tracks catch up on watches
// registered after their last append (After). Safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	next    int
	watches map[int]*Watch
	ordered []*Watch         // by ID ascending
	byToken map[uint64][]int // pattern token -> watch IDs (ascending)
	exact   map[int]struct{} // watches that bypass the gate
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		watches: make(map[int]*Watch),
		byToken: make(map[uint64][]int),
		exact:   make(map[int]struct{}),
	}
}

// Add registers w, assigning and returning its ID. tokens is the
// pattern's distinct fingerprint token set (sketch.PatternTokens); nil
// disables the gate for this watch (it joins the exact set), which is
// also what Exact forces.
func (r *Registry) Add(w *Watch, tokens []uint64) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.next++
	w.ID = r.next
	w.tokens = tokens
	r.watches[w.ID] = w
	r.ordered = append(r.ordered, w)
	if w.Exact || len(tokens) == 0 {
		r.exact[w.ID] = struct{}{}
		return w.ID
	}
	for _, tok := range tokens {
		r.byToken[tok] = append(r.byToken[tok], w.ID)
	}
	return w.ID
}

// Remove unregisters watch id, reporting whether it existed. The
// caller clears per-track gating state via Buffer.ForgetWatch.
func (r *Registry) Remove(id int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.watches[id]
	if !ok {
		return false
	}
	delete(r.watches, id)
	delete(r.exact, id)
	for i, o := range r.ordered {
		if o.ID == id {
			r.ordered = append(r.ordered[:i], r.ordered[i+1:]...)
			break
		}
	}
	for _, tok := range w.tokens {
		ids := r.byToken[tok]
		for i, wid := range ids {
			if wid == id {
				ids = append(ids[:i], ids[i+1:]...)
				break
			}
		}
		if len(ids) == 0 {
			delete(r.byToken, tok)
		} else {
			r.byToken[tok] = ids
		}
	}
	return true
}

// Get returns watch id, or nil.
func (r *Registry) Get(id int) *Watch {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.watches[id]
}

// Count returns the number of registered watches.
func (r *Registry) Count() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.watches)
}

// MaxID returns the newest assigned watch ID (0 when none ever was) —
// the catch-up high-water mark tracks record.
func (r *Registry) MaxID() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.next
}

// Collide returns, ascending and deduplicated, the IDs of gated
// watches whose pattern shares at least one token with fresh — the
// newly-opened gates an append must consider. Exact watches are not
// reported here; they are always candidates (Exacts).
func (r *Registry) Collide(fresh []uint64) []int {
	if len(fresh) == 0 {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	var hit map[int]struct{}
	for _, tok := range fresh {
		for _, id := range r.byToken[tok] {
			if hit == nil {
				hit = make(map[int]struct{})
			}
			hit[id] = struct{}{}
		}
	}
	if hit == nil {
		return nil
	}
	out := make([]int, 0, len(hit))
	for id := range hit {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// After returns the watches with ID > since, ascending — what a track
// that last gated at watch since must catch up against.
func (r *Registry) After(since int) []*Watch {
	r.mu.RLock()
	defer r.mu.RUnlock()
	i := sort.Search(len(r.ordered), func(i int) bool { return r.ordered[i].ID > since })
	if i == len(r.ordered) {
		return nil
	}
	return append([]*Watch(nil), r.ordered[i:]...)
}

// Tokens returns watch id's pattern token set (nil for exact watches).
func (r *Registry) Tokens(id int) []uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if w := r.watches[id]; w != nil {
		return w.tokens
	}
	return nil
}
