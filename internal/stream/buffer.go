// Package stream is the live-ingest layer in front of the sealed
// engine: the mutable per-shard buffer that growing trajectories
// accumulate in (Buffer), the standing-query registry that appends are
// matched against (Registry), and the sequence-numbered event feed that
// delivers the matches (EventLog).
//
// The division of labour with internal/server: this package owns the
// data structures and their concurrency story; the engine owns policy —
// WAL logging, when to seal, which exact kernel a watch runs, how live
// tracks merge into search answers. Nothing here knows about metrics,
// the WAL, or HTTP.
//
// A live track's points are append-only: the backing array of an
// earlier snapshot is never rewritten, so a []traj.Point slice captured
// under the shard lock stays valid outside it — the property the
// engine's live-track scan and the watch matcher rely on to evaluate
// exact kernels without holding buffer locks for reads.
package stream

import (
	"sort"
	"sync"
	"time"

	"trajmatch/internal/sketch"
	"trajmatch/internal/traj"
)

// Track is one live (unsealed) trajectory plus its incremental
// fingerprint and its standing-query bookkeeping. All state is guarded
// by the owning buffer shard's lock; the engine's eval callback runs
// under that lock, so Track methods must only be called from inside
// Append/View callbacks or while the caller otherwise holds the shard.
type Track struct {
	id    int
	label int
	pts   []traj.Point // append-only
	sk    *sketch.Stream

	gated       map[int]struct{} // watch IDs whose token gate this track has passed
	matched     map[int]struct{} // watch IDs already latched as matched
	lastWatchID int              // newest watch ID this track has been gated against
	lastAppend  time.Time
}

// ID returns the track's trajectory ID.
func (t *Track) ID() int { return t.id }

// Label returns the label carried by the track's first append.
func (t *Track) Label() int { return t.label }

// Points returns the track's current points. The returned slice is a
// stable snapshot: appends extend a fresh array, never this one.
func (t *Track) Points() []traj.Point { return t.pts }

// Len returns the track's current point count.
func (t *Track) Len() int { return len(t.pts) }

// Sketch returns the track's incremental fingerprint, nil when the
// buffer was built without sketch parameters.
func (t *Track) Sketch() *sketch.Stream { return t.sk }

// Gated reports whether the track has passed the token gate of watch w.
func (t *Track) Gated(w int) bool {
	_, ok := t.gated[w]
	return ok
}

// SetGated latches the token gate of watch w open for this track.
func (t *Track) SetGated(w int) { t.gated[w] = struct{}{} }

// GatedIDs returns, ascending, the IDs of every watch whose token gate
// this track has passed — the matcher's deterministic evaluation order.
func (t *Track) GatedIDs() []int {
	if len(t.gated) == 0 {
		return nil
	}
	out := make([]int, 0, len(t.gated))
	for w := range t.gated {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}

// Matched reports whether watch w has already latched a match on this
// track (matches are emitted once per (watch, track) pair).
func (t *Track) Matched(w int) bool {
	_, ok := t.matched[w]
	return ok
}

// SetMatched latches watch w as matched on this track.
func (t *Track) SetMatched(w int) { t.matched[w] = struct{}{} }

// LastWatchID returns the newest watch ID this track has been gated
// against; watches registered later must be caught up on the next
// append.
func (t *Track) LastWatchID() int { return t.lastWatchID }

// SetLastWatchID records the catch-up high-water mark.
func (t *Track) SetLastWatchID(w int) { t.lastWatchID = w }

// ForgetWatch drops all gating state for an unregistered watch.
func (t *Track) ForgetWatch(w int) {
	delete(t.gated, w)
	delete(t.matched, w)
}

// Snap is a consistent read-only view of one track, valid after the
// shard lock is released (the points slice is append-only).
type Snap struct {
	ID     int
	Label  int
	Points []traj.Point
}

// Buffer holds the live tracks, sharded by the same hash the engine
// routes sealed trajectories with so a track and its eventual sealed
// form land on the same shard. Safe for concurrent use.
type Buffer struct {
	hash     func(id, n int) int
	onChange func() // called under the written shard's lock after every mutation
	params   *sketch.Params
	shards   []bufShard
}

type bufShard struct {
	mu     sync.RWMutex
	tracks map[int]*Track
}

// NewBuffer builds an empty buffer with n shards. hash routes IDs to
// shards (the engine passes its sealed-shard router). onChange, if
// non-nil, is invoked under the written shard's lock after every
// mutation — the engine hooks its generation bump in so result caches
// invalidate exactly as they do for sealed mutations. params, if
// non-nil, gives every track an incremental sketch.Stream for the
// continuous-query token gate; nil disables gating (every watch
// evaluates exactly).
func NewBuffer(n int, hash func(id, n int) int, onChange func(), params *sketch.Params) *Buffer {
	if n < 1 {
		n = 1
	}
	b := &Buffer{hash: hash, onChange: onChange, params: params, shards: make([]bufShard, n)}
	for i := range b.shards {
		b.shards[i].tracks = make(map[int]*Track)
	}
	return b
}

func (b *Buffer) shardOf(id int) *bufShard {
	return &b.shards[b.hash(id, len(b.shards))]
}

// Len returns the current point count of track id, 0 when absent.
func (b *Buffer) Len(id int) int {
	s := b.shardOf(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	if t := s.tracks[id]; t != nil {
		return len(t.pts)
	}
	return 0
}

// Has reports whether a live track with the given ID exists.
func (b *Buffer) Has(id int) bool {
	s := b.shardOf(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.tracks[id]
	return ok
}

// Append extends track id (creating it on first use with the given
// label) by pts, and returns the offset the delta landed at (the point
// count before the append). fresh receives the distinct fingerprint
// tokens the delta introduced. eval, if non-nil, runs under the shard
// lock after the state update — the engine's continuous-query hook; its
// position inside the lock is what gives watch events their per-track
// append ordering.
func (b *Buffer) Append(id, label int, pts []traj.Point, now time.Time, eval func(t *Track, fresh []uint64)) int {
	s := b.shardOf(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tracks[id]
	if t == nil {
		t = &Track{id: id, label: label, gated: make(map[int]struct{}), matched: make(map[int]struct{})}
		if b.params != nil {
			// Params were validated when the engine resolved them.
			t.sk, _ = sketch.NewStream(*b.params)
		}
		s.tracks[id] = t
	}
	offset := len(t.pts)
	t.pts = append(t.pts, pts...)
	var fresh []uint64
	if t.sk != nil {
		fresh = t.sk.Extend(pts)
	}
	t.lastAppend = now
	if b.onChange != nil {
		b.onChange()
	}
	if eval != nil {
		eval(t, fresh)
	}
	return offset
}

// Get returns a stable snapshot of track id.
func (b *Buffer) Get(id int) (Snap, bool) {
	s := b.shardOf(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	if t := s.tracks[id]; t != nil {
		return Snap{ID: t.id, Label: t.label, Points: t.pts}, true
	}
	return Snap{}, false
}

// Remove deletes track id (seal folded it into the engine, or an
// explicit delete dropped it) and returns its final snapshot.
func (b *Buffer) Remove(id int) (Snap, bool) {
	s := b.shardOf(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tracks[id]
	if t == nil {
		return Snap{}, false
	}
	delete(s.tracks, id)
	if b.onChange != nil {
		b.onChange()
	}
	return Snap{ID: t.id, Label: t.label, Points: t.pts}, true
}

// Snapshot returns a stable view of every live track, ordered by ID
// within each shard visit — callers needing global determinism sort.
func (b *Buffer) Snapshot() []Snap {
	var out []Snap
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.RLock()
		for _, t := range s.tracks {
			out = append(out, Snap{ID: t.id, Label: t.label, Points: t.pts})
		}
		s.mu.RUnlock()
	}
	return out
}

// Count returns the number of live tracks.
func (b *Buffer) Count() int {
	n := 0
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.RLock()
		n += len(s.tracks)
		s.mu.RUnlock()
	}
	return n
}

// Points returns the total number of buffered points.
func (b *Buffer) Points() int {
	n := 0
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.RLock()
		for _, t := range s.tracks {
			n += len(t.pts)
		}
		s.mu.RUnlock()
	}
	return n
}

// IdleBefore returns the IDs of tracks whose last append predates
// cutoff — the background sealer's candidate list.
func (b *Buffer) IdleBefore(cutoff time.Time) []int {
	var out []int
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.RLock()
		for id, t := range s.tracks {
			if t.lastAppend.Before(cutoff) {
				out = append(out, id)
			}
		}
		s.mu.RUnlock()
	}
	return out
}

// ForgetWatch drops watch w's gating state from every track (the watch
// was unregistered).
func (b *Buffer) ForgetWatch(w int) {
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.Lock()
		for _, t := range s.tracks {
			t.ForgetWatch(w)
		}
		s.mu.Unlock()
	}
}
