package dataio

import (
	"bytes"
	"strings"
	"testing"

	"trajmatch/internal/synth"
	"trajmatch/internal/traj"
)

func TestCSVRoundTrip(t *testing.T) {
	db := synth.Taxi(synth.DefaultTaxi(8))
	db[3].Label = 7
	var buf bytes.Buffer
	if err := WriteCSV(&buf, db); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(db) {
		t.Fatalf("round trip: %d trajectories, want %d", len(got), len(db))
	}
	for i := range db {
		if !traj.Equal(db[i], got[i]) {
			t.Fatalf("trajectory %d altered by round trip", i)
		}
		if got[i].Label != db[i].Label {
			t.Errorf("trajectory %d label %d, want %d", i, got[i].Label, db[i].Label)
		}
	}
}

func TestNDJSONRoundTrip(t *testing.T) {
	db := synth.ASL(synth.ASLConfig{NumClasses: 3, Instances: 2, Points: 10, Jitter: 0.01, Seed: 9})
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, db); err != nil {
		t.Fatal(err)
	}
	got, err := ReadNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(db) {
		t.Fatalf("round trip: %d trajectories, want %d", len(got), len(db))
	}
	for i := range db {
		if !traj.Equal(db[i], got[i]) || got[i].Label != db[i].Label {
			t.Fatalf("trajectory %d altered by round trip", i)
		}
	}
}

func TestReadCSVWithoutHeaderOrLabel(t *testing.T) {
	in := "0,1,2,3\n0,4,5,6\n1,0,0,0\n1,1,1,1\n"
	got, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d trajectories", len(got))
	}
	if got[0].Points[1] != traj.P(4, 5, 6) {
		t.Errorf("point = %v", got[0].Points[1])
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("id,x,y,t\nnope,1,2,3\n")); err == nil {
		t.Error("bad id accepted")
	}
	if _, err := ReadCSV(strings.NewReader("id,x,y,t\n0,a,2,3\n")); err == nil {
		t.Error("bad coordinate accepted")
	}
	if _, err := ReadCSV(strings.NewReader("0,1\n")); err == nil {
		t.Error("short row accepted")
	}
}

func TestReadNDJSONSkipsBlankAndRejectsGarbage(t *testing.T) {
	in := `{"id":1,"points":[[0,0,0],[1,1,1]]}` + "\n\n" + `{"id":2,"points":[[2,2,2],[3,3,3]]}` + "\n"
	got, err := ReadNDJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d trajectories", len(got))
	}
	if _, err := ReadNDJSON(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage line accepted")
	}
}

func TestEmptyInputs(t *testing.T) {
	if got, err := ReadCSV(strings.NewReader("")); err != nil || len(got) != 0 {
		t.Errorf("empty CSV: %v, %v", got, err)
	}
	if got, err := ReadNDJSON(strings.NewReader("")); err != nil || len(got) != 0 {
		t.Errorf("empty NDJSON: %v, %v", got, err)
	}
}
