// Package dataio reads and writes trajectory databases in two plain
// formats: a point-per-row CSV (id,x,y,t[,label]) compatible with common
// GPS trace dumps, and newline-delimited JSON with one trajectory per line.
// The cmd/ tools use it to move datasets between runs.
package dataio

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"trajmatch/internal/traj"
)

// WriteCSV writes db as point-per-row CSV with the header
// id,x,y,t,label. Points of one trajectory appear consecutively in time
// order.
func WriteCSV(w io.Writer, db []*traj.Trajectory) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "x", "y", "t", "label"}); err != nil {
		return err
	}
	for _, t := range db {
		id := strconv.Itoa(t.ID)
		label := strconv.Itoa(t.Label)
		for _, p := range t.Points {
			rec := []string{
				id,
				strconv.FormatFloat(p.X, 'g', -1, 64),
				strconv.FormatFloat(p.Y, 'g', -1, 64),
				strconv.FormatFloat(p.T, 'g', -1, 64),
				label,
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses the format WriteCSV produces. The label column is
// optional; rows of one trajectory need not be contiguous but must be
// time-ordered within each id. Trajectories are returned sorted by ID.
func ReadCSV(r io.Reader) ([]*traj.Trajectory, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, nil
	}
	start := 0
	if len(rows[0]) > 0 && rows[0][0] == "id" {
		start = 1
	}
	byID := make(map[int]*traj.Trajectory)
	for ln, row := range rows[start:] {
		if len(row) < 4 {
			return nil, fmt.Errorf("dataio: row %d: want at least 4 fields, got %d", ln+start+1, len(row))
		}
		id, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, fmt.Errorf("dataio: row %d: bad id %q", ln+start+1, row[0])
		}
		x, err1 := strconv.ParseFloat(row[1], 64)
		y, err2 := strconv.ParseFloat(row[2], 64)
		ts, err3 := strconv.ParseFloat(row[3], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("dataio: row %d: bad coordinates", ln+start+1)
		}
		t := byID[id]
		if t == nil {
			t = traj.New(id, nil)
			byID[id] = t
		}
		if len(row) >= 5 {
			if lbl, err := strconv.Atoi(row[4]); err == nil {
				t.Label = lbl
			}
		}
		t.Points = append(t.Points, traj.P(x, y, ts))
	}
	out := make([]*traj.Trajectory, 0, len(byID))
	for _, t := range byID {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// jsonTraj is the NDJSON wire form.
type jsonTraj struct {
	ID     int          `json:"id"`
	Label  int          `json:"label,omitempty"`
	Points [][3]float64 `json:"points"`
}

// WriteNDJSON writes one JSON object per line per trajectory.
func WriteNDJSON(w io.Writer, db []*traj.Trajectory) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, t := range db {
		jt := jsonTraj{ID: t.ID, Label: t.Label, Points: make([][3]float64, len(t.Points))}
		for i, p := range t.Points {
			jt.Points[i] = [3]float64{p.X, p.Y, p.T}
		}
		if err := enc.Encode(&jt); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadNDJSON parses the format WriteNDJSON produces, skipping blank lines.
func ReadNDJSON(r io.Reader) ([]*traj.Trajectory, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	var out []*traj.Trajectory
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var jt jsonTraj
		if err := json.Unmarshal(raw, &jt); err != nil {
			return nil, fmt.Errorf("dataio: line %d: %w", line, err)
		}
		t := traj.New(jt.ID, make([]traj.Point, len(jt.Points)))
		t.Label = jt.Label
		for i, p := range jt.Points {
			t.Points[i] = traj.P(p[0], p[1], p[2])
		}
		out = append(out, t)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
