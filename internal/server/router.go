package server

import (
	"errors"
	"fmt"
	"sort"
)

// ErrNotOwned reports a mutation or streaming operation on a trajectory
// whose global shard a partitioned engine does not serve: the caller (in
// practice the cluster router) routed the request to the wrong node, or
// the cluster's shard map disagrees with this node's. The HTTP layer
// answers 421 with code "not_owned".
var ErrNotOwned = errors.New("shard not owned by this node")

// Trajectories are assigned to shards by a fixed hash of their ID, so
// placement is a pure function of (ID, shard count): bulk loads, live
// inserts and snapshot reloads all agree on where a trajectory lives, and
// Lookup/Delete route straight to the owning shard instead of scanning.
// The hash is part of the snapshot format — changing it requires bumping
// snapshotVersion, because shard files written under the old placement
// would answer Lookup/Delete wrongly under the new one.

// shardIndex returns the shard owning trajectory id among n shards.
// A finalising 64-bit mix (splitmix64's) stands between the ID and the
// modulo so that the sequential IDs real corpora use spread evenly
// instead of striping.
func shardIndex(id, n int) int {
	if n <= 1 {
		return 0
	}
	x := uint64(int64(id))
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(n))
}

// ShardOf returns the global shard owning trajectory id among n
// hash-placed shards — the placement function, exported for the cluster
// router, which must route mutations to the node owning the ID's shard.
func ShardOf(id, n int) int { return shardIndex(id, n) }

// partitionByShard splits db into n hash-placed groups, preserving input
// order within each group so builds are deterministic.
func partitionByShard[T any](db []T, n int, id func(T) int) [][]T {
	groups := make([][]T, n)
	for _, t := range db {
		s := shardIndex(id(t), n)
		groups[s] = append(groups[s], t)
	}
	return groups
}

// Partition declares that an engine owns only a subset of a wider
// cluster placement: trajectories hash into Total global shards exactly
// as a Total-shard single-process engine would place them, but this
// engine builds, serves and persists only the Owned global shard
// indices. Everything else — a Lookup of a foreign ID, an Insert placed
// elsewhere — answers "not owned" instead of wrong data, and the
// cluster router (internal/cluster) is what stitches the owned subsets
// of several such engines back into one logical index.
//
// The placement function is unchanged (shardIndex over Total), which is
// the whole point: a shard node's tree for global shard g holds exactly
// the members a single-process Total-shard engine's shard g holds, so
// per-shard answers — and per-shard snapshot files — are byte-identical
// across deployment shapes.
type Partition struct {
	// Total is the cluster-wide shard count every node must agree on.
	Total int
	// Owned lists the global shard indices this engine serves, in any
	// order; it is normalised (sorted, deduplicated) at boot.
	Owned []int
}

// placement is the engine's resolved view of where trajectories live:
// the global hash modulus plus the owned-global-to-local-slot mapping.
// A standalone engine is the identity placement (every global shard is
// local, local slot == global index).
type placement struct {
	total int   // global hash modulus
	owned []int // owned global indices, ascending; len == local shard count
	local []int // dense global -> local slot, -1 when foreign; nil for identity
}

// resolvePlacement validates and normalises opt's partition (nil means
// the identity placement over opt.Shards).
func resolvePlacement(opt Options) (placement, error) {
	p := opt.Partition
	if p == nil {
		return placement{total: opt.Shards}, nil
	}
	if p.Total < 1 {
		return placement{}, fmt.Errorf("server: partition: total shard count %d < 1", p.Total)
	}
	if len(p.Owned) == 0 {
		return placement{}, fmt.Errorf("server: partition: no owned shards")
	}
	local := make([]int, p.Total)
	for i := range local {
		local[i] = -1
	}
	owned := append([]int(nil), p.Owned...)
	sort.Ints(owned)
	out := owned[:0]
	for _, g := range owned {
		if g < 0 || g >= p.Total {
			return placement{}, fmt.Errorf("server: partition: shard %d out of range [0,%d)", g, p.Total)
		}
		if local[g] != -1 {
			continue // duplicate
		}
		local[g] = len(out)
		out = append(out, g)
	}
	if len(out) == p.Total {
		// Owning every shard is the identity placement; drop the maps so
		// the common standalone fast paths stay branch-free.
		return placement{total: p.Total}, nil
	}
	return placement{total: p.Total, owned: out, local: local}, nil
}

// partitioned reports whether the engine owns a strict subset of the
// cluster's shards.
func (p placement) partitioned() bool { return p.local != nil }

// numLocal is the number of shards this engine actually holds.
func (p placement) numLocal() int {
	if p.local == nil {
		return p.total
	}
	return len(p.owned)
}

// localShard maps a trajectory ID to its local shard slot, or -1 when
// the owning global shard lives on another node.
func (p placement) localShard(id int) int {
	g := shardIndex(id, p.total)
	if p.local == nil {
		return g
	}
	return p.local[g]
}

// globalOf returns the global shard index behind local slot i.
func (p placement) globalOf(i int) int {
	if p.local == nil {
		return i
	}
	return p.owned[i]
}

// ownedShards returns the owned global indices, ascending (all of them
// for the identity placement).
func (p placement) ownedShards() []int {
	if p.local == nil {
		out := make([]int, p.total)
		for i := range out {
			out[i] = i
		}
		return out
	}
	return append([]int(nil), p.owned...)
}

// partitionOwned hash-places db into the placement's local groups,
// dropping foreign trajectories: group i holds exactly what global
// shard globalOf(i) of a Total-shard engine would hold, in input order.
func partitionOwned[T any](db []T, p placement, id func(T) int) [][]T {
	groups := make([][]T, p.numLocal())
	for _, t := range db {
		if s := p.localShard(id(t)); s >= 0 {
			groups[s] = append(groups[s], t)
		}
	}
	return groups
}
