package server

// Trajectories are assigned to shards by a fixed hash of their ID, so
// placement is a pure function of (ID, shard count): bulk loads, live
// inserts and snapshot reloads all agree on where a trajectory lives, and
// Lookup/Delete route straight to the owning shard instead of scanning.
// The hash is part of the snapshot format — changing it requires bumping
// snapshotVersion, because shard files written under the old placement
// would answer Lookup/Delete wrongly under the new one.

// shardIndex returns the shard owning trajectory id among n shards.
// A finalising 64-bit mix (splitmix64's) stands between the ID and the
// modulo so that the sequential IDs real corpora use spread evenly
// instead of striping.
func shardIndex(id, n int) int {
	if n <= 1 {
		return 0
	}
	x := uint64(int64(id))
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(n))
}

// partitionByShard splits db into n hash-placed groups, preserving input
// order within each group so builds are deterministic.
func partitionByShard[T any](db []T, n int, id func(T) int) [][]T {
	groups := make([][]T, n)
	for _, t := range db {
		s := shardIndex(id(t), n)
		groups[s] = append(groups[s], t)
	}
	return groups
}
