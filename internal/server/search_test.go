// Deprecated-API regression coverage:
//
//lint:file-ignore SA1019 compares Search against the deprecated wrappers on purpose.
package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"

	"trajmatch/internal/core"
	"trajmatch/internal/traj"
	"trajmatch/internal/trajtree"
)

// TestSearchMatchesLegacyAcrossShards is the acceptance property of the
// API redesign: with a never-cancelled context, Engine.Search answers
// are byte-identical to the legacy per-variant methods — and to a single
// reference tree — across shard counts {1, 2, 4, 8}.
func TestSearchMatchesLegacyAcrossShards(t *testing.T) {
	db := testDB(160, 11)
	topt := trajtree.Options{Seed: 1, LeafSize: 5}
	ref, err := trajtree.New(db, topt)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(41))
	for _, shards := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			e, err := NewEngineFromDB(db, topt, Options{CacheSize: -1, Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			for it := 0; it < 15; it++ {
				q := db[rng.Intn(len(db))].Clone()
				q.ID = 3_000_000 + it
				if it%3 == 0 {
					for i := range q.Points {
						q.Points[i].X += rng.NormFloat64() * 15
						q.Points[i].Y += rng.NormFloat64() * 15
					}
				}
				k := 1 + rng.Intn(10)

				ans, err := e.Search(ctx, q, Query{Kind: KindKNN, K: k, WithStats: true})
				if err != nil {
					t.Fatalf("it=%d: Search: %v", it, err)
				}
				if ans.Truncated || ans.Cached {
					t.Fatalf("it=%d: unexpected disposition %+v", it, ans)
				}
				legacy, lst := e.KNN(q, k)
				sameResults(t, fmt.Sprintf("KNN it=%d k=%d vs legacy", it, k), ans.Results, legacy)
				refRes, _ := ref.KNN(q, k)
				sameResults(t, fmt.Sprintf("KNN it=%d k=%d vs ref tree", it, k), ans.Results, refRes)
				if ans.Stats.DistanceCalls == 0 || lst.DistanceCalls == 0 {
					t.Fatalf("it=%d: zero distance calls reported", it)
				}

				radius := []float64{5, 20, 80}[it%3]
				rans, err := e.Search(ctx, q, Query{Kind: KindRange, Radius: radius, WithStats: true})
				if err != nil {
					t.Fatalf("it=%d: range Search: %v", it, err)
				}
				rlegacy, _ := e.RangeSearch(q, radius)
				sameResults(t, fmt.Sprintf("Range it=%d r=%v vs legacy", it, radius), rans.Results, rlegacy)
				refR, _ := ref.RangeSearch(q, radius)
				sameResults(t, fmt.Sprintf("Range it=%d r=%v vs ref tree", it, radius), rans.Results, refR)
			}
		})
	}
}

// TestSearchSubKNNMatchesBrute verifies kind subknn against a
// brute-force EDwPsub scan, across shard counts (the fan-out must not
// change the answer set).
func TestSearchSubKNNMatchesBrute(t *testing.T) {
	db := testDB(90, 17)
	topt := trajtree.Options{Seed: 1, LeafSize: 5}
	ctx := context.Background()
	for _, shards := range []int{1, 4} {
		e, err := NewEngineFromDB(db, topt, Options{CacheSize: -1, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		for it := 0; it < 6; it++ {
			full := db[(it*19)%len(db)]
			pts := append([]traj.Point(nil), full.Points[1:4]...)
			q := traj.New(4_000_000+it, pts)
			k := 1 + it%5

			type pair struct {
				id int
				d  float64
			}
			ref := make([]pair, 0, len(db))
			for _, tr := range db {
				ref = append(ref, pair{tr.ID, core.SubDistance(q, tr)})
			}
			sort.Slice(ref, func(i, j int) bool {
				if ref[i].d != ref[j].d {
					return ref[i].d < ref[j].d
				}
				return ref[i].id < ref[j].id
			})

			ans, err := e.Search(ctx, q, Query{Kind: KindSubKNN, K: k, WithStats: true})
			if err != nil {
				t.Fatalf("shards=%d it=%d: %v", shards, it, err)
			}
			if len(ans.Results) != k {
				t.Fatalf("shards=%d it=%d: %d results, want %d", shards, it, len(ans.Results), k)
			}
			for i, r := range ans.Results {
				if math.Abs(r.Dist-ref[i].d) > 1e-9 {
					t.Fatalf("shards=%d it=%d rank %d: dist %v, brute %v", shards, it, i, r.Dist, ref[i].d)
				}
			}
			if ans.Stats.DistanceCalls == 0 {
				t.Fatalf("shards=%d it=%d: no distance calls recorded", shards, it)
			}
		}
	}
}

// TestSearchBatchKeepsPerQueryStats is the regression test for the
// KNNBatch stats loss: SearchBatch returns one Answer per query carrying
// that query's stats, and the engine's cumulative counters advance by
// exactly the per-query sum — each query accumulated once.
func TestSearchBatchKeepsPerQueryStats(t *testing.T) {
	db := testDB(120, 23)
	e, err := NewEngineFromDB(db, trajtree.Options{Seed: 1, LeafSize: 5}, Options{CacheSize: -1, Shards: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]*traj.Trajectory, 12)
	for i := range qs {
		qs[i] = db[(i*7)%len(db)].Clone()
		qs[i].ID = 5_000_000 + i
	}
	before := e.Stats()
	answers, err := e.SearchBatch(context.Background(), qs, Query{Kind: KindKNN, K: 4, WithStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != len(qs) {
		t.Fatalf("%d answers, want %d", len(answers), len(qs))
	}
	var sum trajtree.Stats
	for i, a := range answers {
		if a.Stats.DistanceCalls == 0 {
			t.Fatalf("answer %d lost its per-query stats", i)
		}
		sum.Add(a.Stats)
	}
	after := e.Stats()
	if got, want := after.DistanceCalls-before.DistanceCalls, uint64(sum.DistanceCalls); got != want {
		t.Fatalf("cumulative distance calls advanced by %d, per-query sum is %d", got, want)
	}
	if got, want := after.EarlyAbandons-before.EarlyAbandons, uint64(sum.EarlyAbandons); got != want {
		t.Fatalf("cumulative early abandons advanced by %d, per-query sum is %d", got, want)
	}
	if got, want := after.Queries-before.Queries, uint64(len(qs)); got != want {
		t.Fatalf("queries counter advanced by %d, want %d", got, want)
	}

	// Each answer matches its single-query Search.
	for i, q := range qs {
		single, err := e.Search(context.Background(), q, Query{Kind: KindKNN, K: 4})
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, fmt.Sprintf("batch query %d", i), answers[i].Results, single.Results)
	}
}

// longDB builds few, very long trajectories so a single EDwP evaluation
// is expensive — the workload where cancellation latency matters.
func longDB(n, points int, seed int64) []*traj.Trajectory {
	rng := rand.New(rand.NewSource(seed))
	db := make([]*traj.Trajectory, n)
	for i := range db {
		pts := make([]traj.Point, points)
		x, y := rng.Float64()*100, rng.Float64()*100
		for j := range pts {
			x += rng.NormFloat64() * 4
			y += rng.NormFloat64() * 4
			pts[j] = traj.P(x, y, float64(j))
		}
		db[i] = traj.New(i, pts)
	}
	return db
}

// TestSearchCancellation drives the tentpole's cancellation contract: a
// context cancelled mid-search surfaces context.Canceled promptly, and
// the engine stays fully consistent — a subsequent Search answers
// byte-identically to a fresh engine over the same data.
func TestSearchCancellation(t *testing.T) {
	db := longDB(24, 400, 31)
	topt := trajtree.Options{Seed: 1, LeafSize: 4, NumVPs: 8, PivotCandidates: 8}
	e, err := NewEngineFromDB(db, topt, Options{CacheSize: -1, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := db[5].Clone()
	q.ID = 6_000_000

	// Uncancelled reference timing and answer.
	t0 := time.Now()
	want, err := e.Search(context.Background(), q, Query{Kind: KindKNN, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	full := time.Since(t0)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(full / 20)
		cancel()
	}()
	t0 = time.Now()
	ans, err := e.Search(ctx, q, Query{Kind: KindKNN, K: 5})
	elapsed := time.Since(t0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Search returned err=%v (answer %d results), want context.Canceled", err, len(ans.Results))
	}
	if len(ans.Results) != 0 {
		t.Fatalf("cancelled Search leaked %d results", len(ans.Results))
	}
	// Bounded wall clock: the search must stop far short of running to
	// completion (one DP-row check of slack plus scheduling noise).
	if elapsed > full/2+100*time.Millisecond {
		t.Fatalf("cancelled search took %v of an uncancelled %v — cancellation was not prompt", elapsed, full)
	}

	// Engine state unharmed: identical answers to a fresh engine.
	again, err := e.Search(context.Background(), q, Query{Kind: KindKNN, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "post-cancel vs pre-cancel", again.Results, want.Results)
	fresh, err := NewEngineFromDB(db, topt, Options{CacheSize: -1, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	freshAns, err := fresh.Search(context.Background(), q, Query{Kind: KindKNN, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "post-cancel vs fresh engine", again.Results, freshAns.Results)

	// A pre-expired deadline surfaces DeadlineExceeded without touching
	// any shard.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, err := e.Search(dctx, q, Query{Kind: KindKNN, K: 5}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline returned %v, want context.DeadlineExceeded", err)
	}
}

// TestSearchBatchCancellation: a cancelled batch returns the context
// error and the engine remains consistent afterwards.
func TestSearchBatchCancellation(t *testing.T) {
	db := longDB(16, 300, 37)
	e, err := NewEngineFromDB(db, trajtree.Options{Seed: 1, LeafSize: 4, NumVPs: 8, PivotCandidates: 8},
		Options{CacheSize: -1, Shards: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]*traj.Trajectory, 8)
	for i := range qs {
		qs[i] = db[i].Clone()
		qs[i].ID = 7_000_000 + i
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err = e.SearchBatch(ctx, qs, Query{Kind: KindKNN, K: 3})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timed-out batch returned %v, want context.DeadlineExceeded", err)
	}
	// Engine still answers exactly.
	ans, err := e.Search(context.Background(), qs[0], Query{Kind: KindKNN, K: 3})
	if err != nil || len(ans.Results) != 3 {
		t.Fatalf("post-cancel Search: err=%v results=%d", err, len(ans.Results))
	}
}

// TestSearchMaxEvalsTruncates: an evaluation budget bounds the work of a
// query across its whole fan-out and marks the answer truncated; such
// answers never enter the result cache.
func TestSearchMaxEvalsTruncates(t *testing.T) {
	db := testDB(150, 43)
	// Reference answer and work measurement on an uncached twin engine.
	ref, err := NewEngineFromDB(db, trajtree.Options{Seed: 1, LeafSize: 5}, Options{CacheSize: -1, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := db[7].Clone()
	q.ID = 8_000_000
	fullAns, err := ref.Search(context.Background(), q, Query{Kind: KindKNN, K: 10, WithStats: true})
	if err != nil {
		t.Fatal(err)
	}
	budget := fullAns.Stats.DistanceCalls / 3
	if budget == 0 {
		t.Fatal("full search made no distance calls")
	}

	// The engine under test has its result cache on; the truncated query
	// runs first, so anything the later exact query finds in the cache
	// could only have come from it.
	e, err := NewEngineFromDB(db, trajtree.Options{Seed: 1, LeafSize: 5}, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	ans, err := e.Search(context.Background(), q, Query{Kind: KindKNN, K: 10, MaxEvals: budget, WithStats: true})
	if err != nil {
		t.Fatalf("budgeted search errored: %v", err)
	}
	if !ans.Truncated {
		t.Fatalf("budget %d of %d evals did not truncate", budget, fullAns.Stats.DistanceCalls)
	}
	if ans.Stats.DistanceCalls > budget {
		t.Fatalf("query spent %d evals, budget %d", ans.Stats.DistanceCalls, budget)
	}
	if ans.Cached {
		t.Fatal("truncated answer claimed to be cached")
	}
	// The truncated answer must not have poisoned the cache: the next
	// exact query recomputes and matches the uncached exact answer.
	exact, err := e.Search(context.Background(), q, Query{Kind: KindKNN, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Cached {
		t.Fatal("exact query after truncated one was served from the cache")
	}
	sameResults(t, "exact after truncated", exact.Results, fullAns.Results)
}

// TestSearchValidation: malformed queries surface ErrInvalidQuery and
// never touch the counters' query path.
func TestSearchValidation(t *testing.T) {
	e := newTestEngine(t, 40, Options{})
	q := testDB(40, 7)[3]
	cases := []Query{
		{},                                  // missing kind
		{Kind: "fuzzy", K: 3},               // unknown kind
		{Kind: KindKNN},                     // k missing
		{Kind: KindKNN, K: -2},              // negative k
		{Kind: KindSubKNN},                  // k missing
		{Kind: KindRange, Radius: -1},       // negative radius
		{Kind: KindKNN, K: 3, Limit: -1},    // negative limit
		{Kind: KindKNN, K: 3, MaxEvals: -5}, // negative budget
	}
	for i, bad := range cases {
		if _, err := e.Search(context.Background(), q, bad); !errors.Is(err, ErrInvalidQuery) {
			t.Errorf("case %d (%+v): err = %v, want ErrInvalidQuery", i, bad, err)
		}
	}
	if _, err := e.Search(context.Background(), nil, Query{Kind: KindKNN, K: 3}); !errors.Is(err, ErrInvalidQuery) {
		t.Errorf("nil trajectory: err = %v, want ErrInvalidQuery", err)
	}
}

// TestSearchLimitSeedsBound: an admissible Limit prunes the answer set
// to distances ≤ Limit while keeping the surviving prefix byte-identical
// to the unbounded search.
func TestSearchLimitSeedsBound(t *testing.T) {
	db := testDB(130, 47)
	for _, shards := range []int{1, 4} {
		e, err := NewEngineFromDB(db, trajtree.Options{Seed: 1, LeafSize: 5}, Options{CacheSize: -1, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		q := db[9].Clone()
		q.ID = 9_000_000
		full, err := e.Search(context.Background(), q, Query{Kind: KindKNN, K: 10})
		if err != nil {
			t.Fatal(err)
		}
		if len(full.Results) < 4 {
			t.Fatal("not enough results to seed a limit")
		}
		// An admissible external bound: the exact 4th-best distance.
		limit := full.Results[3].Dist
		ans, err := e.Search(context.Background(), q, Query{Kind: KindKNN, K: 10, Limit: limit})
		if err != nil {
			t.Fatal(err)
		}
		if len(ans.Results) == 0 || len(ans.Results) > len(full.Results) {
			t.Fatalf("shards=%d: limited search returned %d results", shards, len(ans.Results))
		}
		for i, r := range ans.Results {
			if r.Dist > limit {
				t.Fatalf("shards=%d: result %d dist %v exceeds limit %v", shards, i, r.Dist, limit)
			}
			if r.Traj.ID != full.Results[i].Traj.ID || r.Dist != full.Results[i].Dist {
				t.Fatalf("shards=%d: limited prefix diverges at %d", shards, i)
			}
		}
	}
}
