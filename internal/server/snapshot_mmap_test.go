package server

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"trajmatch/internal/traj"
	"trajmatch/internal/trajtree"
)

// searchKNN and searchRange run one query through the unified Search
// path, failing the test on error.
func searchKNN(t *testing.T, e *Engine, q *traj.Trajectory, k int) []trajtree.Result {
	t.Helper()
	ans, err := e.Search(context.Background(), q, Query{Kind: KindKNN, K: k})
	if err != nil {
		t.Fatalf("Search knn: %v", err)
	}
	return ans.Results
}

func searchRange(t *testing.T, e *Engine, q *traj.Trajectory, radius float64) []trajtree.Result {
	t.Helper()
	ans, err := e.Search(context.Background(), q, Query{Kind: KindRange, Radius: radius})
	if err != nil {
		t.Fatalf("Search range: %v", err)
	}
	return ans.Results
}

// TestSnapshotMmapBoot pins the warm-boot path: a snapshot loaded with
// Options.Mmap serves every shard from its mapped arena file — visible
// through the per-shard memory stats — and answers byte-identically to
// the gob boot of the same directory.
func TestSnapshotMmapBoot(t *testing.T) {
	db := testDB(120, 43)
	topt := trajtree.Options{Seed: 1, LeafSize: 5}
	for _, shards := range []int{1, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			dir := t.TempDir()
			e, err := NewEngineFromDB(db, topt, Options{CacheSize: -1, Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			if err := e.SaveSnapshot(dir); err != nil {
				t.Fatal(err)
			}
			gob, err := LoadSnapshot(dir, Options{CacheSize: -1})
			if err != nil {
				t.Fatalf("gob load: %v", err)
			}
			mm, err := LoadSnapshot(dir, Options{CacheSize: -1, Mmap: true})
			if err != nil {
				t.Fatalf("mmap load: %v", err)
			}
			for i, ss := range mm.Stats().PerShard {
				if ss.Mem == nil || !ss.Mem.Arena.Mapped {
					t.Fatalf("shard %d not mmap-backed: %+v", i, ss.Mem)
				}
			}
			for i, ss := range gob.Stats().PerShard {
				if ss.Mem == nil || ss.Mem.Arena.Mapped {
					t.Fatalf("gob-loaded shard %d claims to be mapped: %+v", i, ss.Mem)
				}
			}
			for it := 0; it < 10; it++ {
				q := db[(it*13)%len(db)].Clone()
				q.ID = 6_000_000 + it
				sameResults(t, fmt.Sprintf("KNN it=%d", it), searchKNN(t, mm, q, 6), searchKNN(t, gob, q, 6))
				sameResults(t, fmt.Sprintf("Range it=%d", it), searchRange(t, mm, q, 30), searchRange(t, gob, q, 30))
			}
			// A mapped engine stays fully mutable; the rebuild folds the
			// insert in and moves the shard onto fresh heap slabs.
			nt := testDB(121, 47)[120]
			nt.ID = 70_001
			if err := mm.Insert(nt); err != nil {
				t.Fatalf("post-mmap-load insert: %v", err)
			}
			if err := mm.Rebuild(); err != nil {
				t.Fatalf("post-mmap-load rebuild: %v", err)
			}
			if mm.Lookup(70_001) == nil {
				t.Fatal("inserted trajectory lost across rebuild")
			}
		})
	}
}

// TestSnapshotMmapFallback pins that the mmap path is an accelerator,
// never a dependency: a damaged or missing arena file demotes only that
// shard to the gob stream, with identical answers.
func TestSnapshotMmapFallback(t *testing.T) {
	db := testDB(100, 51)
	topt := trajtree.Options{Seed: 1, LeafSize: 5}
	dir := t.TempDir()
	e, err := NewEngineFromDB(db, topt, Options{CacheSize: -1, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}

	// Shard 0: flip a bit mid-file. Shard 2: delete the arena file.
	p0 := filepath.Join(dir, arenaFileName(0))
	raw, err := os.ReadFile(p0)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(p0, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, arenaFileName(2))); err != nil {
		t.Fatal(err)
	}

	mm, err := LoadSnapshot(dir, Options{CacheSize: -1, Mmap: true})
	if err != nil {
		t.Fatalf("mmap load over damaged arena files: %v", err)
	}
	wantMapped := []bool{false, true, false}
	for i, ss := range mm.Stats().PerShard {
		if ss.Mem == nil || ss.Mem.Arena.Mapped != wantMapped[i] {
			t.Fatalf("shard %d mapped=%v, want %v", i, ss.Mem != nil && ss.Mem.Arena.Mapped, wantMapped[i])
		}
	}
	for it := 0; it < 8; it++ {
		q := db[(it*17)%len(db)].Clone()
		q.ID = 6_500_000 + it
		sameResults(t, fmt.Sprintf("KNN it=%d", it), searchKNN(t, mm, q, 5), searchKNN(t, e, q, 5))
	}
}

// TestSnapshotMmapOldDirectory pins backward compatibility: a snapshot
// directory without arena files or manifest checksums (simulated by
// stripping both) still loads under Options.Mmap via the gob streams.
func TestSnapshotMmapOldDirectory(t *testing.T) {
	db := testDB(60, 53)
	dir := t.TempDir()
	e, err := NewEngineFromDB(db, trajtree.Options{Seed: 1, LeafSize: 5}, Options{CacheSize: -1, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := os.Remove(filepath.Join(dir, arenaFileName(i))); err != nil {
			t.Fatal(err)
		}
	}
	mm, err := LoadSnapshot(dir, Options{CacheSize: -1, Mmap: true})
	if err != nil {
		t.Fatalf("mmap load of arena-less directory: %v", err)
	}
	if mm.Size() != len(db) {
		t.Fatalf("size %d, want %d", mm.Size(), len(db))
	}
}
