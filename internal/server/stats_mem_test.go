package server

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"trajmatch/internal/traj"
	"trajmatch/internal/trajtree"
)

// TestV1StatsMemorySection pins the wire shape of the per-shard memory
// block on /v1/stats: clients and dashboards key on these exact JSON
// names, so renaming any of them is a breaking API change.
func TestV1StatsMemorySection(t *testing.T) {
	db := testDB(80, 61)
	e, err := NewEngineFromDB(db, trajtree.Options{Seed: 1, LeafSize: 5}, Options{CacheSize: -1, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewAPIHandler(e, HandlerOptions{}))
	defer srv.Close()

	// Decode into a raw map so the assertions hit the literal JSON keys,
	// not whatever the Go struct tags happen to decode into.
	var raw map[string]any
	if r := postGet(t, srv, "/v1/stats", &raw); r.StatusCode != http.StatusOK {
		t.Fatalf("status %d", r.StatusCode)
	}
	shards, ok := raw["per_shard"].([]any)
	if !ok || len(shards) != 2 {
		t.Fatalf("per_shard missing or wrong length: %#v", raw["per_shard"])
	}
	totalMembers := 0.0
	for i, s := range shards {
		sh := s.(map[string]any)
		mem, ok := sh["mem"].(map[string]any)
		if !ok {
			t.Fatalf("shard %d: no mem section: %#v", i, sh)
		}
		for _, key := range []string{"arena", "overlay", "fold_ins"} {
			if _, ok := mem[key]; !ok {
				t.Fatalf("shard %d: mem missing key %q: %#v", i, key, mem)
			}
		}
		ar, ok := mem["arena"].(map[string]any)
		if !ok {
			t.Fatalf("shard %d: mem.arena not an object: %#v", i, mem["arena"])
		}
		for _, key := range []string{"members", "points", "bytes", "mapped"} {
			if _, ok := ar[key]; !ok {
				t.Fatalf("shard %d: mem.arena missing key %q: %#v", i, key, ar)
			}
		}
		if ar["bytes"].(float64) <= 0 {
			t.Fatalf("shard %d: arena bytes %v, want > 0", i, ar["bytes"])
		}
		if ar["mapped"].(bool) {
			t.Fatalf("shard %d: heap-built arena claims to be mmap-backed", i)
		}
		if mem["overlay"].(float64) != 0 {
			t.Fatalf("shard %d: fresh build has overlay %v, want 0", i, mem["overlay"])
		}
		totalMembers += ar["members"].(float64)
	}
	if int(totalMembers) != len(db) {
		t.Fatalf("arena members sum %v, want %d", totalMembers, len(db))
	}

	// Inserts land in the heap overlay; a rebuild folds them into fresh
	// slabs and bumps the fold-in counter. Both transitions must be
	// visible through the endpoint.
	nt := traj.New(9_900_001, db[0].Points)
	if err := e.Insert(nt); err != nil {
		t.Fatal(err)
	}
	overlayTotal := func() (o, f float64) {
		var st Stats
		if r := postGet(t, srv, "/v1/stats", &st); r.StatusCode != http.StatusOK {
			t.Fatalf("status %d", r.StatusCode)
		}
		for _, ss := range st.PerShard {
			if ss.Mem == nil {
				t.Fatalf("shard %d lost its mem section", ss.Shard)
			}
			o += float64(ss.Mem.Overlay)
			f += float64(ss.Mem.FoldIns)
		}
		return o, f
	}
	if o, _ := overlayTotal(); o != 1 {
		t.Fatalf("overlay after insert = %v, want 1", o)
	}
	if err := e.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if o, f := overlayTotal(); o != 0 || f < 1 {
		t.Fatalf("after rebuild overlay=%v fold_ins=%v, want 0 and >=1", o, f)
	}
}
