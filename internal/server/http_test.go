// Deprecated-API regression coverage:
//
//lint:file-ignore SA1019 pins the deprecated NewHandler and engine wrappers on purpose.
package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"trajmatch/internal/traj"
)

func wire(t *traj.Trajectory) WireTrajectory {
	w := WireTrajectory{ID: t.ID, Label: t.Label, Points: make([][3]float64, len(t.Points))}
	for i, p := range t.Points {
		w.Points[i] = [3]float64{p.X, p.Y, p.T}
	}
	return w
}

func postJSON(t *testing.T, srv *httptest.Server, path string, body, dst any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	if dst != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
			t.Fatalf("POST %s: decode: %v", path, err)
		}
	}
	return resp
}

func TestHTTPKNNRoundTrip(t *testing.T) {
	e := newTestEngine(t, 60, Options{})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	q := testDB(60, 7)[10].Clone()
	q.ID = 1_000_000
	var resp KNNResponse
	httpResp := postJSON(t, srv, "/knn", KNNRequest{Query: wire(q), K: 5}, &resp)
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("POST /knn status %d", httpResp.StatusCode)
	}
	if len(resp.Results) != 5 {
		t.Fatalf("got %d results, want 5", len(resp.Results))
	}
	want, _ := e.KNN(q, 5)
	for i, n := range resp.Results {
		if n.ID != want[i].Traj.ID || n.Dist != want[i].Dist {
			t.Errorf("rank %d: wire (%d, %v) != engine (%d, %v)",
				i, n.ID, n.Dist, want[i].Traj.ID, want[i].Dist)
		}
	}
	for i := 1; i < len(resp.Results); i++ {
		if resp.Results[i].Dist < resp.Results[i-1].Dist {
			t.Errorf("results not sorted at rank %d", i)
		}
	}
	if resp.Cached {
		t.Error("first query reported cached")
	}

	// The identical query again is served from the cache and says so.
	var again KNNResponse
	postJSON(t, srv, "/knn", KNNRequest{Query: wire(q), K: 5}, &again)
	if !again.Cached {
		t.Error("repeat query not reported as cached")
	}
	if len(again.Results) != len(resp.Results) {
		t.Errorf("cached answer has %d results, want %d", len(again.Results), len(resp.Results))
	}
}

func TestHTTPKNNBatch(t *testing.T) {
	e := newTestEngine(t, 60, Options{Workers: 4})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	db := testDB(60, 7)
	req := KNNBatchRequest{K: 3}
	for i := 0; i < 10; i++ {
		q := db[i*5].Clone()
		q.ID = 1_000_000 + i
		req.Queries = append(req.Queries, wire(q))
	}
	var resp KNNBatchResponse
	if r := postJSON(t, srv, "/knn/batch", req, &resp); r.StatusCode != http.StatusOK {
		t.Fatalf("POST /knn/batch status %d", r.StatusCode)
	}
	if len(resp.Results) != 10 {
		t.Fatalf("got %d answer lists, want 10", len(resp.Results))
	}
	for i, rs := range resp.Results {
		if len(rs) != 3 {
			t.Errorf("query %d: %d results, want 3", i, len(rs))
		}
	}
}

func TestHTTPRangeInsertStats(t *testing.T) {
	e := newTestEngine(t, 40, Options{})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	// Insert a trajectory far away from the grid, then range-query near it.
	far := traj.New(7000, []traj.Point{traj.P(90_000, 90_000, 0), traj.P(90_050, 90_000, 10)})
	var ins InsertResponse
	if r := postJSON(t, srv, "/insert", InsertRequest{Trajectories: []WireTrajectory{wire(far)}}, &ins); r.StatusCode != http.StatusOK {
		t.Fatalf("POST /insert status %d", r.StatusCode)
	}
	if ins.Inserted != 1 || ins.Size != 41 {
		t.Fatalf("insert response %+v, want inserted 1 size 41", ins)
	}

	probe := traj.New(7777, []traj.Point{traj.P(90_001, 90_000, 0), traj.P(90_049, 90_000, 10)})
	var rng RangeResponse
	if r := postJSON(t, srv, "/range", RangeRequest{Query: wire(probe), Radius: 100}, &rng); r.StatusCode != http.StatusOK {
		t.Fatalf("POST /range status %d", r.StatusCode)
	}
	if len(rng.Results) != 1 || rng.Results[0].ID != 7000 {
		t.Fatalf("range results %+v, want exactly trajectory 7000", rng.Results)
	}

	resp, err := srv.Client().Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Size != 41 || st.Inserts != 1 || st.Queries == 0 {
		t.Errorf("stats %+v: want size 41, inserts 1, queries > 0", st)
	}
}

func TestHTTPDeleteRebuild(t *testing.T) {
	e := newTestEngine(t, 40, Options{Shards: 2})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	// Delete two present IDs and one absent one in a single call.
	var del DeleteResponse
	if r := postJSON(t, srv, "/delete", DeleteRequest{IDs: []int{3, 17, 99_999}}, &del); r.StatusCode != http.StatusOK {
		t.Fatalf("POST /delete status %d", r.StatusCode)
	}
	if del.Deleted != 2 || len(del.Missing) != 1 || del.Missing[0] != 99_999 {
		t.Fatalf("delete response %+v, want deleted 2 missing [99999]", del)
	}
	if del.Size != 38 {
		t.Fatalf("delete response size %d, want 38", del.Size)
	}
	if e.Lookup(3) != nil || e.Lookup(17) != nil {
		t.Fatal("deleted trajectories still indexed")
	}

	// Empty ID list is a client error.
	if r := postJSON(t, srv, "/delete", DeleteRequest{}, nil); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty /delete status %d, want 400", r.StatusCode)
	}

	var reb RebuildResponse
	if r := postJSON(t, srv, "/rebuild", nil, &reb); r.StatusCode != http.StatusOK {
		t.Fatalf("POST /rebuild status %d", r.StatusCode)
	}
	if reb.Size != 38 || reb.Shards != 2 {
		t.Fatalf("rebuild response %+v, want size 38 shards 2", reb)
	}
	if got := e.Stats(); got.Rebuilds != 1 || got.Deletes != 2 {
		t.Fatalf("stats %+v, want rebuilds 1 deletes 2", got)
	}

	// The rebuilt index still answers correctly.
	q := testDB(40, 7)[5].Clone()
	q.ID = 1_000_000
	res, _ := e.KNN(q, 3)
	if len(res) != 3 {
		t.Fatalf("post-rebuild KNN returned %d results", len(res))
	}
	for _, r := range res {
		if r.Traj.ID == 3 || r.Traj.ID == 17 {
			t.Fatalf("post-rebuild KNN returned deleted trajectory %d", r.Traj.ID)
		}
	}
}

func TestHTTPHealthz(t *testing.T) {
	e := newTestEngine(t, 20, Options{})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz status %d", resp.StatusCode)
	}
}

func TestHTTPErrors(t *testing.T) {
	e := newTestEngine(t, 20, Options{})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	q := testDB(20, 7)[0]
	cases := []struct {
		name, path string
		body       any
		wantCode   int
	}{
		{"k zero", "/knn", KNNRequest{Query: wire(q), K: 0}, http.StatusBadRequest},
		{"single point query", "/knn", KNNRequest{Query: WireTrajectory{ID: 1, Points: [][3]float64{{0, 0, 0}}}, K: 1}, http.StatusBadRequest},
		{"negative radius", "/range", RangeRequest{Query: wire(q), Radius: -1}, http.StatusBadRequest},
		{"duplicate insert", "/insert", InsertRequest{Trajectories: []WireTrajectory{wire(q)}}, http.StatusBadRequest},
		{"unknown field", "/knn", map[string]any{"query": wire(q), "k": 1, "bogus": true}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if resp := postJSON(t, srv, tc.path, tc.body, nil); resp.StatusCode != tc.wantCode {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.wantCode)
		}
	}

	// Wrong method on a POST-only route.
	resp, err := srv.Client().Get(srv.URL + "/knn")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /knn status %d, want 405", resp.StatusCode)
	}
}
