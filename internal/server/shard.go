package server

import (
	"io"
	"sync"

	"trajmatch/internal/traj"
	"trajmatch/internal/trajtree"
)

// shard is one independently locked partition of the index: a
// trajtree.Tree plus the RWMutex that serialises its updates against its
// readers. Queries fan out across shards taking each shard's read lock
// individually, so an Insert/Delete/Rebuild on one shard stalls only the
// 1/N of the search space it owns while the other shards keep answering.
type shard struct {
	mu   sync.RWMutex
	tree *trajtree.Tree
}

// searchKNN runs the bound-seeded k-NN search under the shard's read
// lock; bound may be nil for a self-contained single-shard search, and
// ctl may be nil for an uncancellable, unbudgeted one.
func (s *shard) searchKNN(q *traj.Trajectory, k int, bound *trajtree.SharedBound, ctl *trajtree.Ctl) ([]trajtree.Result, trajtree.Stats, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.SearchKNN(q, k, bound, ctl)
}

// searchRange runs the radius-seeded search under the read lock.
func (s *shard) searchRange(q *traj.Trajectory, radius float64, ctl *trajtree.Ctl) ([]trajtree.Result, trajtree.Stats, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.SearchRange(q, radius, ctl)
}

// searchSub runs the bounded EDwPsub scan under the read lock.
func (s *shard) searchSub(q *traj.Trajectory, k int, bound *trajtree.SharedBound, ctl *trajtree.Ctl) ([]trajtree.Result, trajtree.Stats, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.SearchSub(q, k, bound, ctl)
}

func (s *shard) size() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.Size()
}

func (s *shard) height() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.Height()
}

func (s *shard) lookup(id int) *traj.Trajectory {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.Lookup(id)
}

// insert adds tr and bumps the engine generation while still holding the
// shard's write lock, so any query that observes the new trajectory also
// observes the new generation (the result-cache consistency argument in
// engine.go depends on this ordering).
func (s *shard) insert(tr *traj.Trajectory, gen *engineGen) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.tree.Insert(tr); err != nil {
		return err
	}
	gen.bump()
	return nil
}

func (s *shard) delete(id int, gen *engineGen) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.tree.Delete(id) {
		return false
	}
	gen.bump()
	return true
}

func (s *shard) rebuild(gen *engineGen) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.tree.Rebuild(); err != nil {
		return err
	}
	gen.bump()
	return nil
}

// save serialises the shard's tree under the read lock, so a snapshot
// write runs concurrently with queries and only briefly excludes updates
// to this one shard. The returned size is captured under the same lock
// hold as the serialisation, so the manifest can record exactly what the
// stream contains even while writers land on this shard between save
// calls.
func (s *shard) save(w io.Writer) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := s.tree.Save(w); err != nil {
		return 0, err
	}
	return s.tree.Size(), nil
}

func (s *shard) options() trajtree.Options {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.Options()
}
