package server

import (
	"fmt"
	"io"
	"sync"

	"trajmatch/internal/backend"
	"trajmatch/internal/par"
	"trajmatch/internal/traj"
	"trajmatch/internal/trajtree"
)

// treeOf is the single place the engine recognises a persistent backend:
// today that means the concrete tree type, because the snapshot format
// (trajtree.Save streams + manifest tree options) is tree-specific. A
// future second persistent backend generalises this helper — and the
// manifest — rather than scattering assertions.
func treeOf(be backend.Backend) (*trajtree.Tree, bool) {
	tree, ok := be.(*trajtree.Tree)
	return tree, ok
}

// shard is one independently locked partition of a metric's index: a
// backend.Backend plus the RWMutex that serialises its updates against
// its readers. Queries fan out across shards taking each shard's read
// lock individually, so an Insert/Delete/Rebuild on one shard stalls only
// the 1/N of the search space it owns while the other shards keep
// answering.
//
// The optional operations — sub-trajectory search, mutation, persistence
// — are capability-gated: the shard type-asserts the corresponding
// interface and degrades to backend.ErrNotSupported when the backend
// lacks it, so the engine above stays metric-agnostic.
type shard struct {
	mu sync.RWMutex
	be backend.Backend
}

// buildSpecShards builds one backend per pre-partitioned group on the
// worker pool.
func buildSpecShards(groups [][]*traj.Trajectory, spec backend.Spec, opt Options) ([]*shard, error) {
	shards := make([]*shard, len(groups))
	err := par.ForErr(opt.Workers, len(groups), func(i int) error {
		be, err := spec.Build(groups[i])
		if err != nil {
			return err
		}
		shards[i] = &shard{be: be}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("server: build metric %q: %w", spec.Name, err)
	}
	return shards, nil
}

// searchKNN runs the bound-seeded k-NN search under the shard's read
// lock; bound may be nil for a self-contained single-shard search, and
// ctl may be nil for an uncancellable, unbudgeted one.
func (s *shard) searchKNN(q *traj.Trajectory, k int, bound *backend.SharedBound, ctl *backend.Ctl) ([]backend.Result, backend.Stats, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.be.SearchKNN(q, k, bound, ctl)
}

// searchKNNIn runs the candidate-restricted k-NN verification under the
// read lock, degrading to ErrNotSupported on backends without the
// CandidateSearcher capability.
func (s *shard) searchKNNIn(q *traj.Trajectory, ids []int, k int, bound *backend.SharedBound, ctl *backend.Ctl) ([]backend.Result, backend.Stats, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	cs, ok := s.be.(backend.CandidateSearcher)
	if !ok {
		return nil, backend.Stats{}, false, fmt.Errorf("prefilter %w", backend.ErrNotSupported)
	}
	return cs.SearchKNNIn(q, ids, k, bound, ctl)
}

// searchRange runs the radius-seeded search under the read lock.
func (s *shard) searchRange(q *traj.Trajectory, radius float64, ctl *backend.Ctl) ([]backend.Result, backend.Stats, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.be.SearchRange(q, radius, ctl)
}

// searchSub runs the bounded sub-trajectory scan under the read lock,
// degrading to ErrNotSupported on backends whose metric has no
// sub-trajectory form.
func (s *shard) searchSub(q *traj.Trajectory, k int, bound *backend.SharedBound, ctl *backend.Ctl) ([]backend.Result, backend.Stats, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sub, ok := s.be.(backend.SubSearcher)
	if !ok {
		return nil, backend.Stats{}, false, fmt.Errorf("sub-trajectory search %w", backend.ErrNotSupported)
	}
	return sub.SearchSub(q, k, bound, ctl)
}

func (s *shard) size() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.be.Size()
}

// height returns the shard's index height for tree-backed shards and 0
// for flat ones; it is a shape statistic, not part of the contract.
func (s *shard) height() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if tree, ok := treeOf(s.be); ok {
		return tree.Height()
	}
	return 0
}

func (s *shard) lookup(id int) *traj.Trajectory {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.be.Lookup(id)
}

// insert adds tr and bumps the engine generation while still holding the
// shard's write lock, so any query that observes the new trajectory also
// observes the new generation (the result-cache consistency argument in
// engine.go depends on this ordering).
func (s *shard) insert(tr *traj.Trajectory, gen *engineGen) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.be.(backend.Mutable)
	if !ok {
		return fmt.Errorf("insert %w", backend.ErrNotSupported)
	}
	if err := m.Insert(tr); err != nil {
		return err
	}
	gen.bump()
	return nil
}

func (s *shard) delete(id int, gen *engineGen) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.be.(backend.Mutable)
	if !ok {
		return false, fmt.Errorf("delete %w", backend.ErrNotSupported)
	}
	if !m.Delete(id) {
		return false, nil
	}
	gen.bump()
	return true, nil
}

func (s *shard) rebuild(gen *engineGen) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.be.(backend.Mutable)
	if !ok {
		return fmt.Errorf("rebuild %w", backend.ErrNotSupported)
	}
	if err := m.Rebuild(); err != nil {
		return err
	}
	gen.bump()
	return nil
}

// save serialises a tree-backed shard under the read lock, so a snapshot
// write runs concurrently with queries and only briefly excludes updates
// to this one shard. The returned size is captured under the same lock
// hold as the serialisation, so the manifest can record exactly what the
// stream contains even while writers land on this shard between save
// calls.
func (s *shard) save(w io.Writer) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	tree, ok := treeOf(s.be)
	if !ok {
		return 0, fmt.Errorf("snapshot %w", backend.ErrNotSupported)
	}
	if err := tree.Save(w); err != nil {
		return 0, err
	}
	return tree.Size(), nil
}

// saveArena serialises a tree-backed shard in the mmap-able arena
// snapshot format, under the same locking discipline as save.
func (s *shard) saveArena(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	tree, ok := treeOf(s.be)
	if !ok {
		return fmt.Errorf("snapshot %w", backend.ErrNotSupported)
	}
	return tree.SaveArena(w)
}

// memStats returns a tree-backed shard's memory-layout counters (nil
// otherwise); the stats endpoint reports them per shard.
func (s *shard) memStats() *trajtree.MemStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if tree, ok := treeOf(s.be); ok {
		ms := tree.MemStats()
		return &ms
	}
	return nil
}

// options returns the tree options of a tree-backed shard (the zero
// value otherwise); the snapshot manifest records them.
func (s *shard) options() trajtree.Options {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if tree, ok := treeOf(s.be); ok {
		return tree.Options()
	}
	return trajtree.Options{}
}

// all returns the shard's members (tree-backed shards only; the snapshot
// loader uses it to rebuild non-persistent metric sets from a loaded
// corpus).
func (s *shard) all() []*traj.Trajectory {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if tree, ok := treeOf(s.be); ok {
		return tree.All()
	}
	return nil
}
