package server

import (
	"fmt"

	"trajmatch/internal/backend"
	"trajmatch/internal/sketch"
	"trajmatch/internal/traj"
)

// The candidate prefilter is engine-owned: one sketch.Index per shard,
// shared across every loaded metric set, because candidacy is a function
// of geometry alone while the metric only decides how candidates are
// verified. Queries opt in per request (Query.Prefilter); the fan-out
// then asks the shard's sketch for a candidate set and hands it to the
// backend's CandidateSearcher capability for exact, bound-ordered
// verification — answers are exact over the admitted set, and the only
// approximation is recall (a true neighbour the sketch never admitted).
// Like the shard placement, the sketch parameters are whole-corpus
// state: CellSize is derived from the full database before sharding, so
// every shard tokenizes identically and a snapshot reload can rebuild
// the exact same prefilter from the manifest's recorded parameters.

// resolveSketchParams fixes the whole-corpus sketch parameters: derive
// CellSize from the full database when unset, fill defaults, validate.
func resolveSketchParams(db []*traj.Trajectory, p sketch.Params) (sketch.Params, error) {
	if p.CellSize == 0 {
		p.CellSize = sketch.DeriveCellSize(db)
	}
	p = p.WithDefaults()
	if err := p.Validate(); err != nil {
		return p, fmt.Errorf("server: prefilter: %w", err)
	}
	return p, nil
}

// buildSketches builds one sketch index per owned hash-placed shard of
// db under already-resolved parameters.
func buildSketches(db []*traj.Trajectory, place placement, p sketch.Params) ([]*sketch.Index, error) {
	groups := partitionOwned(db, place, func(t *traj.Trajectory) int { return t.ID })
	out := make([]*sketch.Index, len(groups))
	for i, g := range groups {
		ix, err := sketch.Build(g, p)
		if err != nil {
			return nil, fmt.Errorf("server: prefilter shard %d: %w", i, err)
		}
		out[i] = ix
	}
	return out, nil
}

// enablePrefilter resolves the sketch parameters over the full corpus,
// builds the per-shard indexes and attaches them to the engine.
func (e *Engine) enablePrefilter(db []*traj.Trajectory, p sketch.Params) error {
	rp, err := resolveSketchParams(db, p)
	if err != nil {
		return err
	}
	sketches, err := buildSketches(db, e.place, rp)
	if err != nil {
		return err
	}
	e.sketches = sketches
	e.sketchParams = rp
	return nil
}

// PrefilterEnabled reports whether the engine was booted with the
// candidate prefilter (Options.Prefilter or a snapshot recording one).
func (e *Engine) PrefilterEnabled() bool { return e.sketches != nil }

// SketchParams returns the resolved prefilter parameters (the zero
// value when the prefilter is disabled).
func (e *Engine) SketchParams() sketch.Params { return e.sketchParams }

// prefilterWant is how many candidates the engine requests per shard:
// 8·k or 1/24 of the shard, whichever is larger (and floored below by
// the params' MinCands, inside Candidates). The slack over k is what
// keeps recall high — the sketch only has to rank a true neighbour into
// the admitted set by signature and cell overlap, not into the top k —
// and the size-proportional floor keeps recall from collapsing as the
// corpus grows while still capping the verified population at ~4% of
// the shard (the verifiers' own lower bounds then cut actual kernel
// evaluations well below that).
func prefilterWant(k, size int) int {
	w := 8 * k
	if f := size / 24; f > w {
		w = f
	}
	return w
}

// prefilterShard answers one shard's slice of a prefiltered k-NN query:
// sketch candidates first, then exact verification restricted to them,
// under the same shared bound and Ctl as a full search. The stats
// record both the verification work and what the prefilter saved
// (PrefilterSkipped members never touched by any bound or kernel).
func (e *Engine) prefilterShard(s *shard, ix *sketch.Index, q *traj.Trajectory, req Query,
	bound *backend.SharedBound, ctl *backend.Ctl) ([]backend.Result, backend.Stats, bool, error) {
	ids, _ := ix.Candidates(q, prefilterWant(req.K, s.size()))
	res, st, truncated, err := s.searchKNNIn(q, ids, req.K, bound, ctl)
	st.PrefilterCandidates += len(ids)
	if skipped := s.size() - len(ids); skipped > 0 {
		st.PrefilterSkipped += skipped
	}
	return res, st, truncated, err
}
