// HTTP surface tests for the streaming endpoints: the README's
// append → watch → events pipeline, long-poll wakeups, the SSE feed,
// and every documented error status.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"trajmatch/internal/traj"
)

// TestHTTPStreamPipeline drives the full lifecycle over the wire: a
// standing query registers, appends create and grow a live track, the
// match event is already readable when the append responds (one
// round-trip), search sees the live track, sealing folds it in, and
// the error statuses fire where documented.
func TestHTTPStreamPipeline(t *testing.T) {
	e := newTestEngine(t, 30, Options{Shards: 2, Prefilter: true})
	srv := httptest.NewServer(NewAPIHandler(e, HandlerOptions{}))
	defer srv.Close()

	src := testDB(30, 99)[4] // disjoint from the seeded corpus
	pattern := traj.New(-1, append([]traj.Point(nil), src.Points[1:4]...))
	wp := wire(pattern)

	var wresp WatchResponse
	if r := postJSON(t, srv, "/v1/watch", WatchRequest{Pattern: wp, Threshold: 1e-9}, &wresp); r.StatusCode != http.StatusOK {
		t.Fatalf("watch status %d", r.StatusCode)
	}
	if wresp.Watch == 0 {
		t.Fatal("watch response carries no ID")
	}

	// Append the whole source track in two deltas; by the time the
	// second append's response arrives the match event must be
	// readable with a plain no-wait poll.
	wt := wire(src)
	var aresp AppendResponse
	if r := postJSON(t, srv, "/v1/append", AppendRequest{ID: 7500, Label: 2, Points: wt.Points[:2]}, &aresp); r.StatusCode != http.StatusOK {
		t.Fatalf("append status %d", r.StatusCode)
	}
	if aresp.Offset != 0 || aresp.Length != 2 {
		t.Fatalf("append ack %+v, want offset 0 length 2", aresp)
	}
	if r := postJSON(t, srv, "/v1/append", AppendRequest{ID: 7500, Points: wt.Points[2:]}, &aresp); r.StatusCode != http.StatusOK {
		t.Fatalf("append status %d", r.StatusCode)
	}
	if aresp.Offset != 2 || aresp.Length != len(wt.Points) {
		t.Fatalf("append ack %+v, want offset 2 length %d", aresp, len(wt.Points))
	}

	resp, err := srv.Client().Get(srv.URL + "/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	var eresp EventsResponse
	decodeBody(t, resp, &eresp)
	if len(eresp.Events) != 1 || eresp.Gap {
		t.Fatalf("events after matching append: %+v", eresp)
	}
	ev := eresp.Events[0]
	if ev.Watch != wresp.Watch || ev.Track != 7500 || ev.Seq != 1 || ev.Rank != -1 {
		t.Fatalf("match event %+v", ev)
	}
	if eresp.NextSince != ev.Seq {
		t.Fatalf("next_since %d, want %d", eresp.NextSince, ev.Seq)
	}
	// Resuming from the cursor returns nothing new.
	resp, err = srv.Client().Get(srv.URL + "/v1/events?since=1")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, &eresp)
	if len(eresp.Events) != 0 || eresp.NextSince != 1 {
		t.Fatalf("resumed poll %+v", eresp)
	}

	// The live track serves immediately.
	q := wire(src)
	q.ID = 9_400_000
	var sresp SearchResponse
	if r := postJSON(t, srv, "/v1/search", SearchRequest{Query: Query{Kind: KindKNN, K: 1}, QueryTraj: &q}, &sresp); r.StatusCode != http.StatusOK {
		t.Fatalf("search status %d", r.StatusCode)
	}
	if len(sresp.Results) != 1 || sresp.Results[0].ID != 7500 || sresp.Results[0].Dist != 0 {
		t.Fatalf("live track not served: %+v", sresp.Results)
	}

	var seal SealResponse
	if r := postJSON(t, srv, "/v1/seal", SealRequest{ID: 7500}, &seal); r.StatusCode != http.StatusOK {
		t.Fatalf("seal status %d", r.StatusCode)
	}
	if seal.Size != 31 {
		t.Fatalf("post-seal size %d, want 31", seal.Size)
	}
	if tr := e.Lookup(7500); tr == nil || tr.Label != 2 || len(tr.Points) != len(src.Points) {
		t.Fatalf("sealed track wrong: %+v", tr)
	}

	// Error statuses: append onto the sealed ID conflicts, sealing an
	// unknown track is 404, bad deltas are 400, unknown watches 404.
	if r := postRaw(t, srv, "/v1/append", AppendRequest{ID: 7500, Points: wt.Points[:1]}); r.StatusCode != http.StatusConflict {
		t.Fatalf("append onto sealed ID: status %d, want 409", r.StatusCode)
	} else if decodeError(t, r).Code != CodeConflict {
		t.Fatal("conflict error code missing")
	}
	if r := postRaw(t, srv, "/v1/seal", SealRequest{ID: 7500}); r.StatusCode != http.StatusNotFound {
		t.Fatalf("re-seal: status %d, want 404", r.StatusCode)
	}
	if r := postRaw(t, srv, "/v1/append", AppendRequest{ID: 7501}); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty append: status %d, want 400", r.StatusCode)
	}
	if r := postRaw(t, srv, "/v1/watch", WatchRequest{Pattern: wp}); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("watch with neither threshold nor k: status %d, want 400", r.StatusCode)
	}

	var un UnwatchResponse
	if r := postJSON(t, srv, "/v1/unwatch", UnwatchRequest{Watch: wresp.Watch}, &un); r.StatusCode != http.StatusOK || !un.Removed {
		t.Fatalf("unwatch: status %d removed %v", r.StatusCode, un.Removed)
	}
	if r := postRaw(t, srv, "/v1/unwatch", UnwatchRequest{Watch: wresp.Watch}); r.StatusCode != http.StatusNotFound {
		t.Fatalf("re-unwatch: status %d, want 404", r.StatusCode)
	}
	if r, err := srv.Client().Get(srv.URL + "/v1/events?since=oops"); err != nil || r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad since: %v / %d", err, r.StatusCode)
	}
}

func decodeBody(t *testing.T, resp *http.Response, dst any) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		t.Fatalf("decode: %v", err)
	}
}

// TestHTTPEventsLongPoll: a poll with wait_ms parked before the match
// exists is woken by the append and answers within the wait window —
// and an expired wait answers empty with the cursor unchanged.
func TestHTTPEventsLongPoll(t *testing.T) {
	e := newTestEngine(t, 30, Options{Shards: 2, Prefilter: true})
	srv := httptest.NewServer(NewAPIHandler(e, HandlerOptions{}))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/v1/events?wait_ms=30")
	if err != nil {
		t.Fatal(err)
	}
	var empty EventsResponse
	decodeBody(t, resp, &empty)
	if len(empty.Events) != 0 || empty.NextSince != 0 {
		t.Fatalf("expired wait: %+v", empty)
	}

	src := testDB(30, 7)[6]
	pattern := traj.New(-1, append([]traj.Point(nil), src.Points[0:3]...))
	if _, err := e.Watch(pattern, "", 1e-9, 0, false); err != nil {
		t.Fatal(err)
	}

	type pollResult struct {
		resp EventsResponse
		err  error
	}
	done := make(chan pollResult, 1)
	go func() {
		resp, err := srv.Client().Get(srv.URL + "/v1/events?wait_ms=10000")
		if err != nil {
			done <- pollResult{err: err}
			return
		}
		defer resp.Body.Close()
		var er EventsResponse
		done <- pollResult{resp: er, err: json.NewDecoder(resp.Body).Decode(&er)}
	}()

	time.Sleep(50 * time.Millisecond) // let the poll park
	if _, err := e.Append(7600, 0, src.Points); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("long poll: %v", r.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long poll never woke up after the matching append")
	}
}

// TestHTTPEventsSSE: the SSE variant streams the match frame with its
// seq as the SSE id, honours Last-Event-ID resumption, and ends when
// the client goes away.
func TestHTTPEventsSSE(t *testing.T) {
	e := newTestEngine(t, 30, Options{Shards: 2, Prefilter: true})
	srv := httptest.NewServer(NewAPIHandler(e, HandlerOptions{}))
	defer srv.Close()

	src := testDB(30, 7)[8]
	pattern := traj.New(-1, append([]traj.Point(nil), src.Points[0:3]...))
	wid, err := e.Watch(pattern, "", 1e-9, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Append(7700, 0, src.Points); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/v1/events?sse=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var id, event, data string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "" && data != "":
		}
		if data != "" {
			break
		}
	}
	if sc.Err() != nil {
		t.Fatalf("sse read: %v", sc.Err())
	}
	if id != "1" || event != "match" {
		t.Fatalf("sse frame id=%q event=%q", id, event)
	}
	if !strings.Contains(data, `"track":7700`) || !strings.Contains(data, `"watch":`+strconv.Itoa(wid)) {
		t.Fatalf("sse data %q", data)
	}
	cancel() // disconnect; the handler must return, Close() must not hang
}
