package server

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"trajmatch/internal/backend"
	"trajmatch/internal/faultfs"
	"trajmatch/internal/par"
	"trajmatch/internal/sketch"
	"trajmatch/internal/traj"
	"trajmatch/internal/trajtree"
)

// A snapshot is a directory holding one trajtree.Save stream per shard
// plus a JSON manifest recording the format version, the shard count,
// the tree options, per-shard sizes and CRC32C checksums, and which
// metric backends were persisted. Persistence is a capability: only the
// tree-backed EDwP set streams to disk (the flat DTW/EDR indexes are
// cheap, deterministic functions of the corpus with no build state worth
// saving), so the manifest's Metrics list records exactly what the
// directory can restore by itself — LoadSnapshotSpecs rebuilds any other
// requested metric from the loaded corpus.
//
// The shard count is load-bearing: trajectories are hash-placed
// (router.go), so the files only mean what they say under the shard
// count they were written with — loading therefore adopts the manifest's
// count regardless of what the caller's Options ask for.
//
// Saves are two-phase and fsync before every rename: each shard streams
// to a temp file which is fsynced and only then renamed into place, the
// manifest goes last, and the directory itself is fsynced after the
// renames — a crash at any point leaves either the previous snapshot or
// the new one readable, never a file whose rename survived but whose
// bytes did not. The residual risk is a crash inside the rename loop,
// which mixes epochs; the loader's per-shard checksum, size and option
// checks reject such a directory instead of serving from it.
//
// Every file operation routes through the engine's faultfs.FS, so the
// crash-recovery harness can kill a save at each failpoint and assert
// the reboot invariant.

// snapshotVersion is bumped whenever the manifest layout, the per-shard
// stream format, or the placement hash changes incompatibly. Version 2
// wraps the manifest in a checksum envelope and records per-shard
// CRC32C checksums; version-1 directories are rejected with a clear
// error (re-save from a live engine to upgrade).
const snapshotVersion = 2

// manifestName is the manifest file inside a snapshot directory.
const manifestName = "MANIFEST.json"

// SnapshotManifestName is the manifest's file name inside every
// snapshot directory, exported for the cluster snapshot-shipping
// client, which must fetch it first (for coverage) and commit it last
// (writing it is the transaction's commit point).
const SnapshotManifestName = manifestName

// snapCRC is the CRC32C (Castagnoli) table shared by the manifest
// envelope and the per-shard stream checksums.
var snapCRC = crc32.MakeTable(crc32.Castagnoli)

// Shard files are self-describing containers, not bare tree streams:
//
//	[8-byte magic][uint32 shard count][uint32 shard index]
//	[trajtree.Save gob stream]
//	[uint32 CRC32C over header+stream]
//
// The trailer checksum lets a shard file vouch for itself independently
// of the manifest. That distinction is what makes a crash between the
// phase-2 renames recoverable: such a crash leaves new-epoch shard
// files under the old manifest, so the manifest's checksums mismatch —
// but each file's own checksum still verifies. With a WAL configured,
// the loader accepts the mixed directory (salvage) and WAL replay
// reconciles the epochs; a file whose own checksum fails is bit rot and
// is always a hard error.
const (
	shardMagic     = "TRSHRD02"
	shardHeaderLen = 16 // magic + shard count + shard index
	shardFooterLen = 4  // CRC32C
)

func shardHeader(count, index int) []byte {
	hdr := make([]byte, shardHeaderLen)
	copy(hdr, shardMagic)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(count))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(index))
	return hdr
}

// verifyShardFile streams the container once, checking magic, recorded
// shard index, and the trailer checksum; it returns the recorded shard
// count and the trailer CRC (which doubles as the manifest-comparison
// value). Any inconsistency is a "snapshot corrupt" error — the caller
// never hands an unverified byte to the decoder.
func verifyShardFile(fsys faultfs.FS, path string, index int) (count int, sum uint32, err error) {
	fi, err := fsys.Stat(path)
	if err != nil {
		return 0, 0, err
	}
	if fi.Size() < shardHeaderLen+shardFooterLen {
		return 0, 0, fmt.Errorf("%d-byte file cannot hold a shard container: snapshot corrupt", fi.Size())
	}
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	hdr := make([]byte, shardHeaderLen)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return 0, 0, err
	}
	if string(hdr[:8]) != shardMagic {
		return 0, 0, fmt.Errorf("bad magic %q: snapshot corrupt", hdr[:8])
	}
	count = int(binary.LittleEndian.Uint32(hdr[8:]))
	if got := int(binary.LittleEndian.Uint32(hdr[12:])); got != index {
		return 0, 0, fmt.Errorf("file records shard index %d, expected %d: snapshot corrupt", got, index)
	}
	h := crc32.New(snapCRC)
	h.Write(hdr)
	if _, err := io.CopyN(h, f, fi.Size()-shardHeaderLen-shardFooterLen); err != nil {
		return 0, 0, err
	}
	var trailer [shardFooterLen]byte
	if _, err := io.ReadFull(f, trailer[:]); err != nil {
		return 0, 0, err
	}
	sum = binary.LittleEndian.Uint32(trailer[:])
	if h.Sum32() != sum {
		return 0, 0, fmt.Errorf("checksum mismatch (trailer %08x, content %08x): snapshot corrupt", sum, h.Sum32())
	}
	return count, sum, nil
}

type snapshotManifest struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
	// Owned, when present, marks a partial snapshot written by a
	// partitioned shard-node engine: the global shard indices the
	// directory holds files for, ascending. The per-shard arrays (Sizes,
	// Checksums, ArenaChecksums) then carry one entry per owned shard in
	// this order, and the shard files keep their global names
	// (shard-0003.tree for global shard 3) with headers recording the
	// global count — byte-identical to the same shard's file in a full
	// snapshot, which is what makes snapshot shipping between deployment
	// shapes possible. Absent means the directory covers every shard.
	Owned       []int            `json:"owned,omitempty"`
	TreeOptions trajtree.Options `json:"tree_options"`
	Sizes       []int            `json:"sizes"`
	// Checksums holds one CRC32C per shard stream, over the file's
	// exact bytes. The loader verifies them in a streaming pass before
	// any byte reaches the gob decoder, so bit rot or a mixed-epoch
	// directory surfaces as a clean "snapshot corrupt" error.
	Checksums []uint32 `json:"checksums"`
	// ArenaChecksums, when present, holds one CRC32C per shard arena
	// file (shard-NNNN.arena, the mmap-able encoding of the same state
	// as the gob stream): the value of the file's own content-checksum
	// trailer. A loader booting with Options.Mmap compares the trailer
	// against this list to tell whether the arena file belongs to this
	// manifest's epoch; on any mismatch it falls back to the gob
	// stream, so the field is an accelerator, never a dependency —
	// snapshots that omit it (or whose arena files are damaged) still
	// load.
	ArenaChecksums []uint32 `json:"arena_checksums,omitempty"`
	// Metrics lists the metric backends the directory holds streams for,
	// in persist order. Only tree-backed metrics are persistable today,
	// so the list is ["edwp"]; it is recorded (rather than implied) so a
	// loader can tell which requested metrics it must rebuild instead.
	Metrics []string `json:"metrics,omitempty"`
	// Sketch, when present, records the resolved prefilter parameters
	// the engine was serving with. The sketch indexes themselves are
	// not persisted: they are a deterministic function of (corpus,
	// parameters), so the loader rebuilds bit-identical prefilter state
	// from the loaded corpus — provided the parameters are these
	// recorded, already-resolved values rather than re-derived ones (a
	// re-derived CellSize could differ if the corpus changed since the
	// parameters were fixed). Like the shard count, the manifest wins
	// over the loading Options. Absent means the prefilter was off.
	Sketch  *sketch.Params `json:"sketch,omitempty"`
	SavedAt time.Time      `json:"saved_at"`
}

// manifestEnvelope is what MANIFEST.json actually holds: the manifest
// plus a CRC32C guarding it. The checksum is computed over the
// manifest's canonical (compact json.Marshal) encoding and verified by
// re-encoding the parsed manifest the same way, so any corruption that
// changes what the loader would act on — a flipped digit in a size, a
// damaged field name — fails verification, while insignificant
// whitespace does not have to survive byte-exactly.
type manifestEnvelope struct {
	CRC32C   uint32          `json:"crc32c"`
	Manifest json.RawMessage `json:"manifest"`
}

// persistedMetrics returns the manifest's Metrics list, defaulting to
// the single EDwP set for manifests that omit it.
func (m snapshotManifest) persistedMetrics() []string {
	if len(m.Metrics) == 0 {
		return []string{trajtree.MetricName}
	}
	return m.Metrics
}

// coveredShards returns the global shard indices the manifest's
// per-shard arrays describe, ascending: Owned for a partial snapshot,
// all of 0..Shards-1 otherwise.
func (m snapshotManifest) coveredShards() []int {
	if len(m.Owned) > 0 {
		return m.Owned
	}
	out := make([]int, m.Shards)
	for i := range out {
		out[i] = i
	}
	return out
}

// coveredPos returns the per-shard array position of global shard g, or
// -1 when the manifest does not cover it.
func (m snapshotManifest) coveredPos(g int) int {
	if len(m.Owned) == 0 {
		if g < 0 || g >= m.Shards {
			return -1
		}
		return g
	}
	for j, o := range m.Owned {
		if o == g {
			return j
		}
	}
	return -1
}

// manifestChecksum is the canonical checksum of a manifest: CRC32C over
// its compact JSON encoding.
func manifestChecksum(man snapshotManifest) (uint32, error) {
	raw, err := json.Marshal(man)
	if err != nil {
		return 0, err
	}
	return crc32.Checksum(raw, snapCRC), nil
}

func shardFileName(i int) string { return fmt.Sprintf("shard-%04d.tree", i) }

// arenaFileName is the mmap-able twin of shardFileName: the same shard
// state in the arena snapshot encoding (see internal/arena/file.go).
func arenaFileName(i int) string { return fmt.Sprintf("shard-%04d.arena", i) }

func parseArenaFileName(name string) (int, bool) {
	var i int
	if n, err := fmt.Sscanf(name, "shard-%d.arena", &i); n != 1 || err != nil {
		return 0, false
	}
	if arenaFileName(i) != name {
		return 0, false
	}
	return i, true
}

// parseShardFileName inverts shardFileName, rejecting near-misses like
// temp files (the round-trip check catches trailing garbage Sscanf
// would forgive).
func parseShardFileName(name string) (int, bool) {
	var i int
	if n, err := fmt.Sscanf(name, "shard-%d.tree", &i); n != 1 || err != nil {
		return 0, false
	}
	if shardFileName(i) != name {
		return 0, false
	}
	return i, true
}

// SnapshotDir returns the configured snapshot directory ("" when
// snapshotting is not configured).
func (e *Engine) SnapshotDir() string { return e.opt.SnapshotDir }

// persistentSet returns the loaded metric set whose backends are
// tree-backed — the one a snapshot can persist — or nil.
func (e *Engine) persistentSet() *metricSet {
	for _, ms := range e.sets {
		if _, ok := treeOf(ms.shards[0].be); ok {
			return ms
		}
	}
	return nil
}

// SaveSnapshot writes a sharded snapshot of the engine's persistent
// metric set to dir (created if needed); it fails with ErrNotSupported
// when no loaded backend is persistent. Each shard is serialised under
// its read lock, so queries keep flowing and updates stall only on the
// shard currently streaming out; consequently the snapshot is per-shard
// consistent but, under a live write load, not a single global point in
// time. Quiesce writers first if global point-in-time semantics matter.
// (With a WAL attached the recovered state is still exact: mutations
// landing during the save are replayed idempotently on top.)
// Concurrent SaveSnapshot calls serialise against each other, so
// overlapping POST /snapshot requests cannot interleave shard files and
// manifests from different saves.
//
// With a write-ahead log attached, a committed save also truncates the
// log: a barrier taken before streaming guarantees every pre-barrier
// record is contained in the snapshot, so the pre-barrier segments are
// removed (oldest first) once the manifest rename lands.
func (e *Engine) SaveSnapshot(dir string) error {
	if dir == "" {
		return fmt.Errorf("server: snapshot: no directory configured")
	}
	ms := e.persistentSet()
	if ms == nil {
		return fmt.Errorf("server: snapshot: no persistent backend loaded (metrics %v): %w",
			e.Metrics(), backend.ErrNotSupported)
	}
	e.snapMu.Lock()
	defer e.snapMu.Unlock()
	if err := e.fs.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("server: snapshot: %w", err)
	}
	// The WAL barrier comes first, under mutMu: with no mutation between
	// append and apply in flight, every record in a pre-barrier segment
	// is applied, hence included in the shard streams below — which is
	// exactly the condition for truncating those segments once the
	// manifest commits.
	barrier := -1
	if e.wal != nil {
		e.mutMu.Lock()
		b, berr := e.wal.Barrier()
		if berr == nil {
			// The shard streams below carry only sealed state; live tracks
			// exist solely in pre-barrier append records the truncation is
			// about to drop. Re-log each live track's full state into the
			// post-barrier segment — still under mutMu, so no append can
			// interleave — and replay's offset-based idempotency absorbs
			// the overlap with any later records.
			berr = e.relogLiveTracks()
		}
		e.mutMu.Unlock()
		if berr != nil {
			return fmt.Errorf("server: snapshot: %w", berr)
		}
		barrier = b
	}
	shards := ms.shards
	man := snapshotManifest{
		Version:        snapshotVersion,
		Shards:         e.place.total,
		TreeOptions:    shards[0].options(),
		Sizes:          make([]int, len(shards)),
		Checksums:      make([]uint32, len(shards)),
		ArenaChecksums: make([]uint32, len(shards)),
		Metrics:        []string{ms.name},
		SavedAt:        time.Now().UTC(),
	}
	if e.place.partitioned() {
		man.Owned = e.place.ownedShards()
	}
	if e.sketches != nil {
		p := e.sketchParams
		man.Sketch = &p
	}
	// Phase 1: stream every shard to a temp file and fsync it. No final
	// name is touched yet, so any failure here (disk full, I/O error,
	// crash) leaves the previous snapshot fully intact. The fixed .tmp
	// names are safe under snapMu and let an interrupted save's litter
	// be swept by the next one.
	tmps := make([]string, 2*len(shards))
	cleanup := func() {
		for _, t := range tmps {
			if t != "" {
				_ = e.fs.Remove(t)
			}
		}
	}
	err := par.ForErr(e.opt.Workers, len(shards), func(i int) error {
		g := e.place.globalOf(i) // files carry global names and headers
		tmp := filepath.Join(dir, shardFileName(g)+".tmp")
		f, err := e.fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return err
		}
		tmps[2*i] = tmp
		// The trailer checksum hashes exactly the bytes the file
		// receives (header included, trailer excluded).
		h := crc32.New(snapCRC)
		bw := bufio.NewWriterSize(io.MultiWriter(f, h), 1<<20)
		if _, err := bw.Write(shardHeader(e.place.total, g)); err != nil {
			f.Close()
			return err
		}
		size, err := shards[i].save(bw)
		if err != nil {
			f.Close()
			return err
		}
		if err := bw.Flush(); err != nil {
			f.Close()
			return err
		}
		var trailer [shardFooterLen]byte
		binary.LittleEndian.PutUint32(trailer[:], h.Sum32())
		if _, err := f.Write(trailer[:]); err != nil {
			f.Close()
			return err
		}
		// fsync before rename: a renamed-but-unsynced file could survive
		// the rename yet lose its bytes on power loss.
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		man.Sizes[i] = size
		man.Checksums[i] = h.Sum32()
		// The arena twin: the same shard state in the mmap-able
		// encoding, written with the same write-fsync-rename discipline.
		// Its content checksum is the file's own trailer (the last four
		// bytes), captured here for the manifest.
		atmp := filepath.Join(dir, arenaFileName(g)+".tmp")
		af, err := e.fs.OpenFile(atmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return err
		}
		tmps[2*i+1] = atmp
		var tail tailWriter
		abw := bufio.NewWriterSize(io.MultiWriter(af, &tail), 1<<20)
		if err := shards[i].saveArena(abw); err != nil {
			af.Close()
			return err
		}
		if err := abw.Flush(); err != nil {
			af.Close()
			return err
		}
		if err := af.Sync(); err != nil {
			af.Close()
			return err
		}
		if err := af.Close(); err != nil {
			return err
		}
		sum, ok := tail.sum32()
		if !ok {
			return fmt.Errorf("arena file for shard %d too short", i)
		}
		man.ArenaChecksums[i] = sum
		return nil
	})
	if err != nil {
		cleanup()
		return fmt.Errorf("server: snapshot: %w", err)
	}
	// Phase 2: every shard streamed successfully — rename them into
	// place, manifest last. A crash inside this loop mixes new shard
	// files with the old manifest; the loader's checksum, size and
	// option checks reject such a directory rather than serving from it
	// (or, with a WAL, salvage it — the arena files just fall back to
	// the gob streams on their own checksum mismatch).
	for i := range shards {
		g := e.place.globalOf(i)
		if err := e.fs.Rename(tmps[2*i], filepath.Join(dir, shardFileName(g))); err != nil {
			cleanup()
			return fmt.Errorf("server: snapshot: %w", err)
		}
		tmps[2*i] = ""
		if err := e.fs.Rename(tmps[2*i+1], filepath.Join(dir, arenaFileName(g))); err != nil {
			cleanup()
			return fmt.Errorf("server: snapshot: %w", err)
		}
		tmps[2*i+1] = ""
	}
	sum, err := manifestChecksum(man)
	if err != nil {
		return fmt.Errorf("server: snapshot: %w", err)
	}
	rawMan, err := json.Marshal(man)
	if err != nil {
		return fmt.Errorf("server: snapshot: %w", err)
	}
	raw, err := json.MarshalIndent(manifestEnvelope{CRC32C: sum, Manifest: rawMan}, "", "  ")
	if err != nil {
		return fmt.Errorf("server: snapshot: %w", err)
	}
	mtmp := filepath.Join(dir, manifestName+".tmp")
	if err := writeFileSync(e.fs, mtmp, append(raw, '\n')); err != nil {
		return fmt.Errorf("server: snapshot: %w", err)
	}
	if err := e.fs.Rename(mtmp, filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("server: snapshot: %w", err)
	}
	// The manifest rename commits the snapshot. What follows is
	// housekeeping: sweep stale files, make the renames durable, drop
	// the WAL segments the snapshot subsumes.
	if err := e.cleanStaleShardFiles(dir, man.coveredShards()); err != nil {
		return fmt.Errorf("server: snapshot: %w", err)
	}
	if err := e.fs.SyncDir(dir); err != nil {
		return fmt.Errorf("server: snapshot: %w", err)
	}
	if e.wal != nil {
		// The live-track carry-over records must be durable before the
		// segments holding their originals disappear.
		if err := e.wal.Sync(); err != nil {
			return fmt.Errorf("server: snapshot: %w", err)
		}
		if err := e.wal.TruncateBefore(barrier); err != nil {
			return fmt.Errorf("server: snapshot: %w", err)
		}
	}
	e.snapshots.Add(1)
	return nil
}

// tailWriter remembers the last four bytes written through it: the
// arena encoding ends in its content checksum, so after the stream
// completes the tail IS the file's self-vouching CRC32C, which the
// manifest records for epoch comparison at load.
type tailWriter struct {
	tail [4]byte
	n    int64
}

func (t *tailWriter) Write(p []byte) (int, error) {
	if len(p) >= 4 {
		copy(t.tail[:], p[len(p)-4:])
	} else {
		var both [8]byte
		k := copy(both[:], t.tail[:])
		k += copy(both[k:], p)
		copy(t.tail[:], both[k-4:k])
	}
	t.n += int64(len(p))
	return len(p), nil
}

func (t *tailWriter) sum32() (uint32, bool) {
	if t.n < 4 {
		return 0, false
	}
	return binary.LittleEndian.Uint32(t.tail[:]), true
}

// writeFileSync writes data to name through fsys and fsyncs it before
// closing — the write half of the write-fsync-rename commit pattern.
func writeFileSync(fsys faultfs.FS, name string, data []byte) error {
	f, err := fsys.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// cleanStaleShardFiles removes shard files outside the just-written
// covered set, plus any temp litter from interrupted saves. Without it,
// a save with fewer shards (or a narrower owned set) than its
// predecessor would leave orphan shard-NNNN.tree files that a human (or
// a future layout) could mistake for live data.
func (e *Engine) cleanStaleShardFiles(dir string, covered []int) error {
	keep := make(map[int]bool, len(covered))
	for _, g := range covered {
		keep[g] = true
	}
	entries, err := e.fs.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, ent := range entries {
		name := ent.Name()
		stale := strings.HasSuffix(name, ".tmp")
		if idx, ok := parseShardFileName(name); ok && !keep[idx] {
			stale = true
		}
		if idx, ok := parseArenaFileName(name); ok && !keep[idx] {
			stale = true
		}
		if !stale {
			continue
		}
		if err := e.fs.Remove(filepath.Join(dir, name)); err != nil {
			return err
		}
	}
	return nil
}

// SnapshotExists reports whether dir holds a snapshot manifest.
func SnapshotExists(dir string) bool {
	if dir == "" {
		return false
	}
	_, err := os.Stat(filepath.Join(dir, manifestName))
	return err == nil
}

// readManifest reads and verifies MANIFEST.json: envelope checksum,
// version, and internal consistency (shard count versus the sizes and
// checksums arrays). Every failure is a clean, specific error — a
// corrupt directory must never panic or half-load.
func readManifest(fsys faultfs.FS, dir string) (snapshotManifest, error) {
	raw, err := faultfs.ReadFile(fsys, filepath.Join(dir, manifestName))
	if err != nil {
		return snapshotManifest{}, err
	}
	var env manifestEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return snapshotManifest{}, fmt.Errorf("manifest: %w", err)
	}
	if env.Manifest == nil {
		// Not an envelope. A version-1 manifest was the bare
		// snapshotManifest — detect it for a clean upgrade message
		// rather than a generic parse failure.
		var legacy snapshotManifest
		if json.Unmarshal(raw, &legacy) == nil && legacy.Version != 0 {
			return snapshotManifest{}, fmt.Errorf(
				"manifest: unsupported snapshot version %d (this build reads version %d; re-save the snapshot from a live engine)",
				legacy.Version, snapshotVersion)
		}
		return snapshotManifest{}, fmt.Errorf("manifest: missing checksum envelope: snapshot corrupt")
	}
	var man snapshotManifest
	if err := json.Unmarshal(env.Manifest, &man); err != nil {
		return snapshotManifest{}, fmt.Errorf("manifest: %w", err)
	}
	sum, err := manifestChecksum(man)
	if err != nil {
		return snapshotManifest{}, fmt.Errorf("manifest: %w", err)
	}
	if sum != env.CRC32C {
		return snapshotManifest{}, fmt.Errorf("manifest: checksum mismatch (recorded %08x, computed %08x): snapshot corrupt",
			env.CRC32C, sum)
	}
	if man.Version != snapshotVersion {
		return snapshotManifest{}, fmt.Errorf("manifest: unsupported version %d (want %d)", man.Version, snapshotVersion)
	}
	if man.Shards < 1 {
		return snapshotManifest{}, fmt.Errorf("manifest: invalid shard count %d", man.Shards)
	}
	// A partial manifest's Owned list must be well-formed before the
	// covered-count checks can mean anything: strictly ascending (the
	// writer sorts), in range, and a strict subset.
	for j, g := range man.Owned {
		if g < 0 || g >= man.Shards {
			return snapshotManifest{}, fmt.Errorf("manifest: owned shard %d out of range [0,%d)", g, man.Shards)
		}
		if j > 0 && g <= man.Owned[j-1] {
			return snapshotManifest{}, fmt.Errorf("manifest: owned shards not strictly ascending at %d", g)
		}
	}
	// The sizes and checksums arrays are the cross-check that catches
	// mixed-epoch directories (a crash between shard renames and the
	// manifest rename); a manifest that cannot vouch for every covered
	// shard is rejected rather than partially verified.
	covered := len(man.coveredShards())
	if len(man.Sizes) != covered {
		return snapshotManifest{}, fmt.Errorf("manifest: records %d sizes for %d covered shards", len(man.Sizes), covered)
	}
	if len(man.Checksums) != covered {
		return snapshotManifest{}, fmt.Errorf("manifest: records %d checksums for %d covered shards", len(man.Checksums), covered)
	}
	return man, nil
}

// LoadSnapshot reconstructs a single-metric EDwP engine from a snapshot
// directory written by SaveSnapshot. Shard trees load in parallel. The
// shard count always comes from the manifest (see the placement note
// above); the remaining opt fields — cache, workers, snapshot dir, WAL —
// apply as given.
func LoadSnapshot(dir string, opt Options) (*Engine, error) {
	return LoadSnapshotSpecs(dir, nil, opt)
}

// LoadSnapshotSpecs reconstructs a multi-metric engine from a snapshot
// directory: metrics the manifest records as persisted load from their
// shard streams, and every other requested spec is rebuilt from the
// loaded corpus over the same hash partition (so placement agrees across
// metrics). makeSpecs is called once with the full loaded corpus — the
// hook where whole-database parameters (EDR's ε) are derived, exactly as
// a fresh boot would derive them — and its order becomes the boot order,
// so its first spec is the default metric. A nil makeSpecs means just
// the persisted metrics.
//
// Every shard stream's CRC32C is verified in a streaming pass before
// any byte reaches the decoder, and with opt.WALDir set the write-ahead
// log replays on top of the loaded state before the engine is returned.
func LoadSnapshotSpecs(dir string, makeSpecs func(db []*traj.Trajectory) ([]backend.Spec, error), opt Options) (*Engine, error) {
	opt = opt.withDefaults()
	fsys := opt.FS
	man, err := readManifest(fsys, dir)
	if err != nil {
		return nil, fmt.Errorf("server: load snapshot: %w", err)
	}
	persisted := man.persistedMetrics()
	if len(persisted) != 1 || persisted[0] != trajtree.MetricName {
		return nil, fmt.Errorf("server: load snapshot: unsupported persisted metrics %v (only %q streams are readable)",
			persisted, trajtree.MetricName)
	}
	// The manifest's global shard count is the hash placement; a caller
	// Partition must agree with it, and an unpartitioned caller loading a
	// partial directory has no way to serve the missing shards.
	if opt.Partition != nil && opt.Partition.Total != man.Shards {
		return nil, fmt.Errorf("server: load snapshot: partition total %d does not match manifest shard count %d",
			opt.Partition.Total, man.Shards)
	}
	opt.Shards = man.Shards
	place, err := resolvePlacement(opt)
	if err != nil {
		return nil, fmt.Errorf("server: load snapshot: %w", err)
	}
	opt.Shards = place.numLocal()
	if len(man.Owned) > 0 && !place.partitioned() {
		return nil, fmt.Errorf("server: load snapshot: partial snapshot (covers shards %v of %d); boot with a matching Options.Partition",
			man.Owned, man.Shards)
	}
	// Every requested shard must be covered; pos maps local slot to its
	// position in the manifest's per-shard arrays.
	pos := make([]int, place.numLocal())
	for i := range pos {
		g := place.globalOf(i)
		if pos[i] = man.coveredPos(g); pos[i] < 0 {
			return nil, fmt.Errorf("server: load snapshot: shard %d not covered (snapshot covers %v)",
				g, man.coveredShards())
		}
	}
	treeShards := make([]*shard, place.numLocal())
	err = par.ForErr(opt.Workers, place.numLocal(), func(i int) error {
		g, j := place.globalOf(i), pos[i]
		// Fast path: with Mmap requested and a manifest that vouches for
		// the arena files, boot this shard straight from its mapping.
		// Failure of any kind — missing file, wrong epoch, corruption,
		// option or size disagreement — is not an error: the gob stream
		// below is the authoritative fallback and loads identical state.
		if opt.Mmap && j < len(man.ArenaChecksums) {
			if tree, ok := loadArenaShard(dir, g, j, man); ok {
				treeShards[i] = &shard{be: tree}
				return nil
			}
		}
		path := filepath.Join(dir, shardFileName(g))
		// Pass 1: verify the container's own trailer checksum end to end
		// before handing a single byte to the decoder — gob must never
		// see corrupt input. A file that fails its own checksum is bit
		// rot (or a torn write) and is always a hard error.
		count, sum, err := verifyShardFile(fsys, path, g)
		if err != nil {
			return fmt.Errorf("shard %d: %w", g, err)
		}
		// The file vouches for itself; now compare against the manifest.
		// A mismatch here means the file is intact but from a different
		// save than the manifest — a crash between the phase-2 renames.
		// With a WAL configured the mixed directory is salvageable
		// (replay reconciles the epochs), provided the file was written
		// under the same shard count (same hash placement). Without a
		// WAL there is nothing to reconcile with: reject.
		epochMatch := sum == man.Checksums[j]
		if !epochMatch {
			if opt.WALDir == "" {
				return fmt.Errorf("shard %d: checksum mismatch (manifest %08x, file %08x) and no WAL is configured to reconcile epochs: snapshot corrupt",
					g, man.Checksums[j], sum)
			}
			if count != man.Shards {
				return fmt.Errorf("shard %d: file written under %d shards, manifest records %d: resharding crash is unrecoverable, snapshot corrupt",
					g, count, man.Shards)
			}
		}
		// Pass 2: decode the verified stream (skipping the container
		// header; the trailer sits past the gob stream's own end).
		f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
		if err != nil {
			return err
		}
		defer f.Close()
		if _, err := io.CopyN(io.Discard, f, shardHeaderLen); err != nil {
			return fmt.Errorf("shard %d: %w", g, err)
		}
		tree, err := trajtree.Load(bufio.NewReaderSize(f, 1<<20))
		if err != nil {
			return fmt.Errorf("shard %d: %w", g, err)
		}
		// The manifest's size only describes its own epoch's file.
		if epochMatch && tree.Size() != man.Sizes[j] {
			return fmt.Errorf("shard %d: size %d does not match manifest %d", g, tree.Size(), man.Sizes[j])
		}
		// Each stream carries its own (normalised) tree options; they
		// must agree with the manifest, or the directory mixes shard
		// files from differently configured engines.
		if tree.Options() != man.TreeOptions.WithDefaults() {
			return fmt.Errorf("shard %d: tree options %+v do not match manifest %+v",
				g, tree.Options(), man.TreeOptions.WithDefaults())
		}
		treeShards[i] = &shard{be: tree}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("server: load snapshot: %w", err)
	}
	// collectCorpus concatenates the loaded shards' members — the corpus
	// the non-persisted state (extra metrics, the prefilter) rebuilds
	// from.
	collectCorpus := func() []*traj.Trajectory {
		var all []*traj.Trajectory
		for _, s := range treeShards {
			all = append(all, s.all()...)
		}
		return all
	}
	if makeSpecs == nil {
		set := &metricSet{name: trajtree.MetricName, shards: treeShards}
		e := newEngine([]*metricSet{set}, place, opt)
		if man.Sketch != nil || opt.Prefilter {
			if err := e.restorePrefilter(man, opt, collectCorpus()); err != nil {
				return nil, fmt.Errorf("server: load snapshot: %w", err)
			}
		}
		if err := e.attachWAL(); err != nil {
			return nil, err
		}
		return e, nil
	}
	// Rebuild the non-persisted metrics per shard from the loaded trees'
	// members: the loaded placement already is the hash placement, so
	// each extra backend builds over exactly its shard's slice of the
	// corpus.
	groups := make([][]*traj.Trajectory, len(treeShards))
	var all []*traj.Trajectory
	for i, s := range treeShards {
		groups[i] = s.all()
		all = append(all, groups[i]...)
	}
	specs, err := makeSpecs(all)
	if err != nil {
		return nil, fmt.Errorf("server: load snapshot: %w", err)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("server: load snapshot: no metric backends specified")
	}
	sets := make([]*metricSet, 0, len(specs))
	seen := map[string]bool{}
	for _, spec := range specs {
		if seen[spec.Name] {
			return nil, fmt.Errorf("server: load snapshot: duplicate metric %q", spec.Name)
		}
		seen[spec.Name] = true
		if spec.Name == trajtree.MetricName {
			sets = append(sets, &metricSet{name: spec.Name, shards: treeShards})
			continue
		}
		shards, err := buildSpecShards(groups, spec, opt)
		if err != nil {
			return nil, fmt.Errorf("server: load snapshot: %w", err)
		}
		sets = append(sets, &metricSet{name: spec.Name, shards: shards})
	}
	e := newEngine(sets, place, opt)
	if man.Sketch != nil || opt.Prefilter {
		if err := e.restorePrefilter(man, opt, all); err != nil {
			return nil, fmt.Errorf("server: load snapshot: %w", err)
		}
	}
	if err := e.attachWAL(); err != nil {
		return nil, err
	}
	return e, nil
}

// loadArenaShard attempts the mmap boot of one shard (global index g,
// manifest array position j): the arena file's trailer (its content
// CRC32C) must match the manifest — proving file and manifest come from
// the same save — and the mapped tree must carry the manifest's options
// and size. The file is read through package os, not the engine's
// faultfs: mappings cannot be fault-injected anyway, and the gob
// fallback keeps full injection coverage.
func loadArenaShard(dir string, g, j int, man snapshotManifest) (*trajtree.Tree, bool) {
	path := filepath.Join(dir, arenaFileName(g))
	f, err := os.Open(path)
	if err != nil {
		return nil, false
	}
	fi, err := f.Stat()
	if err != nil || fi.Size() < 4 {
		f.Close()
		return nil, false
	}
	var trailer [4]byte
	_, err = f.ReadAt(trailer[:], fi.Size()-4)
	f.Close()
	if err != nil || binary.LittleEndian.Uint32(trailer[:]) != man.ArenaChecksums[j] {
		return nil, false
	}
	tree, err := trajtree.LoadArena(path)
	if err != nil {
		return nil, false
	}
	if tree.Size() != man.Sizes[j] || tree.Options() != man.TreeOptions.WithDefaults() {
		return nil, false
	}
	return tree, true
}

// SnapshotInfo is the externally visible shape of a snapshot directory,
// the metadata the cluster snapshot-shipping layer needs to decide what
// to fetch: the global shard count (the hash placement), the covered
// global shard indices, and when the snapshot was taken. The per-file
// integrity story stays inside the files themselves — every shard file
// carries a self-vouching trailer CRC and the manifest an envelope CRC,
// so a fetched replica directory re-verifies end to end at load time.
type SnapshotInfo struct {
	Shards  int       `json:"shards"`
	Covered []int     `json:"covered"`
	SavedAt time.Time `json:"saved_at"`
}

// ReadSnapshotInfo reads and verifies dir's manifest and reports its
// placement metadata.
func ReadSnapshotInfo(dir string) (SnapshotInfo, error) {
	man, err := readManifest(faultfs.OS{}, dir)
	if err != nil {
		return SnapshotInfo{}, fmt.Errorf("server: snapshot info: %w", err)
	}
	return SnapshotInfo{Shards: man.Shards, Covered: man.coveredShards(), SavedAt: man.SavedAt}, nil
}

// SnapshotFiles lists the file names a replica must fetch to boot the
// given global shards from a snapshot directory: the manifest plus each
// shard's tree stream and arena twin. Unknown coverage is the caller's
// problem — pair with ReadSnapshotInfo.
func SnapshotFiles(shards []int) []string {
	out := []string{manifestName}
	for _, g := range shards {
		out = append(out, shardFileName(g), arenaFileName(g))
	}
	return out
}

// IsSnapshotFileName reports whether name is a file a snapshot
// directory legitimately serves (the manifest or a shard/arena file) —
// the allowlist the cluster snapshot-serving endpoint checks before
// touching the filesystem, so a crafted request can never escape the
// snapshot directory.
func IsSnapshotFileName(name string) bool {
	if name == manifestName {
		return true
	}
	if _, ok := parseShardFileName(name); ok {
		return true
	}
	_, ok := parseArenaFileName(name)
	return ok
}

// VerifySnapshotShardFile checks the self-vouching trailer checksum of
// one shard tree file (global index g) — what a replica runs on each
// fetched section before committing the directory, so a truncated or
// corrupted transfer is caught at fetch time rather than at boot.
func VerifySnapshotShardFile(path string, g int) error {
	if _, _, err := verifyShardFile(faultfs.OS{}, path, g); err != nil {
		return fmt.Errorf("server: snapshot shard %d: %w", g, err)
	}
	return nil
}

// restorePrefilter reattaches the candidate prefilter after a snapshot
// load. Manifest-recorded parameters win over the loading Options (the
// same rule as the shard count): they are the already-resolved
// whole-corpus values the snapshot was serving with, so the rebuilt
// sketch indexes are bit-identical to the saved engine's. A snapshot
// with no recorded parameters but opt.Prefilter set enables the
// prefilter fresh, resolving parameters over the loaded corpus exactly
// as a cold boot would.
func (e *Engine) restorePrefilter(man snapshotManifest, opt Options, db []*traj.Trajectory) error {
	if man.Sketch == nil {
		return e.enablePrefilter(db, opt.Sketch)
	}
	p := man.Sketch.WithDefaults()
	if err := p.Validate(); err != nil {
		return fmt.Errorf("manifest sketch parameters: %w", err)
	}
	sketches, err := buildSketches(db, e.place, p)
	if err != nil {
		return err
	}
	e.sketches = sketches
	e.sketchParams = p
	return nil
}
