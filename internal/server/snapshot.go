package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"trajmatch/internal/backend"
	"trajmatch/internal/par"
	"trajmatch/internal/sketch"
	"trajmatch/internal/traj"
	"trajmatch/internal/trajtree"
)

// A snapshot is a directory holding one trajtree.Save stream per shard
// plus a JSON manifest recording the format version, the shard count,
// the tree options and which metric backends were persisted. Persistence
// is a capability: only the tree-backed EDwP set streams to disk (the
// flat DTW/EDR indexes are cheap, deterministic functions of the corpus
// with no build state worth saving), so the manifest's Metrics list
// records exactly what the directory can restore by itself —
// LoadSnapshotSpecs rebuilds any other requested metric from the loaded
// corpus.
//
// The shard count is load-bearing: trajectories are hash-placed
// (router.go), so the files only mean what they say under the shard
// count they were written with — loading therefore adopts the manifest's
// count regardless of what the caller's Options ask for.
//
// Saves are two-phase: every shard streams to a temp file first, and
// only when all streams succeed are they renamed into place, manifest
// last. A failed save (disk full, I/O error) therefore never touches
// the previous snapshot; the residual risk is a crash inside the final
// rename loop, which mixes epochs — a state the loader detects and
// rejects through its per-shard size and option checks instead of
// serving from it.

// snapshotVersion is bumped whenever the manifest layout, the per-shard
// stream format, or the placement hash changes incompatibly. (The
// Metrics field was added compatibly: absent means the pre-multi-metric
// layout, exactly one persisted EDwP set.)
const snapshotVersion = 1

// manifestName is the manifest file inside a snapshot directory.
const manifestName = "MANIFEST.json"

type snapshotManifest struct {
	Version     int              `json:"version"`
	Shards      int              `json:"shards"`
	TreeOptions trajtree.Options `json:"tree_options"`
	Sizes       []int            `json:"sizes"`
	// Metrics lists the metric backends the directory holds streams for,
	// in persist order. Only tree-backed metrics are persistable today,
	// so the list is ["edwp"]; it is recorded (rather than implied) so a
	// loader can tell which requested metrics it must rebuild instead.
	Metrics []string `json:"metrics,omitempty"`
	// Sketch, when present, records the resolved prefilter parameters
	// the engine was serving with. The sketch indexes themselves are
	// not persisted: they are a deterministic function of (corpus,
	// parameters), so the loader rebuilds bit-identical prefilter state
	// from the loaded corpus — provided the parameters are these
	// recorded, already-resolved values rather than re-derived ones (a
	// re-derived CellSize could differ if the corpus changed since the
	// parameters were fixed). Like the shard count, the manifest wins
	// over the loading Options. Absent means the prefilter was off.
	Sketch  *sketch.Params `json:"sketch,omitempty"`
	SavedAt time.Time      `json:"saved_at"`
}

// persistedMetrics returns the manifest's Metrics list, defaulting to
// the single EDwP set for pre-multi-metric snapshots.
func (m snapshotManifest) persistedMetrics() []string {
	if len(m.Metrics) == 0 {
		return []string{trajtree.MetricName}
	}
	return m.Metrics
}

func shardFileName(i int) string { return fmt.Sprintf("shard-%04d.tree", i) }

// SnapshotDir returns the configured snapshot directory ("" when
// snapshotting is not configured).
func (e *Engine) SnapshotDir() string { return e.opt.SnapshotDir }

// persistentSet returns the loaded metric set whose backends are
// tree-backed — the one a snapshot can persist — or nil.
func (e *Engine) persistentSet() *metricSet {
	for _, ms := range e.sets {
		if _, ok := treeOf(ms.shards[0].be); ok {
			return ms
		}
	}
	return nil
}

// SaveSnapshot writes a sharded snapshot of the engine's persistent
// metric set to dir (created if needed); it fails with ErrNotSupported
// when no loaded backend is persistent. Each shard is serialised under
// its read lock, so queries keep flowing and updates stall only on the
// shard currently streaming out; consequently the snapshot is per-shard
// consistent but, under a live write load, not a single global point in
// time. Quiesce writers first if global point-in-time semantics matter.
// Concurrent SaveSnapshot calls serialise against each other, so
// overlapping POST /snapshot requests cannot interleave shard files and
// manifests from different saves.
func (e *Engine) SaveSnapshot(dir string) error {
	if dir == "" {
		return fmt.Errorf("server: snapshot: no directory configured")
	}
	ms := e.persistentSet()
	if ms == nil {
		return fmt.Errorf("server: snapshot: no persistent backend loaded (metrics %v): %w",
			e.Metrics(), backend.ErrNotSupported)
	}
	e.snapMu.Lock()
	defer e.snapMu.Unlock()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("server: snapshot: %w", err)
	}
	shards := ms.shards
	man := snapshotManifest{
		Version:     snapshotVersion,
		Shards:      len(shards),
		TreeOptions: shards[0].options(),
		Sizes:       make([]int, len(shards)),
		Metrics:     []string{ms.name},
		SavedAt:     time.Now().UTC(),
	}
	if e.sketches != nil {
		p := e.sketchParams
		man.Sketch = &p
	}
	// Phase 1: stream every shard to a temp file. No final name is
	// touched yet, so any failure here (disk full, I/O error) leaves the
	// previous snapshot fully intact.
	tmps := make([]string, len(shards))
	cleanup := func() {
		for _, t := range tmps {
			if t != "" {
				os.Remove(t)
			}
		}
	}
	err := par.ForErr(e.opt.Workers, len(shards), func(i int) error {
		tmp, err := os.CreateTemp(dir, shardFileName(i)+".tmp")
		if err != nil {
			return err
		}
		tmps[i] = tmp.Name()
		bw := bufio.NewWriterSize(tmp, 1<<20)
		size, err := shards[i].save(bw)
		if err != nil {
			tmp.Close()
			return err
		}
		if err := bw.Flush(); err != nil {
			tmp.Close()
			return err
		}
		if err := tmp.Close(); err != nil {
			return err
		}
		man.Sizes[i] = size
		return nil
	})
	if err != nil {
		cleanup()
		return fmt.Errorf("server: snapshot: %w", err)
	}
	// Phase 2: every shard streamed successfully — rename them into
	// place, manifest last. The remaining inconsistency window is a
	// crash inside this loop of renames, which mixes new shard files
	// with the old manifest; the loader's per-shard size and option
	// checks reject such a directory rather than serving from it.
	for i, tmp := range tmps {
		if err := os.Rename(tmp, filepath.Join(dir, shardFileName(i))); err != nil {
			cleanup()
			return fmt.Errorf("server: snapshot: %w", err)
		}
		tmps[i] = ""
	}
	raw, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("server: snapshot: %w", err)
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, append(raw, '\n'), 0o644); err != nil {
		return fmt.Errorf("server: snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("server: snapshot: %w", err)
	}
	e.snapshots.Add(1)
	return nil
}

// SnapshotExists reports whether dir holds a snapshot manifest.
func SnapshotExists(dir string) bool {
	if dir == "" {
		return false
	}
	_, err := os.Stat(filepath.Join(dir, manifestName))
	return err == nil
}

// LoadSnapshot reconstructs a single-metric EDwP engine from a snapshot
// directory written by SaveSnapshot. Shard trees load in parallel. The
// shard count always comes from the manifest (see the placement note
// above); the remaining opt fields — cache, workers, snapshot dir —
// apply as given.
func LoadSnapshot(dir string, opt Options) (*Engine, error) {
	return LoadSnapshotSpecs(dir, nil, opt)
}

// LoadSnapshotSpecs reconstructs a multi-metric engine from a snapshot
// directory: metrics the manifest records as persisted load from their
// shard streams, and every other requested spec is rebuilt from the
// loaded corpus over the same hash partition (so placement agrees across
// metrics). makeSpecs is called once with the full loaded corpus — the
// hook where whole-database parameters (EDR's ε) are derived, exactly as
// a fresh boot would derive them — and its order becomes the boot order,
// so its first spec is the default metric. A nil makeSpecs means just
// the persisted metrics.
func LoadSnapshotSpecs(dir string, makeSpecs func(db []*traj.Trajectory) ([]backend.Spec, error), opt Options) (*Engine, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("server: load snapshot: %w", err)
	}
	var man snapshotManifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return nil, fmt.Errorf("server: load snapshot: manifest: %w", err)
	}
	if man.Version != snapshotVersion {
		return nil, fmt.Errorf("server: load snapshot: unsupported version %d (want %d)", man.Version, snapshotVersion)
	}
	if man.Shards < 1 {
		return nil, fmt.Errorf("server: load snapshot: invalid shard count %d", man.Shards)
	}
	// The sizes array is the cross-check that catches mixed-epoch
	// directories (a crash between shard renames and the manifest
	// rename); a manifest that cannot vouch for every shard is rejected
	// rather than partially verified.
	if len(man.Sizes) != man.Shards {
		return nil, fmt.Errorf("server: load snapshot: manifest records %d sizes for %d shards", len(man.Sizes), man.Shards)
	}
	persisted := man.persistedMetrics()
	if len(persisted) != 1 || persisted[0] != trajtree.MetricName {
		return nil, fmt.Errorf("server: load snapshot: unsupported persisted metrics %v (only %q streams are readable)",
			persisted, trajtree.MetricName)
	}
	opt = opt.withDefaults()
	opt.Shards = man.Shards
	treeShards := make([]*shard, man.Shards)
	err = par.ForErr(opt.Workers, man.Shards, func(i int) error {
		f, err := os.Open(filepath.Join(dir, shardFileName(i)))
		if err != nil {
			return err
		}
		defer f.Close()
		tree, err := trajtree.Load(bufio.NewReaderSize(f, 1<<20))
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		if tree.Size() != man.Sizes[i] {
			return fmt.Errorf("shard %d: size %d does not match manifest %d", i, tree.Size(), man.Sizes[i])
		}
		// Each stream carries its own (normalised) tree options; they
		// must agree with the manifest, or the directory mixes shard
		// files from differently configured engines.
		if tree.Options() != man.TreeOptions.WithDefaults() {
			return fmt.Errorf("shard %d: tree options %+v do not match manifest %+v",
				i, tree.Options(), man.TreeOptions.WithDefaults())
		}
		treeShards[i] = &shard{be: tree}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("server: load snapshot: %w", err)
	}
	// collectCorpus concatenates the loaded shards' members — the corpus
	// the non-persisted state (extra metrics, the prefilter) rebuilds
	// from.
	collectCorpus := func() []*traj.Trajectory {
		var all []*traj.Trajectory
		for _, s := range treeShards {
			all = append(all, s.all()...)
		}
		return all
	}
	if makeSpecs == nil {
		set := &metricSet{name: trajtree.MetricName, shards: treeShards}
		e := newEngine([]*metricSet{set}, opt)
		if man.Sketch != nil || opt.Prefilter {
			if err := e.restorePrefilter(man, opt, collectCorpus()); err != nil {
				return nil, fmt.Errorf("server: load snapshot: %w", err)
			}
		}
		return e, nil
	}
	// Rebuild the non-persisted metrics per shard from the loaded trees'
	// members: the loaded placement already is the hash placement, so
	// each extra backend builds over exactly its shard's slice of the
	// corpus.
	groups := make([][]*traj.Trajectory, man.Shards)
	var all []*traj.Trajectory
	for i, s := range treeShards {
		groups[i] = s.all()
		all = append(all, groups[i]...)
	}
	specs, err := makeSpecs(all)
	if err != nil {
		return nil, fmt.Errorf("server: load snapshot: %w", err)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("server: load snapshot: no metric backends specified")
	}
	sets := make([]*metricSet, 0, len(specs))
	seen := map[string]bool{}
	for _, spec := range specs {
		if seen[spec.Name] {
			return nil, fmt.Errorf("server: load snapshot: duplicate metric %q", spec.Name)
		}
		seen[spec.Name] = true
		if spec.Name == trajtree.MetricName {
			sets = append(sets, &metricSet{name: spec.Name, shards: treeShards})
			continue
		}
		shards, err := buildSpecShards(groups, spec, opt)
		if err != nil {
			return nil, fmt.Errorf("server: load snapshot: %w", err)
		}
		sets = append(sets, &metricSet{name: spec.Name, shards: shards})
	}
	e := newEngine(sets, opt)
	if man.Sketch != nil || opt.Prefilter {
		if err := e.restorePrefilter(man, opt, all); err != nil {
			return nil, fmt.Errorf("server: load snapshot: %w", err)
		}
	}
	return e, nil
}

// restorePrefilter reattaches the candidate prefilter after a snapshot
// load. Manifest-recorded parameters win over the loading Options (the
// same rule as the shard count): they are the already-resolved
// whole-corpus values the snapshot was serving with, so the rebuilt
// sketch indexes are bit-identical to the saved engine's. A snapshot
// with no recorded parameters but opt.Prefilter set enables the
// prefilter fresh, resolving parameters over the loaded corpus exactly
// as a cold boot would.
func (e *Engine) restorePrefilter(man snapshotManifest, opt Options, db []*traj.Trajectory) error {
	if man.Sketch == nil {
		return e.enablePrefilter(db, opt.Sketch)
	}
	p := man.Sketch.WithDefaults()
	if err := p.Validate(); err != nil {
		return fmt.Errorf("manifest sketch parameters: %w", err)
	}
	sketches, err := buildSketches(db, len(e.sets[0].shards), p)
	if err != nil {
		return err
	}
	e.sketches = sketches
	e.sketchParams = p
	return nil
}
