package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"trajmatch/internal/par"
	"trajmatch/internal/trajtree"
)

// A snapshot is a directory holding one trajtree.Save stream per shard
// plus a JSON manifest recording the format version, the shard count and
// the tree options. The shard count is load-bearing: trajectories are
// hash-placed (router.go), so the files only mean what they say under
// the shard count they were written with — LoadSnapshot therefore adopts
// the manifest's count regardless of what the caller's Options ask for.
//
// Saves are two-phase: every shard streams to a temp file first, and
// only when all streams succeed are they renamed into place, manifest
// last. A failed save (disk full, I/O error) therefore never touches
// the previous snapshot; the residual risk is a crash inside the final
// rename loop, which mixes epochs — a state LoadSnapshot detects and
// rejects through its per-shard size and option checks instead of
// serving from it.

// snapshotVersion is bumped whenever the manifest layout, the per-shard
// stream format, or the placement hash changes incompatibly.
const snapshotVersion = 1

// manifestName is the manifest file inside a snapshot directory.
const manifestName = "MANIFEST.json"

type snapshotManifest struct {
	Version     int              `json:"version"`
	Shards      int              `json:"shards"`
	TreeOptions trajtree.Options `json:"tree_options"`
	Sizes       []int            `json:"sizes"`
	SavedAt     time.Time        `json:"saved_at"`
}

func shardFileName(i int) string { return fmt.Sprintf("shard-%04d.tree", i) }

// SnapshotDir returns the configured snapshot directory ("" when
// snapshotting is not configured).
func (e *Engine) SnapshotDir() string { return e.opt.SnapshotDir }

// SaveSnapshot writes a sharded snapshot of the engine to dir (created
// if needed). Each shard is serialised under its read lock, so queries
// keep flowing and updates stall only on the shard currently streaming
// out; consequently the snapshot is per-shard consistent but, under a
// live write load, not a single global point in time. Quiesce writers
// first if global point-in-time semantics matter. Concurrent
// SaveSnapshot calls serialise against each other, so overlapping
// POST /snapshot requests cannot interleave shard files and manifests
// from different saves.
func (e *Engine) SaveSnapshot(dir string) error {
	if dir == "" {
		return fmt.Errorf("server: snapshot: no directory configured")
	}
	e.snapMu.Lock()
	defer e.snapMu.Unlock()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("server: snapshot: %w", err)
	}
	man := snapshotManifest{
		Version:     snapshotVersion,
		Shards:      len(e.shards),
		TreeOptions: e.shards[0].options(),
		Sizes:       make([]int, len(e.shards)),
		SavedAt:     time.Now().UTC(),
	}
	// Phase 1: stream every shard to a temp file. No final name is
	// touched yet, so any failure here (disk full, I/O error) leaves the
	// previous snapshot fully intact.
	tmps := make([]string, len(e.shards))
	cleanup := func() {
		for _, t := range tmps {
			if t != "" {
				os.Remove(t)
			}
		}
	}
	err := par.ForErr(e.opt.Workers, len(e.shards), func(i int) error {
		tmp, err := os.CreateTemp(dir, shardFileName(i)+".tmp")
		if err != nil {
			return err
		}
		tmps[i] = tmp.Name()
		bw := bufio.NewWriterSize(tmp, 1<<20)
		size, err := e.shards[i].save(bw)
		if err != nil {
			tmp.Close()
			return err
		}
		if err := bw.Flush(); err != nil {
			tmp.Close()
			return err
		}
		if err := tmp.Close(); err != nil {
			return err
		}
		man.Sizes[i] = size
		return nil
	})
	if err != nil {
		cleanup()
		return fmt.Errorf("server: snapshot: %w", err)
	}
	// Phase 2: every shard streamed successfully — rename them into
	// place, manifest last. The remaining inconsistency window is a
	// crash inside this loop of renames, which mixes new shard files
	// with the old manifest; LoadSnapshot's per-shard size and option
	// checks reject such a directory rather than serving from it.
	for i, tmp := range tmps {
		if err := os.Rename(tmp, filepath.Join(dir, shardFileName(i))); err != nil {
			cleanup()
			return fmt.Errorf("server: snapshot: %w", err)
		}
		tmps[i] = ""
	}
	raw, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("server: snapshot: %w", err)
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, append(raw, '\n'), 0o644); err != nil {
		return fmt.Errorf("server: snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("server: snapshot: %w", err)
	}
	e.snapshots.Add(1)
	return nil
}

// SnapshotExists reports whether dir holds a snapshot manifest.
func SnapshotExists(dir string) bool {
	if dir == "" {
		return false
	}
	_, err := os.Stat(filepath.Join(dir, manifestName))
	return err == nil
}

// LoadSnapshot reconstructs an engine from a snapshot directory written
// by SaveSnapshot. Shard trees load in parallel. The shard count always
// comes from the manifest (see the placement note above); the remaining
// opt fields — cache, workers, snapshot dir — apply as given.
func LoadSnapshot(dir string, opt Options) (*Engine, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("server: load snapshot: %w", err)
	}
	var man snapshotManifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return nil, fmt.Errorf("server: load snapshot: manifest: %w", err)
	}
	if man.Version != snapshotVersion {
		return nil, fmt.Errorf("server: load snapshot: unsupported version %d (want %d)", man.Version, snapshotVersion)
	}
	if man.Shards < 1 {
		return nil, fmt.Errorf("server: load snapshot: invalid shard count %d", man.Shards)
	}
	// The sizes array is the cross-check that catches mixed-epoch
	// directories (a crash between shard renames and the manifest
	// rename); a manifest that cannot vouch for every shard is rejected
	// rather than partially verified.
	if len(man.Sizes) != man.Shards {
		return nil, fmt.Errorf("server: load snapshot: manifest records %d sizes for %d shards", len(man.Sizes), man.Shards)
	}
	opt = opt.withDefaults()
	opt.Shards = man.Shards
	shards := make([]*shard, man.Shards)
	err = par.ForErr(opt.Workers, man.Shards, func(i int) error {
		f, err := os.Open(filepath.Join(dir, shardFileName(i)))
		if err != nil {
			return err
		}
		defer f.Close()
		tree, err := trajtree.Load(bufio.NewReaderSize(f, 1<<20))
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		if tree.Size() != man.Sizes[i] {
			return fmt.Errorf("shard %d: size %d does not match manifest %d", i, tree.Size(), man.Sizes[i])
		}
		// Each stream carries its own (normalised) tree options; they
		// must agree with the manifest, or the directory mixes shard
		// files from differently configured engines.
		if tree.Options() != man.TreeOptions.WithDefaults() {
			return fmt.Errorf("shard %d: tree options %+v do not match manifest %+v",
				i, tree.Options(), man.TreeOptions.WithDefaults())
		}
		shards[i] = &shard{tree: tree}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("server: load snapshot: %w", err)
	}
	return newEngine(shards, opt), nil
}
