package server

import (
	"fmt"

	"trajmatch/internal/wal"
)

// The engine's durability story in one place:
//
// With Options.WALDir set, every accepted mutation is appended to the
// write-ahead log before it is applied and acknowledged only after
// wal.Commit — under the default SyncAlways policy, after an fsync. A
// reboot loads the latest snapshot and replays the log on top, so a
// kill -9 (or, under SyncAlways, a power cut) between snapshots loses
// no acknowledged mutation.
//
// Ordering: e.mutMu is held across {append, apply}, making WAL order
// identical to apply order — replay reproduces exactly the sequence the
// live engine executed. The fsync wait (Commit) happens after mutMu is
// released, so concurrent mutations batch into shared group commits
// instead of serialising on the disk.
//
// Snapshot coordination: SaveSnapshot takes a wal.Barrier under mutMu
// before streaming the shards. Every record appended before the barrier
// is therefore applied, hence contained in the snapshot, and the
// pre-barrier segments can be deleted once the manifest commits.
// Replay is idempotent (insert skips present IDs, delete of an absent
// ID is a no-op) and pre-barrier segments are removed oldest first, so
// an interrupted truncation leaves a contiguous suffix of the applied
// record sequence whose replay over the snapshot converges back to the
// snapshotted state.

// attachWAL opens the log configured in e.opt, replays it into the
// freshly booted engine, and arms the mutation path. Called once at the
// end of every engine constructor. It also builds the live-ingest state
// (initStream) — before replay, so replayed append records land in the
// track buffer — and arms the background sealer; with a nil WALDir only
// those two happen.
func (e *Engine) attachWAL() error {
	e.initStream()
	defer e.startSealer()
	if e.opt.WALDir == "" {
		return nil
	}
	l, err := wal.Open(wal.Options{
		Dir:          e.opt.WALDir,
		FS:           e.fs,
		Policy:       e.opt.WALSync,
		Interval:     e.opt.WALSyncInterval,
		SegmentBytes: e.opt.WALSegmentBytes,
	})
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	if err := l.Replay(e.replayRecord); err != nil {
		l.Close()
		return fmt.Errorf("server: wal replay: %w", err)
	}
	if err := e.checkReplayGaps(); err != nil {
		l.Close()
		return fmt.Errorf("server: wal replay: %w", err)
	}
	e.wal = l
	return nil
}

// checkReplayGaps verifies that every append record skipped for
// starting past its track's recovered prefix (replayRecord's
// interrupted-truncation shape) was made whole by a later full-state
// carry-over record — or that the track was sealed, which the snapshot
// then covers. A leftover gap means acknowledged points are genuinely
// unrecoverable, and the boot must refuse rather than serve the track
// with a hole.
func (e *Engine) checkReplayGaps() error {
	for id, end := range e.replayGaps {
		if e.Lookup(id) != nil {
			continue
		}
		if e.buffer.Len(id) >= end {
			continue
		}
		return fmt.Errorf("track %d has an unrepaired gap (recovered %d points, records reached %d)",
			id, e.buffer.Len(id), end)
	}
	e.replayGaps = nil
	return nil
}

// replayRecord applies one recovered WAL record. Replay bypasses the
// public Insert/Delete — the log must not be re-appended to, and the
// public mutation counters must reflect live traffic, not recovery.
func (e *Engine) replayRecord(rec wal.Record) error {
	if err := e.requireMutable(); err != nil {
		// The log holds mutations but a loaded backend cannot accept
		// them: booting with a different -metrics set than the log was
		// written under. Refusing is the only move that cannot lose data.
		return err
	}
	switch rec.Op {
	case wal.OpInsert:
		if e.Lookup(rec.ID) != nil {
			return nil // already in the snapshot (or an earlier record)
		}
		return e.applyInsert(rec.Traj)
	case wal.OpDelete:
		e.applyDelete(rec.ID)
		return nil
	case wal.OpAppend:
		// Appends replay offset-based: a record overlapping what the
		// track already holds (a snapshot carry-over record followed by
		// the re-applied live records) applies only its novel suffix, so
		// replay is idempotent and a recovered track is exactly the
		// logged prefix. A record STARTING past what the track holds is
		// the interrupted-truncation shape — segments are removed oldest
		// first, so the log may open mid-track, with the snapshot's
		// full-state carry-over record (durable before any truncation)
		// further on to repair the head. The delta is skipped and the
		// repair obligation recorded; a boot where it never arrives
		// fails (checkReplayGaps) rather than serving a track with a
		// hole.
		if e.Lookup(rec.ID) != nil {
			return nil // the track was sealed later in the log or snapshot
		}
		pts := rec.Traj.Points
		have := e.buffer.Len(rec.ID)
		if rec.Offset+len(pts) <= have {
			return nil // fully applied already
		}
		if rec.Offset > have {
			if e.replayGaps == nil {
				e.replayGaps = make(map[int]int)
			}
			if end := rec.Offset + len(pts); end > e.replayGaps[rec.ID] {
				e.replayGaps[rec.ID] = end
			}
			return nil
		}
		e.applyAppend(rec.ID, rec.Traj.Label, pts[have-rec.Offset:])
		return nil
	case wal.OpSeal:
		if e.Lookup(rec.ID) != nil {
			return nil // already sealed (snapshot or an earlier record)
		}
		if !e.buffer.Has(rec.ID) {
			return fmt.Errorf("seal of unknown track %d", rec.ID)
		}
		if end, ok := e.replayGaps[rec.ID]; ok && e.buffer.Len(rec.ID) < end {
			return fmt.Errorf("seal of track %d with unrepaired gap (have %d points, need %d)",
				rec.ID, e.buffer.Len(rec.ID), end)
		}
		return e.applySeal(rec.ID)
	}
	return fmt.Errorf("unknown op %v", rec.Op)
}

// Close releases the engine's durable resources: it stops the
// background sealer, then flushes and fsyncs the write-ahead log (under
// every sync policy) and closes it. Queries still work after Close;
// mutations fail. Engines without a WAL only stop the sealer.
func (e *Engine) Close() error {
	e.stopSealer()
	if e.wal == nil {
		return nil
	}
	if err := e.wal.Close(); err != nil {
		return fmt.Errorf("server: wal close: %w", err)
	}
	return nil
}
