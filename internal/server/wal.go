package server

import (
	"fmt"

	"trajmatch/internal/wal"
)

// The engine's durability story in one place:
//
// With Options.WALDir set, every accepted mutation is appended to the
// write-ahead log before it is applied and acknowledged only after
// wal.Commit — under the default SyncAlways policy, after an fsync. A
// reboot loads the latest snapshot and replays the log on top, so a
// kill -9 (or, under SyncAlways, a power cut) between snapshots loses
// no acknowledged mutation.
//
// Ordering: e.mutMu is held across {append, apply}, making WAL order
// identical to apply order — replay reproduces exactly the sequence the
// live engine executed. The fsync wait (Commit) happens after mutMu is
// released, so concurrent mutations batch into shared group commits
// instead of serialising on the disk.
//
// Snapshot coordination: SaveSnapshot takes a wal.Barrier under mutMu
// before streaming the shards. Every record appended before the barrier
// is therefore applied, hence contained in the snapshot, and the
// pre-barrier segments can be deleted once the manifest commits.
// Replay is idempotent (insert skips present IDs, delete of an absent
// ID is a no-op) and pre-barrier segments are removed oldest first, so
// an interrupted truncation leaves a contiguous suffix of the applied
// record sequence whose replay over the snapshot converges back to the
// snapshotted state.

// attachWAL opens the log configured in e.opt, replays it into the
// freshly booted engine, and arms the mutation path. Called once at the
// end of every engine constructor; a nil WALDir is a no-op.
func (e *Engine) attachWAL() error {
	if e.opt.WALDir == "" {
		return nil
	}
	l, err := wal.Open(wal.Options{
		Dir:          e.opt.WALDir,
		FS:           e.fs,
		Policy:       e.opt.WALSync,
		Interval:     e.opt.WALSyncInterval,
		SegmentBytes: e.opt.WALSegmentBytes,
	})
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	if err := l.Replay(e.replayRecord); err != nil {
		l.Close()
		return fmt.Errorf("server: wal replay: %w", err)
	}
	e.wal = l
	return nil
}

// replayRecord applies one recovered WAL record. Replay bypasses the
// public Insert/Delete — the log must not be re-appended to, and the
// public mutation counters must reflect live traffic, not recovery.
func (e *Engine) replayRecord(rec wal.Record) error {
	if err := e.requireMutable(); err != nil {
		// The log holds mutations but a loaded backend cannot accept
		// them: booting with a different -metrics set than the log was
		// written under. Refusing is the only move that cannot lose data.
		return err
	}
	switch rec.Op {
	case wal.OpInsert:
		if e.Lookup(rec.ID) != nil {
			return nil // already in the snapshot (or an earlier record)
		}
		return e.applyInsert(rec.Traj)
	case wal.OpDelete:
		e.applyDelete(rec.ID)
		return nil
	}
	return fmt.Errorf("unknown op %v", rec.Op)
}

// Close releases the engine's durable resources: it flushes and fsyncs
// the write-ahead log (under every sync policy) and closes it. Queries
// still work after Close; mutations fail. Engines without a WAL have
// nothing to release and Close is a no-op.
func (e *Engine) Close() error {
	if e.wal == nil {
		return nil
	}
	if err := e.wal.Close(); err != nil {
		return fmt.Errorf("server: wal close: %w", err)
	}
	return nil
}
