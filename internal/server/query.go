package server

import (
	"errors"
	"fmt"
	"math"

	"trajmatch/internal/backend"
)

// ErrInvalidQuery wraps every request-validation failure of
// Engine.Search/SearchBatch, so callers (the HTTP layer in particular)
// can distinguish a malformed query from an execution failure with
// errors.Is.
var ErrInvalidQuery = errors.New("invalid query")

// QueryKind selects which search a Query runs. The values are the wire
// strings of the /v1/search endpoint.
type QueryKind string

const (
	// KindKNN is exact k-nearest-neighbour search under EDwPavg (or
	// cumulative EDwP per the index options): the K closest indexed
	// trajectories.
	KindKNN QueryKind = "knn"
	// KindRange returns every indexed trajectory within Radius.
	KindRange QueryKind = "range"
	// KindSubKNN is sub-trajectory search (EDwPsub, Eq. 6): the K indexed
	// trajectories containing the contiguous sub-trajectory best matching
	// the whole query. Answered by a bounded scan fanned across the
	// shards — the tree's lower bounds target whole-trajectory EDwP and
	// do not apply.
	KindSubKNN QueryKind = "subknn"
)

// Query is the single request type of the engine's search API: one
// struct carries the query kind and every knob, so new parameters extend
// a field set instead of multiplying method variants. The zero value is
// not valid — Kind is mandatory.
type Query struct {
	// Kind selects the search; see the QueryKind constants.
	Kind QueryKind `json:"kind"`

	// Metric selects which loaded backend answers the query: "edwp",
	// "dtw", "edr", or any future registered backend the engine was
	// booted with. Empty means the engine's default metric — its first
	// in boot order, "edwp" in every standard boot. An unregistered name
	// fails with ErrUnknownMetric; a registered one the engine did not
	// load fails with ErrMetricNotLoaded.
	Metric string `json:"metric,omitempty"`

	// K is the answer-set size for KindKNN and KindSubKNN; ignored by
	// KindRange.
	K int `json:"k,omitempty"`

	// Radius is the KindRange search radius; ignored by the k-NN kinds.
	Radius float64 `json:"radius,omitempty"`

	// Limit, when positive and finite, seeds KindKNN and KindSubKNN with
	// an external upper bound: candidates above it are pruned from the
	// first evaluation, and the answer may hold fewer than K results. It
	// must be admissible — a known upper bound on the true K-th best
	// distance — or true neighbours can be cut off. 0 (or +Inf) means
	// unbounded. Ignored by KindRange, whose Radius already is the bound.
	Limit float64 `json:"limit,omitempty"`

	// MaxEvals, when positive, caps the exact distance evaluations the
	// query may spend across its whole shard fan-out. A query that
	// exhausts the budget stops early and returns its best-effort answer
	// with Answer.Truncated set — no longer exact, but bounded in cost.
	// 0 means unlimited.
	MaxEvals int `json:"max_evals,omitempty"`

	// Prefilter routes a KindKNN query through the sketch/LSH candidate
	// prefilter: each shard's sketch admits a small candidate set and
	// the backend verifies it exactly under the shared bound. The
	// answer is exact over the admitted candidates; the approximation
	// is recall — a true neighbour the sketch never admitted is absent.
	// Requires an engine booted with Options.Prefilter and a backend
	// implementing the CandidateSearcher capability (ErrNotSupported
	// otherwise); invalid on the other kinds. Prefiltered answers
	// bypass the result cache, whose key promises the exact k-NN.
	Prefilter bool `json:"prefilter,omitempty"`

	// WithStats asks for the per-query kernel instrumentation in
	// Answer.Stats. The engine's cumulative counters accumulate either
	// way; this only controls the per-answer copy.
	WithStats bool `json:"with_stats,omitempty"`
}

// validate rejects malformed queries with ErrInvalidQuery-wrapped errors.
func (q Query) validate() error {
	switch q.Kind {
	case KindKNN, KindSubKNN:
		if q.K <= 0 {
			return fmt.Errorf("%w: k must be positive for kind %q", ErrInvalidQuery, q.Kind)
		}
		if q.Limit < 0 || math.IsNaN(q.Limit) {
			return fmt.Errorf("%w: limit must be non-negative", ErrInvalidQuery)
		}
	case KindRange:
		if q.Radius < 0 || math.IsNaN(q.Radius) {
			return fmt.Errorf("%w: radius must be non-negative", ErrInvalidQuery)
		}
	case "":
		return fmt.Errorf("%w: missing kind (one of %q, %q, %q)", ErrInvalidQuery, KindKNN, KindRange, KindSubKNN)
	default:
		return fmt.Errorf("%w: unknown kind %q (one of %q, %q, %q)", ErrInvalidQuery, q.Kind, KindKNN, KindRange, KindSubKNN)
	}
	if q.MaxEvals < 0 {
		return fmt.Errorf("%w: max_evals must be non-negative", ErrInvalidQuery)
	}
	if q.Prefilter && q.Kind != KindKNN {
		return fmt.Errorf("%w: prefilter applies to kind %q only", ErrInvalidQuery, KindKNN)
	}
	return nil
}

// seedLimit returns the bound the fan-out is seeded with: +Inf unless a
// positive finite Limit was given.
func (q Query) seedLimit() float64 {
	if q.Limit > 0 && !math.IsInf(q.Limit, 1) {
		return q.Limit
	}
	return math.Inf(1)
}

// cacheable reports whether the answer may be served from / stored into
// the LRU cache: only plain exact k-NN — a Limit can shrink the answer
// set, a MaxEvals budget can truncate it, and a prefiltered answer can
// miss a neighbour the sketch never admitted, so none of them match the
// cache key's "exact KNN(q, k)" meaning.
func (q Query) cacheable() bool {
	return q.Kind == KindKNN && q.seedLimit() == math.Inf(1) && q.MaxEvals == 0 && !q.Prefilter
}

// Answer is the result of one executed Query.
type Answer struct {
	// Results is the answer set, sorted by (distance, ID).
	Results []backend.Result
	// Stats is this query's kernel instrumentation, populated only when
	// the Query set WithStats (and zero for cache hits — the index was
	// never touched).
	Stats backend.Stats
	// Cached reports that the answer came from the LRU result cache.
	Cached bool
	// Truncated reports that the MaxEvals budget ran out: Results holds
	// the neighbours confirmed so far and is no longer guaranteed exact.
	Truncated bool
	// Degraded reports a partial cluster answer: at least one shard
	// group's nodes were all unreachable, so Results covers the reachable
	// shards only. Always false for single-process engines — only the
	// cluster router (internal/cluster) sets it.
	Degraded bool
}
