package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"trajmatch/internal/traj"
	"trajmatch/internal/trajtree"
)

func decodeError(t *testing.T, resp *http.Response) ErrorResponse {
	t.Helper()
	var e ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("decoding error envelope: %v", err)
	}
	if e.Error == "" || e.Code == "" {
		t.Fatalf("incomplete error envelope %+v", e)
	}
	return e
}

// postRaw posts body and returns the response with its body still open,
// so callers can decode error envelopes; they must close it.
func postRaw(t *testing.T, srv *httptest.Server, path string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestV1SearchKinds drives all three query kinds plus a batch through
// the single /v1/search endpoint and checks them against the engine.
func TestV1SearchKinds(t *testing.T) {
	e := newTestEngine(t, 60, Options{})
	srv := httptest.NewServer(NewAPIHandler(e, HandlerOptions{}))
	defer srv.Close()

	db := testDB(60, 7)
	q := db[10].Clone()
	q.ID = 1_000_000
	wq := wire(q)

	var knn SearchResponse
	if r := postJSON(t, srv, "/v1/search", SearchRequest{Query: Query{Kind: KindKNN, K: 5, WithStats: true}, QueryTraj: &wq}, &knn); r.StatusCode != http.StatusOK {
		t.Fatalf("knn status %d", r.StatusCode)
	}
	if len(knn.Results) != 5 || knn.Stats == nil || knn.Stats.DistanceCalls == 0 {
		t.Fatalf("knn response %+v: want 5 results with stats", knn)
	}
	want, err := e.Search(context.Background(), q, Query{Kind: KindKNN, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range knn.Results {
		if n.ID != want.Results[i].Traj.ID || n.Dist != want.Results[i].Dist {
			t.Fatalf("knn rank %d: wire (%d, %v) != engine (%d, %v)",
				i, n.ID, n.Dist, want.Results[i].Traj.ID, want.Results[i].Dist)
		}
	}

	// Stats stay off the wire unless asked for.
	var lean SearchResponse
	postJSON(t, srv, "/v1/search", SearchRequest{Query: Query{Kind: KindKNN, K: 5}, QueryTraj: &wq}, &lean)
	if lean.Stats != nil {
		t.Fatalf("with_stats=false still returned stats %+v", *lean.Stats)
	}

	var rng SearchResponse
	if r := postJSON(t, srv, "/v1/search", SearchRequest{Query: Query{Kind: KindRange, Radius: 50}, QueryTraj: &wq}, &rng); r.StatusCode != http.StatusOK {
		t.Fatalf("range status %d", r.StatusCode)
	}
	wantR, err := e.Search(context.Background(), q, Query{Kind: KindRange, Radius: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(rng.Results) != len(wantR.Results) {
		t.Fatalf("range returned %d results, engine %d", len(rng.Results), len(wantR.Results))
	}

	var sub SearchResponse
	if r := postJSON(t, srv, "/v1/search", SearchRequest{Query: Query{Kind: KindSubKNN, K: 3}, QueryTraj: &wq}, &sub); r.StatusCode != http.StatusOK {
		t.Fatalf("subknn status %d", r.StatusCode)
	}
	if len(sub.Results) != 3 {
		t.Fatalf("subknn returned %d results, want 3", len(sub.Results))
	}

	batch := SearchRequest{Query: Query{Kind: KindKNN, K: 3, WithStats: true}}
	for i := 0; i < 6; i++ {
		bq := db[i*9].Clone()
		bq.ID = 1_100_000 + i
		batch.Queries = append(batch.Queries, wire(bq))
	}
	var bresp SearchBatchResponse
	if r := postJSON(t, srv, "/v1/search", batch, &bresp); r.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", r.StatusCode)
	}
	if len(bresp.Answers) != 6 {
		t.Fatalf("batch returned %d answers, want 6", len(bresp.Answers))
	}
	for i, a := range bresp.Answers {
		if len(a.Results) != 3 {
			t.Fatalf("batch answer %d has %d results, want 3", i, len(a.Results))
		}
		if a.Stats == nil {
			t.Fatalf("batch answer %d lost its stats", i)
		}
	}
}

// TestV1SearchErrors: the envelope carries a stable code for every
// client error, and unknown /v1 paths answer JSON.
func TestV1SearchErrors(t *testing.T) {
	e := newTestEngine(t, 30, Options{})
	srv := httptest.NewServer(NewAPIHandler(e, HandlerOptions{}))
	defer srv.Close()

	q := wire(testDB(30, 7)[0])

	// Unknown kind → invalid_query.
	r := postRaw(t, srv, "/v1/search", SearchRequest{Query: Query{Kind: "fuzzy", K: 3}, QueryTraj: &q})
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown kind status %d, want 400", r.StatusCode)
	}
	if env := decodeError(t, r); env.Code != CodeInvalidQuery {
		t.Fatalf("unknown kind code %q, want %q", env.Code, CodeInvalidQuery)
	}

	// Neither query nor queries → bad_request.
	r = postRaw(t, srv, "/v1/search", SearchRequest{Query: Query{Kind: KindKNN, K: 3}})
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing query status %d, want 400", r.StatusCode)
	}
	if env := decodeError(t, r); env.Code != CodeBadRequest {
		t.Fatalf("missing query code %q, want %q", env.Code, CodeBadRequest)
	}

	// Both query and queries → bad_request.
	r = postRaw(t, srv, "/v1/search", SearchRequest{Query: Query{Kind: KindKNN, K: 3}, QueryTraj: &q, Queries: []WireTrajectory{q}})
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("both query+queries status %d, want 400", r.StatusCode)
	}

	// Wrong method on a real /v1 endpoint → 405 envelope with Allow, not
	// a misleading 404.
	resp405, err := srv.Client().Get(srv.URL + "/v1/search")
	if err != nil {
		t.Fatal(err)
	}
	defer resp405.Body.Close()
	if resp405.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/search status %d, want 405", resp405.StatusCode)
	}
	if allow := resp405.Header.Get("Allow"); allow != http.MethodPost {
		t.Fatalf("GET /v1/search Allow header %q, want POST", allow)
	}
	if env := decodeError(t, resp405); env.Code != CodeMethodNotAllowed {
		t.Fatalf("GET /v1/search code %q, want %q", env.Code, CodeMethodNotAllowed)
	}

	// Unknown /v1 path → JSON envelope, not net/http plain text.
	resp, err := srv.Client().Get(srv.URL + "/v1/definitely-not-a-route")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path status %d, want 404", resp.StatusCode)
	}
	if env := decodeError(t, resp); env.Code != CodeNotFound {
		t.Fatalf("unknown path code %q, want %q", env.Code, CodeNotFound)
	}
}

// TestV1SearchTimeout: a server-side query timeout surfaces as the
// error envelope with a 5xx status and code deadline_exceeded, within a
// bounded wall clock.
func TestV1SearchTimeout(t *testing.T) {
	db := longDB(20, 400, 53)
	e, err := NewEngineFromDB(db, trajtree.Options{Seed: 1, LeafSize: 4, NumVPs: 8, PivotCandidates: 8},
		Options{CacheSize: -1, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewAPIHandler(e, HandlerOptions{QueryTimeout: 15 * time.Millisecond}))
	defer srv.Close()

	q := db[3].Clone()
	q.ID = 2_000_000
	wq := wire(q)
	t0 := time.Now()
	r := postRaw(t, srv, "/v1/search", SearchRequest{Query: Query{Kind: KindKNN, K: 5}, QueryTraj: &wq})
	elapsed := time.Since(t0)
	if r.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("timed-out search status %d, want 504", r.StatusCode)
	}
	if env := decodeError(t, r); env.Code != CodeDeadlineExceeded {
		t.Fatalf("timed-out search code %q, want %q", env.Code, CodeDeadlineExceeded)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("timed-out search answered after %v — cancellation was not prompt", elapsed)
	}

	// The engine still answers normal queries afterwards: state intact.
	fast := traj.New(2_000_001, []traj.Point{traj.P(0, 0, 0), traj.P(1, 1, 1)})
	wfast := wire(fast)
	srv2 := httptest.NewServer(NewAPIHandler(e, HandlerOptions{}))
	defer srv2.Close()
	var ok SearchResponse
	if resp := postJSON(t, srv2, "/v1/search", SearchRequest{Query: Query{Kind: KindKNN, K: 1}, QueryTraj: &wfast}, &ok); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-timeout search status %d", resp.StatusCode)
	}
	if len(ok.Results) != 1 {
		t.Fatalf("post-timeout search returned %d results", len(ok.Results))
	}
}

// TestLegacyRoutesDeprecatedButIntact: the unversioned routes still
// answer with their original wire shapes, now flagged with the
// deprecation headers pointing at /v1.
func TestLegacyRoutesDeprecatedButIntact(t *testing.T) {
	e := newTestEngine(t, 40, Options{})
	srv := httptest.NewServer(NewAPIHandler(e, HandlerOptions{}))
	defer srv.Close()

	q := testDB(40, 7)[4].Clone()
	q.ID = 1_000_000
	var resp KNNResponse
	r := postJSON(t, srv, "/knn", KNNRequest{Query: wire(q), K: 4}, &resp)
	if r.StatusCode != http.StatusOK || len(resp.Results) != 4 {
		t.Fatalf("legacy /knn: status %d results %d", r.StatusCode, len(resp.Results))
	}
	if r.Header.Get("Deprecation") != "true" {
		t.Fatalf("legacy /knn missing Deprecation header (got %q)", r.Header.Get("Deprecation"))
	}
	if link := r.Header.Get("Link"); link != `</v1/search>; rel="successor-version"` {
		t.Fatalf("legacy /knn Link header %q", link)
	}

	// /v1 answers carry no deprecation marks.
	wq := wire(q)
	r2 := postRaw(t, srv, "/v1/search", SearchRequest{Query: Query{Kind: KindKNN, K: 4}, QueryTraj: &wq})
	if r2.Header.Get("Deprecation") != "" {
		t.Fatal("/v1/search wrongly marked deprecated")
	}

	// Every remaining legacy route is marked too.
	for _, probe := range []struct{ method, path string }{
		{"GET", "/stats"},
		{"GET", "/healthz"},
	} {
		resp, err := srv.Client().Get(srv.URL + probe.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.Header.Get("Deprecation") != "true" {
			t.Fatalf("legacy %s missing Deprecation header", probe.path)
		}
	}
}
