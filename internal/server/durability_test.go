// Crash-recovery coverage for the WAL + snapshot durability layer.
//
// The centrepiece is a failpoint sweep: a fixed mutation workload runs
// against an engine whose every file operation goes through a
// faultfs.Injector, once per failpoint, and after each simulated crash
// a fresh engine boots from the wreckage and must serve either the
// state after the last acknowledged mutation or that state plus exactly
// the one mutation in flight — byte-identically to a reference engine
// built from that state, and never anything partial.
//
//lint:file-ignore SA1019 exercises the deprecated per-variant queries on purpose.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"trajmatch/internal/faultfs"
	"trajmatch/internal/traj"
	"trajmatch/internal/trajtree"
)

// copyDirT recursively copies src into dst — each sweep iteration (and
// each corruption case) starts from a pristine copy of the seed disk.
func copyDirT(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		s, d := filepath.Join(src, ent.Name()), filepath.Join(dst, ent.Name())
		if ent.IsDir() {
			copyDirT(t, s, d)
			continue
		}
		data, err := os.ReadFile(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(d, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// crashStep is one operation of the sweep workload.
type crashStep struct {
	op string // "insert", "delete", "snapshot"
	tr *traj.Trajectory
	id int
}

// engineMatches reports whether e indexes exactly the trajectories of
// state (by ID; geometry is checked separately by query comparison
// against a reference engine).
func engineMatches(e *Engine, state map[int]*traj.Trajectory) bool {
	if e.Size() != len(state) {
		return false
	}
	for id := range state {
		if e.Lookup(id) == nil {
			return false
		}
	}
	return true
}

func stateDB(state map[int]*traj.Trajectory) []*traj.Trajectory {
	db := make([]*traj.Trajectory, 0, len(state))
	for _, tr := range state {
		db = append(db, tr)
	}
	sort.Slice(db, func(i, j int) bool { return db[i].ID < db[j].ID })
	return db
}

// TestCrashRecoverySweep is the acceptance property of the durability
// layer: for shard counts 1, 2 and 4 (prefilter enabled throughout) and
// both crash models (kill -9 and power loss), a crash at EVERY
// fault-eligible file operation of a workload mixing mutations with a
// mid-stream snapshot leaves a directory from which a fresh engine
// recovers the acknowledged state exactly.
func TestCrashRecoverySweep(t *testing.T) {
	topt := trajtree.Options{Seed: 1, LeafSize: 4}
	db0 := testDB(24, 11)
	pool := testDB(80, 99)
	mkTraj := func(i, id int) *traj.Trajectory {
		tr := pool[i].Clone()
		tr.ID = id
		return tr
	}
	// Two mutations land in the WAL after the seed snapshot, so every
	// workload boot also exercises replay-on-boot.
	bootIns := mkTraj(0, 900)

	steps := []crashStep{
		{op: "insert", tr: mkTraj(1, 1001)},
		{op: "insert", tr: mkTraj(2, 1002)},
		{op: "delete", id: 3},
		{op: "insert", tr: mkTraj(3, 1003)},
		{op: "snapshot"},
		{op: "delete", id: 1001}, // delete across the snapshot boundary
		{op: "insert", tr: mkTraj(4, 1004)},
		{op: "delete", id: 5},
		{op: "insert", tr: mkTraj(5, 1005)},
	}
	mutations := 0
	for _, st := range steps {
		if st.op != "snapshot" {
			mutations++
		}
	}

	// states[i] is the expected index content after the first i
	// acknowledged mutations (snapshot steps change no state).
	init := map[int]*traj.Trajectory{}
	for _, tr := range db0 {
		init[tr.ID] = tr
	}
	init[bootIns.ID] = bootIns
	delete(init, 0)
	states := []map[int]*traj.Trajectory{init}
	cur := init
	for _, st := range steps {
		if st.op == "snapshot" {
			continue
		}
		next := make(map[int]*traj.Trajectory, len(cur)+1)
		for id, tr := range cur {
			next[id] = tr
		}
		if st.op == "insert" {
			next[st.tr.ID] = st.tr
		} else {
			delete(next, st.id)
		}
		states = append(states, next)
		cur = next
	}

	queries := []*traj.Trajectory{db0[2].Clone(), db0[9].Clone(), pool[20].Clone()}
	for i, q := range queries {
		q.ID = 9_000_000 + i
	}

	shardCounts := []int{1, 2, 4}
	if testing.Short() {
		shardCounts = []int{2}
	}
	for _, shards := range shardCounts {
		for _, mode := range []faultfs.CrashMode{faultfs.CrashKill, faultfs.CrashPower} {
			shards, mode := shards, mode
			modeName := "kill"
			if mode == faultfs.CrashPower {
				modeName = "power"
			}
			t.Run(fmt.Sprintf("shards=%d/mode=%s", shards, modeName), func(t *testing.T) {
				t.Parallel()
				// Seed disk: snapshot + a two-record WAL, written with the
				// real filesystem. Every run below starts from a copy.
				seedSnap, seedWAL := filepath.Join(t.TempDir(), "snap"), filepath.Join(t.TempDir(), "wal")
				e0, err := NewEngineFromDB(db0, topt, Options{
					CacheSize: -1, Workers: 1, Shards: shards,
					WALDir: seedWAL, Prefilter: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := e0.SaveSnapshot(seedSnap); err != nil {
					t.Fatal(err)
				}
				if err := e0.Insert(bootIns.Clone()); err != nil {
					t.Fatal(err)
				}
				if !e0.Delete(0) {
					t.Fatal("seed delete missed")
				}
				if err := e0.Close(); err != nil {
					t.Fatal(err)
				}

				// runWorkload boots from the (copied) seed disk through inj
				// and applies the steps, counting acknowledged mutations.
				// After the injected crash the remaining steps are still
				// attempted — they must all fail un-acknowledged, which is
				// exactly the fencing the sticky crash errors provide.
				runWorkload := func(inj *faultfs.Injector, snapDir, walDir string) (acked int, err error) {
					e, err := LoadSnapshotSpecs(snapDir, nil, Options{
						CacheSize: -1, Workers: 1,
						WALDir: walDir, FS: inj, Prefilter: true,
					})
					if err != nil {
						if inj.Crashed() {
							return 0, nil
						}
						return 0, fmt.Errorf("boot failed without a crash: %w", err)
					}
					defer e.Close()
					for _, st := range steps {
						switch st.op {
						case "insert":
							ierr := e.Insert(st.tr.Clone())
							if ierr == nil {
								acked++
							} else if !inj.Crashed() {
								return acked, fmt.Errorf("insert %d failed without a crash: %w", st.tr.ID, ierr)
							}
						case "delete":
							if e.Delete(st.id) {
								acked++
							} else if !inj.Crashed() {
								return acked, fmt.Errorf("delete %d missed without a crash", st.id)
							}
						case "snapshot":
							if serr := e.SaveSnapshot(snapDir); serr != nil && !inj.Crashed() {
								return acked, fmt.Errorf("snapshot failed without a crash: %w", serr)
							}
						}
					}
					return acked, nil
				}

				// Discovery run: failAt 0 never fires; it counts the
				// workload's fault-eligible operations and doubles as the
				// no-crash sanity check.
				probeSnap, probeWAL := filepath.Join(t.TempDir(), "snap"), filepath.Join(t.TempDir(), "wal")
				copyDirT(t, seedSnap, probeSnap)
				copyDirT(t, seedWAL, probeWAL)
				probe := faultfs.NewInjector(faultfs.OS{}, mode, nil, 0)
				acked, err := runWorkload(probe, probeSnap, probeWAL)
				if err != nil {
					t.Fatal(err)
				}
				if acked != mutations {
					t.Fatalf("probe acked %d of %d mutations", acked, mutations)
				}
				total := probe.Ops()
				if total == 0 {
					t.Fatal("workload issued no fault-eligible operations")
				}

				// Reference engines for state comparison, built lazily and
				// shared across failpoints (the state set is fixed).
				refs := map[int]*Engine{}
				refFor := func(idx int) *Engine {
					if e, ok := refs[idx]; ok {
						return e
					}
					e, err := NewEngineFromDB(stateDB(states[idx]), topt,
						Options{CacheSize: -1, Workers: 1, Shards: shards})
					if err != nil {
						t.Fatal(err)
					}
					refs[idx] = e
					return e
				}

				for failAt := 1; failAt <= total; failAt++ {
					iter := t.TempDir()
					iterSnap, iterWAL := filepath.Join(iter, "snap"), filepath.Join(iter, "wal")
					copyDirT(t, seedSnap, iterSnap)
					copyDirT(t, seedWAL, iterWAL)
					inj := faultfs.NewInjector(faultfs.OS{}, mode, nil, failAt)
					acked, err := runWorkload(inj, iterSnap, iterWAL)
					if err != nil {
						t.Fatalf("failpoint %d: %v", failAt, err)
					}
					if !inj.Crashed() {
						t.Fatalf("failpoint %d never fired (%d ops)", failAt, inj.Ops())
					}
					if err := inj.Wreckage(); err != nil {
						t.Fatalf("failpoint %d: wreckage: %v", failAt, err)
					}

					// Reboot from the wreckage with the real filesystem,
					// through the mmap boot path: shards whose arena file
					// survived intact map it, the rest fall back to the gob
					// stream, and recovery must always succeed either way —
					// every crash the injector can produce leaves a readable
					// snapshot + WAL. (The workload boot above stays on the
					// gob path, so both loaders see every failpoint.)
					rec, err := LoadSnapshotSpecs(iterSnap, nil, Options{
						CacheSize: -1, Workers: 1, WALDir: iterWAL, Prefilter: true, Mmap: true,
					})
					if err != nil {
						t.Fatalf("failpoint %d (%d acked): recovery failed: %v", failAt, acked, err)
					}

					// The recovered index must be the acknowledged state or
					// that state plus exactly the mutation in flight at the
					// crash — never anything else, never partial.
					matched := -1
					for _, s := range []int{acked, acked + 1} {
						if s < len(states) && engineMatches(rec, states[s]) {
							matched = s
							break
						}
					}
					if matched < 0 {
						t.Fatalf("failpoint %d: recovered %d trajectories, matches neither state %d (%d) nor %d",
							failAt, rec.Size(), acked, len(states[acked]), acked+1)
					}

					// Byte-identical serving against a reference engine
					// built fresh from the matched state.
					ref := refFor(matched)
					for qi, q := range queries {
						got, _ := rec.KNN(q, 5)
						want, _ := ref.KNN(q, 5)
						sameResults(t, fmt.Sprintf("failpoint %d KNN q%d", failAt, qi), got, want)
						gotR, _ := rec.RangeSearch(q, 150)
						wantR, _ := ref.RangeSearch(q, 150)
						sameResults(t, fmt.Sprintf("failpoint %d range q%d", failAt, qi), gotR, wantR)
					}
					// The rebuilt prefilter serves too (recall-bounded, so
					// only the error path is asserted).
					if _, err := rec.Search(context.Background(), queries[0],
						Query{Kind: KindKNN, K: 3, Prefilter: true}); err != nil {
						t.Fatalf("failpoint %d: prefiltered query after recovery: %v", failAt, err)
					}
					if err := rec.Close(); err != nil {
						t.Fatalf("failpoint %d: close after recovery: %v", failAt, err)
					}
				}
			})
		}
	}
}

// TestWALReplayAfterKill pins the headline guarantee in its simplest
// form: mutations acknowledged under the default SyncAlways policy
// survive a kill -9 (no Close, no snapshot) and a fresh boot replays
// them all, answering byte-identically to the never-killed engine.
func TestWALReplayAfterKill(t *testing.T) {
	db := testDB(40, 13)
	topt := trajtree.Options{Seed: 1, LeafSize: 5}
	opt := Options{CacheSize: -1, Shards: 2, WALDir: t.TempDir()}
	e1, err := NewEngineFromDB(db, topt, opt)
	if err != nil {
		t.Fatal(err)
	}
	pool := testDB(60, 77)
	for i := 0; i < 10; i++ {
		tr := pool[i].Clone()
		tr.ID = 5000 + i
		if err := e1.Insert(tr); err != nil {
			t.Fatalf("insert %d: %v", tr.ID, err)
		}
	}
	if !e1.Delete(0) || !e1.Delete(7) {
		t.Fatal("delete missed")
	}
	// kill -9: e1 is simply abandoned — nothing flushed, nothing closed.

	e2, err := NewEngineFromDB(db, topt, opt)
	if err != nil {
		t.Fatalf("reboot: %v", err)
	}
	defer e2.Close()
	if e2.Size() != 48 {
		t.Fatalf("rebooted size %d, want 48", e2.Size())
	}
	for i := 0; i < 10; i++ {
		if e2.Lookup(5000+i) == nil {
			t.Fatalf("acknowledged insert %d lost", 5000+i)
		}
	}
	if e2.Lookup(0) != nil || e2.Lookup(7) != nil {
		t.Fatal("acknowledged delete lost")
	}
	st := e2.Stats()
	if st.WAL == nil {
		t.Fatal("stats carry no WAL section")
	}
	if st.WAL.Replayed != 12 {
		t.Fatalf("replayed %d records, want 12", st.WAL.Replayed)
	}
	for qi := 0; qi < 5; qi++ {
		q := db[qi*7].Clone()
		q.ID = 8_000_000 + qi
		got, _ := e2.KNN(q, 6)
		want, _ := e1.KNN(q, 6)
		sameResults(t, fmt.Sprintf("post-replay KNN q%d", qi), got, want)
	}

	// The WAL counters are part of the public /v1/stats payload.
	srv := httptest.NewServer(NewAPIHandler(e2, HandlerOptions{}))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if _, ok := payload["wal"]; !ok {
		t.Fatal("/v1/stats payload has no \"wal\" section")
	}
}

// TestSnapshotCorruptionMatrix damages every snapshot file in every way
// the durability layer must survive being lied to about — truncation,
// bit flips, zeroed regions — and asserts the loader always answers
// with a clean error: no panic, no engine serving wrong data. The
// matrix runs with and without a WAL configured, because the
// mixed-epoch salvage path must not be a loophole for bit rot.
func TestSnapshotCorruptionMatrix(t *testing.T) {
	db := testDB(50, 17)
	topt := trajtree.Options{Seed: 1, LeafSize: 5}
	e, err := NewEngineFromDB(db, topt, Options{CacheSize: -1, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	pristine := t.TempDir()
	if err := e.SaveSnapshot(pristine); err != nil {
		t.Fatal(err)
	}

	corruptions := []struct {
		name  string
		apply func([]byte) []byte
	}{
		{"truncate-60pct", func(b []byte) []byte { return b[:len(b)*6/10] }},
		{"truncate-10bytes", func(b []byte) []byte { return b[:10] }},
		{"bitflip-middle", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)/2] ^= 0xFF
			return c
		}},
		{"zero-16", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			for i := len(c) / 3; i < len(c)/3+16 && i < len(c); i++ {
				c[i] = 0
			}
			return c
		}},
	}
	for _, file := range []string{shardFileName(0), shardFileName(1), manifestName} {
		for _, c := range corruptions {
			for _, withWAL := range []bool{false, true} {
				t.Run(fmt.Sprintf("%s/%s/wal=%v", file, c.name, withWAL), func(t *testing.T) {
					dir := t.TempDir()
					copyDirT(t, pristine, dir)
					path := filepath.Join(dir, file)
					data, err := os.ReadFile(path)
					if err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, c.apply(data), 0o644); err != nil {
						t.Fatal(err)
					}
					opt := Options{CacheSize: -1}
					if withWAL {
						opt.WALDir = filepath.Join(dir, "wal")
					}
					loaded, err := LoadSnapshot(dir, opt)
					if err == nil {
						loaded.Close()
						t.Fatal("corrupt snapshot loaded without error")
					}
				})
			}
		}
	}
}

// TestSnapshotShrinkRemovesStaleShards: re-saving into a directory that
// previously held more shards must not leave orphan shard files behind
// the new manifest.
func TestSnapshotShrinkRemovesStaleShards(t *testing.T) {
	db := testDB(60, 21)
	topt := trajtree.Options{Seed: 1, LeafSize: 5}
	dir := t.TempDir()
	e8, err := NewEngineFromDB(db, topt, Options{CacheSize: -1, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := e8.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	e4, err := NewEngineFromDB(db, topt, Options{CacheSize: -1, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := e4.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		manifestName:     true,
		shardFileName(0): true,
		shardFileName(1): true,
		shardFileName(2): true,
		shardFileName(3): true,
		arenaFileName(0): true,
		arenaFileName(1): true,
		arenaFileName(2): true,
		arenaFileName(3): true,
	}
	for _, ent := range entries {
		if !want[ent.Name()] {
			t.Fatalf("stale file %q survived the re-save", ent.Name())
		}
		delete(want, ent.Name())
	}
	for name := range want {
		t.Fatalf("expected file %q missing after re-save", name)
	}
	loaded, err := LoadSnapshot(dir, Options{CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Shards() != 4 || loaded.Size() != 60 {
		t.Fatalf("reloaded %d shards / %d trajectories, want 4 / 60", loaded.Shards(), loaded.Size())
	}
}

// TestRecoveryMiddleware: a panicking handler answers with the standard
// JSON error envelope (500, code "internal") and the engine keeps
// serving afterwards.
func TestRecoveryMiddleware(t *testing.T) {
	e := newTestEngine(t, 20, Options{})
	api := NewAPIHandler(e, HandlerOptions{})
	mux := http.NewServeMux()
	mux.HandleFunc("/boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	mux.Handle("/", api)
	srv := httptest.NewServer(withRecovery(mux))
	defer srv.Close()

	for round := 0; round < 2; round++ {
		resp, err := srv.Client().Get(srv.URL + "/boom")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("panicking handler answered %d, want 500", resp.StatusCode)
		}
		var envelope ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
			t.Fatalf("panic response is not the error envelope: %v", err)
		}
		resp.Body.Close()
		if envelope.Code != CodeInternal {
			t.Fatalf("panic response code %q, want %q", envelope.Code, CodeInternal)
		}
		if !strings.Contains(envelope.Error, "kaboom") {
			t.Fatalf("panic response %q does not name the panic", envelope.Error)
		}

		// The engine behind the same server keeps serving.
		stats, err := srv.Client().Get(srv.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		stats.Body.Close()
		if stats.StatusCode != http.StatusOK {
			t.Fatalf("/v1/stats answered %d after a panic, want 200", stats.StatusCode)
		}
	}
}
