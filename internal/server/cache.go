package server

import (
	"container/list"
	"encoding/binary"
	"hash/fnv"
	"math"
	"sync"

	"trajmatch/internal/backend"
	"trajmatch/internal/traj"
)

// cacheKey identifies a k-NN query by the metric that answered it and a
// 64-bit FNV-1a hash of the query geometry together with k. Collisions
// would silently serve a wrong cached answer, so the full coordinate
// stream participates in the hash — id and label do not, letting
// resubmitted queries with fresh IDs hit — and the metric name
// participates verbatim, so the same geometry queried under EDwP and DTW
// occupies two distinct entries.
type cacheKey struct {
	metric string
	hash   uint64
	k      int
}

// knnKey hashes q's points and k into a cache key under metric.
func knnKey(metric string, q *traj.Trajectory, k int) cacheKey {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	for _, p := range q.Points {
		put(p.X)
		put(p.Y)
		put(p.T)
	}
	return cacheKey{metric: metric, hash: h.Sum64(), k: k}
}

// lruCache is a fixed-capacity LRU of k-NN answers. Every entry records
// the engine-wide generation it was computed at (bumped by every
// Insert/Delete/Rebuild on any shard); a lookup against a newer
// generation is a miss and evicts the stale entry, so updates invalidate
// lazily without scanning the cache. The cache has its own mutex — hits
// never contend with any shard lock.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *cacheEntry
	byKey map[cacheKey]*list.Element
}

type cacheEntry struct {
	key cacheKey
	gen uint64
	res []backend.Result
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		order: list.New(),
		byKey: make(map[cacheKey]*list.Element, capacity),
	}
}

func (c *lruCache) get(key cacheKey, gen uint64) ([]backend.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if ent.gen < gen {
		c.order.Remove(el)
		delete(c.byKey, key)
		return nil, false
	}
	if ent.gen > gen {
		// The entry was computed after the caller observed gen; it is not
		// stale for anyone, just too new for this (already outdated)
		// reader. Leave it for current readers.
		return nil, false
	}
	c.order.MoveToFront(el)
	return ent.res, true
}

func (c *lruCache) put(key cacheKey, gen uint64, res []backend.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		ent := el.Value.(*cacheEntry)
		if ent.gen > gen {
			return // never replace a fresher answer with a slow reader's older one
		}
		ent.gen, ent.res = gen, res
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
	c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, gen: gen, res: res})
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
