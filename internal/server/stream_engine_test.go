// Engine-level coverage of the live-ingest subsystem: read-your-writes
// visibility of appends, continuous-query event semantics against a
// polling oracle, the sketch token gate's counters, sealing, and the
// concurrent append/watch/seal/search interleavings (run under
// -race -count=3 in CI's race-fanout job).
package server

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"

	"trajmatch/internal/backend"
	"trajmatch/internal/stream"
	"trajmatch/internal/traj"
	"trajmatch/internal/trajtree"
)

// TestAppendReadYourWrites is the satellite regression: a point
// acknowledged by Append must be visible to the very next query, at
// every shard count, for every query kind, with the result cache
// enabled (a stale cached answer is exactly the bug this guards).
func TestAppendReadYourWrites(t *testing.T) {
	ctx := context.Background()
	pool := testDB(10, 123)
	src := pool[3]
	for _, shards := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			e := newTestEngine(t, 40, Options{Shards: shards, Prefilter: true})
			const id = 7000

			// The track's ID must be findable only via the live buffer:
			// it exists in no sealed shard.
			if e.Lookup(id) != nil {
				t.Fatal("test ID collides with the seeded corpus")
			}
			if _, err := e.Append(id, 1, src.Points[:2]); err != nil {
				t.Fatalf("first append: %v", err)
			}
			q := traj.New(9_100_000, append([]traj.Point(nil), src.Points[:2]...))
			ans, err := e.Search(ctx, q, Query{Kind: KindKNN, K: 3})
			if err != nil {
				t.Fatalf("knn after first append: %v", err)
			}
			if len(ans.Results) == 0 || ans.Results[0].Traj.ID != id || ans.Results[0].Dist != 0 {
				t.Fatalf("live track invisible to the next query: %+v", toNeighbors(ans.Results))
			}

			// Every subsequent acked point is visible to the immediately
			// following query of the grown prefix — the same query
			// trajectory is reused on purpose, so a result cache that
			// missed the append's generation bump would serve the stale
			// answer.
			for j := 2; j < len(src.Points); j++ {
				if off, err := e.Append(id, 1, src.Points[j:j+1]); err != nil || off != j {
					t.Fatalf("append %d: offset %d err %v", j, off, err)
				}
				q := traj.New(9_100_001, append([]traj.Point(nil), src.Points[:j+1]...))
				for round := 0; round < 2; round++ { // second round hits the cache
					ans, err := e.Search(ctx, q, Query{Kind: KindKNN, K: 3})
					if err != nil {
						t.Fatalf("knn after append %d: %v", j, err)
					}
					if len(ans.Results) == 0 || ans.Results[0].Traj.ID != id || ans.Results[0].Dist != 0 {
						t.Fatalf("prefix %d round %d: live track not the exact match: %+v",
							j+1, round, toNeighbors(ans.Results))
					}
				}
			}

			// Range and sub-trajectory queries see the live track too.
			full := traj.New(9_100_002, append([]traj.Point(nil), src.Points...))
			rans, err := e.Search(ctx, full, Query{Kind: KindRange, Radius: 1})
			if err != nil {
				t.Fatalf("range: %v", err)
			}
			found := false
			for _, r := range rans.Results {
				if r.Traj.ID == id {
					found = true
				}
			}
			if !found {
				t.Fatalf("live track missing from range answer: %+v", toNeighbors(rans.Results))
			}
			sub := traj.New(9_100_003, append([]traj.Point(nil), src.Points[1:3]...))
			sans, err := e.Search(ctx, sub, Query{Kind: KindSubKNN, K: 2})
			if err != nil {
				t.Fatalf("subknn: %v", err)
			}
			if len(sans.Results) == 0 || sans.Results[0].Traj.ID != id || sans.Results[0].Dist != 0 {
				t.Fatalf("live track not the exact sub-match: %+v", toNeighbors(sans.Results))
			}

			// Sealing folds the track into the sealed shards with
			// identical answers.
			if err := e.Seal(id); err != nil {
				t.Fatalf("seal: %v", err)
			}
			if e.Lookup(id) == nil || e.LiveTracks() != 0 {
				t.Fatal("seal did not fold the track into the index")
			}
			ans2, err := e.Search(ctx, q, Query{Kind: KindKNN, K: 3})
			if err != nil || len(ans2.Results) == 0 || ans2.Results[0].Traj.ID != id {
				t.Fatalf("sealed track lost: %+v err %v", toNeighbors(ans2.Results), err)
			}
		})
	}
}

// TestAppendValidation pins the append-path rejections: empty deltas,
// non-finite coordinates, time regressions (within a delta and across
// deltas), and appends onto sealed IDs.
func TestAppendValidation(t *testing.T) {
	e := newTestEngine(t, 10, Options{Shards: 2})
	if _, err := e.Append(800, 0, nil); err == nil {
		t.Fatal("empty append accepted")
	}
	bad := []traj.Point{traj.P(0, 0, 0), {X: math.Inf(1), Y: 1, T: 2}}
	if _, err := e.Append(800, 0, bad); err == nil {
		t.Fatal("non-finite point accepted")
	}
	if _, err := e.Append(800, 0, []traj.Point{traj.P(0, 0, 5), traj.P(1, 1, 4)}); err == nil {
		t.Fatal("in-delta time regression accepted")
	}
	if _, err := e.Append(800, 0, []traj.Point{traj.P(0, 0, 5), traj.P(1, 1, 6)}); err != nil {
		t.Fatalf("valid append rejected: %v", err)
	}
	if _, err := e.Append(800, 0, []traj.Point{traj.P(2, 2, 5.5)}); err == nil {
		t.Fatal("cross-delta time regression accepted")
	}
	if _, err := e.Append(0, 0, []traj.Point{traj.P(0, 0, 0)}); err == nil {
		t.Fatal("append onto a sealed (indexed) ID accepted")
	}
	if err := e.Seal(801); err == nil {
		t.Fatal("seal of an unknown track accepted")
	}
	if _, err := e.Append(802, 0, []traj.Point{traj.P(0, 0, 0)}); err != nil {
		t.Fatal(err)
	}
	if err := e.Seal(802); err == nil {
		t.Fatal("seal of a one-point track accepted")
	}
	// Deleting a live track drops it entirely.
	if !e.Delete(800) {
		t.Fatal("live-track delete missed")
	}
	if _, ok := e.LiveTrack(800); ok {
		t.Fatal("deleted live track survived")
	}
}

// TestWatchEventsMatchPollingOracle is the satellite property test: the
// continuous-query events the engine publishes are byte-identical —
// same order, same fields — to what polling the same prefix query
// after every append would produce. The engine here has no sketch
// prefilter, so every watch evaluates exactly and the oracle is the
// plain kernel with no gate to replicate: no missed matches, no
// phantom matches, no duplicate (unlatched) matches.
func TestWatchEventsMatchPollingOracle(t *testing.T) {
	e := newTestEngine(t, 20, Options{Shards: 2})
	pool := testDB(12, 55)
	sub := e.sets[0].shards[0].be.(backend.SubDistancer)

	type oracleWatch struct {
		id        int
		pattern   *traj.Trajectory
		threshold float64
		topk      *stream.Watch // reuses the engine's Offer semantics
		matched   map[int]bool  // threshold latch per track
	}
	var oracle []*oracleWatch
	addWatch := func(src *traj.Trajectory, lo, hi int, threshold float64, k int) {
		pattern := traj.New(-1, append([]traj.Point(nil), src.Points[lo:hi]...))
		id, err := e.Watch(pattern, "", threshold, k, false)
		if err != nil {
			t.Fatalf("watch: %v", err)
		}
		ow := &oracleWatch{id: id, pattern: pattern, threshold: threshold, matched: map[int]bool{}}
		if k > 0 {
			ow.topk = &stream.Watch{K: k}
		}
		oracle = append(oracle, ow)
	}
	addWatch(pool[2], 1, 4, 120, 0)
	addWatch(pool[5], 0, 3, 0, 2)
	addWatch(pool[9], 2, 5, 1e-9, 0) // matches only its own track, exactly

	tracks := map[int]*traj.Trajectory{
		7201: pool[2],
		7202: pool[5],
		7203: pool[9],
		7204: pool[11],
	}
	ids := []int{7201, 7202, 7203, 7204}
	prefix := map[int]int{}

	var want []stream.Event
	poll := func(id int) {
		n := prefix[id]
		if n < 2 {
			return
		}
		tr := traj.New(id, append([]traj.Point(nil), tracks[id].Points[:n]...))
		for _, ow := range oracle {
			if ow.threshold > 0 && ow.matched[id] {
				continue
			}
			limit := ow.threshold
			if ow.topk != nil {
				limit = ow.topk.KthBound()
			}
			d, abandoned := sub.SubDistanceBetween(ow.pattern, tr, limit, nil)
			if abandoned || d > limit {
				continue
			}
			if ow.topk != nil {
				if changed, rank := ow.topk.Offer(id, d); changed {
					want = append(want, stream.Event{
						Seq: uint64(len(want) + 1), Watch: ow.id, Track: id,
						Metric: trajtree.MetricName, Dist: d, PrefixLen: n, Rank: rank,
					})
				}
				continue
			}
			ow.matched[id] = true
			want = append(want, stream.Event{
				Seq: uint64(len(want) + 1), Watch: ow.id, Track: id,
				Metric: trajtree.MetricName, Dist: d, PrefixLen: n, Rank: -1,
			})
		}
	}

	// Interleave single-point appends round-robin across the tracks,
	// adding a fourth watch mid-stream to exercise the catch-up path.
	for step := 0; step < 5; step++ {
		if step == 2 {
			addWatch(pool[11], 0, 4, 200, 0)
		}
		for _, id := range ids {
			src := tracks[id]
			if prefix[id] >= len(src.Points) {
				continue
			}
			j := prefix[id]
			if _, err := e.Append(id, 0, src.Points[j:j+1]); err != nil {
				t.Fatalf("append track %d point %d: %v", id, j, err)
			}
			prefix[id] = j + 1
			poll(id)
		}
	}

	got, gap := e.Events(0, 0)
	if gap {
		t.Fatal("event log reported a gap")
	}
	if len(want) == 0 {
		t.Fatal("degenerate workload: the oracle produced no events")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("events diverge from the polling oracle:\n got %+v\nwant %+v", got, want)
	}
	if e.LastEventSeq() != uint64(len(want)) {
		t.Fatalf("LastEventSeq %d, want %d", e.LastEventSeq(), len(want))
	}
	// Sealing a matched track must not re-emit anything.
	before := e.LastEventSeq()
	if err := e.Seal(7203); err != nil {
		t.Fatalf("seal: %v", err)
	}
	if e.LastEventSeq() != before {
		t.Fatal("seal published an event")
	}
}

// TestWatchTokenGate asserts the sketch prefilter is doing the work the
// bench counter-asserts: with the prefilter on, a watch whose pattern
// is far from a track never costs an exact kernel evaluation on that
// track's appends (gate skips accumulate), while a colliding pattern
// still matches — and an Exact watch bypasses the gate entirely.
func TestWatchTokenGate(t *testing.T) {
	e := newTestEngine(t, 30, Options{Shards: 2, Prefilter: true})
	pool := testDB(12, 55)
	src := pool[2]

	// A pattern geometrically disjoint from everything the track visits.
	farPts := []traj.Point{traj.P(1e6, 1e6, 0), traj.P(1e6+50, 1e6+50, 10)}
	far, err := e.Watch(traj.New(-1, farPts), "", 10, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	near, err := e.Watch(traj.New(-1, append([]traj.Point(nil), src.Points[1:4]...)), "", 1e-9, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := e.Watch(traj.New(-1, farPts), "", 10, 0, true)
	if err != nil {
		t.Fatal(err)
	}

	const id = 7300
	for j := range src.Points {
		if _, err := e.Append(id, 0, src.Points[j:j+1]); err != nil {
			t.Fatalf("append %d: %v", j, err)
		}
	}
	evs, _ := e.Events(0, 0)
	if len(evs) != 1 || evs[0].Watch != near || evs[0].Track != id {
		t.Fatalf("expected exactly the near watch to match, got %+v", evs)
	}
	_ = far
	st := e.Stats().Stream
	if st == nil {
		t.Fatal("stats carry no stream section")
	}
	if st.WatchGateSkips == 0 {
		t.Fatal("token gate skipped nothing — the prefilter is not saving work")
	}
	if st.WatchEvals == 0 {
		t.Fatal("no exact evaluations ran at all")
	}
	// The exact watch must have been evaluated on every eligible append
	// (prefix >= 2) despite being geometrically hopeless: 4 appends.
	if st.WatchEvals < 4 {
		t.Fatalf("exact watch was gated: %d evals", st.WatchEvals)
	}
	_ = exact
	if st.Watches != 3 || st.LiveTracks != 1 || st.LivePoints != len(src.Points) {
		t.Fatalf("stream stats off: %+v", st)
	}
}

// TestStreamConcurrent drives concurrent appenders, a watcher
// registering and unregistering, event consumers, queries and the
// background sealer against one WAL-backed engine. Run under -race
// -count=3 in CI. The final state must be exact: every track sealed
// with every acknowledged point.
func TestStreamConcurrent(t *testing.T) {
	pool := testDB(40, 99)
	e, err := NewEngineFromDB(testDB(24, 7), trajtree.Options{Seed: 1, LeafSize: 5}, Options{
		Shards: 4, Prefilter: true, WALDir: t.TempDir(),
		SealAfter: 300 * time.Millisecond, SealInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const appenders = 4
	const perTrack = 12
	var wg sync.WaitGroup
	for g := 0; g < appenders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := 7400 + g
			src := pool[g*3]
			for j := 0; j < perTrack; j++ {
				pts := []traj.Point{traj.P(
					src.Points[j%len(src.Points)].X,
					src.Points[j%len(src.Points)].Y,
					float64(j),
				)}
				if _, err := e.Append(id, g, pts); err != nil {
					t.Errorf("append track %d: %v", id, err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() { // watcher churn
		defer wg.Done()
		for i := 0; i < 10; i++ {
			id, err := e.Watch(traj.New(-1, pool[i].Points[:3]), "", 100, 0, false)
			if err != nil {
				t.Errorf("watch: %v", err)
				return
			}
			if i%2 == 0 {
				e.Unwatch(id)
			}
		}
	}()
	wg.Add(1)
	go func() { // event consumer + queries
		defer wg.Done()
		var since uint64
		for i := 0; i < 20; i++ {
			evs, _ := e.Events(since, 16)
			for _, ev := range evs {
				if ev.Seq <= since {
					t.Errorf("event seq went backwards: %d after %d", ev.Seq, since)
					return
				}
				since = ev.Seq
			}
			q := pool[i%8].Clone()
			q.ID = 9_200_000 + i
			if _, err := e.Search(context.Background(), q, Query{Kind: KindKNN, K: 3}); err != nil {
				t.Errorf("search: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	// The background sealer must fold every idle track in.
	deadline := time.Now().Add(10 * time.Second)
	for e.LiveTracks() > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := e.LiveTracks(); n > 0 {
		t.Fatalf("%d tracks still live after the sealer deadline", n)
	}
	for g := 0; g < appenders; g++ {
		tr := e.Lookup(7400 + g)
		if tr == nil {
			t.Fatalf("track %d not sealed", 7400+g)
		}
		if len(tr.Points) != perTrack {
			t.Fatalf("track %d sealed with %d points, want %d", 7400+g, len(tr.Points), perTrack)
		}
	}
}
