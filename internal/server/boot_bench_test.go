package server

import (
	"context"
	"fmt"
	"testing"

	"trajmatch/internal/trajtree"
)

// BenchmarkSnapshotBoot measures warm boot: LoadSnapshot plus the first
// k-NN answer, mmap'd arena files against the gob streams of the same
// directory. The mmap path skips per-sample deserialization entirely —
// boot cost is the CRC pass over the file plus O(nodes + members)
// pointer stitching — so its advantage grows linearly with corpus size.
// The full 100k corpus backs the ISSUE-8 ≥10× acceptance number;
// -short (and so `go test ./...`) drops to 5k to keep the setup cheap.
func BenchmarkSnapshotBoot(b *testing.B) {
	n := 100_000
	if testing.Short() {
		n = 5_000
	}
	db := testDB(n, 71)
	dir := b.TempDir()
	e, err := NewEngineFromDB(db, trajtree.Options{Seed: 1}, Options{CacheSize: -1, Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	if err := e.SaveSnapshot(dir); err != nil {
		b.Fatal(err)
	}
	q := db[len(db)/2].Clone()
	q.ID = 9_000_000

	for _, mm := range []bool{true, false} {
		b.Run(fmt.Sprintf("mmap=%v", mm), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng, err := LoadSnapshot(dir, Options{CacheSize: -1, Mmap: mm})
				if err != nil {
					b.Fatal(err)
				}
				ans, err := eng.Search(context.Background(), q, Query{Kind: KindKNN, K: 3})
				if err != nil || len(ans.Results) == 0 {
					b.Fatalf("first query: %v (%d results)", err, len(ans.Results))
				}
			}
		})
	}
}
