package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"trajmatch/internal/backend"
	"trajmatch/internal/dtwindex"
	"trajmatch/internal/edrindex"
	"trajmatch/internal/traj"
	"trajmatch/internal/trajtree"
)

// multiSpecs returns the standard three-metric boot over db: EDwP (tree),
// DTW and EDR, with EDR's ε derived from the whole corpus exactly as the
// serving stack derives it.
func multiSpecs(db []*traj.Trajectory, topt trajtree.Options) []backend.Spec {
	return []backend.Spec{
		trajtree.BackendSpec(topt),
		dtwindex.BackendSpec(),
		edrindex.BackendSpec(edrindex.DefaultEps(db)),
	}
}

func exactSameResults(t *testing.T, label string, got, want []backend.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].Traj.ID != want[i].Traj.ID || got[i].Dist != want[i].Dist {
			t.Fatalf("%s: rank %d: (%d, %v), want (%d, %v)",
				label, i, got[i].Traj.ID, got[i].Dist, want[i].Traj.ID, want[i].Dist)
		}
	}
}

// TestEngineBackendsMatchStandaloneAcrossShards is the acceptance
// property of the pluggable-backend redesign: Engine.Search routed to
// the DTW and EDR backends is byte-identical to the corresponding
// standalone Index.KNN over the whole database, across shard counts
// {1, 2, 4, 8} — the shared-bound fan-out and the (distance, ID) merge
// change nothing about the answer, only about the work.
func TestEngineBackendsMatchStandaloneAcrossShards(t *testing.T) {
	db := testDB(160, 11)
	// Duplicated trajectories under fresh IDs force exact distance ties,
	// the case where only deterministic tie ordering keeps the property.
	for i := 0; i < 20; i++ {
		dup := db[i*7%len(db)].Clone()
		dup.ID = 100_000 + i
		db = append(db, dup)
	}
	topt := trajtree.Options{Seed: 1, LeafSize: 5}
	eps := edrindex.DefaultEps(db)
	dtwRef := dtwindex.New(db)
	edrRef := edrindex.New(db, eps)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(53))
	for _, shards := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			e, err := NewMultiEngineFromDB(db, multiSpecs(db, topt), Options{CacheSize: -1, Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			for it := 0; it < 12; it++ {
				q := db[rng.Intn(len(db))].Clone()
				q.ID = 3_000_000 + it
				if it%3 == 0 {
					for i := range q.Points {
						q.Points[i].X += rng.NormFloat64() * 15
						q.Points[i].Y += rng.NormFloat64() * 15
					}
				}
				k := 1 + rng.Intn(10)

				dans, err := e.Search(ctx, q, Query{Kind: KindKNN, K: k, Metric: "dtw", WithStats: true})
				if err != nil {
					t.Fatalf("it=%d: dtw Search: %v", it, err)
				}
				dref, _ := dtwRef.KNN(q, k)
				exactSameResults(t, fmt.Sprintf("dtw it=%d k=%d", it, k), dans.Results, dref)
				if dans.Stats.DistanceCalls == 0 {
					t.Fatalf("it=%d: dtw search reported no distance calls", it)
				}

				eans, err := e.Search(ctx, q, Query{Kind: KindKNN, K: k, Metric: "edr", WithStats: true})
				if err != nil {
					t.Fatalf("it=%d: edr Search: %v", it, err)
				}
				eref, _ := edrRef.KNN(q, k)
				exactSameResults(t, fmt.Sprintf("edr it=%d k=%d", it, k), eans.Results, eref)

				// Range queries agree with the standalone indexes too.
				radius := []float64{20, 80, 300}[it%3]
				drans, err := e.Search(ctx, q, Query{Kind: KindRange, Radius: radius, Metric: "dtw"})
				if err != nil {
					t.Fatalf("it=%d: dtw range: %v", it, err)
				}
				drref, _, _, _ := dtwRef.SearchRange(q, radius, nil)
				exactSameResults(t, fmt.Sprintf("dtw range it=%d r=%v", it, radius), drans.Results, drref)
			}
		})
	}
}

// TestSearchMetricRouting: the registry distinguishes a mistyped metric
// from a registered one that was not booted, the empty metric resolves
// to the first boot order, and every loaded metric routes to its own
// backend.
func TestSearchMetricRouting(t *testing.T) {
	db := testDB(80, 7)
	topt := trajtree.Options{Seed: 1, LeafSize: 5}
	e, err := NewEngineFromDB(db, topt, Options{CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	q := db[3].Clone()
	q.ID = 900_000

	// dtw is registered (this test binary links it) but not loaded here.
	if _, err := e.Search(context.Background(), q, Query{Kind: KindKNN, K: 3, Metric: "dtw"}); !errors.Is(err, ErrMetricNotLoaded) {
		t.Fatalf("unloaded metric: err = %v, want ErrMetricNotLoaded", err)
	}
	// A name nothing registered is unknown.
	if _, err := e.Search(context.Background(), q, Query{Kind: KindKNN, K: 3, Metric: "frechet"}); !errors.Is(err, ErrUnknownMetric) {
		t.Fatalf("unknown metric: err = %v, want ErrUnknownMetric", err)
	}

	// A dtw-first engine resolves the empty metric to dtw.
	me, err := NewMultiEngineFromDB(db, []backend.Spec{dtwindex.BackendSpec(), trajtree.BackendSpec(topt)}, Options{CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	def, err := me.Search(context.Background(), q, Query{Kind: KindKNN, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	dtw, err := me.Search(context.Background(), q, Query{Kind: KindKNN, K: 5, Metric: "dtw"})
	if err != nil {
		t.Fatal(err)
	}
	exactSameResults(t, "default vs explicit dtw", def.Results, dtw.Results)
	if got := me.Metrics(); got[0] != "dtw" || got[1] != "edwp" {
		t.Fatalf("Metrics() = %v, want boot order [dtw edwp]", got)
	}
}

// TestMetricCacheIsolation: the LRU cache keys on (metric, query), so
// the same geometry queried under two metrics never cross-serves.
func TestMetricCacheIsolation(t *testing.T) {
	db := testDB(90, 19)
	e, err := NewMultiEngineFromDB(db, multiSpecs(db, trajtree.Options{Seed: 1, LeafSize: 5}), Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	q := db[5].Clone()
	q.ID = 950_000
	ctx := context.Background()
	edwp1, err := e.Search(ctx, q, Query{Kind: KindKNN, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	dtw1, err := e.Search(ctx, q, Query{Kind: KindKNN, K: 5, Metric: "dtw"})
	if err != nil {
		t.Fatal(err)
	}
	if dtw1.Cached {
		t.Fatal("dtw query served from the edwp cache entry")
	}
	dtwRef, _ := dtwindex.New(db).KNN(q, 5)
	exactSameResults(t, "dtw after cached edwp", dtw1.Results, dtwRef)
	// Both metrics hit their own entries on repeat.
	edwp2, _ := e.Search(ctx, q, Query{Kind: KindKNN, K: 5})
	dtw2, _ := e.Search(ctx, q, Query{Kind: KindKNN, K: 5, Metric: "dtw"})
	if !edwp2.Cached || !dtw2.Cached {
		t.Fatalf("repeat queries not cached (edwp=%v dtw=%v)", edwp2.Cached, dtw2.Cached)
	}
	exactSameResults(t, "cached edwp", edwp2.Results, edwp1.Results)
	exactSameResults(t, "cached dtw", dtw2.Results, dtw1.Results)
}

// TestBackendCancellation: a context fired mid-scan aborts a DTW/EDR
// backend search within bounded wall clock — the flat scans poll the
// Ctl between candidates and their DP kernels poll it per row.
func TestBackendCancellation(t *testing.T) {
	db := longDB(32, 900, 31)
	specs := []backend.Spec{dtwindex.BackendSpec(), edrindex.BackendSpec(edrindex.DefaultEps(db))}
	e, err := NewMultiEngineFromDB(db, specs, Options{CacheSize: -1, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := db[5].Clone()
	q.ID = 6_000_000
	for _, metric := range []string{"dtw", "edr"} {
		t.Run(metric, func(t *testing.T) {
			t0 := time.Now()
			want, err := e.Search(context.Background(), q, Query{Kind: KindKNN, K: 5, Metric: metric})
			if err != nil {
				t.Fatal(err)
			}
			full := time.Since(t0)

			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(full / 20)
				cancel()
			}()
			t0 = time.Now()
			ans, err := e.Search(ctx, q, Query{Kind: KindKNN, K: 5, Metric: metric})
			elapsed := time.Since(t0)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled Search returned err=%v (answer %d results), want context.Canceled", err, len(ans.Results))
			}
			if len(ans.Results) != 0 {
				t.Fatalf("cancelled Search leaked %d results", len(ans.Results))
			}
			if elapsed > full/2+100*time.Millisecond {
				t.Fatalf("cancelled %s search took %v of an uncancelled %v — cancellation was not prompt", metric, elapsed, full)
			}
			// The engine answers exactly afterwards.
			again, err := e.Search(context.Background(), q, Query{Kind: KindKNN, K: 5, Metric: metric})
			if err != nil {
				t.Fatal(err)
			}
			exactSameResults(t, "post-cancel", again.Results, want.Results)
		})
	}
}

// TestBackendMaxEvalsTruncates: the evaluation budget is metric-agnostic
// — a DTW query that exhausts it stops early and reports truncation.
func TestBackendMaxEvalsTruncates(t *testing.T) {
	db := testDB(150, 43)
	e, err := NewMultiEngineFromDB(db, []backend.Spec{dtwindex.BackendSpec()}, Options{CacheSize: -1, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := db[7].Clone()
	q.ID = 8_000_000
	full, err := e.Search(context.Background(), q, Query{Kind: KindKNN, K: 10, WithStats: true})
	if err != nil {
		t.Fatal(err)
	}
	budget := full.Stats.DistanceCalls / 3
	if budget == 0 {
		t.Fatal("full search made no distance calls")
	}
	ans, err := e.Search(context.Background(), q, Query{Kind: KindKNN, K: 10, MaxEvals: budget, WithStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Truncated {
		t.Fatalf("budget %d of %d evals did not truncate", budget, full.Stats.DistanceCalls)
	}
	if ans.Stats.DistanceCalls > budget {
		t.Fatalf("query spent %d evals, budget %d", ans.Stats.DistanceCalls, budget)
	}
}

// TestMutationCapabilityGate: updates require every loaded backend to be
// mutable; with a static DTW index loaded, Insert/Rebuild surface
// ErrNotSupported, Delete reports nothing deleted, and sub-trajectory
// search under a metric without one is ErrNotSupported too.
func TestMutationCapabilityGate(t *testing.T) {
	db := testDB(60, 7)
	topt := trajtree.Options{Seed: 1, LeafSize: 5}
	e, err := NewMultiEngineFromDB(db, multiSpecs(db, topt), Options{CacheSize: -1, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	tr := testDB(61, 99)[60]
	tr.ID = 700_000
	if err := e.Insert(tr); !errors.Is(err, ErrNotSupported) {
		t.Fatalf("Insert with static backends: err = %v, want ErrNotSupported", err)
	}
	if e.Delete(db[0].ID) {
		t.Fatal("Delete succeeded despite static backends")
	}
	if err := e.Rebuild(); !errors.Is(err, ErrNotSupported) {
		t.Fatalf("Rebuild with static backends: err = %v, want ErrNotSupported", err)
	}
	if err := e.CanMutate(); !errors.Is(err, ErrNotSupported) {
		t.Fatalf("CanMutate: err = %v, want ErrNotSupported", err)
	}
	// Sub-trajectory search exists only for EDwP.
	q := db[3].Clone()
	q.ID = 710_000
	if _, err := e.Search(context.Background(), q, Query{Kind: KindSubKNN, K: 3, Metric: "dtw"}); !errors.Is(err, ErrNotSupported) {
		t.Fatalf("dtw subknn: err = %v, want ErrNotSupported", err)
	}
	if _, err := e.Search(context.Background(), q, Query{Kind: KindSubKNN, K: 3, Metric: "edwp"}); err != nil {
		t.Fatalf("edwp subknn should work in a multi-metric engine: %v", err)
	}
	// An EDwP-only engine still mutates.
	solo, err := NewEngineFromDB(db, topt, Options{CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := solo.Insert(tr); err != nil {
		t.Fatalf("edwp-only Insert: %v", err)
	}
	if err := solo.CanMutate(); err != nil {
		t.Fatalf("edwp-only CanMutate: %v", err)
	}
}

// TestSnapshotCapability: a snapshot needs a persistent (tree-backed)
// backend; a DTW-only engine answers ErrNotSupported, and a multi-metric
// engine persists its EDwP set with the manifest recording exactly that.
func TestSnapshotCapability(t *testing.T) {
	db := testDB(80, 23)
	dir := t.TempDir()
	dtwOnly, err := NewMultiEngineFromDB(db, []backend.Spec{dtwindex.BackendSpec()}, Options{CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := dtwOnly.SaveSnapshot(dir); !errors.Is(err, ErrNotSupported) {
		t.Fatalf("dtw-only snapshot: err = %v, want ErrNotSupported", err)
	}
}

// TestLoadSnapshotSpecsRebuildsMetrics: a snapshot written by a
// multi-metric engine restores the persisted EDwP trees byte-identically
// and rebuilds the requested static metrics from the loaded corpus, so
// every metric answers exactly as before the round trip.
func TestLoadSnapshotSpecsRebuildsMetrics(t *testing.T) {
	db := testDB(120, 43)
	topt := trajtree.Options{Seed: 1, LeafSize: 5}
	dir := t.TempDir()
	e, err := NewMultiEngineFromDB(db, multiSpecs(db, topt), Options{CacheSize: -1, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SaveSnapshot(dir); err != nil {
		t.Fatalf("save: %v", err)
	}
	loaded, err := LoadSnapshotSpecs(dir, func(corpus []*traj.Trajectory) ([]backend.Spec, error) {
		return multiSpecs(corpus, topt), nil
	}, Options{CacheSize: -1})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if got, want := loaded.Metrics(), []string{"edwp", "dtw", "edr"}; len(got) != len(want) || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("loaded metrics %v, want %v", got, want)
	}
	if loaded.Shards() != 3 {
		t.Fatalf("loaded %d shards, want 3", loaded.Shards())
	}
	ctx := context.Background()
	for it := 0; it < 6; it++ {
		q := db[it*17%len(db)].Clone()
		q.ID = 2_000_000 + it
		for _, metric := range []string{"edwp", "dtw", "edr"} {
			want, err := e.Search(ctx, q, Query{Kind: KindKNN, K: 5, Metric: metric})
			if err != nil {
				t.Fatal(err)
			}
			got, err := loaded.Search(ctx, q, Query{Kind: KindKNN, K: 5, Metric: metric})
			if err != nil {
				t.Fatal(err)
			}
			exactSameResults(t, fmt.Sprintf("%s it=%d", metric, it), got.Results, want.Results)
		}
	}
}
