package server

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"trajmatch/internal/backend"
	"trajmatch/internal/sketch"
	"trajmatch/internal/stream"
	"trajmatch/internal/traj"
	"trajmatch/internal/wal"
)

// This file wires the live-ingest subsystem (internal/stream) into the
// engine: the append path, the seal path (manual and background), the
// standing-query surface (Watch/Unwatch/Events), and the live-track
// stage of every search.
//
// The streaming lifecycle in one paragraph: POST /v1/append extends a
// live track in the per-shard mutable buffer — WAL-logged first, so an
// acked point survives a crash — and the track is immediately
// searchable: every search, after merging its sealed-shard answers,
// evaluates the live tracks with the same bounded kernel and merges by
// (distance, ID). Each append also advances the track's incremental
// fingerprint (sketch.Stream) and feeds the continuous-query matcher:
// watches whose pattern shares no grid cell with the track are skipped
// outright (the token gate; counter WatchGateSkips), colliding watches
// run the exact prefix kernel, and a crossing emits an Event with a
// monotonic sequence number on the long-poll/SSE feed. Sealing — an
// explicit POST /v1/seal or the background idle sealer — folds the
// finished track into every metric's sealed shard via the normal
// insert machinery and drops it from the buffer.

// Streaming errors the HTTP layer maps onto status codes.
var (
	// ErrSealedID rejects an append onto an ID that already exists as a
	// sealed (indexed) trajectory.
	ErrSealedID = errors.New("id already sealed")
	// ErrNoTrack rejects a seal of an ID with no live track.
	ErrNoTrack = errors.New("no live track with this id")
	// ErrUnknownWatch rejects an unwatch of an unregistered watch ID.
	ErrUnknownWatch = errors.New("no watch with this id")
)

// initStream builds the live-ingest state: the track buffer (sharded
// with the engine's own placement, bumping the engine generation on
// every mutation so cached answers stay coherent), the watch registry
// and the event log. Called from attachWAL so it precedes WAL replay —
// replayed append records land in the buffer.
func (e *Engine) initStream() {
	var params *sketch.Params
	if e.sketches != nil {
		p := e.sketchParams
		params = &p
	}
	e.buffer = stream.NewBuffer(len(e.sets[0].shards), shardIndex, e.gen.bump, params)
	e.watches = stream.NewRegistry()
	e.events = stream.NewEventLog(e.opt.EventBuffer)
}

// validateDelta checks an append delta the way traj.Validate checks a
// whole trajectory, minus the two-point minimum (a delta may be a
// single point; the two-point floor applies to searchability and
// sealing, not ingestion). lastT is the track's current final
// timestamp, NaN for a new track.
func validateDelta(pts []traj.Point, lastT float64) error {
	if len(pts) == 0 {
		return fmt.Errorf("%w: empty append", ErrInvalidQuery)
	}
	prev := lastT
	for i, p := range pts {
		if math.IsNaN(p.X) || math.IsInf(p.X, 0) || math.IsNaN(p.Y) || math.IsInf(p.Y, 0) ||
			math.IsNaN(p.T) || math.IsInf(p.T, 0) {
			return fmt.Errorf("%w: non-finite coordinate at point %d", ErrInvalidQuery, i)
		}
		if !math.IsNaN(prev) && p.T < prev {
			return fmt.Errorf("%w: timestamps not sorted at point %d", ErrInvalidQuery, i)
		}
		prev = p.T
	}
	return nil
}

// Append extends live track id by pts, creating the track (with the
// given label) on first use, and returns the offset the delta landed at
// — the track's point count before the append. With a WAL attached the
// delta is logged before it is applied and acknowledged only once
// durable per the sync policy. The appended points are visible to the
// very next search (read-your-writes) once the track holds two points,
// and the continuous-query matcher runs before Append returns, so a
// watcher's match event is published within the append round-trip.
func (e *Engine) Append(id, label int, pts []traj.Point) (int, error) {
	if e.buffer == nil {
		return 0, fmt.Errorf("server: engine built without streaming state")
	}
	// Streaming is single-node for now: a shard node serving a partition
	// rejects live ingest outright (the router has no append fan-out yet)
	// rather than accept tracks whose eventual seal could land on a
	// foreign shard.
	if e.place.partitioned() {
		return 0, fmt.Errorf("server: streaming ingest on a partitioned shard node: %w", backend.ErrNotSupported)
	}
	e.mutMu.Lock()
	if e.Lookup(id) != nil {
		e.mutMu.Unlock()
		return 0, fmt.Errorf("server: trajectory %d: %w", id, ErrSealedID)
	}
	lastT := math.NaN()
	if snap, ok := e.buffer.Get(id); ok {
		label = snap.Label // the first append's label wins
		lastT = snap.Points[len(snap.Points)-1].T
	}
	if err := validateDelta(pts, lastT); err != nil {
		e.mutMu.Unlock()
		return 0, err
	}
	offset := e.buffer.Len(id)
	var lsn uint64
	if e.wal != nil {
		var err error
		lsn, err = e.wal.Append(wal.AppendPoints(id, label, offset, pts))
		if err != nil {
			e.mutMu.Unlock()
			return 0, fmt.Errorf("server: %w", err)
		}
	}
	e.applyAppend(id, label, pts)
	e.mutMu.Unlock()
	if e.wal != nil {
		if err := e.wal.Commit(lsn); err != nil {
			// Applied in memory but not durable: not acknowledged.
			return 0, fmt.Errorf("server: %w", err)
		}
	}
	e.appends.Add(1)
	return offset, nil
}

// applyAppend is the in-memory half of an append, shared by the live
// path and WAL replay: extend the buffer track and run the
// continuous-query matcher under the shard lock (on replay the registry
// is empty, so the matcher is a no-op).
func (e *Engine) applyAppend(id, label int, pts []traj.Point) {
	e.buffer.Append(id, label, pts, time.Now(), e.watchEval)
}

// Seal folds live track id into every metric's sealed shard — the
// track must form a valid trajectory (two points minimum) — and drops
// it from the buffer. Requires mutable backends, like Insert.
func (e *Engine) Seal(id int) error {
	if e.buffer == nil {
		return fmt.Errorf("server: engine built without streaming state")
	}
	if err := e.requireMutable(); err != nil {
		return err
	}
	e.mutMu.Lock()
	snap, ok := e.buffer.Get(id)
	if !ok {
		e.mutMu.Unlock()
		return fmt.Errorf("server: trajectory %d: %w", id, ErrNoTrack)
	}
	tr := traj.New(snap.ID, snap.Points)
	tr.Label = snap.Label
	if err := tr.Validate(); err != nil {
		e.mutMu.Unlock()
		return fmt.Errorf("%w: seal %d: %v", ErrInvalidQuery, id, err)
	}
	var lsn uint64
	if e.wal != nil {
		var err error
		lsn, err = e.wal.Append(wal.Seal(id))
		if err != nil {
			e.mutMu.Unlock()
			return fmt.Errorf("server: %w", err)
		}
	}
	aerr := e.applySeal(id)
	e.mutMu.Unlock()
	if aerr != nil {
		return aerr
	}
	if e.wal != nil {
		if err := e.wal.Commit(lsn); err != nil {
			return fmt.Errorf("server: %w", err)
		}
	}
	e.seals.Add(1)
	return nil
}

// applySeal is the in-memory half of a seal, shared by the live path
// and WAL replay: remove the track from the buffer and insert its
// trajectory into every metric's owning shard and the sketch.
func (e *Engine) applySeal(id int) error {
	snap, ok := e.buffer.Remove(id)
	if !ok {
		return nil
	}
	tr := traj.New(snap.ID, snap.Points)
	tr.Label = snap.Label
	return e.applyInsert(tr)
}

// SealIdle seals every live track whose last append is at least d old
// and that forms a valid trajectory, returning how many sealed. Tracks
// still below two points are left for more appends (or deletion).
func (e *Engine) SealIdle(d time.Duration) int {
	if e.buffer == nil {
		return 0
	}
	ids := e.buffer.IdleBefore(time.Now().Add(-d))
	sort.Ints(ids)
	n := 0
	for _, id := range ids {
		if e.Seal(id) == nil {
			n++
		}
	}
	return n
}

// startSealer arms the background sealer when Options.SealAfter asks
// for one; stopSealer (Close) tears it down.
func (e *Engine) startSealer() {
	if e.opt.SealAfter <= 0 {
		return
	}
	interval := e.opt.SealInterval
	if interval <= 0 {
		interval = e.opt.SealAfter / 4
	}
	if interval <= 0 {
		interval = time.Second
	}
	e.sealStop = make(chan struct{})
	e.sealWG.Add(1)
	go func() {
		defer e.sealWG.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-e.sealStop:
				return
			case <-t.C:
				e.SealIdle(e.opt.SealAfter)
			}
		}
	}()
}

func (e *Engine) stopSealer() {
	if e.sealStop == nil {
		return
	}
	e.sealOnce.Do(func() { close(e.sealStop) })
	e.sealWG.Wait()
}

// Watch registers a standing query: pattern is matched against every
// growing track under the named metric (empty means the default), with
// exactly one of threshold (> 0: emit an event, once per track, when
// the track's prefix distance reaches it) or k (> 0: emit an event
// whenever a track enters or improves within the watch's k best). exact
// opts out of the sketch token gate — every append evaluates the exact
// kernel. Returns the watch ID events carry. Matching is evaluated on
// appends after registration; tracks already matching are caught up on
// their next append.
func (e *Engine) Watch(pattern *traj.Trajectory, metric string, threshold float64, k int, exact bool) (int, error) {
	if e.watches == nil {
		return 0, fmt.Errorf("server: engine built without streaming state")
	}
	if e.place.partitioned() {
		return 0, fmt.Errorf("server: standing queries on a partitioned shard node: %w", backend.ErrNotSupported)
	}
	if pattern == nil {
		return 0, fmt.Errorf("%w: nil watch pattern", ErrInvalidQuery)
	}
	if err := pattern.Validate(); err != nil {
		return 0, fmt.Errorf("%w: watch pattern: %v", ErrInvalidQuery, err)
	}
	if (threshold > 0) == (k > 0) {
		return 0, fmt.Errorf("%w: exactly one of threshold and k must be positive", ErrInvalidQuery)
	}
	if threshold > 0 && math.IsInf(threshold, 1) {
		return 0, fmt.Errorf("%w: threshold must be finite", ErrInvalidQuery)
	}
	ms, err := e.resolveMetric(metric)
	if err != nil {
		return 0, err
	}
	be := ms.shards[0].be
	if _, ok := be.(backend.SubDistancer); !ok {
		if _, ok := be.(backend.Distancer); !ok {
			return 0, fmt.Errorf("server: metric %q: watch %w", ms.name, backend.ErrNotSupported)
		}
	}
	var tokens []uint64
	if e.sketches != nil && !exact {
		tokens, err = sketch.PatternTokens(e.sketchParams, pattern)
		if err != nil {
			return 0, fmt.Errorf("server: %w", err)
		}
	}
	w := &stream.Watch{Pattern: pattern, Metric: ms.name, Threshold: threshold, K: k, Exact: exact}
	return e.watches.Add(w, tokens), nil
}

// Unwatch unregisters a watch, clearing its per-track gating state.
func (e *Engine) Unwatch(id int) bool {
	if e.watches == nil || !e.watches.Remove(id) {
		return false
	}
	e.buffer.ForgetWatch(id)
	return true
}

// Watches returns the number of registered standing queries.
func (e *Engine) Watches() int {
	if e.watches == nil {
		return 0
	}
	return e.watches.Count()
}

// Events returns up to max match events with sequence numbers > since,
// plus whether the consumer's cursor predates the retained window (it
// missed events it can never replay and should resync).
func (e *Engine) Events(since uint64, max int) ([]stream.Event, bool) {
	if e.events == nil {
		return nil, false
	}
	return e.events.After(since, max)
}

// EventsWait returns a channel closed at the next published event —
// the long-poll primitive behind GET /v1/events.
func (e *Engine) EventsWait() <-chan struct{} {
	return e.events.WaitCh()
}

// LastEventSeq returns the newest published event sequence number.
func (e *Engine) LastEventSeq() uint64 {
	if e.events == nil {
		return 0
	}
	return e.events.LastSeq()
}

// watchEval is the continuous-query matcher, run under the buffer
// shard's lock on every append (its position inside the lock is what
// orders one track's events by append). Three stages: catch up on
// watches registered since the track's previous append, open gates the
// delta's fresh tokens collide with, then run the exact kernel for the
// gated, unlatched watches only — the token gate is where the sketch
// prefilter pays for itself, counted in watchGateSkips.
func (e *Engine) watchEval(t *stream.Track, fresh []uint64) {
	reg := e.watches
	if max := reg.MaxID(); max > t.LastWatchID() {
		for _, w := range reg.After(t.LastWatchID()) {
			if w.Exact || t.Sketch() == nil {
				t.SetGated(w.ID)
				continue
			}
			for _, tok := range reg.Tokens(w.ID) {
				if t.Sketch().HasToken(tok) {
					t.SetGated(w.ID)
					break
				}
			}
		}
		t.SetLastWatchID(max)
	}
	for _, id := range reg.Collide(fresh) {
		t.SetGated(id)
	}
	gated := t.GatedIDs()
	if skipped := reg.Count() - len(gated); skipped > 0 {
		e.watchGateSkips.Add(uint64(skipped))
	}
	if len(gated) == 0 || t.Len() < 2 {
		return
	}
	trackTr := traj.New(t.ID(), t.Points())
	trackTr.Label = t.Label()
	for _, wid := range gated {
		w := reg.Get(wid)
		if w == nil {
			t.ForgetWatch(wid)
			continue
		}
		if w.Threshold > 0 && t.Matched(wid) {
			continue // threshold watches latch: one event per (watch, track)
		}
		ms := e.byName[w.Metric]
		if ms == nil {
			continue
		}
		limit := w.Threshold
		if w.K > 0 {
			limit = w.KthBound()
		}
		// Prefer the sub-trajectory kernel (EDwPsub): the pattern should
		// match anywhere inside the growing track, which also makes the
		// distance non-increasing as the track grows. Metrics without a
		// sub-trajectory form match whole-track.
		var d float64
		var abandoned bool
		be := ms.shards[0].be
		e.watchEvals.Add(1)
		if sd, ok := be.(backend.SubDistancer); ok {
			d, abandoned = sd.SubDistanceBetween(w.Pattern, trackTr, limit, nil)
		} else if dd, ok := be.(backend.Distancer); ok {
			d, abandoned = dd.DistanceBetween(w.Pattern, trackTr, limit, nil)
		} else {
			continue
		}
		if abandoned || d > limit {
			continue
		}
		if w.K > 0 {
			if changed, rank := w.Offer(t.ID(), d); changed {
				e.events.Publish(stream.Event{
					Watch: wid, Track: t.ID(), Metric: w.Metric,
					Dist: d, PrefixLen: t.Len(), Rank: rank,
				})
			}
			continue
		}
		t.SetMatched(wid)
		e.events.Publish(stream.Event{
			Watch: wid, Track: t.ID(), Metric: w.Metric,
			Dist: d, PrefixLen: t.Len(), Rank: -1,
		})
	}
}

// liveAugment is the live-track stage of a search: after the sealed
// shards answered, evaluate every live track with at least two points
// under the same bounded kernel (capability backend.Distancer /
// SubDistancer) and re-merge by (distance, ID). The sealed answer's
// k-th best seeds the evaluation limit, so live tracks that cannot
// enter the answer abandon early. Tracks are visited in ID order —
// with the strict-abandon kernel contract, the merged answer is the
// same deterministic function of the combined corpus as a sealed-only
// answer.
func (e *Engine) liveAugment(ms *metricSet, q *traj.Trajectory, req Query, res []backend.Result, ctl *backend.Ctl, st *backend.Stats) ([]backend.Result, bool, error) {
	if e.buffer == nil || e.buffer.Count() == 0 {
		return res, false, nil
	}
	snaps := e.buffer.Snapshot()
	sort.Slice(snaps, func(a, b int) bool { return snaps[a].ID < snaps[b].ID })
	be := ms.shards[0].be
	var eval func(q, t *traj.Trajectory, limit float64, ctl *backend.Ctl) (float64, bool)
	if req.Kind == KindSubKNN {
		sd, ok := be.(backend.SubDistancer)
		if !ok {
			return res, false, fmt.Errorf("metric %q: live sub-trajectory search %w", ms.name, backend.ErrNotSupported)
		}
		eval = sd.SubDistanceBetween
	} else {
		dd, ok := be.(backend.Distancer)
		if !ok {
			return res, false, fmt.Errorf("metric %q: live search %w", ms.name, backend.ErrNotSupported)
		}
		eval = dd.DistanceBetween
	}
	limit := req.Radius
	if req.Kind != KindRange {
		limit = req.seedLimit()
		if req.K > 0 && len(res) >= req.K {
			if d := res[len(res)-1].Dist; d < limit {
				limit = d
			}
		}
	}
	added := false
	truncated := false
	for _, sn := range snaps {
		if len(sn.Points) < 2 {
			continue // not yet a valid trajectory; searchable from two points
		}
		if ctl.Cancelled() {
			return nil, false, ctl.Err()
		}
		if !ctl.Take() {
			truncated = true
			break
		}
		tr := traj.New(sn.ID, sn.Points)
		tr.Label = sn.Label
		st.DistanceCalls++
		d, abandoned := eval(q, tr, limit, ctl)
		if abandoned {
			if ctl.Cancelled() {
				return nil, false, ctl.Err()
			}
			st.EarlyAbandons++
			continue
		}
		if d > limit {
			continue
		}
		res = append(res, backend.Result{Traj: tr, Dist: d})
		added = true
	}
	if err := ctl.Err(); err != nil {
		return nil, false, err
	}
	if added {
		k := req.K
		if req.Kind == KindRange {
			k = -1
		}
		res = mergeResults([][]backend.Result{res}, k)
	}
	return res, truncated, nil
}

// relogLiveTracks appends each live track's full state (an offset-0
// append record) to the WAL. SaveSnapshot calls it under mutMu right
// after taking the barrier: the records land in the post-barrier
// segment, so truncating the pre-barrier segments — which hold the
// tracks' original append records, while the shard streams hold only
// sealed state — loses nothing.
func (e *Engine) relogLiveTracks() error {
	if e.buffer == nil {
		return nil
	}
	snaps := e.buffer.Snapshot()
	sort.Slice(snaps, func(a, b int) bool { return snaps[a].ID < snaps[b].ID })
	for _, sn := range snaps {
		if _, err := e.wal.Append(wal.AppendPoints(sn.ID, sn.Label, 0, sn.Points)); err != nil {
			return err
		}
	}
	return nil
}

// LiveTracks returns the number of live (unsealed) tracks.
func (e *Engine) LiveTracks() int {
	if e.buffer == nil {
		return 0
	}
	return e.buffer.Count()
}

// LiveTrack returns a snapshot of live track id.
func (e *Engine) LiveTrack(id int) (stream.Snap, bool) {
	if e.buffer == nil {
		return stream.Snap{}, false
	}
	return e.buffer.Get(id)
}

// StreamStats is the live-ingest slice of GET /stats.
type StreamStats struct {
	// LiveTracks and LivePoints size the mutable buffer.
	LiveTracks int `json:"live_tracks"`
	LivePoints int `json:"live_points"`
	// Appends and Seals count acknowledged operations.
	Appends uint64 `json:"appends"`
	Seals   uint64 `json:"seals"`
	// Watches is the registered standing-query count; EventSeq the
	// newest published event sequence number.
	Watches  int    `json:"watches"`
	EventSeq uint64 `json:"event_seq"`
	// WatchEvals counts exact kernel evaluations the matcher ran;
	// WatchGateSkips the (append, watch) pairs the token gate skipped
	// without any exact work — the streaming prefilter saving.
	WatchEvals     uint64 `json:"watch_evals"`
	WatchGateSkips uint64 `json:"watch_gate_skips"`
}

func (e *Engine) streamStats() *StreamStats {
	if e.buffer == nil {
		return nil
	}
	return &StreamStats{
		LiveTracks:     e.buffer.Count(),
		LivePoints:     e.buffer.Points(),
		Appends:        e.appends.Load(),
		Seals:          e.seals.Load(),
		Watches:        e.watches.Count(),
		EventSeq:       e.events.LastSeq(),
		WatchEvals:     e.watchEvals.Load(),
		WatchGateSkips: e.watchGateSkips.Load(),
	}
}
