// Crash-recovery coverage for the streaming ingest path: the failpoint
// sweep of durability_test.go, re-run over a workload of append bursts,
// seals, live-track deletes and mid-stream snapshots. The recovered
// engine must hold, for every live track, exactly the acknowledged
// point prefix (or that prefix plus the one delta in flight) —
// byte-identically — and answer queries like a reference engine built
// fresh from the matched state.
package server

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"testing"

	"trajmatch/internal/faultfs"
	"trajmatch/internal/traj"
	"trajmatch/internal/trajtree"
)

// streamStep is one operation of the streaming sweep workload.
type streamStep struct {
	op  string // "append", "seal", "delete", "insert", "snapshot"
	id  int
	pts []traj.Point
	tr  *traj.Trajectory
}

// streamState is the full expected engine content at one point of the
// workload: the sealed index plus every live track's exact point prefix.
type streamState struct {
	sealed map[int]*traj.Trajectory
	live   map[int][]traj.Point
}

func (s streamState) clone() streamState {
	n := streamState{
		sealed: make(map[int]*traj.Trajectory, len(s.sealed)),
		live:   make(map[int][]traj.Point, len(s.live)),
	}
	for id, tr := range s.sealed {
		n.sealed[id] = tr
	}
	for id, pts := range s.live {
		n.live[id] = pts
	}
	return n
}

// apply advances the state model by one mutation.
func (s streamState) apply(st streamStep) streamState {
	n := s.clone()
	switch st.op {
	case "append":
		n.live[st.id] = append(append([]traj.Point(nil), n.live[st.id]...), st.pts...)
	case "seal":
		tr := traj.New(st.id, n.live[st.id])
		delete(n.live, st.id)
		n.sealed[st.id] = tr
	case "delete":
		delete(n.sealed, st.id)
		delete(n.live, st.id)
	case "insert":
		n.sealed[st.tr.ID] = st.tr
	}
	return n
}

// streamMatches reports whether e holds exactly state: the sealed index
// by ID and every live track with a byte-identical point prefix.
func streamMatches(e *Engine, s streamState) bool {
	if !engineMatches(e, s.sealed) {
		return false
	}
	if e.LiveTracks() != len(s.live) {
		return false
	}
	for id, pts := range s.live {
		sn, ok := e.LiveTrack(id)
		if !ok || len(sn.Points) != len(pts) {
			return false
		}
		for i := range pts {
			if sn.Points[i] != pts[i] {
				return false
			}
		}
	}
	return true
}

// TestCrashRecoveryStreamSweep extends the crash sweep to the streaming
// subsystem: crashes land inside append bursts, mid-seal, mid-snapshot
// (with live carry-over records and segment truncation in flight) and
// during the live-track delete — at EVERY fault-eligible file operation,
// for both crash models. A live track that never seals (700) rides
// through the whole workload, two snapshots and their truncations, so
// the carry-over + gap-repair replay path is exercised at every
// failpoint past the first snapshot.
func TestCrashRecoveryStreamSweep(t *testing.T) {
	topt := trajtree.Options{Seed: 1, LeafSize: 4}
	db0 := testDB(24, 11)
	pool := testDB(80, 99)
	mkTraj := func(i, id int) *traj.Trajectory {
		tr := pool[i].Clone()
		tr.ID = id
		return tr
	}
	trBoot, trA, trB, trC := pool[29], pool[30], pool[31], pool[32]

	steps := []streamStep{
		{op: "append", id: 701, pts: trA.Points[0:2]},
		{op: "append", id: 701, pts: trA.Points[2:3]}, // crash inside a burst
		{op: "append", id: 702, pts: trB.Points[0:3]},
		{op: "insert", tr: mkTraj(1, 1001)},
		{op: "append", id: 701, pts: trA.Points[3:5]},
		{op: "snapshot"}, // live carry-over + truncation
		{op: "append", id: 702, pts: trB.Points[3:5]},
		{op: "seal", id: 701}, // crash mid-seal
		{op: "delete", id: 702},
		{op: "append", id: 703, pts: trC.Points[0:2]},
		{op: "snapshot"},
		{op: "append", id: 703, pts: trC.Points[2:4]},
		{op: "delete", id: 3},
		{op: "seal", id: 703}, // seal after the second truncation
	}
	mutations := 0
	for _, st := range steps {
		if st.op != "snapshot" {
			mutations++
		}
	}

	// Like the sealed sweep, two mutations land in the WAL after the
	// seed snapshot so every boot replays — here one of them is an
	// append, so live-track replay-on-boot runs at every failpoint.
	init := streamState{sealed: map[int]*traj.Trajectory{}, live: map[int][]traj.Point{}}
	for _, tr := range db0 {
		init.sealed[tr.ID] = tr
	}
	delete(init.sealed, 0)
	init.live[700] = append([]traj.Point(nil), trBoot.Points[0:2]...)
	states := []streamState{init}
	for _, st := range steps {
		if st.op == "snapshot" {
			continue
		}
		states = append(states, states[len(states)-1].apply(st))
	}

	queries := []*traj.Trajectory{db0[2].Clone(), trA.Clone(), trBoot.Clone()}
	for i, q := range queries {
		q.ID = 9_300_000 + i
	}

	shardCounts := []int{1, 2}
	if testing.Short() {
		shardCounts = []int{2}
	}
	for _, shards := range shardCounts {
		for _, mode := range []faultfs.CrashMode{faultfs.CrashKill, faultfs.CrashPower} {
			shards, mode := shards, mode
			modeName := "kill"
			if mode == faultfs.CrashPower {
				modeName = "power"
			}
			t.Run(fmt.Sprintf("shards=%d/mode=%s", shards, modeName), func(t *testing.T) {
				t.Parallel()
				seedSnap, seedWAL := filepath.Join(t.TempDir(), "snap"), filepath.Join(t.TempDir(), "wal")
				e0, err := NewEngineFromDB(db0, topt, Options{
					CacheSize: -1, Workers: 1, Shards: shards,
					WALDir: seedWAL, Prefilter: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := e0.SaveSnapshot(seedSnap); err != nil {
					t.Fatal(err)
				}
				if !e0.Delete(0) {
					t.Fatal("seed delete missed")
				}
				if _, err := e0.Append(700, 0, trBoot.Points[0:2]); err != nil {
					t.Fatal(err)
				}
				if err := e0.Close(); err != nil {
					t.Fatal(err)
				}

				runWorkload := func(inj *faultfs.Injector, snapDir, walDir string) (acked int, err error) {
					e, err := LoadSnapshotSpecs(snapDir, nil, Options{
						CacheSize: -1, Workers: 1,
						WALDir: walDir, FS: inj, Prefilter: true,
					})
					if err != nil {
						if inj.Crashed() {
							return 0, nil
						}
						return 0, fmt.Errorf("boot failed without a crash: %w", err)
					}
					defer e.Close()
					for _, st := range steps {
						switch st.op {
						case "append":
							_, aerr := e.Append(st.id, 0, st.pts)
							if aerr == nil {
								acked++
							} else if !inj.Crashed() {
								return acked, fmt.Errorf("append %d failed without a crash: %w", st.id, aerr)
							}
						case "seal":
							serr := e.Seal(st.id)
							if serr == nil {
								acked++
							} else if !inj.Crashed() {
								return acked, fmt.Errorf("seal %d failed without a crash: %w", st.id, serr)
							}
						case "insert":
							ierr := e.Insert(st.tr.Clone())
							if ierr == nil {
								acked++
							} else if !inj.Crashed() {
								return acked, fmt.Errorf("insert %d failed without a crash: %w", st.tr.ID, ierr)
							}
						case "delete":
							if e.Delete(st.id) {
								acked++
							} else if !inj.Crashed() {
								return acked, fmt.Errorf("delete %d missed without a crash", st.id)
							}
						case "snapshot":
							if serr := e.SaveSnapshot(snapDir); serr != nil && !inj.Crashed() {
								return acked, fmt.Errorf("snapshot failed without a crash: %w", serr)
							}
						}
					}
					return acked, nil
				}

				probeSnap, probeWAL := filepath.Join(t.TempDir(), "snap"), filepath.Join(t.TempDir(), "wal")
				copyDirT(t, seedSnap, probeSnap)
				copyDirT(t, seedWAL, probeWAL)
				probe := faultfs.NewInjector(faultfs.OS{}, mode, nil, 0)
				acked, err := runWorkload(probe, probeSnap, probeWAL)
				if err != nil {
					t.Fatal(err)
				}
				if acked != mutations {
					t.Fatalf("probe acked %d of %d mutations", acked, mutations)
				}
				total := probe.Ops()
				if total == 0 {
					t.Fatal("workload issued no fault-eligible operations")
				}

				// Reference engines per matched state: the sealed corpus
				// plus every live prefix re-appended, shared across
				// failpoints.
				refs := map[int]*Engine{}
				refFor := func(idx int) *Engine {
					if e, ok := refs[idx]; ok {
						return e
					}
					e, err := NewEngineFromDB(stateDB(states[idx].sealed), topt,
						Options{CacheSize: -1, Workers: 1, Shards: shards})
					if err != nil {
						t.Fatal(err)
					}
					ids := make([]int, 0, len(states[idx].live))
					for id := range states[idx].live {
						ids = append(ids, id)
					}
					sort.Ints(ids)
					for _, id := range ids {
						if _, err := e.Append(id, 0, states[idx].live[id]); err != nil {
							t.Fatal(err)
						}
					}
					refs[idx] = e
					return e
				}

				for failAt := 1; failAt <= total; failAt++ {
					iter := t.TempDir()
					iterSnap, iterWAL := filepath.Join(iter, "snap"), filepath.Join(iter, "wal")
					copyDirT(t, seedSnap, iterSnap)
					copyDirT(t, seedWAL, iterWAL)
					inj := faultfs.NewInjector(faultfs.OS{}, mode, nil, failAt)
					acked, err := runWorkload(inj, iterSnap, iterWAL)
					if err != nil {
						t.Fatalf("failpoint %d: %v", failAt, err)
					}
					if !inj.Crashed() {
						t.Fatalf("failpoint %d never fired (%d ops)", failAt, inj.Ops())
					}
					if err := inj.Wreckage(); err != nil {
						t.Fatalf("failpoint %d: wreckage: %v", failAt, err)
					}

					rec, err := LoadSnapshotSpecs(iterSnap, nil, Options{
						CacheSize: -1, Workers: 1, WALDir: iterWAL, Prefilter: true, Mmap: true,
					})
					if err != nil {
						t.Fatalf("failpoint %d (%d acked): recovery failed: %v", failAt, acked, err)
					}

					// Acknowledged state, or that state plus exactly the
					// mutation in flight — every live track an exact prefix,
					// never partial, never reordered.
					matched := -1
					for _, s := range []int{acked, acked + 1} {
						if s < len(states) && streamMatches(rec, states[s]) {
							matched = s
							break
						}
					}
					if matched < 0 {
						t.Fatalf("failpoint %d: recovered %d sealed / %d live, matches neither state %d nor %d",
							failAt, rec.Size(), rec.LiveTracks(), acked, acked+1)
					}

					ref := refFor(matched)
					for qi, q := range queries {
						got, _ := rec.KNN(q, 5)
						want, _ := ref.KNN(q, 5)
						sameResults(t, fmt.Sprintf("failpoint %d KNN q%d", failAt, qi), got, want)
						gotR, _ := rec.RangeSearch(q, 150)
						wantR, _ := ref.RangeSearch(q, 150)
						sameResults(t, fmt.Sprintf("failpoint %d range q%d", failAt, qi), gotR, wantR)
					}
					if _, err := rec.Search(context.Background(), queries[0],
						Query{Kind: KindKNN, K: 3, Prefilter: true}); err != nil {
						t.Fatalf("failpoint %d: prefiltered query after recovery: %v", failAt, err)
					}
					if err := rec.Close(); err != nil {
						t.Fatalf("failpoint %d: close after recovery: %v", failAt, err)
					}
				}
			})
		}
	}
}
