package server

import (
	"runtime"
	"runtime/debug"
)

// Role names a trajserve process's place in a deployment, reported by
// GET /v1/version so an operator probing a port can tell which of the
// cluster's processes answered.
const (
	RoleStandalone = "standalone"
	RoleShard      = "shard"
	RoleRouter     = "router"
)

// VersionInfo is the payload of GET /v1/version and trajserve -version:
// build identity (module, version, Go toolchain) plus the process's
// role and shard map. Single-process deployments never needed this;
// with a router and N shard nodes on N ports, "which build and which
// shards is this process serving" is the first debugging question.
type VersionInfo struct {
	Module    string `json:"module"`
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	Role      string `json:"role"`
	// ClusterShards is the global hash modulus; OwnedShards the global
	// shard indices this process serves (all of them for a standalone
	// engine, none for a stateless router).
	ClusterShards int   `json:"cluster_shards,omitempty"`
	OwnedShards   []int `json:"owned_shards,omitempty"`
	// Nodes lists a router's configured shard-node endpoints.
	Nodes []string `json:"nodes,omitempty"`
}

// BuildVersion reads the binary's embedded build info: the main module
// path and its version ("devel" when built from a working tree, as `go
// build` in a checkout stamps no version).
func BuildVersion() (module, version string) {
	module, version = "trajmatch", "devel"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Path != "" {
			module = bi.Main.Path
		}
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			version = bi.Main.Version
		}
	}
	return module, version
}

// NewVersionInfo assembles the standard version payload for a process
// serving the given role over e (nil for a stateless router, which owns
// no local shards).
func NewVersionInfo(role string, e *Engine) VersionInfo {
	mod, ver := BuildVersion()
	v := VersionInfo{Module: mod, Version: ver, GoVersion: runtime.Version(), Role: role}
	if e != nil {
		v.ClusterShards = e.ClusterShards()
		v.OwnedShards = e.OwnedShards()
	}
	return v
}
