// Deprecated-API regression coverage:
//
//lint:file-ignore SA1019 pins the deprecated engine wrappers on purpose.
package server

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"trajmatch/internal/traj"
	"trajmatch/internal/trajtree"
)

// testDB builds n short trajectories scattered over a grid, deterministic
// in seed.
func testDB(n int, seed int64) []*traj.Trajectory {
	rng := rand.New(rand.NewSource(seed))
	db := make([]*traj.Trajectory, n)
	for i := range db {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		pts := make([]traj.Point, 5)
		for j := range pts {
			x += rng.Float64()*20 - 10
			y += rng.Float64()*20 - 10
			pts[j] = traj.P(x, y, float64(j)*10)
		}
		db[i] = traj.New(i, pts)
	}
	return db
}

func newTestEngine(t testing.TB, n int, opt Options) *Engine {
	t.Helper()
	e, err := NewEngineFromDB(testDB(n, 7), trajtree.Options{Seed: 1, LeafSize: 5}, opt)
	if err != nil {
		t.Fatalf("NewEngineFromDB: %v", err)
	}
	return e
}

func TestEngineKNNMatchesTree(t *testing.T) {
	db := testDB(80, 7)
	tree, err := trajtree.New(db, trajtree.Options{Seed: 1, LeafSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(tree, Options{CacheSize: -1})
	for qi := 0; qi < 5; qi++ {
		q := db[qi*13].Clone()
		q.ID = 1_000_000 + qi
		got, _ := e.KNN(q, 5)
		want := tree.KNNBrute(q, 5)
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d results, want %d", qi, len(got), len(want))
		}
		for i := range got {
			if got[i].Dist != want[i].Dist {
				t.Errorf("query %d rank %d: dist %v != brute %v", qi, i, got[i].Dist, want[i].Dist)
			}
		}
	}
}

func TestKNNBatchMatchesSequential(t *testing.T) {
	e := newTestEngine(t, 80, Options{CacheSize: -1, Workers: 4})
	db := testDB(80, 7)
	qs := make([]*traj.Trajectory, 20)
	for i := range qs {
		qs[i] = db[(i*7)%len(db)].Clone()
		qs[i].ID = 1_000_000 + i
	}
	batch := e.KNNBatch(qs, 3)
	if len(batch) != len(qs) {
		t.Fatalf("batch returned %d answer lists, want %d", len(batch), len(qs))
	}
	for i, q := range qs {
		seq, _ := e.KNN(q, 3)
		if len(batch[i]) != len(seq) {
			t.Fatalf("query %d: batch %d results, sequential %d", i, len(batch[i]), len(seq))
		}
		for j := range seq {
			if batch[i][j].Traj.ID != seq[j].Traj.ID || batch[i][j].Dist != seq[j].Dist {
				t.Errorf("query %d rank %d: batch (%d, %v) != sequential (%d, %v)",
					i, j, batch[i][j].Traj.ID, batch[i][j].Dist, seq[j].Traj.ID, seq[j].Dist)
			}
		}
	}
}

func TestEngineCache(t *testing.T) {
	e := newTestEngine(t, 60, Options{CacheSize: 16})
	q := testDB(60, 7)[3].Clone()
	q.ID = 1_000_000

	first, _ := e.KNN(q, 4)
	if hits := e.Stats().CacheHits; hits != 0 {
		t.Fatalf("cold query reported %d cache hits", hits)
	}
	second, _ := e.KNN(q.Clone(), 4) // fresh object, same geometry
	if hits := e.Stats().CacheHits; hits != 1 {
		t.Fatalf("repeat query reported %d cache hits, want 1", hits)
	}
	for i := range first {
		if first[i].Traj.ID != second[i].Traj.ID {
			t.Fatalf("cached answer differs at rank %d", i)
		}
	}
	// Different k must miss.
	e.KNN(q, 5)
	if hits := e.Stats().CacheHits; hits != 1 {
		t.Fatalf("k=5 after k=4 reported %d cache hits, want 1", hits)
	}

	// An insert bumps the tree generation and invalidates cached answers.
	nt := testDB(61, 99)[60]
	nt.ID = 5000
	if err := e.Insert(nt); err != nil {
		t.Fatal(err)
	}
	e.KNN(q, 4)
	if hits := e.Stats().CacheHits; hits != 1 {
		t.Fatalf("post-insert query reported %d cache hits, want 1 (stale entry served)", hits)
	}
}

func TestEngineInsertDeleteVisibleToQueries(t *testing.T) {
	e := newTestEngine(t, 40, Options{})
	tr := traj.New(4000, []traj.Point{traj.P(5000, 5000, 0), traj.P(5010, 5000, 10)})
	if err := e.Insert(tr); err != nil {
		t.Fatal(err)
	}
	if err := e.Insert(tr); err == nil {
		t.Fatal("duplicate insert succeeded")
	}
	q := traj.New(9999, []traj.Point{traj.P(5001, 5000, 0), traj.P(5009, 5000, 10)})
	res, _ := e.KNN(q, 1)
	if len(res) != 1 || res[0].Traj.ID != 4000 {
		t.Fatalf("inserted trajectory not found, got %v", res)
	}
	if !e.Delete(4000) {
		t.Fatal("delete reported not present")
	}
	if e.Delete(4000) {
		t.Fatal("second delete reported present")
	}
	res, _ = e.KNN(q, 1)
	if len(res) == 1 && res[0].Traj.ID == 4000 {
		t.Fatal("deleted trajectory still returned")
	}
}

// TestEngineConcurrentKNNDuringInsert is the acceptance test for the
// engine's concurrency claim: 8 goroutines issue KNN queries in a loop
// while the main goroutine inserts and deletes trajectories. Run with
// -race; the RWMutex discipline is what keeps it quiet.
func TestEngineConcurrentKNNDuringInsert(t *testing.T) {
	e := newTestEngine(t, 60, Options{CacheSize: 64})
	db := testDB(60, 7)

	const readers = 8
	const queriesPerReader = 30
	var wg sync.WaitGroup
	wg.Add(readers)
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		go func(r int) {
			defer wg.Done()
			for i := 0; i < queriesPerReader; i++ {
				q := db[(r*queriesPerReader+i)%len(db)].Clone()
				q.ID = 1_000_000 + r*queriesPerReader + i
				res, _ := e.KNN(q, 3)
				if len(res) == 0 {
					errs <- fmt.Errorf("reader %d query %d: empty answer", r, i)
					return
				}
				if i%5 == 0 {
					e.KNNBatch([]*traj.Trajectory{q}, 2)
				}
				if i%7 == 0 {
					e.RangeSearch(q, 50)
				}
			}
		}(r)
	}

	// Writer: interleave inserts and deletes with the reader storm.
	extra := testDB(100, 31)[60:]
	for i, tr := range extra {
		tr.ID = 10_000 + i
		if err := e.Insert(tr); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if i%3 == 0 {
			e.Delete(10_000 + i)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := e.Stats()
	if st.Inserts != uint64(len(extra)) {
		t.Errorf("stats inserts %d, want %d", st.Inserts, len(extra))
	}
	wantSize := 60 + len(extra) - (len(extra)+2)/3
	if st.Size != wantSize {
		t.Errorf("final size %d, want %d", st.Size, wantSize)
	}
}

func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache(2)
	k1 := cacheKey{metric: "edwp", hash: 1, k: 1}
	k2 := cacheKey{metric: "edwp", hash: 2, k: 1}
	k3 := cacheKey{metric: "edwp", hash: 3, k: 1}
	c.put(k1, 0, nil)
	c.put(k2, 0, nil)
	c.get(k1, 0) // touch k1 so k2 becomes LRU
	c.put(k3, 0, nil)
	if _, ok := c.get(k2, 0); ok {
		t.Error("LRU entry k2 survived eviction")
	}
	if _, ok := c.get(k1, 0); !ok {
		t.Error("recently used k1 was evicted")
	}
	if c.len() != 2 {
		t.Errorf("cache len %d, want 2", c.len())
	}
	// Stale generation is a miss and removes the entry.
	if _, ok := c.get(k1, 1); ok {
		t.Error("stale-generation entry served")
	}
	if c.len() != 1 {
		t.Errorf("cache len %d after stale eviction, want 1", c.len())
	}
}
