// Deprecated-API regression coverage:
//
//lint:file-ignore SA1019 pins the deprecated engine wrappers across snapshots on purpose.
package server

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"trajmatch/internal/faultfs"
	"trajmatch/internal/trajtree"
)

// TestSnapshotRoundTrip saves a sharded engine and reloads it, asserting
// the reloaded engine answers KNN and RangeSearch byte-identically, the
// manifest records what it should, and the shard count is adopted from
// the manifest regardless of the loader's options.
func TestSnapshotRoundTrip(t *testing.T) {
	db := testDB(120, 43)
	topt := trajtree.Options{Seed: 1, LeafSize: 5}
	for _, shards := range []int{1, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			dir := t.TempDir()
			e, err := NewEngineFromDB(db, topt, Options{CacheSize: -1, Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			if SnapshotExists(dir) {
				t.Fatal("empty dir reported as snapshot")
			}
			if err := e.SaveSnapshot(dir); err != nil {
				t.Fatalf("save: %v", err)
			}
			if !SnapshotExists(dir) {
				t.Fatal("snapshot not detected after save")
			}

			man, err := readManifest(faultfs.OS{}, dir)
			if err != nil {
				t.Fatal(err)
			}
			if man.Version != snapshotVersion || man.Shards != shards {
				t.Fatalf("manifest %+v: want version %d, shards %d", man, snapshotVersion, shards)
			}
			total := 0
			for _, s := range man.Sizes {
				total += s
			}
			if total != len(db) {
				t.Fatalf("manifest sizes sum %d, want %d", total, len(db))
			}
			if man.TreeOptions.LeafSize != 5 {
				t.Fatalf("manifest tree options %+v did not record LeafSize 5", man.TreeOptions)
			}

			// Deliberately wrong shard count in the loader options: the
			// manifest must win, because placement depends on it.
			loaded, err := LoadSnapshot(dir, Options{CacheSize: -1, Shards: shards + 3})
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			if loaded.Shards() != shards {
				t.Fatalf("loaded %d shards, want manifest's %d", loaded.Shards(), shards)
			}
			if loaded.Size() != e.Size() {
				t.Fatalf("loaded size %d, want %d", loaded.Size(), e.Size())
			}
			for it := 0; it < 10; it++ {
				q := db[(it*11)%len(db)].Clone()
				q.ID = 5_000_000 + it
				got, _ := loaded.KNN(q, 6)
				want, _ := e.KNN(q, 6)
				sameResults(t, fmt.Sprintf("KNN it=%d", it), got, want)
				gotR, _ := loaded.RangeSearch(q, 30)
				wantR, _ := e.RangeSearch(q, 30)
				sameResults(t, fmt.Sprintf("Range it=%d", it), gotR, wantR)
			}

			// Updates keep working after a reload (hash placement must
			// agree with what the snapshot was written under).
			nt := testDB(121, 47)[120]
			nt.ID = 70_000
			if err := loaded.Insert(nt); err != nil {
				t.Fatalf("post-load insert: %v", err)
			}
			if loaded.Lookup(70_000) == nil {
				t.Fatal("post-load insert not found by lookup")
			}
			if !loaded.Delete(70_000) {
				t.Fatal("post-load delete missed")
			}
		})
	}
}

func TestSnapshotRejectsBadManifest(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadSnapshot(dir, Options{}); err == nil {
		t.Fatal("load from empty dir succeeded")
	}
	bad := snapshotManifest{Version: snapshotVersion + 1, Shards: 1}
	raw, _ := json.Marshal(bad)
	if err := os.WriteFile(filepath.Join(dir, manifestName), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(dir, Options{}); err == nil {
		t.Fatal("future-versioned snapshot loaded")
	}
}

// TestHTTPSnapshotEndpoint exercises POST /snapshot end to end: 412
// without a configured directory, then a real write that a fresh engine
// loads and answers from.
func TestHTTPSnapshotEndpoint(t *testing.T) {
	unarmed := newTestEngine(t, 30, Options{})
	srv := httptest.NewServer(NewHandler(unarmed))
	if resp := postJSON(t, srv, "/snapshot", nil, nil); resp.StatusCode != 412 {
		t.Fatalf("unarmed /snapshot status %d, want 412", resp.StatusCode)
	}
	srv.Close()

	dir := t.TempDir()
	e := newTestEngine(t, 40, Options{Shards: 2, SnapshotDir: dir})
	srv = httptest.NewServer(NewHandler(e))
	defer srv.Close()
	var resp SnapshotResponse
	if r := postJSON(t, srv, "/snapshot", nil, &resp); r.StatusCode != 200 {
		t.Fatalf("POST /snapshot status %d", r.StatusCode)
	}
	if resp.Dir != dir || resp.Shards != 2 || resp.Size != 40 {
		t.Fatalf("snapshot response %+v", resp)
	}
	loaded, err := LoadSnapshot(dir, Options{CacheSize: -1})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	q := testDB(40, 7)[3].Clone()
	q.ID = 6_000_000
	got, _ := loaded.KNN(q, 3)
	want, _ := e.KNN(q, 3)
	sameResults(t, "endpoint snapshot KNN", got, want)
}
