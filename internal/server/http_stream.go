package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"trajmatch/internal/stream"
	"trajmatch/internal/traj"
)

// The streaming HTTP surface:
//
//	POST /v1/append   {"id": 7, "label": 1, "points": [[x,y,t], ...]}
//	POST /v1/seal     {"id": 7}
//	POST /v1/watch    {"pattern": {...}, "metric": "edwp",
//	                   "threshold": 250 | "k": 5, "exact": false}
//	POST /v1/unwatch  {"watch": 3}
//	GET  /v1/events   ?since=N&max=M&wait_ms=T   (long-poll JSON)
//	GET  /v1/events   ?sse=1&since=N             (server-sent events)
//
// Append acks carry the offset the delta landed at; watch registrations
// return the watch ID match events carry; the events feed delivers
// at-least-once with monotonic seq numbers — consumers resume by
// passing the last seq they processed as since, and a true "gap" tells
// a lagging consumer it missed events beyond the retained window.

// AppendRequest is the body of POST /v1/append: one or more points
// appended onto live track ID (created on first use with Label).
// Points are [x, y, t] triples like everywhere else on the wire.
type AppendRequest struct {
	ID     int          `json:"id"`
	Label  int          `json:"label,omitempty"`
	Points [][3]float64 `json:"points"`
}

// AppendResponse acknowledges a durable append: the offset the delta
// landed at and the track's resulting point count.
type AppendResponse struct {
	ID     int     `json:"id"`
	Offset int     `json:"offset"`
	Length int     `json:"length"`
	TookMS float64 `json:"took_ms"`
}

// SealRequest is the body of POST /v1/seal.
type SealRequest struct {
	ID int `json:"id"`
}

// SealResponse reports the sealed trajectory and the index size after
// the fold-in.
type SealResponse struct {
	ID     int     `json:"id"`
	Size   int     `json:"size"`
	TookMS float64 `json:"took_ms"`
}

// WatchRequest is the body of POST /v1/watch: a standing query's
// pattern, metric, and exactly one of threshold (emit once per track
// when its prefix distance reaches it) or k (emit whenever a track
// enters or improves within the k best). exact opts out of the sketch
// token gate.
type WatchRequest struct {
	Pattern   WireTrajectory `json:"pattern"`
	Metric    string         `json:"metric,omitempty"`
	Threshold float64        `json:"threshold,omitempty"`
	K         int            `json:"k,omitempty"`
	Exact     bool           `json:"exact,omitempty"`
}

// WatchResponse carries the registered watch's ID.
type WatchResponse struct {
	Watch int `json:"watch"`
}

// UnwatchRequest is the body of POST /v1/unwatch.
type UnwatchRequest struct {
	Watch int `json:"watch"`
}

// UnwatchResponse acknowledges the removal.
type UnwatchResponse struct {
	Removed bool `json:"removed"`
}

// EventsResponse is the long-poll answer of GET /v1/events: the match
// events after the consumer's cursor, the seq to resume from, and
// whether the cursor predates the retained window (the consumer missed
// events it can never replay).
type EventsResponse struct {
	Events    []stream.Event `json:"events"`
	NextSince uint64         `json:"next_since"`
	Gap       bool           `json:"gap,omitempty"`
}

// CodeConflict is the error code of an append onto a sealed ID.
const CodeConflict = "conflict"

func (h *api) append(w http.ResponseWriter, r *http.Request) {
	var req AppendRequest
	if !decode(w, r, &req) {
		return
	}
	pts := make([]traj.Point, len(req.Points))
	for i, p := range req.Points {
		pts[i] = traj.P(p[0], p[1], p[2])
	}
	t0 := time.Now()
	off, err := h.e.Append(req.ID, req.Label, pts)
	if err != nil {
		switch {
		case errors.Is(err, ErrSealedID):
			writeError(w, http.StatusConflict, CodeConflict, err.Error())
		case errors.Is(err, ErrInvalidQuery):
			writeError(w, http.StatusBadRequest, CodeInvalidQuery, err.Error())
		default:
			writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		}
		return
	}
	writeJSON(w, http.StatusOK, AppendResponse{
		ID:     req.ID,
		Offset: off,
		Length: off + len(pts),
		TookMS: msSince(t0),
	})
}

func (h *api) seal(w http.ResponseWriter, r *http.Request) {
	var req SealRequest
	if !decode(w, r, &req) {
		return
	}
	t0 := time.Now()
	if err := h.e.Seal(req.ID); err != nil {
		switch {
		case errors.Is(err, ErrNoTrack):
			writeError(w, http.StatusNotFound, CodeNotFound, err.Error())
		case errors.Is(err, ErrInvalidQuery):
			writeError(w, http.StatusBadRequest, CodeInvalidQuery, err.Error())
		case errors.Is(err, ErrNotSupported):
			writeError(w, http.StatusNotImplemented, CodeNotImplemented, err.Error())
		default:
			writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		}
		return
	}
	writeJSON(w, http.StatusOK, SealResponse{ID: req.ID, Size: h.e.Size(), TookMS: msSince(t0)})
}

func (h *api) watch(w http.ResponseWriter, r *http.Request) {
	var req WatchRequest
	if !decode(w, r, &req) {
		return
	}
	pattern, err := req.Pattern.ToTrajectory()
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("pattern: %v", err))
		return
	}
	id, err := h.e.Watch(pattern, req.Metric, req.Threshold, req.K, req.Exact)
	if err != nil {
		writeSearchError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, WatchResponse{Watch: id})
}

func (h *api) unwatch(w http.ResponseWriter, r *http.Request) {
	var req UnwatchRequest
	if !decode(w, r, &req) {
		return
	}
	if !h.e.Unwatch(req.Watch) {
		writeError(w, http.StatusNotFound, CodeNotFound,
			fmt.Sprintf("%v: %d", ErrUnknownWatch, req.Watch))
		return
	}
	writeJSON(w, http.StatusOK, UnwatchResponse{Removed: true})
}

// events serves GET /v1/events. Default is one JSON page: the events
// after ?since (capped at ?max), waiting up to ?wait_ms for the first
// one (long-poll). With ?sse=1 — or Accept: text/event-stream — the
// response is a server-sent-event stream that keeps delivering until
// the client disconnects, each frame's SSE id carrying the seq to
// resume from.
func (h *api) events(w http.ResponseWriter, r *http.Request) {
	qv := r.URL.Query()
	since, err := parseUintParam(qv.Get("since"))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("since: %v", err))
		return
	}
	if qv.Get("sse") == "1" || strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		h.eventsSSE(w, r, since)
		return
	}
	max64, err := parseUintParam(qv.Get("max"))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("max: %v", err))
		return
	}
	waitMS, err := parseUintParam(qv.Get("wait_ms"))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("wait_ms: %v", err))
		return
	}
	var deadline <-chan time.Time
	if waitMS > 0 {
		t := time.NewTimer(time.Duration(waitMS) * time.Millisecond)
		defer t.Stop()
		deadline = t.C
	}
	var evs []stream.Event
	var gap bool
	for {
		// Arm before reading: a publish between the read and the select
		// closes the channel we already hold, so no wakeup is lost.
		ch := h.e.EventsWait()
		evs, gap = h.e.Events(since, int(max64))
		if len(evs) > 0 || waitMS == 0 {
			break
		}
		select {
		case <-ch:
		case <-deadline:
			waitMS = 0 // one final read, then answer empty
		case <-r.Context().Done():
			waitMS = 0
		}
	}
	next := since
	if len(evs) > 0 {
		next = evs[len(evs)-1].Seq
	}
	writeJSON(w, http.StatusOK, EventsResponse{Events: evs, NextSince: next, Gap: gap})
}

// eventsSSE streams match events as server-sent events until the client
// disconnects. Frames use the standard fields — id is the seq (browsers
// resend it as Last-Event-ID), event is "match" (or "gap" once when the
// cursor predates the retained window), data the Event JSON.
func (h *api) eventsSSE(w http.ResponseWriter, r *http.Request, since uint64) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, CodeNotImplemented,
			"response writer does not support streaming")
		return
	}
	if hv := r.Header.Get("Last-Event-ID"); hv != "" {
		if v, err := parseUintParam(hv); err == nil {
			since = v
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		ch := h.e.EventsWait()
		evs, gap := h.e.Events(since, 0)
		if gap {
			fmt.Fprintf(w, "event: gap\ndata: {\"resumed_at\": %d}\n\n", evs[0].Seq)
		}
		for _, ev := range evs {
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "id: %d\nevent: match\ndata: %s\n\n", ev.Seq, data)
			since = ev.Seq
		}
		if len(evs) > 0 {
			fl.Flush()
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		}
	}
}

func parseUintParam(s string) (uint64, error) {
	if s == "" {
		return 0, nil
	}
	return strconv.ParseUint(s, 10, 63)
}
