package server

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"trajmatch/internal/backend"
	"trajmatch/internal/faultfs"
	"trajmatch/internal/synth"
	"trajmatch/internal/traj"
	"trajmatch/internal/trajtree"
)

// prefilterQueries derives nq sampling-variant probes from db: each is a
// database member re-sampled (inter-trajectory variance — the paper's
// heterogeneous-device premise) and given an off-database ID, so the
// sketch has to recognise the shape, not the point sequence.
func prefilterQueries(db []*traj.Trajectory, nq int, seed int64) []*traj.Trajectory {
	rng := rand.New(rand.NewSource(seed))
	sel := make([]*traj.Trajectory, nq)
	for i := range sel {
		sel[i] = db[rng.Intn(len(db))]
	}
	qs := synth.Inter(sel, 0.5, seed+1)
	for i, q := range qs {
		q.ID = 9_000_000 + i
	}
	return qs
}

// recallAt computes tie-aware recall@k: the fraction of the prefiltered
// answer at or under the exact k-th distance. ID-set recall is
// ill-defined under distance ties — EDR distances are integer edit
// counts, so the k-th boundary routinely holds many equally-distant
// members and the exact engine's ID tie-break among them is arbitrary;
// an equally distant substitute is an equally correct k-NN answer. A
// real miss is still detected: dropping a true neighbour forces a
// strictly farther member into the prefiltered answer, which this count
// excludes. (Both engines run the same exact kernels, so tied members
// carry bit-identical distances and no epsilon is needed.)
func recallAt(got, exact Answer) float64 {
	if len(exact.Results) == 0 {
		return 1
	}
	kth := exact.Results[len(exact.Results)-1].Dist
	hit := 0
	for _, r := range got.Results {
		if r.Dist <= kth {
			hit++
		}
	}
	return float64(hit) / float64(len(exact.Results))
}

// runRecallMatrix builds one prefiltered multi-metric engine per shard
// count over db and asserts mean recall@k of prefiltered k-NN against
// the exact engine is at least minRecall for every metric.
func runRecallMatrix(t *testing.T, db []*traj.Trajectory, topt trajtree.Options,
	shardCounts []int, k, nq int, minRecall float64) {
	t.Helper()
	ctx := context.Background()
	qs := prefilterQueries(db, nq, 99)
	for _, shards := range shardCounts {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			e, err := NewMultiEngineFromDB(db, multiSpecs(db, topt),
				Options{CacheSize: -1, Shards: shards, Prefilter: true})
			if err != nil {
				t.Fatal(err)
			}
			for _, metric := range e.Metrics() {
				sum, worst := 0.0, 1.0
				sawPrefilterWork := false
				for _, q := range qs {
					exact, err := e.Search(ctx, q, Query{Kind: KindKNN, K: k, Metric: metric})
					if err != nil {
						t.Fatalf("metric %s: exact: %v", metric, err)
					}
					pre, err := e.Search(ctx, q, Query{Kind: KindKNN, K: k, Metric: metric,
						Prefilter: true, WithStats: true})
					if err != nil {
						t.Fatalf("metric %s: prefiltered: %v", metric, err)
					}
					if pre.Stats.PrefilterCandidates == 0 {
						t.Fatalf("metric %s: prefiltered query admitted zero candidates", metric)
					}
					if pre.Stats.PrefilterSkipped > 0 {
						sawPrefilterWork = true
					}
					// Exactness over the admitted set: distances must be
					// real metric values, sorted like every other answer.
					for i := 1; i < len(pre.Results); i++ {
						a, b := pre.Results[i-1], pre.Results[i]
						if a.Dist > b.Dist || (a.Dist == b.Dist && a.Traj.ID > b.Traj.ID) {
							t.Fatalf("metric %s: prefiltered results out of (dist, ID) order", metric)
						}
					}
					r := recallAt(pre, exact)
					sum += r
					if r < worst {
						worst = r
					}
				}
				mean := sum / float64(len(qs))
				t.Logf("metric %s shards %d: mean recall@%d %.3f (worst %.2f)", metric, shards, k, mean, worst)
				if mean < minRecall {
					t.Errorf("metric %s shards %d: mean recall@%d %.3f < %.2f", metric, shards, k, mean, minRecall)
				}
				if !sawPrefilterWork {
					t.Errorf("metric %s shards %d: prefilter never skipped a member — candidate sets degenerate to full scans", metric, shards)
				}
			}
		})
	}
}

// TestPrefilterRecall is the accuracy half of the filter-and-verify
// contract on the 1k corpus: across shard counts and all three metrics,
// prefiltered k-NN keeps mean recall@10 at or above 0.95 against the
// exact engine, while actually skipping members (it is a prefilter, not
// a disguised full scan).
func TestPrefilterRecall(t *testing.T) {
	db := synth.Taxi(synth.DefaultTaxi(1000))
	runRecallMatrix(t, db, trajtree.Options{Seed: 1}, []int{1, 2, 4, 8}, 10, 20, 0.95)
}

// TestPrefilterRecall10K repeats the recall bar on the 10k corpus the
// acceptance criteria name, at the default shard count. Skipped in
// -short mode: the three exact reference indexes over 10k trajectories
// dominate the runtime.
func TestPrefilterRecall10K(t *testing.T) {
	if testing.Short() {
		t.Skip("10k recall corpus skipped in -short mode")
	}
	db := synth.Taxi(synth.DefaultTaxi(10000))
	runRecallMatrix(t, db, trajtree.Options{Seed: 1}, []int{4}, 10, 12, 0.95)
}

// TestPrefilterOffIdentical pins the compatibility half: an engine
// booted with the prefilter answers non-prefiltered queries exactly as
// an engine without one — same results, same flags, for every kind and
// metric. Building the sketches must not perturb the search path.
func TestPrefilterOffIdentical(t *testing.T) {
	db := testDB(160, 11)
	topt := trajtree.Options{Seed: 1, LeafSize: 5}
	ctx := context.Background()
	plain, err := NewMultiEngineFromDB(db, multiSpecs(db, topt), Options{CacheSize: -1, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	pre, err := NewMultiEngineFromDB(db, multiSpecs(db, topt), Options{CacheSize: -1, Shards: 3, Prefilter: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for it := 0; it < 12; it++ {
		q := db[rng.Intn(len(db))].Clone()
		q.ID = 6_000_000 + it
		for _, metric := range plain.Metrics() {
			for _, req := range []Query{
				{Kind: KindKNN, K: 1 + rng.Intn(8), Metric: metric},
				{Kind: KindRange, Radius: []float64{5, 20, 80}[it%3], Metric: metric},
			} {
				want, err := plain.Search(ctx, q, req)
				if err != nil {
					t.Fatalf("it=%d metric %s: plain: %v", it, metric, err)
				}
				got, err := pre.Search(ctx, q, req)
				if err != nil {
					t.Fatalf("it=%d metric %s: prefilter-enabled: %v", it, metric, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("it=%d metric %s kind %s: prefilter-enabled engine diverged on a plain query:\ngot  %+v\nwant %+v",
						it, metric, req.Kind, got, want)
				}
			}
		}
	}

	// And the opt-in is rejected cleanly where it cannot be honoured.
	if _, err := plain.Search(ctx, db[0], Query{Kind: KindKNN, K: 3, Prefilter: true}); err == nil {
		t.Fatal("prefiltered query accepted by an engine booted without Options.Prefilter")
	}
	if _, err := pre.Search(ctx, db[0], Query{Kind: KindRange, Radius: 10, Prefilter: true}); err == nil {
		t.Fatal("prefilter accepted on a range query")
	}
}

// TestPrefilterMutationSync drives a random Insert/Delete sequence and
// asserts the sketches track the corpus: a live trajectory queried by
// its own shape is found at distance zero through the prefilter, a
// deleted ID never reappears — neither in answers nor in the raw
// candidate sets — and every answered ID is live. A final concurrent
// phase (mutators racing prefiltered readers) exists for the race
// detector. Run under -race -count=3 in CI. The engine is EDwP-only:
// the tree backend is the one Mutable metric set, and the sketches are
// engine-owned, so one mutable set exercises the whole sync path.
func TestPrefilterMutationSync(t *testing.T) {
	db := synth.Taxi(synth.DefaultTaxi(300))
	e, err := NewEngineFromDB(db, trajtree.Options{Seed: 1, LeafSize: 8},
		Options{CacheSize: -1, Shards: 2, Prefilter: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	live := make(map[int]*traj.Trajectory, len(db))
	for _, tr := range db {
		live[tr.ID] = tr
	}
	pool := synth.Taxi(synth.TaxiConfig{N: 150, GridSpacing: 200, CitySize: 8000,
		MinHops: 6, MaxHops: 30, SampleEvery: 45, SampleSpread: 3, Seed: 77})
	nextNew := 0
	var lastDeleted *traj.Trajectory

	rng := rand.New(rand.NewSource(13))
	liveIDs := func() []int {
		ids := make([]int, 0, len(live))
		for id := range live {
			ids = append(ids, id)
		}
		return ids
	}
	probe := func(step int) {
		t.Helper()
		ids := liveIDs()
		self := live[ids[rng.Intn(len(ids))]]
		for _, metric := range e.Metrics() {
			ans, err := e.Search(ctx, self.Clone(), Query{Kind: KindKNN, K: 5, Metric: metric, Prefilter: true})
			if err != nil {
				t.Fatalf("step %d metric %s: %v", step, metric, err)
			}
			if len(ans.Results) == 0 || ans.Results[0].Traj.ID != self.ID || ans.Results[0].Dist != 0 {
				t.Fatalf("step %d metric %s: live T%d not found at distance 0 through the prefilter (got %+v)",
					step, metric, self.ID, ans.Results)
			}
			for _, r := range ans.Results {
				if _, ok := live[r.Traj.ID]; !ok {
					t.Fatalf("step %d metric %s: answer contains deleted T%d", step, metric, r.Traj.ID)
				}
			}
		}
		if lastDeleted != nil {
			si := shardIndex(lastDeleted.ID, len(e.sketches))
			cands, _ := e.sketches[si].Candidates(lastDeleted, 1<<30) // full scan: every remaining member
			for _, id := range cands {
				if id == lastDeleted.ID {
					t.Fatalf("step %d: deleted T%d still a sketch candidate", step, lastDeleted.ID)
				}
			}
			ans, err := e.Search(ctx, lastDeleted, Query{Kind: KindKNN, K: 5, Prefilter: true})
			if err != nil {
				t.Fatalf("step %d: querying deleted shape: %v", step, err)
			}
			for _, r := range ans.Results {
				if r.Traj.ID == lastDeleted.ID {
					t.Fatalf("step %d: deleted T%d answered its own query", step, lastDeleted.ID)
				}
			}
		}
	}

	for step := 0; step < 120; step++ {
		if rng.Intn(2) == 0 && nextNew < len(pool) {
			tr := pool[nextNew].Clone()
			tr.ID = 100_000 + nextNew
			nextNew++
			if err := e.Insert(tr); err != nil {
				t.Fatalf("step %d: insert: %v", step, err)
			}
			live[tr.ID] = tr
		} else {
			ids := liveIDs()
			id := ids[rng.Intn(len(ids))]
			victim := live[id]
			if !e.Delete(id) {
				t.Fatalf("step %d: delete T%d missed", step, id)
			}
			delete(live, id)
			lastDeleted = victim
		}
		if step%10 == 9 {
			probe(step)
		}
	}

	// Rebuild re-packs the backends from the mutated corpus; the
	// sketches were kept in sync incrementally and must still agree.
	if err := e.Rebuild(); err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	probe(-1)

	// Concurrent phase: mutators racing prefiltered readers across all
	// metrics. Assertions are liveness-free (membership is in flux);
	// this exists so -race can see reader/writer interleavings.
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 40 && nextNew < len(pool); i++ {
			tr := pool[nextNew].Clone()
			tr.ID = 100_000 + nextNew
			nextNew++
			if err := e.Insert(tr); err != nil {
				t.Errorf("concurrent insert: %v", err)
				return
			}
			e.Delete(tr.ID)
		}
	}()
	go func() {
		defer wg.Done()
		ids := liveIDs()
		for i := 0; i < 40; i++ {
			q := live[ids[i%len(ids)]].Clone()
			q.ID = 8_000_000 + i
			metric := e.Metrics()[i%len(e.Metrics())]
			if _, err := e.Search(ctx, q, Query{Kind: KindKNN, K: 3, Metric: metric, Prefilter: true}); err != nil {
				t.Errorf("concurrent prefiltered search: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}

// TestPrefilterSnapshotRoundTrip asserts the manifest records the
// resolved sketch parameters and that a warm boot rebuilds the exact
// same prefilter: identical parameters, identical per-shard candidate
// sets, identical prefiltered answers — with no prefilter requested in
// the loader's options (the manifest wins, like the shard count).
func TestPrefilterSnapshotRoundTrip(t *testing.T) {
	db := testDB(150, 43)
	topt := trajtree.Options{Seed: 1, LeafSize: 5}
	dir := t.TempDir()
	e, err := NewEngineFromDB(db, topt, Options{CacheSize: -1, Shards: 3, Prefilter: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SaveSnapshot(dir); err != nil {
		t.Fatalf("save: %v", err)
	}

	man, err := readManifest(faultfs.OS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.Sketch == nil {
		t.Fatal("manifest did not record the sketch parameters")
	}
	if *man.Sketch != e.SketchParams() {
		t.Fatalf("manifest sketch %+v != engine's resolved %+v", *man.Sketch, e.SketchParams())
	}

	loaded, err := LoadSnapshot(dir, Options{CacheSize: -1})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !loaded.PrefilterEnabled() {
		t.Fatal("warm boot dropped the prefilter recorded in the manifest")
	}
	if loaded.SketchParams() != e.SketchParams() {
		t.Fatalf("reloaded sketch params %+v != original %+v", loaded.SketchParams(), e.SketchParams())
	}

	ctx := context.Background()
	for it := 0; it < 10; it++ {
		q := db[(it*13)%len(db)].Clone()
		q.ID = 7_000_000 + it
		for si := range e.sketches {
			want, _ := e.sketches[si].Candidates(q, 40)
			got, _ := loaded.sketches[si].Candidates(q, 40)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("it=%d shard %d: candidate sets diverged after reload:\ngot  %v\nwant %v", it, si, got, want)
			}
		}
		want, err := e.Search(ctx, q, Query{Kind: KindKNN, K: 8, Prefilter: true})
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Search(ctx, q, Query{Kind: KindKNN, K: 8, Prefilter: true})
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, fmt.Sprintf("prefiltered KNN it=%d", it), asTreeResults(got.Results), asTreeResults(want.Results))
	}

	// A snapshot written without a prefilter records none — and the
	// loader's own Options.Prefilter then builds a fresh one.
	dir2 := t.TempDir()
	plain, err := NewEngineFromDB(db, topt, Options{CacheSize: -1, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.SaveSnapshot(dir2); err != nil {
		t.Fatal(err)
	}
	man2, err := readManifest(faultfs.OS{}, dir2)
	if err != nil {
		t.Fatal(err)
	}
	if man2.Sketch != nil {
		t.Fatalf("prefilter-less snapshot recorded sketch params %+v", *man2.Sketch)
	}
	fresh, err := LoadSnapshot(dir2, Options{CacheSize: -1, Prefilter: true})
	if err != nil {
		t.Fatal(err)
	}
	if !fresh.PrefilterEnabled() {
		t.Fatal("Options.Prefilter ignored on warm boot of a prefilter-less snapshot")
	}
}

// asTreeResults adapts backend results to the trajtree result type the
// shared sameResults helper asserts on.
func asTreeResults(rs []backend.Result) []trajtree.Result {
	out := make([]trajtree.Result, len(rs))
	for i, r := range rs {
		out[i] = trajtree.Result{Traj: r.Traj, Dist: r.Dist}
	}
	return out
}

// TestPrefilterHTTP drives the opt-in over the wire: stats report the
// candidate accounting, an engine without the prefilter answers 501,
// and prefilter on a range query is a 400.
func TestPrefilterHTTP(t *testing.T) {
	db := testDB(120, 7)
	e, err := NewMultiEngineFromDB(db, multiSpecs(db, trajtree.Options{Seed: 1, LeafSize: 5}),
		Options{CacheSize: -1, Shards: 2, Prefilter: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewAPIHandler(e, HandlerOptions{}))
	defer srv.Close()

	q := db[10].Clone()
	q.ID = 1_000_000
	wq := wire(q)

	var got SearchResponse
	req := SearchRequest{Query: Query{Kind: KindKNN, K: 5, Prefilter: true, WithStats: true}, QueryTraj: &wq}
	if r := postJSON(t, srv, "/v1/search", req, &got); r.StatusCode != http.StatusOK {
		t.Fatalf("prefiltered search: status %d", r.StatusCode)
	}
	if got.Stats == nil || got.Stats.PrefilterCandidates == 0 {
		t.Fatalf("wire stats missing prefilter accounting: %+v", got.Stats)
	}
	want, err := e.Search(context.Background(), q, Query{Kind: KindKNN, K: 5, Prefilter: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("wire answer %d results, engine %d", len(got.Results), len(want.Results))
	}
	for i := range got.Results {
		if got.Results[i].ID != want.Results[i].Traj.ID {
			t.Fatalf("rank %d: wire T%d != engine T%d", i, got.Results[i].ID, want.Results[i].Traj.ID)
		}
	}

	// /v1/stats surfaces the prefilter capability and counters.
	var stats Stats
	postGet(t, srv, "/v1/stats", &stats)
	if stats.PrefilterCandidates == 0 {
		t.Fatalf("/v1/stats did not accumulate prefilter candidates: %+v", stats)
	}
	if !stats.Prefilter {
		t.Fatalf("/v1/stats does not report the prefilter as enabled: %+v", stats)
	}

	// Range + prefilter is an invalid query.
	resp := postRaw(t, srv, "/v1/search",
		SearchRequest{Query: Query{Kind: KindRange, Radius: 20, Prefilter: true}, QueryTraj: &wq})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("prefilter on range: status %d, want 400", resp.StatusCode)
	}
	if e := decodeError(t, resp); e.Code != CodeInvalidQuery {
		t.Fatalf("prefilter on range: code %q, want %q", e.Code, CodeInvalidQuery)
	}

	// An engine booted without the prefilter declines the opt-in.
	plain, err := NewEngineFromDB(db, trajtree.Options{Seed: 1, LeafSize: 5}, Options{CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	psrv := httptest.NewServer(NewAPIHandler(plain, HandlerOptions{}))
	defer psrv.Close()
	resp = postRaw(t, psrv, "/v1/search",
		SearchRequest{Query: Query{Kind: KindKNN, K: 5, Prefilter: true}, QueryTraj: &wq})
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("prefilter without sketches: status %d, want 501", resp.StatusCode)
	}
	if e := decodeError(t, resp); e.Code != CodeNotImplemented {
		t.Fatalf("prefilter without sketches: code %q, want %q", e.Code, CodeNotImplemented)
	}
}
