package server

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"

	"trajmatch/internal/backend"
	"trajmatch/internal/traj"
)

// ErrUnknownMetric reports a Query.Metric that no linked backend has
// registered — almost certainly a typo. The HTTP layer answers 400 with
// code "unknown_metric" listing the registered names.
var ErrUnknownMetric = errors.New("unknown metric")

// ErrMetricNotLoaded reports a Query.Metric that is registered but was
// not booted into this engine (trajserve -metrics selects the set). The
// HTTP layer answers 400 with code "metric_not_loaded" listing the
// loaded names.
var ErrMetricNotLoaded = errors.New("metric not loaded")

// ErrNotSupported re-exports backend.ErrNotSupported: the loaded backend
// lacks the capability the operation needs (mutation on a static DTW/EDR
// index, sub-trajectory search on a metric without one). The HTTP layer
// answers 501 with code "not_implemented".
var ErrNotSupported = backend.ErrNotSupported

// metricSet is one metric's slice of the engine: the hash-partitioned
// shards of one Backend implementation plus the per-metric traffic and
// kernel counters. Every loaded set shards the same corpus with the same
// placement function, so ID routing is metric-independent.
type metricSet struct {
	name   string
	shards []*shard

	queries   atomic.Uint64
	cacheHits atomic.Uint64

	distanceCalls   atomic.Uint64
	earlyAbandons   atomic.Uint64
	lowerBoundCalls atomic.Uint64
	nodesVisited    atomic.Uint64
	nodesPruned     atomic.Uint64

	prefilterCandidates atomic.Uint64
	prefilterSkipped    atomic.Uint64
}

func (ms *metricSet) recordStats(st backend.Stats) {
	ms.distanceCalls.Add(uint64(st.DistanceCalls))
	ms.earlyAbandons.Add(uint64(st.EarlyAbandons))
	ms.lowerBoundCalls.Add(uint64(st.LowerBoundCalls))
	ms.nodesVisited.Add(uint64(st.NodesVisited))
	ms.nodesPruned.Add(uint64(st.NodesPruned))
	ms.prefilterCandidates.Add(uint64(st.PrefilterCandidates))
	ms.prefilterSkipped.Add(uint64(st.PrefilterSkipped))
}

// capabilities reports which optional interfaces the set's backend
// implements, for the stats endpoint's capability matrix. All shards of
// a set share one implementation, so shard 0 speaks for the set.
// prefilterEnabled says whether the engine carries sketch indexes —
// "prefilter" is advertised only when both sides of the capability are
// present (an engine-owned sketch and a backend that can verify within
// a candidate set).
func (ms *metricSet) capabilities(prefilterEnabled bool) []string {
	caps := []string{"knn", "range"}
	be := ms.shards[0].be
	if _, ok := be.(backend.SubSearcher); ok {
		caps = append(caps, "subknn")
	}
	if _, ok := be.(backend.Mutable); ok {
		caps = append(caps, "mutate")
	}
	if _, ok := treeOf(be); ok {
		caps = append(caps, "persist")
	}
	if _, ok := be.(backend.CandidateSearcher); ok && prefilterEnabled {
		caps = append(caps, "prefilter")
	}
	return caps
}

// mutable reports whether the set's backend supports in-place updates.
func (ms *metricSet) mutable() bool {
	_, ok := ms.shards[0].be.(backend.Mutable)
	return ok
}

// resolveMetric routes a Query.Metric to its loaded metric set. An
// empty name means the engine's default metric — the first in boot
// order, which is EDwP in every standard boot (NewEngineFromDB, the
// default -metrics list). Unknown and known-but-unloaded names fail
// with the two distinct error values the HTTP layer maps to their
// codes.
func (e *Engine) resolveMetric(name string) (*metricSet, error) {
	if name == "" {
		return e.sets[0], nil
	}
	if ms, ok := e.byName[name]; ok {
		return ms, nil
	}
	if backend.Known(name) {
		return nil, fmt.Errorf("%w: %q (loaded: %s)", ErrMetricNotLoaded, name, strings.Join(e.Metrics(), ", "))
	}
	return nil, fmt.Errorf("%w: %q (registered: %s)", ErrUnknownMetric, name, strings.Join(backend.Names(), ", "))
}

// Metrics returns the loaded metric names in boot order; the first is
// the default an empty Query.Metric resolves to.
func (e *Engine) Metrics() []string {
	out := make([]string, len(e.sets))
	for i, ms := range e.sets {
		out[i] = ms.name
	}
	return out
}

// buildMetricSets hash-partitions db once and builds every spec's shards
// over the same partition, shard-parallel per set. Placement is a pure
// function of (ID, global shard count), shared by all sets, so Lookup
// and Delete route identically whatever the metric; a partitioned
// placement silently drops foreign trajectories, leaving each local
// shard holding exactly what the matching global shard of a full engine
// would hold.
func buildMetricSets(db []*traj.Trajectory, specs []backend.Spec, place placement, opt Options) ([]*metricSet, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("server: no metric backends specified")
	}
	groups := partitionOwned(db, place, func(t *traj.Trajectory) int { return t.ID })
	sets := make([]*metricSet, 0, len(specs))
	seen := map[string]bool{}
	for _, spec := range specs {
		if spec.Name == "" || spec.Build == nil {
			return nil, fmt.Errorf("server: invalid backend spec %+v", spec)
		}
		if seen[spec.Name] {
			return nil, fmt.Errorf("server: duplicate metric %q", spec.Name)
		}
		seen[spec.Name] = true
		shards, err := buildSpecShards(groups, spec, opt)
		if err != nil {
			return nil, err
		}
		sets = append(sets, &metricSet{name: spec.Name, shards: shards})
	}
	return sets, nil
}
