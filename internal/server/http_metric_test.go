package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"trajmatch/internal/dtwindex"
	"trajmatch/internal/trajtree"
)

// postGet GETs path and decodes the JSON body into dst.
func postGet(t *testing.T, srv *httptest.Server, path string, dst any) *http.Response {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		t.Fatalf("GET %s: decode: %v", path, err)
	}
	return resp
}

// newMultiServer boots an httptest server over the three-metric engine.
func newMultiServer(t *testing.T) (*httptest.Server, *Engine) {
	t.Helper()
	db := testDB(60, 7)
	e, err := NewMultiEngineFromDB(db, multiSpecs(db, trajtree.Options{Seed: 1, LeafSize: 5}), Options{CacheSize: -1, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewAPIHandler(e, HandlerOptions{}))
	t.Cleanup(srv.Close)
	return srv, e
}

// TestV1SearchMetric drives POST /v1/search with a "metric" body field
// through every loaded backend and checks each answer against the
// engine's own routing.
func TestV1SearchMetric(t *testing.T) {
	srv, e := newMultiServer(t)
	db := testDB(60, 7)
	q := db[10].Clone()
	q.ID = 1_000_000
	wq := wire(q)

	for _, metric := range []string{"", "edwp", "dtw", "edr"} {
		var got SearchResponse
		req := SearchRequest{Query: Query{Kind: KindKNN, K: 5, Metric: metric}, QueryTraj: &wq}
		if r := postJSON(t, srv, "/v1/search", req, &got); r.StatusCode != http.StatusOK {
			t.Fatalf("metric %q: status %d", metric, r.StatusCode)
		}
		want, err := e.Search(context.Background(), q, Query{Kind: KindKNN, K: 5, Metric: metric})
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Results) != len(want.Results) {
			t.Fatalf("metric %q: %d results, engine %d", metric, len(got.Results), len(want.Results))
		}
		for i, n := range got.Results {
			if n.ID != want.Results[i].Traj.ID || n.Dist != want.Results[i].Dist {
				t.Fatalf("metric %q rank %d: wire (%d, %v) != engine (%d, %v)",
					metric, i, n.ID, n.Dist, want.Results[i].Traj.ID, want.Results[i].Dist)
			}
		}
	}

	// The three metrics disagree on at least one ranking for some query;
	// spot-check that dtw and edwp are actually different backends by
	// comparing distances (EDR's integer edits can never equal EDwP's
	// metres for a non-identical match).
	var edwp, edr SearchResponse
	postJSON(t, srv, "/v1/search", SearchRequest{Query: Query{Kind: KindKNN, K: 5, Metric: "edwp"}, QueryTraj: &wq}, &edwp)
	postJSON(t, srv, "/v1/search", SearchRequest{Query: Query{Kind: KindKNN, K: 5, Metric: "edr"}, QueryTraj: &wq}, &edr)
	same := true
	for i := range edwp.Results {
		if edwp.Results[i].Dist != edr.Results[i].Dist {
			same = false
		}
	}
	if same {
		t.Fatal("edwp and edr answered identical distances — routing is suspect")
	}
}

// TestV1SearchMetricErrors: an unregistered metric answers 400
// unknown_metric listing the registered names; a registered metric the
// server was not booted with answers 400 metric_not_loaded; updates and
// subknn against static backends answer 501 not_implemented.
func TestV1SearchMetricErrors(t *testing.T) {
	srv, _ := newMultiServer(t)
	db := testDB(60, 7)
	wq := wire(db[4])

	resp := postRaw(t, srv, "/v1/search", SearchRequest{Query: Query{Kind: KindKNN, K: 3, Metric: "frechet"}, QueryTraj: &wq})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown metric: status %d, want 400", resp.StatusCode)
	}
	env := decodeError(t, resp)
	if env.Code != CodeUnknownMetric {
		t.Fatalf("unknown metric: code %q, want %q", env.Code, CodeUnknownMetric)
	}
	for _, name := range []string{"edwp", "dtw", "edr"} {
		if !strings.Contains(env.Error, name) {
			t.Fatalf("unknown-metric message %q does not list registered metric %q", env.Error, name)
		}
	}

	// A server booted without dtw: registered but not loaded.
	soloE, err := NewEngineFromDB(db, trajtree.Options{Seed: 1, LeafSize: 5}, Options{CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	solo := httptest.NewServer(NewAPIHandler(soloE, HandlerOptions{}))
	defer solo.Close()
	resp = postRaw(t, solo, "/v1/search", SearchRequest{Query: Query{Kind: KindKNN, K: 3, Metric: dtwindex.MetricName}, QueryTraj: &wq})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unloaded metric: status %d, want 400", resp.StatusCode)
	}
	env = decodeError(t, resp)
	if env.Code != CodeMetricNotLoaded {
		t.Fatalf("unloaded metric: code %q, want %q", env.Code, CodeMetricNotLoaded)
	}
	if !strings.Contains(env.Error, "edwp") {
		t.Fatalf("not-loaded message %q does not list the loaded metrics", env.Error)
	}

	// Mutation against a multi-metric engine with static backends: 501.
	resp = postRaw(t, srv, "/v1/insert", InsertRequest{Trajectories: []WireTrajectory{wq}})
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("insert with static backends: status %d, want 501", resp.StatusCode)
	}
	if env := decodeError(t, resp); env.Code != CodeNotImplemented {
		t.Fatalf("insert: code %q, want %q", env.Code, CodeNotImplemented)
	}

	// Sub-trajectory search under dtw: 501 through the search endpoint.
	resp = postRaw(t, srv, "/v1/search", SearchRequest{Query: Query{Kind: KindSubKNN, K: 3, Metric: "dtw"}, QueryTraj: &wq})
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("dtw subknn: status %d, want 501", resp.StatusCode)
	}
	if env := decodeError(t, resp); env.Code != CodeNotImplemented {
		t.Fatalf("dtw subknn: code %q, want %q", env.Code, CodeNotImplemented)
	}
}

// TestV1StatsPerMetric: /v1/stats carries the loaded metric list and the
// per-metric counters, and a routed query moves only its metric's row.
func TestV1StatsPerMetric(t *testing.T) {
	srv, e := newMultiServer(t)
	db := testDB(60, 7)
	wq := wire(db[9])

	postJSON(t, srv, "/v1/search", SearchRequest{Query: Query{Kind: KindKNN, K: 3, Metric: "dtw"}, QueryTraj: &wq}, &SearchResponse{})
	postJSON(t, srv, "/v1/search", SearchRequest{Query: Query{Kind: KindKNN, K: 3, Metric: "dtw"}, QueryTraj: &wq}, &SearchResponse{})
	postJSON(t, srv, "/v1/search", SearchRequest{Query: Query{Kind: KindKNN, K: 3, Metric: "edr"}, QueryTraj: &wq}, &SearchResponse{})

	var st Stats
	if r := postGet(t, srv, "/v1/stats", &st); r.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", r.StatusCode)
	}
	if len(st.Metrics) != 3 || st.Metrics[0] != "edwp" {
		t.Fatalf("stats metrics %v, want [edwp dtw edr]", st.Metrics)
	}
	byMetric := map[string]MetricStats{}
	for _, ms := range st.PerMetric {
		byMetric[ms.Metric] = ms
	}
	if byMetric["dtw"].Queries != 2 || byMetric["edr"].Queries != 1 || byMetric["edwp"].Queries != 0 {
		t.Fatalf("per-metric query counts %+v, want dtw=2 edr=1 edwp=0", st.PerMetric)
	}
	if byMetric["dtw"].DistanceCalls == 0 {
		t.Fatal("dtw distance calls did not accumulate")
	}
	// Capability matrix: only edwp mutates/persists/answers subknn.
	caps := func(m string) string { return strings.Join(byMetric[m].Capabilities, ",") }
	if !strings.Contains(caps("edwp"), "mutate") || !strings.Contains(caps("edwp"), "persist") || !strings.Contains(caps("edwp"), "subknn") {
		t.Fatalf("edwp capabilities %v missing mutate/persist/subknn", byMetric["edwp"].Capabilities)
	}
	if strings.Contains(caps("dtw"), "mutate") || strings.Contains(caps("edr"), "persist") {
		t.Fatalf("static backends claim capabilities they lack: dtw=%v edr=%v",
			byMetric["dtw"].Capabilities, byMetric["edr"].Capabilities)
	}
	// The engine's own Stats agrees with the wire.
	if got := e.Stats(); got.Queries != st.Queries {
		t.Fatalf("engine queries %d != wire %d", got.Queries, st.Queries)
	}
}
